package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bitcomp"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var table4EBs = []float64{1e-2, 1e-3, 1e-4}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", len(title)+8))
	fmt.Printf("==  %s  ==\n", title)
	fmt.Println(strings.Repeat("=", len(title)+8))
}

// table1 reproduces Table 1: the Bitcomp-surrogate compression ratio on the
// compressed outputs of each compressor (Nyx, eb = 1e-2).
func table1(dev *gpusim.Device) error {
	header("Table 1: Bitcomp CR on compressed outputs (Nyx, eb=1e-2)")
	f, err := experiments.Dataset("nyx", *flagFull, *flagSeed)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s\n", "compressor", "Bitcomp~ CR")
	for _, c := range experiments.Table4Compressors() {
		blob, err := c.Compress(dev, f.Data, f.Dims, 1e-2)
		if err != nil {
			return err
		}
		r, err := bitcomp.Ratio(dev, blob)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %14.2f\n", c.Name, r)
	}
	fmt.Println("\n(paper: cuSZ-Hi ~1.0x — already de-redundated; cuSZ-I w/o Bitcomp ~9.6x)")
	return nil
}

// table4 reproduces Table 4: fixed-eb compression ratios across all
// datasets, error bounds and compressors.
func table4(dev *gpusim.Device) error {
	header("Table 4: compression ratio at fixed error bounds")
	comps := experiments.Table4Compressors()
	fmt.Printf("%-10s %6s", "dataset", "eb")
	for _, c := range comps {
		fmt.Printf(" %11s", c.Name)
	}
	fmt.Printf(" %9s\n", "Hi adv.")
	var csv strings.Builder
	csv.WriteString("dataset,eb")
	for _, c := range comps {
		csv.WriteString("," + c.Name)
	}
	csv.WriteString("\n")
	for _, ds := range datagen.PaperNames() {
		f, err := experiments.Dataset(ds, *flagFull, *flagSeed)
		if err != nil {
			return err
		}
		for _, eb := range table4EBs {
			fmt.Printf("%-10s %6.0e", ds, eb)
			csv.WriteString(fmt.Sprintf("%s,%g", ds, eb))
			var hiBest, blBest float64
			for i, c := range comps {
				r, err := experiments.Run(dev, c, f, eb)
				if err != nil {
					return err
				}
				fmt.Printf(" %11.1f", r.CR)
				csv.WriteString(fmt.Sprintf(",%.2f", r.CR))
				if i < 2 { // the two Hi modes
					if r.CR > hiBest {
						hiBest = r.CR
					}
				} else if r.CR > blBest {
					blBest = r.CR
				}
			}
			fmt.Printf(" %8.0f%%\n", (hiBest/blBest-1)*100)
			csv.WriteString("\n")
		}
	}
	fmt.Println("\n(paper: Hi best in almost all cases; adv. up to ~240% at eb=1e-2, smaller at 1e-4)")
	return writeArtifact("table4.csv", csv.String())
}

// table5 reproduces Table 5: the ablation of cuSZ-Hi design increments.
func table5(dev *gpusim.Device) error {
	header("Table 5: ablation study (CR per design increment)")
	variants := core.AblationVariants()
	fmt.Printf("%-10s %6s", "dataset", "eb")
	for _, v := range variants {
		fmt.Printf(" %18s", v.Name)
	}
	fmt.Println()
	for _, ds := range []string{"jhtdb", "miranda", "nyx", "rtm"} {
		f, err := experiments.Dataset(ds, *flagFull, *flagSeed)
		if err != nil {
			return err
		}
		for _, eb := range []float64{1e-2, 1e-3} {
			fmt.Printf("%-10s %6.0e", ds, eb)
			absEB := metrics.AbsEB(f.Data, eb)
			prev := 0.0
			for i, v := range variants {
				blob, err := core.Compress(dev, f.Data, f.Dims, absEB, v)
				if err != nil {
					return err
				}
				cr := metrics.CR(f.SizeBytes(), len(blob))
				if i == 0 {
					fmt.Printf(" %18.1f", cr)
				} else {
					fmt.Printf(" %9.1f (%+4.0f%%)", cr, (cr/prev-1)*100)
				}
				prev = cr
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(paper: each increment adds ~6%..60%; full stack 1.7x..3.3x over cuSZ-IB)")
	return nil
}

// fig5 reproduces Figure 5: the quant-code value profile along the encoded
// sequence, natural layout vs level-order reordering (Miranda, eb=1e-3).
func fig5(dev *gpusim.Device) error {
	header("Fig 5: quant-code sequence, natural vs reordered (Miranda, eb=1e-3)")
	f, err := experiments.Dataset("miranda", *flagFull, *flagSeed)
	if err != nil {
		return err
	}
	natural, err := experiments.HiQuantCodes(dev, f, 1e-3, false)
	if err != nil {
		return err
	}
	reordered, err := experiments.HiQuantCodes(dev, f, 1e-3, true)
	if err != nil {
		return err
	}
	const bins = 32
	profile := func(codes []uint8) []int {
		out := make([]int, bins)
		for i, c := range codes {
			b := i * bins / len(codes)
			d := int(c) - 128
			if c == 0 {
				d = 128 // outlier escape: treat as max magnitude
			}
			if d < 0 {
				d = -d
			}
			if d > out[b] {
				out[b] = d
			}
		}
		return out
	}
	pn, pr := profile(natural), profile(reordered)
	fmt.Printf("%-6s %12s %12s\n", "bin", "natural max", "reordered max")
	var csv strings.Builder
	csv.WriteString("bin,natural,reordered\n")
	for b := 0; b < bins; b++ {
		fmt.Printf("%-6d %12d %12d\n", b, pn[b], pr[b])
		csv.WriteString(fmt.Sprintf("%d,%d,%d\n", b, pn[b], pr[b]))
	}
	fmt.Println("\n(paper: reordering concentrates the large codes at the head of the sequence)")
	return writeArtifact("fig5.csv", csv.String())
}

// fig6 reproduces Figure 6: compression ratio vs overall throughput of the
// lossless pipelines on cuSZ-Hi quantization codes (eb = 1e-3).
func fig6(dev *gpusim.Device) error {
	header("Fig 6: lossless pipelines on quant codes (eb=1e-3)")
	var csv strings.Builder
	csv.WriteString("dataset,codec,cr,enc_gibps,dec_gibps,overall_gibps\n")
	for _, ds := range []string{"hurricane", "nyx", "miranda", "scale"} {
		f, err := experiments.Dataset(ds, *flagFull, *flagSeed)
		if err != nil {
			return err
		}
		codes, err := experiments.HiQuantCodes(dev, f, 1e-3, true)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s (%d codes) ---\n", ds, len(codes))
		fmt.Printf("%-30s %8s %10s %10s %10s\n", "pipeline", "CR", "enc GiB/s", "dec GiB/s", "overall")
		for _, c := range experiments.Fig6Codecs() {
			t0 := time.Now()
			enc, err := c.Encode(dev, codes)
			encS := time.Since(t0).Seconds()
			if err != nil {
				return fmt.Errorf("%s: %w", c.Name, err)
			}
			t1 := time.Now()
			dec, err := c.Decode(dev, enc)
			decS := time.Since(t1).Seconds()
			if err != nil || len(dec) != len(codes) {
				return fmt.Errorf("%s: decode failed: %v", c.Name, err)
			}
			cr := float64(len(codes)) / float64(len(enc))
			encT := metrics.GiBps(len(codes), encS)
			decT := metrics.GiBps(len(codes), decS)
			overall := metrics.GiBps(2*len(codes), encS+decS)
			fmt.Printf("%-30s %8.2f %10.2f %10.2f %10.2f\n", c.Name, cr, encT, decT, overall)
			csv.WriteString(fmt.Sprintf("%s,%s,%.3f,%.3f,%.3f,%.3f\n", ds, c.Name, cr, encT, decT, overall))
		}
	}
	fmt.Println("\n(paper: HF+RRE4-TCMS8-RZE1 on the CR frontier; TCMS1-BIT1-RRE1 fast with decent CR)")
	return writeArtifact("fig6.csv", csv.String())
}

func writeArtifact(name, content string) error {
	if *flagOut == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(*flagOut, name), []byte(content), 0o644)
}
