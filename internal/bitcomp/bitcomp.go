// Package bitcomp is an open surrogate for NVIDIA's proprietary Bitcomp
// lossless codec, which cuSZ-IB attaches after Huffman encoding and which
// Table 1 of the paper applies to every compressor's output.
//
// Bitcomp is a lightweight GPU de-redundancy coder. The surrogate captures
// the behaviour that matters in the paper's experiments: a Huffman stream
// over overwhelmingly-zero quantization codes is runs of the zero
// codeword's bits (sub-1-bit/symbol redundancy that entropy coding cannot
// remove), and Bitcomp recovers nearly all of it; already-de-redundated
// streams (cuSZ-Hi output, random data) stay at ratio ~1.
//
// The scheme: byte-wise delta + zigzag (turning byte runs into zeros),
// then zero-elimination with a recursively compressed presence bitmap
// (internal/lccodec's RZE1), with a raw-passthrough fallback whenever that
// would not shrink the input.
//
// The *Ctx entry points thread a reusable arena.Ctx through the RZE
// pipeline stages, so warm contexts re-code stream after stream with
// near-zero heap allocations.
package bitcomp

import (
	"errors"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/lccodec"
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("bitcomp: corrupt stream")

const (
	modeRaw     = 0x00
	modeDeltaZE = 0x01
)

var rze = lccodec.MustParse("DIFFMS1-RZE1")

// Compress encodes src.
func Compress(dev *gpusim.Device, src []byte) ([]byte, error) {
	return CompressCtx(nil, dev, src)
}

// CompressCtx is Compress drawing pipeline stage buffers from a reusable
// codec context (nil behaves like Compress). The returned stream is a
// fresh allocation owned by the caller.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	enc, err := rze.EncodeCtx(ctx, dev, src)
	if err != nil {
		return nil, err
	}
	body := src
	mode := byte(modeRaw)
	if len(enc) < len(src) {
		body = enc
		mode = modeDeltaZE
	}
	out := make([]byte, 0, len(body)+12)
	out = bitio.AppendUvarint(out, uint64(len(src)))
	out = append(out, mode)
	return append(out, body...), nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, data []byte) ([]byte, error) {
	return DecompressCtx(nil, dev, data)
}

// DecompressCtx is Decompress with a reusable context. With a non-nil ctx
// the returned stream is context scratch, valid until the next ctx.Reset.
//
//cuszhi:hotpath
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []byte) ([]byte, error) {
	origLen64, n := bitio.Uvarint(data)
	if n == 0 || n >= len(data)+1 {
		return nil, ErrCorrupt
	}
	// Cap before the int conversion: on 32-bit platforms a 2^32-scale
	// declared length would silently truncate instead of failing.
	origLen, lok := bitio.IntLen(origLen64)
	if !lok {
		return nil, ErrCorrupt
	}
	if n >= len(data) {
		if origLen == 0 && n == len(data) {
			return nil, nil
		}
		return nil, ErrCorrupt
	}
	mode := data[n]
	body := data[n+1:]
	switch mode {
	case modeRaw:
		if len(body) != origLen {
			return nil, ErrCorrupt
		}
		out := ctx.Bytes(origLen)
		copy(out, body)
		return out, nil
	case modeDeltaZE:
		out, err := rze.DecodeCtx(ctx, dev, body)
		if err != nil {
			return nil, err
		}
		if len(out) != origLen {
			return nil, ErrCorrupt
		}
		return out, nil
	}
	return nil, ErrCorrupt
}

// Ratio returns the Bitcomp-surrogate compression ratio on src, the metric
// reported in Table 1.
func Ratio(dev *gpusim.Device, src []byte) (float64, error) {
	if len(src) == 0 {
		return 1, nil
	}
	enc, err := Compress(dev, src)
	if err != nil {
		return 0, err
	}
	return float64(len(src)) / float64(len(enc)), nil
}
