// Command benchtab regenerates the tables and figures of the cuSZ-Hi paper
// (SC 2025) on the synthetic dataset stand-ins:
//
//	benchtab table1   Bitcomp CR on compressor outputs (Nyx, eb=1e-2)
//	benchtab table4   fixed-eb compression ratios, 6 datasets x 3 ebs
//	benchtab table5   ablation study of the cuSZ-Hi design increments
//	benchtab fig5     quant-code sequences, natural vs reordered
//	benchtab fig6     lossless pipelines CR vs throughput on quant codes
//	benchtab fig8     rate-distortion (bitrate vs PSNR) series
//	benchtab fig9     fixed-CR quality comparison + slice dumps
//	benchtab fig10    compression/decompression throughput
//	benchtab all      everything above
//
// Flags: -full (paper-sized dims; slow), -seed N, -out DIR (CSV/PGM
// artifacts), -workers N.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gpusim"
)

var (
	flagFull    = flag.Bool("full", false, "use paper-sized dataset dims (slow, memory-hungry)")
	flagSeed    = flag.Int64("seed", 1, "dataset realization seed")
	flagOut     = flag.String("out", "", "directory for CSV/PGM artifacts (optional)")
	flagWorkers = flag.Int("workers", 0, "simulated device width (0 = GOMAXPROCS)")
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: benchtab [flags] {table1|table4|table5|fig5|fig6|fig8|fig9|fig10|lcsearch|extras|all}\n")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}
	dev := gpusim.New(*flagWorkers)
	if *flagOut != "" {
		if err := os.MkdirAll(*flagOut, 0o755); err != nil {
			fatal(err)
		}
	}
	cmds := map[string]func(*gpusim.Device) error{
		"table1":   table1,
		"table4":   table4,
		"table5":   table5,
		"fig5":     fig5,
		"fig6":     fig6,
		"fig8":     fig8,
		"fig9":     fig9,
		"fig10":    fig10,
		"lcsearch": lcsearch,
		"extras":   extras,
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, k := range []string{"table1", "table4", "table5", "fig5", "fig6", "fig8", "fig9", "fig10"} {
			if err := cmds[k](dev); err != nil {
				fatal(err)
			}
		}
		return
	}
	fn, ok := cmds[name]
	if !ok {
		usage()
	}
	if err := fn(dev); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
