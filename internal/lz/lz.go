// Package lz implements an LZSS-family compressor with four container
// formats that act as open surrogates for the GPU LZ codecs benchmarked in
// Fig. 6 of the cuSZ-Hi paper:
//
//   - LZ4Lite:      byte-aligned greedy LZ with varint sequences (nvCOMP::LZ4)
//   - GPULZLite:    classic LZSS bit format, 4 KiB window (GPULZ)
//   - ZstdLite:     LZ parse + rANS-coded literal/sequence streams (nvCOMP::Zstd)
//   - GDeflateLite: LZ parse + Huffman-coded streams (nvCOMP::GDeflate)
//
// All variants share one hash-chain matcher; they differ in window size,
// match economics and entropy back-end, which is what separates the real
// codecs' Pareto positions.
package lz

import (
	"errors"
	"fmt"

	"repro/internal/ans"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/huffman"
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("lz: corrupt stream")

// Variant selects a container format.
type Variant int

// Container formats.
const (
	LZ4Lite Variant = iota
	GPULZLite
	ZstdLite
	GDeflateLite
)

// String returns the surrogate's display name.
func (v Variant) String() string {
	switch v {
	case LZ4Lite:
		return "lz4-lite"
	case GPULZLite:
		return "gpulz-lite"
	case ZstdLite:
		return "zstd-lite"
	case GDeflateLite:
		return "gdeflate-lite"
	}
	return fmt.Sprintf("lz.Variant(%d)", int(v))
}

const (
	minMatch  = 4
	hashBits  = 15
	hashShift = 32 - hashBits
)

// seq is one LZ sequence: litLen literals followed by a match.
type seq struct {
	litLen   int
	matchLen int // 0 only for the final literal run
	dist     int
}

func hash4(p []byte) uint32 {
	v := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
	return (v * 2654435761) >> hashShift
}

// parse runs a greedy hash-chain parse of src.
func parse(src []byte, window, maxChain, maxMatch int) []seq {
	var seqs []seq
	n := len(src)
	if n < minMatch {
		if n > 0 {
			seqs = append(seqs, seq{litLen: n})
		}
		return seqs
	}
	head := make([]int32, 1<<hashBits)
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, n)
	litStart := 0
	i := 0
	insert := func(pos int) {
		h := hash4(src[pos:])
		prev[pos] = head[h]
		head[h] = int32(pos)
	}
	for i+minMatch <= n {
		h := hash4(src[i:])
		cand := head[h]
		bestLen, bestDist := 0, 0
		chain := maxChain
		for cand >= 0 && chain > 0 && i-int(cand) <= window {
			c := int(cand)
			l := matchLen(src, c, i, maxMatch)
			if l > bestLen {
				bestLen, bestDist = l, i-c
				if l >= maxMatch {
					break
				}
			}
			cand = prev[c]
			chain--
		}
		if bestLen >= minMatch {
			seqs = append(seqs, seq{litLen: i - litStart, matchLen: bestLen, dist: bestDist})
			end := i + bestLen
			insert(i)
			for p := i + 1; p < end && p+minMatch <= n; p++ {
				insert(p)
			}
			i = end
			litStart = i
			continue
		}
		insert(i)
		i++
	}
	if litStart < n {
		seqs = append(seqs, seq{litLen: n - litStart})
	}
	return seqs
}

func matchLen(src []byte, a, b, maxMatch int) int {
	n := len(src)
	l := 0
	for b+l < n && l < maxMatch && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// expand reconstructs the original data from sequences and a literal stream.
func expand(seqs []seq, lits []byte, origLen int) ([]byte, error) {
	out := make([]byte, 0, origLen)
	lp := 0
	for _, s := range seqs {
		if s.litLen < 0 || lp+s.litLen > len(lits) {
			return nil, ErrCorrupt
		}
		out = append(out, lits[lp:lp+s.litLen]...)
		lp += s.litLen
		if s.matchLen == 0 {
			continue
		}
		if s.dist <= 0 || s.dist > len(out) || s.matchLen < 0 {
			return nil, ErrCorrupt
		}
		start := len(out) - s.dist
		for k := 0; k < s.matchLen; k++ {
			out = append(out, out[start+k]) // overlap-safe
		}
	}
	if len(out) != origLen {
		return nil, ErrCorrupt
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Containers.

// Encode compresses src with the chosen variant.
func Encode(dev *gpusim.Device, src []byte, v Variant) ([]byte, error) {
	switch v {
	case LZ4Lite:
		return encodeVarint(src, 1<<16, 32, 1<<16), nil
	case GPULZLite:
		return encodeLZSS(src), nil
	case ZstdLite:
		return encodeEntropy(dev, src, true)
	case GDeflateLite:
		return encodeEntropy(dev, src, false)
	}
	return nil, fmt.Errorf("lz: unknown variant %d", v)
}

// Decode reverses Encode for the same variant.
func Decode(dev *gpusim.Device, data []byte, v Variant) ([]byte, error) {
	switch v {
	case LZ4Lite:
		return decodeVarint(data)
	case GPULZLite:
		return decodeLZSS(data)
	case ZstdLite:
		return decodeEntropy(dev, data, true)
	case GDeflateLite:
		return decodeEntropy(dev, data, false)
	}
	return nil, fmt.Errorf("lz: unknown variant %d", v)
}

// encodeVarint is the byte-aligned LZ4-like container:
// uvarint origLen, then per sequence: uvarint litLen, literals,
// uvarint matchLen (0 terminates), uvarint dist.
func encodeVarint(src []byte, window, maxChain, maxMatch int) []byte {
	seqs := parse(src, window, maxChain, maxMatch)
	out := bitio.AppendUvarint(nil, uint64(len(src)))
	pos := 0
	for _, s := range seqs {
		out = bitio.AppendUvarint(out, uint64(s.litLen))
		out = append(out, src[pos:pos+s.litLen]...)
		pos += s.litLen + s.matchLen
		out = bitio.AppendUvarint(out, uint64(s.matchLen))
		if s.matchLen > 0 {
			out = bitio.AppendUvarint(out, uint64(s.dist))
		}
	}
	// Explicit terminator for the case where the last seq had a match.
	out = bitio.AppendUvarint(out, 0)
	out = bitio.AppendUvarint(out, 0)
	return out
}

func decodeVarint(data []byte) ([]byte, error) {
	origLen, n := bitio.Uvarint(data)
	if n == 0 {
		return nil, ErrCorrupt
	}
	off := n
	out := make([]byte, 0, origLen)
	for {
		litLen, n := bitio.Uvarint(data[off:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		off += n
		if off+int(litLen) > len(data) {
			return nil, ErrCorrupt
		}
		out = append(out, data[off:off+int(litLen)]...)
		off += int(litLen)
		ml, n := bitio.Uvarint(data[off:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		off += n
		if ml == 0 {
			if litLen == 0 {
				break // terminator
			}
			continue
		}
		dist, n := bitio.Uvarint(data[off:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		off += n
		if dist == 0 || int(dist) > len(out) {
			return nil, ErrCorrupt
		}
		start := len(out) - int(dist)
		for k := 0; k < int(ml); k++ {
			out = append(out, out[start+k])
		}
		if len(out) > int(origLen) {
			return nil, ErrCorrupt
		}
	}
	if len(out) != int(origLen) {
		return nil, ErrCorrupt
	}
	return out, nil
}

// LZSS parameters for the GPULZ-like container.
const (
	lzssWindow  = 1 << 12 // 12-bit distances
	lzssLenBits = 6
	lzssMaxLen  = minMatch + (1 << lzssLenBits) - 1
)

func encodeLZSS(src []byte) []byte {
	seqs := parse(src, lzssWindow-1, 16, lzssMaxLen)
	w := bitio.NewWriter(len(src)/2 + 16)
	pos := 0
	for _, s := range seqs {
		for k := 0; k < s.litLen; k++ {
			w.WriteBit(0)
			w.WriteBits(uint64(src[pos+k]), 8)
		}
		pos += s.litLen
		if s.matchLen > 0 {
			w.WriteBit(1)
			w.WriteBits(uint64(s.dist), 12)
			w.WriteBits(uint64(s.matchLen-minMatch), lzssLenBits)
			pos += s.matchLen
		}
	}
	out := bitio.AppendUvarint(nil, uint64(len(src)))
	return append(out, w.Bytes()...)
}

func decodeLZSS(data []byte) ([]byte, error) {
	origLen, n := bitio.Uvarint(data)
	if n == 0 {
		return nil, ErrCorrupt
	}
	r := bitio.NewReader(data[n:])
	out := make([]byte, 0, origLen)
	for len(out) < int(origLen) {
		flag, err := r.ReadBit()
		if err != nil {
			return nil, ErrCorrupt
		}
		if flag == 0 {
			b, err := r.ReadBits(8)
			if err != nil {
				return nil, ErrCorrupt
			}
			out = append(out, byte(b))
			continue
		}
		dist, err := r.ReadBits(12)
		if err != nil {
			return nil, ErrCorrupt
		}
		ml, err := r.ReadBits(lzssLenBits)
		if err != nil {
			return nil, ErrCorrupt
		}
		l := int(ml) + minMatch
		if dist == 0 || int(dist) > len(out) || len(out)+l > int(origLen) {
			return nil, ErrCorrupt
		}
		start := len(out) - int(dist)
		for k := 0; k < l; k++ {
			out = append(out, out[start+k])
		}
	}
	return out, nil
}

// encodeEntropy is the zstd/gdeflate-like container: the parse is split into
// a literal stream and a sequence stream, each entropy-coded.
func encodeEntropy(dev *gpusim.Device, src []byte, useANS bool) ([]byte, error) {
	seqs := parse(src, 1<<17, 64, 1<<16)
	lits := make([]byte, 0, len(src)/2)
	seqBuf := make([]byte, 0, len(seqs)*4)
	pos := 0
	for _, s := range seqs {
		lits = append(lits, src[pos:pos+s.litLen]...)
		pos += s.litLen + s.matchLen
		seqBuf = bitio.AppendUvarint(seqBuf, uint64(s.litLen))
		seqBuf = bitio.AppendUvarint(seqBuf, uint64(s.matchLen))
		if s.matchLen > 0 {
			seqBuf = bitio.AppendUvarint(seqBuf, uint64(s.dist))
		}
	}
	var litBlob, seqBlob []byte
	var err error
	if useANS {
		litBlob = ans.Encode(lits)
		seqBlob = ans.Encode(seqBuf)
	} else {
		litBlob, err = huffman.EncodeBytes(dev, lits)
		if err != nil {
			return nil, err
		}
		seqBlob, err = huffman.EncodeBytes(dev, seqBuf)
		if err != nil {
			return nil, err
		}
	}
	out := bitio.AppendUvarint(nil, uint64(len(src)))
	out = bitio.AppendUvarint(out, uint64(len(seqs)))
	out = bitio.AppendUvarint(out, uint64(len(litBlob)))
	out = append(out, litBlob...)
	out = bitio.AppendUvarint(out, uint64(len(seqBlob)))
	return append(out, seqBlob...), nil
}

func decodeEntropy(dev *gpusim.Device, data []byte, useANS bool) ([]byte, error) {
	origLen, n := bitio.Uvarint(data)
	if n == 0 {
		return nil, ErrCorrupt
	}
	off := n
	nSeqs, n := bitio.Uvarint(data[off:])
	if n == 0 {
		return nil, ErrCorrupt
	}
	off += n
	litLen, n := bitio.Uvarint(data[off:])
	if n == 0 || off+n+int(litLen) > len(data) {
		return nil, ErrCorrupt
	}
	off += n
	litBlob := data[off : off+int(litLen)]
	off += int(litLen)
	seqLen, n := bitio.Uvarint(data[off:])
	if n == 0 || off+n+int(seqLen) > len(data) {
		return nil, ErrCorrupt
	}
	off += n
	seqBlob := data[off : off+int(seqLen)]

	var lits, seqBuf []byte
	var err error
	if useANS {
		lits, err = ans.Decode(litBlob)
		if err != nil {
			return nil, err
		}
		seqBuf, err = ans.Decode(seqBlob)
	} else {
		lits, err = huffman.DecodeBytes(dev, litBlob)
		if err != nil {
			return nil, err
		}
		seqBuf, err = huffman.DecodeBytes(dev, seqBlob)
	}
	if err != nil {
		return nil, err
	}
	seqs := make([]seq, 0, nSeqs)
	sp := 0
	for i := uint64(0); i < nSeqs; i++ {
		ll, n := bitio.Uvarint(seqBuf[sp:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		sp += n
		ml, n := bitio.Uvarint(seqBuf[sp:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		sp += n
		s := seq{litLen: int(ll), matchLen: int(ml)}
		if ml > 0 {
			d, n := bitio.Uvarint(seqBuf[sp:])
			if n == 0 {
				return nil, ErrCorrupt
			}
			sp += n
			s.dist = int(d)
		}
		seqs = append(seqs, s)
	}
	return expand(seqs, lits, int(origLen))
}
