// Fixture for //lint:ignore handling: one directive that suppresses a real
// finding, one that matches nothing and must be reported as stale. Parsed,
// never compiled.
package ignore

import "errors"

// ErrCorrupt puts decode functions in corrupterr's scope.
var ErrCorrupt = errors.New("ignore: corrupt stream")

// decodeSuppressed would be a corrupterr finding, but the directive on the
// line above the violation suppresses it.
func decodeSuppressed(p []byte) error {
	//lint:ignore corrupterr fixture demonstrates a justified suppression
	return errors.New("deliberately bare")
}

// The next directive sits on a clean line: nothing to suppress, so the
// framework must report it as staleignore.
//
//lint:ignore wirelen stale directive that matches no finding
var clean = 0
