package lccodec

import (
	"math/rand"
	"testing"
)

func benchInput(n int) []byte {
	rng := rand.New(rand.NewSource(7))
	out := make([]byte, n)
	for i := range out {
		if rng.Intn(12) == 0 {
			out[i] = byte(128 + rng.NormFloat64()*5)
		} else {
			out[i] = 128
		}
	}
	return out
}

func benchPipeline(b *testing.B, spec string) {
	data := benchInput(1 << 22)
	p := MustParse(spec)
	enc, err := p.Encode(dev, data)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := p.Encode(dev, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := p.Decode(dev, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHiCRPipeline(b *testing.B) { benchPipeline(b, "HF-RRE4-TCMS8-RZE1") }

func BenchmarkHiTPPipeline(b *testing.B) { benchPipeline(b, "TCMS1-BIT1-RRE1") }

func BenchmarkRRE1(b *testing.B) { benchPipeline(b, "RRE1") }

func BenchmarkBitShuffle(b *testing.B) { benchPipeline(b, "BIT1") }
