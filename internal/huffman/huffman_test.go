package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, syms []uint16, alphabet int) {
	t.Helper()
	enc, err := Encode(dev, syms, alphabet)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(dev, enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != len(syms) {
		t.Fatalf("len %d != %d", len(dec), len(syms))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("mismatch at %d: %d != %d", i, dec[i], syms[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil, 256) }

func TestRoundTripSingleSymbol(t *testing.T) {
	syms := make([]uint16, 1000)
	roundTrip(t, syms, 256)
}

func TestRoundTripTwoSymbols(t *testing.T) {
	syms := make([]uint16, 500)
	for i := range syms {
		syms[i] = uint16(i % 2)
	}
	roundTrip(t, syms, 2)
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint16, 200_000)
	for i := range syms {
		// Geometric-ish distribution centered at 128, like quant codes.
		v := 128
		for rng.Intn(2) == 0 && v < 255 {
			v++
		}
		syms[i] = uint16(v)
	}
	roundTrip(t, syms, 256)
}

func TestRoundTripUniform16Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	syms := make([]uint16, 50_000)
	for i := range syms {
		syms[i] = uint16(rng.Intn(1024))
	}
	roundTrip(t, syms, 1024)
}

func TestRoundTripCrossesChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]uint16, DefaultChunk*2+777)
	for i := range syms {
		syms[i] = uint16(rng.Intn(8))
	}
	roundTrip(t, syms, 256)
}

func TestCompressionBeatsRaw(t *testing.T) {
	// Highly skewed data must compress well below 1 byte/symbol.
	syms := make([]uint16, 100_000)
	rng := rand.New(rand.NewSource(4))
	for i := range syms {
		if rng.Intn(100) == 0 {
			syms[i] = uint16(rng.Intn(256))
		} else {
			syms[i] = 128
		}
	}
	enc, err := Encode(dev, syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(syms)/4 {
		t.Fatalf("skewed data compressed to %d bytes (%.2f bits/sym)", len(enc), float64(len(enc))*8/float64(len(syms)))
	}
}

func TestEncodeBytesRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly: ")
	data = bytes.Repeat(data, 100)
	enc, err := EncodeBytes(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(dev, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("byte round trip mismatch")
	}
	if len(enc) >= len(data) {
		t.Fatalf("text did not compress: %d >= %d", len(enc), len(data))
	}
}

func TestSymbolOutsideAlphabet(t *testing.T) {
	if _, err := Encode(dev, []uint16{300}, 256); err == nil {
		t.Fatal("want error for out-of-alphabet symbol")
	}
}

func TestBadAlphabet(t *testing.T) {
	if _, err := Encode(dev, nil, 0); err == nil {
		t.Fatal("want error for alphabet 0")
	}
	if _, err := Encode(dev, nil, 1<<17); err == nil {
		t.Fatal("want error for oversized alphabet")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	syms := make([]uint16, 10_000)
	rng := rand.New(rand.NewSource(5))
	for i := range syms {
		syms[i] = uint16(rng.Intn(200))
	}
	enc, err := Encode(dev, syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at various points must error, never panic.
	for _, cut := range []int{0, 1, 2, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(dev, enc[:cut]); err == nil {
			t.Fatalf("truncated to %d bytes: want error", cut)
		}
	}
	// Bit flips in the header region must error or decode to something,
	// never panic.
	for i := 0; i < 20 && i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		Decode(dev, bad) // must not panic
	}
}

func TestLengthLimiting(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; lengths must be capped.
	freq := make([]int64, 64)
	a, b := int64(1), int64(1)
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
		if a > 1<<40 {
			a = 1 << 40
		}
	}
	lens, err := buildLengths(freq)
	if err != nil {
		t.Fatal(err)
	}
	kraft := 0.0
	for _, l := range lens {
		if l > MaxCodeLen {
			t.Fatalf("length %d exceeds cap", l)
		}
		if l > 0 {
			kraft += 1 / float64(int(1)<<l)
		}
	}
	if kraft > 1.0000001 {
		t.Fatalf("Kraft sum %v > 1", kraft)
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	freq := []int64{10, 3, 1, 1, 7, 0, 2, 40}
	lens, err := buildLengths(freq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildDecodeTable(lens); err != nil {
		t.Fatalf("codes overlap: %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc, err := EncodeBytes(dev, data)
		if err != nil {
			return false
		}
		dec, err := DecodeBytes(dev, enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
