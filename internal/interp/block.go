package interp

// This file contains the per-block interpolation engine shared by
// compression, decompression and auto-tuning. A block covers the inclusive
// coordinate ranges [lo, hi] per dimension (neighbouring blocks share their
// boundary faces, like the CUDA shared-memory chunks of Fig. 1/3), keeps a
// local reconstruction buffer, and walks the levels coarse-to-fine. The
// visit callback decides what happens at each predicted point
// (quantize-and-store for compression, apply-code for decompression,
// accumulate-error for tuning).

// Batched selects the fused stride-row prediction kernels (the default).
// The per-point scalar path stays selectable so the equivalence property
// tests can assert byte-identical codes, outliers and reconstructions
// between the two. Toggle only from tests, before any launch.
var Batched = true

// dimClass constrains one coordinate of a phase's point set.
type dimClass uint8

const (
	even2 dimClass = iota // coord ≡ 0 (mod 2s): known from previous level
	odd                   // coord ≡ s (mod 2s): predicted in this phase
	anyS                  // coord ≡ 0 (mod s): filled earlier in this level
)

// phase is one parallel interpolation step within a level: the classes
// constrain the point lattice, dims lists the interpolation directions
// (the odd dims).
type phase struct {
	class [3]dimClass // z, y, x
	dims  []int       // 0=z, 1=y, 2=x
}

var (
	phasesSeqXYZ = []phase{
		{class: [3]dimClass{even2, even2, odd}, dims: []int{2}},
		{class: [3]dimClass{even2, odd, anyS}, dims: []int{1}},
		{class: [3]dimClass{odd, anyS, anyS}, dims: []int{0}},
	}
	phasesSeqZYX = []phase{
		{class: [3]dimClass{odd, even2, even2}, dims: []int{0}},
		{class: [3]dimClass{anyS, odd, even2}, dims: []int{1}},
		{class: [3]dimClass{anyS, anyS, odd}, dims: []int{2}},
	}
	phasesMD = []phase{
		// Edge centers: exactly one odd dim (Fig. 4b left).
		{class: [3]dimClass{even2, even2, odd}, dims: []int{2}},
		{class: [3]dimClass{even2, odd, even2}, dims: []int{1}},
		{class: [3]dimClass{odd, even2, even2}, dims: []int{0}},
		// Face centers: two odd dims (Fig. 4b middle).
		{class: [3]dimClass{even2, odd, odd}, dims: []int{1, 2}},
		{class: [3]dimClass{odd, even2, odd}, dims: []int{0, 2}},
		{class: [3]dimClass{odd, odd, even2}, dims: []int{0, 1}},
		// Body centers: all odd (Fig. 4b right).
		{class: [3]dimClass{odd, odd, odd}, dims: []int{0, 1, 2}},
	}
)

func phasesFor(s Scheme) []phase {
	switch s {
	case Seq1DXYZ:
		return phasesSeqXYZ
	case Seq1DZYX:
		return phasesSeqZYX
	default:
		return phasesMD
	}
}

// block is the per-block working state.
type block struct {
	g       Grid
	cfg     *Config
	lo, hi  [3]int // inclusive global bounds (z, y, x)
	ohi     [3]int // exclusive upper owner bounds
	ext     [3]int // local extents (hi-lo+1)
	buf     []float32
	preds   []float32 // row-kernel prediction scratch (one stride-row)
	anchors []float32 // dense global anchor grid
	az      [3]int    // anchor grid dims
}

// blockGrid computes the number of blocks per dimension.
func blockGrid(g Grid, cfg *Config) (nbz, nby, nbx int) {
	f := func(n, b int) int {
		if n <= 1 {
			return 1
		}
		return (n - 2 + b) / b // ceil((n-1)/b)
	}
	return f(g.Nz, cfg.BlockZ), f(g.Ny, cfg.BlockY), f(g.Nx, cfg.BlockX)
}

// initBlock positions the block with grid index (bz, by, bx).
func (b *block) initBlock(g Grid, cfg *Config, bz, by, bx int) {
	b.g = g
	b.cfg = cfg
	nbz, nby, nbx := blockGrid(g, cfg)
	dims := [3]int{g.Nz, g.Ny, g.Nx}
	bsz := [3]int{cfg.BlockZ, cfg.BlockY, cfg.BlockX}
	idx := [3]int{bz, by, bx}
	nb := [3]int{nbz, nby, nbx}
	for d := 0; d < 3; d++ {
		b.lo[d] = idx[d] * bsz[d]
		b.hi[d] = b.lo[d] + bsz[d]
		if b.hi[d] > dims[d]-1 {
			b.hi[d] = dims[d] - 1
		}
		if idx[d] == nb[d]-1 {
			b.ohi[d] = dims[d]
		} else {
			b.ohi[d] = b.lo[d] + bsz[d]
		}
		b.ext[d] = b.hi[d] - b.lo[d] + 1
	}
	need := b.ext[0] * b.ext[1] * b.ext[2]
	if cap(b.buf) < need {
		b.buf = make([]float32, need)
	} else {
		b.buf = b.buf[:need]
	}
}

// local returns the index into buf for global coords.
func (b *block) local(z, y, x int) int {
	return ((z-b.lo[0])*b.ext[1]+(y-b.lo[1]))*b.ext[2] + (x - b.lo[2])
}

// owns reports whether this block is the unique emitter for the point.
func (b *block) owns(z, y, x int) bool {
	return z < b.ohi[0] && y < b.ohi[1] && x < b.ohi[2] &&
		z >= b.lo[0] && y >= b.lo[1] && x >= b.lo[2]
}

// anchorAt reads the dense anchor grid at global coords (multiples of the
// anchor stride).
func (b *block) anchorAt(z, y, x int) float32 {
	a := b.cfg.AnchorStride
	return b.anchors[((z/a)*b.az[1]+(y/a))*b.az[2]+(x/a)]
}

// loadAnchors copies the block's anchor points into buf and reports them to
// visitAnchor (used by decompression to emit them into the output).
func (b *block) loadAnchors(visitAnchor func(z, y, x int, v float32)) {
	a := b.cfg.AnchorStride
	for z := b.lo[0]; z <= b.hi[0]; z += a {
		for y := b.lo[1]; y <= b.hi[1]; y += a {
			for x := b.lo[2]; x <= b.hi[2]; x += a {
				v := b.anchorAt(z, y, x)
				b.buf[b.local(z, y, x)] = v
				if visitAnchor != nil {
					visitAnchor(z, y, x, v)
				}
			}
		}
	}
}

// interp1 performs a 1-D midpoint interpolation from up to four neighbours
// at -3s, -s, +s, +3s (a, p, q, d) with availability flags, returning the
// prediction and its spline order (3 cubic, 2 quadratic, 1 linear,
// 0 extrapolation/copy).
//
//cuszhi:hotpath
func interp1(a, p, q, d float32, ha, hp, hq, hd bool, spline Spline) (float32, int) {
	switch {
	case hp && hq:
		if spline == Cubic {
			switch {
			case ha && hd:
				return (-a + 9*p + 9*q - d) / 16, 3
			case ha:
				return (-a + 6*p + 3*q) / 8, 2
			case hd:
				return (3*p + 6*q - d) / 8, 2
			}
		}
		return (p + q) / 2, 1
	case hp:
		if ha {
			return (3*p - a) / 2, 0
		}
		return p, 0
	case hq:
		if hd {
			return (3*q - d) / 2, 0
		}
		return q, 0
	}
	return 0, 0
}

// strides returns buf's element stride along each dimension.
func (b *block) strides() [3]int {
	return [3]int{b.ext[1] * b.ext[2], b.ext[2], 1}
}

// predict computes the multi-(or single-)dimensional prediction for the
// point at global coords g, interpolating along dims with stride s and
// averaging only the highest-order directional predictions (§5.1.2).
// idx is the point's precomputed local buffer index.
//
//cuszhi:hotpath
func (b *block) predict(gz, gy, gx, idx, s int, dims []int, spline Spline) float32 {
	gc := [3]int{gz, gy, gx}
	st := b.strides()
	// Interior fast path: when every interpolation direction has all four
	// cubic neighbours inside the block (the vast majority of points), each
	// direction yields the order-3 prediction, so the general flag/order
	// bookkeeping below collapses to a branch-free average. 1.0/16 is a
	// power of two, so the result is bit-identical to the /16 general path.
	if spline == Cubic {
		var sum float32
		n := 0
		for _, d := range dims {
			c := gc[d]
			if c-3*s < b.lo[d] || c+3*s > b.hi[d] {
				n = -1
				break
			}
			step := s * st[d]
			sum += (-b.buf[idx-3*step] + 9*b.buf[idx-step] + 9*b.buf[idx+step] - b.buf[idx+3*step]) * (1.0 / 16)
			n++
		}
		if n > 0 {
			return sum / float32(n)
		}
	}
	bestOrder := -1
	var sum float32
	var cnt int
	for _, d := range dims {
		c := gc[d]
		step := s * st[d]
		var a, p, q, dd float32
		var ha, hp, hq, hd bool
		if c-s >= b.lo[d] {
			hp = true
			p = b.buf[idx-step]
		}
		if c-3*s >= b.lo[d] {
			ha = true
			a = b.buf[idx-3*step]
		}
		if c+s <= b.hi[d] {
			hq = true
			q = b.buf[idx+step]
		}
		if c+3*s <= b.hi[d] {
			hd = true
			dd = b.buf[idx+3*step]
		}
		pred, order := interp1(a, p, q, dd, ha, hp, hq, hd, spline)
		if order > bestOrder {
			bestOrder = order
			sum = pred
			cnt = 1
		} else if order == bestOrder {
			sum += pred
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float32(cnt)
}

// predictRowCubic fills preds with the order-3 interior predictions for a
// whole stride-row: point i sits at buffer index idx0 + i*xstep, and every
// interpolation direction in dims has all four cubic neighbours inside the
// block (the caller guarantees it). Accumulation starts from an explicit
// zero fill and runs dims in order, then divides by the direction count —
// the exact float op order of predict's interior fast path, so the results
// are bit-identical.
//
//cuszhi:hotpath
func (b *block) predictRowCubic(preds []float32, idx0, xstep, s int, dims []int) {
	st := b.strides()
	buf := b.buf
	n := len(preds)
	preds = preds[:n:n]
	clear(preds)
	for _, d := range dims {
		off1 := s * st[d]
		off3 := 3 * off1
		pa := idx0 - off3
		pp := idx0 - off1
		pq := idx0 + off1
		pd := idx0 + off3
		for i := 0; i < n; i++ {
			preds[i] += (-buf[pa] + 9*buf[pp] + 9*buf[pq] - buf[pd]) * (1.0 / 16)
			pa += xstep
			pp += xstep
			pq += xstep
			pd += xstep
		}
	}
	if len(dims) > 1 {
		nf := float32(len(dims))
		for i := 0; i < n; i++ {
			preds[i] /= nf
		}
	}
}

// predictRowLinear is predictRowCubic's order-1 sibling: both ±s
// neighbours of every direction are inside the block. The first direction
// assigns and later ones accumulate, mirroring the best-order bookkeeping
// of the scalar general path (which all-interior linear rows collapse to).
//
//cuszhi:hotpath
func (b *block) predictRowLinear(preds []float32, idx0, xstep, s int, dims []int) {
	st := b.strides()
	buf := b.buf
	n := len(preds)
	preds = preds[:n:n]
	for di, d := range dims {
		off := s * st[d]
		pp := idx0 - off
		pq := idx0 + off
		if di == 0 {
			for i := 0; i < n; i++ {
				preds[i] = (buf[pp] + buf[pq]) / 2
				pp += xstep
				pq += xstep
			}
		} else {
			for i := 0; i < n; i++ {
				preds[i] += (buf[pp] + buf[pq]) / 2
				pp += xstep
				pq += xstep
			}
		}
	}
	if len(dims) > 1 {
		nf := float32(len(dims))
		for i := 0; i < n; i++ {
			preds[i] /= nf
		}
	}
}

// visitFunc handles one predicted point: it receives the global coords,
// the prediction, and whether this block owns the point; it returns the
// reconstructed value to store in buf.
type visitFunc func(z, y, x int, pred float32, owned bool) float32

// runLevel walks one interpolation level (stride s of the new points) with
// the given level config, calling visit for every new point in
// deterministic phase order.
func (b *block) runLevel(s int, lc LevelConfig, visit visitFunc) {
	for _, ph := range phasesFor(lc.Scheme) {
		var start, step [3]int
		skip := false
		for d := 0; d < 3; d++ {
			switch ph.class[d] {
			case odd:
				start[d] = b.lo[d] + s
				step[d] = 2 * s
			case even2:
				start[d] = b.lo[d]
				step[d] = 2 * s
			default: // anyS
				start[d] = b.lo[d]
				step[d] = s
			}
			if start[d] > b.hi[d] {
				skip = true
			}
		}
		if skip {
			continue
		}
		st := b.strides()
		// Fused row fast path: the spline's interior reach and the row's x
		// interior span are phase constants, so each stride-row whose z/y
		// directions are fully interior runs one whole-row prediction kernel
		// plus scalar halo points, instead of a predict call per point.
		reach := 0
		if Batched {
			if lc.Spline == Cubic {
				reach = 3 * s
			} else {
				reach = s
			}
		}
		xIntLo, xIntHi := start[2], b.hi[2]
		if reach > 0 {
			for _, d := range ph.dims {
				if d != 2 {
					continue
				}
				if lo := b.lo[2] + reach; xIntLo < lo {
					k := (lo - start[2] + step[2] - 1) / step[2]
					xIntLo = start[2] + k*step[2]
				}
				xIntHi = b.hi[2] - reach
			}
		}
		for z := start[0]; z <= b.hi[0]; z += step[0] {
			zOwn := z < b.ohi[0]
			zBase := (z - b.lo[0]) * st[0]
			for y := start[1]; y <= b.hi[1]; y += step[1] {
				yOwn := zOwn && y < b.ohi[1]
				yBase := zBase + (y-b.lo[1])*st[1]
				rowOK := reach > 0 && xIntLo <= xIntHi
				if rowOK {
					for _, d := range ph.dims {
						if d == 0 && (z-reach < b.lo[0] || z+reach > b.hi[0]) ||
							d == 1 && (y-reach < b.lo[1] || y+reach > b.hi[1]) {
							rowOK = false
							break
						}
					}
				}
				x := start[2]
				if rowOK {
					for ; x < xIntLo; x += step[2] {
						idx := yBase + (x - b.lo[2])
						pred := b.predict(z, y, x, idx, s, ph.dims, lc.Spline)
						b.buf[idx] = visit(z, y, x, pred, yOwn && x < b.ohi[2])
					}
					count := (xIntHi-x)/step[2] + 1
					if cap(b.preds) < count {
						b.preds = make([]float32, count)
					}
					preds := b.preds[:count]
					idx0 := yBase + (x - b.lo[2])
					if lc.Spline == Cubic {
						b.predictRowCubic(preds, idx0, step[2], s, ph.dims)
					} else {
						b.predictRowLinear(preds, idx0, step[2], s, ph.dims)
					}
					for i := 0; i < count; i, x = i+1, x+step[2] {
						idx := yBase + (x - b.lo[2])
						b.buf[idx] = visit(z, y, x, preds[i], yOwn && x < b.ohi[2])
					}
				}
				for ; x <= b.hi[2]; x += step[2] {
					idx := yBase + (x - b.lo[2])
					pred := b.predict(z, y, x, idx, s, ph.dims, lc.Spline)
					b.buf[idx] = visit(z, y, x, pred, yOwn && x < b.ohi[2])
				}
			}
		}
	}
}

// run executes all levels coarse-to-fine.
func (b *block) run(visit visitFunc) {
	li := 0
	for s := b.cfg.AnchorStride / 2; s >= 1; s >>= 1 {
		b.runLevel(s, b.cfg.PerLevel[li], visit)
		li++
	}
}
