package stream

import (
	"bytes"
	"errors"
	"io"
	"os"
	"sync"
	"testing"

	"repro/cuszhi"
	"repro/internal/core"
	"repro/internal/metrics"
)

// memFile is an in-memory File: the crash-point sweeps truncate and
// re-open hundreds of stores, which would be pointlessly slow on disk.
type memFile struct {
	b     []byte
	syncs int
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	if need := off + int64(len(p)); need > int64(len(m.b)) {
		m.b = append(m.b, make([]byte, need-int64(len(m.b)))...)
	}
	return copy(m.b[off:], p), nil
}

func (m *memFile) Truncate(size int64) error {
	if size > int64(len(m.b)) {
		m.b = append(m.b, make([]byte, size-int64(len(m.b)))...)
		return nil
	}
	m.b = m.b[:size]
	return nil
}

func (m *memFile) Sync() error { m.syncs++; return nil }

func (m *memFile) Seek(off int64, whence int) (int64, error) {
	if off != 0 || whence != io.SeekEnd {
		return 0, errors.New("memFile: only Seek(0, End)")
	}
	return int64(len(m.b)), nil
}

// decodeStore decompresses the whole container a memFile holds.
func decodeStore(t *testing.T, m *memFile) ([]float32, []int) {
	t.Helper()
	recon, dims, err := Decompress(m.b)
	if err != nil {
		t.Fatalf("decode store: %v", err)
	}
	return recon, dims
}

// appendPlanes grows the store with vals through an OpenAppend writer.
func appendPlanes(t *testing.T, m *memFile, vals []float32, opt ...Option) {
	t.Helper()
	w, err := OpenAppend(m, opt...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAppendGrowsV5BackendStore(t *testing.T) {
	dims := []int{17, 8, 9}
	data, _ := genField(t, "miranda", dims)
	ps := 8 * 9
	eb := cuszhi.AbsEB(data, 1e-3)
	// Seed store: first 10 planes (chunks of 4, 4, 2 — the short last chunk
	// becomes a short *interior* chunk once the appends land after it).
	m := &memFile{b: writeV4(t, data[:10*ps], []int{10, 8, 9}, eb, 4, WithMode("szx"))}
	baseline, _ := decodeStore(t, m)

	appendPlanes(t, m, data[10*ps:])

	recon, gotDims := decodeStore(t, m)
	if gotDims[0] != 17 {
		t.Fatalf("dims after append = %v", gotDims)
	}
	if !metrics.WithinBound(data, recon, eb) {
		t.Fatal("appended store reconstruction out of bound")
	}
	// The pre-append chunks were untouched, so their reconstruction is
	// bit-identical.
	for i, v := range baseline {
		if recon[i] != v {
			t.Fatalf("pre-append value %d changed: %v vs %v", i, recon[i], v)
		}
	}
	r, err := OpenReaderAt(m, int64(len(m.b)))
	if err != nil {
		t.Fatalf("appended store not seekable: %v", err)
	}
	if r.Version() != 5 || r.NumChunks() != 5 {
		t.Fatalf("version %d, %d chunks (want v5, 5 chunks: 4+4+2+4+3)", r.Version(), r.NumChunks())
	}
	if hist := r.CodecHistogram(); hist["szx"] != 5 {
		t.Fatalf("codec histogram = %v, want szx×5 (append continued the store codec)", hist)
	}
	if m.syncs == 0 {
		t.Fatal("seal never fsynced")
	}
}

func TestOpenAppendContinuesV4Assembly(t *testing.T) {
	dims := []int{12, 6, 6}
	data, _ := genField(t, "nyx", dims)
	ps := 36
	eb := cuszhi.AbsEB(data, 1e-2)
	m := &memFile{b: writeV4(t, data[:8*ps], []int{8, 6, 6}, eb, 4, WithMode(cuszhi.ModeTP))}

	appendPlanes(t, m, data[8*ps:]) // no mode: must continue hi-tp from the frames

	recon, gotDims := decodeStore(t, m)
	if gotDims[0] != 12 || !metrics.WithinBound(data, recon, eb) {
		t.Fatalf("append decode: dims %v", gotDims)
	}
	rec, err := CheckStore(m)
	if err != nil || !rec.Sealed() {
		t.Fatalf("store not sealed after append: %+v, %v", rec, err)
	}
	if rec.Header.Version != 4 {
		t.Fatalf("version changed to %d", rec.Header.Version)
	}
	// All frames must still carry hi-tp's mode byte.
	for i, mode := range rec.Modes {
		if opts, ok := core.OptionsForFrameMode(mode); !ok || opts.Name != "cuSZ-Hi-TP" {
			t.Fatalf("frame %d mode %#x is not hi-tp", i, mode)
		}
	}
}

func TestOpenAppendEmptyCloseKeepsStoreBytes(t *testing.T) {
	dims := []int{9, 5, 5}
	data, _ := genField(t, "jhtdb", dims)
	blob := writeV4(t, data, dims, 0.05, 4)
	m := &memFile{b: append([]byte(nil), blob...)}
	appendPlanes(t, m, nil) // open + close, nothing added
	if !bytes.Equal(m.b, blob) {
		t.Fatalf("no-op append changed the store: %d vs %d bytes", len(m.b), len(blob))
	}
}

func TestOpenAppendModeValidation(t *testing.T) {
	dims := []int{8, 5, 5}
	data, _ := genField(t, "nyx", dims)
	v4 := writeV4(t, data, dims, 0.05, 4) // hi-cr, format v4

	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"auto needs v5", []Option{WithAutoMode()}},
		{"backend codec needs v5", []Option{WithMode("szx")}},
		{"unknown mode", []Option{WithMode("no-such-codec")}},
	} {
		m := &memFile{b: append([]byte(nil), v4...)}
		if _, err := OpenAppend(m, tc.opts...); err == nil {
			t.Errorf("%s: OpenAppend accepted", tc.name)
		} else if !bytes.Equal(m.b, v4) {
			t.Errorf("%s: rejected open modified the store", tc.name)
		}
	}
}

func TestOpenAppendModeOverrideMixesV5(t *testing.T) {
	dims := []int{12, 5, 5}
	data, _ := genField(t, "miranda", dims)
	ps := 25
	eb := cuszhi.AbsEB(data, 1e-3)
	m := &memFile{b: writeV4(t, data[:6*ps], []int{6, 5, 5}, eb, 3, WithMode("szp"))}

	// Explicit assembly override on a v5 store: new chunks are hi-cr.
	appendPlanes(t, m, data[6*ps:9*ps], WithMode(cuszhi.ModeCR))
	// Re-open with no mode: the store now mixes codecs, so the writer must
	// continue adaptively rather than pick one side.
	appendPlanes(t, m, data[9*ps:])

	recon, gotDims := decodeStore(t, m)
	if gotDims[0] != 12 || !metrics.WithinBound(data, recon, eb) {
		t.Fatalf("mixed-codec append decode failed: dims %v", gotDims)
	}
	r, err := OpenReaderAt(m, int64(len(m.b)))
	if err != nil {
		t.Fatal(err)
	}
	hist := r.CodecHistogram()
	if hist["szp"] != 2 || hist["hi-cr"] < 1 {
		t.Fatalf("codec histogram = %v, want szp×2 plus hi-cr chunks", hist)
	}
}

// TestCrashPointPropertyV5 is the acceptance sweep: a reference v5 stream
// killed at EVERY byte offset must repair to a decodable container holding
// exactly the CRC-complete prefix chunks, and appending the missing planes
// to the repaired store must reproduce the full field.
func TestCrashPointPropertyV5(t *testing.T) {
	dims := []int{13, 4, 5}
	ps := 20
	data, _ := genField(t, "miranda", dims)
	eb := cuszhi.AbsEB(data, 1e-3)
	blob := writeV4(t, data, dims, eb, 3, WithMode("szx")) // chunks: 3,3,3,3,1
	intact, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
	if err != nil || !ref.Sealed() {
		t.Fatalf("reference container does not scan sealed: %v", err)
	}
	// frameEnd[i] = first byte past frame i; a kill at offset k completed
	// exactly the frames with frameEnd <= k.
	frameEnd := make([]int64, len(ref.Entries))
	for i := range ref.Entries {
		if i+1 < len(ref.Entries) {
			frameEnd[i] = ref.Entries[i+1].FrameOff
		} else {
			frameEnd[i] = ref.FramesEnd
		}
	}
	planesAt := func(k int64) int {
		p := 0
		for i, e := range ref.Entries {
			if frameEnd[i] <= k {
				p += e.Planes
			}
		}
		return p
	}
	step := 1
	if testing.Short() {
		step = 17
	}
	for cut := 1; cut < len(blob); cut += step {
		m := &memFile{b: append([]byte(nil), blob[:cut]...)}
		rec, err := Repair(m)
		want := planesAt(int64(cut))
		if err != nil {
			// Only a store with no complete chunk (or a torn global header)
			// is beyond repair — and it must be left unmodified.
			if want != 0 {
				t.Fatalf("cut %d: repair failed with %d planes recoverable: %v", cut, want, err)
			}
			if len(m.b) != cut {
				t.Fatalf("cut %d: failed repair modified the store", cut)
			}
			continue
		}
		if rec.Planes != want {
			t.Fatalf("cut %d: recovered %d planes, want %d", cut, rec.Planes, want)
		}
		recon, gotDims, err := Decompress(m.b)
		if err != nil || gotDims[0] != want {
			t.Fatalf("cut %d: repaired store decode: %v (dims %v, want %d planes)", cut, err, gotDims, want)
		}
		// Exactly the CRC-complete prefix: bit-identical to the intact
		// container's reconstruction of those planes.
		for i, v := range recon {
			if v != intact[i] {
				t.Fatalf("cut %d: repaired value %d = %v, intact %v", cut, i, v, intact[i])
			}
		}
		if _, err := OpenReaderAt(m, int64(len(m.b))); err != nil {
			t.Fatalf("cut %d: repaired store not seekable: %v", cut, err)
		}
		// Append the planes the crash lost; the rebuilt store must decode
		// to the full field: the recovered prefix bit-identical, the
		// re-compressed remainder within the bound.
		appendPlanes(t, m, data[want*ps:])
		full, fullDims := decodeStore(t, m)
		if fullDims[0] != dims[0] {
			t.Fatalf("cut %d: append rebuilt %v planes, want %v", cut, fullDims, dims)
		}
		for i := 0; i < want*ps; i++ {
			if full[i] != intact[i] {
				t.Fatalf("cut %d: appended store changed recovered value %d", cut, i)
			}
		}
		if !metrics.WithinBound(data, full, eb) {
			t.Fatalf("cut %d: rebuilt store out of bound", cut)
		}
	}
}

func TestOpenAppendRepairsTornStoreDirectly(t *testing.T) {
	dims := []int{11, 6, 6}
	ps := 36
	data, _ := genField(t, "nyx", dims)
	eb := cuszhi.AbsEB(data, 1e-2)
	blob := writeV4(t, data, dims, eb, 4, WithMode("szp"))
	rec, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	// Kill inside the last frame: 8 planes (two full chunks) survive.
	cut := rec.Entries[2].FrameOff + 7
	m := &memFile{b: append([]byte(nil), blob[:cut]...)}
	w, err := OpenAppend(m) // no Repair first: open itself truncates
	if err != nil {
		t.Fatal(err)
	}
	if w.Planes() != 8 {
		t.Fatalf("recovered %d planes, want 8", w.Planes())
	}
	if err := w.WriteValues(data[8*ps:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recon, gotDims := decodeStore(t, m)
	if gotDims[0] != 11 || !metrics.WithinBound(data, recon, eb) {
		t.Fatalf("rebuilt store decode failed: dims %v", gotDims)
	}
}

// TestHeaderShiftOnGrowth drives dims[0] and the chunk count past their
// original uvarint widths, forcing the one-time frame relocation, then
// appends again to prove the widened header absorbs all further growth.
func TestHeaderShiftOnGrowth(t *testing.T) {
	dims := []int{3, 2, 2}
	ps := 4
	field := make([]float32, 150*ps)
	for i := range field {
		field[i] = float32(i%19) * 0.5
	}
	m := &memFile{b: writeV4(t, field[:3*ps], dims, 0.01, 1, WithMode("szx"))}
	rec0, err := CheckStore(m)
	if err != nil {
		t.Fatal(err)
	}

	appendPlanes(t, m, field[3*ps:140*ps]) // 140 planes, 140 chunks: 2-byte uvarints now

	rec1, err := CheckStore(m)
	if err != nil || !rec1.Sealed() {
		t.Fatalf("store not sealed after shifting append: %v", err)
	}
	if rec1.HeaderLen <= rec0.HeaderLen {
		t.Fatalf("header never widened: %d -> %d", rec0.HeaderLen, rec1.HeaderLen)
	}
	recon, gotDims := decodeStore(t, m)
	if gotDims[0] != 140 {
		t.Fatalf("dims after shift = %v", gotDims)
	}
	if !metrics.WithinBound(field[:140*ps], recon, 0.01) {
		t.Fatal("post-shift reconstruction out of bound")
	}

	appendPlanes(t, m, field[140*ps:]) // the widened header must absorb this

	rec2, err := CheckStore(m)
	if err != nil || !rec2.Sealed() {
		t.Fatalf("store not sealed after second append: %v", err)
	}
	if rec2.HeaderLen != rec1.HeaderLen {
		t.Fatalf("header shifted twice: %d -> %d", rec1.HeaderLen, rec2.HeaderLen)
	}
	if _, err := OpenReaderAt(m, int64(len(m.b))); err != nil {
		t.Fatalf("shifted store not seekable: %v", err)
	}
}

func TestRepairRejectsChunklessStore(t *testing.T) {
	dims := []int{8, 5, 5}
	data, _ := genField(t, "nyx", dims)
	blob := writeV4(t, data, dims, 0.05, 4)
	rec, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	// Kill inside the first frame: a header but no complete chunk.
	cut := rec.Entries[0].FrameOff + 5
	m := &memFile{b: append([]byte(nil), blob[:cut]...)}
	if _, err := Repair(m); err == nil {
		t.Fatal("Repair sealed a store with no complete chunks")
	}
	if int64(len(m.b)) != cut {
		t.Fatal("failed Repair modified the store")
	}
}

// capturingFailSink keeps what it accepted and fails every write after the
// first n, so tests can inspect exactly what a half-dead sink received.
type capturingFailSink struct {
	buf   bytes.Buffer
	n     int
	calls int
}

func (s *capturingFailSink) Write(p []byte) (int, error) {
	s.calls++
	if s.calls > s.n {
		return 0, io.ErrClosedPipe
	}
	return s.buf.Write(p)
}

// TestCloseWritesNoFooterOverBrokenTail locks the satellite bugfix
// contract: once the flusher has hit a sink error, Close must not lay a
// valid chunk-index footer over the broken tail — a parsing footer on a
// bad stream would defeat the footer-vs-frames cross-check.
func TestCloseWritesNoFooterOverBrokenTail(t *testing.T) {
	dims := []int{16, 6, 6}
	data, _ := genField(t, "miranda", dims)
	// n=1 accepts the header only; n=3 dies mid-frames; n=5 dies on the
	// footer write itself (4 chunk frames + header = 5 writes succeed).
	for _, n := range []int{1, 3, 5} {
		sink := &capturingFailSink{n: n}
		w, err := NewWriter(sink, dims, 0.05, WithChunkPlanes(4), WithMode(cuszhi.ModeCR))
		if err != nil {
			t.Fatal(err)
		}
		werr := w.WriteValues(data)
		cerr := w.Close()
		if werr == nil && cerr == nil {
			t.Fatalf("n=%d: sink failure never surfaced", n)
		}
		got := sink.buf.Bytes()
		if len(got) >= core.IndexTailLen {
			if _, err := core.ParseChunkIndexTail(got[len(got)-core.IndexTailLen:]); err == nil {
				t.Fatalf("n=%d: Close wrote a parseable footer tail over a broken stream", n)
			}
		}
		if _, err := OpenReaderAt(bytes.NewReader(got), int64(len(got))); err == nil {
			t.Fatalf("n=%d: broken stream still opens seekably", n)
		}
	}
}

func TestWriterDoubleCloseReturnsFirstError(t *testing.T) {
	dims := []int{10, 4, 4}
	data, _ := genField(t, "nyx", dims)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, 0.05, WithChunkPlanes(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data[:5*16]); err != nil { // half the field
		t.Fatal(err)
	}
	first := w.Close()
	if first == nil {
		t.Fatal("Close of a half-fed writer succeeded")
	}
	if second := w.Close(); second == nil || second.Error() != first.Error() {
		t.Fatalf("second Close = %v, want the first error (%v)", second, first)
	}
	if err := w.WriteValues(data[:16]); err == nil {
		t.Fatal("Write after failed Close succeeded")
	}
	if _, err := w.Write([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("byte Write after failed Close succeeded")
	}
}

// TestWriterConcurrentClose races Closes against each other (run under
// -race): exactly one may do the shutdown, every call must report the
// writer's first error, and the pool must not be double-closed.
func TestWriterConcurrentClose(t *testing.T) {
	dims := []int{12, 4, 4}
	data, _ := genField(t, "miranda", dims)
	t.Run("clean", func(t *testing.T) {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, dims, 0.05, WithChunkPlanes(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteValues(data); err != nil {
			t.Fatal(err)
		}
		errs := closeConcurrently(w, 4)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("concurrent Close %d: %v", i, err)
			}
		}
		if _, _, err := Decompress(buf.Bytes()); err != nil {
			t.Fatalf("container after racing Closes: %v", err)
		}
	})
	t.Run("failing", func(t *testing.T) {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, dims, 0.05, WithChunkPlanes(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteValues(data[:3*16]); err != nil {
			t.Fatal(err)
		}
		for i, err := range closeConcurrently(w, 4) {
			if err == nil {
				t.Fatalf("concurrent Close %d of a half-fed writer returned nil", i)
			}
		}
	})
}

func closeConcurrently(w *Writer, n int) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Close()
		}(i)
	}
	wg.Wait()
	return errs
}

// TestScanIndexRejectsTruncatedFinalFrame covers the v2/v3 scan-built
// index fallback against a store whose last frame is cut short — only
// well-formed index-less files were exercised before.
func TestScanIndexRejectsTruncatedFinalFrame(t *testing.T) {
	dims := []int{12, 6, 6}
	data, _ := genField(t, "jhtdb", dims)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"v2", []Option{WithIndex(false)}},
		{"v3", []Option{WithIndex(false), WithRelativeEB()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			blob := writeV4(t, data, dims, 1e-3, 4, tc.opts...)
			if v, _ := core.SniffVersion(blob); v != 2 && v != 3 {
				t.Fatalf("fixture is v%d, want v2/v3", v)
			}
			if _, err := OpenReaderAt(bytes.NewReader(blob), int64(len(blob))); err != nil {
				t.Fatalf("intact %s container: %v", tc.name, err)
			}
			for _, cut := range []int{1, 7, 33} {
				short := blob[:len(blob)-cut]
				if _, err := OpenReaderAt(bytes.NewReader(short), int64(len(short))); err == nil {
					t.Fatalf("final frame truncated by %d still opened", cut)
				}
			}
			// Cut a whole frame plus its tail: the plane total no longer
			// matches the header, which the scan must notice.
			rec, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
			if err != nil {
				t.Fatal(err)
			}
			short := blob[:rec.Entries[len(rec.Entries)-1].FrameOff]
			if _, err := OpenReaderAt(bytes.NewReader(short), int64(len(short))); err == nil {
				t.Fatal("missing final frame still opened")
			}
		})
	}
}

// TestOpenReaderAtHostileTails pins the short-file and wild-backpointer
// paths of the v4 open: every case must fail with ErrCorrupt, never panic
// or mis-slice.
func TestOpenReaderAtHostileTails(t *testing.T) {
	dims := []int{8, 5, 5}
	data, _ := genField(t, "nyx", dims)
	blob := writeV4(t, data, dims, 0.05, 4)
	open := func(b []byte) error {
		_, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
		return err
	}
	t.Run("shorter than the fixed tail", func(t *testing.T) {
		for size := 0; size <= core.IndexTailLen; size++ {
			if err := open(blob[:size]); !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("size %d: err = %v, want ErrCorrupt", size, err)
			}
		}
	})
	t.Run("backpointer before the header", func(t *testing.T) {
		for _, off := range []uint64{0, 3} {
			bad := append([]byte(nil), blob...)
			putUint64(bad[len(bad)-core.IndexTailLen:], off)
			if err := open(bad); !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("backptr %d: err = %v, want ErrCorrupt", off, err)
			}
		}
	})
	t.Run("backpointer absurdly large", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		putUint64(bad[len(bad)-core.IndexTailLen:], 1<<63)
		if err := open(bad); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("tail only", func(t *testing.T) {
		tail := append([]byte(nil), blob[len(blob)-core.IndexTailLen:]...)
		if err := open(tail); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// TestOpenAppendOnOsFile exercises the disk path end to end: *os.File
// satisfies File, and a crash simulated by truncating on disk repairs and
// appends the same way the in-memory sweeps do.
func TestOpenAppendOnOsFile(t *testing.T) {
	dims := []int{10, 5, 5}
	ps := 25
	data, _ := genField(t, "miranda", dims)
	eb := cuszhi.AbsEB(data, 1e-3)
	blob := writeV4(t, data, dims, eb, 4, WithMode("szx"))
	path := t.TempDir() + "/store.cszh"
	if err := os.WriteFile(path, blob[:len(blob)-9], 0o644); err != nil { // torn footer
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := OpenAppend(f)
	if err != nil {
		t.Fatal(err)
	}
	if w.Planes() != 10 {
		t.Fatalf("recovered %d planes, want all 10 (only the footer was torn)", w.Planes())
	}
	if err := w.WriteValues(data[:2*ps]); err != nil { // grow by 2 planes
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	grown, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recon, gotDims, err := Decompress(grown)
	if err != nil || gotDims[0] != 12 {
		t.Fatalf("on-disk store decode: %v (dims %v)", err, gotDims)
	}
	want := append(append([]float32(nil), data...), data[:2*ps]...)
	if !metrics.WithinBound(want, recon, eb) {
		t.Fatal("on-disk rebuilt store out of bound")
	}
}

// FuzzOpenAppend feeds arbitrary bytes to the recovery scan + append
// machinery: it must never panic, and whenever it claims success the
// resulting store must actually decode.
func FuzzOpenAppend(f *testing.F) {
	dims := []int{7, 3, 3}
	data := make([]float32, 7*9)
	for i := range data {
		data[i] = float32(i) * 0.25
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, 0.01, WithChunkPlanes(2), WithMode("szx"))
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	blob := buf.Bytes()
	f.Add(blob)
	f.Add(blob[:len(blob)-5])          // torn footer
	f.Add(blob[:len(blob)/2])          // torn frames
	f.Add(blob[:11])                   // torn header
	f.Add(bytes.Repeat([]byte{0}, 40)) // not a container
	hostile := append([]byte(nil), blob...)
	putUint64(hostile[len(hostile)-core.IndexTailLen:], uint64(len(blob)+999))
	f.Add(hostile) // backpointer past EOF
	// Bit-rotted sealed stores: a flipped byte inside each frame's interior
	// (recovery must stop at the rotten frame, not resume over it) and one
	// inside the footer body (recovery must fall back to the frame scan).
	if rec, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob))); err == nil {
		flip := func(at int64) []byte {
			mut := append([]byte(nil), blob...)
			mut[at] ^= 0x81
			return mut
		}
		for i, e := range rec.Entries {
			end := rec.FramesEnd
			if i+1 < len(rec.Entries) {
				end = rec.Entries[i+1].FrameOff
			}
			f.Add(flip((e.FrameOff + end) / 2))
		}
		f.Add(flip(rec.FramesEnd + 2))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		// Recovery trusts frame CRCs, so hostile bytes can fabricate a
		// "valid" chunk whose payload no codec accepts — repair will seal
		// it and decode will still refuse it. The invariants that must hold
		// for ARBITRARY input: never panic, a claimed seal really scans
		// sealed, and whenever the recovered prefix decoded, the appended
		// store decodes too.
		rm := &memFile{b: append([]byte(nil), b...)}
		prefixDecodes := false
		if _, err := Repair(rm); err == nil {
			if rec, err := CheckStore(rm); err != nil || !rec.Sealed() {
				t.Fatalf("Repair left an unsealed store: %+v, %v", rec, err)
			}
			_, _, derr := Decompress(rm.b)
			prefixDecodes = derr == nil
		}
		m := &memFile{b: append([]byte(nil), b...)}
		w, err := OpenAppend(m)
		if err != nil {
			return
		}
		planes := w.Planes()
		// The fuzzer mutates dims, so a whole plane may be any size; feed a
		// fixed batch and let Close decide whether it tiles.
		werr := w.WriteValues(make([]float32, 9))
		if cerr := w.Close(); werr != nil || cerr != nil {
			return // rejected input; just must not panic
		}
		if rec, err := CheckStore(m); err != nil || !rec.Sealed() {
			t.Fatalf("Close left an unsealed store: %+v, %v", rec, err)
		}
		recon, gotDims, derr := Decompress(m.b)
		if derr != nil {
			if planes == 0 || prefixDecodes {
				t.Fatalf("append sealed an undecodable store: %v", derr)
			}
			return // inherited a CRC-valid-but-garbage chunk: decode may refuse
		}
		want := 1
		for _, d := range gotDims {
			want *= d
		}
		if len(recon) != want {
			t.Fatalf("sealed store decodes %d values for dims %v", len(recon), gotDims)
		}
	})
}
