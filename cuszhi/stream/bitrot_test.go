// Bit-rot resilience tests: byte flips across every region of a sealed
// container must never panic, strict decodes must refuse damaged data,
// degraded reads must recover exactly the undamaged chunks, and scrub must
// localize the damage — with transient I/O faults absorbed by WithRetry.
package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"repro/cuszhi"
	"repro/internal/core"
	"repro/internal/faultio"
)

// frameSpan locates one chunk frame's header and payload bytes.
type frameSpan struct {
	off    int64 // frame start
	payOff int64 // payload start
	payEnd int64 // payload end (== next frame start)
}

// storeLayout maps a sealed chunked store into its byte regions, so tests
// can aim bit flips at a chosen region class.
type storeLayout struct {
	headerLen int64
	frames    []frameSpan
	framesEnd int64 // end of the frame region == footer start (v4/v5)
	size      int64
}

func layoutOf(t testing.TB, blob []byte) storeLayout {
	t.Helper()
	rec, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed() {
		t.Fatal("test store is not sealed")
	}
	l := storeLayout{headerLen: rec.HeaderLen, framesEnd: rec.FramesEnd, size: rec.Size}
	for i, e := range rec.Entries {
		end := rec.FramesEnd
		if i+1 < len(rec.Entries) {
			end = rec.Entries[i+1].FrameOff
		}
		c, payStart, plen, err := core.ScanFrameHeader(blob[e.FrameOff:end], rec.Header)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		_ = c
		sp := frameSpan{off: e.FrameOff, payOff: e.FrameOff + int64(payStart), payEnd: e.FrameOff + int64(payStart) + int64(plen)}
		if sp.payEnd != end {
			t.Fatalf("frame %d: payload ends at %d, frame at %d", i, sp.payEnd, end)
		}
		l.frames = append(l.frames, sp)
	}
	return l
}

// sealedV5Store builds a sealed per-chunk-codec (v5) container and returns
// it with its exact strict reconstruction as the baseline.
func sealedV5Store(t testing.TB) (blob []byte, baseline []float32, dims []int) {
	t.Helper()
	dims = []int{20, 12, 12}
	data, _ := genField(t, "nyx", dims)
	blob = writeV4(t, data, dims, 1e-2, 4, WithAutoMode(), WithWorkers(2))
	info, err := cuszhi.Inspect(blob)
	if err != nil || info.Version != 5 {
		t.Fatalf("want a v5 store, got version %d (err %v)", info.Version, err)
	}
	baseline, gotDims, err := cuszhi.Decompress(blob)
	if err != nil || gotDims[0] != dims[0] {
		t.Fatalf("baseline decode: %v", err)
	}
	return blob, baseline, dims
}

// TestBitRotEveryRegion flips a byte in every region class of a sealed v5
// store and asserts the decode paths never panic and never return wrong
// data unflagged: each strict decode either errors or reproduces the
// baseline bit-exactly. (Frame-header and footer bytes are not all
// CRC-covered, so a flip there may be benign — but it must never corrupt
// the output silently.)
func TestBitRotEveryRegion(t *testing.T) {
	blob, baseline, dims := sealedV5Store(t)
	l := layoutOf(t, blob)
	mid := l.frames[2]
	regions := []struct {
		name string
		offs []int64
	}{
		{"header", []int64{1, l.headerLen / 2, l.headerLen - 1}},
		{"frame-header", []int64{mid.off, mid.off + 1, mid.payOff - 1}},
		{"payload", []int64{mid.payOff, (mid.payOff + mid.payEnd) / 2, mid.payEnd - 1}},
		{"footer-body", []int64{l.framesEnd, (l.framesEnd + l.size - core.IndexTailLen) / 2, l.size - core.IndexTailLen - 1}},
		{"tail", []int64{l.size - core.IndexTailLen, l.size - 1}},
	}
	for _, reg := range regions {
		t.Run(reg.name, func(t *testing.T) {
			for _, off := range reg.offs {
				mut := append([]byte(nil), blob...)
				mut[off] ^= 0x81
				// One-shot strict decode: error, or bit-exact.
				if vals, _, err := cuszhi.Decompress(mut); err == nil {
					if !bytes.Equal(valueBytes(vals), valueBytes(baseline)) {
						t.Fatalf("flip @%d: one-shot decode returned wrong data without error", off)
					}
				}
				// Sequential strict decode.
				if r, err := NewReader(bytes.NewReader(mut)); err == nil {
					if vals, err := r.ReadAllValues(); err == nil {
						if !bytes.Equal(valueBytes(vals), valueBytes(baseline)) {
							t.Fatalf("flip @%d: sequential decode returned wrong data without error", off)
						}
					}
					r.Close()
				}
				// Random-access strict decode, through the fault harness for
				// variety (the backing blob stays pristine).
				fr := faultio.NewReaderAt(bytes.NewReader(blob), faultio.FlipByte(off, 0x81))
				if r, err := OpenReaderAt(fr, int64(len(blob))); err == nil {
					if vals, err := r.ReadPlanes(nil, 0, dims[0]); err == nil {
						if !bytes.Equal(valueBytes(vals), valueBytes(baseline)) {
							t.Fatalf("flip @%d: ReadPlanes returned wrong data without error", off)
						}
					}
				}
			}
		})
	}
}

// TestBitRotPayloadFlip is the strong half of the property: payload bytes
// are CRC-covered, so a flip there must be detected by strict mode,
// recovered around by degraded mode (exactly the undamaged chunks,
// bit-exact), and localized by scrub — all naming the same chunk.
func TestBitRotPayloadFlip(t *testing.T) {
	blob, baseline, dims := sealedV5Store(t)
	l := layoutOf(t, blob)
	const dmgChunk = 2
	sp := l.frames[dmgChunk]
	cp := 4 // writer's chunk thickness in sealedV5Store
	ps := dims[1] * dims[2]
	mut := append([]byte(nil), blob...)
	mut[(sp.payOff+sp.payEnd)/2] ^= 0x81

	// Strict one-shot: ErrCorrupt.
	if _, _, err := cuszhi.Decompress(mut); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("one-shot decode of payload flip: want ErrCorrupt, got %v", err)
	}
	// Strict random access: ErrCorrupt, localized in the error text.
	r, err := OpenReaderAt(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadPlanes(nil, 0, dims[0])
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("strict ReadPlanes: want ErrCorrupt, got %v", err)
	}
	locator := fmt.Sprintf("chunk %d @0x%x", dmgChunk, sp.off)
	if !strings.Contains(err.Error(), locator) {
		t.Fatalf("strict ReadPlanes error %q does not carry locator %q", err, locator)
	}

	// Degraded random access: every undamaged plane bit-exact, the damaged
	// chunk's planes NaN, and the damage flagged in a DamageReport.
	rd, err := OpenReaderAt(bytes.NewReader(mut), int64(len(mut)), WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rd.ReadPlanes(nil, 0, dims[0])
	var rep *DamageReport
	if !errors.As(err, &rep) {
		t.Fatalf("degraded ReadPlanes: want *DamageReport, got %v", err)
	}
	if len(rep.Chunks) != 1 || rep.Chunks[0].Chunk != dmgChunk || rep.Chunks[0].Offset != sp.off {
		t.Fatalf("damage report = %+v", rep)
	}
	if rep.PlanesLost() != cp {
		t.Fatalf("planes lost = %d, want %d", rep.PlanesLost(), cp)
	}
	checkDegraded(t, vals, baseline, dmgChunk*cp, (dmgChunk+1)*cp, ps, func(v float32) bool { return math.IsNaN(float64(v)) })

	// Degraded sequential decode: same recovery, damage via Damage().
	sr, err := NewReader(bytes.NewReader(mut), WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	svals, err := sr.ReadAllValues()
	if err != nil {
		t.Fatalf("degraded sequential decode: %v", err)
	}
	srep := sr.Damage()
	if srep == nil || len(srep.Chunks) != 1 || srep.Chunks[0].Chunk != dmgChunk {
		t.Fatalf("sequential damage report = %+v", srep)
	}
	checkDegraded(t, svals, baseline, dmgChunk*cp, (dmgChunk+1)*cp, ps, func(v float32) bool { return math.IsNaN(float64(v)) })

	// A clean degraded read reports no damage and a nil error.
	rc, err := OpenReaderAt(bytes.NewReader(blob), int64(len(blob)), WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	cvals, err := rc.ReadPlanes(nil, 0, dims[0])
	if err != nil {
		t.Fatalf("degraded read of a clean store must return nil error, got %v", err)
	}
	if !bytes.Equal(valueBytes(cvals), valueBytes(baseline)) {
		t.Fatal("degraded read of a clean store is not bit-exact")
	}

	// WithFillValue replaces the NaN sentinel.
	rf, err := OpenReaderAt(bytes.NewReader(mut), int64(len(mut)), WithDegraded(), WithFillValue(-7))
	if err != nil {
		t.Fatal(err)
	}
	fvals, err := rf.ReadPlanes(nil, 0, dims[0])
	if !errors.As(err, &rep) {
		t.Fatalf("want *DamageReport, got %v", err)
	}
	checkDegraded(t, fvals, baseline, dmgChunk*cp, (dmgChunk+1)*cp, ps, func(v float32) bool { return v == -7 })

	// Scrub localizes the same chunk; the clean store scrubs clean.
	srep2, err := Scrub(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	if srep2.Clean() || len(srep2.Damaged) != 1 || srep2.Damaged[0].Chunk != dmgChunk {
		t.Fatalf("scrub report = %+v", srep2)
	}
	clean, err := Scrub(bytes.NewReader(blob), int64(len(blob)))
	if err != nil || !clean.Clean() {
		t.Fatalf("clean store must scrub clean: %+v (err %v)", clean, err)
	}
	if clean.Verified != len(l.frames) {
		t.Fatalf("scrub verified %d of %d chunks", clean.Verified, len(l.frames))
	}
}

// checkDegraded asserts planes outside [dLo, dHi) match the baseline
// bit-exactly and planes inside are all the fill sentinel.
func checkDegraded(t testing.TB, vals, baseline []float32, dLo, dHi, ps int, isFill func(float32) bool) {
	t.Helper()
	if len(vals) != len(baseline) {
		t.Fatalf("degraded decode returned %d values, want %d", len(vals), len(baseline))
	}
	for i, v := range vals {
		plane := i / ps
		if plane >= dLo && plane < dHi {
			if !isFill(v) {
				t.Fatalf("value %d (damaged plane %d) = %v, want fill", i, plane, v)
			}
		} else if math.Float32bits(v) != math.Float32bits(baseline[i]) {
			t.Fatalf("value %d (undamaged plane %d) = %v, want %v", i, plane, v, baseline[i])
		}
	}
}

// TestBitRotFooterFallsBackToSequentialScrub rots the footer body: scrub
// must report the footer damage yet still verify the frames by walking
// them from the header.
func TestBitRotFooterScrubFallback(t *testing.T) {
	blob, _, _ := sealedV5Store(t)
	l := layoutOf(t, blob)
	mut := append([]byte(nil), blob...)
	mut[l.framesEnd+1] ^= 0x81 // inside the index body: its CRC must catch this
	rep, err := Scrub(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.FooterErr == nil {
		t.Fatalf("scrub must flag the rotten footer: %+v", rep)
	}
	if rep.Verified != len(l.frames) || len(rep.Damaged) != 0 {
		t.Fatalf("frames are intact and must verify sequentially: %+v", rep)
	}
}

// TestWithRetryRecoversTransientFaults proves the (N−1)-transient-faults
// contract end to end: a reader opened with WithRetry(N, …) absorbs N−1
// injected failures per read and still decodes bit-exactly; without the
// option the same faults surface.
func TestWithRetryRecoversTransientFaults(t *testing.T) {
	blob, baseline, dims := sealedV5Store(t)
	size := int64(len(blob))

	const attempts = 3
	fr := faultio.NewReaderAt(bytes.NewReader(blob), faultio.TransientErrors(attempts-1, nil))
	r, err := OpenReaderAt(fr, size, WithRetry(attempts, time.Microsecond))
	if err != nil {
		t.Fatalf("open with retry over %d transient faults: %v", attempts-1, err)
	}
	vals, err := r.ReadPlanes(nil, 0, dims[0])
	if err != nil {
		t.Fatalf("ReadPlanes with retry: %v", err)
	}
	if !bytes.Equal(valueBytes(vals), valueBytes(baseline)) {
		t.Fatal("retry-recovered decode is not bit-exact")
	}
	if fr.Injected() != attempts-1 {
		t.Fatalf("injected %d faults, want %d", fr.Injected(), attempts-1)
	}

	// Without retry the very first open read fails.
	fr2 := faultio.NewReaderAt(bytes.NewReader(blob), faultio.TransientErrors(attempts-1, nil))
	if _, err := OpenReaderAt(fr2, size); err == nil {
		t.Fatal("open without retry must surface the transient fault")
	}

	// The sequential Reader retries too.
	fr3 := faultio.NewReaderAt(bytes.NewReader(blob), faultio.TransientErrors(attempts-1, nil))
	sr, err := NewReader(io.NewSectionReader(fr3, 0, size), WithRetry(attempts, time.Microsecond))
	if err != nil {
		t.Fatalf("sequential open with retry: %v", err)
	}
	svals, err := sr.ReadAllValues()
	if err != nil {
		t.Fatalf("sequential decode with retry: %v", err)
	}
	if !bytes.Equal(valueBytes(svals), valueBytes(baseline)) {
		t.Fatal("sequential retry-recovered decode is not bit-exact")
	}

	// Retry must not mask permanent damage: a payload flip still fails
	// strict decode (and burns no retry budget on the way).
	l := layoutOf(t, blob)
	mut := append([]byte(nil), blob...)
	mut[(l.frames[1].payOff+l.frames[1].payEnd)/2] ^= 0x81
	rp, err := OpenReaderAt(bytes.NewReader(mut), size, WithRetry(attempts, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.ReadPlanes(nil, 0, dims[0]); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("retry over corruption: want ErrCorrupt, got %v", err)
	}
}

// TestRetryNoAllocOverheadWhenClean guards the zero-alloc contract: on a
// fault-free store, a reader opened with WithRetry allocates no more per
// read than one without it.
func TestRetryNoAllocOverheadWhenClean(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc ceilings are calibrated for normal builds")
	}
	blob, _, dims := sealedV5Store(t)
	size := int64(len(blob))
	plain, err := OpenReaderAt(bytes.NewReader(blob), size, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	withRetry, err := OpenReaderAt(bytes.NewReader(blob), size, WithWorkers(1), WithRetry(4, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, dims[0]*dims[1]*dims[2])
	measure := func(r *ReaderAt) float64 {
		for i := 0; i < 2; i++ { // warm pooled contexts
			if _, err := r.ReadPlanes(dst, 0, dims[0]); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := r.ReadPlanes(dst, 0, dims[0]); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(plain)
	retried := measure(withRetry)
	if retried > base {
		t.Fatalf("WithRetry costs allocations on the fault-free path: %.1f > %.1f per read", retried, base)
	}
}

// TestOpenAppendBitFlippedInteriorFrame: a flipped byte inside an interior
// frame must make OpenAppend treat everything from that frame on as
// unrecoverable — resume from the last valid frame before the damage, not
// silently over it.
func TestOpenAppendBitFlippedInteriorFrame(t *testing.T) {
	blob, baseline, dims := sealedV5Store(t)
	const dmgChunk = 2
	cp := 4
	ps := dims[1] * dims[2]
	l := layoutOf(t, blob)
	sp := l.frames[dmgChunk]

	m := &memFile{b: append([]byte(nil), blob...)}
	// The rot is injected at read time by the fault harness; the backing
	// bytes stay pristine until OpenAppend's repair truncates them.
	ff := faultio.NewFile(m, faultio.FlipByte((sp.payOff+sp.payEnd)/2, 0x81))
	w, err := OpenAppend(ff)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.Planes(), dmgChunk*cp; got != want {
		t.Fatalf("recovered %d planes, want %d (the prefix before the damage)", got, want)
	}
	fresh := make([]float32, cp*ps)
	for i := range fresh {
		fresh[i] = float32(i % 17)
	}
	if err := w.WriteValues(fresh); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	vals, gotDims := decodeStore(t, m)
	if gotDims[0] != dmgChunk*cp+cp {
		t.Fatalf("store covers %d planes after append, want %d", gotDims[0], dmgChunk*cp+cp)
	}
	// The surviving prefix is byte-identical compressed data: bit-exact.
	if !bytes.Equal(valueBytes(vals[:dmgChunk*cp*ps]), valueBytes(baseline[:dmgChunk*cp*ps])) {
		t.Fatal("recovered prefix is not bit-exact")
	}
	rep, err := Scrub(m, int64(len(m.b)))
	if err != nil || !rep.Clean() {
		t.Fatalf("repaired+appended store must scrub clean: %+v (err %v)", rep, err)
	}
}
