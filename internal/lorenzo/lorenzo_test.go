package lorenzo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, data []float32, dims []int, eb float64) *Result {
	t.Helper()
	g := NewGrid(dims)
	res, err := Compress(dev, data, g, eb)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	recon, err := Decompress(dev, res, g, eb)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("bound violated at %d: %v vs %v (eb=%v)", i, data[i], recon[i], eb)
	}
	return res
}

func smoothField(dims []int, seed int64) []float32 {
	g := NewGrid(dims)
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, g.Len())
	i := 0
	for z := 0; z < g.Nz; z++ {
		for y := 0; y < g.Ny; y++ {
			for x := 0; x < g.Nx; x++ {
				out[i] = float32(math.Sin(float64(x)*0.2)*math.Cos(float64(y)*0.15) +
					0.3*math.Sin(float64(z)*0.1) + 0.01*rng.NormFloat64())
				i++
			}
		}
	}
	return out
}

func TestRoundTrip3D(t *testing.T) {
	dims := []int{30, 40, 50}
	data := smoothField(dims, 1)
	for _, eb := range []float64{1e-1, 1e-2, 1e-4} {
		roundTrip(t, data, dims, eb)
	}
}

func TestRoundTrip2D1D(t *testing.T) {
	data2 := smoothField([]int{64, 80}, 2)
	roundTrip(t, data2, []int{64, 80}, 1e-3)
	data1 := smoothField([]int{5000}, 3)
	roundTrip(t, data1, []int{5000}, 1e-3)
}

func TestRoundTripTiny(t *testing.T) {
	for _, dims := range [][]int{{1}, {2, 2}, {1, 1, 1}, {3, 1, 2}} {
		roundTrip(t, smoothField(dims, 4), dims, 1e-3)
	}
}

func TestRoundTripRandomNoise(t *testing.T) {
	// Rough data exercises the escape path heavily.
	dims := []int{20, 20, 20}
	rng := rand.New(rand.NewSource(5))
	data := make([]float32, 8000)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 100)
	}
	res := roundTrip(t, data, dims, 1e-4)
	if len(res.Escapes) == 0 {
		t.Fatal("expected escapes on rough data")
	}
}

func TestRoundTripExtremeMagnitudes(t *testing.T) {
	dims := []int{10, 10, 10}
	rng := rand.New(rand.NewSource(6))
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(rng.NormFloat64()) * 1e30
	}
	res := roundTrip(t, data, dims, 1e-3)
	if res.ValOutliers.Len() == 0 {
		t.Fatal("expected value outliers at extreme magnitudes")
	}
}

func TestCodesConcentratedOnSmoothData(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{32, 48, 48}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	g := NewGrid(f.Dims)
	res, err := Compress(dev, f.Data, g, eb)
	if err != nil {
		t.Fatal(err)
	}
	center := uint16(Radius + 1)
	near := 0
	for _, c := range res.Codes {
		if c >= center-2 && c <= center+2 {
			near++
		}
	}
	if frac := float64(near) / float64(len(res.Codes)); frac < 0.5 {
		t.Fatalf("only %.1f%% codes near center", frac*100)
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	dims := []int{17, 23, 29}
	data := smoothField(dims, 8)
	g := NewGrid(dims)
	a, err := Compress(dev, data, g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(gpusim.New(1), data, g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatalf("codes differ at %d", i)
		}
	}
	if len(a.Escapes) != len(b.Escapes) {
		t.Fatal("escape counts differ")
	}
}

func TestDecompressErrors(t *testing.T) {
	g := NewGrid([]int{4, 4, 4})
	data := smoothField([]int{4, 4, 4}, 9)
	res, err := Compress(dev, data, g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong grid.
	if _, err := Decompress(dev, res, NewGrid([]int{5, 5, 5}), 1e-3); err == nil {
		t.Fatal("want grid mismatch error")
	}
	// Truncated escapes with forced escape code.
	bad := &Result{Codes: append([]uint16(nil), res.Codes...), Escapes: nil, ValOutliers: res.ValOutliers}
	bad.Codes[10] = 0
	if _, err := Decompress(dev, bad, g, 1e-3); err == nil {
		t.Fatal("want escape exhaustion error")
	}
	// Out-of-range code.
	bad2 := &Result{Codes: append([]uint16(nil), res.Codes...), Escapes: res.Escapes, ValOutliers: res.ValOutliers}
	bad2.Codes[0] = Alphabet + 5
	if _, err := Decompress(dev, bad2, g, 1e-3); err == nil {
		t.Fatal("want code range error")
	}
}

func TestCompressErrors(t *testing.T) {
	g := NewGrid([]int{4, 4, 4})
	if _, err := Compress(dev, make([]float32, 10), g, 1e-3); err == nil {
		t.Fatal("want size mismatch")
	}
	if _, err := Compress(dev, make([]float32, 64), g, -1); err == nil {
		t.Fatal("want eb error")
	}
}

func TestPrequantizeClamps(t *testing.T) {
	data := []float32{3.4e38, -3.4e38, 0, 1}
	qv := Prequantize(dev, data, 1e-30)
	if qv[0] != latticeCap || qv[1] != -latticeCap {
		t.Fatalf("clamping failed: %v", qv[:2])
	}
	// 1/1e-30 = 1e30 also exceeds the cap.
	if qv[2] != 0 || qv[3] != latticeCap {
		t.Fatalf("values wrong: %v", qv[2:])
	}
	qv2 := Prequantize(dev, []float32{1, -0.25}, 0.5)
	if qv2[0] != 2 || qv2[1] != -1 {
		t.Fatalf("normal lattice wrong: %v", qv2)
	}
}
