// Package bitio provides bit-granular writers and readers plus small
// variable-length integer codecs used by the compression pipelines.
//
// The writer packs bits LSB-first into a growing byte slice; the reader
// mirrors it. Both are deliberately allocation-light: the hot paths
// (WriteBits/ReadBits) operate on a 64-bit accumulator.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortStream reports a read past the end of the underlying buffer.
var ErrShortStream = errors.New("bitio: unexpected end of stream")

// Writer accumulates bits LSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, LSB-first
	nacc uint   // number of valid bits in acc (< 8 after flushAcc)
}

// NewWriter returns a Writer whose internal buffer has the given capacity
// hint in bytes.
func NewWriter(capHint int) *Writer {
	if capHint < 0 {
		capHint = 0
	}
	return &Writer{buf: make([]byte, 0, capHint)}
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.acc |= uint64(b&1) << w.nacc
	w.nacc++
	if w.nacc == 64 {
		w.spill()
	}
}

// WriteBits appends the n low bits of v, LSB-first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.acc |= v << w.nacc
	if w.nacc+n >= 64 {
		free := 64 - w.nacc
		w.spillFull()
		if free < n {
			w.acc = v >> free
		}
		w.nacc = n - free
		return
	}
	w.nacc += n
}

// spillFull writes the full 64-bit accumulator to the buffer.
func (w *Writer) spillFull() {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], w.acc)
	w.buf = append(w.buf, tmp[:]...)
	w.acc = 0
}

// spill writes 8 bytes when nacc hit exactly 64 via WriteBit.
func (w *Writer) spill() {
	w.spillFull()
	w.nacc = 0
}

// WriteBytes appends whole bytes. If the writer is not currently
// byte-aligned the bytes are shifted into the bit stream, eight input
// bytes at a time through the 64-bit accumulator.
func (w *Writer) WriteBytes(p []byte) {
	if w.nacc%8 == 0 {
		// Fast path: flush accumulator fully, then bulk-append.
		for w.nacc > 0 {
			w.buf = append(w.buf, byte(w.acc))
			w.acc >>= 8
			w.nacc -= 8
		}
		w.buf = append(w.buf, p...)
		return
	}
	// Unaligned: spill whole pending bytes so nacc < 8, then merge each
	// 64-bit input word with the sub-byte remainder in one shift pair.
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
	var tmp [8]byte
	for len(p) >= 8 {
		v := binary.LittleEndian.Uint64(p)
		binary.LittleEndian.PutUint64(tmp[:], w.acc|v<<w.nacc)
		w.buf = append(w.buf, tmp[:]...)
		w.acc = v >> (64 - w.nacc)
		p = p[8:]
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	if r := w.nacc % 8; r != 0 {
		w.WriteBits(0, 8-r)
	}
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nacc)
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The Writer remains usable; subsequent writes continue byte-aligned.
func (w *Writer) Bytes() []byte {
	w.Align()
	for w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
	return w.buf
}

// Reset truncates the writer to empty, retaining the buffer capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
}

// ResetWithBuf truncates the writer to empty and adopts buf's capacity as
// its backing store, so pooled buffers can be reused across writers without
// reallocating. The previous buffer is released.
func (w *Writer) ResetWithBuf(buf []byte) {
	w.buf = buf[:0]
	w.acc = 0
	w.nacc = 0
}

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index to load
	acc  uint64 // loaded bits
	nacc uint   // valid bits in acc
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// ResetBytes rebinds the reader to p, discarding any pending bits. It lets
// stack- or arena-resident Reader values be reused across payloads without
// reallocating (the zero value plus ResetBytes is equivalent to NewReader).
func (r *Reader) ResetBytes(p []byte) {
	r.buf = p
	r.pos = 0
	r.acc = 0
	r.nacc = 0
}

func (r *Reader) fill() {
	for r.nacc <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nacc == 0 {
		r.fill()
		if r.nacc == 0 {
			return 0, ErrShortStream
		}
	}
	b := uint(r.acc & 1)
	r.acc >>= 1
	r.nacc--
	return b, nil
}

// ReadBits reads n bits (n in [0,64]) LSB-first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits(%d) out of range", n)
	}
	if r.nacc < n {
		r.fill()
	}
	if r.nacc >= n {
		var v uint64
		if n == 64 {
			v = r.acc
		} else {
			v = r.acc & ((1 << n) - 1)
		}
		r.acc >>= n % 64
		if n == 64 {
			r.acc = 0
		}
		r.nacc -= n
		return v, nil
	}
	// Straddles the accumulator: take what we have, then refill.
	got := r.nacc
	v := r.acc
	r.acc, r.nacc = 0, 0
	r.fill()
	rest := n - got
	if r.nacc < rest {
		return 0, ErrShortStream
	}
	hi := r.acc & ((1 << rest) - 1)
	r.acc >>= rest
	r.nacc -= rest
	return v | hi<<got, nil
}

// ReadBytes reads n whole bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitio: ReadBytes(%d) negative", n)
	}
	if r.nacc%8 == 0 && r.nacc == 0 && r.pos+n <= len(r.buf) {
		out := r.buf[r.pos : r.pos+n]
		r.pos += n
		return out, nil
	}
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	if rem := r.nacc % 8; rem != 0 {
		r.acc >>= rem
		r.nacc -= rem
	}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nacc)
}

// AppendUvarint appends v in LEB128 form to dst and returns the result.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes a LEB128 value from p, returning the value and the number
// of bytes consumed (0 if p is truncated).
func Uvarint(p []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range p {
		if i == 10 {
			return 0, 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// MaxWireLen is the ceiling every length-like wire value must stay under
// before conversion to int: it fits a 32-bit int, so the conversion can
// never wrap negative and slip past a bounds check into a panicking slice
// or a hostile make. It is comfortably above any legitimate shard, payload
// or element count this repository's containers carry.
const MaxWireLen = 1<<31 - 1

// IntLen converts a 64-bit length-like wire value to int, reporting
// ok=false when it exceeds MaxWireLen. It is the shared capping helper the
// decode paths (and the wirelen analyzer in internal/lint) standardize on —
// use it instead of repeating inline `v > 1<<31` guards:
//
//	n, ok := bitio.IntLen(n64)
//	if !ok { return ErrCorrupt }
func IntLen(v uint64) (int, bool) {
	if v > MaxWireLen {
		return 0, false
	}
	return int(v), true
}

// AppendUint32 appends v little-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(dst, tmp[:]...)
}

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

// ZigZag maps a signed integer to an unsigned one so that small-magnitude
// values (of either sign) become small unsigned values.
func ZigZag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
