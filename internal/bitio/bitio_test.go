package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(64)
	w.WriteBits(0x5, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(1, 1)
	w.WriteBits(0xFFFFFFFFFFFFFFFF, 64)
	w.WriteBits(0, 0)
	w.WriteBits(0x12345678, 31)
	r := NewReader(w.Bytes())
	for _, tc := range []struct {
		n    uint
		want uint64
	}{{3, 0x5}, {16, 0xABCD}, {1, 1}, {64, 0xFFFFFFFFFFFFFFFF}, {31, 0x12345678}} {
		got, err := r.ReadBits(tc.n)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", tc.n, err)
		}
		if got != tc.want {
			t.Fatalf("ReadBits(%d) = %#x, want %#x", tc.n, got, tc.want)
		}
	}
}

func TestWriteBitSequence(t *testing.T) {
	w := NewWriter(0)
	bits := make([]uint, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range bits {
		bits[i] = uint(rng.Intn(2))
		w.WriteBit(bits[i])
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestRoundTripRandomWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		type item struct {
			v uint64
			n uint
		}
		items := make([]item, 200)
		w := NewWriter(0)
		for i := range items {
			n := uint(rng.Intn(65))
			v := rng.Uint64()
			if n < 64 {
				v &= (1 << n) - 1
			}
			items[i] = item{v, n}
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil {
				t.Fatalf("trial %d item %d: %v", trial, i, err)
			}
			if got != it.v {
				t.Fatalf("trial %d item %d: got %#x want %#x (n=%d)", trial, i, got, it.v, it.n)
			}
		}
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBytes([]byte{1, 2, 3})
	w.WriteBits(0xF, 4)
	w.Align()
	w.WriteBytes([]byte{9, 8})
	r := NewReader(w.Bytes())
	got, err := r.ReadBytes(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("ReadBytes = %v, %v", got, err)
	}
	v, _ := r.ReadBits(4)
	if v != 0xF {
		t.Fatalf("nibble = %#x", v)
	}
	r.Align()
	got, err = r.ReadBytes(2)
	if err != nil || !bytes.Equal(got, []byte{9, 8}) {
		t.Fatalf("ReadBytes after align = %v, %v", got, err)
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	w.WriteBytes([]byte{0xAB, 0xCD})
	r := NewReader(w.Bytes())
	v, _ := r.ReadBits(3)
	if v != 0b101 {
		t.Fatalf("prefix = %#b", v)
	}
	b1, _ := r.ReadBits(8)
	b2, _ := r.ReadBits(8)
	if b1 != 0xAB || b2 != 0xCD {
		t.Fatalf("bytes = %#x %#x", b1, b2)
	}
}

func TestShortStream(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrShortStream {
		t.Fatalf("want ErrShortStream, got %v", err)
	}
	r2 := NewReader(nil)
	if _, err := r2.ReadBit(); err != ErrShortStream {
		t.Fatalf("want ErrShortStream, got %v", err)
	}
	r3 := NewReader([]byte{1, 2})
	if _, err := r3.ReadBytes(3); err == nil {
		t.Fatal("want error reading past end")
	}
}

func TestBitLenAndRemaining(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	b := w.Bytes()
	if len(b) != 2 {
		t.Fatalf("len = %d", len(b))
	}
	r := NewReader(b)
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining after read = %d", r.Remaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	w.WriteBits(0x1, 1)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 1 {
		t.Fatalf("after reset: %v", b)
	}
}

func TestUvarint(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for _, v := range cases {
		buf := AppendUvarint(nil, v)
		got, n := Uvarint(buf)
		if n != len(buf) || got != v {
			t.Fatalf("Uvarint(%d): got %d, n=%d len=%d", v, got, n, len(buf))
		}
	}
	if _, n := Uvarint([]byte{0x80, 0x80}); n != 0 {
		t.Fatal("truncated varint should return n=0")
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(x int64) bool { return UnZigZag(ZigZag(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes map to small codes.
	for _, tc := range []struct {
		x int64
		u uint64
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}} {
		if ZigZag(tc.x) != tc.u {
			t.Fatalf("ZigZag(%d) = %d, want %d", tc.x, ZigZag(tc.x), tc.u)
		}
	}
}

func TestBitsRoundTripProperty(t *testing.T) {
	f := func(vals []uint16, widthSeed uint8) bool {
		w := NewWriter(0)
		n := uint(widthSeed%16) + 1
		for _, v := range vals {
			w.WriteBits(uint64(v)&((1<<n)-1), n)
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadBits(n)
			if err != nil || got != uint64(v)&((1<<n)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
