package cuszhi

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/gpusim"
)

// FuzzDecompress feeds arbitrary bytes — seeded with valid v1, v2, v3 and
// v4 containers and systematic truncations of each — to Decompress, proving
// it returns errors on malformed input instead of panicking or
// over-reading. Run with `go test -fuzz=FuzzDecompress ./cuszhi` to
// explore beyond the seed corpus.
func FuzzDecompress(f *testing.F) {
	data := make([]float32, 6*8*8)
	for i := range data {
		data[i] = float32(i%19) * 0.25
	}
	dims := []int{6, 8, 8}

	oneShot, err := New(ModeTP)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := oneShot.CompressAbs(data, dims, 0.05)
	if err != nil {
		f.Fatal(err)
	}
	chunked, err := New(ModeTP, WithChunkPlanes(2))
	if err != nil {
		f.Fatal(err)
	}
	v2, err := chunked.CompressAbs(data, dims, 0.05)
	if err != nil {
		f.Fatal(err)
	}

	lorenzo, err := New(ModeCuszL)
	if err != nil {
		f.Fatal(err)
	}
	vl, err := lorenzo.CompressAbs(data, dims, 0.05)
	if err != nil {
		f.Fatal(err)
	}

	// A v3 container (per-shard range headers, relative bound), assembled
	// shard by shard the way the streaming writer does.
	lOpts, err := core.ModeOptions(string(ModeCuszL))
	if err != nil {
		f.Fatal(err)
	}
	v3, err := core.AppendChunkedHeaderV3(nil, dims, 0.01, true, 2)
	if err != nil {
		f.Fatal(err)
	}
	for off := 0; off < dims[0]; off += 2 {
		shard := data[off*64 : (off+2)*64]
		minV, maxV, _ := core.ShardRange(shard)
		absEB := 0.01 * float64(maxV-minV)
		shardDims := []int{2, 8, 8}
		payload, err := core.Compress(gpusim.Default, shard, shardDims, absEB, lOpts)
		if err != nil {
			f.Fatal(err)
		}
		v3 = core.AppendChunkFrameV3(v3, lOpts, off, shardDims, minV, maxV, payload)
	}
	if _, _, err := Decompress(v3); err != nil {
		f.Fatal(err) // the seed itself must be valid
	}

	// A v4 container (seekable: v3 framing + chunk-index footer), built the
	// way the streaming writer builds it.
	v4, err := core.AppendChunkedHeaderV4(nil, dims, 0.05, false, 2)
	if err != nil {
		f.Fatal(err)
	}
	var v4idx []core.IndexEntry
	for off := 0; off < dims[0]; off += 2 {
		shard := data[off*64 : (off+2)*64]
		minV, maxV, _ := core.ShardRange(shard)
		shardDims := []int{2, 8, 8}
		payload, err := core.Compress(gpusim.Default, shard, shardDims, 0.05, lOpts)
		if err != nil {
			f.Fatal(err)
		}
		v4idx = append(v4idx, core.IndexEntry{FrameOff: int64(len(v4)), PlaneOff: off, Planes: 2})
		v4 = core.AppendChunkFrameV3(v4, lOpts, off, shardDims, minV, maxV, payload)
	}
	v4 = core.AppendChunkIndexFooter(v4, int64(len(v4)), v4idx)
	if _, _, err := Decompress(v4); err != nil {
		f.Fatal(err) // the seed itself must be valid
	}

	// A v5 container (heterogeneous: per-chunk codec IDs in the frames and
	// the index footer), with the shards alternating between two codecs.
	v5, err := core.AppendChunkedHeaderV5(nil, dims, 0.05, false, 2)
	if err != nil {
		f.Fatal(err)
	}
	v5codecs := []string{"cusz-l", "hi-tp"}
	var v5idx []core.IndexEntry
	for i, off := 0, 0; off < dims[0]; i, off = i+1, off+2 {
		cd, ok := core.CodecByName(v5codecs[i%2])
		if !ok {
			f.Fatal(v5codecs[i%2])
		}
		shard := data[off*64 : (off+2)*64]
		minV, maxV, _ := core.ShardRange(shard)
		shardDims := []int{2, 8, 8}
		payload, err := cd.Compress(nil, gpusim.Default, shard, shardDims, 0.05)
		if err != nil {
			f.Fatal(err)
		}
		v5idx = append(v5idx, core.IndexEntry{FrameOff: int64(len(v5)), PlaneOff: off, Planes: 2, Codec: cd.ID()})
		v5 = core.AppendChunkFrameV5(v5, cd, off, shardDims, minV, maxV, payload)
	}
	v5 = core.AppendChunkIndexFooterV5(v5, int64(len(v5)), v5idx)
	if _, _, err := Decompress(v5); err != nil {
		f.Fatal(err) // the seed itself must be valid
	}

	// A v5 container whose chunks use the backend codecs (fzgpu, szx):
	// the registry dispatches them by wire ID and their payloads are
	// self-contained, so the corpus must cover that path too.
	v5b, err := core.AppendChunkedHeaderV5(nil, dims, 0.05, false, 3)
	if err != nil {
		f.Fatal(err)
	}
	backendCodecs := []string{"fzgpu", "szx"}
	var v5bIdx []core.IndexEntry
	for i, off := 0, 0; off < dims[0]; i, off = i+1, off+3 {
		cd, ok := core.CodecByName(backendCodecs[i%2])
		if !ok {
			f.Fatal(backendCodecs[i%2])
		}
		shard := data[off*64 : (off+3)*64]
		minV, maxV, _ := core.ShardRange(shard)
		shardDims := []int{3, 8, 8}
		payload, err := cd.Compress(nil, gpusim.Default, shard, shardDims, 0.05)
		if err != nil {
			f.Fatal(err)
		}
		v5bIdx = append(v5bIdx, core.IndexEntry{FrameOff: int64(len(v5b)), PlaneOff: off, Planes: 3, Codec: cd.ID()})
		v5b = core.AppendChunkFrameV5(v5b, cd, off, shardDims, minV, maxV, payload)
	}
	v5b = core.AppendChunkIndexFooterV5(v5b, int64(len(v5b)), v5bIdx)
	if _, _, err := Decompress(v5b); err != nil {
		f.Fatal(err) // the seed itself must be valid
	}

	// A v5 frame carrying a TRUNCATED backend payload under a valid CRC:
	// the container framing checks all pass, so the corpus reaches the
	// backend decoder's own hostile-input validation.
	for _, name := range []string{"fzgpu", "szp", "szx"} {
		cd, ok := core.CodecByName(name)
		if !ok {
			f.Fatal(name)
		}
		shard := data[:3*64]
		shardDims := []int{3, 8, 8}
		minV, maxV, _ := core.ShardRange(shard)
		payload, err := cd.Compress(nil, gpusim.Default, shard, shardDims, 0.05)
		if err != nil {
			f.Fatal(err)
		}
		trunc, err := core.AppendChunkedHeaderV5(nil, shardDims, 0.05, false, 3)
		if err != nil {
			f.Fatal(err)
		}
		idx := []core.IndexEntry{{FrameOff: int64(len(trunc)), PlaneOff: 0, Planes: 3, Codec: cd.ID()}}
		trunc = core.AppendChunkFrameV5(trunc, cd, 0, shardDims, minV, maxV, payload[:len(payload)/2])
		f.Add(core.AppendChunkIndexFooterV5(trunc, int64(len(trunc)), idx))
	}

	for _, blob := range [][]byte{v1, v2, vl, v3, v4, v5, v5b} {
		f.Add(blob)
		for _, cut := range []int{0, 3, 5, 9, len(blob) / 3, len(blob) / 2, len(blob) - 1} {
			f.Add(blob[:cut])
		}
		// Single-byte corruptions at structurally interesting offsets.
		for _, at := range []int{4, 5, 6, 8, 16, 20, len(blob) - 5} {
			mut := append([]byte(nil), blob...)
			mut[at] ^= 0x81
			f.Add(mut)
		}
	}
	f.Add([]byte("cSZh"))
	f.Add([]byte{'c', 'S', 'Z', 'h', 2, 0, 0xff, 0xff, 0xff, 0xff, 0xff})

	// Bit-rotted sealed stores: one flipped byte inside each chunk frame's
	// interior (payload rot, CRC-detected) and one inside the index footer
	// body, aimed using the recovery scan's frame map.
	for _, blob := range [][]byte{v4, v5, v5b} {
		rec, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			f.Fatal(err)
		}
		for i, e := range rec.Entries {
			end := rec.FramesEnd
			if i+1 < len(rec.Entries) {
				end = rec.Entries[i+1].FrameOff
			}
			mut := append([]byte(nil), blob...)
			mut[(e.FrameOff+end)/2] ^= 0x81
			f.Add(mut)
		}
		mut := append([]byte(nil), blob...)
		mut[(rec.FramesEnd+int64(len(blob)))/2] ^= 0x81
		f.Add(mut)
	}

	// Hostile index tails on otherwise healthy v4/v5 containers: the
	// 8-byte backpointer patched to run past EOF, to zero (before the
	// header), and a file consisting of nothing but a valid-looking tail.
	for _, blob := range [][]byte{v4, v5} {
		past := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint64(past[len(past)-core.IndexTailLen:], uint64(len(past))*4)
		f.Add(past)
		zero := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint64(zero[len(zero)-core.IndexTailLen:], 0)
		f.Add(zero)
		f.Add(blob[len(blob)-core.IndexTailLen:])
		f.Add(blob[:len(blob)-core.IndexTailLen+3]) // tail cut mid-magic
	}

	f.Fuzz(func(t *testing.T, blob []byte) {
		recon, dims, err := Decompress(blob) // must never panic
		if err != nil {
			return
		}
		total := 1
		for _, d := range dims {
			if d <= 0 {
				t.Fatalf("nil error but invalid dim %d in %v", d, dims)
			}
			total *= d
		}
		if total != len(recon) {
			t.Fatalf("nil error but %d values for dims %v", len(recon), dims)
		}
	})
}
