package core

import "testing"

// fakeEstimates builds a candidate slice in the fixed candidate order with
// the given sizes (raw input: 4 MB).
func fakeEstimates(t *testing.T, bytes map[string]int) []CandidateEstimate {
	t.Helper()
	out := make([]CandidateEstimate, 0, len(bytes))
	for _, cand := range autoSelectCandidates() {
		b, ok := bytes[cand.Name()]
		if !ok {
			t.Fatalf("no size for %s", cand.Name())
		}
		out = append(out, CandidateEstimate{Codec: cand, Bytes: b, Ratio: 4 << 20 / float64(b)})
	}
	return out
}

func pickName(cands []CandidateEstimate, i int) string { return cands[i].Codec.Name() }

func TestBestRatioPolicyPicksSmallest(t *testing.T) {
	cands := fakeEstimates(t, map[string]int{
		"hi-cr": 1000, "hi-tp": 1200, "cusz-l": 2500,
		"fzgpu": 9000, "szp": 5000, "szx": 20000,
	})
	if got := pickName(cands, BestRatioPolicy().Pick(cands)); got != "hi-cr" {
		t.Fatalf("best-ratio picked %s", got)
	}
}

func TestThroughputPolicyTradesRatioForSpeed(t *testing.T) {
	// szp (the fastest candidate) sits within the 15% slack of hi-cr's
	// best estimate, so throughput takes it; best-ratio would not.
	cands := fakeEstimates(t, map[string]int{
		"hi-cr": 1000, "hi-tp": 1300, "cusz-l": 1400,
		"fzgpu": 5000, "szp": 1100, "szx": 20000,
	})
	if got := pickName(cands, ThroughputPolicy().Pick(cands)); got != "szp" {
		t.Fatalf("throughput picked %s", got)
	}
	// Outside the slack the best estimate keeps the shard.
	cands = fakeEstimates(t, map[string]int{
		"hi-cr": 1000, "hi-tp": 1300, "cusz-l": 1400,
		"fzgpu": 5000, "szp": 1200, "szx": 20000,
	})
	if got := pickName(cands, ThroughputPolicy().Pick(cands)); got != "hi-cr" {
		t.Fatalf("throughput picked %s outside slack", got)
	}
}

func TestRatioFloorPolicyPicksFastestMeetingFloor(t *testing.T) {
	// 4 MB raw: hi-cr ratio ~4194, szp ~1398, szx ~210.
	cands := fakeEstimates(t, map[string]int{
		"hi-cr": 1000, "hi-tp": 1300, "cusz-l": 1400,
		"fzgpu": 5000, "szp": 3000, "szx": 20000,
	})
	// Floor met by several: fastest qualifying codec (szp) wins.
	if got := pickName(cands, RatioFloorPolicy(1000).Pick(cands)); got != "szp" {
		t.Fatalf("ratio-floor:1000 picked %s", got)
	}
	// Floor met only by the assemblies: the fastest of them (cusz-l) wins.
	if got := pickName(cands, RatioFloorPolicy(2500).Pick(cands)); got != "cusz-l" {
		t.Fatalf("ratio-floor:2500 picked %s", got)
	}
	// Floor unreachable: fall back to best ratio.
	if got := pickName(cands, RatioFloorPolicy(1e9).Pick(cands)); got != "hi-cr" {
		t.Fatalf("unreachable ratio-floor picked %s", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for spell, want := range map[string]string{
		"":                "best-ratio",
		"best-ratio":      "best-ratio",
		"throughput":      "throughput",
		"ratio-floor:2.5": "ratio-floor:2.5",
	} {
		pol, err := PolicyByName(spell)
		if err != nil {
			t.Fatalf("%q: %v", spell, err)
		}
		if pol.Name() != want {
			t.Fatalf("%q resolved to %s, want %s", spell, pol.Name(), want)
		}
	}
	for _, bad := range []string{"bogus", "ratio-floor:", "ratio-floor:x", "ratio-floor:-1", "ratio-floor:0"} {
		if _, err := PolicyByName(bad); err == nil {
			t.Fatalf("%q: want error", bad)
		}
	}
}
