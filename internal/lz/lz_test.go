package lz

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

var variants = []Variant{LZ4Lite, GPULZLite, ZstdLite, GDeflateLite}

func testVectors(rng *rand.Rand) [][]byte {
	repeats := bytes.Repeat([]byte("abcabcabc123"), 1000)
	random := make([]byte, 5000)
	rng.Read(random)
	runs := make([]byte, 10_000)
	for i := range runs {
		runs[i] = byte(i / 700)
	}
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200)
	mixed := append(append([]byte{}, random[:1000]...), repeats[:3000]...)
	return [][]byte{
		nil,
		{1},
		{1, 2, 3},
		make([]byte, 10_000),
		repeats, random, runs, text, mixed,
	}
}

func TestRoundTripAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := testVectors(rng)
	for _, v := range variants {
		for vi, data := range vecs {
			enc, err := Encode(dev, data, v)
			if err != nil {
				t.Fatalf("%s vec %d encode: %v", v, vi, err)
			}
			dec, err := Decode(dev, enc, v)
			if err != nil {
				t.Fatalf("%s vec %d decode: %v", v, vi, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s vec %d: mismatch (%d vs %d bytes)", v, vi, len(dec), len(data))
			}
		}
	}
}

func TestCompressesRepeats(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789abcdef"), 4096)
	for _, v := range variants {
		enc, err := Encode(dev, data, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) > len(data)/4 {
			t.Fatalf("%s: repetitive data compressed to %d/%d", v, len(enc), len(data))
		}
	}
}

func TestZstdLiteBeatsLZ4LiteOnSkewedLiterals(t *testing.T) {
	// Entropy-coded literals matter when matches are rare but the literal
	// distribution is skewed — this is the Fig. 6 separation.
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(rng.NormFloat64()*4) + 128
	}
	encZ, err := Encode(dev, data, ZstdLite)
	if err != nil {
		t.Fatal(err)
	}
	encL, err := Encode(dev, data, LZ4Lite)
	if err != nil {
		t.Fatal(err)
	}
	if len(encZ) >= len(encL) {
		t.Fatalf("zstd-lite (%d) should beat lz4-lite (%d) on skewed literals", len(encZ), len(encL))
	}
}

func TestOverlappingMatches(t *testing.T) {
	// RLE-style overlap: dist < matchLen.
	data := append([]byte{5}, bytes.Repeat([]byte{5}, 1000)...)
	for _, v := range variants {
		enc, err := Encode(dev, data, v)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(dev, enc, v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("%s: overlap mismatch", v)
		}
	}
}

func TestDecodeCorruptNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := bytes.Repeat([]byte("hello world "), 500)
	for _, v := range variants {
		enc, err := Encode(dev, data, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{0, 1, len(enc) / 3, len(enc) - 1} {
			Decode(dev, enc[:cut], v) // must not panic
		}
		for trial := 0; trial < 30; trial++ {
			bad := append([]byte(nil), enc...)
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
			Decode(dev, bad, v) // must not panic
		}
	}
}

func TestUnknownVariant(t *testing.T) {
	if _, err := Encode(dev, []byte("x"), Variant(99)); err == nil {
		t.Fatal("want error for unknown variant")
	}
	if _, err := Decode(dev, []byte("x"), Variant(99)); err == nil {
		t.Fatal("want error for unknown variant")
	}
}

func TestVariantString(t *testing.T) {
	if LZ4Lite.String() != "lz4-lite" || ZstdLite.String() != "zstd-lite" {
		t.Fatal("variant names")
	}
}

func TestMatchLenBounds(t *testing.T) {
	src := []byte{1, 1, 1, 1, 1, 2}
	if got := matchLen(src, 0, 1, 100); got != 4 {
		t.Fatalf("matchLen = %d, want 4", got)
	}
	if got := matchLen(src, 0, 1, 2); got != 2 {
		t.Fatalf("capped matchLen = %d, want 2", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, v := range variants {
		v := v
		f := func(data []byte) bool {
			enc, err := Encode(dev, data, v)
			if err != nil {
				return false
			}
			dec, err := Decode(dev, enc, v)
			return err == nil && bytes.Equal(dec, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
}

// TestCtxMatchesContextFree: every variant's arena-context entry points
// must produce byte-identical streams to the context-free wrappers.
func TestCtxMatchesContextFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, v := range variants {
		ctx := arena.NewCtx()
		for _, src := range testVectors(rng) {
			want, err := Encode(dev, src, v)
			if err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			ctx.Reset()
			got, err := EncodeCtx(ctx, dev, src, v)
			if err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v: context encode diverges from context-free encode", v)
			}
			ctx.Reset()
			dec, err := DecodeCtx(ctx, dev, got, v)
			if err != nil || !bytes.Equal(dec, src) {
				t.Fatalf("%v: ctx round trip: %v", v, err)
			}
		}
	}
}

// TestAllocsWarmCtx is the arena-refactor guard for the byte-aligned
// variants: a warm context re-codes stream after stream with a
// near-constant handful of allocations (the entropy variants pay their
// rANS/Huffman back-ends and are guarded loosely).
func TestAllocsWarmCtx(t *testing.T) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over 0123456789 "), 1500)
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ceilings := map[Variant][2]float64{
		LZ4Lite:   {6, 4},
		GPULZLite: {6, 4},
	}
	for v, lim := range ceilings {
		ctx := arena.NewCtx()
		blob, err := EncodeCtx(ctx, dev1, src, v)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset()
		if _, err := DecodeCtx(ctx, dev1, blob, v); err != nil {
			t.Fatal(err)
		}
		enc := testing.AllocsPerRun(10, func() {
			ctx.Reset()
			if _, err := EncodeCtx(ctx, dev1, src, v); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%v warm encode: %v allocs/op", v, enc)
		if enc > lim[0] {
			t.Fatalf("%v: steady-state encode allocates %v/op, want <= %v", v, enc, lim[0])
		}
		dec := testing.AllocsPerRun(10, func() {
			ctx.Reset()
			if _, err := DecodeCtx(ctx, dev1, blob, v); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%v warm decode: %v allocs/op", v, dec)
		if dec > lim[1] {
			t.Fatalf("%v: steady-state decode allocates %v/op, want <= %v", v, dec, lim[1])
		}
	}
}

// TestDecodeVarintHostileMatchLen is the regression guard for the
// unsigned-wrap match bound: a stream whose literals overshoot origLen
// followed by a huge matchLen must fail fast with ErrCorrupt instead of
// replaying ~10^12 bytes through the append loop.
func TestDecodeVarintHostileMatchLen(t *testing.T) {
	bad := bitio.AppendUvarint(nil, 1) // origLen 1
	bad = bitio.AppendUvarint(bad, 5)  // 5 literals (already > origLen)
	bad = append(bad, "abcde"...)
	bad = bitio.AppendUvarint(bad, 1<<40) // hostile matchLen
	bad = bitio.AppendUvarint(bad, 1)     // dist
	done := make(chan error, 1)
	go func() {
		_, err := Decode(dev, bad, LZ4Lite)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("hostile matchLen decoded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("decoder hung on hostile matchLen")
	}
}
