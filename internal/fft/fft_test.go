package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1023} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) = true", n)
		}
	}
}

func TestTransformImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	if err := Transform(x, false); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestTransformSingleTone(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	k := 5
	for i := range x {
		ang := 2 * math.Pi * float64(k*i) / float64(n)
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	if err := Transform(x, false); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want magnitude %v", i, v, want)
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 16, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := Transform(x, false); err != nil {
			t.Fatal(err)
		}
		if err := Transform(x, true); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d round trip mismatch at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestTransformBadLength(t *testing.T) {
	if err := Transform(make([]complex128, 3), false); err == nil {
		t.Fatal("want error for non-power-of-two")
	}
	if err := Transform(nil, false); err != nil {
		t.Fatalf("empty transform should be a no-op: %v", err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i] * cmplx.Conj(x[i]))
	}
	if err := Transform(x, false); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v * cmplx.Conj(v))
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
		t.Fatalf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	g, err := NewGrid3(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = g.Data[i]
	}
	if err := Transform3(g, false); err != nil {
		t.Fatal(err)
	}
	if err := Transform3(g, true); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("3D round trip mismatch at %d", i)
		}
	}
}

func TestNewGrid3Validation(t *testing.T) {
	if _, err := NewGrid3(3, 4, 4); err == nil {
		t.Fatal("want error for non-pow2 dim")
	}
}
