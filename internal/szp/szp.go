// Package szp reimplements the cuSZp2 baseline (Huang et al., SC'24): an
// end-to-end throughput-oriented GPU compressor built from 1-D offset
// (delta) prediction on prequantized integers and per-block fixed-length
// encoding, with an "outlier mode" bitmap that elides all-zero blocks.
//
// The pipeline is: round every value to the 2ε lattice, delta-encode within
// independent 32-value blocks, zigzag, and pack each block at its own
// ceiling-log2 bit width. Blocks whose deltas are all zero cost a single
// bitmap bit — that sparsification is where cuSZp2's ratio comes from on
// smooth fields, while its 1-D prediction keeps its ratio well below the
// interpolation compressors', matching Table 4.
package szp

import (
	"errors"
	"math"

	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("szp: corrupt stream")

const (
	blockVals = 32
	// latticeCap mirrors lorenzo's overflow guard.
	latticeCap = int64(1) << 50
	// chunkBlocks groups blocks for parallel encode/decode.
	chunkBlocks = 512
)

// Compress encodes data under absolute error bound eb.
func Compress(dev *gpusim.Device, data []float32, eb float64) ([]byte, error) {
	if eb <= 0 {
		return nil, errors.New("szp: error bound must be positive")
	}
	twoEB := 2 * eb
	n := len(data)
	nBlocks := (n + blockVals - 1) / blockVals
	nChunks := (nBlocks + chunkBlocks - 1) / chunkBlocks
	type chunkOut struct {
		payload []byte
		outPos  []int
		outVal  []float32
	}
	chunks := make([]chunkOut, nChunks)
	dev.Launch(nChunks, func(c int) {
		w := bitio.NewWriter(chunkBlocks * blockVals / 2)
		co := &chunks[c]
		for b := c * chunkBlocks; b < (c+1)*chunkBlocks && b < nBlocks; b++ {
			lo := b * blockVals
			hi := lo + blockVals
			if hi > n {
				hi = n
			}
			var deltas [blockVals]uint64
			var prev int64
			var maxd uint64
			for i := lo; i < hi; i++ {
				q := math.Round(float64(data[i]) / twoEB)
				var qi int64
				switch {
				case q > float64(latticeCap):
					qi = latticeCap
				case q < -float64(latticeCap):
					qi = -latticeCap
				default:
					qi = int64(q)
				}
				recon := float32(float64(qi) * twoEB)
				if math.Abs(float64(data[i])-float64(recon)) > eb {
					co.outPos = append(co.outPos, i)
					co.outVal = append(co.outVal, data[i])
				}
				z := bitio.ZigZag(qi - prev)
				prev = qi
				deltas[i-lo] = z
				if z > maxd {
					maxd = z
				}
			}
			width := uint(0)
			for v := maxd; v > 0; v >>= 1 {
				width++
			}
			if width == 0 {
				w.WriteBit(0) // zero block: single bitmap bit
				continue
			}
			w.WriteBit(1)
			w.WriteBits(uint64(width), 6)
			for i := lo; i < hi; i++ {
				w.WriteBits(deltas[i-lo], width)
			}
		}
		co.payload = w.Bytes()
	})
	out := bitio.AppendUvarint(nil, uint64(n))
	out = bitio.AppendUint64(out, math.Float64bits(eb))
	// Value outliers (rare): positions + raw values.
	totalOut := 0
	for i := range chunks {
		totalOut += len(chunks[i].outPos)
	}
	out = bitio.AppendUvarint(out, uint64(totalOut))
	prevPos := 0
	for i := range chunks {
		for k, p := range chunks[i].outPos {
			out = bitio.AppendUvarint(out, uint64(p-prevPos))
			prevPos = p
			out = bitio.AppendUint32(out, math.Float32bits(chunks[i].outVal[k]))
		}
	}
	out = bitio.AppendUvarint(out, uint64(nChunks))
	for i := range chunks {
		out = bitio.AppendUvarint(out, uint64(len(chunks[i].payload)))
	}
	for i := range chunks {
		out = append(out, chunks[i].payload...)
	}
	return out, nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, error) {
	n64, nn := bitio.Uvarint(blob)
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off := nn
	n := int(n64)
	if n < 0 {
		return nil, ErrCorrupt
	}
	if off+8 > len(blob) {
		return nil, ErrCorrupt
	}
	var ebBits uint64
	for i := 0; i < 8; i++ {
		ebBits |= uint64(blob[off+i]) << (8 * i)
	}
	off += 8
	eb := math.Float64frombits(ebBits)
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, ErrCorrupt
	}
	twoEB := 2 * eb
	nOut64, nn := bitio.Uvarint(blob[off:])
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off += nn
	nOut := int(nOut64)
	if nOut < 0 || nOut > n {
		return nil, ErrCorrupt
	}
	outPos := make([]int, nOut)
	outVal := make([]float32, nOut)
	prevPos := 0
	for i := 0; i < nOut; i++ {
		d, nn := bitio.Uvarint(blob[off:])
		if nn == 0 {
			return nil, ErrCorrupt
		}
		off += nn
		prevPos += int(d)
		if prevPos >= n || off+4 > len(blob) {
			return nil, ErrCorrupt
		}
		outPos[i] = prevPos
		var vb uint32
		for k := 0; k < 4; k++ {
			vb |= uint32(blob[off+k]) << (8 * k)
		}
		off += 4
		outVal[i] = math.Float32frombits(vb)
	}
	nChunks64, nn := bitio.Uvarint(blob[off:])
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off += nn
	nBlocks := (n + blockVals - 1) / blockVals
	wantChunks := (nBlocks + chunkBlocks - 1) / chunkBlocks
	if n == 0 {
		wantChunks = 0
	}
	if int(nChunks64) != wantChunks {
		return nil, ErrCorrupt
	}
	lens := make([]int, wantChunks)
	total := 0
	for i := range lens {
		l, nn := bitio.Uvarint(blob[off:])
		if nn == 0 {
			return nil, ErrCorrupt
		}
		off += nn
		lens[i] = int(l)
		total += int(l)
	}
	if off+total > len(blob) {
		return nil, ErrCorrupt
	}
	starts := make([]int, wantChunks)
	pos := off
	for i, l := range lens {
		starts[i] = pos
		pos += l
	}
	out := make([]float32, n)
	ok := make([]bool, wantChunks)
	dev.Launch(wantChunks, func(c int) {
		r := bitio.NewReader(blob[starts[c] : starts[c]+lens[c]])
		for b := c * chunkBlocks; b < (c+1)*chunkBlocks && b < nBlocks; b++ {
			lo := b * blockVals
			hi := lo + blockVals
			if hi > n {
				hi = n
			}
			flag, err := r.ReadBit()
			if err != nil {
				return
			}
			var prev int64
			if flag == 0 {
				// All-zero deltas: constant zero lattice.
				for i := lo; i < hi; i++ {
					out[i] = 0
				}
				continue
			}
			w64, err := r.ReadBits(6)
			if err != nil || w64 == 0 || w64 > 63 {
				return
			}
			for i := lo; i < hi; i++ {
				z, err := r.ReadBits(uint(w64))
				if err != nil {
					return
				}
				prev += bitio.UnZigZag(z)
				out[i] = float32(float64(prev) * twoEB)
			}
		}
		ok[c] = true
	})
	for _, o := range ok {
		if !o {
			return nil, ErrCorrupt
		}
	}
	for i, p := range outPos {
		out[p] = outVal[i]
	}
	return out, nil
}
