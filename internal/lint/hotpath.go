// The hotpathalloc analyzer: functions annotated //cuszhi:hotpath may not
// contain allocating constructs.
//
// The runtime side of this contract is the per-package TestAllocsWarmCtx /
// AllocsPerRun guards (steady-state 64-cubed round trip <= 10 allocs); this
// analyzer is the static side, pinning the discipline to specific functions
// so a regression is reported at the offending line instead of as an
// opaque allocation-count bump. Flagged constructs: make, new, append
// (growth is indistinguishable syntactically, so every append is reported
// and amortized-growth points carry a //lint:ignore with their
// justification), &composite literals, slice/map literals, string/[]byte
// conversions, go statements, and any fmt.* call.
package lint

import (
	"go/ast"
)

// HotPathMarker is the doc-comment directive that opts a function into the
// hotpathalloc check.
const HotPathMarker = "//cuszhi:hotpath"

func hotPathAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "functions annotated //cuszhi:hotpath may not contain allocating constructs",
		Run:  runHotPathAlloc,
	}
}

func runHotPathAlloc(pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDocHas(fn, HotPathMarker) {
				continue
			}
			findings = append(findings, hotPathFunc(pkg, fn)...)
		}
	}
	return findings
}

func hotPathFunc(pkg *Package, fn *ast.FuncDecl) []Finding {
	var findings []Finding
	report := func(n ast.Node, msg string) {
		findings = append(findings, Finding{
			Check:   "hotpathalloc",
			Pos:     pkg.Fset.Position(n.Pos()),
			Message: msg + " in //cuszhi:hotpath function " + fn.Name.Name,
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n, "go statement (goroutine + closure allocation)")
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				report(n, "&composite literal escapes to the heap")
				return false // the literal itself would double-report
			}
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case *ast.ArrayType:
				if n.Type.(*ast.ArrayType).Len == nil {
					report(n, "slice literal allocates")
				}
			case *ast.MapType:
				report(n, "map literal allocates")
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make":
					report(n, "make allocates")
				case "new":
					report(n, "new allocates")
				case "append":
					report(n, "append may grow its backing array")
				case "string":
					report(n, "string conversion copies")
				}
			case *ast.ArrayType:
				if fun.Len == nil {
					report(n, "slice conversion copies")
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && id.Name == "fmt" {
					report(n, "fmt."+fun.Sel.Name+" allocates")
				}
			}
		}
		return true
	})
	return findings
}
