// Package quant implements the quantization-code machinery of cuSZ-Hi:
// one-byte quantization codes with a separately stored outlier list
// (§5.2.1) and the mapping-based level-order reordering of Eq. 3 (§5.1.4).
package quant

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// ErrCorrupt reports a malformed outlier section.
var ErrCorrupt = errors.New("quant: corrupt outlier section")

const (
	// Radius is the symmetric quantization-code radius representable in one
	// byte: codes 1..255 encode q in [-127, 127]; code 0 marks an outlier.
	Radius = 127
	// ZeroCode is the code of a perfectly predicted point (q = 0).
	ZeroCode = 128
	// OutlierCode marks points stored losslessly in the outlier list.
	OutlierCode = 0
)

// Quantize maps a prediction error to a code and the reconstructed value.
// outlier is true when the error exceeds the code radius (or float32
// rounding would break the bound), in which case the caller must store val
// losslessly and recon == val.
func Quantize(val, pred float32, twoEB float64) (code uint8, recon float32, outlier bool) {
	d := float64(val) - float64(pred)
	qf := math.Round(d / twoEB)
	if qf >= -Radius && qf <= Radius {
		r := float32(float64(pred) + qf*twoEB)
		if math.Abs(float64(val)-float64(r)) <= twoEB/2 {
			return uint8(int(qf) + ZeroCode), r, false
		}
	}
	return OutlierCode, val, true
}

// Dequantize reconstructs a value from a non-outlier code.
func Dequantize(code uint8, pred float32, twoEB float64) float32 {
	return float32(float64(pred) + float64(int(code)-ZeroCode)*twoEB)
}

// ---------------------------------------------------------------------------
// Outlier list.

// Outliers stores losslessly kept points: flat positions (ascending) and
// their original float32 values.
type Outliers struct {
	Pos []int
	Val []float32
}

// Append records one outlier.
func (o *Outliers) Append(pos int, val float32) {
	o.Pos = append(o.Pos, pos)
	o.Val = append(o.Val, val)
}

// Len returns the number of outliers.
func (o *Outliers) Len() int { return len(o.Pos) }

// Serialize appends the section to dst: count, delta-varint positions, raw
// float32 values.
func (o *Outliers) Serialize(dst []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(len(o.Pos)))
	prev := 0
	for _, p := range o.Pos {
		dst = bitio.AppendUvarint(dst, uint64(p-prev))
		prev = p
	}
	for _, v := range o.Val {
		dst = bitio.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// ParseOutliers decodes a section produced by Serialize, returning the
// outliers and the number of bytes consumed.
func ParseOutliers(p []byte) (*Outliers, int, error) {
	o := &Outliers{}
	used, err := ParseOutliersInto(nil, o, p)
	if err != nil {
		return nil, 0, err
	}
	return o, used, nil
}

// ParseOutliersInto decodes a section produced by Serialize into o, drawing
// o's backing arrays from ctx (scratch, valid until ctx.Reset; plain
// allocations when ctx is nil). It returns the number of bytes consumed.
func ParseOutliersInto(ctx *arena.Ctx, o *Outliers, p []byte) (int, error) {
	count64, n := bitio.Uvarint(p)
	if n == 0 {
		return 0, ErrCorrupt
	}
	off := n
	count, ok := bitio.IntLen(count64)
	if !ok || count > len(p) { // each entry needs >= 5 bytes
		return 0, ErrCorrupt
	}
	o.Pos = ctx.Ints(count)
	o.Val = ctx.F32(count)
	prev := 0
	for i := 0; i < count; i++ {
		d, n := bitio.Uvarint(p[off:])
		// Cap the delta before converting: consumers bounds-check positions
		// before indexing, but a wrapped int would corrupt the running sum
		// into a plausible-looking (wrong) position instead of failing here.
		if n == 0 || d > bitio.MaxWireLen {
			return 0, ErrCorrupt
		}
		off += n
		prev += int(d)
		o.Pos[i] = prev
	}
	if off+4*count > len(p) {
		return 0, ErrCorrupt
	}
	for i := 0; i < count; i++ {
		o.Val[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[off:]))
		off += 4
	}
	return off, nil
}

// SortedGet returns the value at position pos by binary search. Positions
// must be ascending, which both Compress (sorted merge) and the serialized
// form (delta-coded) guarantee — it keeps the decompression path
// allocation-free (the map-building Lookup it replaced allocated a fresh
// map per call).
func (o *Outliers) SortedGet(pos int) (float32, bool) {
	i := sort.SearchInts(o.Pos, pos)
	if i < len(o.Pos) && o.Pos[i] == pos {
		return o.Val[i], true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Level-order reordering (Eq. 3).

// LevelOrderPerm returns the Eq. 3 permutation for a grid with the given
// dims (slowest dim first, up to 3 dims) and anchor stride A (power of two):
// perm[k] is the flat natural index of the k-th element of the reordered
// sequence. Codes from the anchor lattice come first, then each finer
// interpolation level in coarse-to-fine order, matching §5.1.4 ("codes from
// the larger interpolation strides appear first").
func LevelOrderPerm(dims []int, anchorStride int) []int32 {
	return LevelOrderPermCtx(nil, dims, anchorStride)
}

// permMemo caches the last permutation computed through a context: shard
// pipelines apply the same (dims, stride) permutation to every shard, so a
// per-worker context turns the O(n) rebuild into a lookup.
type permMemo struct {
	nz, ny, nx, stride int
	perm               []int32
}

var permAuxKey = arena.NewAuxKey()

// LevelOrderPermCtx is LevelOrderPerm memoized on ctx: the returned slice
// is owned by the context (do not modify) and stays valid across Resets.
func LevelOrderPermCtx(ctx *arena.Ctx, dims []int, anchorStride int) []int32 {
	nz, ny, nx := norm3(dims)
	if ctx != nil {
		if m, ok := ctx.Aux(permAuxKey).(*permMemo); ok &&
			m.nz == nz && m.ny == ny && m.nx == nx && m.stride == anchorStride {
			return m.perm
		}
	}
	perm := levelOrderPerm(nz, ny, nx, anchorStride)
	ctx.SetAux(permAuxKey, &permMemo{nz: nz, ny: ny, nx: nx, stride: anchorStride, perm: perm})
	return perm
}

func levelOrderPerm(nz, ny, nx, anchorStride int) []int32 {
	L := log2(anchorStride)
	n := nz * ny * nx
	perm := make([]int32, 0, n)
	for l := L; l >= 0; l-- {
		step := 1 << uint(l)
		coarse := step * 2
		for z := 0; z < nz; z += step {
			zc := l < L && z%coarse == 0
			for y := 0; y < ny; y += step {
				yc := y%coarse == 0
				for x := 0; x < nx; x += step {
					if zc && yc && x%coarse == 0 {
						continue // belongs to a coarser level
					}
					perm = append(perm, int32((z*ny+y)*nx+x))
				}
			}
		}
	}
	return perm
}

// Apply gathers src into level order: dst[k] = src[perm[k]]. The kernel
// runs 8-wide over pinned views of the sequential side; only the gather
// loads stay bounds-checked (their indices are data-dependent).
//
//cuszhi:hotpath
func Apply(dev *gpusim.Device, perm []int32, src, dst []uint8) {
	dev.LaunchBatched(len(perm), 1<<16, 8, func(lo, hi int) {
		p := perm[lo:hi:hi]
		d := dst[lo:hi:hi]
		n := hi - lo
		k := 0
		for ; k+8 <= n; k += 8 {
			p8 := p[k : k+8 : k+8]
			d8 := d[k : k+8 : k+8]
			d8[0] = src[p8[0]]
			d8[1] = src[p8[1]]
			d8[2] = src[p8[2]]
			d8[3] = src[p8[3]]
			d8[4] = src[p8[4]]
			d8[5] = src[p8[5]]
			d8[6] = src[p8[6]]
			d8[7] = src[p8[7]]
		}
		for ; k < n; k++ {
			d[k] = src[p[k]]
		}
	})
}

// Invert scatters level-ordered data back: dst[perm[k]] = src[k], 8-wide
// like Apply with the scatter stores bounds-checked.
//
//cuszhi:hotpath
func Invert(dev *gpusim.Device, perm []int32, src, dst []uint8) {
	dev.LaunchBatched(len(perm), 1<<16, 8, func(lo, hi int) {
		p := perm[lo:hi:hi]
		s := src[lo:hi:hi]
		n := hi - lo
		k := 0
		for ; k+8 <= n; k += 8 {
			p8 := p[k : k+8 : k+8]
			s8 := s[k : k+8 : k+8]
			dst[p8[0]] = s8[0]
			dst[p8[1]] = s8[1]
			dst[p8[2]] = s8[2]
			dst[p8[3]] = s8[3]
			dst[p8[4]] = s8[4]
			dst[p8[5]] = s8[5]
			dst[p8[6]] = s8[6]
			dst[p8[7]] = s8[7]
		}
		for ; k < n; k++ {
			dst[p[k]] = s[k]
		}
	})
}

func norm3(dims []int) (nz, ny, nx int) {
	switch len(dims) {
	case 1:
		return 1, 1, dims[0]
	case 2:
		return 1, dims[0], dims[1]
	case 3:
		return dims[0], dims[1], dims[2]
	default:
		nz = 1
		for _, d := range dims[:len(dims)-2] {
			nz *= d
		}
		return nz, dims[len(dims)-2], dims[len(dims)-1]
	}
}

func log2(v int) int {
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}

// HistEntropyBits returns the Shannon entropy of a code histogram in bits
// per symbol — the information-theoretic floor any entropy stage pays per
// quant code. The auto-mode estimator uses it (and its per-bitplane
// sibling in core) to score candidate pipelines from the fused
// quantization histogram without compressing anything.
//
//cuszhi:hotpath
func HistEntropyBits(freq []int64) float64 {
	var total int64
	for _, f := range freq {
		total += f
	}
	if total <= 0 {
		return 0
	}
	inv := 1 / float64(total)
	var h float64
	for _, f := range freq {
		if f > 0 {
			p := float64(f) * inv
			h -= p * math.Log2(p)
		}
	}
	return h
}
