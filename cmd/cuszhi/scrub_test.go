package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		io.Copy(&b, r)
		done <- b.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestScrubCommand locks the verb's three-way exit semantics: 0 for a
// clean store, 1 for a damaged one (naming the damaged chunk), 2 for a
// file that is not a scrubbable container.
func TestScrubCommand(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.f32")
	store := filepath.Join(dir, "f.cszh")
	if err := cmdGen([]string{"-dataset", "nyx", "-o", raw, "-dims", "16x12x12", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompress([]string{"-i", raw, "-o", store, "-dims", "16x12x12",
		"-eb", "1e-3", "-mode", "szx", "-stream", "-chunk", "4"}); err != nil {
		t.Fatal(err)
	}
	if got := cmdScrub([]string{"-i", store}); got != 0 {
		t.Fatalf("clean store: exit %d, want 0", got)
	}

	// Flip one byte in the interior of chunk 1's frame (its payload) and
	// the verb must exit 1, naming that chunk.
	blob, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
	if err != nil || len(rec.Entries) < 3 {
		t.Fatalf("recovery scan: %d entries (err %v)", len(rec.Entries), err)
	}
	mut := append([]byte(nil), blob...)
	mut[(rec.Entries[1].FrameOff+rec.Entries[2].FrameOff)/2] ^= 0x81
	if err := os.WriteFile(store, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	var got int
	out := captureStdout(t, func() { got = cmdScrub([]string{"-i", store}) })
	if got != 1 {
		t.Fatalf("damaged store: exit %d, want 1 (output %q)", got, out)
	}
	if !strings.Contains(out, "chunk 1") {
		t.Fatalf("scrub output does not name the damaged chunk: %q", out)
	}

	// -json carries the same localization, machine-readably.
	out = captureStdout(t, func() { got = cmdScrub([]string{"-i", store, "-json"}) })
	if got != 1 {
		t.Fatalf("damaged store (-json): exit %d, want 1", got)
	}
	var rep scrubJSON
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("scrub -json output is not JSON: %v (%q)", err, out)
	}
	if rep.Clean || len(rep.Damaged) != 1 || rep.Damaged[0].Chunk != 1 {
		t.Fatalf("scrub -json report = %+v", rep)
	}

	// Not a container at all: exit 2.
	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cmdScrub([]string{"-i", garbage}); got != 2 {
		t.Fatalf("garbage file: exit %d, want 2", got)
	}
	if got := cmdScrub([]string{"-i", filepath.Join(dir, "missing")}); got != 2 {
		t.Fatalf("missing file: exit %d, want 2", got)
	}
}
