// Store scrubbing: deep integrity verification without decoding to
// floats. Scrub walks every chunk frame of a sealed container, checking
// each frame header parses, each payload CRC matches, the chunk-index
// footer (v4/v5) CRCs and cross-checks against the frames it claims to
// seal, and the global header agrees with what the frames prove — the
// audit a production store runs periodically to catch bit-rot before a
// reader does. Damage is localized per chunk, never aborting the walk
// while the frame chain stays parseable, so one report names every rotten
// chunk a repair or degraded read will encounter.
package stream

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
)

// ScrubReport is the result of deep-verifying one container.
type ScrubReport struct {
	Version   int   // container format version
	SizeBytes int64 // scanned size
	Chunks    int   // chunks the container claims
	Verified  int   // chunks that passed every check
	// Damaged lists the chunks that failed a check, ascending by index.
	// A damaged chunk is exactly one a degraded read would fill.
	Damaged []ChunkDamage
	// FooterErr is non-nil when a v4/v5 container's chunk-index footer is
	// itself damaged (bad tail magic, CRC mismatch, frames/footer
	// disagreement). The frames are then verified by sequential walk.
	FooterErr error
	// HeaderErr is non-nil when the global header disagrees with what the
	// frames prove (plane count, chunk count), or frames are missing.
	HeaderErr error
}

// Clean reports whether the container passed every check.
func (s *ScrubReport) Clean() bool {
	return len(s.Damaged) == 0 && s.FooterErr == nil && s.HeaderErr == nil
}

// Summary renders the report as one line per problem (or "clean").
func (s *ScrubReport) Summary() string {
	if s.Clean() {
		return fmt.Sprintf("clean: v%d, %d chunk(s) verified, %d bytes", s.Version, s.Verified, s.SizeBytes)
	}
	out := fmt.Sprintf("damaged: %d of %d chunk(s) failed verification", len(s.Damaged), s.Chunks)
	for _, d := range s.Damaged {
		out += fmt.Sprintf("\n  chunk %d @0x%x (planes %d..%d): %v",
			d.Chunk, d.Offset, d.PlaneOff, d.PlaneOff+d.Planes, d.Err)
	}
	if s.FooterErr != nil {
		out += fmt.Sprintf("\n  footer: %v", s.FooterErr)
	}
	if s.HeaderErr != nil {
		out += fmt.Sprintf("\n  header: %v", s.HeaderErr)
	}
	return out
}

// Scrub deep-verifies the container held by src (size bytes long) without
// decoding any chunk to floats: every frame header must parse, every
// payload CRC must match, and for v4/v5 the chunk-index footer must CRC
// and agree with the frames entry by entry. WithRetry applies to every
// read the scrub issues. The returned report localizes damage per chunk;
// the error return is reserved for containers too damaged to scrub at all
// (unparseable global header, not a container) — v1 blobs, which carry no
// frame checksums, are also rejected here.
func Scrub(src io.ReaderAt, size int64, opt ...Option) (*ScrubReport, error) {
	cfg := newConfig(opt)
	src = cfg.retry.WrapReaderAt(src)
	var pre [5]byte
	if size < int64(len(pre)) {
		return nil, core.ErrCorrupt
	}
	if err := core.ReadFullAt(src, pre[:], 0); err != nil {
		return nil, core.ErrCorrupt
	}
	version, ok := core.SniffVersion(pre[:])
	if !ok {
		return nil, core.ErrCorrupt
	}
	if version == 1 {
		return nil, errors.New("stream: scrub requires a chunked container (v2+); v1 blobs carry no frame checksums")
	}
	cr := &countReader{r: io.NewSectionReader(src, 0, size)}
	h, err := core.ReadChunkedHeader(cr)
	if err != nil {
		return nil, err
	}
	rep := &ScrubReport{Version: h.Version, SizeBytes: size, Chunks: h.NumChunks}
	headerLen := cr.n
	if h.Version >= 4 {
		entries, framesEnd, ferr := scrubIndex(src, size, h, headerLen)
		if ferr == nil {
			scrubWithIndex(src, h, entries, framesEnd, rep)
			return rep, nil
		}
		// The footer itself is damaged: record that and verify the frames
		// by sequential walk instead — the header still locates them.
		rep.FooterErr = ferr
	}
	scrubSequential(src, size, h, headerLen, rep)
	return rep, nil
}

// scrubIndex loads and validates a v4/v5 chunk-index footer the way
// OpenReaderAt does, returning the entries and the frame-region end.
func scrubIndex(src io.ReaderAt, size int64, h *core.ChunkedInfo, headerLen int64) ([]core.IndexEntry, int64, error) {
	if size < headerLen+core.IndexTailLen {
		return nil, 0, fmt.Errorf("no room for the index tail: %w", core.ErrCorrupt)
	}
	var tail [core.IndexTailLen]byte
	if err := core.ReadFullAt(src, tail[:], size-core.IndexTailLen); err != nil {
		return nil, 0, err
	}
	footerOff, err := core.ParseChunkIndexTail(tail[:])
	if err != nil {
		return nil, 0, err
	}
	if footerOff < headerLen || footerOff > size-core.IndexTailLen {
		return nil, 0, fmt.Errorf("index backpointer 0x%x outside the file: %w", footerOff, core.ErrCorrupt)
	}
	regionLen := size - core.IndexTailLen - footerOff
	if regionLen > int64(h.NumChunks)*30+64 {
		return nil, 0, fmt.Errorf("index region oversized (%d bytes): %w", regionLen, core.ErrCorrupt)
	}
	region := make([]byte, regionLen)
	if err := core.ReadFullAt(src, region, footerOff); err != nil {
		return nil, 0, err
	}
	entries, err := core.ParseChunkIndex(region, h, footerOff)
	if err != nil {
		return nil, 0, err
	}
	if entries[0].FrameOff != headerLen {
		return nil, 0, fmt.Errorf("first frame offset 0x%x disagrees with header end 0x%x: %w",
			entries[0].FrameOff, headerLen, core.ErrCorrupt)
	}
	return entries, footerOff, nil
}

// scrubWithIndex verifies each frame against its (already CRC-valid)
// footer entry: the frame header must parse, agree with the entry on
// plane offset, plane count and codec, end exactly where the next frame
// starts, and its payload CRC must match. Every chunk is checked — the
// footer locates frames independently, so damage in one never hides
// damage in another.
func scrubWithIndex(src io.ReaderAt, h *core.ChunkedInfo, entries []core.IndexEntry, framesEnd int64, rep *ScrubReport) {
	if len(entries) != h.NumChunks {
		rep.HeaderErr = fmt.Errorf("header claims %d chunks, index holds %d: %w",
			h.NumChunks, len(entries), core.ErrCorrupt)
	}
	planes := 0
	var buf [maxFrameHeaderLen]byte
	for i, e := range entries {
		planes += e.Planes
		end := framesEnd
		if i+1 < len(entries) {
			end = entries[i+1].FrameOff
		}
		err := scrubFrame(src, h, e, end, buf[:])
		if err != nil {
			rep.Damaged = append(rep.Damaged, ChunkDamage{
				Chunk: i, Offset: e.FrameOff, PlaneOff: e.PlaneOff, Planes: e.Planes, Err: err})
			continue
		}
		rep.Verified++
	}
	if rep.HeaderErr == nil && planes != h.Dims[0] {
		rep.HeaderErr = fmt.Errorf("header claims %d planes, frames cover %d: %w",
			h.Dims[0], planes, core.ErrCorrupt)
	}
}

// scrubFrame runs every check one indexed frame supports.
func scrubFrame(src io.ReaderAt, h *core.ChunkedInfo, e core.IndexEntry, end int64, buf []byte) error {
	want := min(int64(len(buf)), end-e.FrameOff)
	if want <= 0 {
		return fmt.Errorf("frame region empty: %w", core.ErrCorrupt)
	}
	if err := core.ReadFullAt(src, buf[:want], e.FrameOff); err != nil {
		return err
	}
	c, payStart, plen, err := core.ScanFrameHeader(buf[:want], h)
	if err != nil {
		return err
	}
	if c.Offset != e.PlaneOff || c.Dims[0] != e.Planes {
		return fmt.Errorf("frame covers planes %d+%d, index says %d+%d: %w",
			c.Offset, c.Dims[0], e.PlaneOff, e.Planes, core.ErrCorrupt)
	}
	if c.CodecID != e.Codec {
		return fmt.Errorf("frame codec %s disagrees with index codec %s: %w",
			core.CodecLabel(c.CodecID), core.CodecLabel(e.Codec), core.ErrCorrupt)
	}
	if e.FrameOff+int64(payStart)+int64(plen) != end {
		return fmt.Errorf("frame ends at 0x%x, next frame starts at 0x%x: %w",
			e.FrameOff+int64(payStart)+int64(plen), end, core.ErrCorrupt)
	}
	crc, err := core.CRC32At(src, e.FrameOff+int64(payStart), int64(plen))
	if err != nil {
		return err
	}
	if crc != c.Checksum {
		return fmt.Errorf("payload checksum mismatch: %w", core.ErrCorrupt)
	}
	return nil
}

// scrubSequential verifies frames by walking the chain from the header,
// for containers without a usable footer (v2/v3, or v4/v5 whose footer is
// itself damaged). A payload CRC mismatch doesn't stop the walk — the
// frame header still gives the next frame's position — but an unparseable
// frame header does: past it every offset is guesswork.
func scrubSequential(src io.ReaderAt, size int64, h *core.ChunkedInfo, headerLen int64, rep *ScrubReport) {
	off := headerLen
	nextPlane := 0
	var buf [maxFrameHeaderLen]byte
	i := 0
	for ; i < h.NumChunks; i++ {
		want := min(int64(len(buf)), size-off)
		if want <= 0 {
			break
		}
		if err := core.ReadFullAt(src, buf[:want], off); err != nil {
			rep.Damaged = append(rep.Damaged, ChunkDamage{Chunk: i, Offset: off, PlaneOff: nextPlane, Err: err})
			return
		}
		c, payStart, plen, err := core.ScanFrameHeader(buf[:want], h)
		if err == nil && c.Offset != nextPlane {
			err = fmt.Errorf("frame covers plane %d, expected %d: %w", c.Offset, nextPlane, core.ErrCorrupt)
		}
		if err == nil && off+int64(payStart)+int64(plen) > size {
			err = fmt.Errorf("frame payload runs past EOF: %w", core.ErrCorrupt)
		}
		if err != nil {
			// Structural damage: the walk cannot step past this frame.
			rep.Damaged = append(rep.Damaged, ChunkDamage{Chunk: i, Offset: off, PlaneOff: nextPlane, Err: err})
			return
		}
		crc, err := core.CRC32At(src, off+int64(payStart), int64(plen))
		if err != nil {
			rep.Damaged = append(rep.Damaged, ChunkDamage{
				Chunk: i, Offset: off, PlaneOff: c.Offset, Planes: c.Dims[0], Err: err})
		} else if crc != c.Checksum {
			rep.Damaged = append(rep.Damaged, ChunkDamage{
				Chunk: i, Offset: off, PlaneOff: c.Offset, Planes: c.Dims[0],
				Err: fmt.Errorf("payload checksum mismatch: %w", core.ErrCorrupt)})
		} else {
			rep.Verified++
		}
		off += int64(payStart) + int64(plen)
		nextPlane += c.Dims[0]
	}
	switch {
	case i < h.NumChunks:
		rep.HeaderErr = fmt.Errorf("frames end after chunk %d of %d: %w", i, h.NumChunks, core.ErrCorrupt)
	case nextPlane != h.Dims[0]:
		rep.HeaderErr = fmt.Errorf("header claims %d planes, frames cover %d: %w",
			h.Dims[0], nextPlane, core.ErrCorrupt)
	case h.Version < 4 && off != size:
		rep.HeaderErr = fmt.Errorf("%d trailing bytes after the frames: %w", size-off, core.ErrCorrupt)
	}
}
