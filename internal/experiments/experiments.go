// Package experiments is the shared harness behind cmd/benchtab and
// bench_test.go: a registry of all eight evaluated compressors, dataset
// loading with caching, and single-run measurement, mirroring the
// evaluation setup of §6.1.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fzgpu"
	"repro/internal/gpusim"
	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/szp"
	"repro/internal/szx"
	"repro/internal/zfp"
)

// Compressor is one evaluated compressor.
type Compressor struct {
	Name string
	// FixedEB reports whether the compressor honours a point-wise error
	// bound (cuZFP does not; it is fixed-rate).
	FixedEB bool
	// Compress encodes data under a value-range-relative error bound
	// (ignored by fixed-rate compressors).
	Compress func(dev *gpusim.Device, data []float32, dims []int, relEB float64) ([]byte, error)
	// Decompress decodes a blob from Compress.
	Decompress func(dev *gpusim.Device, blob []byte) ([]float32, error)
}

func coreCompressor(name string, opts core.Options) Compressor {
	return Compressor{
		Name:    name,
		FixedEB: true,
		Compress: func(dev *gpusim.Device, data []float32, dims []int, relEB float64) ([]byte, error) {
			return core.Compress(dev, data, dims, metrics.AbsEB(data, relEB), opts)
		},
		Decompress: func(dev *gpusim.Device, blob []byte) ([]float32, error) {
			out, _, err := core.Decompress(dev, blob)
			return out, err
		},
	}
}

// HiCR returns the cuSZ-Hi-CR compressor entry.
func HiCR() Compressor { return coreCompressor("cuSZ-Hi-CR", core.HiCR()) }

// HiTP returns the cuSZ-Hi-TP compressor entry.
func HiTP() Compressor { return coreCompressor("cuSZ-Hi-TP", core.HiTP()) }

// CuszL returns the cuSZ-L baseline entry.
func CuszL() Compressor { return coreCompressor("cuSZ-L", core.CuszL()) }

// CuszI returns the cuSZ-I baseline entry.
func CuszI() Compressor { return coreCompressor("cuSZ-I", core.CuszI()) }

// CuszIB returns the cuSZ-IB baseline entry.
func CuszIB() Compressor { return coreCompressor("cuSZ-IB", core.CuszIB()) }

// CuSZp2 returns the cuSZp2 baseline entry.
func CuSZp2() Compressor {
	return Compressor{
		Name:    "cuSZp2",
		FixedEB: true,
		Compress: func(dev *gpusim.Device, data []float32, dims []int, relEB float64) ([]byte, error) {
			return szp.Compress(dev, data, metrics.AbsEB(data, relEB))
		},
		Decompress: func(dev *gpusim.Device, blob []byte) ([]float32, error) {
			return szp.Decompress(dev, blob)
		},
	}
}

// FZGPU returns the FZ-GPU baseline entry.
func FZGPU() Compressor {
	return Compressor{
		Name:    "FZ-GPU",
		FixedEB: true,
		Compress: func(dev *gpusim.Device, data []float32, dims []int, relEB float64) ([]byte, error) {
			return fzgpu.Compress(dev, data, dims, metrics.AbsEB(data, relEB))
		},
		Decompress: func(dev *gpusim.Device, blob []byte) ([]float32, error) {
			return fzgpu.Decompress(dev, blob)
		},
	}
}

// CuZFP returns the cuZFP baseline entry at a fixed (possibly fractional)
// rate in bits/value.
func CuZFP(rate float64) Compressor {
	return Compressor{
		Name:    fmt.Sprintf("cuZFP(r=%g)", rate),
		FixedEB: false,
		Compress: func(dev *gpusim.Device, data []float32, dims []int, relEB float64) ([]byte, error) {
			return zfp.CompressRate(dev, data, dims, rate)
		},
		Decompress: func(dev *gpusim.Device, blob []byte) ([]float32, error) {
			out, _, err := zfp.Decompress(dev, blob)
			return out, err
		},
	}
}

// Table4Compressors returns the fixed-eb compressors of Table 4, in column
// order.
func Table4Compressors() []Compressor {
	return []Compressor{HiCR(), HiTP(), CuszL(), CuszI(), CuszIB(), CuSZp2(), FZGPU()}
}

// ---------------------------------------------------------------------------
// Dataset cache.

var (
	dsMu    sync.Mutex
	dsCache = map[string]*datagen.Field{}
)

// Dataset returns the named dataset at its small (or paper-sized, if full)
// dims, cached across calls. seed selects the realization.
func Dataset(name string, full bool, seed int64) (*datagen.Field, error) {
	key := fmt.Sprintf("%s/%v/%d", name, full, seed)
	dsMu.Lock()
	defer dsMu.Unlock()
	if f, ok := dsCache[key]; ok {
		return f, nil
	}
	dims, err := datagen.DefaultDims(name, full)
	if err != nil {
		return nil, err
	}
	f, err := datagen.Generate(name, dims, seed)
	if err != nil {
		return nil, err
	}
	dsCache[key] = f
	return f, nil
}

// ---------------------------------------------------------------------------
// Single measured run.

// RunResult is one (compressor, dataset, eb) measurement.
type RunResult struct {
	CR         float64
	BitRate    float64
	PSNR       float64
	MaxErr     float64
	CompBytes  int
	CompGiBps  float64
	DecGiBps   float64
	BoundOK    bool
	AbsErrorEB float64
}

// Run compresses and decompresses f with c at relEB, measuring ratio,
// distortion and simulated-kernel throughput.
func Run(dev *gpusim.Device, c Compressor, f *datagen.Field, relEB float64) (RunResult, error) {
	var r RunResult
	t0 := time.Now()
	blob, err := c.Compress(dev, f.Data, f.Dims, relEB)
	compSecs := time.Since(t0).Seconds()
	if err != nil {
		return r, fmt.Errorf("%s compress: %w", c.Name, err)
	}
	t1 := time.Now()
	recon, err := c.Decompress(dev, blob)
	decSecs := time.Since(t1).Seconds()
	if err != nil {
		return r, fmt.Errorf("%s decompress: %w", c.Name, err)
	}
	if len(recon) != f.Len() {
		return r, fmt.Errorf("%s: decompressed %d of %d values", c.Name, len(recon), f.Len())
	}
	d := metrics.Compare(f.Data, recon)
	absEB := metrics.AbsEB(f.Data, relEB)
	r = RunResult{
		CR:         metrics.CR(f.SizeBytes(), len(blob)),
		BitRate:    metrics.BitRate(f.Len(), len(blob)),
		PSNR:       d.PSNR,
		MaxErr:     d.MaxErr,
		CompBytes:  len(blob),
		CompGiBps:  metrics.GiBps(f.SizeBytes(), compSecs),
		DecGiBps:   metrics.GiBps(f.SizeBytes(), decSecs),
		BoundOK:    !c.FixedEB || metrics.WithinBound(f.Data, recon, absEB),
		AbsErrorEB: absEB,
	}
	if c.FixedEB && !metrics.WithinBound(f.Data, recon, absEB) {
		return r, fmt.Errorf("%s: error bound violated (max %v > %v)", c.Name, d.MaxErr, absEB)
	}
	return r, nil
}

// HiQuantCodes produces the cuSZ-Hi predictor's quantization-code stream
// for f at relEB, optionally level-order reordered — the input of Fig. 5
// and the lossless benchmarking of Fig. 6.
func HiQuantCodes(dev *gpusim.Device, f *datagen.Field, relEB float64, reorder bool) ([]uint8, error) {
	g := interp.NewGrid(f.Dims)
	cfg := interp.HiConfig()
	res, err := interp.Compress(dev, f.Data, g, cfg, metrics.AbsEB(f.Data, relEB))
	if err != nil {
		return nil, err
	}
	if !reorder {
		return res.Codes, nil
	}
	perm := quant.LevelOrderPerm(f.Dims, cfg.AnchorStride)
	out := make([]uint8, len(res.Codes))
	quant.Apply(dev, perm, res.Codes, out)
	return out, nil
}

// SZ3LikeEntry returns the CPU-style global-interpolation configuration —
// the high-ratio reference point of the paper's introduction.
func SZ3LikeEntry() Compressor { return coreCompressor("SZ3-like", core.SZ3Like()) }

// SZx returns the ultra-fast constant-block compressor archetype (cuSZx,
// §2.2 of the paper; excluded from its main tables for low ratio).
func SZx() Compressor {
	return Compressor{
		Name:    "SZx",
		FixedEB: true,
		Compress: func(dev *gpusim.Device, data []float32, dims []int, relEB float64) ([]byte, error) {
			return szx.Compress(dev, data, metrics.AbsEB(data, relEB))
		},
		Decompress: func(dev *gpusim.Device, blob []byte) ([]float32, error) {
			return szx.Decompress(dev, blob)
		},
	}
}

// ExtraCompressors returns the archetypes beyond the paper's Table 4
// columns, used by the `benchtab extras` appendix.
func ExtraCompressors() []Compressor {
	return []Compressor{SZ3LikeEntry(), SZx()}
}
