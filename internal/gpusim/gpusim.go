// Package gpusim simulates the GPU execution model that cuSZ-Hi targets.
//
// CUDA organizes work as a grid of thread blocks; each block owns a chunk of
// data (held in shared memory) and blocks execute independently. This package
// reproduces that decomposition with a fixed worker pool: a "kernel launch"
// enumerates block indices and runs the block body on the pool. Algorithms
// written against Device.Launch keep the exact parallel structure of the
// paper's kernels — per-block independence, sequential kernel phases — with
// goroutines standing in for streaming multiprocessors.
package gpusim

import (
	"runtime"
	"sync/atomic"
	"time"
)

// helperIdle is how long a pooled helper goroutine waits for the next
// kernel launch before exiting. Long enough that steady-state streaming
// reuses the same goroutines across every launch; short enough that an
// abandoned Device sheds its pool promptly (the stream goroutine-leak
// tests rely on that).
const helperIdle = 200 * time.Millisecond

// Device is a simulated accelerator with a fixed degree of parallelism.
// Kernel launches run on a persistent pool of helper goroutines (plus the
// launching goroutine itself), mirroring a GPU's resident SMs: helpers are
// spawned on demand, reused across launches, and expire after helperIdle
// without work.
type Device struct {
	workers int
	tasks   chan *launchTask
	live    atomic.Int64 // helpers currently alive
	spawned atomic.Int64 // helpers ever spawned (regression-test hook)
}

// Default is the process-wide device sized to the available CPUs.
var Default = New(0)

// New returns a Device with the given worker count; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{workers: workers, tasks: make(chan *launchTask, workers)}
}

// Workers reports the device's parallel width.
func (d *Device) Workers() int { return d.workers }

// launchTask is one kernel launch being drained by the pool: a work-
// stealing block counter plus a completion latch. Helpers that dequeue an
// already-exhausted task return immediately, so stale tasks left in the
// channel after their launch completed are harmless.
type launchTask struct {
	blocks int
	body   func(block int)
	next   atomic.Int64
	done   atomic.Int64
	fin    chan struct{}
}

// run grabs block indices until the task is exhausted. Whoever completes
// the final block closes the latch.
func (t *launchTask) run() {
	for {
		b := int(t.next.Add(1)) - 1
		if b >= t.blocks {
			return
		}
		t.body(b)
		if int(t.done.Add(1)) == t.blocks {
			close(t.fin)
		}
	}
}

// offer hands the task to up to n pooled helpers. Helpers are ensured
// FIRST: the task channel is buffered, so a successful send proves
// nothing about anyone being alive to drain it — spawning must be driven
// by the live count, up to the n this launch wants (never more than
// workers−1; the caller is the remaining worker). The sends themselves
// are non-blocking: if every helper is busy with another launch the
// caller simply runs more of the blocks itself, so Launch can never
// deadlock on pool capacity.
func (d *Device) offer(t *launchTask, n int) {
	for {
		live := d.live.Load()
		if live >= int64(n) || live >= int64(d.workers-1) {
			break
		}
		if d.live.CompareAndSwap(live, live+1) {
			d.spawned.Add(1)
			go d.helper()
		}
	}
	for i := 0; i < n; i++ {
		select {
		case d.tasks <- t:
		default:
			return // pool saturated; the caller covers the rest
		}
	}
}

// helper is one pooled worker goroutine: it drains launch tasks until it
// has been idle for helperIdle, then exits (a later launch respawns it).
func (d *Device) helper() {
	defer d.live.Add(-1)
	idle := time.NewTimer(helperIdle)
	defer idle.Stop()
	for {
		select {
		case t := <-d.tasks:
			t.run()
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(helperIdle)
		case <-idle.C:
			return
		}
	}
}

// Launch runs body(block) for every block index in [0, blocks), distributing
// blocks across the worker pool. It corresponds to a CUDA kernel launch with
// a 1-D grid and returns when all blocks have completed (implicit device
// synchronization). Concurrent launches on one Device share its helper
// pool; each launching goroutine also executes blocks itself.
func (d *Device) Launch(blocks int, body func(block int)) {
	if blocks <= 0 {
		return
	}
	nw := d.workers
	if nw > blocks {
		nw = blocks
	}
	if nw <= 1 {
		for b := 0; b < blocks; b++ {
			body(b)
		}
		return
	}
	t := &launchTask{blocks: blocks, body: body, fin: make(chan struct{})}
	d.offer(t, nw-1)
	t.run()
	<-t.fin
}

// Launch3D runs body over a 3-D grid of blocks, mirroring dim3 grids.
// bz is the slowest dimension, bx the fastest.
func (d *Device) Launch3D(bz, by, bx int, body func(z, y, x int)) {
	if bz <= 0 || by <= 0 || bx <= 0 {
		return
	}
	total := bz * by * bx
	d.Launch(total, func(b int) {
		x := b % bx
		y := (b / bx) % by
		z := b / (bx * by)
		body(z, y, x)
	})
}

// LaunchChunks splits n items into contiguous chunks of at most chunk items
// and runs body(lo, hi) per chunk in parallel. It is the 1-D "grid-stride"
// pattern used by the encoding kernels.
func (d *Device) LaunchChunks(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = (n + d.workers - 1) / d.workers
		if chunk == 0 {
			chunk = 1
		}
	}
	blocks := (n + chunk - 1) / chunk
	if d.workers <= 1 || blocks <= 1 {
		// Inline path: no adapter closure is constructed, so single-worker
		// devices (the zero-alloc warm-context configuration) launch chunked
		// kernels without touching the heap.
		for b := 0; b < blocks; b++ {
			lo := b * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
		return
	}
	d.Launch(blocks, func(b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

// LaunchBatched is LaunchChunks with lane-aligned chunk boundaries: chunk is
// rounded up to a multiple of lanes, so every span handed to body starts at
// a lanes multiple and only the global tail ends unaligned. Batched kernels
// written as "wide groups of `lanes` items + scalar tail" can therefore
// assume no wide group ever straddles a span boundary, letting the pooled-
// goroutine simulated-GPU path and the plain CPU path (workers == 1, body
// runs inline on the caller) share one kernel implementation.
func (d *Device) LaunchBatched(n, chunk, lanes int, body func(lo, hi int)) {
	if lanes > 1 {
		if chunk <= 0 {
			chunk = (n + d.workers - 1) / d.workers
		}
		chunk = (chunk + lanes - 1) / lanes * lanes
	}
	d.LaunchChunks(n, chunk, body)
}

// Reduce computes a parallel reduction of per-block partial results.
// body(block) returns a partial value; combine folds partials together.
// Partials are combined in block order, so non-commutative combines are safe.
func Reduce[T any](d *Device, blocks int, body func(block int) T, combine func(a, b T) T) T {
	var zero T
	if blocks <= 0 {
		return zero
	}
	partial := make([]T, blocks)
	d.Launch(blocks, func(b int) { partial[b] = body(b) })
	acc := partial[0]
	for _, p := range partial[1:] {
		acc = combine(acc, p)
	}
	return acc
}
