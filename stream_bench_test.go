package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// BenchmarkStreamChunked compares the one-shot (serial container) path
// with the chunked parallel path on a 256³ turbulence field. Sharding
// parallelizes the codec stages that a single-shot call runs serially
// (histogramming, Huffman tree construction, outlier serialization), so
// throughput scales with workers where the serial path plateaus.
//
//	go test -bench StreamChunked -benchtime 2x .
func BenchmarkStreamChunked(b *testing.B) {
	dims := []int{256, 256, 256}
	f, err := datagen.Generate("jhtdb", dims, 1)
	if err != nil {
		b.Fatal(err)
	}
	absEB := metrics.AbsEB(f.Data, 1e-2)
	opts := core.HiTP()

	b.Run("compress/serial", func(b *testing.B) {
		dev := gpusim.New(1)
		b.SetBytes(int64(f.SizeBytes()))
		for i := 0; i < b.N; i++ {
			if _, err := core.Compress(dev, f.Data, f.Dims, absEB, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("compress/sharded-%dw", workers), func(b *testing.B) {
			dev := gpusim.New(workers)
			b.SetBytes(int64(f.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunked(dev, f.Data, f.Dims, absEB, opts, 32); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	serialBlob, err := core.Compress(gpusim.New(0), f.Data, f.Dims, absEB, opts)
	if err != nil {
		b.Fatal(err)
	}
	chunkedBlob, err := core.CompressChunked(gpusim.New(0), f.Data, f.Dims, absEB, opts, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decompress/serial", func(b *testing.B) {
		dev := gpusim.New(1)
		b.SetBytes(int64(f.SizeBytes()))
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Decompress(dev, serialBlob); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("decompress/sharded-%dw", workers), func(b *testing.B) {
			dev := gpusim.New(workers)
			b.SetBytes(int64(f.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decompress(dev, chunkedBlob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
