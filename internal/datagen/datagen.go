// Package datagen synthesizes deterministic stand-ins for the six SDRBench
// datasets used in the cuSZ-Hi evaluation (Table 3) plus the two extra
// fields of Fig. 6 (Hurricane, SCALE).
//
// The real datasets total >13 GiB and are not available offline, so each
// generator reproduces the qualitative character that governs a dataset's
// compressibility: the power spectrum slope (smoothness), clumpiness,
// anisotropy and noise floor. Fields are produced by spectral synthesis on a
// power-of-two base grid (internal/fft), resampled to the requested dims,
// then shaped by dataset-specific transforms. Everything is seeded, so runs
// are bit-reproducible.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fft"
)

// Field is a dense scalar field with row-major data, slowest dim first.
type Field struct {
	Name string
	Dims []int // e.g. [nz, ny, nx]; x fastest
	Data []float32
}

// Len returns the number of elements.
func (f *Field) Len() int { return len(f.Data) }

// NumDims returns the dimensionality.
func (f *Field) NumDims() int { return len(f.Dims) }

// SizeBytes returns the uncompressed payload size.
func (f *Field) SizeBytes() int { return 4 * len(f.Data) }

// Spec describes a generatable dataset.
type Spec struct {
	Name      string
	Info      string
	SmallDims []int // scaled-down default used by tests/benches
	PaperDims []int // dims from Table 3 of the paper
	gen       func(dims []int, seed int64) []float32
}

var registry = map[string]*Spec{
	"cesm": {
		Name:      "cesm",
		Info:      "CESM-ATM climate 2D (multi-scale smooth + zonal structure)",
		SmallDims: []int{450, 900},
		PaperDims: []int{1800, 3600},
		gen:       genCESM,
	},
	"jhtdb": {
		Name:      "jhtdb",
		Info:      "JHTDB isotropic turbulence 3D (k^-5/3 cascade)",
		SmallDims: []int{96, 96, 96},
		PaperDims: []int{512, 512, 512},
		gen:       genJHTDB,
	},
	"miranda": {
		Name:      "miranda",
		Info:      "Miranda hydrodynamics 3D (smooth layered density)",
		SmallDims: []int{64, 96, 96},
		PaperDims: []int{256, 384, 384},
		gen:       genMiranda,
	},
	"nyx": {
		Name:      "nyx",
		Info:      "Nyx cosmology 3D (lognormal clumpy baryon density)",
		SmallDims: []int{96, 96, 96},
		PaperDims: []int{512, 512, 512},
		gen:       genNyx,
	},
	"qmcpack": {
		Name:      "qmcpack",
		Info:      "QMCPack 3D orbital slices (smooth oscillatory bumps)",
		SmallDims: []int{64, 48, 48},
		PaperDims: []int{288 * 115, 69, 69},
		gen:       genQMCPack,
	},
	"rtm": {
		Name:      "rtm",
		Info:      "RTM seismic wavefield 3D (wavefronts over quiet background)",
		SmallDims: []int{112, 112, 64},
		PaperDims: []int{449, 449, 235},
		gen:       genRTM,
	},
	"hurricane": {
		Name:      "hurricane",
		Info:      "Hurricane Isabel 3D (vortex + turbulent detail); Fig. 6 input",
		SmallDims: []int{32, 128, 128},
		PaperDims: []int{100, 500, 500},
		gen:       genHurricane,
	},
	"scale": {
		Name:      "scale",
		Info:      "SCALE-LETKF weather 3D (thin, wide, moderately smooth); Fig. 6 input",
		SmallDims: []int{24, 192, 192},
		PaperDims: []int{98, 1200, 1200},
		gen:       genSCALE,
	},
}

// Names returns the registered dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperNames returns the six datasets of Table 3, in paper order.
func PaperNames() []string {
	return []string{"cesm", "jhtdb", "miranda", "nyx", "qmcpack", "rtm"}
}

// Lookup returns the Spec for name.
func Lookup(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q (have %v)", name, Names())
	}
	return s, nil
}

// DefaultDims returns the small or paper dims for name.
func DefaultDims(name string, full bool) ([]int, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if full {
		return append([]int(nil), s.PaperDims...), nil
	}
	return append([]int(nil), s.SmallDims...), nil
}

// Generate produces the named field at the given dims (nil selects the small
// default). The same (name, dims, seed) always yields identical data.
func Generate(name string, dims []int, seed int64) (*Field, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if dims == nil {
		dims = s.SmallDims
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("datagen: invalid dim %d for %q", d, name)
		}
	}
	dims = append([]int(nil), dims...)
	return &Field{Name: name, Dims: dims, Data: s.gen(dims, seed)}, nil
}

// ---------------------------------------------------------------------------
// Spectral synthesis machinery.

// nextPow2 returns the smallest power of two >= n, clamped to maxBase.
func nextPow2(n, maxBase int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	if p > maxBase {
		p = maxBase
	}
	return p
}

// spectral3 synthesizes a zero-mean, unit-variance random field whose power
// spectrum falls off as (k+k0)^slope with a Gaussian dissipation cutoff at
// cutFrac of the Nyquist wavenumber, on a (bz,by,bx) power-of-two grid.
// The cutoff reproduces a crucial property of real simulation output: a
// resolved solver damps the smallest scales, so fields are smooth at the
// grid spacing — which is what makes the paper's datasets compress to
// ratios in the hundreds at large error bounds.
func spectral3(bz, by, bx int, slope, k0, cutFrac float64, rng *rand.Rand) []float32 {
	g, err := fft.NewGrid3(bz, by, bx)
	if err != nil {
		panic(err) // dims are produced by nextPow2; cannot happen
	}
	minDim := bz
	if by < minDim && by > 1 {
		minDim = by
	}
	if bx < minDim && bx > 1 {
		minDim = bx
	}
	kcut := cutFrac * float64(minDim) / 2
	if kcut <= 0 {
		kcut = math.Inf(1)
	}
	for z := 0; z < bz; z++ {
		kz := freqIndex(z, bz)
		for y := 0; y < by; y++ {
			ky := freqIndex(y, by)
			for x := 0; x < bx; x++ {
				kx := freqIndex(x, bx)
				k := math.Sqrt(float64(kz*kz + ky*ky + kx*kx))
				if k == 0 {
					continue // zero mean
				}
				amp := math.Pow(k+k0, slope/2) * math.Exp(-(k/kcut)*(k/kcut))
				phase := rng.Float64() * 2 * math.Pi
				re := amp * math.Cos(phase) * rng.NormFloat64()
				im := amp * math.Sin(phase) * rng.NormFloat64()
				*g.At(z, y, x) = complex(re, im)
			}
		}
	}
	if err := fft.Transform3(g, true); err != nil {
		panic(err)
	}
	out := make([]float32, len(g.Data))
	var mean, m2 float64
	for i, c := range g.Data {
		v := real(c)
		out[i] = float32(v)
		mean += v
	}
	mean /= float64(len(out))
	for _, v := range out {
		d := float64(v) - mean
		m2 += d * d
	}
	std := math.Sqrt(m2 / float64(len(out)))
	if std == 0 {
		std = 1
	}
	inv := float32(1 / std)
	fm := float32(mean)
	for i := range out {
		out[i] = (out[i] - fm) * inv
	}
	return out
}

// freqIndex maps array index i on an n-point grid to its signed frequency.
func freqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// resample3 trilinearly resamples a periodic base grid (bz,by,bx) to target
// dims (nz,ny,nx).
func resample3(base []float32, bz, by, bx, nz, ny, nx int) []float32 {
	if bz == nz && by == ny && bx == nx {
		out := make([]float32, len(base))
		copy(out, base)
		return out
	}
	out := make([]float32, nz*ny*nx)
	sz := float64(bz) / float64(nz)
	sy := float64(by) / float64(ny)
	sx := float64(bx) / float64(nx)
	idx := 0
	for z := 0; z < nz; z++ {
		fz := float64(z) * sz
		z0 := int(fz)
		tz := fz - float64(z0)
		z1 := (z0 + 1) % bz
		for y := 0; y < ny; y++ {
			fy := float64(y) * sy
			y0 := int(fy)
			ty := fy - float64(y0)
			y1 := (y0 + 1) % by
			for x := 0; x < nx; x++ {
				fx := float64(x) * sx
				x0 := int(fx)
				tx := fx - float64(x0)
				x1 := (x0 + 1) % bx
				c000 := float64(base[(z0*by+y0)*bx+x0])
				c001 := float64(base[(z0*by+y0)*bx+x1])
				c010 := float64(base[(z0*by+y1)*bx+x0])
				c011 := float64(base[(z0*by+y1)*bx+x1])
				c100 := float64(base[(z1*by+y0)*bx+x0])
				c101 := float64(base[(z1*by+y0)*bx+x1])
				c110 := float64(base[(z1*by+y1)*bx+x0])
				c111 := float64(base[(z1*by+y1)*bx+x1])
				c00 := c000 + (c001-c000)*tx
				c01 := c010 + (c011-c010)*tx
				c10 := c100 + (c101-c100)*tx
				c11 := c110 + (c111-c110)*tx
				c0 := c00 + (c01-c00)*ty
				c1 := c10 + (c11-c10)*ty
				out[idx] = float32(c0 + (c1-c0)*tz)
				idx++
			}
		}
	}
	return out
}

// maxBaseDim caps the spectral base grid so full-size paper dims stay
// affordable in memory; the base field is trilinearly stretched beyond it.
const maxBaseDim = 256

// spectralField produces a normalized random field at arbitrary dims by
// synthesizing on a power-of-two base grid and resampling.
func spectralField(dims []int, slope, k0, cutFrac float64, seed int64) []float32 {
	nz, ny, nx := dims3(dims)
	bz := nextPow2(nz, maxBaseDim)
	by := nextPow2(ny, maxBaseDim)
	bx := nextPow2(nx, maxBaseDim)
	rng := rand.New(rand.NewSource(seed))
	base := spectral3(bz, by, bx, slope, k0, cutFrac, rng)
	return resample3(base, bz, by, bx, nz, ny, nx)
}

// dims3 normalizes 1-, 2- or 3-D dims to (nz, ny, nx).
func dims3(dims []int) (nz, ny, nx int) {
	switch len(dims) {
	case 1:
		return 1, 1, dims[0]
	case 2:
		return 1, dims[0], dims[1]
	case 3:
		return dims[0], dims[1], dims[2]
	default:
		// Collapse leading dims (e.g. QMCPack 4-D) into z.
		nz = 1
		for _, d := range dims[:len(dims)-2] {
			nz *= d
		}
		return nz, dims[len(dims)-2], dims[len(dims)-1]
	}
}

// hashNoise returns a deterministic pseudo-random value in [-1,1) from a
// coordinate, independent of grid resolution (splitmix64 finalizer).
func hashNoise(seed int64, i int) float32 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float32(int64(x>>11))/float32(1<<52) - 1
}

// ---------------------------------------------------------------------------
// Dataset-specific generators.

func genCESM(dims []int, seed int64) []float32 {
	_, ny, nx := dims3(dims)
	f := spectralField(dims, -3.0, 1.5, 0.45, seed^0xCE51)
	idx := 0
	for y := 0; y < ny; y++ {
		lat := (float64(y)/float64(ny) - 0.5) * math.Pi
		zonal := float32(2.2 * math.Cos(lat))
		for x := 0; x < nx; x++ {
			lon := float64(x) / float64(nx) * 2 * math.Pi
			wave := float32(0.4 * math.Sin(3*lon) * math.Cos(2*lat))
			f[idx] = f[idx] + zonal + wave + 0.012*hashNoise(seed, idx)
			idx++
		}
	}
	return f
}

func genJHTDB(dims []int, seed int64) []float32 {
	// Energy spectrum E(k) ~ k^-5/3 implies 3-D power ~ k^-11/3.
	f := spectralField(dims, -11.0/3, 1.0, 0.18, seed^0x7D8)
	for i := range f {
		f[i] += 0.002 * hashNoise(seed, i)
	}
	return f
}

func genMiranda(dims []int, seed int64) []float32 {
	nz, ny, nx := dims3(dims)
	base := spectralField(dims, -5.0, 2.0, 0.15, seed^0x318A)
	out := make([]float32, len(base))
	idx := 0
	for z := 0; z < nz; z++ {
		zf := float64(z) / float64(max(nz-1, 1))
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				// Two fluid layers with a perturbed interface; density-like.
				interface1 := 0.45 + 0.06*float64(base[idx])
				layer := math.Tanh((zf - interface1) * 14)
				out[idx] = float32(2.0+0.9*layer) + 0.12*base[idx]
				idx++
			}
		}
	}
	return out
}

func genNyx(dims []int, seed int64) []float32 {
	base := spectralField(dims, -4.0, 1.2, 0.35, seed^0x9B1)
	out := make([]float32, len(base))
	for i, v := range base {
		// Lognormal density contrast: highly clumpy, heavy positive tail.
		out[i] = float32(math.Exp(1.6 * float64(v)))
	}
	return out
}

func genQMCPack(dims []int, seed int64) []float32 {
	nz, ny, nx := dims3(dims)
	rng := rand.New(rand.NewSource(seed ^ 0x0C4))
	type orb struct {
		cy, cx, w, kx, ky, amp float64
	}
	orbs := make([]orb, 24)
	for i := range orbs {
		orbs[i] = orb{
			cy:  rng.Float64(),
			cx:  rng.Float64(),
			w:   0.05 + 0.12*rng.Float64(),
			kx:  (rng.Float64() - 0.5) * 14,
			ky:  (rng.Float64() - 0.5) * 14,
			amp: 0.3 + rng.Float64(),
		}
	}
	out := make([]float32, nz*ny*nx)
	idx := 0
	for z := 0; z < nz; z++ {
		// Each z-slice is an orbital-like pattern whose phase drifts slowly,
		// mimicking the stacked-orbital layout of the real 4-D file.
		drift := 2 * math.Pi * float64(z) / float64(max(nz, 1))
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(ny)
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(nx)
				var v float64
				for _, o := range orbs {
					dy := fy - o.cy
					dx := fx - o.cx
					r2 := dx*dx + dy*dy
					if r2 > 9*o.w*o.w {
						continue
					}
					env := math.Exp(-r2 / (2 * o.w * o.w))
					v += o.amp * env * math.Cos(o.kx*dx+o.ky*dy+drift)
				}
				out[idx] = float32(v)
				idx++
			}
		}
	}
	return out
}

func genRTM(dims []int, seed int64) []float32 {
	nz, ny, nx := dims3(dims)
	rng := rand.New(rand.NewSource(seed ^ 0x27A))
	type src struct {
		cz, cy, cx, r0, k, amp float64
	}
	srcs := make([]src, 5)
	for i := range srcs {
		srcs[i] = src{
			cz:  rng.Float64(),
			cy:  rng.Float64(),
			cx:  rng.Float64(),
			r0:  0.15 + 0.3*rng.Float64(),
			k:   18 + 14*rng.Float64(),
			amp: 0.5 + rng.Float64(),
		}
	}
	out := make([]float32, nz*ny*nx)
	idx := 0
	for z := 0; z < nz; z++ {
		fz := float64(z) / float64(max(nz, 1))
		// Weak layered background (reflectors).
		bg := 0.02 * math.Sin(18*fz)
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(ny)
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(nx)
				v := bg
				for _, s := range srcs {
					dz := fz - s.cz
					dy := fy - s.cy
					dx := fx - s.cx
					r := math.Sqrt(dz*dz + dy*dy + dx*dx)
					d := r - s.r0
					if d*d > 0.04 {
						continue
					}
					// A band-limited expanding wavefront shell.
					v += s.amp * math.Sin(s.k*r) * math.Exp(-d*d/0.005)
				}
				out[idx] = float32(v)
				idx++
			}
		}
	}
	return out
}

func genHurricane(dims []int, seed int64) []float32 {
	nz, ny, nx := dims3(dims)
	f := spectralField(dims, -3.0, 1.0, 0.35, seed^0x44C)
	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			fy := float64(y)/float64(ny) - 0.52
			for x := 0; x < nx; x++ {
				fx := float64(x)/float64(nx) - 0.48
				r := math.Sqrt(fx*fx + fy*fy)
				// Vortex: azimuthal wind speed peaking at the eyewall.
				eye := 3.2 * r / (0.02 + 12*r*r)
				f[idx] = 0.7*f[idx] + float32(eye) + 0.006*hashNoise(seed, idx)
				idx++
			}
		}
	}
	return f
}

func genSCALE(dims []int, seed int64) []float32 {
	f := spectralField(dims, -3.2, 1.0, 0.40, seed^0x5CA1)
	for i := range f {
		f[i] += 0.008 * hashNoise(seed, i)
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
