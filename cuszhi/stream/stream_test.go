package stream

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/cuszhi"
	"repro/internal/metrics"
)

func genField(t testing.TB, name string, dims []int) ([]float32, []int) {
	t.Helper()
	data, gotDims, err := cuszhi.GenerateDataset(name, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	return data, gotDims
}

func TestWriterReaderRoundTrip(t *testing.T) {
	dims := []int{24, 20, 20}
	data, _ := genField(t, "miranda", dims)
	absEB := cuszhi.AbsEB(data, 1e-3)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, absEB,
		WithMode(cuszhi.ModeTP), WithChunkPlanes(7), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	// Feed as bytes through io.Copy with an awkward chunk size to exercise
	// partial-value buffering.
	raw := valueBytes(data)
	if _, err := io.CopyBuffer(w, bytes.NewReader(raw), make([]byte, 1013)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Dims(); len(got) != 3 || got[0] != 24 || got[1] != 20 || got[2] != 20 {
		t.Fatalf("dims = %v", got)
	}
	if r.EB() != absEB {
		t.Fatalf("eb = %v, want %v", r.EB(), absEB)
	}
	recon, err := r.ReadAllValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(data) {
		t.Fatalf("len = %d, want %d", len(recon), len(data))
	}
	if !metrics.WithinBound(data, recon, absEB) {
		t.Fatal("streamed reconstruction out of bound")
	}
	// One more value than the field holds must be rejected.
	if _, err := io.ReadFull(r, make([]byte, 1)); err != io.EOF {
		t.Fatalf("read past end: %v", err)
	}
}

func TestWriterWriteValues(t *testing.T) {
	dims := []int{10, 8, 8}
	data, _ := genField(t, "nyx", dims)
	absEB := cuszhi.AbsEB(data, 1e-2)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, absEB, WithMode(cuszhi.ModeCR), WithChunkPlanes(4))
	if err != nil {
		t.Fatal(err)
	}
	// Two uneven slices spanning a shard boundary.
	if err := w.WriteValues(data[:333]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data[333:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recon, gotDims, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gotDims[0] != 10 || !metrics.WithinBound(data, recon, absEB) {
		t.Fatalf("dims %v / bound check failed", gotDims)
	}
}

func TestWriterErrors(t *testing.T) {
	dims := []int{4, 4, 4}
	// Auto mode needs the index footer for its per-chunk codec IDs.
	if _, err := NewWriter(io.Discard, dims, 0.1, WithAutoMode(), WithIndex(false)); err == nil {
		t.Fatal("ModeAuto without the index footer accepted")
	}
	if _, err := NewWriter(io.Discard, dims, -1); err == nil {
		t.Fatal("negative eb accepted")
	}
	if _, err := NewWriter(io.Discard, []int{}, 0.1); err == nil {
		t.Fatal("empty dims accepted")
	}

	// Too few values.
	w, err := NewWriter(io.Discard, dims, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(make([]float32, 17)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short field closed without error")
	}

	// Too many values: the error must be sticky through Close, so a
	// caller that only checks Close (gzip.Writer style) still sees it.
	w, err = NewWriter(io.Discard, dims, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(make([]float32, 65)); err == nil {
		t.Fatal("overlong field accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the overlong-field error")
	}

	// Trailing partial value.
	w, err = NewWriter(io.Discard, dims, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 4*64-1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("partial trailing value closed without error")
	}
}

// TestWriteAccountingOverfeedPartialPath locks Write's consumed-byte
// accounting on the path where a buffered partial value completes and is
// then rejected (overfeed): the completing bytes must be reported
// unconsumed, so the total consumed across calls never exceeds the field
// size plus a pending partial (regression: the old code reported the
// rejected value's bytes as consumed and left them queued for replay).
func TestWriteAccountingOverfeedPartialPath(t *testing.T) {
	dims := []int{4, 4, 4} // 64 values = 256 bytes
	w, err := NewWriter(io.Discard, dims, 0.1, WithMode(cuszhi.ModeTP))
	if err != nil {
		t.Fatal(err)
	}
	raw := valueBytes(make([]float32, 66))
	// The whole field plus 2 bytes of a 65th value: all consumed (the
	// stray bytes wait in the partial buffer).
	n1, err := w.Write(raw[:258])
	if err != nil || n1 != 258 {
		t.Fatalf("Write #1 = (%d, %v), want (258, nil)", n1, err)
	}
	// Completing the 65th value overfeeds the declared dims. The value is
	// rejected, so none of these bytes may count as consumed.
	n2, err := w.Write(raw[258:262])
	if err == nil {
		t.Fatal("overfeed through the partial path accepted")
	}
	if n2 != 0 {
		t.Fatalf("Write #2 reported %d bytes consumed for a rejected value", n2)
	}
	if total := n1 + n2; total > 4*64+3 {
		t.Fatalf("consumed %d bytes of a %d-byte field (+3 partial max)", total, 4*64)
	}
	// The error stays sticky through further writes and Close.
	if n, err := w.Write(raw[262:]); err == nil || n != 0 {
		t.Fatalf("Write after overfeed = (%d, %v)", n, err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the overfeed error")
	}
}

// TestWriteAccountingBatchOverfeed: when one big Write overfeeds mid-batch,
// the count must cover exactly the prefix that was absorbed — not zero.
func TestWriteAccountingBatchOverfeed(t *testing.T) {
	dims := []int{4, 4, 4}
	w, err := NewWriter(io.Discard, dims, 0.1, WithMode(cuszhi.ModeTP))
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Write(valueBytes(make([]float32, 100))) // 64 fit, 36 overflow
	if err == nil {
		t.Fatal("overfeed accepted")
	}
	if n != 4*64 {
		t.Fatalf("Write = %d bytes consumed, want %d (the absorbed prefix)", n, 4*64)
	}
	w.Close()
}

func TestWriterCloseErrorIsSticky(t *testing.T) {
	w, err := NewWriter(io.Discard, []int{4, 4, 4}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(make([]float32, 17)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short field closed without error")
	}
	// A deferred/retried Close must keep reporting the failure.
	if err := w.Close(); err == nil {
		t.Fatal("second Close swallowed the error")
	}
}

func TestReaderCloseAbandonsEarly(t *testing.T) {
	dims := []int{30, 10, 10}
	data, _ := genField(t, "nyx", dims)
	blob, err := CompressAbs(data, dims, 0.1, WithChunkPlanes(2)) // 15 chunks
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		r, err := NewReader(bytes.NewReader(blob), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		// Read a prefix only, then abandon.
		if _, err := io.ReadFull(r, make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(make([]byte, 8)); err == nil || err == io.EOF {
			t.Fatalf("Read after Close: err = %v, want a non-EOF error", err)
		}
	}
	// Feeders, workers and drainers must all wind down rather than leak.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after abandoning 20 readers", before, runtime.NumGoroutine())
}

// TestReaderCloseWithoutRead abandons readers before a single Read, while
// the feeder may still be blocked submitting into a full backlog — the
// harshest mid-stream abandonment. Feeders, workers and drainers must all
// wind down rather than leak.
func TestReaderCloseWithoutRead(t *testing.T) {
	dims := []int{40, 8, 8}
	data, _ := genField(t, "miranda", dims)
	blob, err := CompressAbs(data, dims, 0.1, WithChunkPlanes(1)) // 40 chunks
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for trial := 0; trial < 25; trial++ {
		r, err := NewReader(bytes.NewReader(blob), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// Close is idempotent and Read stays dead.
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(make([]byte, 4)); err == nil || err == io.EOF {
			t.Fatalf("Read after immediate Close: err = %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after abandoning 25 unread readers", before, runtime.NumGoroutine())
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after--
	return len(p), nil
}

func TestWriterPropagatesSinkError(t *testing.T) {
	dims := []int{16, 8, 8}
	data, _ := genField(t, "nyx", dims)
	w, err := NewWriter(&failingWriter{after: 1}, dims, 0.5,
		WithMode(cuszhi.ModeTP), WithChunkPlanes(2))
	if err != nil {
		t.Fatal(err)
	}
	werr := w.WriteValues(data)
	if cerr := w.Close(); werr == nil && cerr == nil {
		t.Fatal("sink failure never surfaced")
	}
}

func TestReaderReadsV1Blob(t *testing.T) {
	dims := []int{10, 10, 10}
	data, _ := genField(t, "jhtdb", dims)
	blob, err := cuszhi.Compress(data, dims, 1e-3) // one-shot v1
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	recon, err := r.ReadAllValues()
	if err != nil {
		t.Fatal(err)
	}
	absEB := cuszhi.AbsEB(data, 1e-3)
	if len(recon) != 1000 || !metrics.WithinBound(data, recon, absEB) {
		t.Fatal("v1 blob via stream.Reader failed bound check")
	}
	if d := r.Dims(); d[0] != 10 {
		t.Fatalf("dims = %v", d)
	}
}

func TestOneShotDecompressReadsStreamOutput(t *testing.T) {
	dims := []int{12, 10, 10}
	data, _ := genField(t, "hurricane", dims)
	absEB := cuszhi.AbsEB(data, 1e-3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, absEB, WithChunkPlanes(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The public one-shot decoder must read the streamed container.
	recon, gotDims, err := cuszhi.Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gotDims[0] != 12 || !metrics.WithinBound(data, recon, absEB) {
		t.Fatal("one-shot decode of streamed container failed")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		[]byte("abc"),
		[]byte("not a container at all"),
		append([]byte("cSZh\x02\x00"), 0xff, 0xff, 0xff, 0xff),
		// Wrong magic but 5th byte 0x01: must be refused at header time,
		// not slurped whole as a "v1 blob".
		append([]byte("XXXX\x01"), make([]byte, 4096)...),
	} {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			continue
		}
		if _, err := io.ReadAll(r); err == nil {
			t.Fatalf("garbage %q read without error", raw)
		}
	}
}

// blockingReader yields its data then blocks (like an idle socket) instead
// of returning EOF; Read must still complete once the container is done.
type blockingReader struct {
	data  []byte
	block chan struct{}
}

func (b *blockingReader) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		<-b.block // held open by the "producer"
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func TestReaderTrailingByteContract(t *testing.T) {
	dims := []int{8, 6, 6}
	data, _ := genField(t, "nyx", dims)
	blob, err := CompressAbs(data, dims, 0.1, WithChunkPlanes(3))
	if err != nil {
		t.Fatal(err)
	}
	// The one-shot decoder rejects trailing bytes: a blob is exactly one
	// container.
	dirty := append(append([]byte(nil), blob...), 0xde, 0xad)
	if _, _, err := Decompress(dirty); err == nil {
		t.Fatal("one-shot accepted trailing garbage")
	}
	// The streaming reader consumes exactly one container and reports EOF
	// without probing past it — so it must finish even when the source
	// never returns EOF (socket held open by the producer).
	src := &blockingReader{data: blob, block: make(chan struct{})}
	defer close(src.block)
	r, err := NewReader(src, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		recon, err := r.ReadAllValues()
		if err == nil && len(recon) != 8*6*6 {
			err = io.ErrShortBuffer
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Reader hung waiting for EOF on an open stream")
	}
}

func TestReaderRejectsTruncatedStream(t *testing.T) {
	dims := []int{12, 8, 8}
	data, _ := genField(t, "nyx", dims)
	blob, err := CompressAbs(data, dims, 0.1, WithChunkPlanes(3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(blob[:len(blob)-7]))
	if err != nil {
		return // refusing at header time is fine too
	}
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("truncated stream read without error")
	}
}
