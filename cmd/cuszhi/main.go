// Command cuszhi is the command-line front end of the cuSZ-Hi
// reproduction: it compresses and decompresses raw little-endian float32
// files, and can synthesize the benchmark datasets.
//
//	cuszhi compress   -i data.f32 -o data.cszh -dims 256x384x384 -eb 1e-3 [-mode hi-cr] [-abs]
//	cuszhi decompress -i data.cszh -o recon.f32
//	cuszhi gen        -dataset miranda -o data.f32 [-dims 64x96x96] [-seed 1]
//	cuszhi info       -i data.cszh
//
// Modes: hi-cr (default), hi-tp, cusz-i, cusz-ib, cusz-l.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/cuszhi"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuszhi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cuszhi compress   -i data.f32 -o data.cszh -dims ZxYxX -eb 1e-3 [-mode hi-cr] [-abs]
  cuszhi decompress -i data.cszh -o recon.f32
  cuszhi gen        -dataset NAME -o data.f32 [-dims ZxYxX] [-seed N] [-full]
  cuszhi info       -i data.cszh`)
	os.Exit(2)
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -dims")
	}
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == 'x' || r == 'X' || r == ',' })
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dims %q", s)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("bad dims %q", s)
	}
	return dims, nil
}

func readF32(path string) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 4", path, len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

func writeF32(path string, data []float32) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("i", "", "input raw float32 file")
	out := fs.String("o", "", "output compressed file")
	dimsStr := fs.String("dims", "", "dims, slowest first, e.g. 256x384x384")
	eb := fs.Float64("eb", 1e-3, "error bound")
	abs := fs.Bool("abs", false, "treat -eb as absolute instead of value-range-relative")
	mode := fs.String("mode", string(cuszhi.ModeCR), "compressor mode")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("compress: -i and -o are required")
	}
	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	data, err := readF32(*in)
	if err != nil {
		return err
	}
	c, err := cuszhi.New(cuszhi.Mode(*mode))
	if err != nil {
		return err
	}
	var blob []byte
	if *abs {
		blob, err = c.CompressAbs(data, dims, *eb)
	} else {
		blob, err = c.Compress(data, dims, *eb)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (CR %.2f, %.3f bits/val, mode %s)\n",
		*in, 4*len(data), len(blob), metrics.CR(4*len(data), len(blob)),
		metrics.BitRate(len(data), len(blob)), *mode)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("i", "", "input compressed file")
	out := fs.String("o", "", "output raw float32 file")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress: -i and -o are required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	data, dims, err := cuszhi.Decompress(blob)
	if err != nil {
		return err
	}
	if err := writeF32(*out, data); err != nil {
		return err
	}
	fmt.Printf("%s: %d values, dims %v\n", *out, len(data), dims)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("dataset", "", "dataset name: "+strings.Join(datagen.Names(), ", "))
	out := fs.String("o", "", "output raw float32 file")
	dimsStr := fs.String("dims", "", "override dims (optional)")
	seed := fs.Int64("seed", 1, "realization seed")
	full := fs.Bool("full", false, "paper-sized dims")
	fs.Parse(args)
	if *name == "" || *out == "" {
		return fmt.Errorf("gen: -dataset and -o are required")
	}
	var dims []int
	var err error
	if *dimsStr != "" {
		dims, err = parseDims(*dimsStr)
		if err != nil {
			return err
		}
	} else {
		dims, err = datagen.DefaultDims(*name, *full)
		if err != nil {
			return err
		}
	}
	f, err := datagen.Generate(*name, dims, *seed)
	if err != nil {
		return err
	}
	if err := writeF32(*out, f.Data); err != nil {
		return err
	}
	fmt.Printf("%s: %s %v (%d values, %.1f MiB)\n", *out, *name, f.Dims, f.Len(), float64(f.SizeBytes())/(1<<20))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "compressed file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info: -i is required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	data, dims, err := cuszhi.Decompress(blob)
	if err != nil {
		return err
	}
	lo, hi, rng := metrics.Range(data)
	fmt.Printf("file:   %s (%d bytes)\n", *in, len(blob))
	fmt.Printf("dims:   %v (%d values)\n", dims, len(data))
	fmt.Printf("ratio:  %.2f (%.3f bits/val)\n", metrics.CR(4*len(data), len(blob)), metrics.BitRate(len(data), len(blob)))
	fmt.Printf("range:  [%g, %g] (span %g)\n", lo, hi, rng)
	return nil
}
