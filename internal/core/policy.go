package core

// Selection policies for auto mode. The estimator cascade (estimate.go)
// prices every candidate; a SelectionPolicy decides which price wins.
// Best-ratio reproduces the classic selector. The throughput and
// ratio-floor policies exist for the serving direction on the ROADMAP: a
// daemon under load prefers a cheap backend when it costs little ratio,
// and an archival writer wants the cheapest codec that still meets a
// storage budget.

import (
	"fmt"
	"strconv"
	"strings"
)

// SelectionPolicy ranks the auto-select candidates from their size
// estimates. Pick returns the index of the winner in cands (which is
// never empty and always in the fixed candidate order).
type SelectionPolicy interface {
	// Name is the policy's stable spelling, accepted by PolicyByName and
	// the CLI -auto-policy flag.
	Name() string
	Pick(cands []CandidateEstimate) int
}

// codecSpeed is the static relative compress throughput of each candidate
// (MB/s class on the reference benchmark box, BENCH_core.json): it orders
// candidates for the throughput-aware policies, where only the ranking
// matters, not the absolute numbers.
var codecSpeed = map[string]float64{
	"szp":    280,
	"szx":    190,
	"fzgpu":  170,
	"cusz-l": 160,
	"hi-tp":  120,
	"hi-cr":  90,
}

func speedOf(c Codec) float64 {
	if s, ok := codecSpeed[c.Name()]; ok {
		return s
	}
	return 100 // unranked codecs sit mid-field
}

// bestIdx returns the index of the smallest estimate.
func bestIdx(cands []CandidateEstimate) int {
	best := 0
	for i, c := range cands {
		if c.Bytes < cands[best].Bytes {
			best = i
		}
	}
	return best
}

// bestRatioPolicy picks the smallest estimated size — the classic
// selector's behavior, now at estimator cost.
type bestRatioPolicy struct{}

func (bestRatioPolicy) Name() string                       { return "best-ratio" }
func (bestRatioPolicy) Pick(cands []CandidateEstimate) int { return bestIdx(cands) }

// throughputPolicy prefers fast codecs under load: among candidates whose
// estimated size is within slack of the best, the fastest wins. With the
// default slack a backend takes the shard only when it nearly matches the
// assemblies' ratio — cheap insurance for a saturated writer.
type throughputPolicy struct{ slack float64 }

func (throughputPolicy) Name() string { return "throughput" }

func (p throughputPolicy) Pick(cands []CandidateEstimate) int {
	limit := float64(cands[bestIdx(cands)].Bytes) * p.slack
	pick, pickSpeed := -1, 0.0
	for i, c := range cands {
		if float64(c.Bytes) <= limit {
			if s := speedOf(c.Codec); pick < 0 || s > pickSpeed {
				pick, pickSpeed = i, s
			}
		}
	}
	return pick
}

// ratioFloorPolicy is the rate-distortion policy: the fastest codec whose
// estimated ratio meets the floor wins; when none does, the best ratio is
// the least-bad answer.
type ratioFloorPolicy struct{ floor float64 }

func (p ratioFloorPolicy) Name() string { return fmt.Sprintf("ratio-floor:%g", p.floor) }

func (p ratioFloorPolicy) Pick(cands []CandidateEstimate) int {
	pick, pickSpeed := -1, 0.0
	for i, c := range cands {
		if c.Ratio >= p.floor {
			if s := speedOf(c.Codec); pick < 0 || s > pickSpeed {
				pick, pickSpeed = i, s
			}
		}
	}
	if pick < 0 {
		return bestIdx(cands)
	}
	return pick
}

// throughputSlack is how much estimated size the throughput policy trades
// for speed: a faster codec wins when it stays within 15% of the best
// candidate's estimate.
const throughputSlack = 1.15

// BestRatioPolicy returns the default policy: smallest estimated size.
func BestRatioPolicy() SelectionPolicy { return bestRatioPolicy{} }

// ThroughputPolicy returns the load-shedding policy: the fastest candidate
// within 15% of the best estimated size.
func ThroughputPolicy() SelectionPolicy { return throughputPolicy{slack: throughputSlack} }

// RatioFloorPolicy returns the rate-distortion policy: the fastest
// candidate whose estimated compression ratio is at least floor, falling
// back to best-ratio when none qualifies.
func RatioFloorPolicy(floor float64) SelectionPolicy { return ratioFloorPolicy{floor: floor} }

// DefaultSelectionPolicy is what auto mode uses when no policy is chosen.
var DefaultSelectionPolicy SelectionPolicy = bestRatioPolicy{}

// PolicyByName resolves a policy spelling: "best-ratio", "throughput", or
// "ratio-floor:F" with F the minimum acceptable compression ratio. It is
// the single parser behind stream.WithAutoPolicy, cuszhi.WithAutoPolicy
// and the CLI -auto-policy flag. An empty name resolves to the default.
func PolicyByName(name string) (SelectionPolicy, error) {
	switch {
	case name == "" || name == "best-ratio":
		return BestRatioPolicy(), nil
	case name == "throughput":
		return ThroughputPolicy(), nil
	case strings.HasPrefix(name, "ratio-floor:"):
		f, err := strconv.ParseFloat(strings.TrimPrefix(name, "ratio-floor:"), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("core: bad ratio floor in policy %q (want ratio-floor:F with F > 0)", name)
		}
		return RatioFloorPolicy(f), nil
	}
	return nil, fmt.Errorf("core: unknown selection policy %q (want best-ratio, throughput, or ratio-floor:F)", name)
}
