package core

// This file implements the paper's future-work item 3 (§7): an
// auto-selection mechanism that picks a compressor archetype and lossless
// pipeline to fit the data characteristics. A representative sample slab
// is compressed with each candidate assembly and the best ratio wins —
// the same sampling philosophy as the predictor auto-tuner (§5.1.3),
// lifted to whole-assembly granularity.

import (
	"fmt"

	"repro/internal/gpusim"
)

// Selection is the outcome of AutoSelect.
type Selection struct {
	Options Options
	// SampleCR is each candidate's compression ratio on the sample slab,
	// keyed by Options.Name, for reporting.
	SampleCR map[string]float64
}

// autoSelectCandidates returns the assemblies AutoSelect evaluates.
func autoSelectCandidates() []Options {
	return []Options{HiCR(), HiTP(), CuszL()}
}

// sampleSlab extracts a contiguous central slab of roughly frac of the
// data (at least one full block row of the Hi predictor) along the slowest
// dimension, returning the slab and its dims. The slab keeps the field's
// original rank — collapsing a rank-4 field to 3-D slab dims would score
// the candidates on a different-shaped field than they will compress.
func sampleSlab(data []float32, dims []int, frac float64) ([]float32, []int) {
	ps := planeSize(dims)
	planes := int(frac * float64(dims[0]))
	minPlanes := 17 // one Hi block extent
	if planes < minPlanes {
		planes = minPlanes
	}
	if planes >= dims[0] {
		return data, dims
	}
	z0 := (dims[0] - planes) / 2
	slab := data[z0*ps : (z0+planes)*ps]
	slabDims := append([]int{planes}, dims[1:]...)
	return slab, slabDims
}

// AutoSelect compresses a sample of data with every candidate assembly
// under the absolute bound eb and returns the winner.
func AutoSelect(dev *gpusim.Device, data []float32, dims []int, eb float64) (*Selection, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: cannot auto-select on empty data")
	}
	slab, slabDims := sampleSlab(data, dims, 0.1)
	sel := &Selection{SampleCR: map[string]float64{}}
	bestSize := -1
	for _, cand := range autoSelectCandidates() {
		blob, err := Compress(dev, slab, slabDims, eb, cand)
		if err != nil {
			return nil, fmt.Errorf("core: auto-select candidate %s: %w", cand.Name, err)
		}
		sel.SampleCR[cand.Name] = float64(4*len(slab)) / float64(len(blob))
		if bestSize < 0 || len(blob) < bestSize {
			bestSize = len(blob)
			sel.Options = cand
		}
	}
	return sel, nil
}
