// Package lorenzo implements the dual-quantization Lorenzo predictor used
// by the cuSZ-L baseline (Tian et al., PACT'20) and, as its prequantization
// stage, by the FZ-GPU baseline.
//
// Dual quantization first rounds every value to an integer lattice
// qv = round(v / 2ε), then takes the exact integer first-order Lorenzo
// difference of the lattice. Because the difference is computed on already
// quantized integers there is no feedback loop: compression is one parallel
// pass and decompression is a 3-D inclusive prefix sum (one scan per
// dimension), exactly the structure the GPU kernels exploit.
//
// The compression kernel histograms the quantization codes in the same
// sweep that produces them (Result.Freq), so the downstream Huffman encoder
// never re-scans the symbol stream. The *Ctx entry points draw all working
// buffers — and the kernel closures themselves — from a reusable arena.Ctx,
// so steady-state compress/decompress performs near-zero heap allocations.
package lorenzo

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/arena"
	"repro/internal/gpusim"
	"repro/internal/quant"
)

// Radius is the symmetric code radius; deltas within it map to codes
// 1..2*Radius, code 0 escapes to the side channel.
const Radius = 512

// Alphabet is the Huffman alphabet size for Lorenzo codes.
const Alphabet = 2*Radius + 2

// latticeCap bounds |qv| so that integer arithmetic cannot overflow during
// the prefix-sum reconstruction; values needing a larger lattice coordinate
// are preserved via the value-outlier list.
const latticeCap = int64(1) << 50

// chunkShift is the log2 of the compression kernel's chunk size.
const chunkShift = 16

// auxKey is this package's scratch slot in an arena.Ctx.
var auxKey = arena.NewAuxKey()

// escChunk collects one chunk's escapes and value outliers; the backing
// arrays persist in the scratch so steady-state appends never grow.
type escChunk struct {
	deltas  []int64
	valPos  []int
	valVals []float32
}

// lscratch holds cross-op scratch: the fused histogram, per-chunk escape
// collectors, and the kernel closures with their parameter block. Kernels
// read their inputs from k, so one closure allocation (per context
// lifetime) serves every subsequent launch.
type lscratch struct {
	freq   []int64
	chunks []escChunk

	k struct {
		data  []float32
		qv    []int64
		codes []uint16
		out   []float32
		g     Grid
		eb    float64
		twoEB float64
		freq  []int64
		nData int
		mu    sync.Mutex
	}
	prequantJob func(int)
	deltaJob    func(int)
	xScanJob    func(int)
	yScanJob    func(int)
	zScanJob    func(int)
}

func scratchFor(ctx *arena.Ctx) *lscratch {
	if s, ok := ctx.Aux(auxKey).(*lscratch); ok {
		return s
	}
	s := &lscratch{}
	ctx.SetAux(auxKey, s)
	return s
}

// Grid mirrors interp.Grid for package independence.
type Grid struct {
	Nz, Ny, Nx int
}

// NewGrid normalizes dims (slowest first) to three dimensions.
func NewGrid(dims []int) Grid {
	switch len(dims) {
	case 0:
		return Grid{1, 1, 0}
	case 1:
		return Grid{1, 1, dims[0]}
	case 2:
		return Grid{1, dims[0], dims[1]}
	case 3:
		return Grid{dims[0], dims[1], dims[2]}
	default:
		nz := 1
		for _, d := range dims[:len(dims)-2] {
			nz *= d
		}
		return Grid{nz, dims[len(dims)-2], dims[len(dims)-1]}
	}
}

// Len returns the number of points.
func (g Grid) Len() int { return g.Nz * g.Ny * g.Nx }

// Result is the Lorenzo decomposition output.
type Result struct {
	// Codes holds delta+Radius+1 for in-range deltas, 0 for escapes.
	Codes []uint16
	// Escapes holds the exact deltas of code-0 points, in flat order.
	Escapes []int64
	// ValOutliers holds points whose lattice reconstruction cannot meet the
	// bound (extreme magnitudes); their original values win at decompression.
	ValOutliers quant.Outliers
	// Freq is the histogram of Codes over [0, Alphabet), accumulated during
	// the quantization sweep (context scratch when a Ctx was supplied).
	Freq []int64
}

// Prequantize converts data to its integer lattice (round(v/2ε), clamped).
func Prequantize(dev *gpusim.Device, data []float32, twoEB float64) []int64 {
	return PrequantizeCtx(nil, dev, data, twoEB)
}

// PrequantizeCtx is Prequantize drawing the lattice buffer from ctx (the
// result is context scratch when ctx is non-nil).
//
//cuszhi:hotpath
func PrequantizeCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, twoEB float64) []int64 {
	s := scratchFor(ctx)
	qv := ctx.I64(len(data))
	s.k.data, s.k.qv, s.k.twoEB, s.k.nData = data, qv, twoEB, len(data)
	if s.prequantJob == nil {
		k := &s.k
		s.prequantJob = func(b int) {
			lo := b << chunkShift
			hi := lo + 1<<chunkShift
			if hi > k.nData {
				hi = k.nData
			}
			for i := lo; i < hi; i++ {
				q := math.Round(float64(k.data[i]) / k.twoEB)
				switch {
				case q > float64(latticeCap):
					k.qv[i] = latticeCap
				case q < -float64(latticeCap):
					k.qv[i] = -latticeCap
				default:
					k.qv[i] = int64(q)
				}
			}
		}
	}
	dev.Launch((len(data)+(1<<chunkShift)-1)>>chunkShift, s.prequantJob)
	s.k.data = nil // drop the caller's field so a pooled ctx never pins it
	return qv
}

// Compress runs the dual-quant Lorenzo decomposition. eb is the absolute
// error bound.
func Compress(dev *gpusim.Device, data []float32, g Grid, eb float64) (*Result, error) {
	return CompressCtx(nil, dev, data, g, eb)
}

// CompressCtx is Compress with a reusable context: the code, lattice and
// side-channel buffers (and Result.Freq) are context scratch, valid until
// ctx.Reset.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, g Grid, eb float64) (*Result, error) {
	if g.Len() != len(data) {
		return nil, fmt.Errorf("lorenzo: grid %dx%dx%d does not match %d values", g.Nz, g.Ny, g.Nx, len(data))
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	qv := PrequantizeCtx(ctx, dev, data, twoEB)
	s := scratchFor(ctx)
	if cap(s.freq) < Alphabet {
		s.freq = make([]int64, Alphabet)
	}
	freq := s.freq[:Alphabet]
	clear(freq)
	res := &Result{
		Codes: ctx.U16(len(data)),
		Freq:  freq,
	}
	// Pass 1 (parallel): per-point Lorenzo deltas fused with the code
	// histogram; escapes and value outliers collect per chunk into
	// persistent scratch, in flat order.
	nChunks := (len(data) + (1 << chunkShift) - 1) >> chunkShift
	for len(s.chunks) < nChunks {
		s.chunks = append(s.chunks, escChunk{})
	}
	chunks := s.chunks[:nChunks]
	for i := range chunks {
		chunks[i].deltas = chunks[i].deltas[:0]
		chunks[i].valPos = chunks[i].valPos[:0]
		chunks[i].valVals = chunks[i].valVals[:0]
	}
	s.k.data, s.k.qv, s.k.codes, s.k.g = data, qv, res.Codes, g
	s.k.eb, s.k.twoEB, s.k.freq, s.k.nData = eb, twoEB, freq, len(data)
	if s.deltaJob == nil {
		k := &s.k
		s.deltaJob = func(c int) {
			lo := c << chunkShift
			hi := lo + 1<<chunkShift
			if hi > k.nData {
				hi = k.nData
			}
			ec := &s.chunks[c]
			var hist [Alphabet]uint32
			g := k.g
			qv := k.qv
			nyx := g.Ny * g.Nx
			for i := lo; i < hi; i++ {
				x := i % g.Nx
				y := (i / g.Nx) % g.Ny
				z := i / nyx
				at := func(dz, dy, dx int) int64 {
					if z-dz < 0 || y-dy < 0 || x-dx < 0 {
						return 0
					}
					return qv[i-dz*nyx-dy*g.Nx-dx]
				}
				pred := at(0, 0, 1) + at(0, 1, 0) + at(1, 0, 0) -
					at(0, 1, 1) - at(1, 0, 1) - at(1, 1, 0) + at(1, 1, 1)
				delta := qv[i] - pred
				if delta >= -Radius && delta < Radius {
					code := uint16(delta+Radius) + 1
					k.codes[i] = code
					hist[code]++
				} else {
					k.codes[i] = 0
					hist[0]++
					ec.deltas = append(ec.deltas, delta)
				}
				recon := float32(float64(qv[i]) * k.twoEB)
				if math.Abs(float64(k.data[i])-float64(recon)) > k.eb {
					ec.valPos = append(ec.valPos, i)
					ec.valVals = append(ec.valVals, k.data[i])
				}
			}
			k.mu.Lock()
			for sym, n := range hist {
				if n != 0 {
					k.freq[sym] += int64(n)
				}
			}
			k.mu.Unlock()
		}
	}
	dev.Launch(nChunks, s.deltaJob)
	nEsc, nOut := 0, 0
	for i := range chunks {
		nEsc += len(chunks[i].deltas)
		nOut += len(chunks[i].valPos)
	}
	res.Escapes = ctx.I64(nEsc)[:0]
	res.ValOutliers.Pos = ctx.Ints(nOut)[:0]
	res.ValOutliers.Val = ctx.F32(nOut)[:0]
	for i := range chunks {
		ec := &chunks[i]
		res.Escapes = append(res.Escapes, ec.deltas...)
		res.ValOutliers.Pos = append(res.ValOutliers.Pos, ec.valPos...)
		res.ValOutliers.Val = append(res.ValOutliers.Val, ec.valVals...)
	}
	s.k.data = nil // drop the caller's field so a pooled ctx never pins it
	return res, nil
}

// Decompress reconstructs the field.
func Decompress(dev *gpusim.Device, res *Result, g Grid, eb float64) ([]float32, error) {
	return DecompressCtx(nil, dev, res, g, eb)
}

// DecompressCtx is Decompress with a reusable context. With a non-nil ctx
// the returned field is context scratch, valid until the next ctx.Reset.
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, res *Result, g Grid, eb float64) ([]float32, error) {
	if len(res.Codes) != g.Len() {
		return nil, fmt.Errorf("lorenzo: %d codes for grid of %d points", len(res.Codes), g.Len())
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	n := g.Len()
	s := scratchFor(ctx)
	qv := ctx.I64(n)
	// Rebuild deltas (sequential escape consumption, parallel the rest).
	esc := 0
	for i := 0; i < n; i++ {
		c := res.Codes[i]
		if c == 0 {
			if esc >= len(res.Escapes) {
				return nil, fmt.Errorf("lorenzo: escape list exhausted at %d", i)
			}
			qv[i] = res.Escapes[esc]
			esc++
			continue
		}
		if int(c) >= Alphabet {
			return nil, fmt.Errorf("lorenzo: code %d out of range", c)
		}
		qv[i] = int64(c) - 1 - Radius
	}
	if esc != len(res.Escapes) {
		return nil, fmt.Errorf("lorenzo: %d unused escapes", len(res.Escapes)-esc)
	}
	// 3-D inclusive prefix sum: x-scan, y-scan, then a z-scan fused with
	// the lattice-to-value conversion (a column chunk that finished its
	// last plane holds final lattice values, so one kernel does both).
	out := ctx.F32(n)
	s.k.qv, s.k.out, s.k.g, s.k.twoEB = qv, out, g, twoEB
	if s.xScanJob == nil {
		k := &s.k
		s.xScanJob = func(r int) {
			qv := k.qv
			base := r * k.g.Nx
			var acc int64
			for x := 0; x < k.g.Nx; x++ {
				acc += qv[base+x]
				qv[base+x] = acc
			}
		}
		s.yScanJob = func(z int) {
			qv := k.qv
			g := k.g
			base := z * g.Ny * g.Nx
			for y := 1; y < g.Ny; y++ {
				row := base + y*g.Nx
				prev := row - g.Nx
				for x := 0; x < g.Nx; x++ {
					qv[row+x] += qv[prev+x]
				}
			}
		}
		s.zScanJob = func(b int) {
			qv := k.qv
			g := k.g
			nyx := g.Ny * g.Nx
			lo := b << 14
			hi := lo + 1<<14
			if hi > nyx {
				hi = nyx
			}
			for z := 1; z < g.Nz; z++ {
				base := z * nyx
				prev := base - nyx
				for i := lo; i < hi; i++ {
					qv[base+i] += qv[prev+i]
				}
			}
			for z := 0; z < g.Nz; z++ {
				base := z * nyx
				for i := lo; i < hi; i++ {
					k.out[base+i] = float32(float64(qv[base+i]) * k.twoEB)
				}
			}
		}
	}
	nyx := g.Ny * g.Nx
	dev.Launch(g.Nz*g.Ny, s.xScanJob)
	dev.Launch(g.Nz, s.yScanJob)
	dev.Launch((nyx+(1<<14)-1)>>14, s.zScanJob)
	for k, p := range res.ValOutliers.Pos {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("lorenzo: outlier position %d out of range", p)
		}
		out[p] = res.ValOutliers.Val[k]
	}
	return out, nil
}
