package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/cuszhi"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// TestBackendModeStreamRoundTrip drives every backend chunk codec through
// the streaming writer: WithMode(fzgpu|szp|szx) emits a format-v5
// container whose chunks all carry the backend's wire ID, and the
// sequential Reader, the one-shot decoder and the random-access ReaderAt
// reconstruct it identically.
func TestBackendModeStreamRoundTrip(t *testing.T) {
	dims := []int{16, 10, 10}
	data := make([]float32, 16*10*10)
	for i := range data {
		data[i] = float32(i%29)*0.5 + float32(i%7)
	}
	for _, mode := range cuszhi.BackendModes() {
		t.Run(string(mode), func(t *testing.T) {
			absEB := cuszhi.AbsEB(data, 1e-3)
			var buf bytes.Buffer
			w, err := NewWriter(&buf, dims, absEB, WithMode(mode), WithChunkPlanes(4), WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WriteValues(data); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			blob := buf.Bytes()

			info, err := cuszhi.Inspect(blob)
			if err != nil {
				t.Fatal(err)
			}
			if info.Version != 5 || !info.HasIndex || info.NumChunks != 4 {
				t.Fatalf("info = %+v", info)
			}
			if info.ChunkCodecs[string(mode)] != 4 || len(info.ChunkCodecs) != 1 {
				t.Fatalf("histogram = %v", info.ChunkCodecs)
			}

			full, gotDims, err := cuszhi.Decompress(blob)
			if err != nil || gotDims[0] != 16 {
				t.Fatalf("one-shot decode: %v (dims %v)", err, gotDims)
			}
			if !metrics.WithinBound(data, full, absEB) {
				t.Fatal("reconstruction out of bound")
			}

			r, err := NewReader(bytes.NewReader(blob), WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			seq, err := r.ReadAllValues()
			if err != nil {
				t.Fatal(err)
			}
			for i := range full {
				if seq[i] != full[i] {
					t.Fatalf("sequential decode diverges at %d", i)
				}
			}

			ra, err := OpenReaderAt(bytes.NewReader(blob), int64(len(blob)), WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			if hist := ra.CodecHistogram(); hist[string(mode)] != 4 {
				t.Fatalf("ReaderAt histogram = %v", hist)
			}
			// A window over backend-coded chunks decodes byte-exactly.
			ps := 10 * 10
			got, err := ra.ReadPlanes(nil, 5, 11)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != full[5*ps+i] {
					t.Fatalf("ReadPlanes diverges from full decode at %d", i)
				}
			}
		})
	}
}

// TestBackendModeRequiresIndex: backend modes record codec IDs in the v5
// footer, so disabling the index must be refused up front, like auto mode.
func TestBackendModeRequiresIndex(t *testing.T) {
	var buf bytes.Buffer
	_, err := NewWriter(&buf, []int{4, 4, 4}, 0.01, WithMode(cuszhi.ModeFzGPU), WithIndex(false))
	if err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewWriter(&buf, []int{4, 4, 4}, 0.01, WithMode("nope")); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestAutoModeBackendWinsShard engineers a field where a backend codec
// wins at least one shard (constant planes: szp/szx territory) while the
// smooth ramp half goes to an interpolation assembly — proving the widened
// candidate set reaches the stream's per-chunk selection.
func TestAutoModeBackendWinsShard(t *testing.T) {
	dims := []int{32, 12, 12}
	ps := 12 * 12
	data := make([]float32, 32*ps)
	for z := 0; z < 16; z++ {
		for i := 0; i < ps; i++ {
			y, x := i/12, i%12
			data[z*ps+i] = float32(z)*0.5 + float32(y)*0.25 + float32(x)*0.125
		}
	}
	// Planes 16..32 constant: a zero-delta bitmap (szp) or constant-block
	// (szx) stream costs a few bytes where every assembly pays Huffman
	// tables and anchor grids per shard.
	var buf bytes.Buffer
	absEB := cuszhi.AbsEB(data, 1e-3)
	w, err := NewWriter(&buf, dims, absEB, WithAutoMode(), WithChunkPlanes(8), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := cuszhi.Inspect(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	backendChunks := info.ChunkCodecs["fzgpu"] + info.ChunkCodecs["szp"] + info.ChunkCodecs["szx"]
	if backendChunks == 0 {
		t.Fatalf("no backend won a shard: %v", info.ChunkCodecs)
	}
	recon, _, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.WithinBound(data, recon, absEB) {
		t.Fatal("mixed cusz+backend reconstruction out of bound")
	}
}

// buildMixedBackendV5 assembles a two-chunk fzgpu+szx container the way
// the fuzz seeds do, returning the blob and its index entries.
func buildMixedBackendV5(t *testing.T, dims []int, data []float32) ([]byte, []core.IndexEntry) {
	t.Helper()
	blob, err := core.AppendChunkedHeaderV5(nil, dims, 0.05, false, dims[0]/2)
	if err != nil {
		t.Fatal(err)
	}
	ps := 1
	for _, d := range dims[1:] {
		ps *= d
	}
	names := []string{"fzgpu", "szx"}
	var entries []core.IndexEntry
	for i, off := 0, 0; off < dims[0]; i, off = i+1, off+dims[0]/2 {
		planes := dims[0] / 2
		cd, ok := core.CodecByName(names[i%2])
		if !ok {
			t.Fatal(names[i%2])
		}
		shard := data[off*ps : (off+planes)*ps]
		shardDims := append([]int{planes}, dims[1:]...)
		minV, maxV, _ := core.ShardRange(shard)
		payload, err := cd.Compress(nil, gpusim.Default, shard, shardDims, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, core.IndexEntry{FrameOff: int64(len(blob)), PlaneOff: off, Planes: planes, Codec: cd.ID()})
		blob = core.AppendChunkFrameV5(blob, cd, off, shardDims, minV, maxV, payload)
	}
	return core.AppendChunkIndexFooterV5(blob, int64(len(blob)), entries), entries
}

// TestReaderAtCodecMismatchNamesCodecs: a footer whose entry claims a
// different (registered) codec than the frame must fail the covering read
// with an error naming both codecs — the index/frame cross-check message
// satellite.
func TestReaderAtCodecMismatchNamesCodecs(t *testing.T) {
	dims := []int{8, 6, 6}
	data := make([]float32, 8*6*6)
	for i := range data {
		data[i] = float32(i%17) * 0.25
	}
	blob, entries := buildMixedBackendV5(t, dims, data)
	if _, _, err := Decompress(blob); err != nil {
		t.Fatal(err)
	}
	framesEnd := int(binary.LittleEndian.Uint64(blob[len(blob)-core.IndexTailLen:]))
	lie := append([]core.IndexEntry(nil), entries...)
	lie[0].Codec = core.CodecSZp // registered, but not what the frame says
	bad := core.AppendChunkIndexFooterV5(append([]byte(nil), blob[:framesEnd]...), int64(framesEnd), lie)

	ra, err := OpenReaderAt(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err) // the footer alone is self-consistent; open succeeds
	}
	_, err = ra.ReadPlanes(nil, 0, 2)
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	for _, name := range []string{"szp", "fzgpu"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("mismatch error does not name %s: %v", name, err)
		}
	}
}

// TestReaderCodecModeMismatchNamesCodec: the sequential Reader's frame
// validation must name the codec whose ID disagrees with the frame's
// codec-mode byte.
func TestReaderCodecModeMismatchNamesCodec(t *testing.T) {
	dims := []int{8, 6, 6}
	data := make([]float32, 8*6*6)
	for i := range data {
		data[i] = float32(i % 11)
	}
	blob, entries := buildMixedBackendV5(t, dims, data)
	// Frame 0 is fzgpu (mode byte 0); claiming cusz-l (a registered
	// assembly with a nonzero mode byte) trips the mode/ID cross-check.
	bad := append([]byte(nil), blob...)
	bad[int(entries[0].FrameOff)+5] = byte(core.CodecCuszL)
	r, err := NewReader(bytes.NewReader(bad))
	if err == nil {
		_, err = io.ReadAll(r)
		r.Close()
	}
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "cusz-l") {
		t.Fatalf("mismatch error does not name the claimed codec: %v", err)
	}
}
