package interp

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/arena"
	"repro/internal/gpusim"
	"repro/internal/quant"
)

// Result is the lossy decomposition output: the integer quantization codes
// (natural data layout), the lossless anchor values (row-major over the
// anchor lattice) and the outlier list.
type Result struct {
	Codes    []uint8
	Anchors  []float32
	Outliers *quant.Outliers
	// Freq is the histogram of Codes over [0, 256), accumulated inside the
	// quantization kernel (context scratch when a Ctx was supplied). It is
	// permutation-invariant, so it stays valid after level-order reordering.
	Freq []int64
}

// auxKey is this package's scratch slot in an arena.Ctx; blockOutKey holds
// the per-block outlier collectors (arena batch slots, persistent across
// Reset so steady-state appends never grow).
var (
	auxKey      = arena.NewAuxKey()
	blockOutKey = arena.NewAuxKey()
)

type iscratch struct {
	freq []int64
}

func scratchFor(ctx *arena.Ctx) *iscratch {
	if s, ok := ctx.Aux(auxKey).(*iscratch); ok {
		return s
	}
	s := &iscratch{}
	ctx.SetAux(auxKey, s)
	return s
}

// gatherAnchors extracts the dense anchor grid from data.
func gatherAnchors(ctx *arena.Ctx, dev *gpusim.Device, data []float32, g Grid, a int) []float32 {
	az, ay, ax := g.AnchorDims(a)
	out := ctx.F32(az * ay * ax)
	dev.Launch(az, func(iz int) {
		z := iz * a
		for iy := 0; iy < ay; iy++ {
			y := iy * a
			for ix := 0; ix < ax; ix++ {
				out[(iz*ay+iy)*ax+ix] = data[g.flat(z, y, ix*a)]
			}
		}
	})
	return out
}

// bufPool recycles per-block reconstruction buffers across kernel launches.
var bufPool = sync.Pool{New: func() any { return &block{} }}

// Compress runs the interpolation predictor over data, producing quant
// codes, anchors and outliers. eb is the absolute error bound.
func Compress(dev *gpusim.Device, data []float32, g Grid, cfg Config, eb float64) (*Result, error) {
	return CompressCtx(nil, dev, data, g, cfg, eb)
}

// CompressCtx is Compress with a reusable context: the code, anchor and
// histogram buffers of the Result are context scratch, valid until the
// next ctx.Reset.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, g Grid, cfg Config, eb float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.Len() != len(data) {
		return nil, fmt.Errorf("interp: grid %dx%dx%d does not match %d values", g.Nz, g.Ny, g.Nx, len(data))
	}
	if eb <= 0 {
		return nil, fmt.Errorf("interp: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	s := scratchFor(ctx)
	if cap(s.freq) < 256 {
		s.freq = make([]int64, 256)
	}
	freq := s.freq[:256]
	clear(freq)
	res := &Result{
		Codes:    ctx.Bytes(g.Len()),
		Anchors:  gatherAnchors(ctx, dev, data, g, cfg.AnchorStride),
		Outliers: &quant.Outliers{},
		Freq:     freq,
	}
	azd, ayd, axd := g.AnchorDims(cfg.AnchorStride)
	nbz, nby, nbx := blockGrid(g, &cfg)
	nBlocks := nbz * nby * nbx
	perBlockOutliers := arena.Slots[quant.Outliers](ctx, blockOutKey, nBlocks)
	for i := range perBlockOutliers {
		perBlockOutliers[i].Pos = perBlockOutliers[i].Pos[:0]
		perBlockOutliers[i].Val = perBlockOutliers[i].Val[:0]
	}
	var freqMu sync.Mutex
	dev.Launch(nBlocks, func(bi int) {
		bk := bufPool.Get().(*block)
		defer bufPool.Put(bk)
		bx := bi % nbx
		by := (bi / nbx) % nby
		bz := bi / (nbx * nby)
		bk.initBlock(g, &cfg, bz, by, bx)
		bk.anchors = res.Anchors
		bk.az = [3]int{azd, ayd, axd}
		// hist fuses the code histogram into the quantization sweep; each
		// owned point contributes exactly one code, so summing the per-block
		// histograms reproduces a full scan of res.Codes.
		var hist [256]uint32
		bk.loadAnchors(func(z, y, x int, v float32) {
			if bk.owns(z, y, x) {
				res.Codes[g.flat(z, y, x)] = quant.ZeroCode
				hist[quant.ZeroCode]++
			}
		})
		ol := &perBlockOutliers[bi]
		bk.run(func(z, y, x int, pred float32, owned bool) float32 {
			idx := g.flat(z, y, x)
			code, recon, outlier := quant.Quantize(data[idx], pred, twoEB)
			if owned {
				res.Codes[idx] = code
				hist[code]++
				if outlier {
					ol.Append(idx, data[idx])
				}
			}
			return recon
		})
		freqMu.Lock()
		for c, n := range hist {
			if n != 0 {
				freq[c] += int64(n)
			}
		}
		freqMu.Unlock()
	})
	// Merge per-block outliers in ascending position order, into
	// context-drawn arrays sized by a counting pass.
	order := ctx.Ints(nBlocks)[:0]
	nOut := 0
	for i := range perBlockOutliers {
		if perBlockOutliers[i].Len() > 0 {
			order = append(order, i)
			nOut += perBlockOutliers[i].Len()
		}
	}
	res.Outliers.Pos = ctx.Ints(nOut)[:0]
	res.Outliers.Val = ctx.F32(nOut)[:0]
	sort.Slice(order, func(i, j int) bool {
		return perBlockOutliers[order[i]].Pos[0] < perBlockOutliers[order[j]].Pos[0]
	})
	for _, i := range order {
		res.Outliers.Pos = append(res.Outliers.Pos, perBlockOutliers[i].Pos...)
		res.Outliers.Val = append(res.Outliers.Val, perBlockOutliers[i].Val...)
	}
	sort.Sort(byPos{res.Outliers})
	return res, nil
}

// byPos sorts an outlier list by position, keeping values aligned.
type byPos struct{ o *quant.Outliers }

func (s byPos) Len() int           { return s.o.Len() }
func (s byPos) Less(i, j int) bool { return s.o.Pos[i] < s.o.Pos[j] }
func (s byPos) Swap(i, j int) {
	s.o.Pos[i], s.o.Pos[j] = s.o.Pos[j], s.o.Pos[i]
	s.o.Val[i], s.o.Val[j] = s.o.Val[j], s.o.Val[i]
}

// Decompress reconstructs the field from a Result.
func Decompress(dev *gpusim.Device, res *Result, g Grid, cfg Config, eb float64) ([]float32, error) {
	return DecompressCtx(nil, dev, res, g, cfg, eb)
}

// DecompressCtx is Decompress with a reusable context. With a non-nil ctx
// the returned field is context scratch, valid until the next ctx.Reset.
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, res *Result, g Grid, cfg Config, eb float64) ([]float32, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(res.Codes) != g.Len() {
		return nil, fmt.Errorf("interp: %d codes for grid of %d points", len(res.Codes), g.Len())
	}
	if want := g.AnchorCount(cfg.AnchorStride); len(res.Anchors) != want {
		return nil, fmt.Errorf("interp: %d anchors, want %d", len(res.Anchors), want)
	}
	if eb <= 0 {
		return nil, fmt.Errorf("interp: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	out := ctx.F32(g.Len())
	azd, ayd, axd := g.AnchorDims(cfg.AnchorStride)
	nbz, nby, nbx := blockGrid(g, &cfg)
	dev.Launch(nbz*nby*nbx, func(bi int) {
		bk := bufPool.Get().(*block)
		defer bufPool.Put(bk)
		bx := bi % nbx
		by := (bi / nbx) % nby
		bz := bi / (nbx * nby)
		bk.initBlock(g, &cfg, bz, by, bx)
		bk.anchors = res.Anchors
		bk.az = [3]int{azd, ayd, axd}
		bk.loadAnchors(func(z, y, x int, v float32) {
			if bk.owns(z, y, x) {
				out[g.flat(z, y, x)] = v
			}
		})
		bk.run(func(z, y, x int, pred float32, owned bool) float32 {
			idx := g.flat(z, y, x)
			code := res.Codes[idx]
			var v float32
			if code == quant.OutlierCode {
				v, _ = res.Outliers.SortedGet(idx)
			} else {
				v = quant.Dequantize(code, pred, twoEB)
			}
			if owned {
				out[idx] = v
			}
			return v
		})
	})
	return out, nil
}
