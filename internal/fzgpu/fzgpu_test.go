package fzgpu

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, data []float32, dims []int, eb float64) []byte {
	t.Helper()
	blob, err := Compress(dev, data, dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(data) {
		t.Fatalf("len %d != %d", len(recon), len(data))
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("bound violated at %d: %v vs %v", i, data[i], recon[i])
	}
	return blob
}

func TestRoundTrip3D(t *testing.T) {
	dims := []int{24, 30, 36}
	data := make([]float32, 24*30*36)
	for i := range data {
		data[i] = float32(math.Cos(float64(i) * 0.0003))
	}
	for _, eb := range []float64{1e-2, 1e-4} {
		roundTrip(t, data, dims, eb)
	}
}

func TestRoundTrip2D(t *testing.T) {
	dims := []int{50, 60}
	data := make([]float32, 3000)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 0.1)
	}
	roundTrip(t, data, dims, 1e-3)
}

func TestCompressesSmoothData(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{32, 48, 48}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	blob := roundTrip(t, f.Data, f.Dims, eb)
	cr := metrics.CR(f.SizeBytes(), len(blob))
	if cr < 3 {
		t.Fatalf("miranda CR = %.2f, want > 3", cr)
	}
}

func TestExtremeValues(t *testing.T) {
	dims := []int{10, 10, 10}
	rng := rand.New(rand.NewSource(2))
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(rng.NormFloat64()) * 1e31
	}
	roundTrip(t, data, dims, 1e-2)
}

func TestDecompressCorrupt(t *testing.T) {
	dims := []int{16, 16, 16}
	data := make([]float32, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	blob, err := Compress(dev, data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 8, len(blob) / 2, len(blob) - 1} {
		if _, err := Decompress(dev, blob[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
	for trial := 0; trial < 30; trial++ {
		bad := append([]byte(nil), blob...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		Decompress(dev, bad) // must not panic
	}
}

// TestCtxMatchesContextFree: the arena-context entry points must produce
// byte-identical containers to the context-free wrappers, and the ctx
// decoder must report the container's own dims.
func TestCtxMatchesContextFree(t *testing.T) {
	dims := []int{12, 16, 16}
	data := make([]float32, 12*16*16)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	want, err := Compress(dev, data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := arena.NewCtx()
	got, err := CompressCtx(ctx, dev, data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("context compression diverges from context-free compression")
	}
	ctx.Reset()
	recon, rdims, err := DecompressCtx(ctx, dev, got)
	if err != nil {
		t.Fatal(err)
	}
	if len(rdims) != 3 || rdims[0] != 12 || rdims[1] != 16 || rdims[2] != 16 {
		t.Fatalf("ctx decode dims = %v", rdims)
	}
	if i := metrics.FirstViolation(data, recon, 1e-3); i >= 0 {
		t.Fatalf("bound violated at %d", i)
	}
}

// TestAllocsWarmCtx is the arena-refactor guard: a warm context must run
// the compress and decompress hot paths with a near-constant handful of
// allocations (the fresh output container, kernel closures, pool
// bookkeeping), independent of the field size.
func TestAllocsWarmCtx(t *testing.T) {
	dims := []int{16, 24, 24}
	data := make([]float32, 16*24*24)
	for i := range data {
		data[i] = float32(i%37)*0.25 + float32(i%11)
	}
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ctx := arena.NewCtx()
	blob, err := CompressCtx(ctx, dev1, data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if _, _, err := DecompressCtx(ctx, dev1, blob); err != nil {
		t.Fatal(err)
	}
	comp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := CompressCtx(ctx, dev1, data, dims, 1e-3); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm compress: %v allocs/op", comp)
	if comp > 12 {
		t.Fatalf("steady-state compress allocates %v/op, want <= 12", comp)
	}
	decomp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, _, err := DecompressCtx(ctx, dev1, blob); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm decompress: %v allocs/op", decomp)
	if decomp > 8 {
		t.Fatalf("steady-state decompress allocates %v/op, want <= 8", decomp)
	}
}
