// Fixture for the corrupterr analyzer: a wire-decoding package (it declares
// ErrCorrupt) whose decode paths break the error contract. Parsed, never
// compiled.
package corrupterr

import (
	"errors"
	"fmt"
)

// ErrCorrupt marks this fixture as a wire-decoding package.
var ErrCorrupt = errors.New("corrupterr: corrupt stream")

// decodeBad breaks the contract three ways.
func decodeBad(p []byte) error {
	if len(p) == 0 {
		return errors.New("short buffer")
	}
	if p[0] > 3 {
		return fmt.Errorf("bad mode %d", p[0])
	}
	if p[0] == 2 {
		panic("unreachable mode")
	}
	return nil
}

// DecompressGood keeps errors.Is working: direct return and %w-wrap.
func DecompressGood(p []byte) error {
	if len(p) == 0 {
		return ErrCorrupt
	}
	if p[0] > 3 {
		return fmt.Errorf("bad mode %d: %w", p[0], ErrCorrupt)
	}
	return nil
}

// Parse takes a config string, not wire bytes: out of scope, bare errors
// are fine here.
func Parse(spec string) error {
	return errors.New("unknown spec " + spec)
}
