package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRange(t *testing.T) {
	lo, hi, rng := Range([]float32{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 || rng != 6 {
		t.Fatalf("Range = %v %v %v", lo, hi, rng)
	}
	if _, _, r := Range(nil); r != 0 {
		t.Fatal("empty range should be 0")
	}
}

func TestAbsEB(t *testing.T) {
	data := []float32{0, 10}
	if got := AbsEB(data, 1e-2); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("AbsEB = %v", got)
	}
	// Constant field: range treated as 1.
	if got := AbsEB([]float32{5, 5}, 1e-3); got != 1e-3 {
		t.Fatalf("AbsEB const = %v", got)
	}
}

func TestCompareIdentical(t *testing.T) {
	a := []float32{1, 2, 3}
	d := Compare(a, a)
	if d.MSE != 0 || !math.IsInf(d.PSNR, 1) || d.MaxErr != 0 {
		t.Fatalf("Compare identical = %+v", d)
	}
}

func TestComparePSNR(t *testing.T) {
	orig := make([]float32, 1000)
	recon := make([]float32, 1000)
	for i := range orig {
		orig[i] = float32(i) / 999 // range 1
		recon[i] = orig[i] + 0.01
	}
	d := Compare(orig, recon)
	// MSE = 1e-4, range 1 => PSNR = 40 dB.
	if math.Abs(d.PSNR-40) > 0.01 {
		t.Fatalf("PSNR = %v, want ~40", d.PSNR)
	}
	if math.Abs(d.MaxErr-0.01) > 1e-6 {
		t.Fatalf("MaxErr = %v", d.MaxErr)
	}
}

func TestCRAndBitRate(t *testing.T) {
	if CR(1000, 100) != 10 {
		t.Fatal("CR")
	}
	if !math.IsInf(CR(10, 0), 1) {
		t.Fatal("CR zero")
	}
	// 4e6 bytes = 1e6 floats compressed to 1e6 bytes => 8 bits/elem.
	if got := BitRate(1_000_000, 1_000_000); got != 8 {
		t.Fatalf("BitRate = %v", got)
	}
}

func TestWithinBound(t *testing.T) {
	orig := []float32{1, 2, 3}
	ok := []float32{1.05, 1.95, 3.04}
	bad := []float32{1.2, 2, 3}
	if !WithinBound(orig, ok, 0.05) {
		t.Fatal("should be within bound")
	}
	if WithinBound(orig, bad, 0.05) {
		t.Fatal("should violate bound")
	}
	if i := FirstViolation(orig, bad, 0.05); i != 0 {
		t.Fatalf("FirstViolation = %d", i)
	}
	if FirstViolation(orig, ok, 0.05) != -1 {
		t.Fatal("no violation expected")
	}
}

func TestByteEntropy(t *testing.T) {
	if h := ByteEntropy(make([]byte, 100)); h != 0 {
		t.Fatalf("constant entropy = %v", h)
	}
	half := make([]byte, 200)
	for i := 100; i < 200; i++ {
		half[i] = 1
	}
	if h := ByteEntropy(half); math.Abs(h-1) > 1e-9 {
		t.Fatalf("two-symbol entropy = %v, want 1", h)
	}
	all := make([]byte, 256*4)
	for i := range all {
		all[i] = byte(i)
	}
	if h := ByteEntropy(all); math.Abs(h-8) > 1e-9 {
		t.Fatalf("uniform entropy = %v, want 8", h)
	}
}

func TestGiBps(t *testing.T) {
	if got := GiBps(1<<30, 1); got != 1 {
		t.Fatalf("GiBps = %v", got)
	}
	if GiBps(100, 0) != 0 {
		t.Fatal("zero seconds")
	}
}

func TestCompareSymmetryProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) < 2 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
		}
		d := Compare(vals, vals)
		return d.MSE == 0 && d.MaxErr == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
