package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arena"
	"repro/internal/gpusim"
)

// TestCodecRegistryLookups: every shipped mode resolves by wire ID and by
// name, IDs are stable, and the Codecs listing is ID-ordered.
func TestCodecRegistryLookups(t *testing.T) {
	want := map[CodecID]string{
		CodecHiCR:   "hi-cr",
		CodecHiTP:   "hi-tp",
		CodecCuszI:  "cusz-i",
		CodecCuszIB: "cusz-ib",
		CodecCuszL:  "cusz-l",
		CodecFzGPU:  "fzgpu",
		CodecSZp:    "szp",
		CodecSZx:    "szx",
	}
	for id, name := range want {
		c, ok := CodecByID(id)
		if !ok || c.Name() != name || c.ID() != id {
			t.Fatalf("CodecByID(%d) = %v, %v", id, c, ok)
		}
		byName, ok := CodecByName(name)
		if !ok || byName.ID() != id {
			t.Fatalf("CodecByName(%q) = %v, %v", name, byName, ok)
		}
	}
	if _, ok := CodecByID(0); ok {
		t.Fatal("ID 0 resolved")
	}
	if _, ok := CodecByID(200); ok {
		t.Fatal("unregistered ID resolved")
	}
	if _, ok := CodecByName("nope"); ok {
		t.Fatal("unregistered name resolved")
	}
	all := Codecs()
	if len(all) != len(want) {
		t.Fatalf("%d registered codecs, want %d", len(all), len(want))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID() >= all[i].ID() {
			t.Fatal("Codecs not ordered by ID")
		}
	}
}

// TestCodecCompressMatchesOptionsPath: a registered codec's Compress must
// be byte-identical to CompressCtx with the equivalent Options, and its
// Decompress must reverse it — the registry is a dispatch layer, not a
// different encoder.
func TestCodecCompressMatchesOptionsPath(t *testing.T) {
	data := rampField(8 * 8 * 8)
	dims := []int{8, 8, 8}
	dev1 := gpusim.New(1)
	for _, name := range []string{"hi-tp", "cusz-l"} {
		cd, ok := CodecByName(name)
		if !ok {
			t.Fatal(name)
		}
		opts, err := ModeOptions(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Compress(dev1, data, dims, 0.02, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cd.Compress(nil, dev1, data, dims, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || string(got) != string(want) {
			t.Fatalf("%s: codec output diverges from Options output", name)
		}
		recon, rdims, err := cd.Decompress(nil, dev1, got)
		if err != nil || len(recon) != len(data) || rdims[0] != 8 {
			t.Fatalf("%s: codec decompress: %v", name, err)
		}
	}
}

// TestResolveCodec: the five canonical assemblies resolve to their codecs;
// custom Options variants (no wire ID) are refused.
func TestResolveCodec(t *testing.T) {
	for _, opts := range allModes() {
		cd, err := ResolveCodec(opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Name, err)
		}
		if got, _ := ModeOptions(cd.Name()); got.Name != opts.Name {
			t.Fatalf("%s resolved to codec %s", opts.Name, cd.Name())
		}
	}
	if _, err := ResolveCodec(SZ3Like()); err == nil {
		t.Fatal("SZ3-like assembly resolved to a wire codec")
	}
}

// TestRegisterCodecPanics: duplicate IDs/names and the reserved zero ID
// are programming errors caught at registration.
func TestRegisterCodecPanics(t *testing.T) {
	expectPanic := func(name string, c Codec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: RegisterCodec did not panic", name)
			}
		}()
		RegisterCodec(c)
	}
	expectPanic("zero id", &assemblyCodec{id: 0, name: "zero", newOpts: CuszL})
	expectPanic("dup id", &assemblyCodec{id: CodecCuszL, name: "fresh", newOpts: CuszL})
	expectPanic("dup name", &assemblyCodec{id: 99, name: "cusz-l", newOpts: CuszL})
}

// TestUnknownPredictorAndPipelineAreCorrupt: decode-side registry misses
// surface as ErrCorrupt (never a panic), and encode-side misses as plain
// errors.
func TestUnknownPredictorAndPipelineAreCorrupt(t *testing.T) {
	data := rampField(4 * 4 * 4)
	dims := []int{4, 4, 4}
	opts := CuszL()
	opts.Predictor = 9
	if _, err := Compress(dev, data, dims, 0.1, opts); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown predictor on encode: err = %v", err)
	}
	opts = CuszL()
	opts.Pipeline = 9
	if _, err := Compress(dev, data, dims, 0.1, opts); err == nil ||
		!strings.Contains(err.Error(), "unsupported with the Lorenzo predictor") {
		t.Fatalf("unknown pipeline on encode: err = %v", err)
	}

	blob, err := Compress(dev, data, dims, 0.1, CuszL())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[5] = 9 // predictor wire byte
	if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown predictor on decode: err = %v", err)
	}
}

// TestModeOptionsRegistryBacked: ModeOptions is served by the registry and
// returns independent Options values (callers may mutate them freely).
func TestModeOptionsRegistryBacked(t *testing.T) {
	a, err := ModeOptions("hi-cr")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModeOptions("hi-cr")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Interp.PerLevel) == 0 {
		t.Fatal("hi-cr has no per-level configs")
	}
	a.Interp.PerLevel[0].Spline++ // must not leak into b
	if a.Interp.PerLevel[0] == b.Interp.PerLevel[0] {
		t.Fatal("ModeOptions returns aliased PerLevel slices")
	}
	if _, err := ModeOptions("auto"); err == nil {
		t.Fatal("auto is not a fixed assembly")
	}
	if _, err := ModeOptions("nope"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestSelectShardCodecPicksPlausibly: a smooth shard goes to the
// interpolation family, a noisy one decodes correctly whatever wins; the
// returned codec always round-trips its own shard.
func TestSelectShardCodecPicksPlausibly(t *testing.T) {
	dims := []int{20, 12, 12}
	smooth := make([]float32, 20*12*12)
	for i := range smooth {
		smooth[i] = float32(i) * 0.001
	}
	ctx := arena.NewCtx()
	cd, err := SelectShardCodec(ctx, dev, smooth, dims, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cd.Compress(nil, dev, smooth, dims, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(dev, blob)
	if err != nil || len(recon) != len(smooth) {
		t.Fatalf("selected codec %s failed its own shard: %v", cd.Name(), err)
	}
	if _, err := SelectShardCodec(ctx, dev, nil, nil, 0.01); err == nil {
		t.Fatal("empty shard accepted")
	}
}
