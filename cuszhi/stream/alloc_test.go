package stream

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/cuszhi"
)

// raceEnabled is set by race_test.go when building with -race.
var raceEnabled bool

func rampField3(n int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i%23) + 0.5*float32(i%7)
	}
	return data
}

// TestAllocsStreamedRoundTrip bounds the steady-state allocations of a full
// streamed round trip (writer construction through reader EOF). Shard
// working sets come from pooled codec contexts and recycled slabs, so the
// remaining allocations are per-session plumbing (goroutines, pool
// channels, frames) — a ceiling of 400 for a 4-shard 64³ field catches any
// O(field-size) regression while leaving bookkeeping headroom.
func TestAllocsStreamedRoundTrip(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses pooling under -race; ceiling is calibrated for normal builds")
	}
	dims := []int{64, 64, 64}
	data := rampField3(64 * 64 * 64)
	var buf bytes.Buffer
	rbuf := make([]byte, 1<<16)
	run := func() {
		buf.Reset()
		w, err := NewWriter(&buf, dims, 0.01, WithMode(cuszhi.ModeCuszL), WithWorkers(1), WithChunkPlanes(16))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteValues(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for {
			if _, err := r.Read(rbuf); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
	}
	run() // warm the context/slab pools
	run()
	if n := testing.AllocsPerRun(10, run); n > 400 {
		t.Fatalf("streamed 64³ round trip allocates %v/op, want <= 400", n)
	}
}

// TestRelativeEBStreamRoundTrip exercises the v3 container: a relative
// bound resolved per shard, no pre-pass over the field, reconstruction
// within relEB × the global value range (shard ranges never exceed it).
func TestRelativeEBStreamRoundTrip(t *testing.T) {
	dims := []int{24, 10, 10}
	n := 24 * 10 * 10
	data := make([]float32, n)
	for i := range data {
		// Plane-dependent magnitude so shard ranges genuinely differ.
		plane := i / 100
		data[i] = float32(plane*plane)/4 + float32(i%13)*0.25
	}
	relEB := 0.01
	var buf bytes.Buffer
	// WithIndex(false) pins the plain v3 layout; the default (v4) adds the
	// seekable chunk-index footer and is covered by the ReaderAt tests.
	w, err := NewWriter(&buf, dims, relEB, WithMode(cuszhi.ModeCuszL), WithChunkPlanes(8), WithRelativeEB(), WithIndex(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := cuszhi.Inspect(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 || !info.RelativeEB || info.AbsErrorEB != relEB || info.NumChunks != 3 {
		t.Fatalf("v3 header info = %+v", info)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.RelativeEB() || r.EB() != relEB {
		t.Fatalf("reader bound = %v (relative=%v)", r.EB(), r.RelativeEB())
	}
	recon, err := r.ReadAllValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != n {
		t.Fatalf("got %d values, want %d", len(recon), n)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range data {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	bound := relEB * (hi - lo)
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(recon[i])); d > bound {
			t.Fatalf("global relative bound violated at %d: |%v - %v| = %v > %v",
				i, data[i], recon[i], d, bound)
		}
	}

	// The one-shot decoder handles v3 transparently too.
	recon2, gotDims, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recon2) != n || gotDims[0] != dims[0] {
		t.Fatalf("one-shot v3 decode: %d values, dims %v", len(recon2), gotDims)
	}
}

// TestRelativeEBConstantShard: a constant shard has zero range, and the
// field's global range is unknown to the shard, so the writer must encode
// it bit-exactly — any range-derived fallback could exceed the global
// relative bound on a low-range field (found by review).
func TestRelativeEBConstantShard(t *testing.T) {
	dims := []int{8, 4, 4}
	data := make([]float32, 8*4*4)
	for i := range data {
		if i >= 64 { // planes 4..7 vary; planes 0..3 are constant zero
			data[i] = float32(i % 9)
		}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, 0.05, WithMode(cuszhi.ModeCuszL), WithChunkPlanes(4), WithRelativeEB())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if recon[i] != 0 {
			t.Fatalf("constant-zero shard not reconstructed exactly: %v at %d", recon[i], i)
		}
	}
}

// TestRelativeEBConstantShardLowRangeField is the review counterexample: a
// constant shard inside a field whose global range is far below 1. The
// promised bound is relEB × global range; a rng→1 fallback would exceed
// it ~100×, a bit-exact constant shard satisfies it trivially.
func TestRelativeEBConstantShardLowRangeField(t *testing.T) {
	dims := []int{2, 8, 8}
	data := make([]float32, 2*8*8)
	for i := range data {
		data[i] = 5.05
	}
	for i := 64; i < 128; i++ { // second shard spans [5.05, 5.06]
		data[i] = 5.05 + float32(i-64)*0.01/63
	}
	relEB := 0.01
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, relEB, WithMode(cuszhi.ModeCuszL), WithChunkPlanes(1), WithRelativeEB())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range data {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	bound := relEB * (hi - lo) * (1 + 1e-6)
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(recon[i])); d > bound {
			t.Fatalf("global relative bound violated at %d: err %v > %v", i, d, bound)
		}
	}
}

// TestRelativeEBNaNValues: shards whose leading values (or all values) are
// NaN must not abort relative-bound streaming — the replaced whole-file
// pre-pass skipped NaNs when computing the range, and the per-shard scan
// must too. (NaN payloads themselves are lossy, as they always were; the
// guarantee is that finite values still meet the bound.)
func TestRelativeEBNaNValues(t *testing.T) {
	dims := []int{4, 4, 4}
	data := make([]float32, 4*4*4)
	nan := float32(math.NaN())
	for i := range data {
		data[i] = float32(i % 11)
	}
	data[0] = nan  // shard 0 leads with NaN
	data[20] = nan // mid-shard NaN
	for i := 32; i < 48; i++ {
		data[i] = nan // shard 2 (planes 2..3 at ChunkPlanes 1: plane 2) all NaN
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, 0.01, WithMode(cuszhi.ModeCuszL), WithChunkPlanes(1), WithRelativeEB())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(data) {
		t.Fatalf("got %d values", len(recon))
	}
}
