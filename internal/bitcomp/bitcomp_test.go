package bitcomp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	enc, err := Compress(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(dev, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("round trip mismatch (%d vs %d bytes)", len(dec), len(data))
	}
	return enc
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []byte{42})
	roundTrip(t, []byte{1, 2, 3, 4, 5})
	roundTrip(t, make([]byte, 512))
	roundTrip(t, make([]byte, 513))
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{100, 511, 512, 513, 100_000} {
		data := make([]byte, n)
		rng.Read(data)
		roundTrip(t, data)
	}
}

func TestRunsCompressMassively(t *testing.T) {
	// The Table-1 scenario: Huffman output of near-constant quant codes is
	// long runs of identical bytes; Bitcomp must crush those.
	data := bytes.Repeat([]byte{0xAA}, 1<<20)
	enc := roundTrip(t, data)
	ratio := float64(len(data)) / float64(len(enc))
	if ratio < 50 {
		t.Fatalf("run compression ratio = %.1f, want >> 1", ratio)
	}
}

func TestIncompressibleStaysNearOne(t *testing.T) {
	// The other half of Table 1: already-de-redundated (random) data must
	// stay near ratio 1 (it may expand slightly, bounded by headers).
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(data)
	enc := roundTrip(t, data)
	ratio := float64(len(data)) / float64(len(enc))
	if ratio < 0.85 || ratio > 1.2 {
		t.Fatalf("random-data ratio = %.3f, want ~1", ratio)
	}
}

func TestRatio(t *testing.T) {
	r, err := Ratio(dev, bytes.Repeat([]byte{1}, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if r < 10 {
		t.Fatalf("Ratio on runs = %.2f", r)
	}
	r, err = Ratio(dev, nil)
	if err != nil || r != 1 {
		t.Fatalf("Ratio(empty) = %v, %v", r, err)
	}
}

func TestSlowRampCompresses(t *testing.T) {
	// A slow staircase has runs of identical bytes (zero deltas), which the
	// zero-elimination stage removes.
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(i / 64)
	}
	enc := roundTrip(t, data)
	if len(enc) > len(data)/4 {
		t.Fatalf("staircase compressed to %d/%d", len(enc), len(data))
	}
}

func TestNeverExpandsBeyondHeader(t *testing.T) {
	// The raw fallback bounds expansion to the small header.
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(9)).Read(data)
	enc := roundTrip(t, data)
	if len(enc) > len(data)+8 {
		t.Fatalf("expanded to %d/%d", len(enc), len(data))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := make([]byte, 5000)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	enc, err := Compress(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, err := Decompress(dev, enc[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
	for trial := 0; trial < 30; trial++ {
		bad := append([]byte(nil), enc...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		Decompress(dev, bad) // must not panic
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc, err := Compress(dev, data)
		if err != nil {
			return false
		}
		dec, err := Decompress(dev, enc)
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCtxMatchesContextFree: the arena-context entry points must produce
// byte-identical streams to the context-free wrappers.
func TestCtxMatchesContextFree(t *testing.T) {
	src := make([]byte, 1<<15)
	for i := range src {
		src[i] = byte(i % 7 * (i % 5))
	}
	want, err := Compress(dev, src)
	if err != nil {
		t.Fatal(err)
	}
	ctx := arena.NewCtx()
	got, err := CompressCtx(ctx, dev, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("context compression diverges from context-free compression")
	}
	ctx.Reset()
	dec, err := DecompressCtx(ctx, dev, got)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatalf("ctx round trip: %v", err)
	}
}

// TestAllocsWarmCtx is the arena-refactor guard: warm contexts re-code
// stream after stream with a near-constant handful of allocations.
func TestAllocsWarmCtx(t *testing.T) {
	src := make([]byte, 1<<16)
	for i := range src {
		src[i] = byte(i % 9 * (i % 4))
	}
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ctx := arena.NewCtx()
	blob, err := CompressCtx(ctx, dev1, src)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if _, err := DecompressCtx(ctx, dev1, blob); err != nil {
		t.Fatal(err)
	}
	comp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := CompressCtx(ctx, dev1, src); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm compress: %v allocs/op", comp)
	if comp > 8 {
		t.Fatalf("steady-state compress allocates %v/op, want <= 8", comp)
	}
	decomp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := DecompressCtx(ctx, dev1, blob); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm decompress: %v allocs/op", decomp)
	if decomp > 6 {
		t.Fatalf("steady-state decompress allocates %v/op, want <= 6", decomp)
	}
}
