package stream

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/cuszhi"
	"repro/internal/metrics"
)

// mixedField builds a field whose character flips along the slow dimension:
// the first half is a smooth separable ramp (interpolation-friendly), the
// second half is rough small-scale noise (Lorenzo territory), so per-chunk
// codec selection has something real to adapt to.
func mixedField(dims []int) []float32 {
	ps := dims[1] * dims[2]
	data := make([]float32, dims[0]*ps)
	rng := rand.New(rand.NewSource(9))
	for z := 0; z < dims[0]; z++ {
		for i := 0; i < ps; i++ {
			y, x := i/dims[2], i%dims[2]
			if z < dims[0]/2 {
				data[z*ps+i] = float32(z)*0.5 + float32(y)*0.25 + float32(x)*0.125
			} else {
				data[z*ps+i] = float32(rng.NormFloat64() * 10)
			}
		}
	}
	return data
}

// TestAutoModeStreamRoundTrip drives the per-chunk adaptive writer end to
// end: WithAutoMode emits a format-v5 container whose chunks may use
// different codecs, and all three consumers (one-shot decoder, sequential
// Reader, random-access ReaderAt) reconstruct it within the bound.
func TestAutoModeStreamRoundTrip(t *testing.T) {
	dims := []int{32, 16, 16}
	data := mixedField(dims)
	absEB := cuszhi.AbsEB(data, 1e-3)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, absEB, WithAutoMode(), WithChunkPlanes(8), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	info, err := cuszhi.Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 5 || !info.HasIndex || info.NumChunks != 4 {
		t.Fatalf("info = %+v", info)
	}
	total := 0
	for _, n := range info.ChunkCodecs {
		total += n
	}
	if total != 4 {
		t.Fatalf("codec histogram %v does not cover 4 chunks", info.ChunkCodecs)
	}

	// One-shot decode.
	full, gotDims, err := cuszhi.Decompress(blob)
	if err != nil || gotDims[0] != 32 {
		t.Fatalf("one-shot decode: %v (dims %v)", err, gotDims)
	}
	if !metrics.WithinBound(data, full, absEB) {
		t.Fatal("auto-mode reconstruction out of bound")
	}

	// Sequential streaming decode.
	r, err := NewReader(bytes.NewReader(blob), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seq, err := r.ReadAllValues()
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if seq[i] != full[i] {
			t.Fatalf("sequential decode diverges at %d", i)
		}
	}

	// Random access through the v5 index.
	ra, err := OpenReaderAt(bytes.NewReader(blob), int64(len(blob)), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Version() != 5 || ra.NumChunks() != 4 {
		t.Fatalf("readerAt: v%d, %d chunks", ra.Version(), ra.NumChunks())
	}
	hist := ra.CodecHistogram()
	sum := 0
	for _, n := range hist {
		sum += n
	}
	if sum != 4 {
		t.Fatalf("ReaderAt codec histogram %v does not cover 4 chunks", hist)
	}
	ps := 16 * 16
	got, err := ra.ReadPlanes(nil, 10, 26) // spans smooth and rough shards
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != full[10*ps+i] {
			t.Fatalf("ReadPlanes diverges from full decode at %d", i)
		}
	}
}

// TestAutoModeAdaptsAcrossShards: on the mixed field the selector must not
// collapse to one codec — the smooth half and the rough half should pick
// different winners (this is the point of per-chunk dispatch).
func TestAutoModeAdaptsAcrossShards(t *testing.T) {
	dims := []int{32, 16, 16}
	data := mixedField(dims)
	absEB := cuszhi.AbsEB(data, 1e-3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, absEB, WithAutoMode(), WithChunkPlanes(16), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := cuszhi.Inspect(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.ChunkCodecs) < 2 {
		t.Fatalf("mixed field selected a single codec: %v", info.ChunkCodecs)
	}
}

// TestAutoModeRelativeEB: per-shard codec selection composes with
// per-shard relative bounds (each shard scores candidates under its own
// resolved absolute bound).
func TestAutoModeRelativeEB(t *testing.T) {
	dims := []int{24, 12, 12}
	data := mixedField(dims)
	relEB := 1e-3
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, relEB, WithAutoMode(), WithRelativeEB(), WithChunkPlanes(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := cuszhi.Inspect(buf.Bytes())
	if err != nil || info.Version != 5 || !info.RelativeEB {
		t.Fatalf("info = %+v (err %v)", info, err)
	}
	recon, _, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := metrics.Range(data)
	bound := relEB * float64(hi-lo) * (1 + 1e-6)
	for i := range data {
		d := float64(data[i]) - float64(recon[i])
		if d > bound || d < -bound {
			t.Fatalf("relative bound violated at %d: %v vs %v", i, data[i], recon[i])
		}
	}
}

// TestAutoSelectionsObservability: an auto-mode Writer records one
// estimator-vs-actual decision per shard, sorted by plane offset, and the
// container's Inspect exposes the per-chunk achieved ratios.
func TestAutoSelectionsObservability(t *testing.T) {
	dims := []int{32, 16, 16}
	data := mixedField(dims)
	absEB := cuszhi.AbsEB(data, 1e-3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims, absEB, WithAutoMode(), WithChunkPlanes(8), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sels := w.AutoSelections()
	if len(sels) != 4 {
		t.Fatalf("got %d selections, want 4: %+v", len(sels), sels)
	}
	for i, s := range sels {
		if s.PlaneOff != i*8 || s.Planes != 8 {
			t.Fatalf("selection %d not sorted by plane offset: %+v", i, s)
		}
		if s.Codec == "" || s.EstBytes <= 0 || s.Bytes <= 0 {
			t.Fatalf("selection %d incomplete: %+v", i, s)
		}
		if s.EstRatio <= 0 || s.Ratio <= 0 {
			t.Fatalf("selection %d ratios unset: %+v", i, s)
		}
		// The estimator's prediction must be in the same universe as the
		// achieved size — a wildly wrong price means selection is blind.
		if f := float64(s.EstBytes) / float64(s.Bytes); f > 8 || f < 1.0/8 {
			t.Fatalf("selection %d estimate %d vs actual %d (off %.1fx)", i, s.EstBytes, s.Bytes, f)
		}
	}

	info, err := cuszhi.Inspect(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.ChunkCRs) != 4 {
		t.Fatalf("Inspect chunk CRs = %v, want 4 entries", info.ChunkCRs)
	}
	// Inspect's CRs divide by whole frame extents (frame header + CRC on
	// top of the payload), so they sit at or slightly below the payload
	// ratio the selection records.
	for i, cr := range info.ChunkCRs {
		if got := sels[i].Ratio; cr > got*1.01 || cr < got*0.80 {
			t.Fatalf("chunk %d: Inspect CR %.3f vs selection CR %.3f", i, cr, got)
		}
	}

	// Non-auto writers report no selections.
	var fixed bytes.Buffer
	wf, err := NewWriter(&fixed, dims, absEB)
	if err != nil {
		t.Fatal(err)
	}
	if err := wf.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := wf.Close(); err != nil {
		t.Fatal(err)
	}
	if got := wf.AutoSelections(); got != nil {
		t.Fatalf("fixed-mode writer reported selections: %+v", got)
	}
}

// TestAutoPolicyThreading: every policy spelling produces a decodable
// container, the throughput policy is allowed to trade ratio for speed but
// only within its slack, and option misuse fails fast at NewWriter.
func TestAutoPolicyThreading(t *testing.T) {
	dims := []int{32, 16, 16}
	data := mixedField(dims)
	absEB := cuszhi.AbsEB(data, 1e-3)

	sizes := map[string]int{}
	for _, pol := range []string{"best-ratio", "throughput", "ratio-floor:4"} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, dims, absEB,
			WithAutoMode(), WithAutoPolicy(pol), WithChunkPlanes(8), WithWorkers(2))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if err := w.WriteValues(data); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		recon, _, err := Decompress(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: decode: %v", pol, err)
		}
		if !metrics.WithinBound(data, recon, absEB) {
			t.Fatalf("%s: reconstruction out of bound", pol)
		}
		sizes[pol] = buf.Len()
	}
	// Throughput may give up at most its slack (15%) plus estimator error
	// against best-ratio; 30% is the generous ceiling.
	if f := float64(sizes["throughput"]) / float64(sizes["best-ratio"]); f > 1.30 {
		t.Fatalf("throughput container %.2fx best-ratio, want <= 1.30x (sizes %v)", f, sizes)
	}

	if _, err := NewWriter(&bytes.Buffer{}, dims, absEB, WithAutoMode(), WithAutoPolicy("bogus")); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewWriter(&bytes.Buffer{}, dims, absEB, WithAutoPolicy("throughput")); err == nil {
		t.Fatal("WithAutoPolicy without auto mode accepted")
	}
}

// TestChunkedAutoOneShot: the non-streaming facade path
// (cuszhi.New(ModeAuto, WithChunkPlanes)) also produces a heterogeneous v5
// container, through core.CompressChunkedAuto.
func TestChunkedAutoOneShot(t *testing.T) {
	dims := []int{32, 12, 12}
	data := mixedField(dims)
	c, err := cuszhi.New(cuszhi.ModeAuto, cuszhi.WithChunkPlanes(16), cuszhi.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	absEB := cuszhi.AbsEB(data, 1e-3)
	blob, err := c.CompressAbs(data, dims, absEB)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cuszhi.Inspect(blob)
	if err != nil || info.Version != 5 {
		t.Fatalf("info = %+v (err %v)", info, err)
	}
	recon, _, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.WithinBound(data, recon, absEB) {
		t.Fatal("chunked auto reconstruction out of bound")
	}
	// The container is seekable like any v5 stream output.
	if _, _, err := ReadPlanesAt(bytes.NewReader(blob), int64(len(blob)), 14, 18); err != nil {
		t.Fatal(err)
	}
}
