// Package szx reimplements the cuSZx/SZx design (Yu et al., 2022), the
// ultra-fast "monolithic" compressor archetype that the cuSZ-Hi paper
// discusses in §2.2 and excludes from its main evaluation for its low
// ratio/quality. It is included here to complete the compressor-archetype
// spectrum (offset-quantization vs Lorenzo vs interpolation vs transform
// vs constant-block).
//
// SZx splits the stream into small blocks and classifies each as
// "constant" (every value within eb of the block mean — stored as one
// float) or "non-constant" (values stored with truncated mantissas:
// leading sign/exponent bits plus only the mantissa bits needed to meet
// eb). Both paths are a single cheap pass, which is the entire point.
//
// The *Ctx entry points thread a reusable arena.Ctx: blocks are grouped
// into chunks whose body buffers, length tables and bit writers persist in
// the context (each parallel kernel owns its own chunk slot), and decode
// buffers come from the arena, so warm contexts run the whole round trip
// with near-zero heap allocations. The wire format is unchanged.
package szx

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("szx: corrupt stream")

const (
	blockVals = 128
	// chunkBlocks groups blocks for parallel encode; per-chunk scratch
	// (body buffer, block lengths, bit writer) persists in the context.
	chunkBlocks = 64
)

// chunksKey holds the per-chunk encode scratch (arena batch slots,
// persistent across Reset so steady-state appends never grow).
var chunksKey = arena.NewAuxKey()

// Batched selects the packed-payload kernels (combined sign+exponent and
// mantissa fields written through bitio.WritePacked64); tests flip it to
// compare against the scalar per-value reference path. Both paths emit
// byte-identical containers.
var Batched = true

// encChunk is one chunk's persistent encode scratch. Exactly one kernel
// invocation touches a given chunk slot per launch.
type encChunk struct {
	body []byte // concatenated block bodies of this chunk
	lens []int  // per-block body lengths
	w    bitio.Writer
}

// mantissaBitsFor returns how many of the 23 mantissa bits must be kept so
// that truncation error stays below eb for values up to maxAbs.
func mantissaBitsFor(maxAbs float32, eb float64) int {
	if maxAbs == 0 {
		return 0
	}
	// Truncating k low mantissa bits of a value with exponent e introduces
	// at most 2^(e-23+k); require that <= eb for the block's max exponent.
	_, e := math.Frexp(float64(maxAbs))
	for keep := 0; keep <= 23; keep++ {
		errBound := math.Ldexp(1, e-keep)
		if errBound <= eb {
			return keep
		}
	}
	return 23
}

// Compress encodes data under absolute error bound eb.
func Compress(dev *gpusim.Device, data []float32, eb float64) ([]byte, error) {
	return CompressCtx(nil, dev, data, eb)
}

// CompressCtx is Compress drawing all working memory from a reusable codec
// context (nil behaves like Compress). The returned container is a fresh
// allocation owned by the caller; only internal scratch is pooled.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, eb float64) ([]byte, error) {
	if eb <= 0 {
		return nil, errors.New("szx: error bound must be positive")
	}
	n := len(data)
	nBlocks := (n + blockVals - 1) / blockVals
	nChunks := (nBlocks + chunkBlocks - 1) / chunkBlocks
	chunks := arena.Slots[encChunk](ctx, chunksKey, nChunks)
	for i := range chunks {
		chunks[i].body = chunks[i].body[:0]
		chunks[i].lens = chunks[i].lens[:0]
	}
	dev.Launch(nChunks, func(c int) {
		co := &chunks[c]
		for b := c * chunkBlocks; b < (c+1)*chunkBlocks && b < nBlocks; b++ {
			lo := b * blockVals
			hi := lo + blockVals
			if hi > n {
				hi = n
			}
			vals := data[lo:hi]
			// Mean and range test for the constant path. The batched kernel
			// splits the finite test (an integer exponent check) from the
			// sum; the sum itself stays a sequential float64 reduction so
			// both paths compute bit-identical means.
			var sum float64
			finite := true
			if Batched {
				for _, v := range vals {
					if math.Float32bits(v)>>23&0xFF == 0xFF {
						finite = false
						break
					}
				}
				if finite {
					for _, v := range vals {
						sum += float64(v)
					}
				}
			} else {
				for _, v := range vals {
					f := float64(v)
					if math.IsNaN(f) || math.IsInf(f, 0) {
						finite = false
						break
					}
					sum += f
				}
			}
			if finite {
				mean := float32(sum / float64(len(vals)))
				constant := true
				for _, v := range vals {
					if math.Abs(float64(v)-float64(mean)) > eb {
						constant = false
						break
					}
				}
				if constant {
					var mb [4]byte
					binary.LittleEndian.PutUint32(mb[:], math.Float32bits(mean))
					co.body = append(co.body, 0x01) // constant block
					co.body = append(co.body, mb[:]...)
					co.lens = append(co.lens, 5)
					continue
				}
			}
			// Non-constant: keep sign+exponent (9 bits) plus enough mantissa.
			// Batched maxAbs compares magnitude bit patterns as integers
			// (IEEE ordering matches unsigned ordering for non-negative
			// floats); when non-finite values are present keep is forced to
			// 23 on both paths, so any maxAbs difference there is moot.
			var maxAbs float32
			if Batched {
				var mb uint32
				for _, v := range vals {
					if b := math.Float32bits(v) &^ (1 << 31); b > mb {
						mb = b
					}
				}
				maxAbs = math.Float32frombits(mb)
			} else {
				for _, v := range vals {
					if a := float32(math.Abs(float64(v))); a > maxAbs {
						maxAbs = a
					}
				}
			}
			keep := mantissaBitsFor(maxAbs, eb)
			if !finite {
				keep = 23 // store losslessly when non-finite values are present
			}
			w := &co.w
			w.Reset()
			w.WriteBits(uint64(keep), 5)
			if Batched {
				// Fuse the two per-value fields into one 9+keep-bit word:
				// WriteBits(se,9) then WriteBits(m,keep) lands se in the low
				// 9 bits LSB-first, exactly se|m<<9 at the combined width,
				// so the packed writer emits a byte-identical payload.
				width := uint(9 + keep)
				var cs [blockVals]uint64
				for i, v := range vals {
					bits := math.Float32bits(v)
					m := uint64(bits>>(23-uint(keep))) & ((1 << uint(keep)) - 1)
					cs[i] = uint64(bits>>23) | m<<9
				}
				w.WritePacked64(cs[:len(vals)], width)
			} else {
				for _, v := range vals {
					bits := math.Float32bits(v)
					// sign+exponent then the kept high mantissa bits.
					w.WriteBits(uint64(bits>>23), 9)
					if keep > 0 {
						w.WriteBits(uint64(bits>>(23-uint(keep)))&((1<<uint(keep))-1), uint(keep))
					}
				}
			}
			payload := w.Bytes()
			co.body = append(co.body, 0x00)
			co.body = append(co.body, payload...)
			co.lens = append(co.lens, 1+len(payload))
		}
	})
	totalBody := 0
	for i := range chunks {
		totalBody += len(chunks[i].body)
	}
	out := make([]byte, 0, totalBody+2*nBlocks+32)
	out = bitio.AppendUvarint(out, uint64(n))
	out = bitio.AppendUint64(out, math.Float64bits(eb))
	out = bitio.AppendUvarint(out, uint64(nBlocks))
	for i := range chunks {
		for _, l := range chunks[i].lens {
			out = bitio.AppendUvarint(out, uint64(l))
		}
	}
	for i := range chunks {
		out = append(out, chunks[i].body...)
	}
	return out, nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, error) {
	return DecompressCtx(nil, dev, blob)
}

// DecompressCtx is Decompress with a reusable context. With a non-nil ctx
// the returned field is context scratch, valid until the next ctx.Reset.
//
//cuszhi:hotpath
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, blob []byte) ([]float32, error) {
	n64, nn := bitio.Uvarint(blob)
	// Cap the element count before any conversion or allocation sized by
	// it: a hostile count must fail cheaply, not force a huge make.
	if nn == 0 || n64 > 1<<33 {
		return nil, ErrCorrupt
	}
	off := nn
	n := int(n64)
	if n < 0 { // int wrap on 32-bit platforms
		return nil, ErrCorrupt
	}
	if off+8 > len(blob) {
		return nil, ErrCorrupt
	}
	off += 8 // eb is informational on decode
	nBlocks64, nn := bitio.Uvarint(blob[off:])
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off += nn
	want := (n + blockVals - 1) / blockVals
	if nBlocks64 != uint64(want) {
		return nil, ErrCorrupt
	}
	lens := ctx.Ints(want)
	total := 0
	for i := range lens {
		l, nn := bitio.Uvarint(blob[off:])
		// Cap each block length before the int conversion: a huge wire
		// value would overflow the running total negative and slip past
		// the bounds check into panicking slice expressions below.
		if nn == 0 || l > uint64(len(blob)) {
			return nil, ErrCorrupt
		}
		off += nn
		lens[i] = int(l)
		total += int(l)
		if total > len(blob) {
			return nil, ErrCorrupt
		}
	}
	if off+total > len(blob) {
		return nil, ErrCorrupt
	}
	starts := ctx.Ints(want)
	pos := off
	for i, l := range lens {
		starts[i] = pos
		pos += l
	}
	out := ctx.F32(n)
	ok := ctx.Bytes(want)
	clear(ok)
	dev.Launch(want, func(b int) {
		lo := b * blockVals
		hi := lo + blockVals
		if hi > n {
			hi = n
		}
		body := blob[starts[b] : starts[b]+lens[b]]
		if len(body) == 0 {
			return
		}
		switch body[0] {
		case 0x01:
			if len(body) != 5 {
				return
			}
			mean := math.Float32frombits(binary.LittleEndian.Uint32(body[1:]))
			for i := lo; i < hi; i++ {
				out[i] = mean
			}
			ok[b] = 1
		case 0x00:
			var r bitio.Reader
			r.ResetBytes(body[1:])
			keep64, err := r.ReadBits(5)
			if err != nil || keep64 > 23 {
				return
			}
			keep := uint(keep64)
			if Batched {
				var cs [blockVals]uint64
				c := cs[:hi-lo]
				if r.ReadPacked64(c, 9+keep) != nil {
					return
				}
				o := out[lo:hi:hi]
				for i, cv := range c {
					bits := uint32(cv&0x1FF)<<23 | uint32(cv>>9)<<(23-keep)
					o[i] = math.Float32frombits(bits)
				}
				ok[b] = 1
				return
			}
			for i := lo; i < hi; i++ {
				se, err := r.ReadBits(9)
				if err != nil {
					return
				}
				bits := uint32(se) << 23
				if keep > 0 {
					m, err := r.ReadBits(keep)
					if err != nil {
						return
					}
					bits |= uint32(m) << (23 - keep)
				}
				out[i] = math.Float32frombits(bits)
			}
			ok[b] = 1
		}
	})
	for _, o := range ok {
		if o == 0 {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}
