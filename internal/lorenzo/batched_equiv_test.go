package lorenzo

import (
	"math"
	"slices"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// f32BitsEqual compares float32 slices bitwise, so NaN-bearing fields
// (datagen produces some for degenerate shapes) still compare meaningfully.
func f32BitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBatchedMatchesScalar is the equivalence property for the wide
// kernels: over every datagen field and a dim set that exercises
// non-multiple-of-8 extents, rank-1/2 grids and width-1 rows, the batched
// path must produce byte-identical quant codes, escapes, value outliers,
// histogram and reconstruction to the scalar reference.
func TestBatchedMatchesScalar(t *testing.T) {
	defer func() { Batched = true }()
	dev := gpusim.New(4)
	dimsList := [][]int{
		{16, 16, 16},
		{33, 17, 9}, // no extent a multiple of 8
		{7, 5, 3},   // rows shorter than one lane group
		{6, 9, 1},   // width-1 rows: halo column only
		{37, 53},    // rank 2
		{1009},      // rank 1, prime length
	}
	for _, name := range datagen.Names() {
		for _, dims := range dimsList {
			f, err := datagen.Generate(name, dims, 11)
			if err != nil {
				t.Fatalf("%s %v: %v", name, dims, err)
			}
			eb := metrics.AbsEB(f.Data, 1e-2)
			g := NewGrid(dims)

			Batched = false
			want, err := Compress(dev, f.Data, g, eb)
			if err != nil {
				t.Fatalf("%s %v scalar: %v", name, dims, err)
			}
			wantRecon, err := Decompress(dev, want, g, eb)
			if err != nil {
				t.Fatalf("%s %v scalar decompress: %v", name, dims, err)
			}

			Batched = true
			got, err := Compress(dev, f.Data, g, eb)
			if err != nil {
				t.Fatalf("%s %v batched: %v", name, dims, err)
			}
			if !slices.Equal(got.Codes, want.Codes) {
				t.Fatalf("%s %v: codes diverge", name, dims)
			}
			if !slices.Equal(got.Escapes, want.Escapes) {
				t.Fatalf("%s %v: escapes diverge", name, dims)
			}
			if !slices.Equal(got.ValOutliers.Pos, want.ValOutliers.Pos) ||
				!f32BitsEqual(got.ValOutliers.Val, want.ValOutliers.Val) {
				t.Fatalf("%s %v: value outliers diverge", name, dims)
			}
			if !slices.Equal(got.Freq, want.Freq) {
				t.Fatalf("%s %v: histogram diverges", name, dims)
			}
			gotRecon, err := Decompress(dev, got, g, eb)
			if err != nil {
				t.Fatalf("%s %v batched decompress: %v", name, dims, err)
			}
			if !f32BitsEqual(gotRecon, wantRecon) {
				t.Fatalf("%s %v: reconstruction diverges", name, dims)
			}
			// Cross-check: batched decode of the scalar result too.
			cross, err := Decompress(dev, want, g, eb)
			if err != nil || !f32BitsEqual(cross, wantRecon) {
				t.Fatalf("%s %v: cross decode diverges (%v)", name, dims, err)
			}
		}
	}
}
