package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/interp"
	"repro/internal/lccodec"
	"repro/internal/lorenzo"
	"repro/internal/metrics"
	"repro/internal/szp"
	"repro/internal/szx"
)

// setBatchedKernels flips every package-level batched-kernel toggle at
// once, selecting either the wide fast paths or their scalar references.
func setBatchedKernels(v bool) {
	lorenzo.Batched = v
	interp.Batched = v
	lccodec.Batched = v
	szp.Batched = v
	szx.Batched = v
}

// f32BitsEqual compares float32 slices bitwise, so NaN-bearing fields
// (datagen produces some for degenerate shapes) still compare meaningfully.
func f32BitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBatchedContainersMatchScalar is the end-to-end equivalence
// property: with all batched kernels disabled, every assembly mode and
// backend codec must still emit byte-identical containers and decode to
// byte-identical fields, across datagen fields and dim shapes that hit
// the scalar tails (non-multiple-of-8 extents, rank-1/2 grids). This is
// what licenses "batched by default": the wide paths are a pure
// performance substitution, invisible on the wire.
func TestBatchedContainersMatchScalar(t *testing.T) {
	defer setBatchedKernels(true)
	dev := gpusim.New(4)
	dimsList := [][]int{
		{24, 16, 16},
		{33, 17, 9},
		{41, 77},
		{999},
	}
	modes := []string{"cusz-l", "hi-cr", "hi-tp"}
	backends := []string{"fzgpu", "szp", "szx"}
	for _, name := range datagen.Names() {
		for _, dims := range dimsList {
			f, err := datagen.Generate(name, dims, 17)
			if err != nil {
				t.Fatalf("%s %v: %v", name, dims, err)
			}
			eb := metrics.AbsEB(f.Data, 1e-2)
			if !(eb > 0) || math.IsInf(eb, 0) {
				// datagen emits all-NaN fields for some degenerate shapes;
				// core.Compress rejects the NaN bound. The package-level
				// equivalence tests cover NaN data.
				continue
			}
			for _, mode := range modes {
				opts, err := ModeOptions(mode)
				if err != nil {
					t.Fatal(err)
				}
				setBatchedKernels(false)
				want, err := Compress(dev, f.Data, f.Dims, eb, opts)
				if err != nil {
					t.Fatalf("%s %v %s scalar: %v", name, dims, mode, err)
				}
				setBatchedKernels(true)
				got, err := Compress(dev, f.Data, f.Dims, eb, opts)
				if err != nil {
					t.Fatalf("%s %v %s batched: %v", name, dims, mode, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s %v %s: containers diverge", name, dims, mode)
				}
				gotRecon, _, err := Decompress(dev, got)
				if err != nil {
					t.Fatalf("%s %v %s batched decode: %v", name, dims, mode, err)
				}
				setBatchedKernels(false)
				wantRecon, _, err := Decompress(dev, want)
				if err != nil {
					t.Fatalf("%s %v %s scalar decode: %v", name, dims, mode, err)
				}
				if !f32BitsEqual(gotRecon, wantRecon) {
					t.Fatalf("%s %v %s: reconstructions diverge", name, dims, mode)
				}
				setBatchedKernels(true)
			}
			for _, bk := range backends {
				cd, ok := CodecByName(bk)
				if !ok {
					t.Fatalf("backend %q not registered", bk)
				}
				setBatchedKernels(false)
				want, err := CompressChunkedCodec(dev, f.Data, f.Dims, eb, cd, 8)
				if err != nil {
					t.Fatalf("%s %v %s scalar: %v", name, dims, bk, err)
				}
				setBatchedKernels(true)
				got, err := CompressChunkedCodec(dev, f.Data, f.Dims, eb, cd, 8)
				if err != nil {
					t.Fatalf("%s %v %s batched: %v", name, dims, bk, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s %v %s: containers diverge", name, dims, bk)
				}
				gotRecon, _, err := Decompress(dev, got)
				if err != nil {
					t.Fatalf("%s %v %s batched decode: %v", name, dims, bk, err)
				}
				setBatchedKernels(false)
				wantRecon, _, err := Decompress(dev, want)
				if err != nil {
					t.Fatalf("%s %v %s scalar decode: %v", name, dims, bk, err)
				}
				if !f32BitsEqual(gotRecon, wantRecon) {
					t.Fatalf("%s %v %s: reconstructions diverge", name, dims, bk)
				}
				setBatchedKernels(true)
			}
		}
	}
}
