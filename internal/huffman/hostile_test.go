package huffman

import (
	"errors"
	"testing"

	"repro/internal/bitio"
)

// hostileHeader builds a container header with a valid 2-symbol code table
// and the given (possibly hostile) symbol/chunk/chunk-count fields.
func hostileHeader(nSyms, chunk, nChunks uint64) []byte {
	hdr := bitio.AppendUvarint(nil, 2)         // alphabet
	hdr = appendLengthsRLE(hdr, []uint8{1, 1}) // both symbols 1 bit
	hdr = bitio.AppendUvarint(hdr, nSyms)
	hdr = bitio.AppendUvarint(hdr, chunk)
	hdr = bitio.AppendUvarint(hdr, nChunks)
	return hdr
}

// TestDecodeHostileCounts pins the wire caps on the three header counts:
// 2^63-scale values used to wrap the chunk-count ceiling division and size
// the output slice, and a merely-huge symbol count is an allocation bomb
// the payload can never justify (each symbol costs >= 1 bit).
func TestDecodeHostileCounts(t *testing.T) {
	cases := []struct {
		name                  string
		nSyms, chunk, nChunks uint64
	}{
		{"nSyms 2^63", 1 << 63, 4096, 1},
		{"chunk 2^63", 4096, 1 << 63, 1},
		{"nChunks 2^63", 4096, 4096, 1 << 63},
		{"nSyms alloc bomb", 1 << 40, 1 << 40, 1},
	}
	for _, tc := range cases {
		blob := hostileHeader(tc.nSyms, tc.chunk, tc.nChunks)
		blob = bitio.AppendUvarint(blob, 1) // one declared chunk payload byte
		blob = append(blob, 0xFF)
		out, err := Decode(dev, blob)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got (%d symbols, %v), want ErrCorrupt", tc.name, len(out), err)
		}
	}
}
