// Package pipeline provides the concurrency plumbing behind the chunked
// streaming compressor: a bounded worker pool that executes jobs in
// parallel but delivers their results strictly in submission order.
//
// Ordered delivery is what lets the stream framer overlap shard compression
// with output: shard k+1..k+backlog compress on the pool while shard k's
// frame is being written, yet the container bytes come out deterministic
// and sequential. The same pool drives chunk-parallel decompression.
package pipeline

import (
	"fmt"
	"sync"
)

type result[T any] struct {
	v   T
	err error
}

type job[T any] struct {
	fn  func() (T, error)
	out chan result[T]
}

// Pool runs submitted jobs on a fixed set of workers and hands results back
// in the order the jobs were submitted. Submit blocks once more than
// `backlog` jobs are in flight, bounding memory for streaming use.
//
// Submit and Next may be called from different goroutines (the streaming
// writer submits from Write and collects from a flusher goroutine), but
// each must be called from a single goroutine at a time.
type Pool[T any] struct {
	jobs    chan job[T]
	pending chan chan result[T]
	wg      sync.WaitGroup
	closed  bool
}

// New returns a Pool with the given parallel width and in-flight bound.
// workers <= 0 selects 1; backlog <= 0 selects 2*workers.
func New[T any](workers, backlog int) *Pool[T] {
	if workers <= 0 {
		workers = 1
	}
	if backlog <= 0 {
		backlog = 2 * workers
	}
	p := &Pool[T]{
		jobs:    make(chan job[T], backlog),
		pending: make(chan chan result[T], backlog),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				v, err := j.fn()
				j.out <- result[T]{v, err}
			}
		}()
	}
	return p
}

// Submit enqueues fn. It blocks while the in-flight backlog is full.
func (p *Pool[T]) Submit(fn func() (T, error)) {
	out := make(chan result[T], 1)
	p.pending <- out
	p.jobs <- job[T]{fn, out}
}

// Next returns the result of the oldest submitted job that has not yet been
// collected, blocking until it completes. ok is false when the pool is
// closed and every result has been drained.
func (p *Pool[T]) Next() (v T, err error, ok bool) {
	out, open := <-p.pending
	if !open {
		return v, nil, false
	}
	r := <-out
	return r.v, r.err, true
}

// Close marks the job stream complete. After every submitted result has
// been collected with Next, Next reports ok=false. Close must be called
// by the submitting goroutine; submitting after Close panics.
func (p *Pool[T]) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.jobs)
	close(p.pending)
}

// Wait blocks until all workers have exited. Call after Close.
func (p *Pool[T]) Wait() { p.wg.Wait() }

// Map runs fn(0..n-1) on up to `workers` goroutines and returns the results
// in index order. The first error wins and is returned after all in-flight
// jobs settle; results are then invalid.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorker(workers, n, func(_, i int) (T, error) { return fn(i) })
}

// MapWorker is Map where fn also receives the executing worker's slot id in
// [0, workers): jobs running concurrently always see distinct slots, so
// callers can maintain per-worker state (codec contexts, scratch arenas)
// without locking. The slot count it passes never exceeds min(workers, n).
func MapWorker[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("pipeline: negative job count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(0, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v, err := fn(worker, i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
