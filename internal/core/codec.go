// Codec registry: the single dispatch surface for compressor assemblies.
//
// The paper's central observation is that no single assembly (cuSZ-Hi-CR,
// cuSZ-Hi-TP, cuSZ-I, cuSZ-IB, cuSZ-L) wins on every field, so this
// repository treats an assembly as a first-class Codec with a stable 1-byte
// wire ID. The registry replaces the predictor/pipeline switch ladders that
// used to live in Compress/Decompress: mode names resolve through it
// (ModeOptions), chunked format-v5 containers record a codec ID per chunk
// frame, and decoders dispatch unknown wire IDs to ErrCorrupt instead of
// panicking. Future chunk backends (fzgpu, bitcomp containers) register new
// IDs without touching the container plumbing.
//
// Registration happens at package initialization; the registry is
// read-only afterwards, so decode paths read it without locking.
package core

import (
	"fmt"
	"sort"

	"repro/internal/arena"
	"repro/internal/gpusim"
)

// CodecID is the stable 1-byte wire identifier of a registered codec, as
// recorded per chunk frame (and in the chunk-index footer) of format-v5
// containers. 0 is reserved as invalid; IDs are append-only — never reuse
// or renumber a shipped ID.
type CodecID byte

// Wire IDs of the built-in assemblies.
const (
	codecInvalid CodecID = 0
	CodecHiCR    CodecID = 1 // cuSZ-Hi-CR
	CodecHiTP    CodecID = 2 // cuSZ-Hi-TP
	CodecCuszI   CodecID = 3 // cuSZ-I
	CodecCuszIB  CodecID = 4 // cuSZ-IB
	CodecCuszL   CodecID = 5 // cuSZ-L
)

// Codec is one registered compressor assembly: a named, wire-identified
// pair of compress/decompress entry points producing self-contained (v1)
// shard payloads.
type Codec interface {
	// Name is the codec's mode name ("hi-cr", "cusz-l", ...), the string
	// accepted by ModeOptions and the CLI -mode flag.
	Name() string
	// ID is the codec's wire identifier, recorded per chunk in v5 frames.
	ID() CodecID
	// Compress encodes data (dims slowest-first) under absolute bound eb,
	// drawing scratch from ctx (nil allowed). The returned container is a
	// fresh allocation owned by the caller.
	Compress(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error)
	// Decompress decodes a payload this codec produced. With a non-nil ctx
	// the returned field and dims are context scratch (valid until Reset).
	Decompress(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]float32, []int, error)
}

// codecEntry caches registration-time metadata next to the codec so hot
// decode paths never rebuild it.
type codecEntry struct {
	codec Codec
	// mode is CodecMode(options) for assembly codecs — the packed
	// predictor/pipeline byte a v5 frame must also carry; hasMode is false
	// for codecs that do not expose Options.
	mode    byte
	hasMode bool
	// display is the assembly's Options.Name ("cuSZ-Hi-CR", ...), cached
	// so ResolveCodec never rebuilds Options per lookup.
	display string
}

var (
	codecsByID   = map[CodecID]codecEntry{}
	codecsByName = map[string]codecEntry{}
)

// optioned is the optional interface assembly codecs implement so the
// registry can derive their frame codec-mode byte and resolve Options.
type optioned interface {
	Options() Options
}

// RegisterCodec adds c to the registry. It must be called during package
// initialization (the registry is lock-free read-only afterwards) and
// panics on a zero ID or a duplicate ID/name — both are programming errors.
func RegisterCodec(c Codec) {
	id, name := c.ID(), c.Name()
	if id == codecInvalid {
		panic("core: codec ID 0 is reserved")
	}
	if _, dup := codecsByID[id]; dup {
		panic(fmt.Sprintf("core: duplicate codec ID %d", id))
	}
	if _, dup := codecsByName[name]; dup {
		panic(fmt.Sprintf("core: duplicate codec name %q", name))
	}
	e := codecEntry{codec: c}
	if oc, ok := c.(optioned); ok {
		opts := oc.Options()
		e.mode = CodecMode(opts)
		e.hasMode = true
		e.display = opts.Name
	}
	codecsByID[id] = e
	codecsByName[name] = e
}

// CodecByID returns the codec registered under the wire ID. It runs once
// per chunk on the mixed-codec decode path.
//
//cuszhi:hotpath
func CodecByID(id CodecID) (Codec, bool) {
	e, ok := codecsByID[id]
	return e.codec, ok
}

// CodecByName returns the codec registered under the mode name.
func CodecByName(name string) (Codec, bool) {
	e, ok := codecsByName[name]
	return e.codec, ok
}

// Codecs lists every registered codec, ordered by wire ID.
func Codecs() []Codec {
	out := make([]Codec, 0, len(codecsByID))
	for _, e := range codecsByID {
		out = append(out, e.codec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// CodecLabel formats a codec wire ID for diagnostics: "name (id N)" for a
// registered codec, "unknown id N" otherwise. Cross-check error messages
// use it so a frame/footer disagreement names the codecs involved.
func CodecLabel(id CodecID) string {
	if e, ok := codecsByID[id]; ok {
		return fmt.Sprintf("%s (id %d)", e.codec.Name(), id)
	}
	return fmt.Sprintf("unknown id %d", id)
}

// codecFrameMode returns the packed predictor/pipeline byte the registered
// codec's v5 frames carry, or ok=false when the codec exposes no Options.
//
//cuszhi:hotpath
func codecFrameMode(id CodecID) (byte, bool) {
	e, ok := codecsByID[id]
	if !ok || !e.hasMode {
		return 0, false
	}
	return e.mode, true
}

// OptionsForFrameMode maps a chunk frame's packed codec-mode byte back to
// the canonical Options of the registered assembly that writes it, or
// ok=false when no registered assembly uses that byte. Appendable-store
// recovery uses it to re-derive a crashed v4 writer's codec set from the
// frames already on disk.
func OptionsForFrameMode(mode byte) (Options, bool) {
	for _, e := range codecsByID {
		if e.hasMode && e.mode == mode {
			return e.codec.(optioned).Options(), true
		}
	}
	return Options{}, false
}

// ResolveCodec maps a compressor assembly back to its registered codec (by
// the assembly's display name, which the Options constructors set and the
// registry caches at registration). It is the library-facing reverse
// lookup for callers holding an Options value who need a wire ID — e.g.
// to write v5 frames for a fixed assembly. Custom Options variants
// (SZ3-like, ablation stacks) have no wire ID and resolve to an error —
// they can compress one-shot and v2–v4 containers, but not
// per-chunk-dispatched v5 ones.
func ResolveCodec(opts Options) (Codec, error) {
	for _, e := range codecsByID {
		if e.hasMode && e.display == opts.Name {
			return e.codec, nil
		}
	}
	return nil, fmt.Errorf("core: assembly %q has no registered codec", opts.Name)
}

// assemblyCodec adapts an Options constructor to the Codec interface. The
// constructor runs per use so callers can never mutate shared state (the
// Options carry a PerLevel slice).
type assemblyCodec struct {
	id      CodecID
	name    string
	newOpts func() Options
}

func (a *assemblyCodec) Name() string     { return a.name }
func (a *assemblyCodec) ID() CodecID      { return a.id }
func (a *assemblyCodec) Options() Options { return a.newOpts() }

func (a *assemblyCodec) Compress(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error) {
	return CompressCtx(ctx, dev, data, dims, eb, a.newOpts())
}

func (a *assemblyCodec) Decompress(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]float32, []int, error) {
	return DecompressCtx(ctx, dev, payload)
}

func init() {
	RegisterCodec(&assemblyCodec{id: CodecHiCR, name: "hi-cr", newOpts: HiCR})
	RegisterCodec(&assemblyCodec{id: CodecHiTP, name: "hi-tp", newOpts: HiTP})
	RegisterCodec(&assemblyCodec{id: CodecCuszI, name: "cusz-i", newOpts: CuszI})
	RegisterCodec(&assemblyCodec{id: CodecCuszIB, name: "cusz-ib", newOpts: CuszIB})
	RegisterCodec(&assemblyCodec{id: CodecCuszL, name: "cusz-l", newOpts: CuszL})
}
