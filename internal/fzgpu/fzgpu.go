// Package fzgpu reimplements the FZ-GPU baseline (Zhang et al., 2023):
// cuSZ's dual-quantization Lorenzo decomposition with the Huffman stage
// replaced by a throughput-oriented bit-shuffle plus zero-word elimination,
// trading compression ratio for speed (Fig. 2 of the cuSZ-Hi paper).
//
// The *Ctx entry points draw every working buffer (lattice, code bytes,
// escape/outlier collectors, pipeline stage buffers) from a reusable
// arena.Ctx, so a warm context compresses and decompresses shard after
// shard with near-zero heap allocations — the property the format-v5
// chunk-codec adapter in internal/core relies on.
package fzgpu

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/lccodec"
	"repro/internal/lorenzo"
	"repro/internal/quant"
)

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("fzgpu: corrupt stream")

var pipeline = lccodec.MustParse("BIT1-RZE4")

// Compress encodes data (any dims, slowest first) under absolute bound eb.
func Compress(dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error) {
	return CompressCtx(nil, dev, data, dims, eb)
}

// CompressCtx is Compress drawing all working memory from a reusable codec
// context (nil behaves like Compress). The returned container is a fresh
// allocation owned by the caller; only internal scratch is pooled.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error) {
	g := lorenzo.NewGrid(dims)
	res, err := lorenzo.CompressCtx(ctx, dev, data, g, eb)
	if err != nil {
		return nil, err
	}
	// Re-center codes around zero (zigzag) so the bit shuffle concentrates
	// ones into few planes, then serialize little-endian and de-redundate.
	center := int64(lorenzo.Radius + 1)
	codes := res.Codes
	codeBytes := ctx.Bytes(2 * len(codes))
	dev.LaunchChunks(len(codes), 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zz := bitio.ZigZag(int64(codes[i]) - center)
			binary.LittleEndian.PutUint16(codeBytes[2*i:], uint16(zz))
		}
	})
	payload, err := pipeline.EncodeCtx(ctx, dev, codeBytes)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(payload)+16*len(res.Escapes)+8*res.ValOutliers.Len()+64)
	out = bitio.AppendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = bitio.AppendUint64(out, math.Float64bits(eb))
	out = bitio.AppendUvarint(out, uint64(len(res.Escapes)))
	for _, e := range res.Escapes {
		out = bitio.AppendUvarint(out, bitio.ZigZag(e))
	}
	out = res.ValOutliers.Serialize(out)
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, error) {
	recon, _, err := DecompressCtx(nil, dev, blob)
	return recon, err
}

// DecompressCtx is Decompress with a reusable context, additionally
// returning the dims the container self-describes (slowest first). With a
// non-nil ctx the returned field and dims are context scratch, valid until
// the next ctx.Reset.
//
//cuszhi:hotpath
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, blob []byte) ([]float32, []int, error) {
	nd64, n := bitio.Uvarint(blob)
	if n == 0 || nd64 == 0 || nd64 > 8 {
		return nil, nil, ErrCorrupt
	}
	off := n
	dims := ctx.Ints(int(nd64))
	total := 1
	for i := range dims {
		v, n := bitio.Uvarint(blob[off:])
		if n == 0 || v == 0 || v > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		off += n
		dims[i] = int(v)
		total *= int(v)
		if total <= 0 || total > 1<<33 {
			return nil, nil, ErrCorrupt
		}
	}
	if off+8 > len(blob) {
		return nil, nil, ErrCorrupt
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[off:]))
	off += 8
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, nil, ErrCorrupt
	}
	nEsc64, n := bitio.Uvarint(blob[off:])
	if n == 0 || nEsc64 > uint64(total) {
		return nil, nil, ErrCorrupt
	}
	off += n
	escapes := ctx.I64(int(nEsc64))
	for i := range escapes {
		z, n := bitio.Uvarint(blob[off:])
		if n == 0 {
			return nil, nil, ErrCorrupt
		}
		off += n
		escapes[i] = bitio.UnZigZag(z)
	}
	var outliers quant.Outliers
	used, err := quant.ParseOutliersInto(ctx, &outliers, blob[off:])
	if err != nil {
		return nil, nil, err
	}
	off += used
	payLen64, n := bitio.Uvarint(blob[off:])
	// Cap before the int conversion (strictly below 2^31 so the int can
	// never wrap, even on 32-bit): a huge wire length would overflow
	// negative and slip past the bounds check into a panicking slice.
	if n == 0 || payLen64 >= 1<<31 || off+n+int(payLen64) > len(blob) {
		return nil, nil, ErrCorrupt
	}
	off += n
	codeBytes, err := pipeline.DecodeCtx(ctx, dev, blob[off:off+int(payLen64)])
	if err != nil {
		return nil, nil, err
	}
	if len(codeBytes) != 2*total {
		return nil, nil, ErrCorrupt
	}
	codes := ctx.U16(total)
	center := int64(lorenzo.Radius + 1)
	dev.LaunchChunks(total, 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zz := uint64(binary.LittleEndian.Uint16(codeBytes[2*i:]))
			codes[i] = uint16(bitio.UnZigZag(zz) + center)
		}
	})
	//lint:ignore hotpathalloc one stack-escaping descriptor per op, amortized over the field
	res := &lorenzo.Result{Codes: codes, Escapes: escapes, ValOutliers: outliers}
	recon, err := lorenzo.DecompressCtx(ctx, dev, res, lorenzo.NewGrid(dims), eb)
	if err != nil {
		return nil, nil, err
	}
	return recon, dims, nil
}
