// Quickstart: compress a small synthetic hydrodynamics field with cuSZ-Hi,
// decompress it, and verify the error bound — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"repro/cuszhi"
)

func main() {
	// A Miranda-like 64x96x96 density field (use your own []float32 in
	// practice; dims are listed slowest-first).
	data, fieldDims, err := cuszhi.GenerateDataset("miranda", []int{64, 96, 96}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Compress under a value-range-relative error bound of 1e-3.
	const relEB = 1e-3
	c, err := cuszhi.New(cuszhi.ModeCR)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := c.Compress(data, fieldDims, relEB)
	if err != nil {
		log.Fatal(err)
	}

	// Decompress and evaluate.
	recon, dims, err := c.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	stats := cuszhi.Evaluate(data, blob, recon, cuszhi.AbsEB(data, relEB))

	fmt.Printf("field:             %v (%d values, %d bytes)\n", dims, len(recon), stats.OrigBytes)
	fmt.Printf("compressed:        %d bytes\n", stats.CompBytes)
	fmt.Printf("compression ratio: %.1f (%.3f bits/value)\n", stats.Ratio, stats.BitRate)
	fmt.Printf("PSNR:              %.1f dB\n", stats.PSNR)
	fmt.Printf("max error:         %.3g (bound %.3g) within=%v\n", stats.MaxErr, stats.AbsErrorEB, stats.WithinEB)
	if !stats.WithinEB {
		log.Fatal("error bound violated")
	}
}
