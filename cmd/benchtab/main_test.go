package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpusim"
)

// TestDriversRun exercises the cheaper experiment drivers end to end (the
// expensive ones are covered by bench_test.go at the repo root and by the
// archived artifacts).
func TestDriversRun(t *testing.T) {
	dev := gpusim.New(4)
	dir := t.TempDir()
	*flagOut = dir
	defer func() { *flagOut = "" }()
	if err := table1(dev); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if err := table5(dev); err != nil {
		t.Fatalf("table5: %v", err)
	}
	if err := fig5(dev); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	// fig5 must have produced its CSV artifact.
	if _, err := os.Stat(filepath.Join(dir, "fig5.csv")); err != nil {
		t.Fatalf("fig5.csv missing: %v", err)
	}
}

func TestWriteSlicePGM(t *testing.T) {
	dir := t.TempDir()
	*flagOut = dir
	defer func() { *flagOut = "" }()
	data := make([]float32, 4*6*8)
	for i := range data {
		data[i] = float32(i)
	}
	if err := writeSlicePGM("t.pgm", data, []int{4, 6, 8}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "t.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:2]) != "P5" {
		t.Fatalf("not a PGM: %q", raw[:2])
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("cuSZ-Hi-CR"); got != "cuSZ_Hi_CR" {
		t.Fatalf("sanitize = %q", got)
	}
}
