// Package repro's benchmarks regenerate every table and figure of the
// cuSZ-Hi paper as testing.B benchmarks (scaled-down datasets; run
// cmd/benchtab for the full printed tables):
//
//	BenchmarkTable1  Bitcomp CR on compressor outputs
//	BenchmarkTable4  fixed-eb compression ratio grid
//	BenchmarkTable5  ablation variants
//	BenchmarkFig5    level-order code reordering
//	BenchmarkFig6    lossless pipelines on quant codes
//	BenchmarkFig8    rate-distortion points
//	BenchmarkFig9    quality at matched CR
//	BenchmarkFig10   compression/decompression throughput
//
// Ratio-style results are attached as custom metrics (CR, PSNR_dB) so
// `go test -bench` output doubles as an experiment record.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bitcomp"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/quant"
)

var bdev = gpusim.New(0)

func mustDataset(b *testing.B, name string) *datagen.Field {
	b.Helper()
	f, err := experiments.Dataset(name, false, 1)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkTable1 measures the Bitcomp-surrogate ratio on each compressor's
// output (Nyx, eb=1e-2).
func BenchmarkTable1(b *testing.B) {
	f := mustDataset(b, "nyx")
	for _, c := range experiments.Table4Compressors() {
		b.Run(c.Name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				blob, err := c.Compress(bdev, f.Data, f.Dims, 1e-2)
				if err != nil {
					b.Fatal(err)
				}
				ratio, err = bitcomp.Ratio(bdev, blob)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ratio, "BitcompCR")
		})
	}
}

// BenchmarkTable4 measures fixed-eb compression ratios (representative
// subset of the full grid; see `benchtab table4`).
func BenchmarkTable4(b *testing.B) {
	for _, ds := range []string{"nyx", "miranda"} {
		f := mustDataset(b, ds)
		for _, eb := range []float64{1e-2, 1e-3} {
			for _, c := range experiments.Table4Compressors() {
				b.Run(fmt.Sprintf("%s/eb=%.0e/%s", ds, eb, c.Name), func(b *testing.B) {
					b.SetBytes(int64(f.SizeBytes()))
					var cr float64
					for i := 0; i < b.N; i++ {
						blob, err := c.Compress(bdev, f.Data, f.Dims, eb)
						if err != nil {
							b.Fatal(err)
						}
						cr = metrics.CR(f.SizeBytes(), len(blob))
					}
					b.ReportMetric(cr, "CR")
				})
			}
		}
	}
}

// BenchmarkTable5 measures the ablation variants (Nyx, eb=1e-2).
func BenchmarkTable5(b *testing.B) {
	f := mustDataset(b, "nyx")
	absEB := metrics.AbsEB(f.Data, 1e-2)
	for _, v := range core.AblationVariants() {
		b.Run(v.Name, func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			var cr float64
			for i := 0; i < b.N; i++ {
				blob, err := core.Compress(bdev, f.Data, f.Dims, absEB, v)
				if err != nil {
					b.Fatal(err)
				}
				cr = metrics.CR(f.SizeBytes(), len(blob))
			}
			b.ReportMetric(cr, "CR")
		})
	}
}

// BenchmarkFig5 measures the Eq. 3 level-order reordering of quant codes
// (Miranda, eb=1e-3) and its effect on the TP pipeline size.
func BenchmarkFig5(b *testing.B) {
	f := mustDataset(b, "miranda")
	codes, err := experiments.HiQuantCodes(bdev, f, 1e-3, false)
	if err != nil {
		b.Fatal(err)
	}
	perm := quant.LevelOrderPerm(f.Dims, 16)
	dst := make([]uint8, len(codes))
	b.Run("reorder", func(b *testing.B) {
		b.SetBytes(int64(len(codes)))
		for i := 0; i < b.N; i++ {
			quant.Apply(bdev, perm, codes, dst)
		}
	})
	b.Run("invert", func(b *testing.B) {
		b.SetBytes(int64(len(codes)))
		for i := 0; i < b.N; i++ {
			quant.Invert(bdev, perm, dst, codes)
		}
	})
}

// BenchmarkFig6 measures the lossless pipelines on cuSZ-Hi quant codes
// (Nyx, eb=1e-3), reporting CR; ns/op gives the throughput axis.
func BenchmarkFig6(b *testing.B) {
	f := mustDataset(b, "nyx")
	codes, err := experiments.HiQuantCodes(bdev, f, 1e-3, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range experiments.Fig6Codecs() {
		b.Run(c.Name, func(b *testing.B) {
			b.SetBytes(int64(len(codes)))
			var cr float64
			for i := 0; i < b.N; i++ {
				enc, err := c.Encode(bdev, codes)
				if err != nil {
					b.Fatal(err)
				}
				dec, err := c.Decode(bdev, enc)
				if err != nil || len(dec) != len(codes) {
					b.Fatalf("decode failed: %v", err)
				}
				cr = float64(len(codes)) / float64(len(enc))
			}
			b.ReportMetric(cr, "CR")
		})
	}
}

// BenchmarkFig8 measures representative rate-distortion points.
func BenchmarkFig8(b *testing.B) {
	f := mustDataset(b, "miranda")
	comps := append(experiments.Table4Compressors(), experiments.CuZFP(8))
	for _, c := range comps {
		b.Run(c.Name, func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			var r experiments.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = experiments.Run(bdev, c, f, 1e-3)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.BitRate, "bits/val")
			b.ReportMetric(r.PSNR, "PSNR_dB")
		})
	}
}

// BenchmarkFig9 measures quality at a matched compression ratio: cuSZ-Hi-CR
// vs cuSZ-IB on JHTDB.
func BenchmarkFig9(b *testing.B) {
	f := mustDataset(b, "jhtdb")
	cases := []struct {
		c  experiments.Compressor
		eb float64
	}{
		{experiments.HiCR(), 1e-2},
		{experiments.CuszIB(), 3e-2}, // lands near the same CR
	}
	for _, tc := range cases {
		b.Run(tc.c.Name, func(b *testing.B) {
			var r experiments.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = experiments.Run(bdev, tc.c, f, tc.eb)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.CR, "CR")
			b.ReportMetric(r.PSNR, "PSNR_dB")
		})
	}
}

// BenchmarkFig10 measures compression and decompression throughput
// separately for every compressor (JHTDB, eb=1e-2). bytes/s is the Fig. 10
// axis.
func BenchmarkFig10(b *testing.B) {
	f := mustDataset(b, "jhtdb")
	comps := append(experiments.Table4Compressors(), experiments.CuZFP(8))
	for _, c := range comps {
		blob, err := c.Compress(bdev, f.Data, f.Dims, 1e-2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("comp/"+c.Name, func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(bdev, f.Data, f.Dims, 1e-2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decomp/"+c.Name, func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := c.Decompress(bdev, blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
