// Turbulence: a JHTDB-like rate-distortion study. Turbulence archives are
// queried for statistics, so the operator needs the bitrate/PSNR frontier
// to pick an error bound; this example sweeps bounds with the public API
// and prints the rate-distortion curve (the per-dataset view of the
// paper's Fig. 8).
package main

import (
	"fmt"
	"log"

	"repro/cuszhi"
)

func main() {
	data, dims, err := cuszhi.GenerateDataset("jhtdb", []int{96, 96, 96}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JHTDB-like turbulence %v (%d values)\n\n", dims, len(data))

	c, err := cuszhi.New(cuszhi.ModeCR)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %12s %10s %12s\n", "rel eb", "ratio", "bits/value", "PSNR", "max err")
	var prevPSNR float64
	for _, relEB := range []float64{1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4} {
		blob, err := c.Compress(data, dims, relEB)
		if err != nil {
			log.Fatal(err)
		}
		recon, _, err := c.Decompress(blob)
		if err != nil {
			log.Fatal(err)
		}
		st := cuszhi.Evaluate(data, blob, recon, cuszhi.AbsEB(data, relEB))
		if !st.WithinEB {
			log.Fatalf("eb %g: bound violated", relEB)
		}
		if st.PSNR < prevPSNR {
			log.Fatalf("rate-distortion not monotone at eb %g", relEB)
		}
		prevPSNR = st.PSNR
		fmt.Printf("%-10.0e %10.1f %12.3f %10.1f %12.3g\n", relEB, st.Ratio, st.BitRate, st.PSNR, st.MaxErr)
	}
	fmt.Println("\nPick the knee of the curve: one more decade of eb costs ~2-3x in ratio.")
}
