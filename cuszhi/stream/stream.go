// Package stream compresses and decompresses fields as a sequence of
// chunks, so callers can process data larger than memory and overlap
// codec work across CPU cores.
//
// A Writer accepts raw little-endian float32 bytes (or values), shards
// them into slabs of chunkPlanes planes along the slowest dimension,
// compresses the shards concurrently on a worker pool, and frames them
// into a multi-chunk container on the underlying io.Writer — with the
// frames emitted in order, so the output is deterministic. By default the
// container is seekable format v4: a chunk-index footer at the tail lets
// OpenReaderAt decode any plane range while reading only the covering
// shards. With WithAutoMode the container is heterogeneous format v5:
// every shard is compressed by whichever registered codec scores best on
// a sample of it, and the chunk frames and index footer record the
// per-chunk codec wire IDs. A Reader reverses the process sequentially,
// decompressing chunks concurrently while serving the reconstruction as a
// byte stream. All
// formats interoperate with the one-shot API: cuszhi.Decompress reads
// every container version and stream.NewReader reads v1 blobs.
//
//	w, _ := stream.NewWriter(f, dims, absEB, stream.WithMode(cuszhi.ModeTP))
//	io.Copy(w, rawFile) // little-endian float32 bytes
//	err := w.Close()
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/cuszhi"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/pipeline"
)

// errReaderClosed is the sticky error a Reader reports after Close.
var errReaderClosed = errors.New("stream: reader closed")

// DefaultChunkPlanes is the default shard thickness along the slowest
// dimension: thick enough that per-shard codec overheads (Huffman tables,
// anchor grids) stay small, thin enough that a 3-D field yields plenty of
// shards to parallelize over.
const DefaultChunkPlanes = 32

type config struct {
	mode        cuszhi.Mode
	modeSet     bool // an explicit WithMode/WithAutoMode was passed
	dev         *gpusim.Device
	chunkPlanes int
	relative    bool
	index       bool
	retry       core.RetryPolicy
	degraded    bool
	fill        float32 // plane filler for degraded reads (default NaN)
	policy      string  // auto-mode selection policy spelling (default best-ratio)
}

// Option customizes a Writer, Reader, or one-shot call.
type Option func(*config)

// WithMode selects the compressor assembly (default cuszhi.ModeCR).
func WithMode(m cuszhi.Mode) Option {
	return func(c *config) { c.mode, c.modeSet = m, true }
}

// WithWorkers sets the parallel width (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.dev = gpusim.New(n) }
}

// WithChunkPlanes sets the shard thickness in planes along the slowest
// dimension (default DefaultChunkPlanes).
func WithChunkPlanes(n int) Option {
	return func(c *config) { c.chunkPlanes = n }
}

// WithRelativeEB makes the Writer treat its error bound as value-range-
// relative, resolved per shard from that shard's own range (format v3):
// no pre-pass over the field is needed, and because a shard's range never
// exceeds the global range, the reconstruction also satisfies the bound
// relative to the full field's range.
func WithRelativeEB() Option {
	return func(c *config) { c.relative = true }
}

// WithIndex controls whether the Writer finishes its container with a
// chunk-index footer (format v4), making the output seekable through
// OpenReaderAt. It is on by default; WithIndex(false) reverts to the plain
// v2/v3 layout for consumers pinned to the older formats. Auto mode
// requires the index (its v5 footer records each chunk's codec ID).
func WithIndex(on bool) Option {
	return func(c *config) { c.index = on }
}

// WithAutoMode makes the Writer pick the best codec per shard: each shard
// is scored against the auto-select candidates by the estimator cascade
// (histogram entropy models for the assemblies, a strided probe for the
// backends) inside the worker that compresses it — only the winner
// compresses the shard for real — and the container is written as format
// v5 with the winning codec's wire ID recorded per chunk frame and in the
// chunk-index footer. Shorthand for WithMode(cuszhi.ModeAuto).
func WithAutoMode() Option {
	return func(c *config) { c.mode, c.modeSet = cuszhi.ModeAuto, true }
}

// WithAutoPolicy sets how auto mode ranks the candidates' size estimates:
// "best-ratio" (default) takes the smallest estimate, "throughput" the
// fastest codec within 15% of it, and "ratio-floor:F" the fastest codec
// whose estimated compression ratio is at least F. Only meaningful with
// WithAutoMode; NewWriter rejects unknown spellings.
func WithAutoPolicy(name string) Option {
	return func(c *config) { c.policy = name }
}

// WithRetry makes readers reissue transiently failing I/O (an EIO from a
// flaky device, an NFS hiccup) up to attempts total tries per read, sleeping
// baseDelay before the second try and doubling from there (capped at 1s).
// Permanent failures — corruption, truncation — are never retried. Default
// off; when off the fault-free path pays nothing, not even a wrapper.
func WithRetry(attempts int, baseDelay time.Duration) Option {
	return func(c *config) { c.retry = core.RetryPolicy{Attempts: attempts, BaseDelay: baseDelay} }
}

// WithDegraded makes reads survive damaged chunks instead of aborting: a
// chunk whose CRC, codec cross-check, or decode fails is skipped, the
// planes it covered are filled with the WithFillValue sentinel (default
// NaN), and the read reports a *DamageReport error listing every filled
// region. Data is never returned unflagged: a nil error still means every
// plane is bit-exact.
func WithDegraded() Option {
	return func(c *config) { c.degraded = true }
}

// WithFillValue sets the value degraded reads write into planes lost to
// damaged chunks (default NaN, which no bounded-error codec emits unless
// the input held NaN).
func WithFillValue(v float32) Option {
	return func(c *config) { c.fill = v }
}

func newConfig(opts []Option) config {
	c := config{mode: cuszhi.ModeCR, dev: gpusim.Default, chunkPlanes: DefaultChunkPlanes,
		index: true, fill: float32(math.NaN())}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// ---------------------------------------------------------------------------
// Writer.

// wframe is a compressed chunk frame annotated with its plane span and
// (auto mode) its codec, so the flusher can build the v4/v5 chunk index as
// the frames stream out.
type wframe struct {
	data     []byte
	planeOff int
	planes   int
	codec    core.CodecID // the shard's codec wire ID (v5 containers)
}

// Writer streams a field into a chunked container. Feed it exactly
// prod(dims) float32 values (as little-endian bytes via Write, or directly
// via WriteValues), then Close. A Writer from OpenAppend instead grows an
// existing store: it takes any number of whole planes, and its Close
// reseals the store (header rewrite + fsync-ordered footer) rather than
// just finishing a fixed-size container.
type Writer struct {
	w         io.Writer
	f         File  // appendable sink (grow mode); nil for plain writers
	grow      bool  // appendable store: no declared total, Close reseals
	ver       int   // container version being continued (grow mode)
	headerLen int64 // global header length on f (grow mode)
	dev       *gpusim.Device
	opts      core.Options
	cd        core.Codec // fixed backend chunk codec (format v5), nil otherwise
	dims      []int
	eb        float64              // absolute bound, or relative when rel
	rel       bool                 // per-shard relative bounds (format v3/v4)
	index     bool                 // finish with a chunk-index footer (format v4/v5)
	auto      bool                 // per-shard codec selection (format v5)
	pol       core.SelectionPolicy // auto-mode ranking policy
	rangeHdr  bool                 // frames carry per-shard min/max (v3 layout)
	ps        int                  // elements per plane
	cp        int                  // planes per shard
	tot       int                  // elements in the whole field (0 in grow mode)
	plane     int                  // planes submitted so far

	partial []byte         // trailing bytes of an incomplete value (<4)
	vals    []float32      // accumulating current shard
	conv    []float32      // scratch for Write's byte->float conversion
	slabs   chan []float32 // recycled shard slabs from completed jobs

	// idx/wOff are owned by the flusher goroutine until flushed closes;
	// Close reads them afterwards (the channel close orders the accesses).
	idx  []core.IndexEntry
	wOff int64 // bytes written to w so far

	pool    *pipeline.Pool[wframe]
	flushed chan struct{}
	closeMu sync.Mutex // serializes Close end to end
	mu      sync.Mutex // guards werr and closed
	werr    error      // first flusher error
	closed  bool

	selMu sync.Mutex      // guards sels (appended by pool workers)
	sels  []AutoSelection // auto mode: one record per shard, sorted at read
}

// AutoSelection records one auto-mode shard decision: which codec the
// estimator picked and how its predicted size compared to the bytes the
// winner actually produced — the estimator-vs-actual delta that makes the
// selection observable.
type AutoSelection struct {
	PlaneOff int     // first plane the shard covers
	Planes   int     // planes in the shard
	Codec    string  // winning codec's wire name
	EstBytes int     // estimator's predicted payload size
	Bytes    int     // payload size the winner actually produced
	EstRatio float64 // predicted compression ratio
	Ratio    float64 // achieved compression ratio
}

// NewWriter writes the container header to w and returns a Writer for a
// field of the given dims (slowest first) under error bound eb — absolute
// by default, or value-range-relative with WithRelativeEB (resolved per
// shard). The container is seekable format v4 (chunk-index footer) unless
// WithIndex(false) selects the plain v2/v3 layout. With WithAutoMode (or
// WithMode(cuszhi.ModeAuto)) each shard is compressed by whichever
// registered codec scores best on a sample of it, and the container is
// format v5 — the per-chunk codec IDs live in the frames and the index
// footer, so the index cannot be disabled in auto mode.
func NewWriter(w io.Writer, dims []int, eb float64, opt ...Option) (*Writer, error) {
	cfg := newConfig(opt)
	auto := cfg.mode == cuszhi.ModeAuto
	var opts core.Options
	var cd core.Codec
	var pol core.SelectionPolicy
	var err error
	if auto {
		if !cfg.index {
			return nil, fmt.Errorf("stream: mode %q writes per-chunk codec IDs to the index footer; drop WithIndex(false)", cfg.mode)
		}
		if pol, err = core.PolicyByName(cfg.policy); err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
	} else {
		if cfg.policy != "" {
			return nil, fmt.Errorf("stream: WithAutoPolicy(%q) needs WithAutoMode; mode is %q", cfg.policy, cfg.mode)
		}
		opts, err = core.ModeOptions(string(cfg.mode))
		if err != nil {
			// Backend chunk codecs (fzgpu/szp/szx) have no Options assembly;
			// they stream as format v5 with the codec's wire ID per chunk.
			backend, ok := core.CodecByName(string(cfg.mode))
			if !ok {
				return nil, fmt.Errorf("stream: unknown mode %q", cfg.mode)
			}
			if !cfg.index {
				return nil, fmt.Errorf("stream: mode %q writes per-chunk codec IDs to the index footer; drop WithIndex(false)", cfg.mode)
			}
			cd = backend
		}
	}
	var header []byte
	switch {
	case auto || cd != nil:
		header, err = core.AppendChunkedHeaderV5(nil, dims, eb, cfg.relative, cfg.chunkPlanes)
	case cfg.index:
		header, err = core.AppendChunkedHeaderV4(nil, dims, eb, cfg.relative, cfg.chunkPlanes)
	case cfg.relative:
		header, err = core.AppendChunkedHeaderV3(nil, dims, eb, true, cfg.chunkPlanes)
	default:
		header, err = core.AppendChunkedHeader(nil, dims, eb, cfg.chunkPlanes)
	}
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(header); err != nil {
		return nil, err
	}
	ps := planeElems(dims)
	sw := &Writer{
		w:        w,
		dev:      cfg.dev,
		opts:     opts,
		cd:       cd,
		dims:     append([]int(nil), dims...),
		eb:       eb,
		rel:      cfg.relative,
		index:    cfg.index,
		auto:     auto,
		pol:      pol,
		rangeHdr: cfg.index || cfg.relative,
		ps:       ps,
		cp:       cfg.chunkPlanes,
		tot:      ps * dims[0],
		wOff:     int64(len(header)),
		slabs:    make(chan []float32, 2*cfg.dev.Workers()+2),
		pool:     pipeline.New[wframe](cfg.dev.Workers(), 0),
		flushed:  make(chan struct{}),
	}
	sw.vals = make([]float32, 0, sw.cp*ps)
	go sw.flusher()
	return sw, nil
}

// flusher drains compressed frames in submission order and writes them to
// the underlying writer, recording each frame's byte offset and plane span
// for the chunk index. After an error it keeps draining (discarding
// results) so submitters never block on a full backlog.
func (w *Writer) flusher() {
	defer close(w.flushed)
	for {
		frame, err, ok := w.pool.Next()
		if !ok {
			return
		}
		if err == nil && w.err() == nil {
			if _, err = w.w.Write(frame.data); err == nil {
				w.idx = append(w.idx, core.IndexEntry{
					FrameOff: w.wOff, PlaneOff: frame.planeOff, Planes: frame.planes,
					Codec: frame.codec})
				w.wOff += int64(len(frame.data))
			}
		}
		if err != nil {
			w.setErr(err)
		}
	}
}

func (w *Writer) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}

func (w *Writer) setErr(err error) {
	w.mu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	w.mu.Unlock()
}

func (w *Writer) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// Write accepts little-endian float32 bytes. It implements io.Writer so a
// raw field file can be piped in with io.Copy. The consumed-byte count it
// returns always matches the stream's state: bytes count as consumed once
// they sit in the pending-partial buffer or in a value the shard
// accumulator absorbed — a value rejected outright (e.g. overfeeding the
// declared dims) leaves its bytes unconsumed.
func (w *Writer) Write(p []byte) (int, error) {
	if w.isClosed() {
		return 0, fmt.Errorf("stream: write after Close")
	}
	n := len(p)
	if len(w.partial) > 0 {
		need := 4 - len(w.partial)
		if need > len(p) {
			w.partial = append(w.partial, p...)
			return n, w.err()
		}
		w.partial = append(w.partial, p[:need]...)
		p = p[need:]
		v := math.Float32frombits(binary.LittleEndian.Uint32(w.partial))
		before := w.plane*w.ps + len(w.vals)
		err := w.WriteValues([]float32{v})
		if err != nil && w.plane*w.ps+len(w.vals) == before {
			// The assembled value was rejected before being absorbed, so
			// the bytes this call moved into the partial buffer were not
			// consumed: put the buffer back and report them unconsumed.
			w.partial = w.partial[:4-need]
			return 0, err
		}
		w.partial = w.partial[:0]
		if err != nil {
			return n - len(p), err
		}
	}
	if w.conv == nil {
		w.conv = make([]float32, 1<<14)
	}
	for len(p) >= 4 {
		c := len(p) / 4
		if c > len(w.conv) {
			c = len(w.conv)
		}
		for i := 0; i < c; i++ {
			w.conv[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
		}
		before := w.plane*w.ps + len(w.vals)
		if err := w.WriteValues(w.conv[:c]); err != nil {
			// Count whatever prefix of this batch was absorbed before the
			// failure; the rest of p stays unconsumed.
			return n - len(p) + 4*(w.plane*w.ps+len(w.vals)-before), err
		}
		p = p[4*c:]
	}
	w.partial = append(w.partial, p...)
	return n, w.err()
}

// WriteValues accepts float32 values directly, copying them slab-wise into
// the accumulating shard (no per-value bookkeeping on the ingest path).
func (w *Writer) WriteValues(vs []float32) error {
	if w.isClosed() {
		return fmt.Errorf("stream: write after Close")
	}
	for len(vs) > 0 {
		// A grow-mode writer has no declared total: every whole plane is
		// welcome, and Close seals however many arrived.
		pushed := w.plane*w.ps + len(w.vals)
		if !w.grow && pushed >= w.tot {
			err := fmt.Errorf("stream: more than %d values written for dims %v", w.tot, w.dims)
			w.setErr(err) // sticky: Close must report it too
			return err
		}
		space := w.cp*w.ps - len(w.vals)
		if !w.grow {
			if rem := w.tot - pushed; space > rem {
				space = rem
			}
		}
		c := space
		if c > len(vs) {
			c = len(vs)
		}
		w.vals = append(w.vals, vs[:c]...)
		vs = vs[c:]
		if len(w.vals) == w.cp*w.ps {
			w.submitShard()
		}
	}
	return w.err()
}

// submitShard hands the accumulated slab to the pool and starts a fresh
// accumulation buffer (recycled from a completed shard when one is free).
// Each job compresses through a pooled codec context, so steady-state
// streaming performs near-zero allocations per shard.
func (w *Writer) submitShard() {
	shard := w.vals
	offset := w.plane
	planes := len(shard) / w.ps
	w.plane += planes
	select {
	case s := <-w.slabs:
		w.vals = s[:0]
	default:
		w.vals = make([]float32, 0, w.cp*w.ps)
	}
	dev, eb, rel, rangeHdr, auto, opts, cd := w.dev, w.eb, w.rel, w.rangeHdr, w.auto, w.opts, w.cd
	shardDims := append([]int{planes}, w.dims[1:]...)
	w.pool.Submit(func() (wframe, error) {
		ctx := arena.Get()
		defer arena.Put(ctx)
		absEB := eb
		var minV, maxV float32
		if rangeHdr {
			minV, maxV, _ = core.ShardRange(shard) // all-NaN: zero range below
		}
		if rel {
			rng := float64(maxV) - float64(minV)
			if rng > 0 {
				absEB = eb * rng
			} else {
				// Constant shard: the field's true range is unknown here,
				// so any range-derived fallback could exceed the global
				// bound. Instead pick a bound below half a float32 ulp of
				// the value — mag*1e-8 for normal magnitudes, floored at
				// 1e-46 (< half the smallest denormal spacing) — so the
				// reconstruction is bit-exact and satisfies every
				// possible global bound.
				absEB = math.Abs(float64(minV)) * 1e-8
				if absEB < 1e-46 {
					absEB = 1e-46
				}
			}
		}
		if cd != nil {
			// Fixed backend codec: every shard is compressed by the one
			// registered codec and framed with its wire ID (format v5).
			payload, err := cd.Compress(ctx, dev, shard, shardDims, absEB)
			if err != nil {
				return wframe{}, fmt.Errorf("stream: shard at plane %d: %w", offset, err)
			}
			frame := core.AppendChunkFrameV5(nil, cd, offset, shardDims, minV, maxV, payload)
			select {
			case w.slabs <- shard:
			default:
			}
			return wframe{data: frame, planeOff: offset, planes: planes, codec: cd.ID()}, nil
		}
		if auto {
			// Per-shard adaptive dispatch: the estimator cascade scores the
			// candidates on a sample of this shard under its resolved
			// absolute bound, the policy picks, the winner alone compresses,
			// and the frame carries its wire ID (format v5). The pick — with
			// its estimator-vs-actual delta — is recorded for
			// AutoSelections.
			frame, id, pick, err := core.CompressShardAutoPolicy(ctx, dev, shard, shardDims, offset, absEB, minV, maxV, w.pol)
			if err != nil {
				return wframe{}, fmt.Errorf("stream: shard at plane %d: %w", offset, err)
			}
			w.selMu.Lock()
			w.sels = append(w.sels, AutoSelection{
				PlaneOff: offset, Planes: planes, Codec: pick.Codec,
				EstBytes: pick.EstBytes, Bytes: pick.ActualBytes,
				EstRatio: pick.EstRatio, Ratio: pick.ActualRatio,
			})
			w.selMu.Unlock()
			select {
			case w.slabs <- shard:
			default:
			}
			return wframe{data: frame, planeOff: offset, planes: planes, codec: id}, nil
		}
		payload, err := core.CompressCtx(ctx, dev, shard, shardDims, absEB, opts)
		if err != nil {
			return wframe{}, fmt.Errorf("stream: shard at plane %d: %w", offset, err)
		}
		var frame []byte
		if rangeHdr {
			frame = core.AppendChunkFrameV3(nil, opts, offset, shardDims, minV, maxV, payload)
		} else {
			frame = core.AppendChunkFrame(nil, opts, offset, shardDims, payload)
		}
		select {
		case w.slabs <- shard: // recycle the slab for a future shard
		default:
		}
		return wframe{data: frame, planeOff: offset, planes: planes}, nil
	})
}

// AutoSelections reports the per-shard decisions an auto-mode Writer has
// made so far, sorted by plane offset: the winning codec and the
// estimator's predicted size and ratio next to what the winner actually
// produced. Call it after Close for the complete container; it returns nil
// for non-auto writers. The slice is a copy, safe to keep.
func (w *Writer) AutoSelections() []AutoSelection {
	w.selMu.Lock()
	out := append([]AutoSelection(nil), w.sels...)
	w.selMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].PlaneOff < out[j].PlaneOff })
	return out
}

// Close flushes the final (possibly short) shard, waits for all frames to
// reach the underlying writer, and verifies the full field was supplied.
// For a grow-mode Writer (OpenAppend) it instead reseals the store around
// the old and new chunks together. Close is idempotent and safe to race
// with itself: every call returns the writer's first error, and the worker
// pool is shut down exactly once.
func (w *Writer) Close() error {
	w.closeMu.Lock()
	defer w.closeMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.err()
	}
	w.closed = true
	w.mu.Unlock()
	var closeErr error
	switch {
	case len(w.partial) != 0:
		closeErr = fmt.Errorf("stream: %d trailing bytes do not form a float32", len(w.partial))
	case len(w.vals) > 0 && len(w.vals)%w.ps != 0:
		closeErr = fmt.Errorf("stream: field truncated mid-plane (%d stray values)", len(w.vals)%w.ps)
	default:
		if len(w.vals) > 0 {
			w.submitShard()
		}
		if !w.grow && w.plane != w.dims[0] {
			closeErr = fmt.Errorf("stream: got %d of %d planes for dims %v", w.plane, w.dims[0], w.dims)
		}
	}
	w.pool.Close()
	<-w.flushed
	w.pool.Wait()
	if closeErr != nil {
		w.setErr(closeErr) // sticky: a repeated Close reports the failure too
	}
	if w.grow {
		// Reseal the store around old + new chunks. On any prior error the
		// store is left unsealed instead: a footer must never bless a tail
		// the flusher did not finish — Repair recovers the CRC-valid prefix.
		if w.err() == nil {
			if err := w.seal(); err != nil {
				w.setErr(err)
			}
		}
		return w.err()
	}
	if w.index && w.err() == nil {
		// Every frame reached the sink; finish the container with the
		// chunk-index footer so the output is seekable from its tail. Auto
		// and backend-codec modes write the v5 footer, whose entries carry
		// the codec IDs.
		var footer []byte
		if w.auto || w.cd != nil {
			footer = core.AppendChunkIndexFooterV5(nil, w.wOff, w.idx)
		} else {
			footer = core.AppendChunkIndexFooter(nil, w.wOff, w.idx)
		}
		if _, err := w.w.Write(footer); err != nil {
			w.setErr(err)
		}
	}
	return w.err()
}

// Planes reports how many whole planes the writer's container covers so
// far: shards already submitted plus, once Close flushes it, the final
// short shard. For an OpenAppend writer this starts at the store's
// recovered plane count.
func (w *Writer) Planes() int { return w.plane }

// seal commits a grow-mode store: header rewritten for the grown plane
// count, stale tail truncated, footer written tail-last, all fsync-ordered.
// Only called after the flusher drained cleanly, so idx and wOff are
// final and every frame is on the sink.
func (w *Writer) seal() error {
	if w.plane == 0 {
		return errors.New("stream: store holds no complete chunks")
	}
	dims := append([]int(nil), w.dims...)
	dims[0] = w.plane
	return sealStore(w.f, &sealSpec{
		ver: w.ver, dims: dims, eb: w.eb, rel: w.rel, cp: w.cp,
		headerLen: w.headerLen, entries: w.idx, framesEnd: w.wOff,
	})
}

// ---------------------------------------------------------------------------
// Reader.

// Reader streams the reconstruction of a compressed container as
// little-endian float32 bytes. It decodes chunked (v2–v5) containers
// chunk-by-chunk with concurrent workers; v1 (one-shot) blobs are decoded
// whole, so the formats are interchangeable at this API.
//
// A chunked Reader decodes exactly one container and then reports EOF
// without requiring the source to end (so it works on sockets and pipes
// held open by the producer). It buffers internally, so it may read ahead
// past the container's end — don't expect the source to be positioned
// exactly after the container; in particular a v4 container's chunk-index
// footer is simply left behind (or buffered over), never decoded. To
// reject trailing bytes strictly, decode the blob with Decompress instead.
type Reader struct {
	dims  []int
	eb    float64
	relEB bool // v3: eb is value-range-relative, resolved per shard

	pool   *pipeline.Pool[[]byte]
	quit   chan struct{} // closed by Close; stops the feeder
	cur    []byte        // undelivered bytes of the current shard
	err    error         // sticky
	done   bool
	closed bool

	// Degraded mode (WithDegraded): damaged chunks are filled, not fatal.
	degraded bool
	fill     float32
	damageMu sync.Mutex
	damaged  []ChunkDamage
}

// NewReader parses the container header from r and returns a Reader. The
// field's dims are available immediately via Dims. WithRetry reissues
// transiently failing source reads; WithDegraded survives damaged chunks
// (see Damage).
func NewReader(r io.Reader, opt ...Option) (*Reader, error) {
	cfg := newConfig(opt)
	br := bufio.NewReader(cfg.retry.WrapReader(r))
	pre, err := br.Peek(5)
	if err != nil {
		return nil, core.ErrCorrupt
	}
	version, ok := core.SniffVersion(pre)
	if !ok {
		return nil, core.ErrCorrupt // not a container: refuse before slurping
	}
	if version == 1 { // v1 one-shot blob: decode whole.
		blob, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		recon, dims, err := core.Decompress(cfg.dev, blob)
		if err != nil {
			return nil, err
		}
		sr := &Reader{dims: dims, done: true}
		// The blob just decoded, so a failing Inspect means the header is
		// corrupt in a way the decoder tolerated — surface it rather than
		// silently reporting EB() == 0.
		info, err := core.Inspect(blob)
		if err != nil {
			return nil, err
		}
		sr.eb = info.EB
		sr.cur = valueBytes(recon)
		return sr, nil
	}
	// Count the bytes consumed past this point, so the feeder knows each
	// frame's byte offset and can localize damage in error text.
	cr := &countReader{r: br}
	h, err := core.ReadChunkedHeader(cr)
	if err != nil {
		return nil, err
	}
	sr := &Reader{
		dims:     h.Dims,
		eb:       h.EB,
		relEB:    h.RelEB,
		pool:     pipeline.New[[]byte](cfg.dev.Workers(), 0),
		quit:     make(chan struct{}),
		degraded: cfg.degraded,
		fill:     cfg.fill,
	}
	go sr.feed(cr, cfg.dev, h, sr.pool)
	return sr, nil
}

// Close releases the Reader's workers without requiring a full drain. A
// Reader read to EOF cleans up on its own; call Close when abandoning one
// early, or defer it unconditionally. Close and Read must not be called
// concurrently.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.done = true
	r.cur = nil
	if r.err == nil {
		// Distinct from io.EOF so an abandoned reader is never mistaken
		// for a completely consumed one.
		r.err = errReaderClosed
	}
	if r.pool != nil {
		close(r.quit)
		// Drain in-flight results so a feeder blocked on a full backlog
		// unblocks, sees quit, and closes the pool; workers then exit.
		pool := r.pool
		r.pool = nil
		go func() {
			for {
				if _, _, ok := pool.Next(); !ok {
					return
				}
			}
		}()
	}
	return nil
}

// feed scans chunk frames sequentially and submits their decompression to
// the pool; Read collects shards in order. Each job decodes through a
// pooled codec context and serializes the slab to bytes before the context
// is recycled. The pool is passed explicitly because Close detaches r.pool
// while the feeder may still be running.
//
// In degraded mode the payload CRC is checked here (ReadChunkFrameRaw
// leaves the stream positioned at the next frame even when the payload is
// rotten), so a damaged chunk is recorded and replaced by filler planes
// while the walk continues. Structural damage — an unparseable frame
// header, a plane-offset mismatch — still aborts: past it the stream
// position is indeterminate.
func (r *Reader) feed(cr *countReader, dev *gpusim.Device, h *core.ChunkedInfo, pool *pipeline.Pool[[]byte]) {
	defer pool.Close()
	nextPlane := 0
	ps := planeElems(h.Dims)
	for i := 0; i < h.NumChunks; i++ {
		select {
		case <-r.quit:
			return
		default:
		}
		frameOff := cr.n
		var c *core.ChunkInfo
		var payload []byte
		var err error
		if r.degraded {
			c, payload, err = core.ReadChunkFrameRaw(cr, h)
		} else {
			c, payload, err = core.ReadChunkFrame(cr, h)
		}
		if err == nil && c.Offset != nextPlane {
			err = core.ErrCorrupt
		}
		if err != nil {
			err = fmt.Errorf("stream: chunk %d @0x%x: %w", i, frameOff, err)
			pool.Submit(func() ([]byte, error) { return nil, err })
			return
		}
		nextPlane += c.Dims[0]
		if r.degraded {
			if verr := core.VerifyChunkPayload(c, payload); verr != nil {
				r.recordDamage(ChunkDamage{
					Chunk: i, Offset: frameOff, PlaneOff: c.Offset, Planes: c.Dims[0], Err: verr})
				n := c.Dims[0] * ps
				pool.Submit(func() ([]byte, error) { return fillBytes(n, r.fill), nil })
				continue
			}
		}
		pool.Submit(func() ([]byte, error) {
			ctx := arena.Get()
			defer arena.Put(ctx)
			recon, err := core.DecompressShardCtx(ctx, dev, c, payload)
			if err != nil {
				if r.degraded {
					// The payload CRC passed but decode failed (rot in the
					// uncovered frame-header bytes): fill rather than abort.
					r.recordDamage(ChunkDamage{
						Chunk: i, Offset: frameOff, PlaneOff: c.Offset, Planes: c.Dims[0], Err: err})
					return fillBytes(c.Dims[0]*ps, r.fill), nil
				}
				return nil, fmt.Errorf("stream: chunk %d @0x%x: %w", i, frameOff, err)
			}
			return valueBytes(recon), nil
		})
	}
	if nextPlane != h.Dims[0] {
		pool.Submit(func() ([]byte, error) { return nil, core.ErrCorrupt })
	}
	// Unlike the one-shot blob decoder (which rejects trailing bytes —
	// a blob is exactly one container), the streaming reader stops after
	// one container without probing for EOF: probing would block forever
	// on a socket or pipe the producer keeps open.
}

// recordDamage appends one damaged-chunk record (decode jobs run
// concurrently, so the slice is mutex-guarded).
func (r *Reader) recordDamage(d ChunkDamage) {
	r.damageMu.Lock()
	r.damaged = append(r.damaged, d)
	r.damageMu.Unlock()
}

// Damage reports what a degraded Reader filled instead of decoding: nil
// when every delivered plane is bit-exact, else a report listing each
// damaged chunk. Call it after draining the Reader — damage is recorded as
// chunks are encountered, so a mid-stream call may miss later chunks.
func (r *Reader) Damage() *DamageReport {
	r.damageMu.Lock()
	defer r.damageMu.Unlock()
	if len(r.damaged) == 0 {
		return nil
	}
	chunks := append([]ChunkDamage(nil), r.damaged...)
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].Chunk < chunks[j].Chunk })
	return &DamageReport{Chunks: chunks}
}

// fillBytes returns n float32 values of v as little-endian bytes — the
// filler a degraded read delivers for planes lost to a damaged chunk.
func fillBytes(n int, v float32) []byte {
	bits := math.Float32bits(v)
	out := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(out[4*i:], bits)
	}
	return out
}

// Dims returns the field's dims, slowest first.
func (r *Reader) Dims() []int { return append([]int(nil), r.dims...) }

// EB returns the container's error bound: absolute, or value-range-
// relative when RelativeEB reports true.
func (r *Reader) EB() float64 { return r.eb }

// RelativeEB reports whether the container's bound is value-range-relative
// (format v3), resolved per shard from each shard's own range.
func (r *Reader) RelativeEB() bool { return r.relEB }

// Read serves the reconstructed field as little-endian float32 bytes.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n := 0
	for n < len(p) {
		if len(r.cur) == 0 {
			if r.done {
				if n > 0 {
					return n, nil
				}
				r.err = io.EOF
				return 0, io.EOF
			}
			shard, err, ok := r.pool.Next()
			if !ok {
				r.done = true
				continue
			}
			if err != nil {
				r.err = err
				if n > 0 {
					return n, nil
				}
				return 0, err
			}
			r.cur = shard
		}
		c := copy(p[n:], r.cur)
		n += c
		r.cur = r.cur[c:]
	}
	return n, nil
}

// ReadAllValues drains the reader into a []float32.
func (r *Reader) ReadAllValues() ([]float32, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

func valueBytes(vs []float32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// ---------------------------------------------------------------------------
// One-shot conveniences.

// Compress encodes data into a chunked container under a value-range-
// relative error bound, compressing shards concurrently.
func Compress(data []float32, dims []int, relEB float64, opt ...Option) ([]byte, error) {
	return CompressAbs(data, dims, cuszhi.AbsEB(data, relEB), opt...)
}

// CompressAbs is Compress with an absolute error bound.
func CompressAbs(data []float32, dims []int, absEB float64, opt ...Option) ([]byte, error) {
	cfg := newConfig(opt)
	c, err := cuszhi.New(cfg.mode,
		cuszhi.WithWorkers(cfg.dev.Workers()), cuszhi.WithChunkPlanes(cfg.chunkPlanes))
	if err != nil {
		return nil, err
	}
	return c.CompressAbs(data, dims, absEB)
}

// Decompress decodes a container of either format, reassembling v2 chunks
// concurrently.
func Decompress(blob []byte, opt ...Option) ([]float32, []int, error) {
	cfg := newConfig(opt)
	return core.Decompress(cfg.dev, blob)
}
