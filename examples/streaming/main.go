// Streaming: compress a field through the chunked parallel pipeline
// without ever holding the whole container (or, on the write side, the
// whole raw field) in memory — the pattern for fields larger than RAM.
//
// The writer shards the field into slabs of planes along the slowest
// dimension, compresses shards concurrently, and frames them into a
// multi-chunk container (seekable v4 by default; see examples/seek); the
// reader decompresses chunk-by-chunk, also concurrently. Both sides
// interoperate with the one-shot API.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math"

	"repro/cuszhi"
	"repro/cuszhi/stream"
)

func main() {
	dims := []int{64, 96, 96}
	data, _, err := cuszhi.GenerateDataset("miranda", dims, 1)
	if err != nil {
		log.Fatal(err)
	}
	absEB := cuszhi.AbsEB(data, 1e-3)

	// Compress: feed values plane-by-plane, as if reading from disk.
	// (Any io.Writer works as the sink — a file, a socket, a pipe.)
	var sink bytes.Buffer
	w, err := stream.NewWriter(&sink, dims, absEB,
		stream.WithMode(cuszhi.ModeTP), stream.WithChunkPlanes(16))
	if err != nil {
		log.Fatal(err)
	}
	plane := dims[1] * dims[2]
	for z := 0; z < dims[0]; z++ {
		if err := w.WriteValues(data[z*plane : (z+1)*plane]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d values into %d bytes (%d-plane chunks)\n",
		len(data), sink.Len(), 16)

	info, err := cuszhi.Inspect(sink.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container: format v%d, %d chunks, dims %v\n",
		info.Version, info.NumChunks, info.Dims)

	// Decompress chunk-by-chunk; memory stays bounded by the chunk size.
	r, err := stream.NewReader(bytes.NewReader(sink.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	buf := make([]byte, 4*plane) // one plane at a time
	idx := 0
	for {
		n, err := io.ReadFull(r, buf)
		if err == io.EOF {
			break
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			log.Fatal(err)
		}
		for b := 0; b+4 <= n; b += 4 {
			v := float64(le32(buf[b:])) - float64(data[idx])
			if v < 0 {
				v = -v
			}
			if v > maxErr {
				maxErr = v
			}
			idx++
		}
		if err == io.ErrUnexpectedEOF {
			break
		}
	}
	fmt.Printf("reconstructed %d values, max error %.3g (bound %.3g)\n", idx, maxErr, absEB)
	if idx != len(data) || maxErr > absEB {
		log.Fatal("round trip failed")
	}

	// The one-shot decoder reads the same container.
	if _, oneDims, err := cuszhi.Decompress(sink.Bytes()); err != nil || oneDims[0] != dims[0] {
		log.Fatalf("one-shot interop: %v", err)
	}
	fmt.Println("one-shot cuszhi.Decompress read the streamed container OK")
}

func le32(b []byte) float32 {
	return math.Float32frombits(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}
