package ans

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	enc := Encode(data)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(dec), len(data))
	}
	return enc
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []byte{0})
	roundTrip(t, []byte{255})
	roundTrip(t, []byte("hello world"))
	roundTrip(t, bytes.Repeat([]byte{7}, 10_000))
}

func TestRoundTripAllSymbols(t *testing.T) {
	data := make([]byte, 256*10)
	for i := range data {
		data[i] = byte(i)
	}
	roundTrip(t, data)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 100, 65537} {
		data := make([]byte, n)
		rng.Read(data)
		roundTrip(t, data)
	}
}

func TestCompressionNearEntropy(t *testing.T) {
	// Skewed distribution: coded size should be near the entropy bound,
	// clearly below Huffman's 1-bit floor advantage territory.
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 200_000)
	for i := range data {
		if rng.Intn(50) == 0 {
			data[i] = byte(rng.Intn(256))
		} else {
			data[i] = 128
		}
	}
	enc := roundTrip(t, data)
	h := metrics.ByteEntropy(data)
	bound := h * float64(len(data)) / 8
	if float64(len(enc)) > bound*1.1+1100 {
		t.Fatalf("rANS size %d far above entropy bound %.0f", len(enc), bound)
	}
}

func TestSingleSymbolDegenerate(t *testing.T) {
	data := bytes.Repeat([]byte{42}, 1_000_000)
	enc := roundTrip(t, data)
	if len(enc) > 16 {
		t.Fatalf("constant stream should be tiny, got %d bytes", len(enc))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	data := make([]byte, 10_000)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = byte(rng.Intn(16) * 16)
	}
	enc := Encode(data)
	for _, cut := range []int{0, 1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
	for trial := 0; trial < 50; trial++ {
		bad := append([]byte(nil), enc...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		Decode(bad) // must not panic
	}
}

func TestNormalizeFreqsSumsToScale(t *testing.T) {
	var hist [256]int
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		for i := range hist {
			hist[i] = 0
		}
		nsym := 1 + rng.Intn(256)
		for i := 0; i < nsym; i++ {
			hist[rng.Intn(256)] = 1 + rng.Intn(100000)
		}
		freqs, _ := normalizeFreqs(hist)
		sum := 0
		for s, f := range freqs {
			if hist[s] > 0 && f == 0 {
				t.Fatal("present symbol got zero frequency")
			}
			if hist[s] == 0 && f != 0 {
				t.Fatal("absent symbol got frequency")
			}
			sum += int(f)
		}
		if sum != probScale {
			t.Fatalf("freqs sum to %d, want %d", sum, probScale)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := Decode(Encode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
