// Package szp reimplements the cuSZp2 baseline (Huang et al., SC'24): an
// end-to-end throughput-oriented GPU compressor built from 1-D offset
// (delta) prediction on prequantized integers and per-block fixed-length
// encoding, with an "outlier mode" bitmap that elides all-zero blocks.
//
// The pipeline is: round every value to the 2ε lattice, delta-encode within
// independent 32-value blocks, zigzag, and pack each block at its own
// ceiling-log2 bit width. Blocks whose deltas are all zero cost a single
// bitmap bit — that sparsification is where cuSZp2's ratio comes from on
// smooth fields, while its 1-D prediction keeps its ratio well below the
// interpolation compressors', matching Table 4.
//
// The *Ctx entry points thread a reusable arena.Ctx: per-chunk bit writers
// and outlier collectors persist across calls (each parallel kernel owns
// its own chunk slot, so the shared context is never touched concurrently),
// and decode buffers come from the arena, so warm contexts run the whole
// round trip with near-zero heap allocations.
package szp

import (
	"errors"
	"math"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("szp: corrupt stream")

const (
	blockVals = 32
	// latticeCap mirrors lorenzo's overflow guard.
	latticeCap = int64(1) << 50
	// chunkBlocks groups blocks for parallel encode/decode.
	chunkBlocks = 512
)

// chunksKey holds the per-chunk encode collectors in an arena.Ctx (arena
// batch slots, persistent across Reset so steady-state appends never grow).
var chunksKey = arena.NewAuxKey()

// Batched selects the uint64-packed block payload I/O (the default): whole
// blocks write and read their fixed-width deltas through the packed bitio
// kernels instead of one WriteBits/ReadBits call per value. The scalar
// reference path stays selectable so the equivalence property tests can
// assert byte-identical containers. Toggle only from tests, before any
// launch.
var Batched = true

// encChunk is one chunk's persistent encode scratch: its packed payload
// writer and outlier collectors. Exactly one kernel invocation touches a
// given chunk slot per launch, so the slots need no locking.
type encChunk struct {
	w      bitio.Writer
	outPos []int
	outVal []float32
}

// Compress encodes data under absolute error bound eb.
func Compress(dev *gpusim.Device, data []float32, eb float64) ([]byte, error) {
	return CompressCtx(nil, dev, data, eb)
}

// CompressCtx is Compress drawing all working memory from a reusable codec
// context (nil behaves like Compress). The returned container is a fresh
// allocation owned by the caller; only internal scratch is pooled.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, eb float64) ([]byte, error) {
	if eb <= 0 {
		return nil, errors.New("szp: error bound must be positive")
	}
	twoEB := 2 * eb
	n := len(data)
	nBlocks := (n + blockVals - 1) / blockVals
	nChunks := (nBlocks + chunkBlocks - 1) / chunkBlocks
	chunks := arena.Slots[encChunk](ctx, chunksKey, nChunks)
	for i := range chunks {
		chunks[i].w.Reset()
		chunks[i].outPos = chunks[i].outPos[:0]
		chunks[i].outVal = chunks[i].outVal[:0]
	}
	dev.Launch(nChunks, func(c int) {
		co := &chunks[c]
		w := &co.w
		for b := c * chunkBlocks; b < (c+1)*chunkBlocks && b < nBlocks; b++ {
			lo := b * blockVals
			hi := lo + blockVals
			if hi > n {
				hi = n
			}
			var deltas [blockVals]uint64
			var prev int64
			var maxd uint64
			for i := lo; i < hi; i++ {
				q := math.Round(float64(data[i]) / twoEB)
				var qi int64
				switch {
				case q > float64(latticeCap):
					qi = latticeCap
				case q < -float64(latticeCap):
					qi = -latticeCap
				default:
					qi = int64(q)
				}
				recon := float32(float64(qi) * twoEB)
				if math.Abs(float64(data[i])-float64(recon)) > eb {
					co.outPos = append(co.outPos, i)
					co.outVal = append(co.outVal, data[i])
				}
				z := bitio.ZigZag(qi - prev)
				prev = qi
				deltas[i-lo] = z
				if z > maxd {
					maxd = z
				}
			}
			width := uint(0)
			for v := maxd; v > 0; v >>= 1 {
				width++
			}
			if width == 0 {
				w.WriteBit(0) // zero block: single bitmap bit
				continue
			}
			w.WriteBit(1)
			w.WriteBits(uint64(width), 6)
			if Batched {
				w.WritePacked64(deltas[:hi-lo], width)
			} else {
				for i := lo; i < hi; i++ {
					w.WriteBits(deltas[i-lo], width)
				}
			}
		}
	})
	totalOut := 0
	totalPay := 0
	for i := range chunks {
		totalOut += len(chunks[i].outPos)
		totalPay += len(chunks[i].w.Bytes())
	}
	out := make([]byte, 0, totalPay+8*totalOut+4*nChunks+32)
	out = bitio.AppendUvarint(out, uint64(n))
	out = bitio.AppendUint64(out, math.Float64bits(eb))
	// Value outliers (rare): positions + raw values.
	out = bitio.AppendUvarint(out, uint64(totalOut))
	prevPos := 0
	for i := range chunks {
		for k, p := range chunks[i].outPos {
			out = bitio.AppendUvarint(out, uint64(p-prevPos))
			prevPos = p
			out = bitio.AppendUint32(out, math.Float32bits(chunks[i].outVal[k]))
		}
	}
	out = bitio.AppendUvarint(out, uint64(nChunks))
	for i := range chunks {
		out = bitio.AppendUvarint(out, uint64(len(chunks[i].w.Bytes())))
	}
	for i := range chunks {
		out = append(out, chunks[i].w.Bytes()...)
	}
	return out, nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, error) {
	return DecompressCtx(nil, dev, blob)
}

// DecompressCtx is Decompress with a reusable context. With a non-nil ctx
// the returned field is context scratch, valid until the next ctx.Reset.
//
//cuszhi:hotpath
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, blob []byte) ([]float32, error) {
	n64, nn := bitio.Uvarint(blob)
	// Cap the element count before any conversion or allocation sized by
	// it: a hostile count must fail cheaply, not force a huge make.
	if nn == 0 || n64 > 1<<33 {
		return nil, ErrCorrupt
	}
	off := nn
	n := int(n64)
	if n < 0 { // int wrap on 32-bit platforms
		return nil, ErrCorrupt
	}
	if off+8 > len(blob) {
		return nil, ErrCorrupt
	}
	var ebBits uint64
	for i := 0; i < 8; i++ {
		ebBits |= uint64(blob[off+i]) << (8 * i)
	}
	off += 8
	eb := math.Float64frombits(ebBits)
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, ErrCorrupt
	}
	twoEB := 2 * eb
	nOut64, nn := bitio.Uvarint(blob[off:])
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off += nn
	if nOut64 > uint64(n) {
		return nil, ErrCorrupt
	}
	nOut := int(nOut64)
	outPos := ctx.Ints(nOut)
	outVal := ctx.F32(nOut)
	prevPos := 0
	for i := 0; i < nOut; i++ {
		d, nn := bitio.Uvarint(blob[off:])
		// Cap the delta before the int conversion below adds it to the
		// running position.
		if nn == 0 || d > 1<<33 {
			return nil, ErrCorrupt
		}
		off += nn
		prevPos += int(d)
		if prevPos < 0 || prevPos >= n || off+4 > len(blob) {
			return nil, ErrCorrupt
		}
		outPos[i] = prevPos
		var vb uint32
		for k := 0; k < 4; k++ {
			vb |= uint32(blob[off+k]) << (8 * k)
		}
		off += 4
		outVal[i] = math.Float32frombits(vb)
	}
	nChunks64, nn := bitio.Uvarint(blob[off:])
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off += nn
	nBlocks := (n + blockVals - 1) / blockVals
	wantChunks := (nBlocks + chunkBlocks - 1) / chunkBlocks
	if n == 0 {
		wantChunks = 0
	}
	if nChunks64 != uint64(wantChunks) {
		return nil, ErrCorrupt
	}
	lens := ctx.Ints(wantChunks)
	total := 0
	for i := range lens {
		l, nn := bitio.Uvarint(blob[off:])
		// Cap each chunk length before the int conversion: a huge wire
		// value would overflow the running total negative and slip past
		// the bounds check into panicking slice expressions below.
		if nn == 0 || l > uint64(len(blob)) {
			return nil, ErrCorrupt
		}
		off += nn
		lens[i] = int(l)
		total += int(l)
		if total > len(blob) {
			return nil, ErrCorrupt
		}
	}
	if off+total > len(blob) {
		return nil, ErrCorrupt
	}
	starts := ctx.Ints(wantChunks)
	pos := off
	for i, l := range lens {
		starts[i] = pos
		pos += l
	}
	out := ctx.F32(n)
	ok := ctx.Bytes(wantChunks)
	clear(ok)
	dev.Launch(wantChunks, func(c int) {
		var r bitio.Reader
		r.ResetBytes(blob[starts[c] : starts[c]+lens[c]])
		for b := c * chunkBlocks; b < (c+1)*chunkBlocks && b < nBlocks; b++ {
			lo := b * blockVals
			hi := lo + blockVals
			if hi > n {
				hi = n
			}
			flag, err := r.ReadBit()
			if err != nil {
				return
			}
			var prev int64
			if flag == 0 {
				// All-zero deltas: constant zero lattice.
				for i := lo; i < hi; i++ {
					out[i] = 0
				}
				continue
			}
			w64, err := r.ReadBits(6)
			if err != nil || w64 == 0 || w64 > 63 {
				return
			}
			if Batched {
				var zs [blockVals]uint64
				z := zs[:hi-lo]
				if r.ReadPacked64(z, uint(w64)) != nil {
					return
				}
				o := out[lo:hi:hi]
				for i := range z {
					prev += bitio.UnZigZag(z[i])
					o[i] = float32(float64(prev) * twoEB)
				}
				continue
			}
			for i := lo; i < hi; i++ {
				z, err := r.ReadBits(uint(w64))
				if err != nil {
					return
				}
				prev += bitio.UnZigZag(z)
				out[i] = float32(float64(prev) * twoEB)
			}
		}
		ok[c] = 1
	})
	for _, o := range ok {
		if o == 0 {
			return nil, ErrCorrupt
		}
	}
	for i, p := range outPos {
		out[p] = outVal[i]
	}
	return out, nil
}
