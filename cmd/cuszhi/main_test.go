package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseDims(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
		ok   bool
	}{
		{"256x384x384", []int{256, 384, 384}, true},
		{"100", []int{100}, true},
		{"8X9", []int{8, 9}, true},
		{"4,5,6", []int{4, 5, 6}, true},
		{"", nil, false},
		{"axb", nil, false},
		{"-4x5", nil, false},
		{"0x5", nil, false},
	} {
		got, err := parseDims(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("parseDims(%q): err=%v want ok=%v", tc.in, err, tc.ok)
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Fatalf("parseDims(%q) = %v", tc.in, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("parseDims(%q) = %v", tc.in, got)
			}
		}
	}
}

func TestReadWriteF32(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.f32")
	data := []float32{0, 1.5, -2.25, float32(math.Pi)}
	if err := writeF32(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := readF32(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], data[i])
		}
	}
	// Misaligned file must error.
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readF32(path); err == nil {
		t.Fatal("want alignment error")
	}
}

func TestEndToEndCommands(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.f32")
	comp := filepath.Join(dir, "f.cszh")
	out := filepath.Join(dir, "recon.f32")

	if err := cmdGen([]string{"-dataset", "nyx", "-o", raw, "-dims", "16x24x24", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompress([]string{"-i", raw, "-o", comp, "-dims", "16x24x24", "-eb", "1e-3", "-mode", "hi-tp"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-i", comp, "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-i", comp}); err != nil {
		t.Fatal(err)
	}
	orig, err := readF32(raw)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := readF32(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(recon) {
		t.Fatalf("len %d != %d", len(recon), len(orig))
	}
	lo, hi := orig[0], orig[0]
	for _, v := range orig {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	eb := 1e-3 * float64(hi-lo)
	for i := range orig {
		if math.Abs(float64(orig[i])-float64(recon[i])) > eb*(1+1e-6) {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

// TestEndToEndChunkedAndStreamed drives the -chunk and -stream flags:
// chunked compress / one-shot decompress, streamed compress / streamed
// decompress, and cross-combinations, all within the error bound.
func TestEndToEndChunkedAndStreamed(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.f32")
	if err := cmdGen([]string{"-dataset", "miranda", "-o", raw, "-dims", "20x16x16", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	orig, err := readF32(raw)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := orig[0], orig[0]
	for _, v := range orig {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	eb := 1e-3 * float64(hi-lo)

	check := func(tag, path string) {
		t.Helper()
		recon, err := readF32(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recon) != len(orig) {
			t.Fatalf("%s: len %d != %d", tag, len(recon), len(orig))
		}
		for i := range orig {
			if math.Abs(float64(orig[i])-float64(recon[i])) > eb*(1+1e-6) {
				t.Fatalf("%s: bound violated at %d", tag, i)
			}
		}
	}

	chunked := filepath.Join(dir, "chunked.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", chunked, "-dims", "20x16x16",
		"-eb", "1e-3", "-mode", "hi-tp", "-chunk", "6"}); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(dir, "r1.f32")
	if err := cmdDecompress([]string{"-i", chunked, "-o", out1}); err != nil {
		t.Fatal(err)
	}
	check("chunked->one-shot", out1)
	out2 := filepath.Join(dir, "r2.f32")
	if err := cmdDecompress([]string{"-i", chunked, "-o", out2, "-stream"}); err != nil {
		t.Fatal(err)
	}
	check("chunked->streamed", out2)
	if err := cmdInfo([]string{"-i", chunked}); err != nil {
		t.Fatal(err)
	}

	streamed := filepath.Join(dir, "streamed.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", streamed, "-dims", "20x16x16",
		"-eb", "1e-3", "-mode", "hi-tp", "-stream", "-chunk", "8"}); err != nil {
		t.Fatal(err)
	}
	out3 := filepath.Join(dir, "r3.f32")
	if err := cmdDecompress([]string{"-i", streamed, "-o", out3}); err != nil {
		t.Fatal(err)
	}
	check("streamed->one-shot", out3)

	// A v1 blob reads fine through the streaming decoder.
	oneshot := filepath.Join(dir, "oneshot.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", oneshot, "-dims", "20x16x16",
		"-eb", "1e-3", "-mode", "hi-tp"}); err != nil {
		t.Fatal(err)
	}
	out4 := filepath.Join(dir, "r4.f32")
	if err := cmdDecompress([]string{"-i", oneshot, "-o", out4, "-stream"}); err != nil {
		t.Fatal(err)
	}
	check("one-shot->streamed", out4)
}

// TestPlaneRangeExtraction drives `decompress -planes lo:hi` against the
// seekable container `-stream` now writes, and against an old-style v2
// container via the scan-built fallback index.
func TestPlaneRangeExtraction(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.f32")
	if err := cmdGen([]string{"-dataset", "jhtdb", "-o", raw, "-dims", "24x12x12", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}

	comp := filepath.Join(dir, "f.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", comp, "-dims", "24x12x12",
		"-eb", "1e-3", "-mode", "hi-tp", "-stream", "-chunk", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-i", comp}); err != nil {
		t.Fatal(err)
	}

	full := filepath.Join(dir, "full.f32")
	if err := cmdDecompress([]string{"-i", comp, "-o", full}); err != nil {
		t.Fatal(err)
	}
	fullVals, err := readF32(full)
	if err != nil {
		t.Fatal(err)
	}

	ps := 12 * 12
	part := filepath.Join(dir, "part.f32")
	if err := cmdDecompress([]string{"-i", comp, "-o", part, "-planes", "7:13"}); err != nil {
		t.Fatal(err)
	}
	partVals, err := readF32(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(partVals) != 6*ps {
		t.Fatalf("extracted %d values, want %d", len(partVals), 6*ps)
	}
	for i := range partVals {
		if partVals[i] != fullVals[7*ps+i] {
			t.Fatalf("plane extraction diverges from full decode at %d", i)
		}
	}

	// Old chunked (v2) containers work through the fallback index.
	v2 := filepath.Join(dir, "v2.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", v2, "-dims", "24x12x12",
		"-eb", "1e-3", "-mode", "hi-tp", "-chunk", "5"}); err != nil {
		t.Fatal(err)
	}
	part2 := filepath.Join(dir, "part2.f32")
	if err := cmdDecompress([]string{"-i", v2, "-o", part2, "-planes", "0:5"}); err != nil {
		t.Fatal(err)
	}
	if vals, err := readF32(part2); err != nil || len(vals) != 5*ps {
		t.Fatalf("v2 extraction: %v (%d values)", err, len(vals))
	}

	// Bad ranges and flag combinations are refused.
	for _, spec := range []string{"5", "a:b", "5:5", "9:2", "-1:4", "0:25"} {
		if err := cmdDecompress([]string{"-i", comp, "-o", part, "-planes", spec}); err == nil {
			t.Fatalf("plane spec %q accepted", spec)
		}
	}
	if err := cmdDecompress([]string{"-i", comp, "-o", part, "-planes", "0:2", "-stream"}); err == nil {
		t.Fatal("-planes with -stream accepted")
	}
}

// TestEndToEndAutoMode drives `-mode auto` through both chunked paths: the
// streamed writer (per-shard codec selection, format v5) and the one-shot
// chunked facade, then checks the bound and the info output path.
func TestEndToEndAutoMode(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.f32")
	if err := cmdGen([]string{"-dataset", "jhtdb", "-o", raw, "-dims", "24x16x16", "-seed", "11"}); err != nil {
		t.Fatal(err)
	}
	orig, err := readF32(raw)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := orig[0], orig[0]
	for _, v := range orig {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	eb := 1e-3 * float64(hi-lo)

	check := func(tag, path string) {
		t.Helper()
		recon, err := readF32(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if math.Abs(float64(orig[i])-float64(recon[i])) > eb*(1+1e-6) {
				t.Fatalf("%s: bound violated at %d", tag, i)
			}
		}
	}

	streamed := filepath.Join(dir, "auto.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", streamed, "-dims", "24x16x16",
		"-eb", "1e-3", "-mode", "auto", "-stream", "-chunk", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-i", streamed}); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(dir, "r1.f32")
	if err := cmdDecompress([]string{"-i", streamed, "-o", out1}); err != nil {
		t.Fatal(err)
	}
	check("auto-streamed", out1)
	// Random access works on the v5 container.
	out2 := filepath.Join(dir, "r2.f32")
	if err := cmdDecompress([]string{"-i", streamed, "-o", out2, "-planes", "5:11"}); err != nil {
		t.Fatal(err)
	}

	chunked := filepath.Join(dir, "auto2.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", chunked, "-dims", "24x16x16",
		"-eb", "1e-3", "-mode", "auto", "-chunk", "6"}); err != nil {
		t.Fatal(err)
	}
	out3 := filepath.Join(dir, "r3.f32")
	if err := cmdDecompress([]string{"-i", chunked, "-o", out3, "-stream"}); err != nil {
		t.Fatal(err)
	}
	check("auto-chunked", out3)
}

// TestStreamedConstantField covers the zero-range case: a constant field
// has no value range, so the relative-bound pre-pass must fall back to
// range 1 (matching metrics.AbsEB) instead of producing a zero bound.
func TestStreamedConstantField(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "c.f32")
	if err := writeF32(raw, make([]float32, 64)); err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "c.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", comp, "-dims", "4x4x4",
		"-eb", "1e-3", "-mode", "hi-tp", "-stream"}); err != nil {
		t.Fatalf("constant field streamed compress: %v", err)
	}
	out := filepath.Join(dir, "c.out.f32")
	if err := cmdDecompress([]string{"-i", comp, "-o", out}); err != nil {
		t.Fatal(err)
	}
	recon, err := readF32(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range recon {
		if math.Abs(float64(v)) > 1e-3 {
			t.Fatalf("value %d drifted to %v", i, v)
		}
	}
}

func TestCommandValidation(t *testing.T) {
	if err := cmdCompress([]string{"-i", "", "-o", ""}); err == nil {
		t.Fatal("want missing-args error")
	}
	if err := cmdDecompress([]string{"-i", "", "-o", ""}); err == nil {
		t.Fatal("want missing-args error")
	}
	if err := cmdGen([]string{"-dataset", "", "-o", ""}); err == nil {
		t.Fatal("want missing-args error")
	}
	if err := cmdInfo([]string{"-i", ""}); err == nil {
		t.Fatal("want missing-args error")
	}
	if err := cmdGen([]string{"-dataset", "nope", "-o", "/tmp/x"}); err == nil {
		t.Fatal("want unknown-dataset error")
	}
}

// TestEndToEndAppendRepair drives the append and repair verbs: a store is
// torn at several offsets the way a crashed writer would leave it, repair
// reseals the CRC-valid prefix, and append grows the repaired store back to
// the full field — which then decodes within the bound.
func TestEndToEndAppendRepair(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.f32")
	dims := "18x12x12"
	ps := 12 * 12
	if err := cmdGen([]string{"-dataset", "nyx", "-o", raw, "-dims", dims, "-seed", "13"}); err != nil {
		t.Fatal(err)
	}
	orig, err := readF32(raw)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := orig[0], orig[0]
	for _, v := range orig {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	eb := 1e-3 * float64(hi-lo)

	store := filepath.Join(dir, "f.cszh")
	if err := cmdCompress([]string{"-i", raw, "-o", store, "-dims", dims,
		"-eb", "1e-3", "-mode", "szx", "-stream", "-chunk", "4"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	fullOut := filepath.Join(dir, "full.f32")
	if err := cmdDecompress([]string{"-i", store, "-o", fullOut}); err != nil {
		t.Fatal(err)
	}
	fullVals, err := readF32(fullOut)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the footer only: every frame survives, repair reseals all 18
	// planes and the decode is bit-identical to the intact store's.
	torn := filepath.Join(dir, "torn.cszh")
	if err := os.WriteFile(torn, blob[:len(blob)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdRepair([]string{"-i", torn, "-dry-run"}); err != nil {
		t.Fatal(err)
	}
	if after, err := os.ReadFile(torn); err != nil || len(after) != len(blob)-9 {
		t.Fatalf("dry-run modified the store: %v, %d bytes", err, len(after))
	}
	if err := cmdRepair([]string{"-i", torn}); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(dir, "r1.f32")
	if err := cmdDecompress([]string{"-i", torn, "-o", out1}); err != nil {
		t.Fatal(err)
	}
	vals, err := readF32(out1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(fullVals) {
		t.Fatalf("footer-only tear lost planes: %d values, want %d", len(vals), len(fullVals))
	}
	for i := range vals {
		if vals[i] != fullVals[i] {
			t.Fatalf("repaired decode diverges from intact decode at %d", i)
		}
	}

	// Cut mid-frame: repair keeps the CRC-valid prefix, append grows the
	// store back to the full field with the store's own mode.
	cutStore := filepath.Join(dir, "cut.cszh")
	if err := os.WriteFile(cutStore, blob[:len(blob)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdRepair([]string{"-i", cutStore}); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "r2.f32")
	if err := cmdDecompress([]string{"-i", cutStore, "-o", out2}); err != nil {
		t.Fatal(err)
	}
	prefix, err := readF32(out2)
	if err != nil {
		t.Fatal(err)
	}
	planes := len(prefix) / ps
	if planes == 0 || planes >= 18 || len(prefix)%ps != 0 {
		t.Fatalf("repaired prefix covers %d values (%d planes)", len(prefix), planes)
	}
	for i := range prefix {
		if prefix[i] != fullVals[i] {
			t.Fatalf("prefix decode diverges from intact decode at %d", i)
		}
	}

	rest := filepath.Join(dir, "rest.f32")
	if err := writeF32(rest, orig[planes*ps:]); err != nil {
		t.Fatal(err)
	}
	if err := cmdAppend([]string{"-store", cutStore, "-i", rest}); err != nil {
		t.Fatal(err)
	}
	out3 := filepath.Join(dir, "r3.f32")
	if err := cmdDecompress([]string{"-i", cutStore, "-o", out3}); err != nil {
		t.Fatal(err)
	}
	grown, err := readF32(out3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) != len(orig) {
		t.Fatalf("grown store holds %d values, want %d", len(grown), len(orig))
	}
	for i := range grown {
		if math.Abs(float64(orig[i])-float64(grown[i])) > eb*(1+1e-6) {
			t.Fatalf("bound violated at %d after append", i)
		}
	}
	if err := cmdInfo([]string{"-i", cutStore}); err != nil {
		t.Fatal(err)
	}

	// Validation: both verbs refuse missing arguments and absent files.
	if err := cmdAppend([]string{"-store", "", "-i", ""}); err == nil {
		t.Fatal("append without args accepted")
	}
	if err := cmdRepair([]string{"-i", ""}); err == nil {
		t.Fatal("repair without args accepted")
	}
	if err := cmdRepair([]string{"-i", filepath.Join(dir, "nope.cszh")}); err == nil {
		t.Fatal("repair of a missing file accepted")
	}
	if err := cmdAppend([]string{"-store", cutStore, "-i", rest, "-mode", "bogus"}); err == nil {
		t.Fatal("append with an unknown mode accepted")
	}
}

// TestEndToEndBackendModes drives -mode fzgpu|szp|szx through every CLI
// path: one-shot (single-chunk v5), chunked, streamed, random access, and
// info — the front-end face of the backend chunk codecs.
func TestEndToEndBackendModes(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "f.f32")
	if err := cmdGen([]string{"-dataset", "miranda", "-o", raw, "-dims", "16x12x12", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	orig, err := readF32(raw)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := orig[0], orig[0]
	for _, v := range orig {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	eb := 1e-3 * float64(hi-lo)
	check := func(tag, path string) {
		t.Helper()
		recon, err := readF32(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recon) != len(orig) {
			t.Fatalf("%s: %d values, want %d", tag, len(recon), len(orig))
		}
		for i := range orig {
			if math.Abs(float64(orig[i])-float64(recon[i])) > eb*(1+1e-6) {
				t.Fatalf("%s: bound violated at %d", tag, i)
			}
		}
	}
	for _, mode := range []string{"fzgpu", "szp", "szx"} {
		oneShot := filepath.Join(dir, mode+".cszh")
		if err := cmdCompress([]string{"-i", raw, "-o", oneShot, "-dims", "16x12x12",
			"-eb", "1e-3", "-mode", mode}); err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(dir, mode+"-r.f32")
		if err := cmdDecompress([]string{"-i", oneShot, "-o", out}); err != nil {
			t.Fatal(err)
		}
		check(mode+"/one-shot", out)
		if err := cmdInfo([]string{"-i", oneShot}); err != nil {
			t.Fatal(err)
		}

		streamed := filepath.Join(dir, mode+"-s.cszh")
		if err := cmdCompress([]string{"-i", raw, "-o", streamed, "-dims", "16x12x12",
			"-eb", "1e-3", "-mode", mode, "-stream", "-chunk", "4"}); err != nil {
			t.Fatal(err)
		}
		out2 := filepath.Join(dir, mode+"-rs.f32")
		if err := cmdDecompress([]string{"-i", streamed, "-o", out2, "-stream"}); err != nil {
			t.Fatal(err)
		}
		check(mode+"/streamed", out2)
		// The v5 index serves random access over backend-coded chunks.
		out3 := filepath.Join(dir, mode+"-rp.f32")
		if err := cmdDecompress([]string{"-i", streamed, "-o", out3, "-planes", "5:9"}); err != nil {
			t.Fatal(err)
		}
	}
}
