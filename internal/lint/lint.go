// Package lint is the in-repo static-analysis framework behind
// cmd/cuszhilint: a stdlib-only (go/ast + go/parser + go/token, no x/tools)
// analyzer harness that walks every package in the repository and enforces
// the ROADMAP's standing codec invariants at review time instead of waiting
// for a fuzzer to stumble on a violation.
//
// Four analyzers ship with the framework, each grounded in a bug class the
// repo has already paid for:
//
//   - wirelen:      int(x) of a 64-bit wire value (binary.Uvarint,
//     bitio.Uvarint, binary.LittleEndian.Uint32/64) without a
//     dominating bound check (the PR-3 lccodec hostile-length
//     panics, the PR-5 overflow sweep).
//   - corrupterr:   decode paths in wire-decoding packages must surface
//     malformed input as ErrCorrupt (directly or %w-wrapped),
//     never panic and never invent bare errors.
//   - hotpathalloc: functions annotated //cuszhi:hotpath may not contain
//     allocating constructs, complementing the runtime
//     AllocsPerRun guards.
//   - wireid:       codec wire IDs 1-8 and format versions v1-v5 are
//     append-only; the analyzer pins them to an embedded
//     golden table so they can never be renumbered.
//
// Findings are suppressed by a `//lint:ignore <check> <reason>` comment on
// the flagged line or the line above it. Suppressions are counted, and a
// directive that matches nothing is itself reported (check "staleignore"),
// so dead ignores cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer report, positioned at file:line:col.
type Finding struct {
	Check   string         // analyzer name ("wirelen", ...)
	Pos     token.Position // position of the offending node
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Package is one parsed (not type-checked) Go package: every analyzer in
// this framework is purely syntactic, so parsing with comments is all the
// loading there is.
type Package struct {
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
}

// Analyzers returns the framework's built-in checker set, ordered by name.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		corruptErrAnalyzer(),
		hotPathAllocAnalyzer(),
		wireIDAnalyzer(),
		wireLenAnalyzer(),
	}
}

// Load parses the packages matched by patterns, rooted at dir. A pattern is
// either a directory path or a recursive `dir/...` form (the `./...` the
// CLI and the repo-clean test use). Directories named "testdata", hidden
// directories, and _test.go files are skipped unless includeTests is set
// (which admits _test.go files; testdata stays out — fixture snippets are
// deliberately lint-dirty).
func Load(root string, patterns []string, includeTests bool) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		base = filepath.Clean(base)
		if !rec {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := loadDir(dir, includeTests)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir parses every non-test .go file in dir into one Package (nil when
// the directory holds no Go files). Files from multiple package clauses in
// one directory (e.g. package x and x_test externals) land in the same
// Package: the analyzers are per-file syntactic, so mixing is harmless.
func loadDir(dir string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
		if pkg.Name == "" || !strings.HasSuffix(f.Name.Name, "_test") {
			pkg.Name = f.Name.Name
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// Result is the outcome of one Run: the surviving findings (stale-ignore
// reports included, check "staleignore") and the number of findings that
// //lint:ignore directives suppressed.
type Result struct {
	Findings   []Finding
	Suppressed int
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos   token.Position // position of the comment itself
	check string
	used  bool
}

// Run applies every analyzer to every package, resolves //lint:ignore
// suppressions, and appends a "staleignore" finding for each directive that
// suppressed nothing. Findings are sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	for _, pkg := range pkgs {
		directives := collectIgnores(pkg)
		for _, a := range analyzers {
			for _, f := range a.Run(pkg) {
				if dir := matchIgnore(directives, f); dir != nil {
					dir.used = true
					res.Suppressed++
					continue
				}
				res.Findings = append(res.Findings, f)
			}
		}
		for _, d := range directives {
			if !d.used {
				res.Findings = append(res.Findings, Finding{
					Check: "staleignore",
					Pos:   d.pos,
					Message: fmt.Sprintf("//lint:ignore %s directive suppresses nothing — remove it or fix the directive",
						d.check),
				})
			}
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i].Pos, res.Findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return res.Findings[i].Check < res.Findings[j].Check
	})
	return res
}

// collectIgnores gathers every //lint:ignore directive in the package. The
// directive form is `//lint:ignore <check> <reason>`; a missing reason is
// itself malformed and reported via a zero check name that matches nothing.
func collectIgnores(pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := &ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				if len(fields) >= 2 { // check name + at least one reason word
					d.check = fields[0]
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// matchIgnore returns the first directive suppressing f: same file, same
// check, on the finding's line or the line immediately above it.
func matchIgnore(directives []*ignoreDirective, f Finding) *ignoreDirective {
	for _, d := range directives {
		if d.check != f.Check || d.pos.Filename != f.Pos.Filename {
			continue
		}
		if d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1 {
			return d
		}
	}
	return nil
}

// funcDocHas reports whether decl's doc comment block contains a line whose
// directive text equals marker (e.g. "//cuszhi:hotpath").
func funcDocHas(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}
