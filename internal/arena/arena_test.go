package arena

import "testing"

func TestTakeAndReuse(t *testing.T) {
	c := NewCtx()
	a := c.Bytes(100)
	b := c.Bytes(200)
	if len(a) != 100 || len(b) != 200 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	a[0], b[0] = 1, 2
	c.Reset()
	a2 := c.Bytes(100)
	b2 := c.Bytes(200)
	if &a2[0] != &a[0] || &b2[0] != &b[0] {
		t.Fatal("slots not reused after Reset")
	}
}

func TestSlotGrowth(t *testing.T) {
	c := NewCtx()
	_ = c.I64(16)
	c.Reset()
	g := c.I64(1000) // larger than slot: must grow, not panic
	if len(g) != 1000 {
		t.Fatalf("len %d", len(g))
	}
	c.Reset()
	g2 := c.I64(900) // fits the grown slot
	if &g2[0] != &g[0] {
		t.Fatal("grown slot not reused")
	}
}

func TestNilCtxFallsBackToMake(t *testing.T) {
	var c *Ctx
	if got := c.F32(8); len(got) != 8 {
		t.Fatalf("nil ctx F32 len %d", len(got))
	}
	if got := c.U16(3); len(got) != 3 {
		t.Fatalf("nil ctx U16 len %d", len(got))
	}
	c.Reset()              // must not panic
	c.SetAux(AuxKey(0), 1) // must not panic
	if c.Aux(AuxKey(0)) != nil {
		t.Fatal("nil ctx aux should read nil")
	}
}

func TestAuxSurvivesReset(t *testing.T) {
	k := NewAuxKey()
	c := NewCtx()
	if c.Aux(k) != nil {
		t.Fatal("fresh aux not nil")
	}
	c.SetAux(k, "memo")
	c.Reset()
	if c.Aux(k) != "memo" {
		t.Fatal("aux lost across Reset")
	}
}

func TestAllocsSteadyState(t *testing.T) {
	c := NewCtx()
	run := func() {
		c.Reset()
		_ = c.Bytes(4096)
		_ = c.F32(1 << 12)
		_ = c.I64(100)
		_ = c.U16(1 << 10)
	}
	run() // warm the slots
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("steady state allocs = %v, want 0", n)
	}
}

func TestSlotsPersistAcrossReset(t *testing.T) {
	type collector struct{ buf []byte }
	k := NewAuxKey()
	c := NewCtx()
	s := Slots[collector](c, k, 4)
	if len(s) != 4 {
		t.Fatalf("len %d", len(s))
	}
	s[2].buf = append(s[2].buf, 1, 2, 3)
	c.Reset()
	s2 := Slots[collector](c, k, 4)
	if &s2[0] != &s[0] {
		t.Fatal("slots reallocated across Reset")
	}
	if len(s2[2].buf) != 3 {
		t.Fatal("slot contents lost across Reset")
	}
	// Growing keeps existing elements; shrinking re-exposes them later.
	s3 := Slots[collector](c, k, 9)
	if len(s3) != 9 || len(s3[2].buf) != 3 {
		t.Fatal("grow dropped existing slot state")
	}
	if got := Slots[collector](c, k, 2); len(got) != 2 {
		t.Fatalf("shrink len %d", len(got))
	}
	if again := Slots[collector](c, k, 9); len(again[2].buf) != 3 {
		t.Fatal("shrink-then-grow dropped slot state")
	}
}

func TestSlotsNilCtx(t *testing.T) {
	s := Slots[int](nil, NewAuxKey(), 3)
	if len(s) != 3 {
		t.Fatalf("len %d", len(s))
	}
}

func TestSlotsWarmNoAlloc(t *testing.T) {
	k := NewAuxKey()
	c := NewCtx()
	Slots[uint64](c, k, 64)
	allocs := testing.AllocsPerRun(100, func() {
		c.Reset()
		if s := Slots[uint64](c, k, 64); len(s) != 64 {
			t.Fatal("bad len")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Slots allocates %.1f/op", allocs)
	}
}
