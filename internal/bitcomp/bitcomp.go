// Package bitcomp is an open surrogate for NVIDIA's proprietary Bitcomp
// lossless codec, which cuSZ-IB attaches after Huffman encoding and which
// Table 1 of the paper applies to every compressor's output.
//
// Bitcomp is a lightweight GPU de-redundancy coder. The surrogate captures
// the behaviour that matters in the paper's experiments: a Huffman stream
// over overwhelmingly-zero quantization codes is runs of the zero
// codeword's bits (sub-1-bit/symbol redundancy that entropy coding cannot
// remove), and Bitcomp recovers nearly all of it; already-de-redundated
// streams (cuSZ-Hi output, random data) stay at ratio ~1.
//
// The scheme: byte-wise delta + zigzag (turning byte runs into zeros),
// then zero-elimination with a recursively compressed presence bitmap
// (internal/lccodec's RZE1), with a raw-passthrough fallback whenever that
// would not shrink the input.
package bitcomp

import (
	"errors"

	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/lccodec"
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("bitcomp: corrupt stream")

const (
	modeRaw     = 0x00
	modeDeltaZE = 0x01
)

var rze = lccodec.MustParse("DIFFMS1-RZE1")

// Compress encodes src.
func Compress(dev *gpusim.Device, src []byte) ([]byte, error) {
	enc, err := rze.Encode(dev, src)
	if err != nil {
		return nil, err
	}
	out := bitio.AppendUvarint(nil, uint64(len(src)))
	if len(enc) < len(src) {
		out = append(out, modeDeltaZE)
		return append(out, enc...), nil
	}
	out = append(out, modeRaw)
	return append(out, src...), nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, data []byte) ([]byte, error) {
	origLen64, n := bitio.Uvarint(data)
	if n == 0 || n >= len(data)+1 {
		return nil, ErrCorrupt
	}
	origLen := int(origLen64)
	if origLen < 0 || n >= len(data) {
		if origLen == 0 && n == len(data) {
			return nil, nil
		}
		return nil, ErrCorrupt
	}
	mode := data[n]
	body := data[n+1:]
	switch mode {
	case modeRaw:
		if len(body) != origLen {
			return nil, ErrCorrupt
		}
		out := make([]byte, origLen)
		copy(out, body)
		return out, nil
	case modeDeltaZE:
		out, err := rze.Decode(dev, body)
		if err != nil {
			return nil, err
		}
		if len(out) != origLen {
			return nil, ErrCorrupt
		}
		return out, nil
	}
	return nil, ErrCorrupt
}

// Ratio returns the Bitcomp-surrogate compression ratio on src, the metric
// reported in Table 1.
func Ratio(dev *gpusim.Device, src []byte) (float64, error) {
	if len(src) == 0 {
		return 1, nil
	}
	enc, err := Compress(dev, src)
	if err != nil {
		return 0, err
	}
	return float64(len(src)) / float64(len(enc)), nil
}
