// Fixture for the hotpathalloc analyzer: an annotated function containing
// every flagged construct. Parsed, never compiled.
package hotpathalloc

import "fmt"

type pair struct{ a, b int }

// kernelBad opts in and then allocates every way the analyzer knows.
//
//cuszhi:hotpath
func kernelBad(dst []byte) {
	tmp := make([]byte, 8)
	dst = append(dst, tmp...)
	m := map[int]int{}
	_ = m
	s := []int{1, 2}
	_ = s
	p := &pair{a: 1, b: 2}
	_ = p
	fmt.Println("hot")
	go func() {}()
	_ = string(dst)
	_ = []byte("copy")
}

// notAnnotated allocates freely: no marker, no findings.
func notAnnotated() []byte {
	return make([]byte, 8)
}

// kernelGood opts in and stays clean.
//
//cuszhi:hotpath
func kernelGood(dst []byte, v byte) {
	var acc [4]byte
	for i := range dst {
		acc[i&3] ^= v
		dst[i] = acc[i&3]
	}
}
