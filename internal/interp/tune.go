package interp

import (
	"math"

	"repro/internal/gpusim"
)

// This file implements the workload-balanced interpolation auto-tuning of
// §5.1.3: uniformly sampled blocks (~0.2 % of the data volume) are
// test-interpolated at every level with every candidate (scheme, spline)
// configuration, prediction errors are aggregated per (level, candidate),
// and the per-level argmin is selected. The paper balances the tests across
// thread blocks per level (coarse levels share a block, level-1 tests get
// six); here every (sample, candidate) pair is an independent task on the
// device, which is the same workload-spreading idea under the goroutine
// executor.

// DefaultSampleFraction is the block sampling rate used by auto-tuning.
const DefaultSampleFraction = 0.002

// tuneCandidates are the (scheme, spline) combinations evaluated per level.
var tuneCandidates = []LevelConfig{
	{Scheme: Seq1DXYZ, Spline: Linear},
	{Scheme: Seq1DXYZ, Spline: Cubic},
	{Scheme: Seq1DZYX, Spline: Linear},
	{Scheme: Seq1DZYX, Spline: Cubic},
	{Scheme: MD, Spline: Linear},
	{Scheme: MD, Spline: Cubic},
}

// fillFromData loads the block's entire extent with original values, the
// neighbour source used by tuning's dry runs.
func (b *block) fillFromData(data []float32) {
	for z := b.lo[0]; z <= b.hi[0]; z++ {
		for y := b.lo[1]; y <= b.hi[1]; y++ {
			base := b.local(z, y, b.lo[2])
			gbase := b.g.flat(z, y, b.lo[2])
			copy(b.buf[base:base+b.ext[2]], data[gbase:gbase+b.ext[2]])
		}
	}
}

// AutoTune selects the per-level LevelConfig minimizing aggregate absolute
// prediction error over sampled blocks. sampleFrac <= 0 selects
// DefaultSampleFraction.
func AutoTune(dev *gpusim.Device, data []float32, g Grid, cfg Config, sampleFrac float64) []LevelConfig {
	if sampleFrac <= 0 {
		sampleFrac = DefaultSampleFraction
	}
	levels := cfg.Levels()
	nbz, nby, nbx := blockGrid(g, &cfg)
	nBlocks := nbz * nby * nbx
	nSamples := int(math.Round(float64(nBlocks) * sampleFrac))
	if nSamples < 2 {
		nSamples = 2
	}
	if nSamples > nBlocks {
		nSamples = nBlocks
	}
	type errMat = [][]float64
	partials := gpusim.Reduce(dev, nSamples, func(si int) errMat {
		bi := si * nBlocks / nSamples
		bx := bi % nbx
		by := (bi / nbx) % nby
		bz := bi / (nbx * nby)
		bk := bufPool.Get().(*block)
		defer bufPool.Put(bk)
		bk.initBlock(g, &cfg, bz, by, bx)
		bk.fillFromData(data)
		errs := make(errMat, levels)
		for li := range errs {
			errs[li] = make([]float64, len(tuneCandidates))
		}
		li := 0
		for s := cfg.AnchorStride / 2; s >= 1; s >>= 1 {
			for ci, cand := range tuneCandidates {
				var sum float64
				bk.runLevel(s, cand, func(z, y, x int, pred float32, owned bool) float32 {
					v := data[g.flat(z, y, x)]
					sum += math.Abs(float64(v) - float64(pred))
					return v // keep buf holding original values
				})
				errs[li][ci] = sum
			}
			li++
		}
		return errs
	}, func(a, b errMat) errMat {
		for li := range a {
			for ci := range a[li] {
				a[li][ci] += b[li][ci]
			}
		}
		return a
	})
	out := make([]LevelConfig, levels)
	for li := 0; li < levels; li++ {
		best := 0
		for ci := 1; ci < len(tuneCandidates); ci++ {
			if partials[li][ci] < partials[li][best] {
				best = ci
			}
		}
		out[li] = tuneCandidates[best]
	}
	return out
}
