// Package fft implements an iterative radix-2 complex FFT and a 3-D
// transform built on it. It is the numerical substrate for the spectral
// synthesis of turbulence- and cosmology-like test fields in
// internal/datagen (the paper evaluates on JHTDB and Nyx data whose
// compressibility is governed by their power spectra).
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// twiddles returns the first n/2 roots of unity exp(-2πi k/n) for a forward
// transform (conjugated for inverse).
func twiddles(n int, inverse bool) []complex128 {
	tw := make([]complex128, n/2)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := range tw {
		ang := sign * 2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return tw
}

// Transform performs an in-place FFT of x (len must be a power of two).
// inverse selects the inverse transform, which includes the 1/n scaling so
// that Transform(Transform(x, false), true) == x.
func Transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return nil
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := twiddles(n, inverse)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*step]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// Grid3 is a dense 3-D complex grid with dims (Nz, Ny, Nx), x fastest.
type Grid3 struct {
	Nz, Ny, Nx int
	Data       []complex128
}

// NewGrid3 allocates a zeroed grid; all dims must be powers of two.
func NewGrid3(nz, ny, nx int) (*Grid3, error) {
	if !IsPow2(nz) || !IsPow2(ny) || !IsPow2(nx) {
		return nil, fmt.Errorf("fft: grid dims %dx%dx%d must be powers of two", nz, ny, nx)
	}
	return &Grid3{Nz: nz, Ny: ny, Nx: nx, Data: make([]complex128, nz*ny*nx)}, nil
}

// At returns a pointer to element (z,y,x).
func (g *Grid3) At(z, y, x int) *complex128 {
	return &g.Data[(z*g.Ny+y)*g.Nx+x]
}

// Transform3 applies the (inverse) FFT along all three axes of g.
func Transform3(g *Grid3, inverse bool) error {
	// Along x: contiguous rows.
	for z := 0; z < g.Nz; z++ {
		for y := 0; y < g.Ny; y++ {
			row := g.Data[(z*g.Ny+y)*g.Nx : (z*g.Ny+y+1)*g.Nx]
			if err := Transform(row, inverse); err != nil {
				return err
			}
		}
	}
	// Along y.
	buf := make([]complex128, g.Ny)
	for z := 0; z < g.Nz; z++ {
		for x := 0; x < g.Nx; x++ {
			for y := 0; y < g.Ny; y++ {
				buf[y] = *g.At(z, y, x)
			}
			if err := Transform(buf, inverse); err != nil {
				return err
			}
			for y := 0; y < g.Ny; y++ {
				*g.At(z, y, x) = buf[y]
			}
		}
	}
	// Along z.
	bufz := make([]complex128, g.Nz)
	for y := 0; y < g.Ny; y++ {
		for x := 0; x < g.Nx; x++ {
			for z := 0; z < g.Nz; z++ {
				bufz[z] = *g.At(z, y, x)
			}
			if err := Transform(bufz, inverse); err != nil {
				return err
			}
			for z := 0; z < g.Nz; z++ {
				*g.At(z, y, x) = bufz[z]
			}
		}
	}
	return nil
}
