package datagen

import (
	"math"
	"testing"

	"repro/internal/fft"
	"repro/internal/metrics"
)

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestPaperNames(t *testing.T) {
	want := []string{"cesm", "jhtdb", "miranda", "nyx", "qmcpack", "rtm"}
	got := PaperNames()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PaperNames = %v", got)
		}
	}
}

func TestGenerateAllSmall(t *testing.T) {
	for _, name := range Names() {
		f, err := Generate(name, nil, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := 1
		for _, d := range f.Dims {
			n *= d
		}
		if f.Len() != n {
			t.Fatalf("%s: len %d != dims product %d", name, f.Len(), n)
		}
		if f.SizeBytes() != 4*n {
			t.Fatalf("%s: SizeBytes", name)
		}
		// Finite values and non-degenerate range.
		for i, v := range f.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite value at %d", name, i)
			}
		}
		_, _, rng := metrics.Range(f.Data)
		if rng <= 0 {
			t.Fatalf("%s: zero value range", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("jhtdb", []int{16, 16, 16}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate("jhtdb", []int{16, 16, 16}, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	c, _ := Generate("jhtdb", []int{16, 16, 16}, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestGenerateCustomDims(t *testing.T) {
	f, err := Generate("miranda", []int{10, 20, 30}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dims[0] != 10 || f.Dims[1] != 20 || f.Dims[2] != 30 {
		t.Fatalf("dims = %v", f.Dims)
	}
	if f.Len() != 6000 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestGenerateInvalidDims(t *testing.T) {
	if _, err := Generate("nyx", []int{0, 4, 4}, 1); err == nil {
		t.Fatal("want error for zero dim")
	}
}

func TestDefaultDims(t *testing.T) {
	small, err := DefaultDims("nyx", false)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := DefaultDims("nyx", true)
	if full[0] != 512 || small[0] >= full[0] {
		t.Fatalf("small=%v full=%v", small, full)
	}
	// Returned slices must be copies.
	small[0] = -1
	small2, _ := DefaultDims("nyx", false)
	if small2[0] == -1 {
		t.Fatal("DefaultDims aliases internal state")
	}
}

func TestSmoothnessOrdering(t *testing.T) {
	// Miranda (hydro, steep spectrum) must be smoother than JHTDB
	// (turbulence) which governs the paper's CR ordering. Measure mean
	// absolute 1-step difference relative to the field's std dev.
	rough := func(name string) float64 {
		f, err := Generate(name, []int{48, 48, 48}, 3)
		if err != nil {
			t.Fatal(err)
		}
		var sum, m, m2 float64
		for _, v := range f.Data {
			m += float64(v)
		}
		m /= float64(f.Len())
		for _, v := range f.Data {
			d := float64(v) - m
			m2 += d * d
		}
		std := math.Sqrt(m2 / float64(f.Len()))
		for i := 1; i < f.Len(); i++ {
			sum += math.Abs(float64(f.Data[i]) - float64(f.Data[i-1]))
		}
		return sum / float64(f.Len()-1) / std
	}
	if rough("miranda") >= rough("jhtdb") {
		t.Fatal("miranda should be smoother than jhtdb")
	}
	if rough("nyx") >= rough("cesm") {
		t.Fatal("nyx (steep spectrum) should be smoother than cesm (noisy)")
	}
}

func TestDims3Collapse(t *testing.T) {
	nz, ny, nx := dims3([]int{4, 5, 6, 7})
	if nz != 20 || ny != 6 || nx != 7 {
		t.Fatalf("dims3 4D = %d %d %d", nz, ny, nx)
	}
	nz, ny, nx = dims3([]int{9})
	if nz != 1 || ny != 1 || nx != 9 {
		t.Fatalf("dims3 1D = %d %d %d", nz, ny, nx)
	}
}

func TestHashNoiseRange(t *testing.T) {
	for i := 0; i < 10000; i++ {
		v := hashNoise(1, i)
		if v < -1 || v >= 1 {
			t.Fatalf("hashNoise out of range: %v", v)
		}
	}
}

func TestResampleIdentity(t *testing.T) {
	base := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	out := resample3(base, 2, 2, 2, 2, 2, 2)
	for i := range base {
		if out[i] != base[i] {
			t.Fatal("identity resample changed data")
		}
	}
	// Must be a copy.
	out[0] = 99
	if base[0] == 99 {
		t.Fatal("resample aliases base")
	}
}

func TestResampleUpscaleSmooth(t *testing.T) {
	// Constant field stays constant under trilinear resampling.
	base := make([]float32, 4*4*4)
	for i := range base {
		base[i] = 3.5
	}
	out := resample3(base, 4, 4, 4, 7, 9, 11)
	for i, v := range out {
		if v != 3.5 {
			t.Fatalf("resampled constant drifted at %d: %v", i, v)
		}
	}
}

func TestSpectralSlope(t *testing.T) {
	// The JHTDB stand-in must show a falling power spectrum in the
	// inertial range: energy in low-k shells far above mid-k shells, and a
	// dissipation-like collapse near the Nyquist shell.
	f, err := Generate("jhtdb", []int{64, 64, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fft.NewGrid3(64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f.Data {
		g.Data[i] = complex(float64(v), 0)
	}
	if err := fft.Transform3(g, false); err != nil {
		t.Fatal(err)
	}
	shell := make([]float64, 33)
	count := make([]int, 33)
	for z := 0; z < 64; z++ {
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				kz, ky, kx := z, y, x
				if kz > 32 {
					kz -= 64
				}
				if ky > 32 {
					ky -= 64
				}
				if kx > 32 {
					kx -= 64
				}
				k := int(math.Sqrt(float64(kz*kz+ky*ky+kx*kx)) + 0.5)
				if k > 32 {
					continue
				}
				c := g.Data[(z*64+y)*64+x]
				shell[k] += real(c)*real(c) + imag(c)*imag(c)
				count[k]++
			}
		}
	}
	norm := func(k int) float64 { return shell[k] / float64(count[k]) }
	if norm(2) < norm(10)*10 {
		t.Fatalf("spectrum not falling: P(2)=%g P(10)=%g", norm(2), norm(10))
	}
	if norm(10) < norm(28)*10 {
		t.Fatalf("no dissipation cutoff: P(10)=%g P(28)=%g", norm(10), norm(28))
	}
}
