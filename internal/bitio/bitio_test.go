package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(64)
	w.WriteBits(0x5, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(1, 1)
	w.WriteBits(0xFFFFFFFFFFFFFFFF, 64)
	w.WriteBits(0, 0)
	w.WriteBits(0x12345678, 31)
	r := NewReader(w.Bytes())
	for _, tc := range []struct {
		n    uint
		want uint64
	}{{3, 0x5}, {16, 0xABCD}, {1, 1}, {64, 0xFFFFFFFFFFFFFFFF}, {31, 0x12345678}} {
		got, err := r.ReadBits(tc.n)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", tc.n, err)
		}
		if got != tc.want {
			t.Fatalf("ReadBits(%d) = %#x, want %#x", tc.n, got, tc.want)
		}
	}
}

func TestWriteBitSequence(t *testing.T) {
	w := NewWriter(0)
	bits := make([]uint, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range bits {
		bits[i] = uint(rng.Intn(2))
		w.WriteBit(bits[i])
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestRoundTripRandomWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		type item struct {
			v uint64
			n uint
		}
		items := make([]item, 200)
		w := NewWriter(0)
		for i := range items {
			n := uint(rng.Intn(65))
			v := rng.Uint64()
			if n < 64 {
				v &= (1 << n) - 1
			}
			items[i] = item{v, n}
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil {
				t.Fatalf("trial %d item %d: %v", trial, i, err)
			}
			if got != it.v {
				t.Fatalf("trial %d item %d: got %#x want %#x (n=%d)", trial, i, got, it.v, it.n)
			}
		}
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBytes([]byte{1, 2, 3})
	w.WriteBits(0xF, 4)
	w.Align()
	w.WriteBytes([]byte{9, 8})
	r := NewReader(w.Bytes())
	got, err := r.ReadBytes(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("ReadBytes = %v, %v", got, err)
	}
	v, _ := r.ReadBits(4)
	if v != 0xF {
		t.Fatalf("nibble = %#x", v)
	}
	r.Align()
	got, err = r.ReadBytes(2)
	if err != nil || !bytes.Equal(got, []byte{9, 8}) {
		t.Fatalf("ReadBytes after align = %v, %v", got, err)
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	w.WriteBytes([]byte{0xAB, 0xCD})
	r := NewReader(w.Bytes())
	v, _ := r.ReadBits(3)
	if v != 0b101 {
		t.Fatalf("prefix = %#b", v)
	}
	b1, _ := r.ReadBits(8)
	b2, _ := r.ReadBits(8)
	if b1 != 0xAB || b2 != 0xCD {
		t.Fatalf("bytes = %#x %#x", b1, b2)
	}
}

func TestShortStream(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrShortStream {
		t.Fatalf("want ErrShortStream, got %v", err)
	}
	r2 := NewReader(nil)
	if _, err := r2.ReadBit(); err != ErrShortStream {
		t.Fatalf("want ErrShortStream, got %v", err)
	}
	r3 := NewReader([]byte{1, 2})
	if _, err := r3.ReadBytes(3); err == nil {
		t.Fatal("want error reading past end")
	}
}

func TestBitLenAndRemaining(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	b := w.Bytes()
	if len(b) != 2 {
		t.Fatalf("len = %d", len(b))
	}
	r := NewReader(b)
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining after read = %d", r.Remaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	w.WriteBits(0x1, 1)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 1 {
		t.Fatalf("after reset: %v", b)
	}
}

func TestUvarint(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for _, v := range cases {
		buf := AppendUvarint(nil, v)
		got, n := Uvarint(buf)
		if n != len(buf) || got != v {
			t.Fatalf("Uvarint(%d): got %d, n=%d len=%d", v, got, n, len(buf))
		}
	}
	if _, n := Uvarint([]byte{0x80, 0x80}); n != 0 {
		t.Fatal("truncated varint should return n=0")
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(x int64) bool { return UnZigZag(ZigZag(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes map to small codes.
	for _, tc := range []struct {
		x int64
		u uint64
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}} {
		if ZigZag(tc.x) != tc.u {
			t.Fatalf("ZigZag(%d) = %d, want %d", tc.x, ZigZag(tc.x), tc.u)
		}
	}
}

func TestBitsRoundTripProperty(t *testing.T) {
	f := func(vals []uint16, widthSeed uint8) bool {
		w := NewWriter(0)
		n := uint(widthSeed%16) + 1
		for _, v := range vals {
			w.WriteBits(uint64(v)&((1<<n)-1), n)
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadBits(n)
			if err != nil || got != uint64(v)&((1<<n)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// packedRef writes vals per-value with WriteBits — the reference the packed
// writers must match bit-for-bit.
func packedRef(vals []uint64, width uint, pre, post uint) []byte {
	w := NewWriter(0)
	w.WriteBits(0x2A, pre)
	for _, v := range vals {
		w.WriteBits(v, width)
	}
	w.WriteBits(0x15, post)
	return w.Bytes()
}

func TestWritePackedBytesMatchesWriteBits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for width := uint(1); width <= 8; width++ {
		for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 100} {
			for _, pre := range []uint{0, 3, 13} {
				vals := make([]byte, n)
				ref := make([]uint64, n)
				for i := range vals {
					vals[i] = byte(rng.Uint64())
					ref[i] = uint64(vals[i]) & (1<<width - 1)
				}
				w := NewWriter(0)
				w.WriteBits(0x2A, pre)
				w.WritePackedBytes(vals, width)
				w.WriteBits(0x15, 5)
				if got, want := w.Bytes(), packedRef(ref, width, pre, 5); !bytes.Equal(got, want) {
					t.Fatalf("width %d n %d pre %d: packed bytes differ", width, n, pre)
				}
			}
		}
	}
}

func TestWritePacked64MatchesWriteBits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, width := range []uint{1, 2, 3, 6, 7, 9, 16, 21, 31, 32, 33, 63, 64} {
		for _, n := range []int{0, 1, 2, 5, 8, 63, 64, 65} {
			vals := make([]uint64, n)
			ref := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64()
				if width < 64 {
					ref[i] = vals[i] & (1<<width - 1)
				} else {
					ref[i] = vals[i]
				}
			}
			w := NewWriter(0)
			w.WriteBits(0x2A, 11)
			w.WritePacked64(vals, width)
			w.WriteBits(0x15, 5)
			if got, want := w.Bytes(), packedRef(ref, width, 11, 5); !bytes.Equal(got, want) {
				t.Fatalf("width %d n %d: packed uint64 differ", width, n)
			}
		}
	}
}

func TestReadPackedBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for width := uint(1); width <= 8; width++ {
		for _, n := range []int{0, 1, 7, 8, 9, 100} {
			for _, pre := range []uint{0, 3} {
				vals := make([]byte, n)
				for i := range vals {
					vals[i] = byte(rng.Uint64()) & (1<<width - 1)
				}
				w := NewWriter(0)
				w.WriteBits(0x2A, pre)
				w.WritePackedBytes(vals, width)
				w.WriteBits(0x155, 9)
				r := NewReader(w.Bytes())
				if _, err := r.ReadBits(pre); err != nil {
					t.Fatal(err)
				}
				got := make([]byte, n)
				if err := r.ReadPackedBytes(got, width); err != nil {
					t.Fatalf("width %d n %d pre %d: %v", width, n, pre, err)
				}
				if !bytes.Equal(got, vals) {
					t.Fatalf("width %d n %d pre %d: values differ", width, n, pre)
				}
				if tail, err := r.ReadBits(9); err != nil || tail != 0x155 {
					t.Fatalf("width %d n %d pre %d: tail %#x err %v", width, n, pre, tail, err)
				}
			}
		}
	}
}

func TestReadPacked64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, width := range []uint{1, 5, 9, 17, 32, 33, 63, 64} {
		for _, n := range []int{0, 1, 8, 33} {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64()
				if width < 64 {
					vals[i] &= 1<<width - 1
				}
			}
			w := NewWriter(0)
			w.WriteBits(0x5, 3)
			w.WritePacked64(vals, width)
			w.WriteBits(0x155, 9)
			r := NewReader(w.Bytes())
			if _, err := r.ReadBits(3); err != nil {
				t.Fatal(err)
			}
			got := make([]uint64, n)
			if err := r.ReadPacked64(got, width); err != nil {
				t.Fatalf("width %d n %d: %v", width, n, err)
			}
			for i := range got {
				if got[i] != vals[i] {
					t.Fatalf("width %d n %d: value %d = %#x want %#x", width, n, i, got[i], vals[i])
				}
			}
			if tail, err := r.ReadBits(9); err != nil || tail != 0x155 {
				t.Fatalf("width %d n %d: tail %#x err %v", width, n, tail, err)
			}
		}
	}
}

func TestReadPackedShortStream(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 8)
	data := w.Bytes()
	r := NewReader(data)
	if err := r.ReadPackedBytes(make([]byte, 4), 7); err != ErrShortStream {
		t.Fatalf("ReadPackedBytes short: %v", err)
	}
	r = NewReader(data)
	if err := r.ReadPacked64(make([]uint64, 2), 33); err != ErrShortStream {
		t.Fatalf("ReadPacked64 short: %v", err)
	}
	if err := NewReader(data).ReadPackedBytes(make([]byte, 1), 9); err == nil {
		t.Fatal("ReadPackedBytes width 9 accepted")
	}
	if err := NewReader(data).ReadPacked64(make([]uint64, 1), 65); err == nil {
		t.Fatal("ReadPacked64 width 65 accepted")
	}
}
