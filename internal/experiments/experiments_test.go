package experiments

import (
	"bytes"
	"testing"

	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

func TestRunAllFixedEBCompressors(t *testing.T) {
	f, err := Dataset("nyx", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Table4Compressors() {
		r, err := Run(dev, c, f, 1e-2)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if r.CR <= 1 {
			t.Fatalf("%s: CR = %.2f", c.Name, r.CR)
		}
		if !r.BoundOK {
			t.Fatalf("%s: bound not OK", c.Name)
		}
		if r.CompGiBps <= 0 || r.DecGiBps <= 0 {
			t.Fatalf("%s: zero throughput", c.Name)
		}
	}
}

func TestRunZFP(t *testing.T) {
	f, err := Dataset("miranda", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(dev, CuZFP(8), f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed rate 8 => CR ~4.
	if r.CR < 3.5 || r.CR > 4.5 {
		t.Fatalf("cuZFP rate-8 CR = %.2f, want ~4", r.CR)
	}
	if r.PSNR < 40 {
		t.Fatalf("cuZFP PSNR = %.1f", r.PSNR)
	}
}

func TestDatasetCaching(t *testing.T) {
	a, err := Dataset("cesm", false, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Dataset("cesm", false, 7)
	if &a.Data[0] != &b.Data[0] {
		t.Fatal("dataset not cached")
	}
	c, _ := Dataset("cesm", false, 8)
	if &a.Data[0] == &c.Data[0] {
		t.Fatal("different seeds must not share cache entries")
	}
	if _, err := Dataset("bogus", false, 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestHiQuantCodes(t *testing.T) {
	f, err := Dataset("miranda", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	natural, err := HiQuantCodes(dev, f, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := HiQuantCodes(dev, f, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(natural) != f.Len() || len(reordered) != f.Len() {
		t.Fatal("code stream length mismatch")
	}
	// Same multiset of codes, different order.
	var ha, hb [256]int
	for i := range natural {
		ha[natural[i]]++
		hb[reordered[i]]++
	}
	if ha != hb {
		t.Fatal("reordering changed the code histogram")
	}
}

func TestFig6CodecsRoundTrip(t *testing.T) {
	f, err := Dataset("nyx", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := HiQuantCodes(dev, f, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	codes = codes[:1<<16] // keep the test fast
	codecs := Fig6Codecs()
	if len(codecs) < 20 {
		t.Fatalf("only %d Fig. 6 codecs", len(codecs))
	}
	seen := map[string]bool{}
	for _, c := range codecs {
		if seen[c.Name] {
			t.Fatalf("duplicate codec %q", c.Name)
		}
		seen[c.Name] = true
		enc, err := c.Encode(dev, codes)
		if err != nil {
			t.Fatalf("%s encode: %v", c.Name, err)
		}
		dec, err := c.Decode(dev, enc)
		if err != nil {
			t.Fatalf("%s decode: %v", c.Name, err)
		}
		if !bytes.Equal(dec, codes) {
			t.Fatalf("%s: round trip mismatch", c.Name)
		}
	}
}

func TestHiCRPipelineCompetitiveOnQuantCodes(t *testing.T) {
	// The selection rationale of §5.2.2: HF-RRE4-TCMS8-RZE1 should be at
	// or near the best compression ratio among the benchmarked pipelines.
	// At eb=1e-2 most codes are the zero code, so the Huffman output keeps
	// long runs — the regime where the reducing stages pay off (Table 1).
	f, err := Dataset("miranda", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := HiQuantCodes(dev, f, 1e-2, true)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{}
	for _, c := range Fig6Codecs() {
		enc, err := c.Encode(dev, codes)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		sizes[c.Name] = len(enc)
	}
	hiCR := sizes["HF-RRE4-TCMS8-RZE1"]
	hfOnly := sizes["HF"]
	if hiCR >= hfOnly {
		t.Fatalf("HiCR pipeline (%d) should beat HF alone (%d)", hiCR, hfOnly)
	}
	best := hiCR
	for _, s := range sizes {
		if s < best {
			best = s
		}
	}
	if float64(hiCR) > float64(best)*1.35 {
		t.Fatalf("HiCR pipeline (%d) far from best (%d)", hiCR, best)
	}
}

func TestExtraCompressors(t *testing.T) {
	f, err := Dataset("miranda", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	extras := ExtraCompressors()
	if len(extras) != 2 {
		t.Fatalf("extras = %d", len(extras))
	}
	results := map[string]RunResult{}
	for _, c := range extras {
		r, err := Run(dev, c, f, 1e-2)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		results[c.Name] = r
	}
	// Archetype signature: SZ3-like has the highest ratio, SZx the highest
	// throughput with the lowest ratio.
	hi, err := Run(dev, HiCR(), f, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if results["SZ3-like"].CR < hi.CR*0.95 {
		t.Fatalf("SZ3-like CR %.1f should be >= Hi-CR %.1f", results["SZ3-like"].CR, hi.CR)
	}
	if results["SZx"].CR >= hi.CR {
		t.Fatalf("SZx CR %.1f should trail Hi-CR %.1f", results["SZx"].CR, hi.CR)
	}
}
