// Shared positioned-I/O helpers and transient-error handling. Every layer
// that reads containers through an io.ReaderAt — the random-access stream
// reader, the crash-recovery scan, the scrubber — funnels through
// ReadFullAt, and the bounded-retry/backoff logic for flaky storage exists
// exactly once, in RetryPolicy.
//
// Error taxonomy. Failures a reader sees split into two families that must
// be handled differently:
//
//   - permanent: the bytes themselves are wrong. Format damage wraps
//     ErrCorrupt; file truncation surfaces as io.EOF/io.ErrUnexpectedEOF.
//     Re-reading cannot help, so these are never retried.
//   - transient: the storage failed to deliver bytes that may well be fine
//     (an NFS hiccup, a flaky block device returning EIO, an interrupted
//     read). Re-reading the same offsets can succeed; RetryPolicy does,
//     with exponential backoff.
package core

import (
	"errors"
	"hash/crc32"
	"io"
	"time"
)

// ReadFullAt reads len(p) bytes at off. The io.ReaderAt contract allows a
// full read that ends exactly at EOF to return io.EOF alongside the data,
// so that case counts as success here; a genuinely short read reports
// io.ErrUnexpectedEOF.
func ReadFullAt(src io.ReaderAt, p []byte, off int64) error {
	n, err := src.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// CRC32At computes the CRC-32 (IEEE) of the n bytes at off, reading in
// bounded blocks so a huge payload never forces a matching allocation.
func CRC32At(src io.ReaderAt, off, n int64) (uint32, error) {
	const step = 1 << 20
	buf := make([]byte, min(n, step))
	var crc uint32
	for n > 0 {
		c := min(n, step)
		if err := ReadFullAt(src, buf[:c], off); err != nil {
			return 0, err
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:c])
		off += c
		n -= c
	}
	return crc, nil
}

// IsTransient reports whether err is worth retrying: an I/O-layer failure
// rather than proof the data is wrong. Corruption (ErrCorrupt) and
// truncation (io.EOF, io.ErrUnexpectedEOF) are permanent — the same bytes
// come back on every read — so retrying them only burns the backoff budget.
func IsTransient(err error) bool {
	return err != nil &&
		!errors.Is(err, ErrCorrupt) &&
		!errors.Is(err, io.EOF) &&
		!errors.Is(err, io.ErrUnexpectedEOF)
}

// RetryPolicy bounds how a reader retries transient I/O failures. The zero
// value (and any Attempts < 2) disables retrying entirely and costs
// nothing on the fault-free path.
type RetryPolicy struct {
	// Attempts is the TOTAL number of tries per read, first included;
	// a read that fails transiently is reissued up to Attempts−1 times.
	Attempts int
	// BaseDelay is slept before the second attempt and doubles each
	// further attempt (exponential backoff), capped at maxBackoff.
	BaseDelay time.Duration
}

// maxBackoff caps the exponential growth so a large Attempts cannot sleep
// for minutes per read.
const maxBackoff = time.Second

// Enabled reports whether the policy retries at all.
func (rp RetryPolicy) Enabled() bool { return rp.Attempts > 1 }

// Backoff returns the delay before re-attempt number attempt (1-based: the
// delay between the first failure and the second try is Backoff(1)).
func (rp RetryPolicy) Backoff(attempt int) time.Duration {
	if rp.BaseDelay <= 0 {
		return 0
	}
	d := rp.BaseDelay
	for i := 1; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	return min(d, maxBackoff)
}

// retryReaderAt reissues transiently failing ReadAt calls per its policy.
type retryReaderAt struct {
	src io.ReaderAt
	rp  RetryPolicy
}

func (r retryReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.src.ReadAt(p, off)
	for attempt := 1; attempt < r.rp.Attempts && n < len(p) && IsTransient(err); attempt++ {
		time.Sleep(r.rp.Backoff(attempt))
		n, err = r.src.ReadAt(p, off)
	}
	return n, err
}

// WrapReaderAt returns a ReaderAt whose transiently failing reads are
// reissued per the policy; permanent failures (corruption, truncation)
// pass straight through. A disabled policy returns src unwrapped, so the
// fault-free fast path pays nothing — not even an interface indirection.
func (rp RetryPolicy) WrapReaderAt(src io.ReaderAt) io.ReaderAt {
	if !rp.Enabled() {
		return src
	}
	return retryReaderAt{src: src, rp: rp}
}

// retryReader is the sequential (io.Reader) counterpart of retryReaderAt.
// It only retries reads that delivered nothing: once bytes have been
// consumed from a stream the position has advanced, so reissuing the call
// would not re-read them.
type retryReader struct {
	src io.Reader
	rp  RetryPolicy
}

func (r retryReader) Read(p []byte) (int, error) {
	n, err := r.src.Read(p)
	for attempt := 1; attempt < r.rp.Attempts && n == 0 && IsTransient(err); attempt++ {
		time.Sleep(r.rp.Backoff(attempt))
		n, err = r.src.Read(p)
	}
	return n, err
}

// WrapReader is WrapReaderAt for sequential readers. A disabled policy
// returns src unwrapped.
func (rp RetryPolicy) WrapReader(src io.Reader) io.Reader {
	if !rp.Enabled() {
		return src
	}
	return retryReader{src: src, rp: rp}
}
