package interp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func synthField(dims []int, seed int64) []float32 {
	g := NewGrid(dims)
	out := make([]float32, g.Len())
	rng := rand.New(rand.NewSource(seed))
	// Smooth trigonometric base + mild noise.
	i := 0
	for z := 0; z < g.Nz; z++ {
		for y := 0; y < g.Ny; y++ {
			for x := 0; x < g.Nx; x++ {
				v := math.Sin(float64(x)*0.1) * math.Cos(float64(y)*0.07) * math.Cos(float64(z)*0.05)
				out[i] = float32(v + 0.02*rng.NormFloat64())
				i++
			}
		}
	}
	return out
}

func roundTrip(t *testing.T, data []float32, dims []int, cfg Config, eb float64) *Result {
	t.Helper()
	g := NewGrid(dims)
	res, err := Compress(dev, data, g, cfg, eb)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	recon, err := Decompress(dev, res, g, cfg, eb)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("error bound violated at index %d: %v vs %v (eb=%v)",
			i, data[i], recon[i], eb)
	}
	return res
}

func TestRoundTripHi3D(t *testing.T) {
	dims := []int{48, 48, 48}
	data := synthField(dims, 1)
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-5} {
		roundTrip(t, data, dims, HiConfig(), eb)
	}
}

func TestRoundTripCuszI3D(t *testing.T) {
	dims := []int{40, 40, 72}
	data := synthField(dims, 2)
	roundTrip(t, data, dims, CuszIConfig(), 1e-3)
}

func TestRoundTripNonAlignedDims(t *testing.T) {
	// Dims that are not multiples of the block size or anchor stride.
	for _, dims := range [][]int{
		{17, 17, 17}, {18, 33, 50}, {5, 7, 11}, {100, 3, 2}, {1, 300, 7},
	} {
		data := synthField(dims, 3)
		roundTrip(t, data, dims, HiConfig(), 1e-3)
	}
}

func TestRoundTrip2D(t *testing.T) {
	dims := []int{200, 150}
	data := synthField(dims, 4)
	roundTrip(t, data, dims, HiConfig(), 1e-3)
	roundTrip(t, data, dims, CuszIConfig(), 1e-3)
}

func TestRoundTrip1D(t *testing.T) {
	dims := []int{5000}
	data := synthField(dims, 5)
	roundTrip(t, data, dims, HiConfig(), 1e-3)
}

func TestRoundTripTinyInputs(t *testing.T) {
	for _, dims := range [][]int{{1}, {2}, {3, 3}, {1, 1, 1}, {2, 2, 2}} {
		data := synthField(dims, 6)
		roundTrip(t, data, dims, HiConfig(), 1e-3)
	}
}

func TestRoundTripAllSchemes(t *testing.T) {
	dims := []int{33, 34, 35}
	data := synthField(dims, 7)
	for _, sch := range []Scheme{Seq1DXYZ, Seq1DZYX, MD} {
		for _, sp := range []Spline{Linear, Cubic} {
			cfg := HiConfig()
			cfg.PerLevel = uniformLevels(cfg.Levels(), LevelConfig{Scheme: sch, Spline: sp})
			roundTrip(t, data, dims, cfg, 1e-3)
		}
	}
}

func TestRoundTripExtremeValues(t *testing.T) {
	dims := []int{20, 20, 20}
	g := NewGrid(dims)
	data := make([]float32, g.Len())
	rng := rand.New(rand.NewSource(8))
	for i := range data {
		data[i] = float32(rng.NormFloat64()) * 1e20 // huge magnitudes -> outliers
	}
	res := roundTrip(t, data, dims, HiConfig(), 1e-3)
	if res.Outliers.Len() == 0 {
		t.Fatal("expected outliers for wild data")
	}
}

func TestRoundTripConstantField(t *testing.T) {
	dims := []int{32, 32, 32}
	g := NewGrid(dims)
	data := make([]float32, g.Len())
	for i := range data {
		data[i] = 7.25
	}
	res := roundTrip(t, data, dims, HiConfig(), 1e-3)
	// Constant data predicts perfectly: all codes must be the zero code.
	for i, c := range res.Codes {
		if c != 128 {
			t.Fatalf("code[%d] = %d on constant field", i, c)
		}
	}
	if res.Outliers.Len() != 0 {
		t.Fatal("constant field should have no outliers")
	}
}

func TestCodesConcentratedOnSmoothField(t *testing.T) {
	// On a smooth field most codes should equal the zero code — that is
	// the compressibility premise of the paper.
	f, err := datagen.Generate("miranda", []int{48, 48, 48}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	g := NewGrid(f.Dims)
	res, err := Compress(dev, f.Data, g, HiConfig(), eb)
	if err != nil {
		t.Fatal(err)
	}
	near := 0
	for _, c := range res.Codes {
		if c >= 126 && c <= 130 {
			near++
		}
	}
	if frac := float64(near) / float64(len(res.Codes)); frac < 0.5 {
		t.Fatalf("only %.1f%% of codes are near zero on smooth data", frac*100)
	}
}

func TestHiPredictsBetterThanNoInterpolation(t *testing.T) {
	// The quantization codes must be overwhelmingly near 128 vs the raw
	// value spread: checks the predictor actually predicts.
	f, err := datagen.Generate("jhtdb", []int{32, 32, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	g := NewGrid(f.Dims)
	res, err := Compress(dev, f.Data, g, HiConfig(), eb)
	if err != nil {
		t.Fatal(err)
	}
	var within1 int
	for _, c := range res.Codes {
		if c >= 127 && c <= 129 {
			within1++
		}
	}
	if frac := float64(within1) / float64(len(res.Codes)); frac < 0.3 {
		t.Fatalf("codes not concentrated: %.1f%% within ±1", frac*100)
	}
}

func TestDeterministicCompression(t *testing.T) {
	dims := []int{33, 40, 41}
	data := synthField(dims, 9)
	g := NewGrid(dims)
	a, err := Compress(dev, data, g, HiConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(gpusim.New(1), data, g, HiConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatalf("codes differ at %d between parallel and serial runs", i)
		}
	}
	if a.Outliers.Len() != b.Outliers.Len() {
		t.Fatal("outlier counts differ")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{AnchorStride: 3, BlockZ: 16, BlockY: 16, BlockX: 16},
		{AnchorStride: 16, BlockZ: 15, BlockY: 16, BlockX: 16},
		{AnchorStride: 16, BlockZ: 16, BlockY: 16, BlockX: 16}, // no PerLevel
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
	good := HiConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.Levels(); got != 4 {
		t.Fatalf("Hi levels = %d", got)
	}
	if got := CuszIConfig().Levels(); got != 3 {
		t.Fatalf("cuSZ-I levels = %d", got)
	}
}

func TestCompressErrors(t *testing.T) {
	g := NewGrid([]int{4, 4, 4})
	data := make([]float32, 64)
	if _, err := Compress(dev, data[:10], g, HiConfig(), 1e-3); err == nil {
		t.Fatal("want size mismatch error")
	}
	if _, err := Compress(dev, data, g, HiConfig(), 0); err == nil {
		t.Fatal("want eb error")
	}
	cfg := HiConfig()
	cfg.AnchorStride = 5
	if _, err := Compress(dev, data, g, cfg, 1e-3); err == nil {
		t.Fatal("want config error")
	}
}

func TestInterp1Orders(t *testing.T) {
	// Full cubic stencil on a cubic polynomial should be (near) exact at
	// the midpoint.
	f := func(x float64) float64 { return 2*x*x*x - x*x + 3*x - 1 }
	a, p, q, d := float32(f(-3)), float32(f(-1)), float32(f(1)), float32(f(3))
	pred, order := interp1(a, p, q, d, true, true, true, true, Cubic)
	if order != 3 {
		t.Fatalf("order = %d", order)
	}
	if math.Abs(float64(pred)-f(0)) > 1e-4 {
		t.Fatalf("cubic midpoint = %v, want %v", pred, f(0))
	}
	// Linear spline ignores the outer points.
	pred, order = interp1(a, p, q, d, true, true, true, true, Linear)
	if order != 1 || pred != (p+q)/2 {
		t.Fatalf("linear = %v (order %d)", pred, order)
	}
	// One-sided extrapolation.
	pred, order = interp1(a, p, 0, 0, true, true, false, false, Cubic)
	if order != 0 || pred != (3*p-a)/2 {
		t.Fatalf("extrapolation = %v (order %d)", pred, order)
	}
	// Copy fallback.
	pred, order = interp1(0, p, 0, 0, false, true, false, false, Cubic)
	if order != 0 || pred != p {
		t.Fatalf("copy = %v (order %d)", pred, order)
	}
}

func TestAutoTunePrefersCubicOnSmoothData(t *testing.T) {
	dims := []int{64, 64, 64}
	g := NewGrid(dims)
	data := make([]float32, g.Len())
	i := 0
	for z := 0; z < 64; z++ {
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				data[i] = float32(math.Sin(float64(x)*0.15) + math.Cos(float64(y)*0.12) + math.Sin(float64(z)*0.1))
				i++
			}
		}
	}
	choices := AutoTune(dev, data, g, HiConfig(), 0.3)
	if len(choices) != 4 {
		t.Fatalf("choices = %v", choices)
	}
	// The finest level of a smooth field strongly favours cubic splines.
	if choices[len(choices)-1].Spline != Cubic {
		t.Fatalf("finest level chose %v; want cubic on smooth data", choices[len(choices)-1])
	}
}

func TestAutoTuneImprovesOrMatches(t *testing.T) {
	f, err := datagen.Generate("cesm", []int{128, 256}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(f.Dims)
	eb := metrics.AbsEB(f.Data, 1e-3)
	cfg := HiConfig()
	resDefault, err := Compress(dev, f.Data, g, cfg, eb)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PerLevel = AutoTune(dev, f.Data, g, cfg, 0.2)
	resTuned, err := Compress(dev, f.Data, g, cfg, eb)
	if err != nil {
		t.Fatal(err)
	}
	absSum := func(codes []uint8) (s int64) {
		for _, c := range codes {
			d := int64(c) - 128
			if d < 0 {
				d = -d
			}
			s += d
		}
		return
	}
	// Tuned configs must not be substantially worse than the default.
	if absSum(resTuned.Codes) > absSum(resDefault.Codes)*11/10 {
		t.Fatalf("tuned error %d much worse than default %d", absSum(resTuned.Codes), absSum(resDefault.Codes))
	}
}

func TestGridHelpers(t *testing.T) {
	g := NewGrid([]int{4, 5, 6, 7}) // 4-D collapses
	if g.Nz != 20 || g.Ny != 6 || g.Nx != 7 {
		t.Fatalf("grid = %+v", g)
	}
	g2 := NewGrid([]int{33, 33, 33})
	az, ay, ax := g2.AnchorDims(16)
	if az != 3 || ay != 3 || ax != 3 {
		t.Fatalf("anchor dims = %d %d %d", az, ay, ax)
	}
	if g2.AnchorCount(16) != 27 {
		t.Fatal("anchor count")
	}
}

func TestBlockGridCounts(t *testing.T) {
	cfg := HiConfig()
	for _, tc := range []struct {
		dims       []int
		wz, wy, wx int
	}{
		{[]int{17, 17, 17}, 1, 1, 1},
		{[]int{18, 17, 33}, 2, 1, 2},
		{[]int{1, 16, 100}, 1, 1, 7},
		{[]int{2, 2, 2}, 1, 1, 1},
	} {
		g := NewGrid(tc.dims)
		nz, ny, nx := blockGrid(g, &cfg)
		if nz != tc.wz || ny != tc.wy || nx != tc.wx {
			t.Fatalf("dims %v: blocks %d %d %d, want %d %d %d", tc.dims, nz, ny, nx, tc.wz, tc.wy, tc.wx)
		}
	}
}

func TestErrorBoundPropertyRandomFields(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		dims := []int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)}
		g := NewGrid(dims)
		data := make([]float32, g.Len())
		for i := range data {
			data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3)))
		}
		eb := math.Pow(10, -float64(1+rng.Intn(4)))
		cfg := HiConfig()
		if trial%2 == 1 {
			cfg = CuszIConfig()
		}
		res, err := Compress(dev, data, g, cfg, eb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		recon, err := Decompress(dev, res, g, cfg, eb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
			t.Fatalf("trial %d dims %v eb %v: violation at %d: %v vs %v",
				trial, dims, eb, i, data[i], recon[i])
		}
	}
}
