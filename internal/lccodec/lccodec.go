// Package lccodec implements the LC-framework-style lossless components
// that cuSZ-Hi composes into its encoding pipelines (§5.2, Fig. 6/7):
//
//   - RRE{w}  — repeat elimination: a bitmap marks symbols identical to
//     their predecessor; marked symbols are dropped and the bitmap is
//     compressed recursively.
//   - RZE{w}  — zero elimination: same, but marks zero symbols.
//   - TCMS{w} — two's-complement → magnitude-sign transform
//     ((word << 1) ^ (word >> (8w-1)), the operation quoted in §5.2.3).
//   - BIT1    — bit shuffle: transposes the 8 bit planes of byte blocks.
//   - DIFFMS1 — byte delta followed by magnitude-sign mapping.
//   - CLOG1   — per-block ceiling-log2 fixed-width bit packing.
//   - TUPLD/TUPLQ{w} — tuple deinterleave into 2 / 4 sub-streams (SoA).
//   - HF      — the canonical Huffman coder from internal/huffman.
//
// The number in a component name is the width in bytes of the symbols it
// processes, exactly as in the paper's pipeline names. A Pipeline chains
// components: cuSZ-Hi-CR uses HF-RRE4-TCMS8-RZE1, cuSZ-Hi-TP uses
// TCMS1-BIT1-RRE1.
//
// Every stage draws its output buffer from an optional arena.Ctx, so a
// pipeline run over a reused context performs no per-stage allocations;
// stage outputs obtained through a context are scratch, valid until the
// next ctx.Reset.
package lccodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/huffman"
)

// ErrCorrupt reports a malformed component stream.
var ErrCorrupt = errors.New("lccodec: corrupt stream")

// Batched selects the uint64-packed byte-parallel kernels (the default):
// SWAR zigzag in TCMS1, whole-group bitmap handling in RRE1/RZE1, and
// packed fixed-width I/O in CLOG1. The scalar reference paths stay
// selectable so the equivalence property tests can assert byte-identical
// streams between the two. Toggle only from tests, before any launch.
var Batched = true

// SWAR per-byte bit masks.
const (
	swarLo = 0x0101010101010101
	swarHi = 0x8080808080808080
)

// hasZeroByte reports whether any byte of v is zero (Hacker's Delight 6-1).
//
//cuszhi:hotpath
func hasZeroByte(v uint64) bool {
	return (v-swarLo) & ^v & swarHi != 0
}

// byteMask widens per-byte 0/1 flags (bit 0 of each byte of m) to 0x00/0xFF.
//
//cuszhi:hotpath
func byteMask(m uint64) uint64 {
	return (m << 8) - m
}

// Component is one reversible stage of a lossless pipeline. ctx may be nil.
type Component interface {
	Name() string
	Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error)
	Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error)
}

// ---------------------------------------------------------------------------
// Symbol access helpers.

// loadSym reads the w-byte little-endian symbol at index i.
//
//cuszhi:hotpath
func loadSym(p []byte, i, w int) uint64 {
	off := i * w
	switch w {
	case 1:
		return uint64(p[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[off:]))
	case 8:
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for k := w - 1; k >= 0; k-- {
		v = v<<8 | uint64(p[off+k])
	}
	return v
}

// storeSym writes the w-byte little-endian symbol at index i.
//
//cuszhi:hotpath
func storeSym(p []byte, i, w int, v uint64) {
	off := i * w
	switch w {
	case 1:
		p[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(p[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(p[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(p[off:], v)
	default:
		for k := 0; k < w; k++ {
			p[off+k] = byte(v >> (8 * k))
		}
	}
}

// ---------------------------------------------------------------------------
// TCMS — two's complement to magnitude-sign (zigzag), width w.

type tcms struct{ w int }

func (c tcms) Name() string { return fmt.Sprintf("TCMS%d", c.w) }

func (c tcms) Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	return c.apply(ctx, dev, src, true), nil
}

func (c tcms) Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	return c.apply(ctx, dev, src, false), nil
}

func (c tcms) apply(ctx *arena.Ctx, dev *gpusim.Device, src []byte, fwd bool) []byte {
	out := ctx.Bytes(len(src))
	if c.w == 1 {
		// Byte-wide fast path: zigzag on int8, no symbol load/store helpers.
		// The batched kernel runs the transform byte-parallel over uint64
		// lanes (SWAR): isolate the per-byte sign (encode) or low (decode)
		// bits, widen them to full-byte masks, and XOR — eight symbols per
		// load/store, bit-identical to the scalar form.
		dev.LaunchBatched(len(src), 1<<16, 8, func(lo, hi int) {
			i := lo
			if Batched {
				for ; i+8 <= hi; i += 8 {
					v := binary.LittleEndian.Uint64(src[i:])
					var r uint64
					if fwd {
						r = (v<<1)&^swarLo ^ byteMask(v>>7&swarLo)
					} else {
						r = (v>>1)&^swarHi ^ byteMask(v&swarLo)
					}
					binary.LittleEndian.PutUint64(out[i:], r)
				}
			}
			if fwd {
				for ; i < hi; i++ {
					b := src[i]
					out[i] = (b << 1) ^ byte(int8(b)>>7)
				}
			} else {
				for ; i < hi; i++ {
					b := src[i]
					out[i] = byte(int8(b>>1) ^ -int8(b&1))
				}
			}
		})
		return out
	}
	n := len(src) / c.w
	shift := uint(8*c.w - 1)
	var mask uint64 = ^uint64(0)
	if c.w < 8 {
		mask = 1<<(8*c.w) - 1
	}
	dev.LaunchChunks(n, 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := loadSym(src, i, c.w)
			var r uint64
			if fwd {
				// Sign-extend then zigzag within width.
				sign := v >> shift & 1
				r = (v << 1) & mask
				if sign != 0 {
					r ^= mask
				}
			} else {
				r = v >> 1
				if v&1 != 0 {
					r ^= mask
				}
				r &= mask
			}
			storeSym(out, i, c.w, r&mask)
		}
	})
	copy(out[n*c.w:], src[n*c.w:]) // tail bytes pass through
	return out
}

// ---------------------------------------------------------------------------
// BIT1 — bit shuffle over fixed byte blocks.

const bitShuffleBlock = 4096

type bitShuffle struct{}

func (bitShuffle) Name() string { return "BIT1" }

func (bitShuffle) Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	out := ctx.Bytes(len(src))
	nBlocks := (len(src) + bitShuffleBlock - 1) / bitShuffleBlock
	dev.Launch(nBlocks, func(b int) {
		lo := b * bitShuffleBlock
		hi := lo + bitShuffleBlock
		if hi > len(src) {
			hi = len(src)
		}
		shuffleBlock(src[lo:hi], out[lo:hi])
	})
	return out, nil
}

func (bitShuffle) Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	out := ctx.Bytes(len(src))
	nBlocks := (len(src) + bitShuffleBlock - 1) / bitShuffleBlock
	dev.Launch(nBlocks, func(b int) {
		lo := b * bitShuffleBlock
		hi := lo + bitShuffleBlock
		if hi > len(src) {
			hi = len(src)
		}
		unshuffleBlock(src[lo:hi], out[lo:hi])
	})
	return out, nil
}

// transpose8x8 transposes the 8×8 bit matrix packed in x (row r = byte r,
// column c = bit c), Hacker's Delight 7-3. It is an involution.
//
//cuszhi:hotpath
func transpose8x8(x uint64) uint64 {
	t := (x ^ (x >> 7)) & 0x00AA00AA00AA00AA
	x = x ^ t ^ (t << 7)
	t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCC
	x = x ^ t ^ (t << 14)
	t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0
	return x ^ t ^ (t << 28)
}

// shuffleBlock gathers bit plane p of every byte into contiguous output
// bits. Output layout: plane 0 of all n bytes, then plane 1, etc. A block of
// n bytes has 8n bits; plane p occupies bits [p*n, (p+1)*n). Full blocks
// (n divisible by 8) run as 8×8 bit-matrix transposes, eight bytes per
// step; ragged tails fall back to the bit-at-a-time loop.
//
//cuszhi:hotpath
func shuffleBlock(src, dst []byte) {
	n := len(src)
	if n%8 == 0 {
		ps := n >> 3 // plane stride in bytes
		for i := 0; i+8 <= n; i += 8 {
			y := transpose8x8(binary.LittleEndian.Uint64(src[i:]))
			o := i >> 3
			dst[o] = byte(y)
			dst[ps+o] = byte(y >> 8)
			dst[2*ps+o] = byte(y >> 16)
			dst[3*ps+o] = byte(y >> 24)
			dst[4*ps+o] = byte(y >> 32)
			dst[5*ps+o] = byte(y >> 40)
			dst[6*ps+o] = byte(y >> 48)
			dst[7*ps+o] = byte(y >> 56)
		}
		return
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, b := range src {
		for p := 0; p < 8; p++ {
			if b>>p&1 != 0 {
				bitPos := p*n + i
				dst[bitPos>>3] |= 1 << (bitPos & 7)
			}
		}
	}
}

//cuszhi:hotpath
func unshuffleBlock(src, dst []byte) {
	n := len(dst)
	if n%8 == 0 {
		ps := n >> 3
		var tmp [8]byte
		for i := 0; i+8 <= n; i += 8 {
			o := i >> 3
			tmp[0] = src[o]
			tmp[1] = src[ps+o]
			tmp[2] = src[2*ps+o]
			tmp[3] = src[3*ps+o]
			tmp[4] = src[4*ps+o]
			tmp[5] = src[5*ps+o]
			tmp[6] = src[6*ps+o]
			tmp[7] = src[7*ps+o]
			binary.LittleEndian.PutUint64(dst[i:], transpose8x8(binary.LittleEndian.Uint64(tmp[:])))
		}
		return
	}
	for i := range dst {
		dst[i] = 0
	}
	for p := 0; p < 8; p++ {
		for i := 0; i < n; i++ {
			bitPos := p*n + i
			if src[bitPos>>3]>>(bitPos&7)&1 != 0 {
				dst[i] |= 1 << p
			}
		}
	}
}

// ---------------------------------------------------------------------------
// RRE / RZE — repeat / zero elimination with recursively compressed bitmap.

type elim struct {
	w     int
	zero  bool // true: RZE (mark zeros); false: RRE (mark repeats)
	depth int  // remaining recursive-bitmap budget; 0 value means "fresh"
}

func (c elim) budget() int {
	if c.depth == 0 {
		return maxBitmapDepth
	}
	return c.depth
}

func (c elim) Name() string {
	if c.zero {
		return fmt.Sprintf("RZE%d", c.w)
	}
	return fmt.Sprintf("RRE%d", c.w)
}

const (
	bitmapRaw       = 0x00
	bitmapRecursive = 0x01
	maxBitmapDepth  = 4
	minRecurseSize  = 64
)

func (c elim) Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	n := len(src) / c.w
	tail := src[n*c.w:]
	bitmap := ctx.Bytes((n + 7) / 8)
	clear(bitmap)
	kept := ctx.Bytes(len(src))[:0]
	if c.w == 1 {
		// Byte-wide fast path for the pipelines' hot RRE1/RZE1 stages. The
		// batched path classifies eight symbols per uint64 load: all-drop
		// and all-keep groups (the overwhelming majority on shuffled
		// bitplane data) resolve with one bitmap-byte store and one bulk
		// append; only mixed groups fall back to the per-symbol body.
		var prev byte
		i := 0
		if Batched {
			for ; i+8 <= n; i += 8 {
				v := binary.LittleEndian.Uint64(src[i:])
				if c.zero {
					if v == 0 {
						continue // all zero: dropped, bitmap byte stays 0
					}
					if !hasZeroByte(v) {
						bitmap[i>>3] = 0xFF
						kept = append(kept, src[i:i+8]...)
						continue
					}
				} else if i > 0 {
					if v == uint64(prev)*swarLo {
						continue // all repeat the running value
					}
					if !hasZeroByte(v ^ (v<<8 | uint64(prev))) {
						bitmap[i>>3] = 0xFF
						kept = append(kept, src[i:i+8]...)
						prev = byte(v >> 56)
						continue
					}
				}
				for j := i; j < i+8; j++ {
					b := src[j]
					var keep bool
					if c.zero {
						keep = b != 0
					} else {
						keep = j == 0 || b != prev
						prev = b
					}
					if keep {
						bitmap[j>>3] |= 1 << (j & 7)
						kept = append(kept, b)
					}
				}
			}
		}
		for ; i < n; i++ {
			v := src[i]
			var keep bool
			if c.zero {
				keep = v != 0
			} else {
				keep = i == 0 || v != prev
				prev = v
			}
			if keep {
				bitmap[i>>3] |= 1 << (i & 7)
				kept = append(kept, v)
			}
		}
	} else {
		var prev uint64
		for i := 0; i < n; i++ {
			v := loadSym(src, i, c.w)
			keep := false
			if c.zero {
				keep = v != 0
			} else {
				keep = i == 0 || v != prev
				prev = v
			}
			if keep {
				bitmap[i>>3] |= 1 << (i & 7)
				kept = append(kept, src[i*c.w:(i+1)*c.w]...)
			}
		}
	}
	bm := encodeBitmap(ctx, dev, bitmap, c.budget())
	out := ctx.Bytes(len(bm) + len(kept) + len(tail) + 20)[:0]
	out = bitio.AppendUvarint(out, uint64(len(src)))
	out = bitio.AppendUvarint(out, uint64(len(bm)))
	out = append(out, bm...)
	out = append(out, kept...)
	out = append(out, tail...)
	return out, nil
}

func (c elim) Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	// Both lengths come off the wire: cap them before converting to int so
	// a hostile stream can neither overflow to a negative slice bound nor
	// force an absurd allocation (1<<35 = the container element cap times
	// the widest symbol these stages carry).
	origLen, n0 := bitio.Uvarint(src)
	if n0 == 0 || origLen > 1<<35 {
		return nil, ErrCorrupt
	}
	off := n0
	bmLen, n1 := bitio.Uvarint(src[off:])
	if n1 == 0 || bmLen > uint64(len(src)) {
		return nil, ErrCorrupt
	}
	off += n1
	if off+int(bmLen) > len(src) {
		return nil, ErrCorrupt
	}
	nSym := int(origLen) / c.w
	bitmap, err := decodeBitmap(ctx, dev, src[off:off+int(bmLen)], (nSym+7)/8, c.budget())
	if err != nil {
		return nil, err
	}
	off += int(bmLen)
	out := ctx.Bytes(int(origLen))
	keptOff := off
	if c.w == 1 {
		// Mirror of the encoder's group fast path: a full bitmap byte
		// copies eight kept symbols at once, an empty one stores eight
		// zeros or eight copies of the running value; mixed bytes fall
		// back to per-symbol decoding.
		var prev byte
		i := 0
		if Batched {
			for ; i+8 <= nSym; i += 8 {
				switch bitmap[i>>3] {
				case 0xFF:
					if keptOff+8 > len(src) {
						return nil, ErrCorrupt
					}
					copy(out[i:i+8], src[keptOff:keptOff+8])
					keptOff += 8
					if !c.zero {
						prev = out[i+7]
					}
					continue
				case 0x00:
					if c.zero {
						binary.LittleEndian.PutUint64(out[i:], 0)
						continue
					}
					if i == 0 {
						return nil, ErrCorrupt // first symbol must be kept
					}
					binary.LittleEndian.PutUint64(out[i:], uint64(prev)*swarLo)
					continue
				}
				for j := i; j < i+8; j++ {
					if bitmap[j>>3]>>(j&7)&1 != 0 {
						if keptOff >= len(src) {
							return nil, ErrCorrupt
						}
						v := src[keptOff]
						keptOff++
						out[j] = v
						if !c.zero {
							prev = v
						}
					} else if c.zero {
						out[j] = 0
					} else {
						if j == 0 {
							return nil, ErrCorrupt // first symbol must be kept
						}
						out[j] = prev
					}
				}
			}
		}
		for ; i < nSym; i++ {
			if bitmap[i>>3]>>(i&7)&1 != 0 {
				if keptOff >= len(src) {
					return nil, ErrCorrupt
				}
				v := src[keptOff]
				keptOff++
				out[i] = v
				if !c.zero {
					prev = v
				}
			} else if c.zero {
				out[i] = 0
			} else {
				if i == 0 {
					return nil, ErrCorrupt // first symbol must be kept
				}
				out[i] = prev
			}
		}
	} else {
		var prev uint64
		for i := 0; i < nSym; i++ {
			if bitmap[i>>3]>>(i&7)&1 != 0 {
				if keptOff+c.w > len(src) {
					return nil, ErrCorrupt
				}
				copy(out[i*c.w:], src[keptOff:keptOff+c.w])
				keptOff += c.w
				if !c.zero {
					prev = loadSym(out, i, c.w)
				}
			} else {
				if c.zero {
					storeSym(out, i, c.w, 0)
				} else {
					if i == 0 {
						return nil, ErrCorrupt // first symbol must be kept
					}
					storeSym(out, i, c.w, prev)
				}
			}
		}
	}
	tailLen := int(origLen) - nSym*c.w
	if keptOff+tailLen != len(src) {
		return nil, ErrCorrupt
	}
	copy(out[nSym*c.w:], src[keptOff:])
	return out, nil
}

// encodeBitmap compresses a bitmap, recursing through RRE1 while it shrinks.
func encodeBitmap(ctx *arena.Ctx, dev *gpusim.Device, bm []byte, depth int) []byte {
	if depth > 1 && len(bm) >= minRecurseSize {
		inner, err := elim{w: 1, depth: depth - 1}.Encode(ctx, dev, bm)
		if err == nil && len(inner) < len(bm) {
			out := ctx.Bytes(len(inner) + 1)[:0]
			out = append(out, bitmapRecursive)
			return append(out, inner...)
		}
	}
	out := ctx.Bytes(len(bm) + 1)[:0]
	out = append(out, bitmapRaw)
	return append(out, bm...)
}

func decodeBitmap(ctx *arena.Ctx, dev *gpusim.Device, p []byte, wantLen, depth int) ([]byte, error) {
	if len(p) == 0 {
		if wantLen == 0 {
			return nil, nil
		}
		return nil, ErrCorrupt
	}
	switch p[0] {
	case bitmapRaw:
		bm := p[1:]
		if len(bm) != wantLen {
			return nil, ErrCorrupt
		}
		return bm, nil
	case bitmapRecursive:
		if depth <= 1 {
			return nil, ErrCorrupt
		}
		bm, err := (elim{w: 1, depth: depth - 1}).Decode(ctx, dev, p[1:])
		if err != nil {
			return nil, err
		}
		if len(bm) != wantLen {
			return nil, ErrCorrupt
		}
		return bm, nil
	}
	return nil, ErrCorrupt
}

// ---------------------------------------------------------------------------
// DIFFMS1 — byte delta + magnitude-sign.

type diffms struct{}

func (diffms) Name() string { return "DIFFMS1" }

func (diffms) Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	out := ctx.Bytes(len(src))
	var prev byte
	for i, b := range src {
		d := int8(b - prev)
		out[i] = byte((d << 1) ^ (d >> 7))
		prev = b
	}
	return out, nil
}

func (diffms) Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	out := ctx.Bytes(len(src))
	var prev byte
	for i, b := range src {
		d := byte(int8(b>>1) ^ -int8(b&1))
		prev += d
		out[i] = prev
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// CLOG1 — per-block ceiling-log2 fixed-width packing of bytes.

const clogBlock = 256

type clog struct{}

func (clog) Name() string { return "CLOG1" }

func (clog) Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	nBlocks := (len(src) + clogBlock - 1) / clogBlock
	var w bitio.Writer
	// Worst case: every block at width 8 plus its 4-bit header.
	w.ResetWithBuf(ctx.Bytes(len(src) + nBlocks/2 + 16)[:0])
	for b := 0; b < nBlocks; b++ {
		lo := b * clogBlock
		hi := lo + clogBlock
		if hi > len(src) {
			hi = len(src)
		}
		blk := src[lo:hi]
		var maxv byte
		if Batched {
			// The block width is ceil-log2 of the max, which only depends
			// on the highest bit set anywhere — so an 8-bytes-per-load OR
			// reduction replaces the byte-wise max scan.
			var acc uint64
			i := 0
			for ; i+8 <= len(blk); i += 8 {
				acc |= binary.LittleEndian.Uint64(blk[i:])
			}
			acc |= acc >> 32
			acc |= acc >> 16
			acc |= acc >> 8
			maxv = byte(acc)
			for ; i < len(blk); i++ {
				maxv |= blk[i]
			}
		} else {
			for _, v := range blk {
				if v > maxv {
					maxv = v
				}
			}
		}
		width := uint(bits.Len8(maxv))
		w.WriteBits(uint64(width), 4)
		if width > 0 {
			if Batched {
				w.WritePackedBytes(blk, width)
			} else {
				for _, v := range blk {
					w.WriteBits(uint64(v), width)
				}
			}
		}
	}
	packed := w.Bytes()
	out := ctx.Bytes(len(packed) + 10)[:0]
	out = bitio.AppendUvarint(out, uint64(len(src)))
	return append(out, packed...), nil
}

func (clog) Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	origLen, n := bitio.Uvarint(src)
	if n == 0 || origLen > 1<<35 { // wire length: cap before int conversion
		return nil, ErrCorrupt
	}
	// Every block costs at least its 4-bit width header, so a stream
	// shorter than half a byte per block is lying about origLen — reject
	// it before the output allocation, not after.
	nBlocks := int((origLen + clogBlock - 1) / clogBlock)
	if nBlocks > 2*(len(src)-n) {
		return nil, ErrCorrupt
	}
	r := bitio.NewReader(src[n:])
	out := ctx.Bytes(int(origLen))
	for b := 0; b < nBlocks; b++ {
		lo := b * clogBlock
		hi := lo + clogBlock
		if hi > len(out) {
			hi = len(out)
		}
		width64, err := r.ReadBits(4)
		if err != nil {
			return nil, ErrCorrupt
		}
		width := uint(width64)
		if width > 8 {
			return nil, ErrCorrupt
		}
		if width == 0 {
			clear(out[lo:hi])
			continue
		}
		if Batched {
			if err := r.ReadPackedBytes(out[lo:hi], width); err != nil {
				return nil, ErrCorrupt
			}
			continue
		}
		for i := lo; i < hi; i++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return nil, ErrCorrupt
			}
			out[i] = byte(v)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// TUPL — deinterleave symbols of width w into k sub-streams.

type tupl struct {
	w, k int
}

func (c tupl) Name() string {
	if c.k == 4 {
		return fmt.Sprintf("TUPLQ%d", c.w)
	}
	return fmt.Sprintf("TUPLD%d", c.w)
}

func (c tupl) Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	n := len(src) / c.w
	out := ctx.Bytes(len(src))
	pos := 0
	for lane := 0; lane < c.k; lane++ {
		for i := lane; i < n; i += c.k {
			copy(out[pos:], src[i*c.w:(i+1)*c.w])
			pos += c.w
		}
	}
	copy(out[pos:], src[n*c.w:])
	return out, nil
}

func (c tupl) Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	n := len(src) / c.w
	out := ctx.Bytes(len(src))
	pos := 0
	for lane := 0; lane < c.k; lane++ {
		for i := lane; i < n; i += c.k {
			copy(out[i*c.w:(i+1)*c.w], src[pos:pos+c.w])
			pos += c.w
		}
	}
	copy(out[n*c.w:], src[pos:])
	return out, nil
}

// ---------------------------------------------------------------------------
// HF — Huffman entropy stage.

type hf struct{}

func (hf) Name() string { return "HF" }

func (hf) Encode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	return huffman.EncodeBytesCtx(ctx, dev, src, nil)
}

func (hf) Decode(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	return huffman.DecodeBytesCtx(ctx, dev, src)
}

// ---------------------------------------------------------------------------
// Component registry and pipelines.

// New returns the component with the given LC-style name, e.g. "RRE4".
func New(name string) (Component, error) {
	switch strings.ToUpper(name) {
	case "HF":
		return hf{}, nil
	case "BIT1":
		return bitShuffle{}, nil
	case "DIFFMS1":
		return diffms{}, nil
	case "CLOG1":
		return clog{}, nil
	case "RRE1":
		return elim{w: 1}, nil
	case "RRE2":
		return elim{w: 2}, nil
	case "RRE4":
		return elim{w: 4}, nil
	case "RRE8":
		return elim{w: 8}, nil
	case "RZE1":
		return elim{w: 1, zero: true}, nil
	case "RZE2":
		return elim{w: 2, zero: true}, nil
	case "RZE4":
		return elim{w: 4, zero: true}, nil
	case "TCMS1":
		return tcms{w: 1}, nil
	case "TCMS2":
		return tcms{w: 2}, nil
	case "TCMS4":
		return tcms{w: 4}, nil
	case "TCMS8":
		return tcms{w: 8}, nil
	case "TUPLQ1":
		return tupl{w: 1, k: 4}, nil
	case "TUPLD1":
		return tupl{w: 1, k: 2}, nil
	case "TUPLD2":
		return tupl{w: 2, k: 2}, nil
	case "TUPLQ2":
		return tupl{w: 2, k: 4}, nil
	}
	return nil, fmt.Errorf("lccodec: unknown component %q", name)
}

// Pipeline is an ordered chain of components.
type Pipeline struct {
	Spec   string
	Stages []Component
}

// Parse builds a Pipeline from a spec like "HF-RRE4-TCMS8-RZE1" or
// "HF+RRE4-TCMS8-RZE1" (the paper uses both separators).
func Parse(spec string) (*Pipeline, error) {
	norm := strings.ReplaceAll(spec, "+", "-")
	parts := strings.Split(norm, "-")
	p := &Pipeline{Spec: spec}
	for _, part := range parts {
		if part == "" {
			continue
		}
		c, err := New(part)
		if err != nil {
			return nil, err
		}
		p.Stages = append(p.Stages, c)
	}
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("lccodec: empty pipeline %q", spec)
	}
	return p, nil
}

// MustParse is Parse that panics on error; for static pipeline constants.
func MustParse(spec string) *Pipeline {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Encode applies all stages in order.
func (p *Pipeline) Encode(dev *gpusim.Device, src []byte) ([]byte, error) {
	return p.EncodeCtx(nil, dev, src)
}

// EncodeCtx is Encode drawing stage buffers from ctx; the result is
// context scratch when ctx is non-nil.
func (p *Pipeline) EncodeCtx(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	cur := src
	for _, st := range p.Stages {
		next, err := st.Encode(ctx, dev, cur)
		if err != nil {
			return nil, fmt.Errorf("lccodec: %s encode: %w", st.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// Decode applies all stage inverses in reverse order.
func (p *Pipeline) Decode(dev *gpusim.Device, src []byte) ([]byte, error) {
	return p.DecodeCtx(nil, dev, src)
}

// DecodeCtx is Decode drawing stage buffers from ctx; the result is
// context scratch when ctx is non-nil.
func (p *Pipeline) DecodeCtx(ctx *arena.Ctx, dev *gpusim.Device, src []byte) ([]byte, error) {
	cur := src
	for i := len(p.Stages) - 1; i >= 0; i-- {
		st := p.Stages[i]
		next, err := st.Decode(ctx, dev, cur)
		if err != nil {
			return nil, fmt.Errorf("lccodec: %s decode: %w", st.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// HiCR is the compression-ratio-preferred pipeline of cuSZ-Hi (Fig. 7 top).
func HiCR() *Pipeline { return MustParse("HF-RRE4-TCMS8-RZE1") }

// HiCRTail is HiCR without its leading HF stage, for encoders that run the
// entropy stage themselves with a fused (pre-computed) histogram. Composing
// huffman.EncodeBytes with HiCRTail yields byte-identical output to HiCR.
func HiCRTail() *Pipeline { return MustParse("RRE4-TCMS8-RZE1") }

// HiTP is the throughput-preferred pipeline of cuSZ-Hi (Fig. 7 bottom).
func HiTP() *Pipeline { return MustParse("TCMS1-BIT1-RRE1") }
