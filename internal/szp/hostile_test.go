package szp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bitio"
)

// hostileHeader builds a container declaring n elements with a valid error
// bound, ready for hostile outlier/chunk sections to be appended.
func hostileHeader(n uint64) []byte {
	blob := bitio.AppendUvarint(nil, n)
	return bitio.AppendUint64(blob, math.Float64bits(1.0))
}

// TestDecompressHostileWireCounts pins the wire caps on the container: the
// element count, outlier position deltas, and per-chunk payload lengths all
// come off the wire and each used to reach an int conversion (or a huge
// allocation) before any bound was applied.
func TestDecompressHostileWireCounts(t *testing.T) {
	// Element count past the absolute cap.
	blob := bitio.AppendUvarint(nil, 1<<63)
	if _, err := Decompress(dev, blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("n 2^63: got %v, want ErrCorrupt", err)
	}

	// Outlier position delta past the cap: int(2^62) stays positive on
	// 64-bit but the capped check must reject it before the running
	// position absorbs it.
	blob = hostileHeader(32)
	blob = bitio.AppendUvarint(blob, 1)     // one outlier
	blob = bitio.AppendUvarint(blob, 1<<62) // hostile delta
	blob = append(blob, 0, 0, 0, 0)         // value bytes
	if _, err := Decompress(dev, blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("outlier delta 2^62: got %v, want ErrCorrupt", err)
	}

	// Chunk payload length past the container size: a wrapped int length
	// used to slip the running total past the bounds check and panic the
	// payload slice expressions.
	blob = hostileHeader(32)
	blob = bitio.AppendUvarint(blob, 0)     // no outliers
	blob = bitio.AppendUvarint(blob, 1)     // one chunk (matches n=32)
	blob = bitio.AppendUvarint(blob, 1<<63) // hostile chunk length
	if _, err := Decompress(dev, blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("chunk len 2^63: got %v, want ErrCorrupt", err)
	}
}
