// Chunked (format v2) containers: the field is split into 3-D shards along
// the slowest dimension and each shard is compressed independently into a
// v1 container, framed with its own header and checksum. Shards compress
// and decompress concurrently (internal/pipeline), which parallelizes the
// serial stages of each codec (histogramming, tree construction) across
// shards, bounds working memory for streaming, and is the layout GPU
// compressors use for batch processing.
//
// Layout (all integers are bitio uvarints unless noted):
//
//	magic[4] "cSZh"
//	version  byte = 2
//	flags    byte = 0 (reserved)
//	ndims, dims[ndims]
//	eb       float64 LE bits (absolute bound, shared by every shard)
//	chunkPlanes          planes per shard along dims[0] (last may be short)
//	nchunks
//	nchunks × chunk frame:
//	    offset           plane index of the shard along dims[0]
//	    shardDims[ndims] shard dims (trailing dims equal the global dims)
//	    codecMode        byte: predictor<<4 | pipeline (predictor nibble is
//	                     validated against the payload; pipeline is advisory)
//	    payloadLen
//	    checksum         uint32 LE, CRC-32 (IEEE) of payload
//	    payload          a self-contained v1 container for the shard
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/pipeline"
)

const version2 = 2

// maxChunks bounds the frame count a v2 container may declare, protecting
// the sequential frame scan from absurd headers.
const maxChunks = 1 << 20

// CodecMode packs a shard's assembly into the per-chunk header byte.
func CodecMode(opts Options) byte {
	return byte(opts.Predictor)<<4 | byte(opts.Pipeline)&0x0f
}

// ChunkedInfo describes a v2 container's global header.
type ChunkedInfo struct {
	Dims        []int
	EB          float64 // absolute error bound
	ChunkPlanes int     // planes per shard along Dims[0]
	NumChunks   int
}

// Total returns the element count of the full field.
func (h *ChunkedInfo) Total() int {
	t := 1
	for _, d := range h.Dims {
		t *= d
	}
	return t
}

// planeSize returns the element count of one plane along dims[0].
func planeSize(dims []int) int {
	p := 1
	for _, d := range dims[1:] {
		p *= d
	}
	return p
}

// numChunks returns how many shards of chunkPlanes planes cover dims[0].
func numChunks(dims []int, chunkPlanes int) int {
	return (dims[0] + chunkPlanes - 1) / chunkPlanes
}

// ChunkInfo describes one chunk frame header.
type ChunkInfo struct {
	Offset    int   // plane index along dims[0]
	Dims      []int // shard dims
	CodecMode byte
	Checksum  uint32
}

// ---------------------------------------------------------------------------
// Encoding.

// AppendChunkedHeader serializes the v2 global header.
func AppendChunkedHeader(dst []byte, dims []int, eb float64, chunkPlanes int) ([]byte, error) {
	if eb <= 0 || math.IsInf(eb, 0) || math.IsNaN(eb) {
		return nil, fmt.Errorf("core: invalid error bound %v", eb)
	}
	if len(dims) == 0 || len(dims) > 8 {
		return nil, fmt.Errorf("core: invalid dims %v", dims)
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("core: invalid dims %v", dims)
		}
	}
	if chunkPlanes <= 0 {
		return nil, fmt.Errorf("core: chunk planes %d must be positive", chunkPlanes)
	}
	if n := numChunks(dims, chunkPlanes); n > maxChunks {
		return nil, fmt.Errorf("core: %d chunks exceeds the %d limit; raise chunk planes", n, maxChunks)
	}
	dst = append(dst, magic[:]...)
	dst = append(dst, version2, 0)
	dst = bitio.AppendUvarint(dst, uint64(len(dims)))
	for _, d := range dims {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	dst = bitio.AppendUint64(dst, math.Float64bits(eb))
	dst = bitio.AppendUvarint(dst, uint64(chunkPlanes))
	dst = bitio.AppendUvarint(dst, uint64(numChunks(dims, chunkPlanes)))
	return dst, nil
}

// AppendChunkFrame serializes one chunk frame (header + payload).
func AppendChunkFrame(dst []byte, opts Options, offset int, shardDims []int, payload []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(offset))
	for _, d := range shardDims {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	dst = append(dst, CodecMode(opts))
	dst = bitio.AppendUvarint(dst, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	dst = append(dst, crc[:]...)
	return append(dst, payload...)
}

// CompressShard compresses one slab of chunkPlanes (or fewer, for the last
// shard) planes starting at plane `offset` into a framed chunk. data is the
// full field; the shard is the contiguous sub-slice along dims[0].
func CompressShard(dev *gpusim.Device, data []float32, dims []int, eb float64, opts Options, offset, planes int) ([]byte, error) {
	ps := planeSize(dims)
	shard := data[offset*ps : (offset+planes)*ps]
	shardDims := append([]int{planes}, dims[1:]...)
	payload, err := Compress(dev, shard, shardDims, eb, opts)
	if err != nil {
		return nil, fmt.Errorf("core: shard at plane %d: %w", offset, err)
	}
	return AppendChunkFrame(nil, opts, offset, shardDims, payload), nil
}

// CompressChunked encodes data into a v2 multi-chunk container, compressing
// shards of chunkPlanes planes concurrently on dev's worker pool.
func CompressChunked(dev *gpusim.Device, data []float32, dims []int, eb float64, opts Options, chunkPlanes int) ([]byte, error) {
	total := 1
	for _, d := range dims {
		total *= d
	}
	if len(dims) == 0 || total != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	out, err := AppendChunkedHeader(nil, dims, eb, chunkPlanes)
	if err != nil {
		return nil, err
	}
	n := numChunks(dims, chunkPlanes)
	frames, err := pipeline.Map(dev.Workers(), n, func(i int) ([]byte, error) {
		offset := i * chunkPlanes
		planes := chunkPlanes
		if offset+planes > dims[0] {
			planes = dims[0] - offset
		}
		return CompressShard(dev, data, dims, eb, opts, offset, planes)
	})
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		out = append(out, f...)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Decoding.

// oneByteReader adapts an io.Reader to io.ByteReader without buffering
// ahead, so uvarint reads interleave safely with io.ReadFull.
type oneByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (b *oneByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}

func readUvarint(r io.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(&oneByteReader{r: r})
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, ErrCorrupt
	}
	return v, err
}

// SniffVersion reports the container format version from a prefix of at
// least 5 bytes, or ok=false when the prefix is not a container at all.
func SniffVersion(prefix []byte) (int, bool) {
	if len(prefix) < 5 || !bytes.Equal(prefix[:4], magic[:]) {
		return 0, false
	}
	return int(prefix[4]), true
}

// ReadChunkedHeader parses a v2 global header from r (including the magic
// and version bytes).
func ReadChunkedHeader(r io.Reader) (*ChunkedInfo, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, ErrCorrupt
	}
	if !bytes.Equal(pre[:4], magic[:]) {
		return nil, ErrCorrupt
	}
	if pre[4] != version2 {
		return nil, fmt.Errorf("core: not a chunked container (version %d)", pre[4])
	}
	return readChunkedHeaderBody(r)
}

// readChunkedHeaderBody parses the v2 header after magic/version/flags.
func readChunkedHeaderBody(r io.Reader) (*ChunkedInfo, error) {
	nd, err := readUvarint(r)
	if err != nil || nd == 0 || nd > 8 {
		return nil, ErrCorrupt
	}
	h := &ChunkedInfo{Dims: make([]int, nd)}
	total := 1
	for i := range h.Dims {
		v, err := readUvarint(r)
		if err != nil || v == 0 || v > 1<<31 {
			return nil, ErrCorrupt
		}
		h.Dims[i] = int(v)
		total *= int(v)
		if total <= 0 || total > 1<<33 {
			return nil, ErrCorrupt
		}
	}
	var ebb [8]byte
	if _, err := io.ReadFull(r, ebb[:]); err != nil {
		return nil, ErrCorrupt
	}
	h.EB = math.Float64frombits(binary.LittleEndian.Uint64(ebb[:]))
	if !(h.EB > 0) || math.IsInf(h.EB, 0) {
		return nil, ErrCorrupt
	}
	cp, err := readUvarint(r)
	if err != nil || cp == 0 || cp > 1<<31 {
		return nil, ErrCorrupt
	}
	h.ChunkPlanes = int(cp)
	nc, err := readUvarint(r)
	if err != nil || nc == 0 || nc > maxChunks {
		return nil, ErrCorrupt
	}
	h.NumChunks = int(nc)
	if h.NumChunks != numChunks(h.Dims, h.ChunkPlanes) {
		return nil, ErrCorrupt
	}
	return h, nil
}

// validateChunkFrame applies the frame-header rules shared by the stream
// parser (ReadChunkFrame) and the blob scanner (scanChunkFrame), so the
// two decode paths can never drift apart on what is a valid frame.
func validateChunkFrame(h *ChunkedInfo, c *ChunkInfo, plen uint64) error {
	if c.Offset >= h.Dims[0] {
		return ErrCorrupt
	}
	elems := 1
	for i, d := range c.Dims {
		if d <= 0 || d > 1<<31 {
			return ErrCorrupt
		}
		elems *= d
		if elems <= 0 || elems > 1<<33 {
			return ErrCorrupt
		}
		if i > 0 && d != h.Dims[i] {
			return ErrCorrupt
		}
	}
	if c.Dims[0] > h.ChunkPlanes || c.Offset+c.Dims[0] > h.Dims[0] {
		return ErrCorrupt
	}
	// A v1 shard container is never drastically larger than the raw shard;
	// the caps keep hostile headers from forcing huge allocations. The
	// 1<<31 payload ceiling is part of the format: both decode paths must
	// apply it identically.
	if plen > uint64(16*elems)+(1<<20) || plen > 1<<31 {
		return ErrCorrupt
	}
	return nil
}

// readPayload reads exactly n bytes from r, growing the buffer
// incrementally so a hostile header cannot force a multi-GB allocation
// before any real bytes have arrived.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	const step = 1 << 20
	first := n
	if first > step {
		first = step
	}
	buf := make([]byte, 0, first)
	for remaining := n; remaining > 0; {
		c := remaining
		if c > step {
			c = step
		}
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, ErrCorrupt
		}
		remaining -= c
	}
	return buf, nil
}

func verifyChunkPayload(c *ChunkInfo, payload []byte) error {
	if crc32.ChecksumIEEE(payload) != c.Checksum {
		return fmt.Errorf("core: chunk at plane %d: checksum mismatch: %w", c.Offset, ErrCorrupt)
	}
	return nil
}

// ReadChunkFrame parses the next chunk frame from r, returning its header
// and payload. The global header h supplies dimensionality and bounds; the
// frame is validated against it (trailing dims, payload size cap, CRC).
func ReadChunkFrame(r io.Reader, h *ChunkedInfo) (*ChunkInfo, []byte, error) {
	off, err := readUvarint(r)
	if err != nil || off > 1<<31 {
		return nil, nil, ErrCorrupt
	}
	c := &ChunkInfo{Offset: int(off), Dims: make([]int, len(h.Dims))}
	for i := range c.Dims {
		v, err := readUvarint(r)
		if err != nil || v > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		c.Dims[i] = int(v)
	}
	var mode [1]byte
	if _, err := io.ReadFull(r, mode[:]); err != nil {
		return nil, nil, ErrCorrupt
	}
	c.CodecMode = mode[0]
	plen, err := readUvarint(r)
	if err != nil {
		return nil, nil, ErrCorrupt
	}
	if err := validateChunkFrame(h, c, plen); err != nil {
		return nil, nil, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, nil, ErrCorrupt
	}
	c.Checksum = binary.LittleEndian.Uint32(crc[:])
	payload, err := readPayload(r, plen)
	if err != nil {
		return nil, nil, err
	}
	if err := verifyChunkPayload(c, payload); err != nil {
		return nil, nil, err
	}
	return c, payload, nil
}

// DecompressShard decodes one chunk's payload and validates it against the
// frame header. Shard payloads must be v1 containers (no nesting), and the
// frame's codec-mode predictor nibble must match the payload's predictor
// byte (the pipeline nibble is advisory — the payload self-describes it at
// a mode-dependent offset).
func DecompressShard(dev *gpusim.Device, c *ChunkInfo, payload []byte) ([]float32, error) {
	if len(payload) < 6 || payload[4] != version {
		return nil, ErrCorrupt
	}
	if payload[5] != c.CodecMode>>4 {
		return nil, fmt.Errorf("core: chunk at plane %d: codec mode %#x disagrees with payload predictor %d: %w",
			c.Offset, c.CodecMode, payload[5], ErrCorrupt)
	}
	recon, rdims, err := Decompress(dev, payload)
	if err != nil {
		return nil, err
	}
	if len(rdims) != len(c.Dims) {
		return nil, ErrCorrupt
	}
	for i, d := range rdims {
		if d != c.Dims[i] {
			return nil, ErrCorrupt
		}
	}
	return recon, nil
}

// scanChunkFrame parses the chunk frame at blob[off:] without copying the
// payload (it is returned as a subslice), sharing validateChunkFrame and
// verifyChunkPayload with ReadChunkFrame. It returns the offset just past
// the frame.
func scanChunkFrame(blob []byte, off int, h *ChunkedInfo) (*ChunkInfo, []byte, int, error) {
	readUv := func() (uint64, bool) {
		v, n := bitio.Uvarint(blob[off:])
		if n == 0 || v > 1<<31 {
			return 0, false
		}
		off += n
		return v, true
	}
	o, ok := readUv()
	if !ok {
		return nil, nil, 0, ErrCorrupt
	}
	c := &ChunkInfo{Offset: int(o), Dims: make([]int, len(h.Dims))}
	for i := range c.Dims {
		v, ok := readUv()
		if !ok {
			return nil, nil, 0, ErrCorrupt
		}
		c.Dims[i] = int(v)
	}
	if off >= len(blob) {
		return nil, nil, 0, ErrCorrupt
	}
	c.CodecMode = blob[off]
	off++
	plen, ok := readUv()
	if !ok {
		return nil, nil, 0, ErrCorrupt
	}
	if err := validateChunkFrame(h, c, plen); err != nil {
		return nil, nil, 0, err
	}
	if off+4+int(plen) > len(blob) {
		return nil, nil, 0, ErrCorrupt
	}
	c.Checksum = binary.LittleEndian.Uint32(blob[off:])
	off += 4
	payload := blob[off : off+int(plen)]
	off += int(plen)
	if err := verifyChunkPayload(c, payload); err != nil {
		return nil, nil, 0, err
	}
	return c, payload, off, nil
}

// decompressChunked decodes a v2 container: the frames are scanned
// sequentially (cheap, zero-copy — payloads stay subslices of blob), then
// decoded concurrently into the output field.
func decompressChunked(dev *gpusim.Device, blob []byte) ([]float32, []int, error) {
	r := bytes.NewReader(blob[6:]) // past magic + version + flags
	h, err := readChunkedHeaderBody(r)
	if err != nil {
		return nil, nil, err
	}
	off := len(blob) - r.Len()
	type chunk struct {
		info    *ChunkInfo
		payload []byte
	}
	chunks := make([]chunk, h.NumChunks)
	nextPlane := 0
	for i := range chunks {
		c, payload, next, err := scanChunkFrame(blob, off, h)
		if err != nil {
			return nil, nil, err
		}
		off = next
		if c.Offset != nextPlane {
			return nil, nil, ErrCorrupt // gap or overlap in shard coverage
		}
		nextPlane += c.Dims[0]
		chunks[i] = chunk{c, payload}
	}
	if nextPlane != h.Dims[0] || off != len(blob) {
		return nil, nil, ErrCorrupt
	}
	// Decode the first shard before allocating the full output, so a
	// hostile header over bogus payloads fails before it can force the
	// field-sized allocation.
	first, err := DecompressShard(dev, chunks[0].info, chunks[0].payload)
	if err != nil {
		return nil, nil, err
	}
	out := make([]float32, h.Total())
	ps := planeSize(h.Dims)
	copy(out, first) // chunk 0 starts at plane 0 (coverage validated above)
	_, err = pipeline.Map(dev.Workers(), len(chunks)-1, func(i int) (struct{}, error) {
		c := chunks[i+1]
		recon, err := DecompressShard(dev, c.info, c.payload)
		if err != nil {
			return struct{}{}, err
		}
		copy(out[c.info.Offset*ps:], recon)
		return struct{}{}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, h.Dims, nil
}

// ---------------------------------------------------------------------------
// Inspection.

// Info summarizes a container without decoding its payloads.
type Info struct {
	Version     int
	Dims        []int
	EB          float64
	NumChunks   int // 0 for v1 containers
	ChunkPlanes int // 0 for v1 containers
}

// Inspect reads a container's headers (v1 or v2).
func Inspect(blob []byte) (*Info, error) {
	if len(blob) < 6 || !bytes.Equal(blob[:4], magic[:]) {
		return nil, ErrCorrupt
	}
	switch blob[4] {
	case version:
		r := bytes.NewReader(blob[6:])
		nd, err := readUvarint(r)
		if err != nil || nd == 0 || nd > 8 {
			return nil, ErrCorrupt
		}
		info := &Info{Version: version, Dims: make([]int, nd)}
		for i := range info.Dims {
			v, err := readUvarint(r)
			if err != nil || v == 0 || v > 1<<31 {
				return nil, ErrCorrupt
			}
			info.Dims[i] = int(v)
		}
		var ebb [8]byte
		if _, err := io.ReadFull(r, ebb[:]); err != nil {
			return nil, ErrCorrupt
		}
		info.EB = math.Float64frombits(binary.LittleEndian.Uint64(ebb[:]))
		return info, nil
	case version2:
		h, err := ReadChunkedHeader(bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		return &Info{Version: version2, Dims: h.Dims, EB: h.EB,
			NumChunks: h.NumChunks, ChunkPlanes: h.ChunkPlanes}, nil
	}
	return nil, fmt.Errorf("core: unsupported version %d", blob[4])
}
