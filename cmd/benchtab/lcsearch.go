package main

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/lccodec"
)

// lcsearch reruns the §5.2.2 pipeline-search methodology: enumerate LC
// component pipelines on a sample of cuSZ-Hi quantization codes and print
// the ratio/time Pareto frontier (the procedure that selected
// HF-RRE4-TCMS8-RZE1 and TCMS1-BIT1-RRE1 for the paper).
func lcsearch(dev *gpusim.Device) error {
	header("LC pipeline search on quant codes (Nyx, eb=1e-3, <=3 stages)")
	f, err := experiments.Dataset("nyx", *flagFull, *flagSeed)
	if err != nil {
		return err
	}
	codes, err := experiments.HiQuantCodes(dev, f, 1e-3, true)
	if err != nil {
		return err
	}
	sample := codes
	if len(sample) > 1<<18 {
		sample = sample[:1<<18]
	}
	results, err := lccodec.Search(dev, sample, nil, 3)
	if err != nil {
		return err
	}
	fmt.Printf("%d pipelines evaluated; top 20 by ratio (* = Pareto):\n\n", len(results))
	fmt.Printf("%-34s %8s %10s\n", "pipeline", "CR", "ms")
	shown := 0
	for _, r := range results {
		if shown >= 20 {
			break
		}
		mark := " "
		if r.Pareto {
			mark = "*"
		}
		fmt.Printf("%-34s %8.2f %10.2f %s\n", r.Spec, r.Ratio, r.Seconds*1e3, mark)
		shown++
	}
	var frontier []string
	for _, r := range results {
		if r.Pareto {
			frontier = append(frontier, r.Spec)
		}
	}
	fmt.Printf("\nPareto frontier: %s\n", strings.Join(frontier, ", "))
	fmt.Println("(paper: the CR end of the frontier motivates HF+reducing-stage pipelines)")
	return nil
}
