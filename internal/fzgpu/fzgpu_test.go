package fzgpu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, data []float32, dims []int, eb float64) []byte {
	t.Helper()
	blob, err := Compress(dev, data, dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(data) {
		t.Fatalf("len %d != %d", len(recon), len(data))
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("bound violated at %d: %v vs %v", i, data[i], recon[i])
	}
	return blob
}

func TestRoundTrip3D(t *testing.T) {
	dims := []int{24, 30, 36}
	data := make([]float32, 24*30*36)
	for i := range data {
		data[i] = float32(math.Cos(float64(i) * 0.0003))
	}
	for _, eb := range []float64{1e-2, 1e-4} {
		roundTrip(t, data, dims, eb)
	}
}

func TestRoundTrip2D(t *testing.T) {
	dims := []int{50, 60}
	data := make([]float32, 3000)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 0.1)
	}
	roundTrip(t, data, dims, 1e-3)
}

func TestCompressesSmoothData(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{32, 48, 48}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	blob := roundTrip(t, f.Data, f.Dims, eb)
	cr := metrics.CR(f.SizeBytes(), len(blob))
	if cr < 3 {
		t.Fatalf("miranda CR = %.2f, want > 3", cr)
	}
}

func TestExtremeValues(t *testing.T) {
	dims := []int{10, 10, 10}
	rng := rand.New(rand.NewSource(2))
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(rng.NormFloat64()) * 1e31
	}
	roundTrip(t, data, dims, 1e-2)
}

func TestDecompressCorrupt(t *testing.T) {
	dims := []int{16, 16, 16}
	data := make([]float32, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	blob, err := Compress(dev, data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 8, len(blob) / 2, len(blob) - 1} {
		if _, err := Decompress(dev, blob[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
	for trial := 0; trial < 30; trial++ {
		bad := append([]byte(nil), blob...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		Decompress(dev, bad) // must not panic
	}
}
