// Package huffman implements the canonical Huffman codec used as the
// entropy stage of cuSZ-Hi's CR-preferred lossless pipeline (Fig. 7) and of
// the cuSZ-L / cuSZ-I(B) baselines.
//
// Mirroring the GPU design, encoding is chunk-parallel: the symbol stream is
// split into fixed-size chunks, each chunk is encoded independently on the
// simulated device, and chunk byte offsets are recorded so decoding is also
// chunk-parallel (cf. Tian et al., cuSZ; Rivera et al., IPDPS'22 for the
// GPU Huffman decoder this emulates).
//
// Codes are canonical and length-limited to 15 bits (frequencies are
// smoothed and the tree rebuilt if the natural tree is deeper), and are
// stored bit-reversed so the LSB-first bit stream can be decoded with a
// DEFLATE-style lookup table. The decode table is two-level and
// multi-symbol: a primary probe over tableBits peeked bits resolves either
// one code, a *pair* of short codes in a single probe, or a sub-table
// pointer for codes longer than tableBits.
//
// The *Ctx entry points draw every working buffer (histograms, tree
// scratch, per-chunk bit writers, decode tables, outputs) from a reusable
// arena.Ctx, so steady-state encode/decode performs near-zero heap
// allocations; the plain entry points are thin nil-ctx wrappers.
package huffman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
)

const (
	// MaxCodeLen is the length cap for canonical codes.
	MaxCodeLen = 15
	// DefaultChunk is the number of symbols encoded per parallel chunk.
	DefaultChunk = 1 << 16
)

var (
	// ErrCorrupt reports a malformed Huffman container.
	ErrCorrupt = errors.New("huffman: corrupt stream")
	// ErrTooManySymbols reports an alphabet whose used-symbol count cannot
	// satisfy the 15-bit length cap.
	ErrTooManySymbols = errors.New("huffman: too many distinct symbols for 15-bit codes")
)

// code is a canonical, bit-reversed Huffman code.
type code struct {
	bits uint16
	len  uint8
}

// ---------------------------------------------------------------------------
// Per-context scratch.

// auxKey is this package's slot in an arena.Ctx.
var auxKey = arena.NewAuxKey()

// scratch bundles every reusable working buffer of the codec. It lives in
// an arena.Ctx aux slot (one per worker) and survives Ctx.Reset, so a
// worker that keeps coding same-shaped shards stops allocating entirely.
// It is not reentrant: one encode or decode at a time per context.
type scratch struct {
	freq      []int64
	lens      []uint8
	codes     []code
	hdr       []byte
	chunkBufs [][]byte
	chunkLens []int
	starts    []int

	// Tree-construction scratch (buildLengths / huffmanDepths).
	f        []int64
	nodes    []treeNode
	leaves   []int32
	internal []int32
	stack    []treeFrame

	table decodeTable

	// Kernel parameter block + prebuilt chunk jobs: the closures read
	// their inputs from k, so one closure allocation per context serves
	// every launch (see internal/arena).
	k struct {
		symbols []uint16
		codes   []code
		src     []byte
		out     []uint16
		chunk   int
		failed  atomic.Bool
	}
	encJob func(int)
	decJob func(int)
}

func scratchFor(ctx *arena.Ctx) *scratch {
	if s, ok := ctx.Aux(auxKey).(*scratch); ok {
		return s
	}
	s := &scratch{}
	ctx.SetAux(auxKey, s) // no-op (fresh scratch each call) when ctx is nil
	return s
}

func growI64(b []int64, n int) []int64 {
	if cap(b) < n {
		return make([]int64, n)
	}
	return b[:n]
}

// ---------------------------------------------------------------------------
// Code-length construction.

// buildLengths computes Huffman code lengths from frequencies, capped at
// MaxCodeLen, into s.lens. Zero-frequency symbols get length 0.
func (s *scratch) buildLengths(freq []int64) ([]uint8, error) {
	n := len(freq)
	if cap(s.lens) < n {
		s.lens = make([]uint8, n)
	}
	lens := s.lens[:n]
	clear(lens)
	used := 0
	last := -1
	for sym, f := range freq {
		if f > 0 {
			used++
			last = sym
		}
	}
	switch used {
	case 0:
		return lens, nil
	case 1:
		lens[last] = 1
		return lens, nil
	}
	if used > 1<<MaxCodeLen {
		return nil, ErrTooManySymbols
	}
	s.f = growI64(s.f, n)
	f := s.f
	copy(f, freq)
	for {
		depth := s.huffmanDepths(f, lens)
		if depth <= MaxCodeLen {
			return lens, nil
		}
		// Smooth the distribution and retry; converges to uniform lengths.
		for i := range f {
			if f[i] > 0 {
				f[i] = (f[i] >> 1) | 1
			}
		}
	}
}

type treeNode struct {
	w           int64
	sym         int32 // >= 0 for leaves
	left, right int32 // node indices for internal nodes
}

type treeFrame struct{ idx, depth int32 }

// huffmanDepths runs the classic two-queue Huffman construction over the
// non-zero frequencies, writing depths into lens and returning the max depth.
func (s *scratch) huffmanDepths(freq []int64, lens []uint8) int {
	nodes := s.nodes[:0]
	leaves := s.leaves[:0]
	for sym, f := range freq {
		if f > 0 {
			nodes = append(nodes, treeNode{w: f, sym: int32(sym), left: -1, right: -1})
			leaves = append(leaves, int32(len(nodes)-1))
		}
	}
	slices.SortFunc(leaves, func(i, j int32) int {
		a, b := nodes[i], nodes[j]
		if a.w != b.w {
			if a.w < b.w {
				return -1
			}
			return 1
		}
		return int(a.sym - b.sym)
	})
	// Two-queue merge: sorted leaves queue + FIFO internal queue.
	internal := s.internal[:0]
	li, ii := 0, 0
	pop := func() int32 {
		if li < len(leaves) && (ii >= len(internal) || nodes[leaves[li]].w <= nodes[internal[ii]].w) {
			li++
			return leaves[li-1]
		}
		ii++
		return internal[ii-1]
	}
	remaining := len(leaves)
	root := leaves[0]
	for remaining > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, treeNode{w: nodes[a].w + nodes[b].w, sym: -1, left: a, right: b})
		internal = append(internal, int32(len(nodes)-1))
		root = int32(len(nodes) - 1)
		remaining--
	}
	// Iterative depth assignment.
	maxDepth := int32(0)
	stack := append(s.stack[:0], treeFrame{root, 0})
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[fr.idx]
		if nd.sym >= 0 {
			lens[nd.sym] = uint8(fr.depth)
			if fr.depth > maxDepth {
				maxDepth = fr.depth
			}
			continue
		}
		stack = append(stack, treeFrame{nd.left, fr.depth + 1}, treeFrame{nd.right, fr.depth + 1})
	}
	s.nodes, s.leaves, s.internal, s.stack = nodes[:0], leaves[:0], internal[:0], stack[:0]
	return int(maxDepth)
}

// canonicalCodes assigns canonical codes (bit-reversed for LSB-first I/O)
// from lengths, into s.codes.
func (s *scratch) canonicalCodes(lens []uint8) []code {
	if cap(s.codes) < len(lens) {
		s.codes = make([]code, len(lens))
	}
	codes := s.codes[:len(lens)]
	clear(codes)
	var lenCount [MaxCodeLen + 1]int
	for _, l := range lens {
		lenCount[l]++
	}
	var next [MaxCodeLen + 2]uint32
	c := uint32(0)
	for l := 1; l <= MaxCodeLen; l++ {
		c = (c + uint32(lenCount[l-1])) << 1
		next[l] = c
	}
	for sym, l := range lens {
		if l == 0 {
			continue
		}
		v := next[l]
		next[l]++
		codes[sym] = code{bits: uint16(bits.Reverse16(uint16(v)) >> (16 - l)), len: l}
	}
	return codes
}

// ---------------------------------------------------------------------------
// Multi-symbol decode table.

// tableBits is the width of the primary decode probe. Codes no longer than
// tableBits resolve in one lookup; when two short codes fit the probe the
// entry emits both symbols at once. Longer codes chain to a sub-table over
// the remaining MaxCodeLen-tableBits bits, exactly as in DEFLATE decoders.
const tableBits = 12

// Primary entry layout (uint64):
//
//	kind    bits 62..63  0 invalid, 1 single, 2 pair, 3 sub-table
//	sym1    bits 0..15   first symbol (single, pair)
//	sym2    bits 16..31  second symbol (pair)
//	len1    bits 32..37  first code length (single, pair)
//	total   bits 40..45  combined length (pair)
//	off     bits 0..23   sub-table offset into sub (sub-table)
//	gbits   bits 32..35  sub-table index width (sub-table)
//
// Sub entry layout (uint32): 0 invalid; else sym bits 0..15, total code
// length bits 16..21.
const (
	kindShift  = 62
	kindSingle = 1
	kindPair   = 2
	kindSub    = 3
)

type decodeTable struct {
	primary []uint64
	sub     []uint32
}

// buildDecodeTable constructs the two-level multi-symbol LUT from code
// lengths (which may come from a hostile stream: over-subscribed length
// sets are rejected, incomplete ones leave invalid entries that fail
// decoding).
func (s *scratch) buildDecodeTable(lens []uint8) (*decodeTable, error) {
	var kraft uint64
	for _, l := range lens {
		if l > 0 {
			kraft += 1 << (MaxCodeLen - l)
		}
	}
	if kraft > 1<<MaxCodeLen {
		return nil, fmt.Errorf("huffman: overlapping codes (corrupt lengths)")
	}
	codes := s.canonicalCodes(lens)
	t := &s.table
	if cap(t.primary) < 1<<tableBits {
		t.primary = make([]uint64, 1<<tableBits)
	}
	t.primary = t.primary[:1<<tableBits]
	clear(t.primary)
	// Short codes: replicate into every primary slot whose low bits match.
	for sym, cd := range codes {
		if cd.len == 0 || cd.len > tableBits {
			continue
		}
		e := kindSingle<<kindShift | uint64(cd.len)<<32 | uint64(sym)
		step := 1 << cd.len
		for v := int(cd.bits); v < 1<<tableBits; v += step {
			t.primary[v] = e
		}
	}
	// Long codes, pass 1: mark their primary slots and find each group's
	// sub-table width (group max length minus tableBits).
	nLong := 0
	for _, cd := range codes {
		if cd.len <= tableBits {
			continue
		}
		nLong++
		v := int(cd.bits) & (1<<tableBits - 1)
		gbits := uint64(cd.len) - tableBits
		if e := t.primary[v]; e>>kindShift == kindSub && (e>>32)&0xf > gbits {
			gbits = (e >> 32) & 0xf
		}
		t.primary[v] = kindSub<<kindShift | gbits<<32
	}
	// Pass 2: allocate one sub-table per marked slot.
	sub := t.sub[:0]
	if nLong > 0 {
		for v, e := range t.primary {
			if e>>kindShift != kindSub {
				continue
			}
			size := 1 << ((e >> 32) & 0xf)
			off := len(sub)
			if off+size <= cap(sub) {
				sub = sub[:off+size]
			} else {
				sub = append(sub, make([]uint32, size)...)
			}
			clear(sub[off : off+size])
			t.primary[v] = e | uint64(off)
		}
	}
	t.sub = sub
	// Pass 3: fill sub-table entries.
	for sym, cd := range codes {
		if cd.len <= tableBits {
			continue
		}
		e := t.primary[int(cd.bits)&(1<<tableBits-1)]
		off := int(e & 0xffffff)
		gbits := uint((e >> 32) & 0xf)
		se := uint32(cd.len)<<16 | uint32(sym)
		step := 1 << (uint(cd.len) - tableBits)
		for w := int(cd.bits) >> tableBits; w < 1<<gbits; w += step {
			t.sub[off+w] = se
		}
	}
	// Pairing pass: when a slot's first code leaves room for a complete
	// second code inside the probe, emit both symbols per lookup.
	for v, e := range t.primary {
		if e>>kindShift != kindSingle {
			continue
		}
		len1 := (e >> 32) & 0x3f
		if len1 >= tableBits {
			continue
		}
		e2 := t.primary[v>>len1]
		k2 := e2 >> kindShift
		if k2 != kindSingle && k2 != kindPair {
			continue
		}
		len2 := (e2 >> 32) & 0x3f
		if len2 == 0 || len1+len2 > tableBits {
			continue
		}
		sym2 := e2 & 0xffff
		t.primary[v] = kindPair<<kindShift | (len1+len2)<<40 | len1<<32 | sym2<<16 | e&0xffff
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Code-length serialization.

// appendLengthsRLE serializes code lengths as (run, len) pairs.
func appendLengthsRLE(dst []byte, lens []uint8) []byte {
	nPairs := 0
	for i := 0; i < len(lens); {
		j := i
		for j < len(lens) && lens[j] == lens[i] {
			j++
		}
		nPairs++
		i = j
	}
	dst = bitio.AppendUvarint(dst, uint64(nPairs))
	for i := 0; i < len(lens); {
		j := i
		for j < len(lens) && lens[j] == lens[i] {
			j++
		}
		dst = bitio.AppendUvarint(dst, uint64(j-i))
		dst = append(dst, lens[i])
		i = j
	}
	return dst
}

// parseLengthsRLE decodes a length section into dst (reused if roomy).
func parseLengthsRLE(p []byte, alphabet int, dst []uint8) ([]uint8, int, error) {
	nPairs, n := bitio.Uvarint(p)
	if n == 0 {
		return nil, 0, ErrCorrupt
	}
	off := n
	if cap(dst) < alphabet {
		dst = make([]uint8, 0, alphabet)
	}
	lens := dst[:0]
	for i := uint64(0); i < nPairs; i++ {
		run, n := bitio.Uvarint(p[off:])
		if n == 0 {
			return nil, 0, ErrCorrupt
		}
		off += n
		if off >= len(p) {
			return nil, 0, ErrCorrupt
		}
		l := p[off]
		off++
		if l > MaxCodeLen {
			return nil, 0, ErrCorrupt
		}
		if uint64(len(lens))+run > uint64(alphabet) {
			return nil, 0, ErrCorrupt
		}
		for r := uint64(0); r < run; r++ {
			lens = append(lens, l)
		}
	}
	if len(lens) != alphabet {
		return nil, 0, ErrCorrupt
	}
	return lens, off, nil
}

// ---------------------------------------------------------------------------
// Encoding.

// Encode compresses symbols drawn from [0, alphabet) into a self-contained
// container. Chunks are encoded in parallel on dev.
func Encode(dev *gpusim.Device, symbols []uint16, alphabet int) ([]byte, error) {
	return EncodeCtx(nil, dev, symbols, alphabet, nil)
}

// EncodeCtx is Encode with a reusable context. freq, when non-nil, must be
// the exact histogram of symbols over [0, alphabet) — callers that already
// histogram during quantization pass it to skip the counting sweep here
// (the quantize+histogram fusion); nil recounts internally.
func EncodeCtx(ctx *arena.Ctx, dev *gpusim.Device, symbols []uint16, alphabet int, freq []int64) ([]byte, error) {
	if alphabet <= 0 || alphabet > 1<<16 {
		return nil, fmt.Errorf("huffman: bad alphabet %d", alphabet)
	}
	s := scratchFor(ctx)
	if freq == nil {
		s.freq = growI64(s.freq, alphabet)
		freq = s.freq
		clear(freq)
		for _, sym := range symbols {
			if int(sym) >= alphabet {
				return nil, fmt.Errorf("huffman: symbol %d outside alphabet %d", sym, alphabet)
			}
			freq[sym]++
		}
	} else if len(freq) != alphabet {
		return nil, fmt.Errorf("huffman: histogram length %d != alphabet %d", len(freq), alphabet)
	} else {
		// A caller-supplied histogram replaces the per-symbol range check
		// of the counting sweep, so verify the cheap invariant that holds
		// for any exact histogram: counts are non-negative and sum to the
		// stream length. (Symbols must still lie in [0, alphabet) — codes
		// are indexed by symbol during encoding.)
		var sum int64
		for _, f := range freq {
			if f < 0 {
				return nil, fmt.Errorf("huffman: negative histogram count %d", f)
			}
			sum += f
		}
		if sum != int64(len(symbols)) {
			return nil, fmt.Errorf("huffman: histogram sums to %d for %d symbols", sum, len(symbols))
		}
	}
	lens, err := s.buildLengths(freq)
	if err != nil {
		return nil, err
	}
	codes := s.canonicalCodes(lens)

	chunk := DefaultChunk
	nChunks := (len(symbols) + chunk - 1) / chunk
	if cap(s.chunkBufs) < nChunks {
		s.chunkBufs = append(s.chunkBufs[:cap(s.chunkBufs)], make([][]byte, nChunks-cap(s.chunkBufs))...)
	}
	s.chunkBufs = s.chunkBufs[:nChunks] // encJob indexes via s.chunkBufs
	chunkBufs := s.chunkBufs
	// Size each chunk's writer from the histogram's exact total bit count.
	// A skewed chunk may still grow once; the grown buffer is kept in the
	// scratch slot, so steady-state reuse converges to zero growth.
	if nChunks > 0 {
		var totalBits uint64
		for sym, f := range freq {
			totalBits += uint64(f) * uint64(lens[sym])
		}
		perChunk := int(totalBits / uint64(nChunks) / 8)
		est := perChunk + perChunk/8 + 64
		for b := range chunkBufs {
			if cap(chunkBufs[b]) < est {
				chunkBufs[b] = make([]byte, 0, est)
			}
		}
	}
	s.k.symbols, s.k.codes, s.k.chunk = symbols, codes, chunk
	s.k.failed.Store(false)
	if s.encJob == nil {
		k := &s.k
		s.encJob = func(b int) {
			symbols, codes := k.symbols, k.codes
			lo := b * k.chunk
			hi := lo + k.chunk
			if hi > len(symbols) {
				hi = len(symbols)
			}
			var w bitio.Writer
			w.ResetWithBuf(s.chunkBufs[b])
			for _, sym := range symbols[lo:hi] {
				// Both guards are only reachable via a caller histogram
				// that disagrees with the stream (the nil-freq path
				// validates while counting): an out-of-alphabet symbol
				// would panic indexing codes, and a zero-length code
				// would silently emit an undecodable container.
				if int(sym) >= len(codes) {
					k.failed.Store(true)
					return
				}
				cd := codes[sym]
				if cd.len == 0 {
					k.failed.Store(true)
					return
				}
				w.WriteBits(uint64(cd.bits), uint(cd.len))
			}
			s.chunkBufs[b] = w.Bytes()
		}
	}
	dev.Launch(nChunks, s.encJob)
	s.k.symbols = nil // drop the caller's stream so a pooled ctx never pins it
	if s.k.failed.Load() {
		return nil, fmt.Errorf("huffman: histogram disagrees with the symbol stream")
	}

	hdr := s.hdr[:0]
	hdr = bitio.AppendUvarint(hdr, uint64(alphabet))
	hdr = appendLengthsRLE(hdr, lens)
	hdr = bitio.AppendUvarint(hdr, uint64(len(symbols)))
	hdr = bitio.AppendUvarint(hdr, uint64(chunk))
	hdr = bitio.AppendUvarint(hdr, uint64(nChunks))
	total := 0
	for _, cb := range chunkBufs {
		hdr = bitio.AppendUvarint(hdr, uint64(len(cb)))
		total += len(cb)
	}
	s.hdr = hdr
	out := make([]byte, 0, len(hdr)+total)
	out = append(out, hdr...)
	for _, cb := range chunkBufs {
		out = append(out, cb...)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Decoding.

// Decode reverses Encode.
func Decode(dev *gpusim.Device, data []byte) ([]uint16, error) {
	return DecodeCtx(nil, dev, data)
}

// DecodeCtx is Decode with a reusable context. With a non-nil ctx the
// returned slice is context scratch, valid until the next ctx.Reset.
func DecodeCtx(ctx *arena.Ctx, dev *gpusim.Device, data []byte) ([]uint16, error) {
	alphabet64, n := bitio.Uvarint(data)
	if n == 0 || alphabet64 == 0 || alphabet64 > 1<<16 {
		return nil, ErrCorrupt
	}
	s := scratchFor(ctx)
	off := n
	lens, used, err := parseLengthsRLE(data[off:], int(alphabet64), s.lens)
	if err != nil {
		return nil, err
	}
	s.lens = lens
	off += used
	// Every count below comes off the wire: cap each through the shared
	// helper before it is converted, so a 2^63-scale value can neither wrap
	// an int negative nor overflow the ceiling division that validates the
	// chunk count.
	nSyms64, n := bitio.Uvarint(data[off:])
	if n == 0 {
		return nil, ErrCorrupt
	}
	off += n
	nSyms, ok := bitio.IntLen(nSyms64)
	if !ok {
		return nil, ErrCorrupt
	}
	chunk64, n := bitio.Uvarint(data[off:])
	if n == 0 || chunk64 == 0 {
		return nil, ErrCorrupt
	}
	off += n
	chunk, ok := bitio.IntLen(chunk64)
	if !ok {
		return nil, ErrCorrupt
	}
	nChunks64, n := bitio.Uvarint(data[off:])
	if n == 0 {
		return nil, ErrCorrupt
	}
	off += n
	nChunks, ok := bitio.IntLen(nChunks64)
	if !ok || nChunks > len(data) {
		return nil, ErrCorrupt
	}
	want := (nSyms + chunk - 1) / chunk
	if nSyms == 0 {
		want = 0
	}
	if nChunks != want {
		return nil, ErrCorrupt
	}
	if cap(s.chunkLens) < nChunks {
		s.chunkLens = make([]int, nChunks)
		s.starts = make([]int, nChunks)
	}
	chunkLens := s.chunkLens[:nChunks]
	total := 0
	for i := range chunkLens {
		l, n := bitio.Uvarint(data[off:])
		// Clamp each declared length to the container size before int
		// conversion: a 2^63-scale value would go negative, slip past the
		// sum check below, and panic slicing the chunk.
		if n == 0 || l > uint64(len(data)) {
			return nil, ErrCorrupt
		}
		off += n
		chunkLens[i] = int(l)
		total += int(l)
		if total > len(data) {
			return nil, ErrCorrupt
		}
	}
	if off+total > len(data) {
		return nil, ErrCorrupt
	}
	// Every symbol costs at least one payload bit, so a header declaring
	// more symbols than the payload can hold is hostile — reject it before
	// sizing the output (allocation-bomb hardening).
	if int64(nSyms) > int64(total)*8 {
		return nil, ErrCorrupt
	}
	starts := s.starts[:nChunks]
	pos := off
	for i, l := range chunkLens {
		starts[i] = pos
		pos += l
	}
	if _, err := s.buildDecodeTable(lens); err != nil {
		return nil, err
	}
	out := ctx.U16(nSyms)
	s.k.src, s.k.out, s.k.chunk = data, out, chunk
	s.k.failed.Store(false)
	if s.decJob == nil {
		k := &s.k
		s.decJob = func(b int) {
			src, out := k.src, k.out
			lo := b * k.chunk
			hi := lo + k.chunk
			if hi > len(out) {
				hi = len(out)
			}
			start := s.starts[b]
			if err := decodeChunk(src[start:start+s.chunkLens[b]], &s.table, out[lo:hi]); err != nil {
				k.failed.Store(true)
			}
		}
	}
	dev.Launch(nChunks, s.decJob)
	s.k.src = nil // drop the caller's container so a pooled ctx never pins it
	if s.k.failed.Load() {
		return nil, ErrCorrupt
	}
	return out, nil
}

// decodeChunk decodes exactly len(dst) symbols from src. Each primary
// probe resolves one short code, two short codes at once, or chains to a
// sub-table for codes longer than tableBits.
//
//cuszhi:hotpath
func decodeChunk(src []byte, t *decodeTable, dst []uint16) error {
	var acc uint64
	var nacc uint
	pos := 0
	i := 0
	for i < len(dst) {
		// Refill the accumulator in one unaligned 64-bit load when at
		// least 8 source bytes remain; the byte loop handles the tail.
		// Both paths leave identical (acc, nacc, pos) state.
		if nacc <= 56 && pos+8 <= len(src) {
			v := binary.LittleEndian.Uint64(src[pos:])
			n := (64 - nacc) >> 3
			v &= uint64(1)<<(8*n) - 1 // 8n == 64 wraps the mask to ^0
			acc |= v << nacc
			pos += int(n)
			nacc += 8 * n
		} else {
			for nacc <= 56 && pos < len(src) {
				acc |= uint64(src[pos]) << nacc
				pos++
				nacc += 8
			}
		}
		e := t.primary[acc&(1<<tableBits-1)]
		switch e >> kindShift {
		case kindPair:
			if total := uint((e >> 40) & 0x3f); total <= nacc && i+1 < len(dst) {
				dst[i] = uint16(e)
				dst[i+1] = uint16(e >> 16)
				i += 2
				acc >>= total
				nacc -= total
				continue
			}
			fallthrough // last symbol of the chunk: emit only the first
		case kindSingle:
			l := uint((e >> 32) & 0x3f)
			if l > nacc {
				return ErrCorrupt
			}
			dst[i] = uint16(e)
			i++
			acc >>= l
			nacc -= l
		case kindSub:
			gbits := uint((e >> 32) & 0xf)
			se := t.sub[(e&0xffffff)+(acc>>tableBits)&(1<<gbits-1)]
			l := uint(se >> 16)
			if se == 0 || l > nacc {
				return ErrCorrupt
			}
			dst[i] = uint16(se)
			i++
			acc >>= l
			nacc -= l
		default:
			return ErrCorrupt
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Byte-stream conveniences.

// EncodeBytes compresses a byte stream (alphabet 256).
func EncodeBytes(dev *gpusim.Device, p []byte) ([]byte, error) {
	return EncodeBytesCtx(nil, dev, p, nil)
}

// EncodeBytesCtx is EncodeBytes with a reusable context and an optional
// precomputed histogram (see EncodeCtx). When freq is nil the symbol
// widening and the histogram are fused into one sweep.
func EncodeBytesCtx(ctx *arena.Ctx, dev *gpusim.Device, p []byte, freq []int64) ([]byte, error) {
	syms := ctx.U16(len(p))
	if freq == nil {
		s := scratchFor(ctx)
		s.freq = growI64(s.freq, 256)
		freq = s.freq
		clear(freq)
		for i, b := range p {
			syms[i] = uint16(b)
			freq[b]++
		}
	} else {
		for i, b := range p {
			syms[i] = uint16(b)
		}
	}
	return EncodeCtx(ctx, dev, syms, 256, freq)
}

// DecodeBytes reverses EncodeBytes.
func DecodeBytes(dev *gpusim.Device, data []byte) ([]byte, error) {
	return DecodeBytesCtx(nil, dev, data)
}

// DecodeBytesCtx is DecodeBytes with a reusable context. With a non-nil
// ctx the returned slice is context scratch, valid until the next Reset.
func DecodeBytesCtx(ctx *arena.Ctx, dev *gpusim.Device, data []byte) ([]byte, error) {
	syms, err := DecodeCtx(ctx, dev, data)
	if err != nil {
		return nil, err
	}
	out := ctx.Bytes(len(syms))
	for i, s := range syms {
		if s > 255 {
			return nil, ErrCorrupt
		}
		out[i] = byte(s)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Size estimation.

// EstimateEncodedBytes predicts the size of the container EncodeCtx would
// produce for a stream of n symbols distributed like the histogram freq.
// The counts need not sum to n: a sample's histogram estimates the full
// stream, which is how the auto-mode estimator scores an entropy stage
// without encoding anything. The prediction uses the exact canonical code
// lengths the encoder would build from freq (so it tracks Huffman's
// one-bit-per-symbol floor, not just the Shannon entropy) plus the real
// container overhead: the RLE code-length table and the per-chunk offset
// directory. Scratch comes from ctx; nil allocates fresh.
func EstimateEncodedBytes(ctx *arena.Ctx, freq []int64, n int) (int, error) {
	s := scratchFor(ctx)
	lens, err := s.buildLengths(freq)
	if err != nil {
		return 0, err
	}
	var bits, total int64
	for sym, f := range freq {
		bits += f * int64(lens[sym])
		total += f
	}
	hdr := s.hdr[:0]
	hdr = bitio.AppendUvarint(hdr, uint64(len(freq)))
	hdr = appendLengthsRLE(hdr, lens)
	hdr = bitio.AppendUvarint(hdr, uint64(n))
	hdr = bitio.AppendUvarint(hdr, uint64(DefaultChunk))
	nChunks := (n + DefaultChunk - 1) / DefaultChunk
	hdr = bitio.AppendUvarint(hdr, uint64(nChunks))
	s.hdr = hdr
	if total == 0 || n == 0 {
		return len(hdr), nil
	}
	payload := float64(bits) / float64(total) * float64(n) / 8
	// Each chunk's offset uvarint plus its final-byte rounding.
	perChunk := int(payload)/nChunks + 1
	dirLen := 0
	for v := perChunk; ; v >>= 7 {
		dirLen++
		if v < 0x80 {
			break
		}
	}
	return len(hdr) + nChunks*dirLen + int(payload) + (nChunks+1)/2, nil
}
