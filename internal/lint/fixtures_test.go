package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture runs every analyzer over one testdata/src fixture package.
func loadFixture(t *testing.T, name string) Result {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := Load(dir, []string{"."}, false)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): %d packages, want 1", dir, len(pkgs))
	}
	return Run(pkgs, Analyzers())
}

// TestFixturesMatchGolden pins each analyzer's findings on its known-bad
// fixture to the expect.txt golden file next to it.
func TestFixturesMatchGolden(t *testing.T) {
	for _, name := range []string{"wirelen", "corrupterr", "hotpathalloc", "wireid", "ignore"} {
		t.Run(name, func(t *testing.T) {
			res := loadFixture(t, name)
			var got strings.Builder
			for _, f := range res.Findings {
				fmt.Fprintf(&got, "%s:%d:%d: [%s] %s\n",
					filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
			}
			wantBytes, err := os.ReadFile(filepath.Join("testdata", "src", name, "expect.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != string(wantBytes) {
				t.Errorf("findings diverge from expect.txt\n--- got ---\n%s--- want ---\n%s", got.String(), wantBytes)
			}
		})
	}
}

// TestWirelenCatchesPr3LccodecBug pins the acceptance case: the exact bug
// shipped in PR 3 — an uncapped int(origLen) sizing a make in an RLE
// decoder — is reproduced in the wirelen fixture (decodeRLEPr3) and must be
// flagged by the wirelen analyzer.
func TestWirelenCatchesPr3LccodecBug(t *testing.T) {
	res := loadFixture(t, "wirelen")
	for _, f := range res.Findings {
		if f.Check == "wirelen" && strings.Contains(f.Message, "origLen") {
			return
		}
	}
	t.Fatalf("no wirelen finding for the uncapped int(origLen) make; got %v", res.Findings)
}

// TestIgnoreDirectives pins the suppression contract on the ignore fixture:
// the justified directive counts as suppressed, and the directive matching
// nothing surfaces as a staleignore finding.
func TestIgnoreDirectives(t *testing.T) {
	res := loadFixture(t, "ignore")
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
	stale := 0
	for _, f := range res.Findings {
		switch f.Check {
		case "staleignore":
			stale++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if stale != 1 {
		t.Errorf("%d staleignore findings, want 1", stale)
	}
}

// TestRepoIsLintClean runs every analyzer over the whole repository — the
// same sweep as `go run ./cmd/cuszhilint ./...` — so the codec invariants
// are enforced by the ordinary tier-1 `go test ./...`.
func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded from %s: wrong root?", len(pkgs), root)
	}
	res := Run(pkgs, Analyzers())
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("fix the findings or suppress with //lint:ignore <check> <reason> (%d already suppressed)", res.Suppressed)
	}
}
