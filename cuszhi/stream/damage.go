// Degraded-read damage accounting. When a container has rotted, strict
// readers abort on the first bad chunk; readers opened WithDegraded keep
// going, fill the planes the bad chunk covered with a sentinel value, and
// report exactly what was lost through a DamageReport. The report is the
// contract that degraded mode never returns unflagged wrong data: a
// degraded read either returns a nil error (every plane is bit-exact) or a
// *DamageReport listing every filled region.
package stream

import (
	"fmt"
	"strings"
)

// ChunkDamage describes one chunk a degraded read could not decode.
type ChunkDamage struct {
	Chunk    int   // chunk index within the container
	Offset   int64 // byte offset of the chunk's frame
	PlaneOff int   // first plane the chunk covers
	Planes   int   // planes lost to this chunk (clamped to the requested range)
	Err      error // why the chunk failed (CRC mismatch, codec disagreement, I/O)
}

// DamageReport lists the chunks a degraded read skipped and filled. It
// implements error so damaged reads are impossible to mistake for clean
// ones: a caller that ignores the error treats the data as suspect by
// default, and one that expects degradation unwraps it with errors.As.
type DamageReport struct {
	Chunks []ChunkDamage // ascending by chunk index
}

// Error summarizes the damage: chunk count, plane count, and the first
// chunk's locator so a bare log line already points at the damage.
func (d *DamageReport) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream: degraded read: %d damaged chunk(s), %d plane(s) filled",
		len(d.Chunks), d.PlanesLost())
	if len(d.Chunks) > 0 {
		c := d.Chunks[0]
		fmt.Fprintf(&b, " (first: chunk %d @0x%x: %v)", c.Chunk, c.Offset, c.Err)
	}
	return b.String()
}

// PlanesLost totals the planes filled across all damaged chunks.
func (d *DamageReport) PlanesLost() int {
	n := 0
	for _, c := range d.Chunks {
		n += c.Planes
	}
	return n
}
