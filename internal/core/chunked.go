// Chunked (format v2) containers: the field is split into 3-D shards along
// the slowest dimension and each shard is compressed independently into a
// v1 container, framed with its own header and checksum. Shards compress
// and decompress concurrently (internal/pipeline), which parallelizes the
// serial stages of each codec (histogramming, tree construction) across
// shards, bounds working memory for streaming, and is the layout GPU
// compressors use for batch processing.
//
// Layout (all integers are bitio uvarints unless noted):
//
//	magic[4] "cSZh"
//	version  byte = 2
//	flags    byte = 0 (reserved)
//	ndims, dims[ndims]
//	eb       float64 LE bits (absolute bound, shared by every shard)
//	chunkPlanes          planes per shard along dims[0] (last may be short)
//	nchunks
//	nchunks × chunk frame:
//	    offset           plane index of the shard along dims[0]
//	    shardDims[ndims] shard dims (trailing dims equal the global dims)
//	    codecMode        byte: predictor<<4 | pipeline (predictor nibble is
//	                     validated against the payload; pipeline is advisory)
//	    payloadLen
//	    checksum         uint32 LE, CRC-32 (IEEE) of payload
//	    payload          a self-contained v1 container for the shard
//
// Format v3 extends v2 with per-shard value-range headers, so a streaming
// writer can honor value-range-relative error bounds without a pre-pass
// over the whole field: each shard's bound is derived from its own range
// (which is never larger than the global range, so the global relative
// bound still holds). The layout is identical to v2 except:
//
//	version  byte = 3
//	flags    byte: bit 0 set = the eb field is a RELATIVE bound and each
//	         shard payload carries its own absolute bound; other bits 0
//	every chunk frame gains, between codecMode and payloadLen:
//	    min  float32 LE   smallest value in the shard
//	    max  float32 LE   largest value in the shard
//
// v1 and v2 blobs keep decoding forever; v3 is additive (the golden tests
// lock all three layouts).
//
// Format v4 makes the container seekable: the body is v3 framing (every
// chunk frame carries its value range, whether or not the bound is
// relative) followed by a chunk-index footer, so a reader holding an
// io.ReaderAt can locate and decode any shard without scanning its
// predecessors. The footer is discoverable from the end of the file:
//
//	version  byte = 4
//	flags    byte: bit 0 as in v3; other bits 0
//	nchunks × chunk frame (v3 layout)
//	index body:
//	    nchunks
//	    nchunks × { frameOff, planeOff, planes }   (uvarints; frameOff is
//	                the byte offset of the chunk frame from the container
//	                start, planeOff/planes its plane span along dims[0])
//	crc      uint32 LE, CRC-32 (IEEE) of the index body
//	backptr  uint64 LE, byte offset of the index body from the container
//	         start (= where the frames end)
//	magic[4] "cSZi"
//
// The last IndexTailLen bytes (backptr + magic) are fixed-size, so a
// reader seeks to EOF−12, follows the backpointer, and verifies the index
// CRC. Sequential decoders instead scan the frames as in v2/v3 and then
// verify the footer agrees with what they saw.
//
// Format v5 makes chunked containers heterogeneous: each chunk may be
// compressed by a different registered codec (per-chunk adaptive mode
// dispatch), identified by the codec's 1-byte wire ID. The layout is v4
// plus that ID in two places:
//
//	version  byte = 5
//	every chunk frame gains, between codecMode and the value range:
//	    codecID  byte   registered CodecID of the chunk's assembly
//	index body entries become { frameOff, planeOff, planes, codecID }
//
// The chunk-index footer therefore records every chunk's codec without any
// payload access — readers dispatch (and report codec histograms) from the
// index alone. An unknown codec ID fails with ErrCorrupt, never a panic;
// the codecID must also agree with the frame's codecMode byte and the
// footer's entry (none of these bytes are CRC-protected, so they
// cross-check each other). v1–v4 blobs keep decoding forever.
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/pipeline"
)

const (
	version2 = 2
	version3 = 3
	version4 = 4
	version5 = 5

	// flagRelEB (v3/v4) marks the header eb field as value-range-relative;
	// each shard payload then carries its own absolute bound.
	flagRelEB = 0x01
)

// indexMagic ends a v4 container; together with the 8-byte backpointer it
// forms the fixed-size tail that makes the index footer discoverable from
// the end of a file.
var indexMagic = [4]byte{'c', 'S', 'Z', 'i'}

// IndexTailLen is the fixed size of the v4 container tail: an 8-byte
// little-endian backpointer to the index body plus the index magic.
const IndexTailLen = 12

// maxChunks bounds the frame count a chunked container may declare,
// protecting the sequential frame scan from absurd headers.
const maxChunks = 1 << 20

// CodecMode packs a shard's assembly into the per-chunk header byte.
func CodecMode(opts Options) byte {
	return byte(opts.Predictor)<<4 | byte(opts.Pipeline)&0x0f
}

// ChunkedInfo describes a chunked (v2–v5) container's global header.
type ChunkedInfo struct {
	Version     int // 2, 3, 4 or 5
	Dims        []int
	EB          float64 // error bound: absolute, or relative when RelEB
	RelEB       bool    // v3 only: EB is value-range-relative
	ChunkPlanes int     // planes per shard along Dims[0]
	NumChunks   int
}

// Total returns the element count of the full field.
func (h *ChunkedInfo) Total() int {
	t := 1
	for _, d := range h.Dims {
		t *= d
	}
	return t
}

// planeSize returns the element count of one plane along dims[0].
func planeSize(dims []int) int {
	p := 1
	for _, d := range dims[1:] {
		p *= d
	}
	return p
}

// numChunks returns how many shards of chunkPlanes planes cover dims[0].
func numChunks(dims []int, chunkPlanes int) int {
	return (dims[0] + chunkPlanes - 1) / chunkPlanes
}

// ChunkInfo describes one chunk frame header.
type ChunkInfo struct {
	Offset    int   // plane index along dims[0]
	Dims      []int // shard dims
	CodecMode byte
	CodecID   CodecID // registered codec wire ID (v5 frames; 0 otherwise)
	Min, Max  float32 // shard value range (v3+ frames only)
	Checksum  uint32
}

// ---------------------------------------------------------------------------
// Encoding.

// AppendChunkedHeader serializes the v2 global header.
func AppendChunkedHeader(dst []byte, dims []int, eb float64, chunkPlanes int) ([]byte, error) {
	return appendChunkedHeader(dst, version2, 0, dims, eb, chunkPlanes)
}

// AppendChunkedHeaderV3 serializes a v3 global header. relative marks the
// eb field as value-range-relative (each shard payload then embeds its own
// absolute bound, derived from the shard's value range).
func AppendChunkedHeaderV3(dst []byte, dims []int, eb float64, relative bool, chunkPlanes int) ([]byte, error) {
	var flags byte
	if relative {
		flags = flagRelEB
	}
	return appendChunkedHeader(dst, version3, flags, dims, eb, chunkPlanes)
}

// AppendChunkedHeaderV4 serializes a v4 (seekable) global header. The body
// uses v3 framing — every chunk frame carries its value range — and the
// container must be finished with AppendChunkIndexFooter.
func AppendChunkedHeaderV4(dst []byte, dims []int, eb float64, relative bool, chunkPlanes int) ([]byte, error) {
	var flags byte
	if relative {
		flags = flagRelEB
	}
	return appendChunkedHeader(dst, version4, flags, dims, eb, chunkPlanes)
}

// AppendChunkedHeaderV5 serializes a v5 (heterogeneous, seekable) global
// header. Frames must be written with AppendChunkFrameV5 and the container
// finished with AppendChunkIndexFooterV5.
func AppendChunkedHeaderV5(dst []byte, dims []int, eb float64, relative bool, chunkPlanes int) ([]byte, error) {
	var flags byte
	if relative {
		flags = flagRelEB
	}
	return appendChunkedHeader(dst, version5, flags, dims, eb, chunkPlanes)
}

func appendChunkedHeader(dst []byte, ver, flags byte, dims []int, eb float64, chunkPlanes int) ([]byte, error) {
	if eb <= 0 || math.IsInf(eb, 0) || math.IsNaN(eb) {
		return nil, fmt.Errorf("core: invalid error bound %v", eb)
	}
	if len(dims) == 0 || len(dims) > 8 {
		return nil, fmt.Errorf("core: invalid dims %v", dims)
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("core: invalid dims %v", dims)
		}
	}
	if chunkPlanes <= 0 {
		return nil, fmt.Errorf("core: chunk planes %d must be positive", chunkPlanes)
	}
	if n := numChunks(dims, chunkPlanes); n > maxChunks {
		return nil, fmt.Errorf("core: %d chunks exceeds the %d limit; raise chunk planes", n, maxChunks)
	}
	dst = append(dst, magic[:]...)
	dst = append(dst, ver, flags)
	dst = bitio.AppendUvarint(dst, uint64(len(dims)))
	for _, d := range dims {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	dst = bitio.AppendUint64(dst, math.Float64bits(eb))
	dst = bitio.AppendUvarint(dst, uint64(chunkPlanes))
	dst = bitio.AppendUvarint(dst, uint64(numChunks(dims, chunkPlanes)))
	return dst, nil
}

// appendUvarintWide serializes v as a LEB128 uvarint of exactly width
// bytes, padding with zero continuation groups. Every uvarint reader
// (binary.ReadUvarint, bitio.Uvarint) accepts the non-minimal form, so a
// widened field can later be rewritten in place with a larger value.
func appendUvarintWide(dst []byte, v uint64, width int) []byte {
	for i := 0; i < width-1; i++ {
		dst = append(dst, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// uvarintLen returns the minimal LEB128 encoding length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendChunkedHeaderSized serializes a chunked global header (any v2–v5
// version) with an explicit chunk count and, when padTo > 0, an exact byte
// length. Appendable stores use it to rewrite their header in place as
// they grow: nchunks may exceed the ceiling division (earlier append
// sessions can seal short interior chunks), and the dims[0]/nchunks
// uvarints are widened — non-minimal LEB128, which every uvarint reader
// accepts — until the header is exactly padTo bytes, so the frames behind
// it never move. It fails when the minimal header would not fit padTo.
func AppendChunkedHeaderSized(dst []byte, ver int, dims []int, eb float64, relative bool, chunkPlanes, nchunks, padTo int) ([]byte, error) {
	if ver < version2 || ver > version5 {
		return nil, fmt.Errorf("core: version %d is not a chunked format", ver)
	}
	var flags byte
	if relative {
		if ver == version2 {
			return nil, fmt.Errorf("core: v2 containers cannot carry a relative bound")
		}
		flags = flagRelEB
	}
	if eb <= 0 || math.IsInf(eb, 0) || math.IsNaN(eb) {
		return nil, fmt.Errorf("core: invalid error bound %v", eb)
	}
	if len(dims) == 0 || len(dims) > 8 {
		return nil, fmt.Errorf("core: invalid dims %v", dims)
	}
	for _, d := range dims {
		if d <= 0 || d > 1<<31 {
			return nil, fmt.Errorf("core: invalid dims %v", dims)
		}
	}
	if chunkPlanes <= 0 {
		return nil, fmt.Errorf("core: chunk planes %d must be positive", chunkPlanes)
	}
	if nchunks < numChunks(dims, chunkPlanes) || nchunks > dims[0] || nchunks > maxChunks {
		return nil, fmt.Errorf("core: %d chunks is invalid for %d planes of %d", nchunks, dims[0], chunkPlanes)
	}
	// The two growing fields, dims[0] and nchunks, absorb the padding.
	w0, wn := uvarintLen(uint64(dims[0])), uvarintLen(uint64(nchunks))
	if padTo > 0 {
		minimal := len(magic) + 2 + uvarintLen(uint64(len(dims))) + w0
		for _, d := range dims[1:] {
			minimal += uvarintLen(uint64(d))
		}
		minimal += 8 + uvarintLen(uint64(chunkPlanes)) + wn
		pad := padTo - minimal
		if pad < 0 || w0+pad > 2*10 {
			return nil, fmt.Errorf("core: header needs %d bytes, cannot pad to %d", minimal, padTo)
		}
		if grow := min(pad, 10-w0); grow > 0 {
			w0 += grow
			pad -= grow
		}
		wn += pad
		if wn > 10 {
			return nil, fmt.Errorf("core: header cannot pad to %d", padTo)
		}
	}
	dst = append(dst, magic[:]...)
	dst = append(dst, byte(ver), flags)
	dst = bitio.AppendUvarint(dst, uint64(len(dims)))
	dst = appendUvarintWide(dst, uint64(dims[0]), w0)
	for _, d := range dims[1:] {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	dst = bitio.AppendUint64(dst, math.Float64bits(eb))
	dst = bitio.AppendUvarint(dst, uint64(chunkPlanes))
	return appendUvarintWide(dst, uint64(nchunks), wn), nil
}

// AppendChunkFrame serializes one v2 chunk frame (header + payload).
func AppendChunkFrame(dst []byte, opts Options, offset int, shardDims []int, payload []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(offset))
	for _, d := range shardDims {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	dst = append(dst, CodecMode(opts))
	dst = bitio.AppendUvarint(dst, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	dst = append(dst, crc[:]...)
	return append(dst, payload...)
}

// AppendChunkFrameV3 serializes one v3 chunk frame, which carries the
// shard's value range between the codec-mode byte and the payload length.
func AppendChunkFrameV3(dst []byte, opts Options, offset int, shardDims []int, minV, maxV float32, payload []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(offset))
	for _, d := range shardDims {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	dst = append(dst, CodecMode(opts))
	dst = bitio.AppendUint32(dst, math.Float32bits(minV))
	dst = bitio.AppendUint32(dst, math.Float32bits(maxV))
	dst = bitio.AppendUvarint(dst, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	dst = append(dst, crc[:]...)
	return append(dst, payload...)
}

// AppendChunkFrameV5 serializes one v5 chunk frame: the v3 layout with the
// chunk's registered codec wire ID between the codec-mode byte and the
// value range, so readers can dispatch the chunk without inspecting its
// payload. For a codec without Options the codec-mode byte is written as
// 0 — it is advisory there, and frame validation then rests on the codec
// ID and its footer cross-check alone.
func AppendChunkFrameV5(dst []byte, cd Codec, offset int, shardDims []int, minV, maxV float32, payload []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(offset))
	for _, d := range shardDims {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	mode, _ := codecFrameMode(cd.ID())
	dst = append(dst, mode, byte(cd.ID()))
	dst = bitio.AppendUint32(dst, math.Float32bits(minV))
	dst = bitio.AppendUint32(dst, math.Float32bits(maxV))
	dst = bitio.AppendUvarint(dst, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	dst = append(dst, crc[:]...)
	return append(dst, payload...)
}

// IndexEntry locates one chunk inside a v4/v5 container: where its frame
// starts, which planes it reconstructs and (v5) which codec wrote it.
type IndexEntry struct {
	FrameOff int64   // byte offset of the chunk frame from the container start
	PlaneOff int     // first plane the chunk covers along Dims[0]
	Planes   int     // planes the chunk covers
	Codec    CodecID // the chunk's codec wire ID (v5 indexes; 0 otherwise)
}

// AppendChunkIndexFooter serializes the v4 chunk-index footer. footerOff is
// the byte offset at which the footer itself begins (i.e. the container
// length so far — where the last chunk frame ended); it becomes the
// backpointer stored in the fixed-size tail.
func AppendChunkIndexFooter(dst []byte, footerOff int64, entries []IndexEntry) []byte {
	return appendChunkIndexFooter(dst, footerOff, entries, false)
}

// AppendChunkIndexFooterV5 serializes the v5 chunk-index footer, whose
// entries additionally record each chunk's codec wire ID.
func AppendChunkIndexFooterV5(dst []byte, footerOff int64, entries []IndexEntry) []byte {
	return appendChunkIndexFooter(dst, footerOff, entries, true)
}

func appendChunkIndexFooter(dst []byte, footerOff int64, entries []IndexEntry, withCodec bool) []byte {
	body := bitio.AppendUvarint(nil, uint64(len(entries)))
	for _, e := range entries {
		body = bitio.AppendUvarint(body, uint64(e.FrameOff))
		body = bitio.AppendUvarint(body, uint64(e.PlaneOff))
		body = bitio.AppendUvarint(body, uint64(e.Planes))
		if withCodec {
			body = bitio.AppendUvarint(body, uint64(e.Codec))
		}
	}
	dst = append(dst, body...)
	dst = bitio.AppendUint32(dst, crc32.ChecksumIEEE(body))
	dst = bitio.AppendUint64(dst, uint64(footerOff))
	return append(dst, indexMagic[:]...)
}

// ParseChunkIndexTail reads the fixed-size v4 tail (the last IndexTailLen
// bytes of a container), returning the backpointer to the index body.
func ParseChunkIndexTail(tail []byte) (footerOff int64, err error) {
	if len(tail) != IndexTailLen || !bytes.Equal(tail[8:], indexMagic[:]) {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint64(tail[:8])
	if v > 1<<62 {
		return 0, ErrCorrupt
	}
	return int64(v), nil
}

// ParseChunkIndex decodes and validates a v4 index region — the bytes from
// the backpointer up to (not including) the fixed tail, i.e. the index
// body plus its CRC. The entries must agree with the global header: one
// entry per chunk, frame offsets strictly increasing and below footerOff,
// plane spans tiling [0, Dims[0]) contiguously with no chunk thicker than
// ChunkPlanes.
func ParseChunkIndex(region []byte, h *ChunkedInfo, footerOff int64) ([]IndexEntry, error) {
	if len(region) < 5 {
		return nil, ErrCorrupt
	}
	body := region[:len(region)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(region[len(region)-4:]) {
		return nil, fmt.Errorf("core: chunk index checksum mismatch: %w", ErrCorrupt)
	}
	off := 0
	readUv := func() (uint64, bool) {
		v, n := bitio.Uvarint(body[off:])
		if n == 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	nc, ok := readUv()
	if !ok || int(nc) != h.NumChunks {
		return nil, ErrCorrupt
	}
	entries := make([]IndexEntry, h.NumChunks)
	nextPlane := 0
	prevOff := int64(-1)
	for i := range entries {
		fo, ok1 := readUv()
		po, ok2 := readUv()
		pl, ok3 := readUv()
		if !ok1 || !ok2 || !ok3 {
			return nil, ErrCorrupt
		}
		e := IndexEntry{FrameOff: int64(fo), PlaneOff: int(po), Planes: int(pl)}
		if h.Version >= version5 {
			cv, ok := readUv()
			if !ok || cv == 0 || cv > 255 {
				return nil, ErrCorrupt
			}
			if _, ok := CodecByID(CodecID(cv)); !ok {
				return nil, fmt.Errorf("core: chunk index entry %d: unknown codec id %d: %w", i, cv, ErrCorrupt)
			}
			e.Codec = CodecID(cv)
		}
		if fo > 1<<62 || e.FrameOff <= prevOff || e.FrameOff >= footerOff {
			return nil, ErrCorrupt
		}
		if e.PlaneOff != nextPlane || e.Planes <= 0 || e.Planes > h.ChunkPlanes ||
			e.PlaneOff+e.Planes > h.Dims[0] {
			return nil, ErrCorrupt
		}
		prevOff = e.FrameOff
		nextPlane += e.Planes
		entries[i] = e
	}
	if nextPlane != h.Dims[0] || off != len(body) {
		return nil, ErrCorrupt
	}
	return entries, nil
}

// ShardRange scans one slab of values for its min/max — the v3 per-shard
// range header. NaNs are skipped, as the whole-file range pre-pass this
// replaces did; ok is false when the shard is empty or all-NaN.
func ShardRange(vs []float32) (minV, maxV float32, ok bool) {
	i := 0
	for i < len(vs) && vs[i] != vs[i] { // skip leading NaNs
		i++
	}
	if i == len(vs) {
		return 0, 0, false
	}
	minV, maxV = vs[i], vs[i]
	for _, v := range vs[i+1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, true
}

// CompressShard compresses one slab of chunkPlanes (or fewer, for the last
// shard) planes starting at plane `offset` into a framed chunk. data is the
// full field; the shard is the contiguous sub-slice along dims[0].
func CompressShard(dev *gpusim.Device, data []float32, dims []int, eb float64, opts Options, offset, planes int) ([]byte, error) {
	return CompressShardCtx(nil, dev, data, dims, eb, opts, offset, planes)
}

// CompressShardCtx is CompressShard drawing scratch from a reusable
// context. The returned frame is a fresh allocation.
func CompressShardCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64, opts Options, offset, planes int) ([]byte, error) {
	ps := planeSize(dims)
	shard := data[offset*ps : (offset+planes)*ps]
	shardDims := append([]int{planes}, dims[1:]...)
	payload, err := CompressCtx(ctx, dev, shard, shardDims, eb, opts)
	if err != nil {
		return nil, fmt.Errorf("core: shard at plane %d: %w", offset, err)
	}
	return AppendChunkFrame(nil, opts, offset, shardDims, payload), nil
}

// CompressChunked encodes data into a v2 multi-chunk container, compressing
// shards of chunkPlanes planes concurrently on dev's worker pool. Each
// worker compresses through its own reusable codec context.
func CompressChunked(dev *gpusim.Device, data []float32, dims []int, eb float64, opts Options, chunkPlanes int) ([]byte, error) {
	total := 1
	for _, d := range dims {
		total *= d
	}
	if len(dims) == 0 || total != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	out, err := AppendChunkedHeader(nil, dims, eb, chunkPlanes)
	if err != nil {
		return nil, err
	}
	n := numChunks(dims, chunkPlanes)
	ctxs := workerCtxs(dev.Workers(), n)
	defer releaseCtxs(ctxs)
	frames, err := pipeline.MapWorker(dev.Workers(), n, func(w, i int) ([]byte, error) {
		ctx := ctxs[w]
		ctx.Reset()
		offset := i * chunkPlanes
		planes := chunkPlanes
		if offset+planes > dims[0] {
			planes = dims[0] - offset
		}
		return CompressShardCtx(ctx, dev, data, dims, eb, opts, offset, planes)
	})
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		out = append(out, f...)
	}
	return out, nil
}

// ShardPick reports one shard's auto-mode selection: which codec the
// estimator picked, what size it predicted, and what the winner actually
// produced — the estimator-vs-actual observability record the streaming
// writer aggregates.
type ShardPick struct {
	Codec       string // winner's mode name
	EstBytes    int    // estimator's predicted payload size
	ActualBytes int    // the winner's real payload size
	EstRatio    float64
	ActualRatio float64
}

// CompressShardAuto selects the best codec for one shard (estimator
// scoring through ctx) and compresses it into a framed v5 chunk, returning
// the frame and the winning codec's wire ID. minV/maxV are the shard's
// value range for the frame header; eb is the shard's absolute bound.
func CompressShardAuto(ctx *arena.Ctx, dev *gpusim.Device, shard []float32, shardDims []int, offset int, eb float64, minV, maxV float32) ([]byte, CodecID, error) {
	frame, id, _, err := CompressShardAutoPolicy(ctx, dev, shard, shardDims, offset, eb, minV, maxV, DefaultSelectionPolicy)
	return frame, id, err
}

// CompressShardAutoPolicy is CompressShardAuto under an explicit selection
// policy, also reporting the pick for estimator-vs-actual observability.
// It is the per-shard worker body shared by CompressChunkedAuto and the
// streaming writer's auto mode.
func CompressShardAutoPolicy(ctx *arena.Ctx, dev *gpusim.Device, shard []float32, shardDims []int, offset int, eb float64, minV, maxV float32, pol SelectionPolicy) ([]byte, CodecID, ShardPick, error) {
	cd, est, err := SelectShardCodecPolicy(ctx, dev, shard, shardDims, eb, pol)
	if err != nil {
		return nil, codecInvalid, ShardPick{}, err
	}
	payload, err := cd.Compress(ctx, dev, shard, shardDims, eb)
	if err != nil {
		return nil, codecInvalid, ShardPick{}, err
	}
	pick := ShardPick{
		Codec:       cd.Name(),
		EstBytes:    est.Bytes,
		ActualBytes: len(payload),
		EstRatio:    est.Ratio,
		ActualRatio: float64(4*len(shard)) / float64(len(payload)),
	}
	return AppendChunkFrameV5(nil, cd, offset, shardDims, minV, maxV, payload), cd.ID(), pick, nil
}

// CompressChunkedAuto encodes data into a heterogeneous (format v5)
// container: every shard is scored by the estimator cascade on a sample of
// itself and compressed by the winner, concurrently on dev's worker pool
// through reusable codec contexts. The chunk-index footer records each
// shard's codec wire ID, so readers dispatch (and report per-chunk codec
// histograms) without touching payloads.
func CompressChunkedAuto(dev *gpusim.Device, data []float32, dims []int, eb float64, chunkPlanes int) ([]byte, error) {
	return CompressChunkedAutoPolicy(dev, data, dims, eb, chunkPlanes, DefaultSelectionPolicy)
}

// CompressChunkedAutoPolicy is CompressChunkedAuto under an explicit
// selection policy.
func CompressChunkedAutoPolicy(dev *gpusim.Device, data []float32, dims []int, eb float64, chunkPlanes int, pol SelectionPolicy) ([]byte, error) {
	total := 1
	for _, d := range dims {
		total *= d
	}
	if len(dims) == 0 || total != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	out, err := AppendChunkedHeaderV5(nil, dims, eb, false, chunkPlanes)
	if err != nil {
		return nil, err
	}
	n := numChunks(dims, chunkPlanes)
	ps := planeSize(dims)
	ctxs := workerCtxs(dev.Workers(), n)
	defer releaseCtxs(ctxs)
	type aframe struct {
		data   []byte
		offset int
		planes int
		codec  CodecID
	}
	frames, err := pipeline.MapWorker(dev.Workers(), n, func(w, i int) (aframe, error) {
		ctx := ctxs[w]
		offset := i * chunkPlanes
		planes := chunkPlanes
		if offset+planes > dims[0] {
			planes = dims[0] - offset
		}
		shard := data[offset*ps : (offset+planes)*ps]
		shardDims := append([]int{planes}, dims[1:]...)
		minV, maxV, _ := ShardRange(shard)
		frame, id, _, err := CompressShardAutoPolicy(ctx, dev, shard, shardDims, offset, eb, minV, maxV, pol)
		if err != nil {
			return aframe{}, fmt.Errorf("core: shard at plane %d: %w", offset, err)
		}
		return aframe{data: frame, offset: offset, planes: planes, codec: id}, nil
	})
	if err != nil {
		return nil, err
	}
	entries := make([]IndexEntry, len(frames))
	for i, f := range frames {
		entries[i] = IndexEntry{FrameOff: int64(len(out)), PlaneOff: f.offset, Planes: f.planes, Codec: f.codec}
		out = append(out, f.data...)
	}
	return AppendChunkIndexFooterV5(out, int64(len(out)), entries), nil
}

// workerCtxs draws one codec context per worker slot from the arena pool.
func workerCtxs(workers, jobs int) []*arena.Ctx {
	if workers <= 0 || workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	ctxs := make([]*arena.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = arena.Get()
	}
	return ctxs
}

func releaseCtxs(ctxs []*arena.Ctx) {
	for _, c := range ctxs {
		arena.Put(c)
	}
}

// ---------------------------------------------------------------------------
// Decoding.

// oneByteReader adapts an io.Reader to io.ByteReader without buffering
// ahead, so uvarint reads interleave safely with io.ReadFull.
type oneByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (b *oneByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}

func readUvarint(r io.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(&oneByteReader{r: r})
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, ErrCorrupt
	}
	return v, err
}

// SniffVersion reports the container format version from a prefix of at
// least 5 bytes, or ok=false when the prefix is not a container at all.
func SniffVersion(prefix []byte) (int, bool) {
	if len(prefix) < 5 || !bytes.Equal(prefix[:4], magic[:]) {
		return 0, false
	}
	return int(prefix[4]), true
}

// ReadChunkedHeader parses a chunked (v2–v5) global header from r
// (including the magic and version bytes).
func ReadChunkedHeader(r io.Reader) (*ChunkedInfo, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, ErrCorrupt
	}
	if !bytes.Equal(pre[:4], magic[:]) {
		return nil, ErrCorrupt
	}
	if pre[4] < version2 || pre[4] > version5 {
		return nil, fmt.Errorf("core: not a chunked container (version %d)", pre[4])
	}
	return readChunkedHeaderBody(r, pre[4], pre[5])
}

// readChunkedHeaderBody parses the chunked header after magic/version/flags.
func readChunkedHeaderBody(r io.Reader, ver, flags byte) (*ChunkedInfo, error) {
	if ver == version2 && flags != 0 {
		return nil, ErrCorrupt // v2 reserves the flags byte as zero
	}
	if ver >= version3 && flags&^byte(flagRelEB) != 0 {
		return nil, ErrCorrupt
	}
	nd, err := readUvarint(r)
	if err != nil || nd == 0 || nd > 8 {
		return nil, ErrCorrupt
	}
	h := &ChunkedInfo{
		Version: int(ver),
		RelEB:   ver >= version3 && flags&flagRelEB != 0,
		Dims:    make([]int, nd),
	}
	total := 1
	for i := range h.Dims {
		v, err := readUvarint(r)
		if err != nil || v == 0 || v > 1<<31 {
			return nil, ErrCorrupt
		}
		h.Dims[i] = int(v)
		total *= int(v)
		if total <= 0 || total > 1<<33 {
			return nil, ErrCorrupt
		}
	}
	var ebb [8]byte
	if _, err := io.ReadFull(r, ebb[:]); err != nil {
		return nil, ErrCorrupt
	}
	h.EB = math.Float64frombits(binary.LittleEndian.Uint64(ebb[:]))
	if !(h.EB > 0) || math.IsInf(h.EB, 0) {
		return nil, ErrCorrupt
	}
	cp, err := readUvarint(r)
	if err != nil || cp == 0 || cp > 1<<31 {
		return nil, ErrCorrupt
	}
	h.ChunkPlanes = int(cp)
	nc, err := readUvarint(r)
	if err != nil || nc == 0 || nc > maxChunks {
		return nil, ErrCorrupt
	}
	h.NumChunks = int(nc)
	// Appendable stores reseal after every session, and a session may end
	// on a short shard, so a container can legally hold MORE chunks than
	// the ceiling division implies (short interior chunks) — but never
	// fewer, and never more than one per plane. Every decode path still
	// requires the chunks to tile [0, Dims[0]) contiguously with no chunk
	// thicker than ChunkPlanes.
	if h.NumChunks < numChunks(h.Dims, h.ChunkPlanes) || h.NumChunks > h.Dims[0] {
		return nil, ErrCorrupt
	}
	return h, nil
}

// validateChunkFrame applies the frame-header rules shared by the stream
// parser (ReadChunkFrame) and the blob scanner (scanChunkFrame), so the
// two decode paths can never drift apart on what is a valid frame.
func validateChunkFrame(h *ChunkedInfo, c *ChunkInfo, plen uint64) error {
	if c.Offset >= h.Dims[0] {
		return ErrCorrupt
	}
	if h.Version >= version3 {
		// The v3 range header must be an ordered, finite pair.
		if math.IsNaN(float64(c.Min)) || math.IsNaN(float64(c.Max)) || c.Min > c.Max {
			return ErrCorrupt
		}
	}
	if h.Version >= version5 {
		// The codec ID must resolve in the registry, and (neither byte is
		// CRC-protected) agree with the frame's packed codec-mode byte.
		cd, ok := CodecByID(c.CodecID)
		if !ok {
			return fmt.Errorf("core: chunk at plane %d: unknown codec id %d: %w", c.Offset, c.CodecID, ErrCorrupt)
		}
		if mode, ok := codecFrameMode(cd.ID()); ok && mode != c.CodecMode {
			return fmt.Errorf("core: chunk at plane %d: codec %s disagrees with codec mode %#x: %w",
				c.Offset, CodecLabel(c.CodecID), c.CodecMode, ErrCorrupt)
		}
	}
	elems := 1
	for i, d := range c.Dims {
		if d <= 0 || d > 1<<31 {
			return ErrCorrupt
		}
		elems *= d
		if elems <= 0 || elems > 1<<33 {
			return ErrCorrupt
		}
		if i > 0 && d != h.Dims[i] {
			return ErrCorrupt
		}
	}
	if c.Dims[0] > h.ChunkPlanes || c.Offset+c.Dims[0] > h.Dims[0] {
		return ErrCorrupt
	}
	// A v1 shard container is never drastically larger than the raw shard;
	// the caps keep hostile headers from forcing huge allocations. The
	// 1<<31 payload ceiling is part of the format: both decode paths must
	// apply it identically.
	if plen > uint64(16*elems)+(1<<20) || plen > 1<<31 {
		return ErrCorrupt
	}
	return nil
}

// readPayload reads exactly n bytes from r, growing the buffer
// incrementally so a hostile header cannot force a multi-GB allocation
// before any real bytes have arrived.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	const step = 1 << 20
	first := n
	if first > step {
		first = step
	}
	buf := make([]byte, 0, first)
	for remaining := n; remaining > 0; {
		c := remaining
		if c > step {
			c = step
		}
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, ErrCorrupt
		}
		remaining -= c
	}
	return buf, nil
}

// VerifyChunkPayload checks a chunk payload against its frame header's
// CRC-32, wrapping ErrCorrupt on mismatch.
func VerifyChunkPayload(c *ChunkInfo, payload []byte) error {
	if crc32.ChecksumIEEE(payload) != c.Checksum {
		return fmt.Errorf("core: chunk at plane %d: checksum mismatch: %w", c.Offset, ErrCorrupt)
	}
	return nil
}

// verifyChunkPayload is the internal spelling kept for the blob scanner.
func verifyChunkPayload(c *ChunkInfo, payload []byte) error {
	return VerifyChunkPayload(c, payload)
}

// ReadChunkFrame parses the next chunk frame from r, returning its header
// and payload. The global header h supplies dimensionality and bounds; the
// frame is validated against it (trailing dims, payload size cap, CRC).
func ReadChunkFrame(r io.Reader, h *ChunkedInfo) (*ChunkInfo, []byte, error) {
	c, payload, err := ReadChunkFrameRaw(r, h)
	if err != nil {
		return nil, nil, err
	}
	if err := VerifyChunkPayload(c, payload); err != nil {
		return nil, nil, err
	}
	return c, payload, nil
}

// ReadChunkFrameRaw parses the next chunk frame from r — header validation
// included — but does NOT verify the payload CRC; the caller must run
// VerifyChunkPayload before trusting the bytes. Degraded readers use the
// split so a bit-rotted payload leaves r positioned exactly at the next
// frame boundary: the frame is structurally intact and fully consumed,
// only its bytes are wrong, so the read can skip the chunk and continue.
func ReadChunkFrameRaw(r io.Reader, h *ChunkedInfo) (*ChunkInfo, []byte, error) {
	off, err := readUvarint(r)
	if err != nil || off > 1<<31 {
		return nil, nil, ErrCorrupt
	}
	c := &ChunkInfo{Offset: int(off), Dims: make([]int, len(h.Dims))}
	for i := range c.Dims {
		v, err := readUvarint(r)
		if err != nil || v > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		c.Dims[i] = int(v)
	}
	var mode [1]byte
	if _, err := io.ReadFull(r, mode[:]); err != nil {
		return nil, nil, ErrCorrupt
	}
	c.CodecMode = mode[0]
	if h.Version >= version5 {
		var id [1]byte
		if _, err := io.ReadFull(r, id[:]); err != nil {
			return nil, nil, ErrCorrupt
		}
		c.CodecID = CodecID(id[0])
	}
	if h.Version >= version3 {
		var rng [8]byte
		if _, err := io.ReadFull(r, rng[:]); err != nil {
			return nil, nil, ErrCorrupt
		}
		c.Min = math.Float32frombits(binary.LittleEndian.Uint32(rng[:4]))
		c.Max = math.Float32frombits(binary.LittleEndian.Uint32(rng[4:]))
	}
	plen, err := readUvarint(r)
	if err != nil {
		return nil, nil, ErrCorrupt
	}
	if err := validateChunkFrame(h, c, plen); err != nil {
		return nil, nil, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, nil, ErrCorrupt
	}
	c.Checksum = binary.LittleEndian.Uint32(crc[:])
	payload, err := readPayload(r, plen)
	if err != nil {
		return nil, nil, err
	}
	return c, payload, nil
}

// DecompressShard decodes one chunk's payload and validates it against the
// frame header. Shard payloads must be v1 containers (no nesting), and the
// frame's codec-mode predictor nibble must match the payload's predictor
// byte (the pipeline nibble is advisory — the payload self-describes it at
// a mode-dependent offset).
func DecompressShard(dev *gpusim.Device, c *ChunkInfo, payload []byte) ([]float32, error) {
	return DecompressShardCtx(nil, dev, c, payload)
}

// verifyV1ShardPayload cross-checks a frame header against the v1
// container payload it carries: the payload must self-describe as v1 and
// its predictor byte must match the frame's codec-mode nibble (the frame
// header is outside the CRC, so the two must corroborate each other).
func verifyV1ShardPayload(c *ChunkInfo, payload []byte) error {
	if len(payload) < 6 || payload[4] != version {
		return ErrCorrupt
	}
	if payload[5] != c.CodecMode>>4 {
		return fmt.Errorf("core: chunk at plane %d: codec mode %#x disagrees with payload predictor %d: %w",
			c.Offset, c.CodecMode, payload[5], ErrCorrupt)
	}
	return nil
}

// DecompressShardCtx is DecompressShard with a reusable context. With a
// non-nil ctx the returned slab is context scratch, valid until ctx.Reset.
// v5 chunks dispatch through the codec registry by their wire ID; an
// unknown ID fails with ErrCorrupt. The v1-payload cross-checks apply to
// v2–v4 chunks and to assembly codecs (which wrap v1 containers); a
// registered codec without Options owns its own payload format and only
// its Decompress judges the bytes.
func DecompressShardCtx(ctx *arena.Ctx, dev *gpusim.Device, c *ChunkInfo, payload []byte) ([]float32, error) {
	var recon []float32
	var rdims []int
	var err error
	if c.CodecID != codecInvalid {
		cd, ok := CodecByID(c.CodecID)
		if !ok {
			return nil, fmt.Errorf("core: chunk at plane %d: unknown codec id %d: %w", c.Offset, c.CodecID, ErrCorrupt)
		}
		if _, isAssembly := cd.(optioned); isAssembly {
			if err := verifyV1ShardPayload(c, payload); err != nil {
				return nil, err
			}
		}
		recon, rdims, err = cd.Decompress(ctx, dev, payload)
	} else {
		if err := verifyV1ShardPayload(c, payload); err != nil {
			return nil, err
		}
		recon, rdims, err = DecompressCtx(ctx, dev, payload)
	}
	if err != nil {
		return nil, err
	}
	if len(rdims) != len(c.Dims) {
		return nil, ErrCorrupt
	}
	for i, d := range rdims {
		if d != c.Dims[i] {
			return nil, ErrCorrupt
		}
	}
	return recon, nil
}

// ScanFrameHeader parses a chunk frame header from the front of buf, which
// need only hold the header bytes — not the payload. It returns the frame
// info (checksum included), the offset within buf at which the payload
// begins, and the payload length, applying the same validation as the full
// frame readers. Index builders use it to walk a container's frames by
// offset arithmetic without touching any payload bytes.
func ScanFrameHeader(buf []byte, h *ChunkedInfo) (*ChunkInfo, int, int, error) {
	off := 0
	readUv := func() (uint64, bool) {
		v, n := bitio.Uvarint(buf[off:])
		if n == 0 || v > 1<<31 {
			return 0, false
		}
		off += n
		return v, true
	}
	o, ok := readUv()
	if !ok {
		return nil, 0, 0, ErrCorrupt
	}
	c := &ChunkInfo{Offset: int(o), Dims: make([]int, len(h.Dims))}
	for i := range c.Dims {
		v, ok := readUv()
		if !ok {
			return nil, 0, 0, ErrCorrupt
		}
		c.Dims[i] = int(v)
	}
	if off >= len(buf) {
		return nil, 0, 0, ErrCorrupt
	}
	c.CodecMode = buf[off]
	off++
	if h.Version >= version5 {
		if off >= len(buf) {
			return nil, 0, 0, ErrCorrupt
		}
		c.CodecID = CodecID(buf[off])
		off++
	}
	if h.Version >= version3 {
		if off+8 > len(buf) {
			return nil, 0, 0, ErrCorrupt
		}
		c.Min = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		c.Max = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
	}
	plen, ok := readUv()
	if !ok {
		return nil, 0, 0, ErrCorrupt
	}
	if err := validateChunkFrame(h, c, plen); err != nil {
		return nil, 0, 0, err
	}
	if off+4 > len(buf) {
		return nil, 0, 0, ErrCorrupt
	}
	c.Checksum = binary.LittleEndian.Uint32(buf[off:])
	off += 4
	return c, off, int(plen), nil
}

// scanChunkFrame parses the chunk frame at blob[off:] without copying the
// payload (it is returned as a subslice), sharing ScanFrameHeader and
// verifyChunkPayload with the other decode paths. It returns the offset
// just past the frame.
func scanChunkFrame(blob []byte, off int, h *ChunkedInfo) (*ChunkInfo, []byte, int, error) {
	if off < 0 || off > len(blob) {
		return nil, nil, 0, ErrCorrupt
	}
	c, payStart, plen, err := ScanFrameHeader(blob[off:], h)
	if err != nil {
		return nil, nil, 0, err
	}
	off += payStart
	if off+plen > len(blob) {
		return nil, nil, 0, ErrCorrupt
	}
	payload := blob[off : off+plen]
	off += plen
	if err := verifyChunkPayload(c, payload); err != nil {
		return nil, nil, 0, err
	}
	return c, payload, off, nil
}

// decompressChunked decodes a chunked (v2–v5) container: the frames are
// scanned sequentially (cheap, zero-copy — payloads stay subslices of
// blob), then decoded concurrently into the output field, each worker
// reusing its own pooled codec context across shards. The output field is
// drawn from the caller's ctx (scratch) when one is supplied.
func decompressChunked(ctx *arena.Ctx, dev *gpusim.Device, blob []byte) ([]float32, []int, error) {
	r := bytes.NewReader(blob[6:]) // past magic + version + flags
	h, err := readChunkedHeaderBody(r, blob[4], blob[5])
	if err != nil {
		return nil, nil, err
	}
	off := len(blob) - r.Len()
	type chunk struct {
		info    *ChunkInfo
		payload []byte
	}
	chunks := make([]chunk, h.NumChunks)
	frameOffs := make([]int, h.NumChunks)
	nextPlane := 0
	for i := range chunks {
		frameOffs[i] = off
		c, payload, next, err := scanChunkFrame(blob, off, h)
		if err != nil {
			return nil, nil, err
		}
		off = next
		if c.Offset != nextPlane {
			return nil, nil, ErrCorrupt // gap or overlap in shard coverage
		}
		nextPlane += c.Dims[0]
		chunks[i] = chunk{c, payload}
	}
	if nextPlane != h.Dims[0] {
		return nil, nil, ErrCorrupt
	}
	if h.Version >= version4 {
		// The index footer must occupy the rest of the blob exactly, point
		// back at where the frames ended, and agree with the frames the
		// scan just saw — a v4 container whose index lies is corrupt even
		// when decoded sequentially.
		if len(blob)-off < IndexTailLen {
			return nil, nil, ErrCorrupt
		}
		footerOff, err := ParseChunkIndexTail(blob[len(blob)-IndexTailLen:])
		if err != nil {
			return nil, nil, err
		}
		if footerOff != int64(off) {
			return nil, nil, ErrCorrupt
		}
		entries, err := ParseChunkIndex(blob[off:len(blob)-IndexTailLen], h, footerOff)
		if err != nil {
			return nil, nil, err
		}
		for i, e := range entries {
			if e.Codec != chunks[i].info.CodecID {
				return nil, nil, fmt.Errorf("core: chunk index codec %s disagrees with frame %d codec %s: %w",
					CodecLabel(e.Codec), i, CodecLabel(chunks[i].info.CodecID), ErrCorrupt)
			}
			if e.FrameOff != int64(frameOffs[i]) || e.PlaneOff != chunks[i].info.Offset ||
				e.Planes != chunks[i].info.Dims[0] {
				return nil, nil, fmt.Errorf("core: chunk index disagrees with frame %d: %w", i, ErrCorrupt)
			}
		}
	} else if off != len(blob) {
		return nil, nil, ErrCorrupt
	}
	// Decode the first shard before allocating the full output, so a
	// hostile header over bogus payloads fails before it can force the
	// field-sized allocation. The shard slab is worker-context scratch;
	// it is copied into the output before the context is recycled.
	firstCtx := arena.Get()
	first, err := DecompressShardCtx(firstCtx, dev, chunks[0].info, chunks[0].payload)
	if err != nil {
		arena.Put(firstCtx)
		return nil, nil, err
	}
	out := ctx.F32(h.Total())
	ps := planeSize(h.Dims)
	copy(out, first) // chunk 0 starts at plane 0 (coverage validated above)
	arena.Put(firstCtx)
	ctxs := workerCtxs(dev.Workers(), len(chunks)-1)
	defer releaseCtxs(ctxs)
	_, err = pipeline.MapWorker(dev.Workers(), len(chunks)-1, func(w, i int) (struct{}, error) {
		ctx := ctxs[w]
		ctx.Reset()
		c := chunks[i+1]
		recon, err := DecompressShardCtx(ctx, dev, c.info, c.payload)
		if err != nil {
			return struct{}{}, err
		}
		copy(out[c.info.Offset*ps:], recon)
		return struct{}{}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, h.Dims, nil
}

// ---------------------------------------------------------------------------
// Inspection.

// Info summarizes a container without decoding its payloads.
type Info struct {
	Version     int
	Dims        []int
	EB          float64
	RelEB       bool // v3+: EB is value-range-relative
	NumChunks   int  // 0 for v1 containers
	ChunkPlanes int  // 0 for v1 containers
	HasIndex    bool // v4/v5: a chunk-index footer makes the container seekable
	// ChunkCodecs counts chunks per codec name (v5 containers only),
	// computed from the chunk-index footer without touching any payload.
	ChunkCodecs map[string]int
	// ChunkCRs holds each chunk's actual compression ratio (raw plane
	// bytes over on-disk frame bytes), in plane order, computed for
	// indexed (v4/v5) containers from the footer's frame offsets alone.
	// Compared against an auto-mode writer's selection report
	// (stream.Writer.AutoSelections) it closes the estimator-vs-actual
	// observability loop without any container layout change.
	ChunkCRs []float64
}

// Inspect reads a container's headers (any format version).
func Inspect(blob []byte) (*Info, error) {
	if len(blob) < 6 || !bytes.Equal(blob[:4], magic[:]) {
		return nil, ErrCorrupt
	}
	switch blob[4] {
	case version:
		r := bytes.NewReader(blob[6:])
		nd, err := readUvarint(r)
		if err != nil || nd == 0 || nd > 8 {
			return nil, ErrCorrupt
		}
		info := &Info{Version: version, Dims: make([]int, nd)}
		for i := range info.Dims {
			v, err := readUvarint(r)
			if err != nil || v == 0 || v > 1<<31 {
				return nil, ErrCorrupt
			}
			info.Dims[i] = int(v)
		}
		var ebb [8]byte
		if _, err := io.ReadFull(r, ebb[:]); err != nil {
			return nil, ErrCorrupt
		}
		info.EB = math.Float64frombits(binary.LittleEndian.Uint64(ebb[:]))
		return info, nil
	case version2, version3, version4, version5:
		h, err := ReadChunkedHeader(bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		info := &Info{Version: h.Version, Dims: h.Dims, EB: h.EB, RelEB: h.RelEB,
			NumChunks: h.NumChunks, ChunkPlanes: h.ChunkPlanes}
		if h.Version >= version4 {
			// Headers-only check of the seekable tail: the backpointer must
			// land inside the blob ahead of the fixed tail.
			if len(blob) < IndexTailLen {
				return nil, ErrCorrupt
			}
			footerOff, err := ParseChunkIndexTail(blob[len(blob)-IndexTailLen:])
			if err != nil {
				return nil, err
			}
			if footerOff >= int64(len(blob)-IndexTailLen) {
				return nil, ErrCorrupt
			}
			info.HasIndex = true
			// The footer alone yields per-chunk observability: frame
			// extents (offset deltas, closed by the footer offset) against
			// raw plane bytes give each chunk's actual compression ratio,
			// and for v5 the recorded codec IDs give the codec histogram —
			// no payload is touched for either.
			entries, err := ParseChunkIndex(blob[footerOff:len(blob)-IndexTailLen], h, footerOff)
			if err != nil {
				return nil, err
			}
			ps := planeSize(h.Dims)
			info.ChunkCRs = make([]float64, len(entries))
			for i, e := range entries {
				end := footerOff
				if i+1 < len(entries) {
					end = entries[i+1].FrameOff
				}
				if fb := end - e.FrameOff; fb > 0 {
					info.ChunkCRs[i] = float64(4*e.Planes*ps) / float64(fb)
				}
			}
			if h.Version >= version5 {
				info.ChunkCodecs = make(map[string]int)
				for _, e := range entries {
					cd, _ := CodecByID(e.Codec) // registered: ParseChunkIndex validated it
					info.ChunkCodecs[cd.Name()]++
				}
			}
		}
		return info, nil
	}
	// An unrecognized version byte is indistinguishable from corruption at
	// this layer, so callers must be able to errors.Is it to ErrCorrupt.
	return nil, fmt.Errorf("core: unsupported version %d: %w", blob[4], ErrCorrupt)
}
