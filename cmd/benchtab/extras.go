package main

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/gpusim"
)

// extras compares the compressor archetypes beyond the paper's Table 4
// columns: the CPU-style SZ3-like global-interpolation configuration
// (§1's high-ratio reference) and the ultra-fast SZx constant-block design
// (§2.2, excluded from the paper's tables). It situates cuSZ-Hi between
// the two, which is the paper's framing of the design space.
func extras(dev *gpusim.Device) error {
	header("Extras: compressor archetype spectrum (eb=1e-2)")
	comps := []experiments.Compressor{
		experiments.SZ3LikeEntry(),
		experiments.HiCR(),
		experiments.HiTP(),
		experiments.CuSZp2(),
		experiments.SZx(),
	}
	fmt.Printf("%-10s %12s %10s %10s %12s %12s\n", "dataset", "compressor", "CR", "PSNR", "comp GiB/s", "dec GiB/s")
	for _, ds := range datagen.PaperNames() {
		f, err := experiments.Dataset(ds, *flagFull, *flagSeed)
		if err != nil {
			return err
		}
		for _, c := range comps {
			r, err := experiments.Run(dev, c, f, 1e-2)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %12s %10.1f %10.1f %12.3f %12.3f\n", ds, c.Name, r.CR, r.PSNR, r.CompGiBps, r.DecGiBps)
		}
	}
	fmt.Println("\n(expected: ratio SZ3-like >= Hi-CR >> SZx; speed SZx >> others)")
	return nil
}
