package experiments

import (
	"repro/internal/ans"
	"repro/internal/bitcomp"
	"repro/internal/gpusim"
	"repro/internal/huffman"
	"repro/internal/lccodec"
	"repro/internal/lz"
	"repro/internal/ndzip"
)

// LosslessCodec is one entry of the Fig. 6 lossless benchmarking.
type LosslessCodec struct {
	Name   string
	Encode func(dev *gpusim.Device, src []byte) ([]byte, error)
	Decode func(dev *gpusim.Device, src []byte) ([]byte, error)
}

func pipelineCodec(spec string) LosslessCodec {
	p := lccodec.MustParse(spec)
	return LosslessCodec{
		Name:   spec,
		Encode: p.Encode,
		Decode: p.Decode,
	}
}

func lzCodec(name string, v lz.Variant) LosslessCodec {
	return LosslessCodec{
		Name: name,
		Encode: func(dev *gpusim.Device, src []byte) ([]byte, error) {
			return lz.Encode(dev, src, v)
		},
		Decode: func(dev *gpusim.Device, src []byte) ([]byte, error) {
			return lz.Decode(dev, src, v)
		},
	}
}

// withHF prepends a Huffman stage to a codec (the "HF+X" variants of
// Fig. 6).
func withHF(c LosslessCodec) LosslessCodec {
	return LosslessCodec{
		Name: "HF+" + c.Name,
		Encode: func(dev *gpusim.Device, src []byte) ([]byte, error) {
			hf, err := huffman.EncodeBytes(dev, src)
			if err != nil {
				return nil, err
			}
			return c.Encode(dev, hf)
		},
		Decode: func(dev *gpusim.Device, src []byte) ([]byte, error) {
			mid, err := c.Decode(dev, src)
			if err != nil {
				return nil, err
			}
			return huffman.DecodeBytes(dev, mid)
		},
	}
}

// Fig6Codecs returns the lossless pipelines benchmarked in Fig. 6 of the
// paper: LC-framework multi-stage pipelines, their Huffman-prefixed
// variants, and the open surrogates of the proprietary GPU codecs.
func Fig6Codecs() []LosslessCodec {
	ansCodec := LosslessCodec{
		Name: "nvANS~",
		Encode: func(dev *gpusim.Device, src []byte) ([]byte, error) {
			return ans.Encode(src), nil
		},
		Decode: func(dev *gpusim.Device, src []byte) ([]byte, error) {
			return ans.Decode(src)
		},
	}
	bitcompCodec := LosslessCodec{
		Name:   "Bitcomp~",
		Encode: bitcomp.Compress,
		Decode: bitcomp.Decompress,
	}
	ndzipCodec := LosslessCodec{
		Name:   "ndzip",
		Encode: ndzip.Encode,
		Decode: ndzip.Decode,
	}
	base := []LosslessCodec{
		pipelineCodec("HF"),
		pipelineCodec("RRE1"),
		pipelineCodec("RRE1-RRE2"),
		pipelineCodec("TCMS1-BIT1-RRE1"),
		pipelineCodec("RRE1-RZE1-DIFFMS1-CLOG1"),
		ansCodec,
		bitcompCodec,
		lzCodec("GDeflate~", lz.GDeflateLite),
		lzCodec("LZ4~", lz.LZ4Lite),
		lzCodec("Zstd~", lz.ZstdLite),
		lzCodec("GPULZ~", lz.GPULZLite),
		ndzipCodec,
	}
	hfVariants := []LosslessCodec{
		pipelineCodec("HF-RRE1"),
		pipelineCodec("HF-TUPLQ1-RRE1"),
		pipelineCodec("HF-RRE4-TCMS8-RZE1"),
		pipelineCodec("HF-TUPLD2-RRE2-TUPLQ1-RRE1"),
		withHF(ansCodec),
		withHF(bitcompCodec),
		withHF(lzCodec("GDeflate~", lz.GDeflateLite)),
		withHF(lzCodec("LZ4~", lz.LZ4Lite)),
		withHF(lzCodec("Zstd~", lz.ZstdLite)),
		withHF(lzCodec("GPULZ~", lz.GPULZLite)),
		withHF(ndzipCodec),
	}
	return append(base, hfVariants...)
}
