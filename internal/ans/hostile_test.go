package ans

import (
	"errors"
	"testing"

	"repro/internal/bitio"
)

// TestDecodeHostileOutputLength pins the output-length cap: rANS ratios are
// legitimately unbounded, so the declared length is checked against the
// absolute wire ceiling rather than the input size — but a 2^40-scale value
// must still be rejected before the output make, not after.
func TestDecodeHostileOutputLength(t *testing.T) {
	for _, declared := range []uint64{1 << 63, 1<<40 + 7} {
		// Degenerate single-symbol container: header, mode 0x01, symbol.
		blob := bitio.AppendUvarint(nil, declared)
		blob = append(blob, 0x01, 'A')
		out, err := Decode(blob)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("declared=%d: got (%d bytes, %v), want ErrCorrupt", declared, len(out), err)
		}
	}
}

// TestDecodeHostileTailLength pins the tail-length cap: int(2^63) is
// negative, so off+int(tailLen) slipped under the upper-bound check as a
// wrapped sum and the tail slice expression panicked.
func TestDecodeHostileTailLength(t *testing.T) {
	blob := bitio.AppendUvarint(nil, 4) // 4 output bytes
	blob = append(blob, 0x00)           // table mode
	// Frequency table: symbol 0 carries the whole probScale mass, the
	// remaining 255 symbols are one RLE zero-run.
	blob = bitio.AppendUvarint(blob, probScale)
	blob = bitio.AppendUvarint(blob, 0)
	blob = bitio.AppendUvarint(blob, 255)
	blob = append(blob, 0, 0, 0x80, 0) // state x = ransL
	blob = bitio.AppendUvarint(blob, 1<<63)
	out, err := Decode(blob)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got (%d bytes, %v), want ErrCorrupt", len(out), err)
	}
}
