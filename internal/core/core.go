// Package core assembles the cuSZ-Hi compression framework (Fig. 2): a
// lossy decomposition stage (the interpolation predictor of internal/interp
// or the Lorenzo predictor of internal/lorenzo) followed by a lossless
// encoding pipeline, wrapped in a self-contained container format.
//
// The same machinery, configured differently, yields the paper's
// compressors:
//
//	cuSZ-Hi-CR  interp 17³/stride-16, auto-tuned, reordered, HF-RRE4-TCMS8-RZE1
//	cuSZ-Hi-TP  same predictor, TCMS1-BIT1-RRE1
//	cuSZ-I      interp 33×9×9/stride-8, 1-D scheme, Huffman
//	cuSZ-IB     cuSZ-I + Bitcomp(-surrogate) recompression
//	cuSZ-L      Lorenzo dual-quant + Huffman
//
// plus the incremental ablation variants of Table 5.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/arena"
	"repro/internal/bitcomp"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/huffman"
	"repro/internal/interp"
	"repro/internal/lccodec"
	"repro/internal/lorenzo"
	"repro/internal/quant"
)

// Parsed pipeline singletons for the hot paths (Parse is cheap but not
// free, and these run once per shard).
var (
	pipeHiCR     = lccodec.HiCR()
	pipeHiCRTail = lccodec.HiCRTail()
	pipeHiTP     = lccodec.HiTP()
)

// predictorEntry is one registered lossy decomposition stage. compress
// appends the predictor header and payload to the container under
// construction; decompress resumes at blob[off:], just past the shared
// container header.
type predictorEntry struct {
	compress   func(ctx *arena.Ctx, dev *gpusim.Device, out []byte, data []float32, dims []int, eb float64, opts Options) ([]byte, error)
	decompress func(ctx *arena.Ctx, dev *gpusim.Device, blob []byte, off int, dims []int, total int, eb float64) ([]float32, []int, error)
}

// predictors is the predictor registry: Compress/Decompress dispatch
// through it instead of switching on the Predictor byte, so an unknown
// wire value fails cleanly (invalid option on encode, ErrCorrupt on
// decode) and new decomposition stages plug in without touching dispatch.
var predictors = map[Predictor]predictorEntry{
	PredInterp:  {compressInterp, decompressInterp},
	PredLorenzo: {compressLorenzo, decompressLorenzo},
}

// pipelineEntry is one registered lossless encoding stage. encode/decode
// run over byte-wide quant codes (the interpolation predictor); the Syms
// variants run over uint16 symbols (the Lorenzo predictor) and are nil for
// pipelines that predictor cannot drive.
type pipelineEntry struct {
	name       string
	encode     func(ctx *arena.Ctx, dev *gpusim.Device, codes []byte, freq []int64) ([]byte, error)
	decode     func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]byte, error)
	encodeSyms func(ctx *arena.Ctx, dev *gpusim.Device, syms []uint16, alphabet int, freq []int64) ([]byte, error)
	decodeSyms func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]uint16, error)
}

// pipelines is the lossless-pipeline registry, replacing the per-call
// switch ladders over the Pipeline byte.
var pipelines = map[Pipeline]pipelineEntry{
	PipeHiCR: {
		name: "HF-RRE4-TCMS8-RZE1",
		// HF first, fed the fused histogram, then the rest of the chain —
		// byte-identical to running the full HF-RRE4-TCMS8-RZE1 pipeline.
		encode: func(ctx *arena.Ctx, dev *gpusim.Device, codes []byte, freq []int64) ([]byte, error) {
			hf, err := huffman.EncodeBytesCtx(ctx, dev, codes, freq)
			if err != nil {
				return nil, err
			}
			return pipeHiCRTail.EncodeCtx(ctx, dev, hf)
		},
		decode: func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]byte, error) {
			return pipeHiCR.DecodeCtx(ctx, dev, payload)
		},
	},
	PipeHiTP: {
		name: "TCMS1-BIT1-RRE1",
		encode: func(ctx *arena.Ctx, dev *gpusim.Device, codes []byte, _ []int64) ([]byte, error) {
			return pipeHiTP.EncodeCtx(ctx, dev, codes)
		},
		decode: func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]byte, error) {
			return pipeHiTP.DecodeCtx(ctx, dev, payload)
		},
	},
	PipeHuff: {
		name:       "HF",
		encode:     huffman.EncodeBytesCtx,
		decode:     huffman.DecodeBytesCtx,
		encodeSyms: huffman.EncodeCtx,
		decodeSyms: huffman.DecodeCtx,
	},
	PipeHuffBitcomp: {
		name: "HF+Bitcomp",
		encode: func(ctx *arena.Ctx, dev *gpusim.Device, codes []byte, freq []int64) ([]byte, error) {
			hf, err := huffman.EncodeBytesCtx(ctx, dev, codes, freq)
			if err != nil {
				return nil, err
			}
			return bitcomp.CompressCtx(ctx, dev, hf)
		},
		decode: func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]byte, error) {
			hf, err := bitcomp.DecompressCtx(ctx, dev, payload)
			if err != nil {
				return nil, err
			}
			return huffman.DecodeBytesCtx(ctx, dev, hf)
		},
		encodeSyms: func(ctx *arena.Ctx, dev *gpusim.Device, syms []uint16, alphabet int, freq []int64) ([]byte, error) {
			hf, err := huffman.EncodeCtx(ctx, dev, syms, alphabet, freq)
			if err != nil {
				return nil, err
			}
			return bitcomp.CompressCtx(ctx, dev, hf)
		},
		decodeSyms: func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]uint16, error) {
			hf, err := bitcomp.DecompressCtx(ctx, dev, payload)
			if err != nil {
				return nil, err
			}
			return huffman.DecodeCtx(ctx, dev, hf)
		},
	},
}

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("core: corrupt stream")

var magic = [4]byte{'c', 'S', 'Z', 'h'}

const version = 1

// Predictor selects the lossy decomposition stage.
type Predictor uint8

// Predictor kinds.
const (
	PredInterp Predictor = iota
	PredLorenzo
)

// Pipeline selects the lossless encoding stage.
type Pipeline uint8

// Pipeline kinds.
const (
	// PipeHiCR is HF-RRE4-TCMS8-RZE1 (cuSZ-Hi CR mode, Fig. 7 top).
	PipeHiCR Pipeline = iota
	// PipeHiTP is TCMS1-BIT1-RRE1 (cuSZ-Hi TP mode, Fig. 7 bottom).
	PipeHiTP
	// PipeHuff is Huffman only (cuSZ-I, cuSZ-L).
	PipeHuff
	// PipeHuffBitcomp is Huffman + the Bitcomp surrogate (cuSZ-IB).
	PipeHuffBitcomp
)

func (p Pipeline) String() string {
	if e, ok := pipelines[p]; ok {
		return e.name
	}
	return fmt.Sprintf("Pipeline(%d)", uint8(p))
}

// Options configures a compressor assembly.
type Options struct {
	Name      string // display name for reports
	Predictor Predictor
	Interp    interp.Config // used when Predictor == PredInterp
	// GlobalInterp expands the interpolation blocks to cover the whole
	// domain, removing block-boundary spline fallbacks — the CPU-style
	// (SZ3/QoZ) configuration that trades parallelism for prediction
	// quality (§1 of the paper contrasts these regimes).
	GlobalInterp bool
	AutoTune     bool // run §5.1.3 tuning before compressing
	Reorder      bool // apply Eq. 3 level-order code reordering
	Pipeline     Pipeline
}

// HiCR returns the cuSZ-Hi compression-ratio-preferred assembly.
func HiCR() Options {
	return Options{Name: "cuSZ-Hi-CR", Predictor: PredInterp, Interp: interp.HiConfig(),
		AutoTune: true, Reorder: true, Pipeline: PipeHiCR}
}

// HiTP returns the cuSZ-Hi throughput-preferred assembly.
func HiTP() Options {
	return Options{Name: "cuSZ-Hi-TP", Predictor: PredInterp, Interp: interp.HiConfig(),
		AutoTune: true, Reorder: true, Pipeline: PipeHiTP}
}

// CuszI returns the cuSZ-I baseline assembly.
func CuszI() Options {
	return Options{Name: "cuSZ-I", Predictor: PredInterp, Interp: interp.CuszIConfig(),
		Pipeline: PipeHuff}
}

// CuszIB returns the cuSZ-IB baseline assembly (cuSZ-I + Bitcomp surrogate).
func CuszIB() Options {
	o := CuszI()
	o.Name = "cuSZ-IB"
	o.Pipeline = PipeHuffBitcomp
	return o
}

// CuszL returns the cuSZ-L (Lorenzo) baseline assembly.
func CuszL() Options {
	return Options{Name: "cuSZ-L", Predictor: PredLorenzo, Pipeline: PipeHuff}
}

// ModeOptions maps a public mode name (the cuszhi Mode strings) to its
// compressor assembly through the codec registry — the single source of
// truth shared by the cuszhi facade, the streaming subsystem and the CLI.
func ModeOptions(name string) (Options, error) {
	c, ok := CodecByName(name)
	if !ok {
		return Options{}, fmt.Errorf("core: unknown mode %q", name)
	}
	oc, ok := c.(optioned)
	if !ok {
		return Options{}, fmt.Errorf("core: codec %q exposes no Options assembly", name)
	}
	return oc.Options(), nil
}

// SZ3Like returns a CPU-style high-ratio configuration: the cuSZ-Hi
// predictor with domain-global interpolation blocks (no block-boundary
// fallbacks, like SZ3/QoZ), auto-tuning, reordering and the CR pipeline.
// It is the upper reference point the paper's introduction compares GPU
// compressors against.
func SZ3Like() Options {
	o := HiCR()
	o.Name = "SZ3-like"
	o.GlobalInterp = true
	return o
}

// AblationVariants returns the incremental feature stack of Table 5:
// cuSZ-IB, +new partition & anchor, +quant-code reorder, +MD interp &
// auto-tune, and the full cuSZ-Hi-CR.
func AblationVariants() []Options {
	base := CuszIB()
	base.Name = "cuSZ-IB"

	v1 := base
	v1.Name = "+partition/anchor"
	v1.Interp = interp.HiConfig() // 17³ blocks, stride-16 anchors
	for i := range v1.Interp.PerLevel {
		v1.Interp.PerLevel[i] = interp.LevelConfig{Scheme: interp.Seq1DXYZ, Spline: interp.Cubic}
	}

	v2 := v1
	v2.Name = "+quant reorder"
	v2.Reorder = true

	v3 := v2
	v3.Name = "+MD & auto-tune"
	v3.AutoTune = true

	v4 := HiCR()
	v4.Name = "cuSZ-Hi-CR"
	return []Options{base, v1, v2, v3, v4}
}

// ---------------------------------------------------------------------------
// Compression.

// Compress encodes data (dims slowest-first) under absolute error bound eb.
func Compress(dev *gpusim.Device, data []float32, dims []int, eb float64, opts Options) ([]byte, error) {
	return CompressCtx(nil, dev, data, dims, eb, opts)
}

// CompressCtx is Compress drawing all working memory from a reusable codec
// context (nil behaves like Compress). The returned container is always a
// fresh allocation owned by the caller; only internal scratch is pooled.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64, opts Options) ([]byte, error) {
	if eb <= 0 || math.IsInf(eb, 0) || math.IsNaN(eb) {
		return nil, fmt.Errorf("core: invalid error bound %v", eb)
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("core: invalid dims %v", dims)
		}
		total *= d
	}
	if total != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	// One generous allocation for the container; appends below should stay
	// within it for typical ratios, keeping steady-state allocs flat.
	out := make([]byte, 0, len(data)/2+4096)
	out = append(out, magic[:]...)
	out = append(out, version, byte(opts.Predictor))
	out = bitio.AppendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = bitio.AppendUint64(out, math.Float64bits(eb))
	pc, ok := predictors[opts.Predictor]
	if !ok {
		return nil, fmt.Errorf("core: unknown predictor %d", opts.Predictor)
	}
	return pc.compress(ctx, dev, out, data, dims, eb, opts)
}

// encodeCodes runs the lossless pipeline over the quant codes. freq, when
// non-nil, is the code histogram accumulated during quantization; pipelines
// whose first stage is the Huffman coder consume it instead of re-scanning
// the codes (the quantize+histogram fusion).
func encodeCodes(ctx *arena.Ctx, dev *gpusim.Device, codes []byte, freq []int64, p Pipeline) ([]byte, error) {
	e, ok := pipelines[p]
	if !ok {
		return nil, fmt.Errorf("core: unknown pipeline %d", p)
	}
	return e.encode(ctx, dev, codes, freq)
}

func decodeCodes(ctx *arena.Ctx, dev *gpusim.Device, payload []byte, p Pipeline) ([]byte, error) {
	e, ok := pipelines[p]
	if !ok {
		return nil, fmt.Errorf("core: unknown pipeline %d: %w", p, ErrCorrupt)
	}
	return e.decode(ctx, dev, payload)
}

func compressInterp(ctx *arena.Ctx, dev *gpusim.Device, out []byte, data []float32, dims []int, eb float64, opts Options) ([]byte, error) {
	cfg := opts.Interp
	g := interp.NewGrid(dims)
	if opts.GlobalInterp {
		grow := func(n int) int {
			b := cfg.AnchorStride
			for b < n-1 {
				b += cfg.AnchorStride
			}
			return b
		}
		cfg.BlockZ = grow(g.Nz)
		cfg.BlockY = grow(g.Ny)
		cfg.BlockX = grow(g.Nx)
	}
	if opts.AutoTune {
		cfg.PerLevel = interp.AutoTune(dev, data, g, cfg, interp.DefaultSampleFraction)
	}
	res, err := interp.CompressCtx(ctx, dev, data, g, cfg, eb)
	if err != nil {
		return nil, err
	}
	// Predictor header.
	reorder := byte(0)
	if opts.Reorder {
		reorder = 1
	}
	out = append(out, byte(opts.Pipeline), reorder)
	out = bitio.AppendUvarint(out, uint64(cfg.AnchorStride))
	out = bitio.AppendUvarint(out, uint64(cfg.BlockZ))
	out = bitio.AppendUvarint(out, uint64(cfg.BlockY))
	out = bitio.AppendUvarint(out, uint64(cfg.BlockX))
	out = bitio.AppendUvarint(out, uint64(len(cfg.PerLevel)))
	for _, lc := range cfg.PerLevel {
		out = append(out, byte(lc.Scheme), byte(lc.Spline))
	}
	// Anchors.
	anchorBytes := ctx.Bytes(4 * len(res.Anchors))
	for i, v := range res.Anchors {
		binary.LittleEndian.PutUint32(anchorBytes[4*i:], math.Float32bits(v))
	}
	out = bitio.AppendUvarint(out, uint64(len(anchorBytes)))
	out = append(out, anchorBytes...)
	// Outliers.
	out = res.Outliers.Serialize(out)
	// Codes, optionally reordered, through the lossless pipeline.
	codes := res.Codes
	if opts.Reorder {
		perm := quant.LevelOrderPermCtx(ctx, dims, cfg.AnchorStride)
		reordered := ctx.Bytes(len(codes))
		quant.Apply(dev, perm, codes, reordered)
		codes = reordered
	}
	payload, err := encodeCodes(ctx, dev, codes, res.Freq, opts.Pipeline)
	if err != nil {
		return nil, err
	}
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

func compressLorenzo(ctx *arena.Ctx, dev *gpusim.Device, out []byte, data []float32, dims []int, eb float64, opts Options) ([]byte, error) {
	g := lorenzo.NewGrid(dims)
	res, err := lorenzo.CompressCtx(ctx, dev, data, g, eb)
	if err != nil {
		return nil, err
	}
	out = append(out, byte(opts.Pipeline))
	out = bitio.AppendUvarint(out, uint64(len(res.Escapes)))
	for _, e := range res.Escapes {
		out = bitio.AppendUvarint(out, bitio.ZigZag(e))
	}
	out = res.ValOutliers.Serialize(out)
	e, ok := pipelines[opts.Pipeline]
	if !ok || e.encodeSyms == nil {
		return nil, fmt.Errorf("core: pipeline %v unsupported with the Lorenzo predictor", opts.Pipeline)
	}
	payload, err := e.encodeSyms(ctx, dev, res.Codes, lorenzo.Alphabet, res.Freq)
	if err != nil {
		return nil, err
	}
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

// ---------------------------------------------------------------------------
// Decompression.

// Decompress decodes any container produced by Compress, returning the
// reconstructed field and its dims.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, []int, error) {
	return DecompressCtx(nil, dev, blob)
}

// DecompressCtx is Decompress drawing all working memory from a reusable
// codec context (nil behaves like Decompress). With a non-nil ctx the
// returned field and dims are context scratch, valid until the next
// ctx.Reset — copy them out before recycling the context.
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, blob []byte) ([]float32, []int, error) {
	if len(blob) < 6 || !bytes.Equal(blob[:4], magic[:]) {
		return nil, nil, ErrCorrupt
	}
	if blob[4] >= version2 && blob[4] <= version5 {
		return decompressChunked(ctx, dev, blob)
	}
	if blob[4] != version {
		// An unknown version byte is wire data, not API misuse: the standing
		// invariant says it must surface as ErrCorrupt, never a bare error.
		return nil, nil, fmt.Errorf("core: unsupported version %d: %w", blob[4], ErrCorrupt)
	}
	pred := Predictor(blob[5])
	off := 6
	nd64, n := bitio.Uvarint(blob[off:])
	if n == 0 || nd64 == 0 || nd64 > 8 {
		return nil, nil, ErrCorrupt
	}
	off += n
	dims := ctx.Ints(int(nd64))
	total := 1
	for i := range dims {
		v, n := bitio.Uvarint(blob[off:])
		if n == 0 || v == 0 || v > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		off += n
		dims[i] = int(v)
		total *= int(v)
		if total <= 0 || total > 1<<33 {
			return nil, nil, ErrCorrupt
		}
	}
	if off+8 > len(blob) {
		return nil, nil, ErrCorrupt
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[off:]))
	off += 8
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, nil, ErrCorrupt
	}
	pc, ok := predictors[pred]
	if !ok {
		return nil, nil, ErrCorrupt // unknown predictor wire value
	}
	return pc.decompress(ctx, dev, blob, off, dims, total, eb)
}

func decompressInterp(ctx *arena.Ctx, dev *gpusim.Device, blob []byte, off int, dims []int, total int, eb float64) ([]float32, []int, error) {
	if off+2 > len(blob) {
		return nil, nil, ErrCorrupt
	}
	pipe := Pipeline(blob[off])
	reorder := blob[off+1] == 1
	off += 2
	readUv := func() (int, bool) {
		v, n := bitio.Uvarint(blob[off:])
		if n == 0 || v > 1<<31 {
			return 0, false
		}
		off += n
		return int(v), true
	}
	stride, ok := readUv()
	if !ok {
		return nil, nil, ErrCorrupt
	}
	bz, ok := readUv()
	if !ok {
		return nil, nil, ErrCorrupt
	}
	by, ok := readUv()
	if !ok {
		return nil, nil, ErrCorrupt
	}
	bx, ok := readUv()
	if !ok {
		return nil, nil, ErrCorrupt
	}
	nLevels, ok := readUv()
	if !ok || nLevels > 32 || off+2*nLevels > len(blob) {
		return nil, nil, ErrCorrupt
	}
	cfg := interp.Config{AnchorStride: stride, BlockZ: bz, BlockY: by, BlockX: bx}
	for i := 0; i < nLevels; i++ {
		sch := interp.Scheme(blob[off])
		sp := interp.Spline(blob[off+1])
		off += 2
		if sch > interp.MD || sp > interp.Cubic {
			return nil, nil, ErrCorrupt
		}
		cfg.PerLevel = append(cfg.PerLevel, interp.LevelConfig{Scheme: sch, Spline: sp})
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, ErrCorrupt
	}
	g := interp.NewGrid(dims)
	anchorLen, ok := readUv()
	if !ok || off+anchorLen > len(blob) || anchorLen != 4*g.AnchorCount(stride) {
		return nil, nil, ErrCorrupt
	}
	anchors := ctx.F32(anchorLen / 4)
	for i := range anchors {
		anchors[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off+4*i:]))
	}
	off += anchorLen
	var outliers quant.Outliers
	used, err := quant.ParseOutliersInto(ctx, &outliers, blob[off:])
	if err != nil {
		return nil, nil, err
	}
	off += used
	payLen, ok := readUv()
	if !ok || off+payLen > len(blob) {
		return nil, nil, ErrCorrupt
	}
	codes, err := decodeCodes(ctx, dev, blob[off:off+payLen], pipe)
	if err != nil {
		return nil, nil, err
	}
	if len(codes) != total {
		return nil, nil, ErrCorrupt
	}
	if reorder {
		perm := quant.LevelOrderPermCtx(ctx, dims, stride)
		natural := ctx.Bytes(total)
		quant.Invert(dev, perm, codes, natural)
		codes = natural
	}
	res := &interp.Result{Codes: codes, Anchors: anchors, Outliers: &outliers}
	recon, err := interp.DecompressCtx(ctx, dev, res, g, cfg, eb)
	if err != nil {
		return nil, nil, err
	}
	return recon, dims, nil
}

func decompressLorenzo(ctx *arena.Ctx, dev *gpusim.Device, blob []byte, off int, dims []int, total int, eb float64) ([]float32, []int, error) {
	if off >= len(blob) {
		return nil, nil, ErrCorrupt
	}
	pipe := Pipeline(blob[off])
	off++
	nEsc64, n := bitio.Uvarint(blob[off:])
	if n == 0 || int(nEsc64) < 0 || int(nEsc64) > total {
		return nil, nil, ErrCorrupt
	}
	off += n
	escapes := ctx.I64(int(nEsc64))
	for i := range escapes {
		z, n := bitio.Uvarint(blob[off:])
		if n == 0 {
			return nil, nil, ErrCorrupt
		}
		off += n
		escapes[i] = bitio.UnZigZag(z)
	}
	var res lorenzo.Result
	res.Escapes = escapes
	used, err := quant.ParseOutliersInto(ctx, &res.ValOutliers, blob[off:])
	if err != nil {
		return nil, nil, err
	}
	off += used
	payLen64, n := bitio.Uvarint(blob[off:])
	// Cap before the int conversion: a huge wire length would overflow
	// negative and slip past the bounds check into a panicking slice.
	if n == 0 || payLen64 > 1<<31 || off+n+int(payLen64) > len(blob) {
		return nil, nil, ErrCorrupt
	}
	off += n
	payload := blob[off : off+int(payLen64)]
	e, ok := pipelines[pipe]
	if !ok || e.decodeSyms == nil {
		return nil, nil, ErrCorrupt
	}
	res.Codes, err = e.decodeSyms(ctx, dev, payload)
	if err != nil {
		return nil, nil, err
	}
	if len(res.Codes) != total {
		return nil, nil, ErrCorrupt
	}
	recon, err := lorenzo.DecompressCtx(ctx, dev, &res, lorenzo.NewGrid(dims), eb)
	if err != nil {
		return nil, nil, err
	}
	return recon, dims, nil
}
