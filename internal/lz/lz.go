// Package lz implements an LZSS-family compressor with four container
// formats that act as open surrogates for the GPU LZ codecs benchmarked in
// Fig. 6 of the cuSZ-Hi paper:
//
//   - LZ4Lite:      byte-aligned greedy LZ with varint sequences (nvCOMP::LZ4)
//   - GPULZLite:    classic LZSS bit format, 4 KiB window (GPULZ)
//   - ZstdLite:     LZ parse + rANS-coded literal/sequence streams (nvCOMP::Zstd)
//   - GDeflateLite: LZ parse + Huffman-coded streams (nvCOMP::GDeflate)
//
// All variants share one hash-chain matcher; they differ in window size,
// match economics and entropy back-end, which is what separates the real
// codecs' Pareto positions.
//
// The *Ctx entry points thread a reusable arena.Ctx through the matcher
// (hash heads, chain links, sequence list) and the decoders' output
// buffers, so warm contexts re-code stream after stream with near-zero
// heap allocations on the byte-aligned variants (the entropy variants
// additionally pay their back-end's costs).
package lz

import (
	"errors"
	"fmt"

	"repro/internal/ans"
	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/huffman"
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("lz: corrupt stream")

// Variant selects a container format.
type Variant int

// Container formats.
const (
	LZ4Lite Variant = iota
	GPULZLite
	ZstdLite
	GDeflateLite
)

// String returns the surrogate's display name.
func (v Variant) String() string {
	switch v {
	case LZ4Lite:
		return "lz4-lite"
	case GPULZLite:
		return "gpulz-lite"
	case ZstdLite:
		return "zstd-lite"
	case GDeflateLite:
		return "gdeflate-lite"
	}
	return fmt.Sprintf("lz.Variant(%d)", int(v))
}

const (
	minMatch  = 4
	hashBits  = 15
	hashShift = 32 - hashBits
)

// maxOrigLen caps the declared decoded length of any container, so a
// hostile header cannot force a huge allocation or an unbounded expansion
// loop before real bytes are validated. It also fits int on 32-bit
// platforms, so the int conversions below can never wrap negative.
const maxOrigLen = 1<<31 - 1

// seq is one LZ sequence: litLen literals followed by a match.
type seq struct {
	litLen   int
	matchLen int // 0 only for the final literal run
	dist     int
}

// auxKey is this package's scratch slot in an arena.Ctx.
var auxKey = arena.NewAuxKey()

// lzScratch holds the cross-op sequence list; its backing array persists
// so steady-state parses stop growing it.
type lzScratch struct {
	seqs []seq
}

func scratchFor(ctx *arena.Ctx) *lzScratch {
	if s, ok := ctx.Aux(auxKey).(*lzScratch); ok {
		return s
	}
	s := &lzScratch{}
	ctx.SetAux(auxKey, s)
	return s
}

// hash4 is the per-position hash of the match finder.
//
//cuszhi:hotpath
func hash4(p []byte) uint32 {
	v := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
	return (v * 2654435761) >> hashShift
}

// parse runs a greedy hash-chain parse of src. The hash heads, chain links
// and the returned sequence list are context scratch (valid until the next
// parse through the same context).
func parse(ctx *arena.Ctx, src []byte, window, maxChain, maxMatch int) []seq {
	s := scratchFor(ctx)
	seqs := s.seqs[:0]
	defer func() { s.seqs = seqs }()
	n := len(src)
	if n < minMatch {
		if n > 0 {
			seqs = append(seqs, seq{litLen: n})
		}
		return seqs
	}
	head := ctx.I32(1 << hashBits)
	for i := range head {
		head[i] = -1
	}
	prev := ctx.I32(n)
	litStart := 0
	i := 0
	insert := func(pos int) {
		h := hash4(src[pos:])
		prev[pos] = head[h]
		head[h] = int32(pos)
	}
	for i+minMatch <= n {
		h := hash4(src[i:])
		cand := head[h]
		bestLen, bestDist := 0, 0
		chain := maxChain
		for cand >= 0 && chain > 0 && i-int(cand) <= window {
			c := int(cand)
			l := matchLen(src, c, i, maxMatch)
			if l > bestLen {
				bestLen, bestDist = l, i-c
				if l >= maxMatch {
					break
				}
			}
			cand = prev[c]
			chain--
		}
		if bestLen >= minMatch {
			seqs = append(seqs, seq{litLen: i - litStart, matchLen: bestLen, dist: bestDist})
			end := i + bestLen
			insert(i)
			for p := i + 1; p < end && p+minMatch <= n; p++ {
				insert(p)
			}
			i = end
			litStart = i
			continue
		}
		insert(i)
		i++
	}
	if litStart < n {
		seqs = append(seqs, seq{litLen: n - litStart})
	}
	return seqs
}

// matchLen extends a candidate match; it runs once per chain probe.
//
//cuszhi:hotpath
func matchLen(src []byte, a, b, maxMatch int) int {
	n := len(src)
	l := 0
	for b+l < n && l < maxMatch && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// outBuf reserves a decode output buffer from ctx: the declared length is
// honored up to a sanity multiple of the input size, so a hostile header
// cannot force a huge up-front allocation (legitimate extreme expansions
// simply regrow through append).
func outBuf(ctx *arena.Ctx, origLen, inLen int) []byte {
	reserve := origLen
	if lim := 1024*inLen + 1024; reserve > lim {
		reserve = lim
	}
	return ctx.Bytes(reserve)[:0]
}

// expand reconstructs the original data from sequences and a literal stream.
func expand(ctx *arena.Ctx, seqs []seq, lits []byte, origLen, inLen int) ([]byte, error) {
	out := outBuf(ctx, origLen, inLen)
	lp := 0
	for _, s := range seqs {
		if s.litLen < 0 || lp+s.litLen > len(lits) {
			return nil, ErrCorrupt
		}
		out = append(out, lits[lp:lp+s.litLen]...)
		lp += s.litLen
		if s.matchLen == 0 {
			continue
		}
		if s.dist <= 0 || s.dist > len(out) || s.matchLen < 0 ||
			s.matchLen > origLen-len(out) {
			return nil, ErrCorrupt
		}
		start := len(out) - s.dist
		for k := 0; k < s.matchLen; k++ {
			out = append(out, out[start+k]) // overlap-safe
		}
	}
	if len(out) != origLen {
		return nil, ErrCorrupt
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Containers.

// Encode compresses src with the chosen variant.
func Encode(dev *gpusim.Device, src []byte, v Variant) ([]byte, error) {
	return EncodeCtx(nil, dev, src, v)
}

// EncodeCtx is Encode drawing matcher and stage scratch from a reusable
// codec context (nil behaves like Encode). The returned stream is a fresh
// allocation owned by the caller.
func EncodeCtx(ctx *arena.Ctx, dev *gpusim.Device, src []byte, v Variant) ([]byte, error) {
	switch v {
	case LZ4Lite:
		return encodeVarint(ctx, src, 1<<16, 32, 1<<16), nil
	case GPULZLite:
		return encodeLZSS(ctx, src), nil
	case ZstdLite:
		return encodeEntropy(ctx, dev, src, true)
	case GDeflateLite:
		return encodeEntropy(ctx, dev, src, false)
	}
	return nil, fmt.Errorf("lz: unknown variant %d", v)
}

// Decode reverses Encode for the same variant.
func Decode(dev *gpusim.Device, data []byte, v Variant) ([]byte, error) {
	return DecodeCtx(nil, dev, data, v)
}

// DecodeCtx is Decode with a reusable context. With a non-nil ctx the
// returned stream is context scratch, valid until the next ctx.Reset.
func DecodeCtx(ctx *arena.Ctx, dev *gpusim.Device, data []byte, v Variant) ([]byte, error) {
	switch v {
	case LZ4Lite:
		return decodeVarint(ctx, data)
	case GPULZLite:
		return decodeLZSS(ctx, data)
	case ZstdLite:
		return decodeEntropy(ctx, dev, data, true)
	case GDeflateLite:
		return decodeEntropy(ctx, dev, data, false)
	}
	// The variant is a caller-supplied API argument, not a wire value, so a
	// bad one is a usage error rather than stream corruption.
	//lint:ignore corrupterr variant comes from the caller, not the wire
	return nil, fmt.Errorf("lz: unknown variant %d", v)
}

// encodeVarint is the byte-aligned LZ4-like container:
// uvarint origLen, then per sequence: uvarint litLen, literals,
// uvarint matchLen (0 terminates), uvarint dist.
func encodeVarint(ctx *arena.Ctx, src []byte, window, maxChain, maxMatch int) []byte {
	seqs := parse(ctx, src, window, maxChain, maxMatch)
	out := make([]byte, 0, len(src)+len(src)/8+16)
	out = bitio.AppendUvarint(out, uint64(len(src)))
	pos := 0
	for _, s := range seqs {
		out = bitio.AppendUvarint(out, uint64(s.litLen))
		out = append(out, src[pos:pos+s.litLen]...)
		pos += s.litLen + s.matchLen
		out = bitio.AppendUvarint(out, uint64(s.matchLen))
		if s.matchLen > 0 {
			out = bitio.AppendUvarint(out, uint64(s.dist))
		}
	}
	// Explicit terminator for the case where the last seq had a match.
	out = bitio.AppendUvarint(out, 0)
	out = bitio.AppendUvarint(out, 0)
	return out
}

func decodeVarint(ctx *arena.Ctx, data []byte) ([]byte, error) {
	origLen64, n := bitio.Uvarint(data)
	if n == 0 || origLen64 > maxOrigLen {
		return nil, ErrCorrupt
	}
	origLen := int(origLen64)
	off := n
	out := outBuf(ctx, origLen, len(data))
	for {
		litLen, n := bitio.Uvarint(data[off:])
		if n == 0 || litLen > uint64(len(data)) {
			return nil, ErrCorrupt
		}
		off += n
		if off+int(litLen) > len(data) {
			return nil, ErrCorrupt
		}
		out = append(out, data[off:off+int(litLen)]...)
		off += int(litLen)
		if len(out) > origLen {
			return nil, ErrCorrupt
		}
		ml, n := bitio.Uvarint(data[off:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		off += n
		if ml == 0 {
			if litLen == 0 {
				break // terminator
			}
			continue
		}
		// Bound the match before replaying it: a hostile length must fail
		// here, not after an unbounded append loop. len(out) <= origLen is
		// guaranteed above, so the subtraction cannot wrap.
		if ml > uint64(origLen-len(out)) {
			return nil, ErrCorrupt
		}
		dist, n := bitio.Uvarint(data[off:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		off += n
		if dist == 0 || int(dist) > len(out) {
			return nil, ErrCorrupt
		}
		start := len(out) - int(dist)
		for k := 0; k < int(ml); k++ {
			out = append(out, out[start+k])
		}
	}
	if len(out) != origLen {
		return nil, ErrCorrupt
	}
	return out, nil
}

// LZSS parameters for the GPULZ-like container.
const (
	lzssWindow  = 1 << 12 // 12-bit distances
	lzssLenBits = 6
	lzssMaxLen  = minMatch + (1 << lzssLenBits) - 1
)

func encodeLZSS(ctx *arena.Ctx, src []byte) []byte {
	seqs := parse(ctx, src, lzssWindow-1, 16, lzssMaxLen)
	w := bitio.NewWriter(len(src)/2 + 16)
	pos := 0
	for _, s := range seqs {
		for k := 0; k < s.litLen; k++ {
			w.WriteBit(0)
			w.WriteBits(uint64(src[pos+k]), 8)
		}
		pos += s.litLen
		if s.matchLen > 0 {
			w.WriteBit(1)
			w.WriteBits(uint64(s.dist), 12)
			w.WriteBits(uint64(s.matchLen-minMatch), lzssLenBits)
			pos += s.matchLen
		}
	}
	out := bitio.AppendUvarint(nil, uint64(len(src)))
	return append(out, w.Bytes()...)
}

func decodeLZSS(ctx *arena.Ctx, data []byte) ([]byte, error) {
	origLen64, n := bitio.Uvarint(data)
	if n == 0 || origLen64 > maxOrigLen {
		return nil, ErrCorrupt
	}
	origLen := int(origLen64)
	var r bitio.Reader
	r.ResetBytes(data[n:])
	out := outBuf(ctx, origLen, len(data))
	for len(out) < origLen {
		flag, err := r.ReadBit()
		if err != nil {
			return nil, ErrCorrupt
		}
		if flag == 0 {
			b, err := r.ReadBits(8)
			if err != nil {
				return nil, ErrCorrupt
			}
			out = append(out, byte(b))
			continue
		}
		dist, err := r.ReadBits(12)
		if err != nil {
			return nil, ErrCorrupt
		}
		ml, err := r.ReadBits(lzssLenBits)
		if err != nil {
			return nil, ErrCorrupt
		}
		l := int(ml) + minMatch
		if dist == 0 || int(dist) > len(out) || len(out)+l > origLen {
			return nil, ErrCorrupt
		}
		start := len(out) - int(dist)
		for k := 0; k < l; k++ {
			out = append(out, out[start+k])
		}
	}
	return out, nil
}

// encodeEntropy is the zstd/gdeflate-like container: the parse is split into
// a literal stream and a sequence stream, each entropy-coded.
func encodeEntropy(ctx *arena.Ctx, dev *gpusim.Device, src []byte, useANS bool) ([]byte, error) {
	seqs := parse(ctx, src, 1<<17, 64, 1<<16)
	lits := ctx.Bytes(len(src))[:0]
	seqBuf := ctx.Bytes(4*len(seqs) + 16)[:0]
	pos := 0
	for _, s := range seqs {
		lits = append(lits, src[pos:pos+s.litLen]...)
		pos += s.litLen + s.matchLen
		seqBuf = bitio.AppendUvarint(seqBuf, uint64(s.litLen))
		seqBuf = bitio.AppendUvarint(seqBuf, uint64(s.matchLen))
		if s.matchLen > 0 {
			seqBuf = bitio.AppendUvarint(seqBuf, uint64(s.dist))
		}
	}
	var litBlob, seqBlob []byte
	var err error
	if useANS {
		litBlob = ans.Encode(lits)
		seqBlob = ans.Encode(seqBuf)
	} else {
		// Huffman containers are fresh allocations, so both streams can
		// draw stage scratch from the same context back to back.
		litBlob, err = huffman.EncodeBytesCtx(ctx, dev, lits, nil)
		if err != nil {
			return nil, err
		}
		seqBlob, err = huffman.EncodeBytesCtx(ctx, dev, seqBuf, nil)
		if err != nil {
			return nil, err
		}
	}
	out := make([]byte, 0, len(litBlob)+len(seqBlob)+24)
	out = bitio.AppendUvarint(out, uint64(len(src)))
	out = bitio.AppendUvarint(out, uint64(len(seqs)))
	out = bitio.AppendUvarint(out, uint64(len(litBlob)))
	out = append(out, litBlob...)
	out = bitio.AppendUvarint(out, uint64(len(seqBlob)))
	return append(out, seqBlob...), nil
}

func decodeEntropy(ctx *arena.Ctx, dev *gpusim.Device, data []byte, useANS bool) ([]byte, error) {
	origLen64, n := bitio.Uvarint(data)
	if n == 0 || origLen64 > maxOrigLen {
		return nil, ErrCorrupt
	}
	off := n
	nSeqs, n := bitio.Uvarint(data[off:])
	if n == 0 {
		return nil, ErrCorrupt
	}
	off += n
	litLen, n := bitio.Uvarint(data[off:])
	if n == 0 || litLen > uint64(len(data)) || off+n+int(litLen) > len(data) {
		return nil, ErrCorrupt
	}
	off += n
	litBlob := data[off : off+int(litLen)]
	off += int(litLen)
	seqLen, n := bitio.Uvarint(data[off:])
	if n == 0 || seqLen > uint64(len(data)) || off+n+int(seqLen) > len(data) {
		return nil, ErrCorrupt
	}
	off += n
	seqBlob := data[off : off+int(seqLen)]

	var lits, seqBuf []byte
	var err error
	if useANS {
		lits, err = ans.Decode(litBlob)
		if err != nil {
			return nil, err
		}
		seqBuf, err = ans.Decode(seqBlob)
	} else {
		// Arena slots advance in call order (no Reset between the two
		// streams), so the second decode never recycles the first's bytes.
		lits, err = huffman.DecodeBytesCtx(ctx, dev, litBlob)
		if err != nil {
			return nil, err
		}
		seqBuf, err = huffman.DecodeBytesCtx(ctx, dev, seqBlob)
	}
	if err != nil {
		return nil, err
	}
	// Every sequence spends at least two seqBuf bytes, so a count beyond
	// that is hostile — reject before sizing anything by it.
	if nSeqs > uint64(len(seqBuf)) {
		return nil, ErrCorrupt
	}
	s := scratchFor(ctx)
	seqs := s.seqs[:0]
	defer func() { s.seqs = seqs }()
	sp := 0
	for i := uint64(0); i < nSeqs; i++ {
		ll, n := bitio.Uvarint(seqBuf[sp:])
		if n == 0 || ll > maxOrigLen {
			return nil, ErrCorrupt
		}
		sp += n
		ml, n := bitio.Uvarint(seqBuf[sp:])
		if n == 0 || ml > maxOrigLen {
			return nil, ErrCorrupt
		}
		sp += n
		sq := seq{litLen: int(ll), matchLen: int(ml)}
		if ml > 0 {
			d, n := bitio.Uvarint(seqBuf[sp:])
			if n == 0 || d > maxOrigLen {
				return nil, ErrCorrupt
			}
			sp += n
			sq.dist = int(d)
		}
		seqs = append(seqs, sq)
	}
	return expand(ctx, seqs, lits, int(origLen64), len(data))
}
