// Fixture for the wireid analyzer: a "core" package whose wire tables
// violate the append-only contract every way the analyzer knows. Parsed,
// never compiled.
package core

// CodecID puts this fixture in the analyzer's scope.
type CodecID uint8

const (
	codecInvalid CodecID = 0
	CodecHiCR    CodecID = 9 // renumbered: shipped value is 1
	CodecHiTP    CodecID = 2
	CodecCuszI   CodecID = 3
	CodecCuszIB  CodecID = 4
	CodecCuszL   CodecID = 5
	CodecFzGPU   CodecID = 6
	CodecSZp     CodecID = 7
	CodecSZx     CodecID = 8
	CodecDupe    CodecID = 8    // duplicate of CodecSZx, and inside the shipped range
	CodecIota    CodecID = iota // not an explicit literal
)

const (
	version  = 1
	version2 = 2
	version3 = 3
	version4 = 4
	version5 = 6 // renumbered: shipped byte is 5
)
