package interp

import (
	"testing"
)

func benchField(dims []int) []float32 {
	return synthField(dims, 42)
}

func BenchmarkCompressHi(b *testing.B) {
	dims := []int{96, 96, 96}
	data := benchField(dims)
	g := NewGrid(dims)
	cfg := HiConfig()
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(dev, data, g, cfg, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressHi(b *testing.B) {
	dims := []int{96, 96, 96}
	data := benchField(dims)
	g := NewGrid(dims)
	cfg := HiConfig()
	res, err := Compress(dev, data, g, cfg, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(dev, res, g, cfg, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressCuszI(b *testing.B) {
	dims := []int{96, 96, 96}
	data := benchField(dims)
	g := NewGrid(dims)
	cfg := CuszIConfig()
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(dev, data, g, cfg, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoTune(b *testing.B) {
	dims := []int{96, 96, 96}
	data := benchField(dims)
	g := NewGrid(dims)
	cfg := HiConfig()
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AutoTune(dev, data, g, cfg, DefaultSampleFraction)
	}
}
