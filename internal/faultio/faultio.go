// Package faultio wraps I/O primitives with deterministic, scriptable
// faults, so robustness tests can prove how the container layers behave
// under bit-rot and flaky storage without ever touching a real bad disk.
//
// Every fault is injected by explicit script, never by hidden randomness:
// a test that wants random fault sites derives the offsets itself from a
// seed (FlipOffsets helps) and passes them in, so a failure reproduces
// from the seed alone. The wrappers inject the fault families a production
// store actually sees:
//
//   - bit-rot: reads covering a chosen offset see the byte XORed with a
//     mask (FlipBit/FlipByte) — the backing store is never modified, so
//     one wrapper can replay many damage patterns over one good store;
//   - transient errors: the first N operations touching a region fail
//     with a chosen error, then succeed (TransientErrors) — the flaky-NFS
//     shape that retry policies exist for;
//   - permanent errors: every operation touching a region fails
//     (PermanentErrors) — a dead sector;
//   - short reads: the first N reads deliver one byte fewer than asked,
//     with the error the io contract requires (ShortReads);
//   - latency: every operation sleeps a fixed duration first (Latency).
//
// ReaderAt wraps an io.ReaderAt; File additionally wraps positioned
// writes, Truncate and Sync, satisfying cuszhi/stream.File structurally so
// append/repair paths test under the same faults. Counters (Ops, Injected)
// let tests assert a fault actually fired.
package faultio

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the default error injected faults fail with. It is
// deliberately not io.EOF-shaped and not a format error, so the container
// layers classify it as transient I/O.
var ErrInjected = errors.New("faultio: injected I/O fault")

// opKind selects which operation family a fault applies to.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opSync
)

// flip is one byte of scripted bit-rot.
type flip struct {
	off  int64
	mask byte
}

// errScript fails operations overlapping [off, off+len) — the whole file
// when len < 0 — with err, up to `left` times (forever when left < 0).
type errScript struct {
	kind opKind
	off  int64
	n    int64 // region length; <0 = whole file
	left int   // remaining injections; <0 = permanent
	err  error
}

func (s *errScript) covers(kind opKind, off, n int64) bool {
	if s.kind != kind || s.left == 0 {
		return false
	}
	if s.n < 0 || kind == opSync {
		return true
	}
	return off < s.off+s.n && s.off < off+n
}

// state is the shared fault script behind every wrapper; a mutex makes the
// wrappers safe for the concurrent reads ReadPlanes issues.
type state struct {
	mu       sync.Mutex
	flips    []flip
	scripts  []*errScript
	shortN   int // remaining short reads
	latency  time.Duration
	ops      int
	injected int
}

// Fault is one scripted behavior, applied at construction.
type Fault func(*state)

// FlipBit makes every read covering off see bit `bit` of that byte
// inverted — persistent bit-rot, without modifying the backing store.
func FlipBit(off int64, bit uint) Fault { return FlipByte(off, 1<<(bit&7)) }

// FlipByte is FlipBit for an arbitrary XOR mask.
func FlipByte(off int64, mask byte) Fault {
	return func(s *state) { s.flips = append(s.flips, flip{off: off, mask: mask}) }
}

// TransientErrors fails the first n reads with err (ErrInjected when nil),
// then lets every later read through — the (N−1)-failures-then-success
// shape bounded retry must recover from.
func TransientErrors(n int, err error) Fault { return TransientErrorsAt(0, -1, n, err) }

// TransientErrorsAt is TransientErrors scoped to reads overlapping
// [off, off+length); length < 0 covers the whole file.
func TransientErrorsAt(off, length int64, n int, err error) Fault {
	if err == nil {
		err = ErrInjected
	}
	return func(s *state) {
		s.scripts = append(s.scripts, &errScript{kind: opRead, off: off, n: length, left: n, err: err})
	}
}

// PermanentErrors fails every read overlapping [off, off+length) with err
// (ErrInjected when nil) — a dead sector; length < 0 kills the whole file.
func PermanentErrors(off, length int64, err error) Fault {
	if err == nil {
		err = ErrInjected
	}
	return func(s *state) {
		s.scripts = append(s.scripts, &errScript{kind: opRead, off: off, n: length, left: -1, err: err})
	}
}

// WriteErrors fails the first n writes (n < 0: all writes) with err
// (ErrInjected when nil).
func WriteErrors(n int, err error) Fault {
	if err == nil {
		err = ErrInjected
	}
	return func(s *state) {
		s.scripts = append(s.scripts, &errScript{kind: opWrite, off: 0, n: -1, left: n, err: err})
	}
}

// SyncErrors fails the first n Sync calls (n < 0: all) with err
// (ErrInjected when nil).
func SyncErrors(n int, err error) Fault {
	if err == nil {
		err = ErrInjected
	}
	return func(s *state) {
		s.scripts = append(s.scripts, &errScript{kind: opSync, off: 0, n: -1, left: n, err: err})
	}
}

// ShortReads makes the first n reads deliver one byte fewer than asked
// (alongside ErrInjected, as the io.ReaderAt contract requires for a
// short read), then behave normally.
func ShortReads(n int) Fault {
	return func(s *state) { s.shortN = n }
}

// Latency sleeps d before every operation.
func Latency(d time.Duration) Fault {
	return func(s *state) { s.latency = d }
}

// FlipOffsets derives n distinct byte offsets in [0, size) from seed —
// the deterministic, seedable way to scatter bit-rot across a store.
func FlipOffsets(seed int64, n int, size int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]bool, n)
	offs := make([]int64, 0, n)
	for int64(len(offs)) < int64(n) && int64(len(offs)) < size {
		off := rng.Int63n(size)
		if !seen[off] {
			seen[off] = true
			offs = append(offs, off)
		}
	}
	return offs
}

// enter applies latency and the error scripts to one operation, returning
// the injected error (nil = proceed).
func (s *state) enter(kind opKind, off, n int64) error {
	s.mu.Lock()
	s.ops++
	var err error
	for _, sc := range s.scripts {
		if sc.covers(kind, off, n) {
			if sc.left > 0 {
				sc.left--
			}
			s.injected++
			err = sc.err
			break
		}
	}
	d := s.latency
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

// corrupt applies the scripted bit flips to bytes just read into p from off.
func (s *state) corrupt(p []byte, off int64, n int) {
	s.mu.Lock()
	for _, f := range s.flips {
		if f.off >= off && f.off < off+int64(n) {
			p[f.off-off] ^= f.mask
		}
	}
	s.mu.Unlock()
}

// takeShort consumes one scripted short read, if any remain.
func (s *state) takeShort() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shortN > 0 {
		s.shortN--
		s.injected++
		return true
	}
	return false
}

// Ops reports how many operations reached the wrapper.
func (s *state) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Injected reports how many faults actually fired.
func (s *state) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// ReaderAt wraps an io.ReaderAt with the scripted faults. It is safe for
// concurrent use (matching the io.ReaderAt contract).
type ReaderAt struct {
	src io.ReaderAt
	state
}

// NewReaderAt wraps src with the given faults.
func NewReaderAt(src io.ReaderAt, faults ...Fault) *ReaderAt {
	r := &ReaderAt{src: src}
	for _, f := range faults {
		f(&r.state)
	}
	return r
}

// ReadAt implements io.ReaderAt, applying error scripts, short reads and
// bit flips in that order.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if err := r.enter(opRead, off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) > 1 && r.takeShort() {
		n, err := r.src.ReadAt(p[:len(p)-1], off)
		r.corrupt(p, off, n)
		if err == nil || err == io.EOF {
			err = ErrInjected // short read must carry an error, per contract
		}
		return n, err
	}
	n, err := r.src.ReadAt(p, off)
	r.corrupt(p, off, n)
	return n, err
}

// backingFile is what File wraps: the positioned-I/O surface of
// cuszhi/stream.File, restated here so faultio depends only on stdlib.
type backingFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
}

// File wraps an append-store sink (anything shaped like *os.File) with the
// scripted faults, so crash/append tests can interleave bit-rot and
// transient failures with real truncate/seal sequences. It satisfies
// cuszhi/stream.File structurally.
type File struct {
	src backingFile
	state
}

// NewFile wraps src with the given faults.
func NewFile(src backingFile, faults ...Fault) *File {
	f := &File{src: src}
	for _, fa := range faults {
		fa(&f.state)
	}
	return f
}

// ReadAt implements io.ReaderAt with the same semantics as ReaderAt.ReadAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.enter(opRead, off, int64(len(p))); err != nil {
		return 0, err
	}
	n, err := f.src.ReadAt(p, off)
	f.corrupt(p, off, n)
	return n, err
}

// WriteAt implements io.WriterAt, applying write-error scripts.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.enter(opWrite, off, int64(len(p))); err != nil {
		return 0, err
	}
	return f.src.WriteAt(p, off)
}

// Truncate passes through to the backing file.
func (f *File) Truncate(size int64) error { return f.src.Truncate(size) }

// Sync applies sync-error scripts, then passes through.
func (f *File) Sync() error {
	if err := f.enter(opSync, 0, 0); err != nil {
		return err
	}
	return f.src.Sync()
}

// Seek passes through when the backing file supports it, so size probes
// (stream.OpenAppend) keep working on wrapped in-memory files.
func (f *File) Seek(off int64, whence int) (int64, error) {
	if sk, ok := f.src.(io.Seeker); ok {
		return sk.Seek(off, whence)
	}
	return 0, errors.New("faultio: backing file is not seekable")
}
