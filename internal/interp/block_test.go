package interp

import (
	"math/rand"
	"testing"

	"repro/internal/quant"
)

// TestOwnershipPartition verifies the core parallel-safety invariant: over
// all blocks, every grid point is either an anchor or a predicted point,
// and is owned (emitted) by exactly one block.
func TestOwnershipPartition(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		cfg  Config
	}{
		{[]int{33, 33, 33}, HiConfig()},
		{[]int{17, 17, 17}, HiConfig()},
		{[]int{40, 23, 50}, HiConfig()},
		{[]int{1, 35, 70}, HiConfig()},
		{[]int{16, 16, 16}, HiConfig()},
		{[]int{20, 10, 65}, CuszIConfig()},
		{[]int{9, 9, 33}, CuszIConfig()},
		{[]int{2, 3, 5}, HiConfig()},
	} {
		g := NewGrid(tc.dims)
		cfg := tc.cfg
		owned := make([]int, g.Len())
		visited := make([]int, g.Len())
		nbz, nby, nbx := blockGrid(g, &cfg)
		az, ay, ax := g.AnchorDims(cfg.AnchorStride)
		anchors := make([]float32, az*ay*ax)
		for bi := 0; bi < nbz*nby*nbx; bi++ {
			bk := &block{}
			bx := bi % nbx
			by := (bi / nbx) % nby
			bz := bi / (nbx * nby)
			bk.initBlock(g, &cfg, bz, by, bx)
			bk.anchors = anchors
			bk.az = [3]int{az, ay, ax}
			bk.loadAnchors(func(z, y, x int, v float32) {
				idx := g.flat(z, y, x)
				visited[idx]++
				if bk.owns(z, y, x) {
					owned[idx]++
				}
			})
			bk.run(func(z, y, x int, pred float32, isOwned bool) float32 {
				idx := g.flat(z, y, x)
				visited[idx]++
				if isOwned {
					owned[idx]++
				}
				return 0
			})
		}
		for i := range owned {
			if owned[i] != 1 {
				x := i % g.Nx
				y := (i / g.Nx) % g.Ny
				z := i / (g.Nx * g.Ny)
				t.Fatalf("dims %v: point (%d,%d,%d) owned %d times", tc.dims, z, y, x, owned[i])
			}
			if visited[i] < 1 {
				t.Fatalf("dims %v: point %d never visited", tc.dims, i)
			}
		}
	}
}

// TestSharedFaceDeterminism verifies that a point computed redundantly by
// two adjacent blocks gets the identical reconstruction from both — the
// property that makes owner-only emission sound.
func TestSharedFaceDeterminism(t *testing.T) {
	dims := []int{33, 33, 33}
	g := NewGrid(dims)
	cfg := HiConfig()
	rng := rand.New(rand.NewSource(5))
	data := make([]float32, g.Len())
	for i := range data {
		data[i] = rng.Float32()
	}
	eb := 1e-3
	res, err := Compress(dev, data, g, cfg, eb)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run each block in isolation and check the recon it computes for
	// non-owned face points matches what the owner emitted: decompression
	// already verifies this transitively, so here it suffices that a
	// second full pass yields identical codes.
	res2, err := Compress(dev, data, g, cfg, eb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Codes {
		if res.Codes[i] != res2.Codes[i] {
			t.Fatalf("codes differ at %d across identical runs", i)
		}
	}
}

// TestPhaseNeighborsAreKnown runs a sentinel check: at every prediction the
// neighbours the spline reads must already have been written (anchors or
// earlier phases). A NaN sentinel in unwritten cells would poison the
// prediction.
func TestPhaseNeighborsAreKnown(t *testing.T) {
	for _, scheme := range []Scheme{Seq1DXYZ, Seq1DZYX, MD} {
		dims := []int{33, 33, 33}
		g := NewGrid(dims)
		cfg := HiConfig()
		cfg.PerLevel = uniformLevels(cfg.Levels(), LevelConfig{Scheme: scheme, Spline: Cubic})
		az, ay, ax := g.AnchorDims(cfg.AnchorStride)
		anchors := make([]float32, az*ay*ax)
		for i := range anchors {
			anchors[i] = 1
		}
		bk := &block{}
		bk.initBlock(g, &cfg, 0, 0, 0)
		bk.anchors = anchors
		bk.az = [3]int{az, ay, ax}
		sentinel := float32(-12345)
		for i := range bk.buf {
			bk.buf[i] = sentinel
		}
		bk.loadAnchors(nil)
		bk.run(func(z, y, x int, pred float32, owned bool) float32 {
			// A constant-1 anchor field interpolates to exactly 1
			// everywhere; any sentinel leakage shifts the prediction.
			if pred != 1 {
				t.Fatalf("scheme %v: point (%d,%d,%d) read unwritten neighbours (pred %v)", scheme, z, y, x, pred)
			}
			return pred
		})
	}
}

// TestReorderConsistentWithCompressedLevels checks that the Eq. 3 perm and
// the predictor agree on levels: all anchor-slot codes land in the head of
// the reordered stream.
func TestReorderConsistentWithCompressedLevels(t *testing.T) {
	dims := []int{33, 33, 33}
	g := NewGrid(dims)
	data := make([]float32, g.Len())
	rng := rand.New(rand.NewSource(6))
	for i := range data {
		data[i] = rng.Float32()
	}
	cfg := HiConfig()
	res, err := Compress(dev, data, g, cfg, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	perm := quant.LevelOrderPerm(dims, cfg.AnchorStride)
	nAnchors := g.AnchorCount(cfg.AnchorStride)
	for k := 0; k < nAnchors; k++ {
		if res.Codes[perm[k]] != quant.ZeroCode {
			t.Fatalf("reordered head slot %d is not an anchor zero code", k)
		}
	}
}
