package core

import (
	"bytes"
	"testing"

	"repro/internal/arena"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// raceEnabled is set by race_test.go when building with -race.
var raceEnabled bool

// TestAllocsOneShotRoundTrip locks the steady-state allocation ceiling of a
// reused codec context: a 64³ compress+decompress round trip through the
// Lorenzo+Huffman assembly must stay within 10 allocations per op once the
// context is warm (the ISSUE-2 acceptance bar). A regression here means a
// hot-path buffer stopped coming from the arena.
func TestAllocsOneShotRoundTrip(t *testing.T) {
	dims := []int{64, 64, 64}
	data := rampField(64 * 64 * 64)
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	opts := CuszL()
	ctx := arena.NewCtx()

	// Warm the context slots and keep a blob for the decompress half.
	blob, err := CompressCtx(ctx, dev1, data, dims, 0.01, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if _, _, err := DecompressCtx(ctx, dev1, blob); err != nil {
		t.Fatal(err)
	}

	roundTrip := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		b, err := CompressCtx(ctx, dev1, data, dims, 0.01, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset()
		if _, _, err := DecompressCtx(ctx, dev1, b); err != nil {
			t.Fatal(err)
		}
	})
	if roundTrip > 10 {
		t.Fatalf("steady-state 64³ round trip allocates %v/op, want <= 10", roundTrip)
	}

	decomp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, _, err := DecompressCtx(ctx, dev1, blob); err != nil {
			t.Fatal(err)
		}
	})
	if decomp > 2 {
		t.Fatalf("steady-state decompress allocates %v/op, want <= 2", decomp)
	}
}

// TestAllocsChunkedSteadyState bounds the per-op allocations of the full
// chunked (v2) pipeline, which recycles one codec context per worker. The
// ceiling is looser than the one-shot path (frames, pool bookkeeping and
// the assembled container are real per-op costs) but must stay far below
// the pre-arena behavior of reallocating every shard's working set.
func TestAllocsChunkedSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses pooling under -race; ceiling is calibrated for normal builds")
	}
	dims := []int{64, 32, 32}
	data := rampField(64 * 32 * 32)
	dev1 := gpusim.New(1)
	opts := CuszL()
	blob, err := CompressChunked(dev1, data, dims, 0.01, opts, 16)
	if err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		b, err := CompressChunked(dev1, data, dims, 0.01, opts, 16)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Decompress(dev1, b); err != nil {
			t.Fatal(err)
		}
	})
	// 4 shards each way; ~25 bookkeeping allocations per op observed, 120
	// leaves headroom without hiding an O(field-size) regression.
	if n > 120 {
		t.Fatalf("chunked 4-shard round trip allocates %v/op, want <= 120", n)
	}
	if _, _, err := Decompress(dev1, blob); err != nil {
		t.Fatal(err)
	}
}

// TestCtxNoAliasingBetweenFields proves a recycled context never leaks
// bytes between consecutive fields: containers returned by CompressCtx are
// caller-owned (bit-identical to a no-context compress even after the
// context is reused for a different field), and decompressed fields
// returned by the public chunked API survive later decompressions that
// recycle the same worker contexts.
func TestCtxNoAliasingBetweenFields(t *testing.T) {
	dims := []int{20, 16, 16}
	n := 20 * 16 * 16
	fieldA := rampField(n)
	fieldB := make([]float32, n)
	for i := range fieldB {
		fieldB[i] = float32((i*7)%31) - 11.5
	}
	dev1 := gpusim.New(1)

	for _, opts := range []Options{CuszL(), HiTP()} {
		// Reference containers from context-free compression.
		wantA, err := Compress(dev1, fieldA, dims, 0.02, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := Compress(dev1, fieldB, dims, 0.02, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := arena.NewCtx()
		gotA, err := CompressCtx(ctx, dev1, fieldA, dims, 0.02, opts)
		if err != nil {
			t.Fatal(err)
		}
		snapA := append([]byte(nil), gotA...)
		ctx.Reset()
		gotB, err := CompressCtx(ctx, dev1, fieldB, dims, 0.02, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotA, snapA) {
			t.Fatalf("%s: blob A mutated by compressing field B through the same context", opts.Name)
		}
		if !bytes.Equal(gotA, wantA) || !bytes.Equal(gotB, wantB) {
			t.Fatalf("%s: context compression diverges from context-free compression", opts.Name)
		}
	}

	// Public chunked decode path: worker contexts recycle across shards
	// and across calls; previously returned fields must stay intact.
	dev4 := gpusim.New(4)
	blobA, err := CompressChunked(dev4, fieldA, dims, 0.02, CuszL(), 6)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := CompressChunked(dev4, fieldB, dims, 0.02, CuszL(), 6)
	if err != nil {
		t.Fatal(err)
	}
	reconA, _, err := Decompress(dev4, blobA)
	if err != nil {
		t.Fatal(err)
	}
	snapA := append([]float32(nil), reconA...)
	for i := 0; i < 3; i++ {
		if _, _, err := Decompress(dev4, blobB); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapA {
		if reconA[i] != snapA[i] {
			t.Fatalf("reconstruction of field A changed at %d after decompressing field B", i)
		}
	}
	if i := metrics.FirstViolation(fieldA, reconA, 0.02); i >= 0 {
		t.Fatalf("field A reconstruction out of bound at %d", i)
	}
}
