// Package lorenzo implements the dual-quantization Lorenzo predictor used
// by the cuSZ-L baseline (Tian et al., PACT'20) and, as its prequantization
// stage, by the FZ-GPU baseline.
//
// Dual quantization first rounds every value to an integer lattice
// qv = round(v / 2ε), then takes the exact integer first-order Lorenzo
// difference of the lattice. Because the difference is computed on already
// quantized integers there is no feedback loop: compression is one parallel
// pass and decompression is a 3-D inclusive prefix sum (one scan per
// dimension), exactly the structure the GPU kernels exploit.
//
// The compression kernel histograms the quantization codes in the same
// sweep that produces them (Result.Freq), so the downstream Huffman encoder
// never re-scans the symbol stream. The *Ctx entry points draw all working
// buffers — and the kernel closures themselves — from a reusable arena.Ctx,
// so steady-state compress/decompress performs near-zero heap allocations.
//
// The hot passes run as batched row kernels: the quantization sweep walks
// whole grid rows with pinned neighbor-row views and an 8-wide unrolled
// prediction body (missing boundary rows substitute a shared zero row, so
// one kernel covers interior and halo alike), and the prefix-sum scans add
// and convert rows through 8-wide unrolled vector helpers. Every batched
// pass keeps its scalar reference implementation, selected by the
// package-level Batched toggle; the two are bit-identical by construction
// (integer lattice arithmetic plus unchanged float op order) and the
// property tests assert it.
package lorenzo

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/arena"
	"repro/internal/gpusim"
	"repro/internal/quant"
)

// Radius is the symmetric code radius; deltas within it map to codes
// 1..2*Radius, code 0 escapes to the side channel.
const Radius = 512

// Alphabet is the Huffman alphabet size for Lorenzo codes.
const Alphabet = 2*Radius + 2

// latticeCap bounds |qv| so that integer arithmetic cannot overflow during
// the prefix-sum reconstruction; values needing a larger lattice coordinate
// are preserved via the value-outlier list.
const latticeCap = int64(1) << 50

// chunkShift is the log2 of the compression kernel's chunk size.
const chunkShift = 16

// lanes is the unroll width of the batched kernels. Kernel chunk boundaries
// are lane-aligned (gpusim.LaunchBatched), so only global tails run scalar.
const lanes = 8

// Batched selects the wide row kernels (the default). The scalar reference
// implementations stay selectable so the equivalence property tests can
// assert byte-identical codes, escapes, outliers and reconstructions
// between the two paths. Toggle only from tests, before any launch.
var Batched = true

// auxKey is this package's scratch slot in an arena.Ctx; chunksKey holds
// the per-chunk escape collectors (arena batch slots, persistent across
// Reset so steady-state appends never grow).
var (
	auxKey    = arena.NewAuxKey()
	chunksKey = arena.NewAuxKey()
)

// escChunk collects one chunk's escapes and value outliers; the backing
// arrays persist in the batch slot so steady-state appends never grow.
type escChunk struct {
	deltas  []int64
	valPos  []int
	valVals []float32
}

// kern is the kernel parameter block: launches read their inputs from one
// shared struct so the cached closures never capture per-call state.
type kern struct {
	data   []float32
	qv     []int64
	codes  []uint16
	out    []float32
	g      Grid
	eb     float64
	twoEB  float64
	freq   []int64
	nData  int
	zrow   []int64 // all-zero row of length g.Nx (halo substitute)
	chunks []escChunk
	mu     sync.Mutex
}

// lscratch holds cross-op scratch: the fused histogram, the zero halo row,
// and the kernel closures with their parameter block. Kernels read their
// inputs from k, so one closure allocation (per context lifetime) serves
// every subsequent launch.
type lscratch struct {
	freq []int64
	zero []int64

	k           kern
	prequantJob func(lo, hi int)
	deltaJob    func(lo, hi int)
	xScanJob    func(int)
	yScanJob    func(int)
	zScanJob    func(lo, hi int)
}

func scratchFor(ctx *arena.Ctx) *lscratch {
	if s, ok := ctx.Aux(auxKey).(*lscratch); ok {
		return s
	}
	s := &lscratch{}
	ctx.SetAux(auxKey, s)
	return s
}

// Grid mirrors interp.Grid for package independence.
type Grid struct {
	Nz, Ny, Nx int
}

// NewGrid normalizes dims (slowest first) to three dimensions.
func NewGrid(dims []int) Grid {
	switch len(dims) {
	case 0:
		return Grid{1, 1, 0}
	case 1:
		return Grid{1, 1, dims[0]}
	case 2:
		return Grid{1, dims[0], dims[1]}
	case 3:
		return Grid{dims[0], dims[1], dims[2]}
	default:
		nz := 1
		for _, d := range dims[:len(dims)-2] {
			nz *= d
		}
		return Grid{nz, dims[len(dims)-2], dims[len(dims)-1]}
	}
}

// Len returns the number of points.
func (g Grid) Len() int { return g.Nz * g.Ny * g.Nx }

// Result is the Lorenzo decomposition output.
type Result struct {
	// Codes holds delta+Radius+1 for in-range deltas, 0 for escapes.
	Codes []uint16
	// Escapes holds the exact deltas of code-0 points, in flat order.
	Escapes []int64
	// ValOutliers holds points whose lattice reconstruction cannot meet the
	// bound (extreme magnitudes); their original values win at decompression.
	ValOutliers quant.Outliers
	// Freq is the histogram of Codes over [0, Alphabet), accumulated during
	// the quantization sweep (context scratch when a Ctx was supplied).
	Freq []int64
}

// Prequantize converts data to its integer lattice (round(v/2ε), clamped).
func Prequantize(dev *gpusim.Device, data []float32, twoEB float64) []int64 {
	return PrequantizeCtx(nil, dev, data, twoEB)
}

// prequantRange is the lattice-rounding kernel body over [lo, hi): 8-wide
// groups over pinned views, scalar tail. The division by 2ε is kept (not
// strength-reduced to a multiply) so results stay bit-identical to the
// scalar reference.
//
//cuszhi:hotpath
func (k *kern) prequantRange(lo, hi int) {
	data := k.data[lo:hi:hi]
	qv := k.qv[lo:hi:hi]
	twoEB := k.twoEB
	n := hi - lo
	i := 0
	for ; i+lanes <= n; i += lanes {
		d := data[i : i+lanes : i+lanes]
		q := qv[i : i+lanes : i+lanes]
		for l := 0; l < lanes; l++ {
			r := math.Round(float64(d[l]) / twoEB)
			switch {
			case r > float64(latticeCap):
				q[l] = latticeCap
			case r < -float64(latticeCap):
				q[l] = -latticeCap
			default:
				q[l] = int64(r)
			}
		}
	}
	for ; i < n; i++ {
		r := math.Round(float64(data[i]) / twoEB)
		switch {
		case r > float64(latticeCap):
			qv[i] = latticeCap
		case r < -float64(latticeCap):
			qv[i] = -latticeCap
		default:
			qv[i] = int64(r)
		}
	}
}

// prequantRangeScalar is the per-point reference for prequantRange.
func (k *kern) prequantRangeScalar(lo, hi int) {
	for i := lo; i < hi; i++ {
		q := math.Round(float64(k.data[i]) / k.twoEB)
		switch {
		case q > float64(latticeCap):
			k.qv[i] = latticeCap
		case q < -float64(latticeCap):
			k.qv[i] = -latticeCap
		default:
			k.qv[i] = int64(q)
		}
	}
}

// PrequantizeCtx is Prequantize drawing the lattice buffer from ctx (the
// result is context scratch when ctx is non-nil).
func PrequantizeCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, twoEB float64) []int64 {
	s := scratchFor(ctx)
	qv := ctx.I64(len(data))
	s.k.data, s.k.qv, s.k.twoEB, s.k.nData = data, qv, twoEB, len(data)
	if s.prequantJob == nil {
		k := &s.k
		s.prequantJob = func(lo, hi int) {
			if Batched {
				k.prequantRange(lo, hi)
			} else {
				k.prequantRangeScalar(lo, hi)
			}
		}
	}
	dev.LaunchBatched(len(data), 1<<chunkShift, lanes, s.prequantJob)
	s.k.data = nil // drop the caller's field so a pooled ctx never pins it
	return qv
}

// Compress runs the dual-quant Lorenzo decomposition. eb is the absolute
// error bound.
func Compress(dev *gpusim.Device, data []float32, g Grid, eb float64) (*Result, error) {
	return CompressCtx(nil, dev, data, g, eb)
}

// deltaRangeScalar is the per-point reference implementation of the
// quantization sweep over the flat range [lo, hi): closure-free in name
// only — it recomputes coordinates and probes every neighbor through the
// boundary-checked at() accessor, exactly the shape the batched row kernel
// replaces.
func (k *kern) deltaRangeScalar(lo, hi int, ec *escChunk, hist *[Alphabet]uint32) {
	g := k.g
	qv := k.qv
	nyx := g.Ny * g.Nx
	for i := lo; i < hi; i++ {
		x := i % g.Nx
		y := (i / g.Nx) % g.Ny
		z := i / nyx
		at := func(dz, dy, dx int) int64 {
			if z-dz < 0 || y-dy < 0 || x-dx < 0 {
				return 0
			}
			return qv[i-dz*nyx-dy*g.Nx-dx]
		}
		pred := at(0, 0, 1) + at(0, 1, 0) + at(1, 0, 0) -
			at(0, 1, 1) - at(1, 0, 1) - at(1, 1, 0) + at(1, 1, 1)
		delta := qv[i] - pred
		if delta >= -Radius && delta < Radius {
			code := uint16(delta+Radius) + 1
			k.codes[i] = code
			hist[code]++
		} else {
			k.codes[i] = 0
			hist[0]++
			ec.deltas = append(ec.deltas, delta)
		}
		recon := float32(float64(qv[i]) * k.twoEB)
		if math.Abs(float64(k.data[i])-float64(recon)) > k.eb {
			ec.valPos = append(ec.valPos, i)
			ec.valVals = append(ec.valVals, k.data[i])
		}
	}
}

// deltaRange is the batched quantization sweep over the flat range
// [lo, hi): it walks whole grid rows and hands each row segment to the
// wide row kernel. Row segments are visited in ascending flat order, so
// the per-chunk escape and outlier lists stay in flat order — the
// serialization invariant the container format depends on.
func (k *kern) deltaRange(lo, hi int, ec *escChunk, hist *[Alphabet]uint32) {
	g := k.g
	nyx := g.Ny * g.Nx
	for i := lo; i < hi; {
		x := i % g.Nx
		rowEnd := i - x + g.Nx
		if rowEnd > hi {
			rowEnd = hi
		}
		z := i / nyx
		y := (i / g.Nx) % g.Ny
		k.deltaRowWide(z, y, x, rowEnd-(i-x), ec, hist)
		i = rowEnd
	}
}

// deltaRowWide runs the Lorenzo predict/quantize body over columns
// [x0, x1) of row (z, y): 8-wide groups of predictions from pinned
// neighbor-row views, then per-lane quantize/escape/outlier handling, with
// a scalar tail. Missing neighbor rows (boundary halos) substitute the
// shared all-zero row, so one kernel covers the whole grid; only the x == 0
// column needs its own (scalar) case.
func (k *kern) deltaRowWide(z, y, x0, x1 int, ec *escChunk, hist *[Alphabet]uint32) {
	g := k.g
	nyx := g.Ny * g.Nx
	base := z*nyx + y*g.Nx
	qv := k.qv
	cur := qv[base : base+g.Nx : base+g.Nx]
	rowY, rowZ, rowZY := k.zrow, k.zrow, k.zrow
	if y > 0 {
		rowY = qv[base-g.Nx : base : base]
	}
	if z > 0 {
		rowZ = qv[base-nyx : base-nyx+g.Nx : base-nyx+g.Nx]
		if y > 0 {
			rowZY = qv[base-nyx-g.Nx : base-nyx : base-nyx]
		}
	}
	data := k.data
	codes := k.codes
	x := x0
	if x == 0 {
		// First column: every x-1 neighbor is outside the grid.
		k.emit(0, base, cur[0], rowY[0]+rowZ[0]-rowZY[0], data, codes, ec, hist)
		x = 1
	}
	for ; x+lanes <= x1; x += lanes {
		c8 := cur[x : x+lanes : x+lanes]
		cm := cur[x-1 : x-1+lanes : x-1+lanes]
		ry := rowY[x : x+lanes : x+lanes]
		rym := rowY[x-1 : x-1+lanes : x-1+lanes]
		rz := rowZ[x : x+lanes : x+lanes]
		rzm := rowZ[x-1 : x-1+lanes : x-1+lanes]
		rzy := rowZY[x : x+lanes : x+lanes]
		rzym := rowZY[x-1 : x-1+lanes : x-1+lanes]
		var pred [lanes]int64
		for l := range pred {
			pred[l] = cm[l] + ry[l] + rz[l] - rym[l] - rzm[l] - rzy[l] + rzym[l]
		}
		d8 := data[base+x : base+x+lanes : base+x+lanes]
		k8 := codes[base+x : base+x+lanes : base+x+lanes]
		for l := 0; l < lanes; l++ {
			q := c8[l]
			delta := q - pred[l]
			if delta >= -Radius && delta < Radius {
				code := uint16(delta+Radius) + 1
				k8[l] = code
				hist[code]++
			} else {
				k8[l] = 0
				hist[0]++
				ec.deltas = append(ec.deltas, delta)
			}
			recon := float32(float64(q) * k.twoEB)
			if math.Abs(float64(d8[l])-float64(recon)) > k.eb {
				ec.valPos = append(ec.valPos, base+x+l)
				ec.valVals = append(ec.valVals, d8[l])
			}
		}
	}
	for ; x < x1; x++ {
		pred := cur[x-1] + rowY[x] + rowZ[x] - rowY[x-1] - rowZ[x-1] - rowZY[x] + rowZY[x-1]
		k.emit(x, base, cur[x], pred, data, codes, ec, hist)
	}
}

// emit quantizes one point: code or escape, histogram, and the
// reconstruction-bound outlier check. Shared by the halo column and the
// row tails of the wide kernel.
func (k *kern) emit(x, base int, q, pred int64, data []float32, codes []uint16, ec *escChunk, hist *[Alphabet]uint32) {
	i := base + x
	delta := q - pred
	if delta >= -Radius && delta < Radius {
		code := uint16(delta+Radius) + 1
		codes[i] = code
		hist[code]++
	} else {
		codes[i] = 0
		hist[0]++
		ec.deltas = append(ec.deltas, delta)
	}
	recon := float32(float64(q) * k.twoEB)
	if math.Abs(float64(data[i])-float64(recon)) > k.eb {
		ec.valPos = append(ec.valPos, i)
		ec.valVals = append(ec.valVals, data[i])
	}
}

// CompressCtx is Compress with a reusable context: the code, lattice and
// side-channel buffers (and Result.Freq) are context scratch, valid until
// ctx.Reset.
func CompressCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, g Grid, eb float64) (*Result, error) {
	if g.Len() != len(data) {
		return nil, fmt.Errorf("lorenzo: grid %dx%dx%d does not match %d values", g.Nz, g.Ny, g.Nx, len(data))
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	qv := PrequantizeCtx(ctx, dev, data, twoEB)
	s := scratchFor(ctx)
	if cap(s.freq) < Alphabet {
		s.freq = make([]int64, Alphabet)
	}
	freq := s.freq[:Alphabet]
	clear(freq)
	if cap(s.zero) < g.Nx {
		s.zero = make([]int64, g.Nx)
	}
	res := &Result{
		Codes: ctx.U16(len(data)),
		Freq:  freq,
	}
	// Pass 1 (parallel): per-row Lorenzo deltas fused with the code
	// histogram; escapes and value outliers collect per chunk into
	// persistent batch slots, in flat order.
	nChunks := (len(data) + (1 << chunkShift) - 1) >> chunkShift
	chunks := arena.Slots[escChunk](ctx, chunksKey, nChunks)
	for i := range chunks {
		chunks[i].deltas = chunks[i].deltas[:0]
		chunks[i].valPos = chunks[i].valPos[:0]
		chunks[i].valVals = chunks[i].valVals[:0]
	}
	s.k.data, s.k.qv, s.k.codes, s.k.g = data, qv, res.Codes, g
	s.k.eb, s.k.twoEB, s.k.freq, s.k.nData = eb, twoEB, freq, len(data)
	s.k.zrow, s.k.chunks = s.zero[:g.Nx:g.Nx], chunks
	if s.deltaJob == nil {
		k := &s.k
		s.deltaJob = func(lo, hi int) {
			ec := &k.chunks[lo>>chunkShift]
			var hist [Alphabet]uint32
			if Batched {
				k.deltaRange(lo, hi, ec, &hist)
			} else {
				k.deltaRangeScalar(lo, hi, ec, &hist)
			}
			k.mu.Lock()
			for sym, n := range hist {
				if n != 0 {
					k.freq[sym] += int64(n)
				}
			}
			k.mu.Unlock()
		}
	}
	dev.LaunchBatched(len(data), 1<<chunkShift, lanes, s.deltaJob)
	nEsc, nOut := 0, 0
	for i := range chunks {
		nEsc += len(chunks[i].deltas)
		nOut += len(chunks[i].valPos)
	}
	res.Escapes = ctx.I64(nEsc)[:0]
	res.ValOutliers.Pos = ctx.Ints(nOut)[:0]
	res.ValOutliers.Val = ctx.F32(nOut)[:0]
	for i := range chunks {
		ec := &chunks[i]
		res.Escapes = append(res.Escapes, ec.deltas...)
		res.ValOutliers.Pos = append(res.ValOutliers.Pos, ec.valPos...)
		res.ValOutliers.Val = append(res.ValOutliers.Val, ec.valVals...)
	}
	s.k.data = nil // drop the caller's field so a pooled ctx never pins it
	return res, nil
}

// Decompress reconstructs the field.
func Decompress(dev *gpusim.Device, res *Result, g Grid, eb float64) ([]float32, error) {
	return DecompressCtx(nil, dev, res, g, eb)
}

// rebuildDeltas turns codes back into deltas in qv, consuming the escape
// list in flat order. The batched path resolves 8 codes per step through a
// branchless validity test: for valid codes c ∈ [1, Alphabet) the values
// c-1 stay below Alphabet-1, while c == 0 wraps to 0xFFFF — so one OR over
// the group detects escapes and corrupt codes together, and clean groups
// (the overwhelming majority) decode without per-lane branching.
func rebuildDeltas(qv []int64, codes []uint16, escapes []int64) (int, error) {
	n := len(codes)
	qv = qv[:n:n]
	codes = codes[:n:n]
	esc := 0
	i := 0
	if Batched {
		for ; i+lanes <= n; i += lanes {
			c := codes[i : i+lanes : i+lanes]
			bad := (c[0] - 1) | (c[1] - 1) | (c[2] - 1) | (c[3] - 1) |
				(c[4] - 1) | (c[5] - 1) | (c[6] - 1) | (c[7] - 1)
			if bad < Alphabet-1 {
				q := qv[i : i+lanes : i+lanes]
				for l := 0; l < lanes; l++ {
					q[l] = int64(c[l]) - 1 - Radius
				}
				continue
			}
			for l := 0; l < lanes; l++ {
				cl := c[l]
				if cl == 0 {
					if esc >= len(escapes) {
						return 0, fmt.Errorf("lorenzo: escape list exhausted at %d", i+l)
					}
					qv[i+l] = escapes[esc]
					esc++
					continue
				}
				if int(cl) >= Alphabet {
					return 0, fmt.Errorf("lorenzo: code %d out of range", cl)
				}
				qv[i+l] = int64(cl) - 1 - Radius
			}
		}
	}
	for ; i < n; i++ {
		c := codes[i]
		if c == 0 {
			if esc >= len(escapes) {
				return 0, fmt.Errorf("lorenzo: escape list exhausted at %d", i)
			}
			qv[i] = escapes[esc]
			esc++
			continue
		}
		if int(c) >= Alphabet {
			return 0, fmt.Errorf("lorenzo: code %d out of range", c)
		}
		qv[i] = int64(c) - 1 - Radius
	}
	return esc, nil
}

// addVec adds src into dst element-wise, 8-wide unrolled over pinned
// equal-length views — the inner body of the y and z prefix-sum scans.
//
//cuszhi:hotpath
func addVec(dst, src []int64) {
	n := len(dst)
	src = src[:n:n]
	i := 0
	for ; i+lanes <= n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		s := src[i : i+lanes : i+lanes]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// scaleVec converts lattice coordinates back to values, 8-wide unrolled.
//
//cuszhi:hotpath
func scaleVec(dst []float32, src []int64, twoEB float64) {
	n := len(dst)
	src = src[:n:n]
	i := 0
	for ; i+lanes <= n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		s := src[i : i+lanes : i+lanes]
		for l := 0; l < lanes; l++ {
			d[l] = float32(float64(s[l]) * twoEB)
		}
	}
	for ; i < n; i++ {
		dst[i] = float32(float64(src[i]) * twoEB)
	}
}

// DecompressCtx is Decompress with a reusable context. With a non-nil ctx
// the returned field is context scratch, valid until the next ctx.Reset.
func DecompressCtx(ctx *arena.Ctx, dev *gpusim.Device, res *Result, g Grid, eb float64) ([]float32, error) {
	if len(res.Codes) != g.Len() {
		return nil, fmt.Errorf("lorenzo: %d codes for grid of %d points", len(res.Codes), g.Len())
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	n := g.Len()
	s := scratchFor(ctx)
	qv := ctx.I64(n)
	// Rebuild deltas (sequential escape consumption, parallel the rest).
	esc, err := rebuildDeltas(qv, res.Codes, res.Escapes)
	if err != nil {
		return nil, err
	}
	if esc != len(res.Escapes) {
		return nil, fmt.Errorf("lorenzo: %d unused escapes", len(res.Escapes)-esc)
	}
	// 3-D inclusive prefix sum: x-scan, y-scan, then a z-scan fused with
	// the lattice-to-value conversion (a column chunk that finished its
	// last plane holds final lattice values, so one kernel does both).
	out := ctx.F32(n)
	s.k.qv, s.k.out, s.k.g, s.k.twoEB = qv, out, g, twoEB
	if s.xScanJob == nil {
		k := &s.k
		s.xScanJob = func(r int) {
			row := k.qv[r*k.g.Nx : (r+1)*k.g.Nx]
			var acc int64
			for x := range row {
				acc += row[x]
				row[x] = acc
			}
		}
		s.yScanJob = func(z int) {
			qv := k.qv
			g := k.g
			base := z * g.Ny * g.Nx
			for y := 1; y < g.Ny; y++ {
				row := base + y*g.Nx
				prev := row - g.Nx
				if Batched {
					addVec(qv[row:row+g.Nx], qv[prev:prev+g.Nx])
					continue
				}
				for x := 0; x < g.Nx; x++ {
					qv[row+x] += qv[prev+x]
				}
			}
		}
		s.zScanJob = func(lo, hi int) {
			qv := k.qv
			g := k.g
			nyx := g.Ny * g.Nx
			if Batched {
				for z := 1; z < g.Nz; z++ {
					base := z * nyx
					addVec(qv[base+lo:base+hi], qv[base-nyx+lo:base-nyx+hi])
				}
				for z := 0; z < g.Nz; z++ {
					base := z * nyx
					scaleVec(k.out[base+lo:base+hi], qv[base+lo:base+hi], k.twoEB)
				}
				return
			}
			for z := 1; z < g.Nz; z++ {
				base := z * nyx
				prev := base - nyx
				for i := lo; i < hi; i++ {
					qv[base+i] += qv[prev+i]
				}
			}
			for z := 0; z < g.Nz; z++ {
				base := z * nyx
				for i := lo; i < hi; i++ {
					k.out[base+i] = float32(float64(qv[base+i]) * k.twoEB)
				}
			}
		}
	}
	nyx := g.Ny * g.Nx
	dev.Launch(g.Nz*g.Ny, s.xScanJob)
	dev.Launch(g.Nz, s.yScanJob)
	dev.LaunchBatched(nyx, 1<<14, lanes, s.zScanJob)
	for k, p := range res.ValOutliers.Pos {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("lorenzo: outlier position %d out of range", p)
		}
		out[p] = res.ValOutliers.Val[k]
	}
	return out, nil
}
