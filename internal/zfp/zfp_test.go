package zfp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func smoothField(nz, ny, nx int) []float32 {
	out := make([]float32, nz*ny*nx)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				out[i] = float32(math.Sin(float64(x)*0.12)*math.Cos(float64(y)*0.09) +
					0.5*math.Sin(float64(z)*0.07))
				i++
			}
		}
	}
	return out
}

func TestRoundTripSize(t *testing.T) {
	dims := []int{32, 32, 32}
	data := smoothField(32, 32, 32)
	for _, rate := range []int{4, 8, 16} {
		blob, err := Compress(dev, data, dims, rate)
		if err != nil {
			t.Fatal(err)
		}
		// Fixed rate: payload must be exactly rate*len/8 bytes (+header).
		want := rate * len(data) / 8
		if len(blob) < want || len(blob) > want+32 {
			t.Fatalf("rate %d: size %d, want ~%d", rate, len(blob), want)
		}
		recon, gotDims, err := Decompress(dev, blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotDims) != 3 || gotDims[0] != 32 {
			t.Fatalf("dims = %v", gotDims)
		}
		if len(recon) != len(data) {
			t.Fatalf("len %d", len(recon))
		}
	}
}

func TestQualityImprovesWithRate(t *testing.T) {
	dims := []int{32, 32, 32}
	data := smoothField(32, 32, 32)
	var prev float64 = -1
	for _, rate := range []int{2, 4, 8, 16} {
		blob, err := Compress(dev, data, dims, rate)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := Decompress(dev, blob)
		if err != nil {
			t.Fatal(err)
		}
		d := metrics.Compare(data, recon)
		if d.PSNR <= prev {
			t.Fatalf("PSNR not increasing: rate %d gives %.1f after %.1f", rate, d.PSNR, prev)
		}
		prev = d.PSNR
	}
	if prev < 60 {
		t.Fatalf("rate-16 PSNR = %.1f dB, want > 60 on smooth data", prev)
	}
}

func TestHighRateNearLossless(t *testing.T) {
	dims := []int{16, 16, 16}
	data := smoothField(16, 16, 16)
	blob, err := Compress(dev, data, dims, 28)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	d := metrics.Compare(data, recon)
	if d.MaxErr > 1e-4 {
		t.Fatalf("rate-28 max err = %v", d.MaxErr)
	}
}

func TestRoundTrip2D1D(t *testing.T) {
	data2 := smoothField(1, 40, 52)
	blob, err := Compress(dev, data2, []int{40, 52}, 8)
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := Decompress(dev, blob)
	if err != nil || len(dims) != 2 {
		t.Fatalf("%v dims=%v", err, dims)
	}
	if metrics.Compare(data2, recon).PSNR < 30 {
		t.Fatal("2D PSNR too low")
	}
	data1 := smoothField(1, 1, 1000)
	blob, err = Compress(dev, data1, []int{1000}, 12)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err = Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Compare(data1, recon).PSNR < 30 {
		t.Fatal("1D PSNR too low")
	}
}

func TestPartialBlocks(t *testing.T) {
	for _, dims := range [][]int{{5, 6, 7}, {1, 1, 3}, {9, 2, 13}} {
		n := dims[0] * dims[1] * dims[2]
		data := smoothField(dims[0], dims[1], dims[2])
		blob, err := Compress(dev, data, dims, 16)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := Decompress(dev, blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(recon) != n {
			t.Fatalf("dims %v: len %d != %d", dims, len(recon), n)
		}
		if metrics.Compare(data, recon).PSNR < 40 {
			t.Fatalf("dims %v: PSNR too low", dims)
		}
	}
}

func TestZeroField(t *testing.T) {
	data := make([]float32, 64)
	blob, err := Compress(dev, data, []int{4, 4, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range recon {
		if v != 0 {
			t.Fatalf("recon[%d] = %v", i, v)
		}
	}
}

func TestNonFiniteBlocksBecomeZero(t *testing.T) {
	data := make([]float32, 64)
	data[0] = float32(math.NaN())
	data[5] = float32(math.Inf(1))
	blob, err := Compress(dev, data, []int{4, 4, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range recon {
		if v != 0 {
			t.Fatalf("recon[%d] = %v", i, v)
		}
	}
}

func TestTransformInverts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var c, orig [64]int32
		for i := range c {
			c[i] = int32(rng.Intn(1<<28) - 1<<27)
			orig[i] = c[i]
		}
		transform(c[:], 3, false)
		transform(c[:], 3, true)
		for i := range c {
			// ZFP's lifting drops low-order bits; across three dimensions
			// the drift compounds but stays tiny relative to the 2^27
			// coefficient magnitudes.
			diff := int64(c[i]) - int64(orig[i])
			if diff < -64 || diff > 64 {
				t.Fatalf("trial %d: coeff %d drifted by %d", trial, i, diff)
			}
		}
	}
}

func TestNegabinary(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 100, -100, math.MaxInt32 / 2, math.MinInt32 / 2} {
		if got := fromNegabinary(toNegabinary(v)); got != v {
			t.Fatalf("negabinary(%d) -> %d", v, got)
		}
	}
	// Negabinary of small values has few set bits in the high planes.
	if toNegabinary(0) != 0 {
		t.Fatal("negabinary(0) != 0")
	}
}

func TestPermsValid(t *testing.T) {
	for d := 1; d <= 3; d++ {
		n := 1 << (2 * d)
		seen := make([]bool, n)
		for _, p := range perms[d] {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("d=%d: bad perm", d)
			}
			seen[p] = true
		}
		// First entry must be the DC coefficient (0,0,0).
		if perms[d][0] != 0 {
			t.Fatalf("d=%d: perm[0] = %d", d, perms[d][0])
		}
	}
}

func TestCompressErrors(t *testing.T) {
	data := make([]float32, 64)
	if _, err := Compress(dev, data, []int{4, 4}, 8); err == nil {
		t.Fatal("want dims mismatch error")
	}
	if _, err := Compress(dev, data, []int{4, 4, 4}, 0); err == nil {
		t.Fatal("want rate error")
	}
	if _, err := Compress(dev, data, []int{4, 4, 4}, 31); err == nil {
		t.Fatal("want rate error")
	}
	if _, err := Compress(dev, data, []int{2, 2, 2, 8}, 8); err == nil {
		t.Fatal("want ndims error")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := smoothField(8, 8, 8)
	blob, err := Compress(dev, data, []int{8, 8, 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 3, len(blob) / 2} {
		if _, _, err := Decompress(dev, blob[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		bad := append([]byte(nil), blob...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		Decompress(dev, bad) // must not panic
	}
}

func TestFractionalRates(t *testing.T) {
	dims := []int{32, 32, 32}
	data := smoothField(32, 32, 32)
	for _, rate := range []float64{0.25, 0.5, 1.5} {
		blob, err := CompressRate(dev, data, dims, rate)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := Decompress(dev, blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(recon) != len(data) {
			t.Fatalf("rate %g: len %d", rate, len(recon))
		}
		wantBytes := int(rate*float64(len(data))/8) + 64
		if rate >= 0.25 && len(blob) > wantBytes {
			t.Fatalf("rate %g: %d bytes, want <= ~%d", rate, len(blob), wantBytes)
		}
	}
	// Sub-1-bit rates unlock CR > 32 (the paper's Fig. 9 cuZFP points).
	blob, err := CompressRate(dev, data, dims, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if cr := float64(4*len(data)) / float64(len(blob)); cr < 100 {
		t.Fatalf("rate 0.25 CR = %.1f, want > 100", cr)
	}
	if _, err := CompressRate(dev, data, dims, 0); err == nil {
		t.Fatal("want error for rate 0")
	}
	if _, err := CompressRate(dev, data, dims, 31); err == nil {
		t.Fatal("want error for rate 31")
	}
}
