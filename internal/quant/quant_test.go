package quant

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

func TestQuantizeWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eb := 1e-3
	twoEB := 2 * eb
	for i := 0; i < 100_000; i++ {
		pred := float32(rng.NormFloat64() * 10)
		val := pred + float32(rng.NormFloat64()*0.01)
		code, recon, outlier := Quantize(val, pred, twoEB)
		if outlier {
			if recon != val {
				t.Fatal("outlier recon must be the original value")
			}
			continue
		}
		if code == OutlierCode {
			t.Fatal("non-outlier with outlier code")
		}
		if math.Abs(float64(val)-float64(recon)) > eb*(1+1e-9) {
			t.Fatalf("bound violated: val=%v recon=%v eb=%v", val, recon, eb)
		}
		// Dequantize must reproduce the same reconstruction.
		if Dequantize(code, pred, twoEB) != recon {
			t.Fatal("Dequantize != encoder recon")
		}
	}
}

func TestQuantizeExactPrediction(t *testing.T) {
	code, recon, outlier := Quantize(5.0, 5.0, 2e-3)
	if outlier || code != ZeroCode || recon != 5.0 {
		t.Fatalf("exact pred: code=%d recon=%v outlier=%v", code, recon, outlier)
	}
}

func TestQuantizeLargeErrorIsOutlier(t *testing.T) {
	_, recon, outlier := Quantize(100, 0, 2e-3)
	if !outlier || recon != 100 {
		t.Fatal("large error must be an outlier")
	}
}

func TestQuantizeHugeMagnitudeRounding(t *testing.T) {
	// At values where float32 spacing exceeds eb the recon check must kick
	// in and fall back to outlier rather than violate the bound.
	val := float32(1e30)
	pred := float32(1.0000001e30)
	code, recon, outlier := Quantize(val, pred, 2e-3)
	if !outlier {
		diff := math.Abs(float64(val) - float64(recon))
		if diff > 1e-3 {
			t.Fatalf("non-outlier code %d violates bound by %v", code, diff)
		}
	}
}

func TestOutliersRoundTrip(t *testing.T) {
	o := &Outliers{}
	rng := rand.New(rand.NewSource(2))
	pos := 0
	for i := 0; i < 1000; i++ {
		pos += 1 + rng.Intn(5000)
		o.Append(pos, float32(rng.NormFloat64()))
	}
	blob := o.Serialize(nil)
	got, used, err := ParseOutliers(blob)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(blob) {
		t.Fatalf("consumed %d of %d bytes", used, len(blob))
	}
	if got.Len() != o.Len() {
		t.Fatalf("count %d != %d", got.Len(), o.Len())
	}
	for i := range o.Pos {
		if got.Pos[i] != o.Pos[i] || got.Val[i] != o.Val[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if v, ok := got.SortedGet(o.Pos[17]); !ok || v != o.Val[17] {
		t.Fatal("SortedGet mismatch")
	}
	if _, ok := got.SortedGet(o.Pos[17] + 1); ok {
		t.Fatal("SortedGet hit on absent position")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := got.SortedGet(o.Pos[17]); !ok {
			t.Error("SortedGet miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("SortedGet allocates %.1f/op, want 0", allocs)
	}
}

func TestOutliersEmpty(t *testing.T) {
	o := &Outliers{}
	blob := o.Serialize(nil)
	got, _, err := ParseOutliers(blob)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty round trip: %v, len %d", err, got.Len())
	}
}

func TestParseOutliersCorrupt(t *testing.T) {
	o := &Outliers{}
	o.Append(5, 1.5)
	o.Append(10, 2.5)
	blob := o.Serialize(nil)
	for cut := 0; cut < len(blob); cut++ {
		if _, _, err := ParseOutliers(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
}

func TestLevelOrderPermIsPermutation(t *testing.T) {
	for _, tc := range []struct {
		dims   []int
		stride int
	}{
		{[]int{16, 16, 16}, 16},
		{[]int{17, 17, 17}, 16},
		{[]int{33, 9, 9}, 8},
		{[]int{20, 31}, 16},
		{[]int{100}, 8},
		{[]int{1, 1, 1}, 16},
		{[]int{5, 3, 2}, 16},
	} {
		perm := LevelOrderPerm(tc.dims, tc.stride)
		n := 1
		for _, d := range tc.dims {
			n *= d
		}
		if len(perm) != n {
			t.Fatalf("dims %v: perm len %d != %d", tc.dims, len(perm), n)
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || int(p) >= n || seen[p] {
				t.Fatalf("dims %v: invalid or duplicate index %d", tc.dims, p)
			}
			seen[p] = true
		}
	}
}

func TestLevelOrderCoarseFirst(t *testing.T) {
	// Anchors (all coords ≡ 0 mod A) must occupy the head of the sequence.
	dims := []int{32, 32, 32}
	A := 16
	perm := LevelOrderPerm(dims, A)
	nAnchors := 2 * 2 * 2
	for k := 0; k < nAnchors; k++ {
		idx := int(perm[k])
		x := idx % 32
		y := (idx / 32) % 32
		z := idx / (32 * 32)
		if x%A != 0 || y%A != 0 || z%A != 0 {
			t.Fatalf("position %d is not an anchor: (%d,%d,%d)", k, z, y, x)
		}
	}
	// Directly after must come the stride-8 level (some coord ≡ 8 mod 16).
	idx := int(perm[nAnchors])
	x := idx % 32
	y := (idx / 32) % 32
	z := idx / (32 * 32)
	if x%8 != 0 || y%8 != 0 || z%8 != 0 {
		t.Fatalf("first post-anchor point (%d,%d,%d) not on stride-8 lattice", z, y, x)
	}
}

func TestApplyInvertRoundTrip(t *testing.T) {
	dims := []int{24, 19, 31}
	perm := LevelOrderPerm(dims, 16)
	n := len(perm)
	src := make([]uint8, n)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = uint8(rng.Intn(256))
	}
	reord := make([]uint8, n)
	back := make([]uint8, n)
	Apply(dev, perm, src, reord)
	Invert(dev, perm, reord, back)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestReorderGroupsLevels(t *testing.T) {
	// Paint each point with its interpolation level; after reordering, the
	// sequence must be non-increasing (coarse levels first).
	dims := []int{33, 33, 33}
	A := 16
	nz, ny, nx := dims[0], dims[1], dims[2]
	src := make([]uint8, nz*ny*nx)
	level := func(v int) int {
		l := 0
		for v%2 == 0 && l < 4 {
			v /= 2
			l++
		}
		return l
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				l := level(x)
				if ly := level(y); ly < l {
					l = ly
				}
				if lz := level(z); lz < l {
					l = lz
				}
				src[(z*ny+y)*nx+x] = uint8(l)
			}
		}
	}
	perm := LevelOrderPerm(dims, A)
	dst := make([]uint8, len(src))
	Apply(dev, perm, src, dst)
	if !sort.SliceIsSorted(dst, func(i, j int) bool { return dst[i] > dst[j] }) {
		t.Fatal("reordered sequence is not grouped coarse-to-fine")
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := func(valSeed, predSeed int16) bool {
		val := float32(valSeed) / 100
		pred := float32(predSeed) / 100
		twoEB := 0.02
		code, recon, outlier := Quantize(val, pred, twoEB)
		if outlier {
			return recon == val
		}
		return Dequantize(code, pred, twoEB) == recon &&
			math.Abs(float64(val)-float64(recon)) <= twoEB/2*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
