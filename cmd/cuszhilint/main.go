// Command cuszhilint runs the repository's codec-invariant analyzers
// (internal/lint) over the given package patterns and exits non-zero on
// findings. It is stdlib-only and needs no build cache or type checker:
//
//	go run ./cmd/cuszhilint ./...
//	go run ./cmd/cuszhilint -check wirelen,corrupterr ./internal/...
//
// A finding is suppressed by a `//lint:ignore <check> <reason>` comment on
// its line or the line above; stale directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("check", "", "comma-separated analyzer subset (default: all)")
	tests := flag.Bool("tests", false, "also lint _test.go files")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "cuszhilint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuszhilint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuszhilint:", err)
		os.Exit(2)
	}
	res := lint.Run(pkgs, analyzers)
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "cuszhilint: %d finding(s), %d suppressed\n", len(res.Findings), res.Suppressed)
		os.Exit(1)
	}
}
