package core

// This file implements the paper's future-work item 3 (§7): an
// auto-selection mechanism that picks a compressor archetype and lossless
// pipeline to fit the data characteristics. Candidates are scored by the
// estimator cascade (estimate.go): one interpolation pass and one Lorenzo
// pass over a shared sample slab price the assembly pipelines from their
// fused quant-code histograms, and a strided probe prices the backends —
// no candidate trial-compresses the input. A SelectionPolicy (policy.go)
// then decides the winner, and only the winner compresses for real.
// SelectShardCodec applies the same scoring per shard, which is what makes
// heterogeneous (format v5) containers adaptive at near-fixed-mode speed:
// a field whose character changes along the slow dimension gets a
// different codec where a different codec wins.

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/gpusim"
)

// Selection is the outcome of AutoSelect.
type Selection struct {
	Codec Codec // the winning registered codec
	// Options is the winner's assembly configuration; it is the zero value
	// when a backend chunk codec (fzgpu/szp/szx) wins, since those expose
	// no Options — compress through Codec instead.
	Options Options
	// SampleCR is each candidate's estimated compression ratio on the
	// input, keyed by display name (Options.Name for assemblies, the wire
	// name for backend codecs), for reporting. Assembly entries come from
	// the histogram models; backend entries from the strided probe.
	SampleCR map[string]float64
	// Estimates holds the per-candidate size estimates the policy ranked,
	// in candidate order.
	Estimates []CandidateEstimate
}

// autoSelectCandidates returns the registered codecs AutoSelect evaluates:
// the three canonical assemblies plus the backend chunk codecs (fzgpu,
// szp, szx). The backends are error-bound-compatible here even though they
// take absolute bounds only, because every selection path scores under a
// resolved absolute bound: one-shot callers convert relative bounds before
// selecting, and relative-EB streams derive each shard's absolute bound
// from the shard's value range before scoring (stream.Writer.submitShard).
func autoSelectCandidates() []Codec {
	names := []string{"hi-cr", "hi-tp", "cusz-l", "fzgpu", "szp", "szx"}
	out := make([]Codec, 0, len(names))
	for _, name := range names {
		c, ok := CodecByName(name)
		if !ok {
			panic("core: auto-select candidate " + name + " not registered")
		}
		out = append(out, c)
	}
	return out
}

// sampleSlab extracts a contiguous central slab of roughly frac of the
// data (at least one full block row of the Hi predictor) along the slowest
// dimension, returning the slab and its dims. The slab keeps the field's
// original rank — collapsing a rank-4 field to 3-D slab dims would score
// the candidates on a different-shaped field than they will compress.
func sampleSlab(data []float32, dims []int, frac float64) ([]float32, []int) {
	ps := planeSize(dims)
	planes := int(frac * float64(dims[0]))
	minPlanes := 17 // one Hi block extent
	if planes < minPlanes {
		planes = minPlanes
	}
	if planes >= dims[0] {
		return data, dims
	}
	z0 := (dims[0] - planes) / 2
	slab := data[z0*ps : (z0+planes)*ps]
	slabDims := append([]int{planes}, dims[1:]...)
	return slab, slabDims
}

// AutoSelect scores every candidate on a sample of data via the estimator
// cascade under the absolute bound eb and returns the winner.
func AutoSelect(dev *gpusim.Device, data []float32, dims []int, eb float64) (*Selection, error) {
	return AutoSelectCtx(nil, dev, data, dims, eb)
}

// AutoSelectCtx is AutoSelect drawing estimator scratch from a reusable
// codec context, so repeated selections stop allocating working sets. The
// context is Reset before returning: any scratch the caller obtained from
// it earlier is invalidated.
func AutoSelectCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) (*Selection, error) {
	return AutoSelectPolicy(ctx, dev, data, dims, eb, DefaultSelectionPolicy)
}

// AutoSelectPolicy is the single selection implementation: AutoSelect,
// AutoSelectCtx and SelectShardCodec all route through it. The estimator
// cascade prices every candidate and pol picks the winner.
func AutoSelectPolicy(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64, pol SelectionPolicy) (*Selection, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: cannot auto-select on empty data")
	}
	if pol == nil {
		pol = DefaultSelectionPolicy
	}
	// One-shot selection happens once per input, so the whole sampled slab
	// is analyzed (no crop budget): accuracy is worth more than the
	// already-small cost of a single estimator pass.
	ests, err := estimateCandidates(ctx, dev, data, dims, eb, 0.1, 0)
	if err != nil {
		return nil, fmt.Errorf("core: auto-select: %w", err)
	}
	sel := &Selection{
		Codec:     ests[pol.Pick(ests)].Codec,
		SampleCR:  make(map[string]float64, len(ests)),
		Estimates: ests,
	}
	for _, e := range ests {
		sel.SampleCR[codecDisplayName(e.Codec)] = e.Ratio
	}
	if oc, ok := sel.Codec.(optioned); ok {
		sel.Options = oc.Options()
	}
	return sel, nil
}

// trialCompressions counts full candidate trial compressions performed by
// selection paths — the cost the estimator cascade exists to avoid. Only
// the trial-based reference scorer increments it; the estimator tests
// assert it stays untouched.
var trialCompressions atomic.Int64

// trialScoreSlab is the trial-based reference scorer: it compresses the
// already-sampled slab with every candidate through ctx and returns the
// per-candidate exact sizes, in candidate order. It is no longer on the
// selection path — the estimator-fidelity tests use it as ground truth,
// and it shares the caller's single sampled slab rather than re-sampling
// per probe. The context is Reset between candidates and before
// returning, so any scratch obtained from it earlier is invalidated.
func trialScoreSlab(ctx *arena.Ctx, dev *gpusim.Device, slab []float32, slabDims []int, eb float64) ([]int, error) {
	cands := autoSelectCandidates()
	sizes := make([]int, len(cands))
	for i, cand := range cands {
		ctx.Reset()
		blob, err := cand.Compress(ctx, dev, slab, slabDims, eb)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %s: %w", codecDisplayName(cand), err)
		}
		trialCompressions.Add(1)
		sizes[i] = len(blob)
	}
	ctx.Reset()
	return sizes, nil
}

// SelectShardCodec estimates every auto-select candidate's size on one
// shard (through ctx, which it Resets before returning) and returns the
// default policy's winner — the per-chunk
// selector the v5 streaming writer and CompressChunkedAuto run inside
// their pipeline workers. eb is the shard's absolute bound.
func SelectShardCodec(ctx *arena.Ctx, dev *gpusim.Device, shard []float32, dims []int, eb float64) (Codec, error) {
	cd, _, err := SelectShardCodecPolicy(ctx, dev, shard, dims, eb, DefaultSelectionPolicy)
	return cd, err
}

// SelectShardCodecPolicy is SelectShardCodec under an explicit policy,
// also returning the winner's size estimate so callers can report
// estimator-vs-actual deltas.
func SelectShardCodecPolicy(ctx *arena.Ctx, dev *gpusim.Device, shard []float32, dims []int, eb float64, pol SelectionPolicy) (Codec, CandidateEstimate, error) {
	if len(shard) == 0 {
		return nil, CandidateEstimate{}, fmt.Errorf("core: cannot select a codec for an empty shard")
	}
	if pol == nil {
		pol = DefaultSelectionPolicy
	}
	// Per-shard selection runs inside the streaming pipeline's workers, so
	// the estimator is budgeted to ~6% of the shard: that keeps auto-mode
	// throughput within ~15% of the best fixed mode while the shard's
	// central block rows still decide the ranking.
	ests, err := estimateCandidates(ctx, dev, shard, dims, eb, 0.25, len(shard)/16)
	if err != nil {
		return nil, CandidateEstimate{}, err
	}
	win := ests[pol.Pick(ests)]
	return win.Codec, win, nil
}

// codecDisplayName reports a codec's assembly display name (Options.Name)
// when it has one, falling back to the wire name.
func codecDisplayName(c Codec) string {
	if oc, ok := c.(optioned); ok {
		return oc.Options().Name
	}
	return c.Name()
}
