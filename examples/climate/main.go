// Climate: a CESM-like 2-D atmosphere workflow. Climate archives compress
// millions of snapshots, so the mode choice (ratio vs throughput vs
// baseline compatibility) matters; this example sweeps every mode of the
// public API over one snapshot and prints the trade-off table the operator
// would use to choose.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/cuszhi"
)

func main() {
	data, dims, err := cuszhi.GenerateDataset("cesm", []int{450, 900}, 7)
	if err != nil {
		log.Fatal(err)
	}
	const relEB = 1e-3
	absEB := cuszhi.AbsEB(data, relEB)

	fmt.Printf("CESM-like snapshot %v, rel eb %g (abs %.3g)\n\n", dims, relEB, absEB)
	fmt.Printf("%-10s %10s %10s %10s %12s %12s\n", "mode", "ratio", "bits/val", "PSNR", "comp MB/s", "decomp MB/s")

	for _, mode := range cuszhi.Modes() {
		c, err := cuszhi.New(mode)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		blob, err := c.Compress(data, dims, relEB)
		compS := time.Since(t0).Seconds()
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		t1 := time.Now()
		recon, _, err := c.Decompress(blob)
		decS := time.Since(t1).Seconds()
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		st := cuszhi.Evaluate(data, blob, recon, absEB)
		if !st.WithinEB {
			log.Fatalf("%s: bound violated", mode)
		}
		mb := float64(st.OrigBytes) / 1e6
		fmt.Printf("%-10s %10.1f %10.3f %10.1f %12.1f %12.1f\n",
			mode, st.Ratio, st.BitRate, st.PSNR, mb/compS, mb/decS)
	}
	fmt.Println("\nhi-cr maximizes archive density; hi-tp trades a little ratio for speed.")
}
