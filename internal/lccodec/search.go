package lccodec

// This file implements the pipeline-search methodology of §5.2.2: the LC
// framework "enables users to traverse diverse component combinations for
// the files requiring compression". Search enumerates pipelines up to a
// stage limit over a component alphabet, measures ratio and wall time on a
// sample, and returns the Pareto frontier — the procedure the authors used
// to arrive at HF-RRE4-TCMS8-RZE1 and TCMS1-BIT1-RRE1.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/arena"
	"repro/internal/gpusim"
)

// SearchResult is one evaluated pipeline.
type SearchResult struct {
	Spec    string
	Ratio   float64
	Seconds float64 // encode+decode wall time on the sample
	Pareto  bool    // on the ratio/time frontier
}

// DefaultSearchComponents is the component alphabet used by Search when
// none is given — the stages appearing in the paper's Fig. 6 pipelines.
var DefaultSearchComponents = []string{
	"HF", "RRE1", "RRE2", "RRE4", "RZE1", "TCMS1", "TCMS8", "BIT1", "DIFFMS1", "CLOG1", "TUPLQ1",
}

// Search evaluates every pipeline of 1..maxStages components (no immediate
// repeats) on sample, returning results sorted by ratio (best first) with
// the Pareto frontier marked. maxStages is clamped to [1,3] to keep the
// enumeration tractable (the paper notes pipelines beyond 3-4 stages are
// not necessary).
func Search(dev *gpusim.Device, sample []byte, components []string, maxStages int) ([]SearchResult, error) {
	return SearchCtx(nil, dev, sample, components, maxStages)
}

// SearchCtx is Search drawing every candidate's trial buffers from a
// reusable codec context instead of allocating fresh working sets per
// pipeline: the context is Reset before each candidate, so one warm set of
// slots serves the whole enumeration. The context is left reset on return;
// scratch the caller obtained from it earlier is invalidated.
func SearchCtx(ctx *arena.Ctx, dev *gpusim.Device, sample []byte, components []string, maxStages int) ([]SearchResult, error) {
	if len(components) == 0 {
		components = DefaultSearchComponents
	}
	if maxStages < 1 {
		maxStages = 1
	}
	if maxStages > 3 {
		maxStages = 3
	}
	for _, name := range components {
		if _, err := New(name); err != nil {
			return nil, err
		}
	}
	var specs []string
	var build func(prefix []string)
	build = func(prefix []string) {
		if len(prefix) > 0 {
			spec := prefix[0]
			for _, p := range prefix[1:] {
				spec += "-" + p
			}
			specs = append(specs, spec)
		}
		if len(prefix) == maxStages {
			return
		}
		for _, c := range components {
			if len(prefix) > 0 && prefix[len(prefix)-1] == c {
				continue // immediate repeats are never useful
			}
			// HF is only useful as the first stage (entropy coding output
			// is incompressible by a second entropy pass).
			if c == "HF" && len(prefix) > 0 {
				continue
			}
			build(append(prefix, c))
		}
	}
	build(nil)

	results := make([]SearchResult, 0, len(specs))
	for _, spec := range specs {
		p := MustParse(spec)
		ctx.Reset()
		t0 := time.Now()
		enc, err := p.EncodeCtx(ctx, dev, sample)
		if err != nil {
			return nil, fmt.Errorf("lccodec: search %s: %w", spec, err)
		}
		encLen := len(enc)
		dec, err := p.DecodeCtx(ctx, dev, enc)
		secs := time.Since(t0).Seconds()
		if err != nil || !bytes.Equal(dec, sample) {
			return nil, fmt.Errorf("lccodec: search %s: round trip failed: %v", spec, err)
		}
		results = append(results, SearchResult{
			Spec:    spec,
			Ratio:   float64(len(sample)) / float64(encLen),
			Seconds: secs,
		})
	}
	ctx.Reset()
	sort.Slice(results, func(i, j int) bool { return results[i].Ratio > results[j].Ratio })
	// Pareto: no other pipeline is both faster and higher-ratio.
	for i := range results {
		dominated := false
		for j := range results {
			if results[j].Ratio > results[i].Ratio && results[j].Seconds < results[i].Seconds {
				dominated = true
				break
			}
		}
		results[i].Pareto = !dominated
	}
	return results, nil
}
