package core

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"
)

// TestContainerHeaderStable locks the on-disk header layout so format
// changes are deliberate (bump `version` when they are).
func TestContainerHeaderStable(t *testing.T) {
	data := []float32{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75}
	opts := HiTP()
	opts.AutoTune = false // keep the per-level configs deterministic
	blob, err := Compress(dev, data, []int{2, 2, 2}, 0.01, opts)
	if err != nil {
		t.Fatal(err)
	}
	// magic + version + predictor byte.
	if !bytes.Equal(blob[:4], []byte("cSZh")) {
		t.Fatalf("magic = %s", hex.EncodeToString(blob[:4]))
	}
	if blob[4] != 1 {
		t.Fatalf("version = %d", blob[4])
	}
	if Predictor(blob[5]) != PredInterp {
		t.Fatalf("predictor byte = %d", blob[5])
	}
	// ndims + dims varints.
	if blob[6] != 3 || blob[7] != 2 || blob[8] != 2 || blob[9] != 2 {
		t.Fatalf("dims header = % x", blob[6:10])
	}
	// eb as float64 LE.
	eb := math.Float64frombits(uint64(blob[10]) | uint64(blob[11])<<8 | uint64(blob[12])<<16 |
		uint64(blob[13])<<24 | uint64(blob[14])<<32 | uint64(blob[15])<<40 |
		uint64(blob[16])<<48 | uint64(blob[17])<<56)
	if eb != 0.01 {
		t.Fatalf("eb = %v", eb)
	}
	// pipeline + reorder flag.
	if Pipeline(blob[18]) != PipeHiTP || blob[19] != 1 {
		t.Fatalf("pipeline/reorder = %d %d", blob[18], blob[19])
	}
	// Round trip still works, of course.
	recon, dims, err := Decompress(dev, blob)
	if err != nil || len(recon) != 8 || dims[0] != 2 {
		t.Fatalf("round trip: %v", err)
	}
}

// TestCrossModeDecode verifies any mode's container decodes through the
// generic Decompress entry point without knowing the mode.
func TestCrossModeDecode(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(i % 17)
	}
	for _, opts := range allModes() {
		blob, err := Compress(dev, data, []int{10, 10, 10}, 0.05, opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Name, err)
		}
		recon, _, err := Decompress(dev, blob)
		if err != nil {
			t.Fatalf("%s: %v", opts.Name, err)
		}
		for i := range data {
			if diff := float64(data[i]) - float64(recon[i]); diff > 0.05 || diff < -0.05 {
				t.Fatalf("%s: bound violated at %d", opts.Name, i)
			}
		}
	}
}
