package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/interp"
	"repro/internal/metrics"
)

// fig8 reproduces Figure 8: rate-distortion (bitrate vs PSNR) for every
// compressor over every dataset. Fixed-eb compressors sweep error bounds;
// cuZFP sweeps rates.
func fig8(dev *gpusim.Device) error {
	header("Fig 8: rate-distortion (bitrate [bits/val] vs PSNR [dB])")
	ebs := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}
	rates := []float64{0.25, 0.5, 1, 2, 4, 8, 16}
	var csv strings.Builder
	csv.WriteString("dataset,compressor,point,bitrate,psnr\n")
	for _, ds := range datagen.PaperNames() {
		f, err := experiments.Dataset(ds, *flagFull, *flagSeed)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s ---\n", ds)
		for _, c := range experiments.Table4Compressors() {
			fmt.Printf("%-12s", c.Name)
			for _, eb := range ebs {
				r, err := experiments.Run(dev, c, f, eb)
				if err != nil {
					return err
				}
				fmt.Printf("  (%6.3f, %5.1f)", r.BitRate, r.PSNR)
				csv.WriteString(fmt.Sprintf("%s,%s,eb=%g,%.4f,%.2f\n", ds, c.Name, eb, r.BitRate, r.PSNR))
			}
			fmt.Println()
		}
		fmt.Printf("%-12s", "cuZFP")
		for _, rate := range rates {
			r, err := experiments.Run(dev, experiments.CuZFP(rate), f, 0)
			if err != nil {
				return err
			}
			fmt.Printf("  (%6.3f, %5.1f)", r.BitRate, r.PSNR)
			csv.WriteString(fmt.Sprintf("%s,cuZFP,rate=%g,%.4f,%.2f\n", ds, rate, r.BitRate, r.PSNR))
		}
		fmt.Println()
	}
	fmt.Println("\n(paper: cuSZ-Hi-CR leads the low-bitrate regime; cuSZ-Hi-TP close behind)")
	return writeArtifact("fig8.csv", csv.String())
}

// fig9 reproduces Figure 9: decompression quality at a matched compression
// ratio (JHTDB and RTM snapshots); slices are dumped as PGM when -out is
// set.
func fig9(dev *gpusim.Device) error {
	header("Fig 9: quality at matched CR (JHTDB, RTM)")
	type entry struct {
		name string
		c    experiments.Compressor
		ebs  []float64
	}
	sweep := []float64{3e-1, 1e-1, 3e-2, 1e-2, 3e-3, 1e-3}
	for _, ds := range []string{"jhtdb", "rtm"} {
		f, err := experiments.Dataset(ds, *flagFull, *flagSeed)
		if err != nil {
			return err
		}
		// Target CR: what cuSZ-Hi-CR achieves around eb=1e-2 on this data.
		target, err := experiments.Run(dev, experiments.HiCR(), f, 1e-2)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s: target CR ~%.0f ---\n", ds, target.CR)
		fmt.Printf("%-12s %10s %10s %10s\n", "compressor", "CR", "PSNR", "eb/rate")
		entries := []entry{
			{"cuSZ-Hi-CR", experiments.HiCR(), sweep},
			{"cuSZ-Hi-TP", experiments.HiTP(), sweep},
			{"cuSZ-IB", experiments.CuszIB(), sweep},
			{"cuSZ-L", experiments.CuszL(), sweep},
		}
		for _, e := range entries {
			// Pick the eb whose CR lands closest to the target.
			best := math.Inf(1)
			var bestRun experiments.RunResult
			var bestEB float64
			var bestRecon []float32
			for _, eb := range e.ebs {
				r, err := experiments.Run(dev, e.c, f, eb)
				if err != nil {
					return err
				}
				if d := math.Abs(math.Log(r.CR / target.CR)); d < best {
					best = d
					bestRun = r
					bestEB = eb
					blob, err := e.c.Compress(dev, f.Data, f.Dims, eb)
					if err != nil {
						return err
					}
					bestRecon, err = e.c.Decompress(dev, blob)
					if err != nil {
						return err
					}
				}
			}
			fmt.Printf("%-12s %10.1f %10.1f %10.0e\n", e.name, bestRun.CR, bestRun.PSNR, bestEB)
			if err := writeSlicePGM(fmt.Sprintf("fig9_%s_%s.pgm", ds, sanitize(e.name)), bestRecon, f.Dims); err != nil {
				return err
			}
		}
		// cuZFP: pick the (fractional) rate matching the target CR
		// (CR = 32/rate), floored at the minimum block budget.
		zr := 32 / target.CR
		r, err := experiments.Run(dev, experiments.CuZFP(zr), f, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10.1f %10.1f %8.2fr\n", "cuZFP", r.CR, r.PSNR, zr)
		if err := writeSlicePGM(fmt.Sprintf("fig9_%s_orig.pgm", ds), f.Data, f.Dims); err != nil {
			return err
		}
	}
	fmt.Println("\n(paper: at matched CR the Hi modes keep the highest PSNR and cleanest slices)")
	return nil
}

// fig10 reproduces Figure 10: compression and decompression throughput per
// compressor, dataset and error bound, on the simulated device.
func fig10(dev *gpusim.Device) error {
	header(fmt.Sprintf("Fig 10: throughput in GiB/s (simulated device, %d workers)", dev.Workers()))
	comps := append(experiments.Table4Compressors(), experiments.CuZFP(8))
	var csv strings.Builder
	csv.WriteString("dataset,eb,compressor,comp_gibps,dec_gibps\n")
	for _, ds := range datagen.PaperNames() {
		f, err := experiments.Dataset(ds, *flagFull, *flagSeed)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s ---\n", ds)
		fmt.Printf("%-12s", "compressor")
		for _, eb := range table4EBs {
			fmt.Printf("   comp@%-6.0e dec@%-7.0e", eb, eb)
		}
		fmt.Println()
		for _, c := range comps {
			fmt.Printf("%-12s", c.Name)
			for _, eb := range table4EBs {
				r, err := experiments.Run(dev, c, f, eb)
				if err != nil {
					return err
				}
				fmt.Printf("   %10.3f %11.3f", r.CompGiBps, r.DecGiBps)
				csv.WriteString(fmt.Sprintf("%s,%g,%s,%.4f,%.4f\n", ds, eb, c.Name, r.CompGiBps, r.DecGiBps))
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(paper: cuSZp2/FZ-GPU fastest; Hi-TP faster than Hi-CR and cuSZ-I(B))")
	return writeArtifact("fig10.csv", csv.String())
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

// writeSlicePGM dumps the central z-slice of a field as an 8-bit PGM image
// (the visual artifact standing in for Fig. 9's rendered slices).
func writeSlicePGM(name string, data []float32, dims []int) error {
	if *flagOut == "" {
		return nil
	}
	g := interp.NewGrid(dims)
	z := g.Nz / 2
	slice := data[z*g.Ny*g.Nx : (z+1)*g.Ny*g.Nx]
	lo, hi, rng := metrics.Range(slice)
	_ = hi
	if rng == 0 {
		rng = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "P5\n%d %d\n255\n", g.Nx, g.Ny)
	buf := make([]byte, len(slice))
	for i, v := range slice {
		buf[i] = byte(math.Max(0, math.Min(255, (float64(v)-lo)/rng*255)))
	}
	sb.Write(buf)
	return os.WriteFile(filepath.Join(*flagOut, name), []byte(sb.String()), 0o644)
}
