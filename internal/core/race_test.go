//go:build race

package core

// raceEnabled gates allocation-ceiling assertions: under the race
// detector sync.Pool randomly bypasses pooling, so pool-backed paths
// legitimately allocate more than their steady-state ceilings.
func init() { raceEnabled = true }
