// The wirelen analyzer: hostile wire lengths must be capped before they are
// converted to int.
//
// The bug class (PR 3's lccodec hostile-length panics, PR 5's
// szp/szx/fzgpu/lz overflow sweep): a 64-bit length read off the wire —
// binary.Uvarint, bitio.Uvarint, binary.LittleEndian.Uint32/Uint64 — is
// converted with int(x) and then sizes a make, a slice expression, or a
// read. A 2^63-scale value wraps the int negative and panics the slice; a
// 2^40-scale one forces an absurd allocation. Every conversion must be
// dominated by a bound check on the 64-bit value (any <, <=, >, >=
// comparison mentioning it, which is how this repo writes its caps), or go
// through bitio.IntLen, the shared capping helper.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

func wireLenAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wirelen",
		Doc:  "int(x) of an unchecked 64-bit wire value (Uvarint / LittleEndian.Uint32/64)",
		Run:  runWireLen,
	}
}

// narrowingConversions are the conversion targets that can truncate or
// sign-flip a 64-bit wire value.
var narrowingConversions = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true,
}

// wireEvent is one position-ordered fact about a tracked variable.
type wireEvent struct {
	pos  token.Pos
	kind int // taint, untaint, check, or use
	name string
	node ast.Node // the conversion expression, for use events
}

const (
	evTaint = iota
	evUntaint
	evCheck
	evUse
)

func runWireLen(pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			findings = append(findings, wireLenFunc(pkg, fn)...)
		}
	}
	return findings
}

// wireLenFunc replays the function body's events in source order. Closures
// share the enclosing function's event stream: a bound check established
// before a dev.Launch kernel dominates uses inside it.
func wireLenFunc(pkg *Package, fn *ast.FuncDecl) []Finding {
	var events []wireEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			events = append(events, assignEvents(n)...)
		case *ast.BinaryExpr:
			if isBoundOp(n.Op) {
				for _, name := range identsIn(n) {
					events = append(events, wireEvent{pos: n.Pos(), kind: evCheck, name: name})
				}
			}
		case *ast.CallExpr:
			if isCapHelperCall(n) {
				for _, arg := range n.Args {
					for _, name := range identsIn(arg) {
						events = append(events, wireEvent{pos: n.Pos(), kind: evCheck, name: name})
					}
				}
				return true
			}
			if fun, ok := n.Fun.(*ast.Ident); ok && len(n.Args) >= 1 {
				if narrowingConversions[fun.Name] && len(n.Args) == 1 {
					if id, ok := n.Args[0].(*ast.Ident); ok {
						events = append(events, wireEvent{pos: n.Args[0].Pos(), kind: evUse, name: id.Name, node: n})
					}
				}
				// make([]T, n64) compiles with any integer type: a raw
				// uint64 wire value sizing an allocation is the alloc-bomb
				// variant of the same bug, no int() conversion required.
				if fun.Name == "make" {
					for _, arg := range n.Args[1:] {
						if id, ok := arg.(*ast.Ident); ok {
							events = append(events, wireEvent{pos: arg.Pos(), kind: evUse, name: id.Name, node: n})
						}
					}
				}
			}
		case *ast.SliceExpr:
			// b[:n64] also compiles with any integer type.
			for _, idx := range []ast.Expr{n.Low, n.High, n.Max} {
				if id, ok := idx.(*ast.Ident); ok {
					events = append(events, wireEvent{pos: idx.Pos(), kind: evUse, name: id.Name, node: n})
				}
			}
		}
		return true
	})
	return replayWireEvents(pkg, events)
}

// assignEvents derives taint/untaint events from one assignment: the first
// LHS of a wire-source call becomes tainted, any other assignment clears.
func assignEvents(a *ast.AssignStmt) []wireEvent {
	var out []wireEvent
	taintFirst := len(a.Rhs) == 1 && isWireSourceCall(a.Rhs[0])
	for i, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		kind := evUntaint
		if taintFirst && i == 0 {
			kind = evTaint
		}
		out = append(out, wireEvent{pos: id.Pos(), kind: kind, name: id.Name})
	}
	return out
}

// isWireSourceCall matches the reads that introduce 64-bit wire values:
// any *.Uvarint(...) (encoding/binary and internal/bitio share the name)
// and binary.LittleEndian/BigEndian.Uint16/32/64.
func isWireSourceCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uvarint", "ReadUvarint":
		return true
	case "Uint16", "Uint32", "Uint64":
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			return inner.Sel.Name == "LittleEndian" || inner.Sel.Name == "BigEndian"
		}
	}
	return false
}

// isCapHelperCall matches bitio.IntLen, the shared conversion helper that
// caps before converting.
func isCapHelperCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "IntLen"
}

func isBoundOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// identsIn collects every bare identifier inside e.
func identsIn(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// x.f mentions x as a value of its own, not the field name.
			ast.Inspect(sel.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					out = append(out, id.Name)
				}
				return true
			})
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// replayWireEvents sorts the event stream by position and reports every use
// whose governing taint has no intervening bound check.
func replayWireEvents(pkg *Package, events []wireEvent) []Finding {
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by position (streams are short; stable on ties so a
	// taint at the same position as a use wins deterministically).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && events[order[j]].pos < events[order[j-1]].pos; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	type state struct {
		tainted bool
		checked bool
	}
	vars := map[string]state{}
	var findings []Finding
	for _, idx := range order {
		ev := events[idx]
		switch ev.kind {
		case evTaint:
			vars[ev.name] = state{tainted: true}
		case evUntaint:
			vars[ev.name] = state{}
		case evCheck:
			if s := vars[ev.name]; s.tainted {
				s.checked = true
				vars[ev.name] = s
			}
		case evUse:
			if s := vars[ev.name]; s.tainted && !s.checked {
				findings = append(findings, Finding{
					Check: "wirelen",
					Pos:   pkg.Fset.Position(ev.node.Pos()),
					Message: fmt.Sprintf("%s holds an unchecked wire value: cap it (bitio.IntLen or an explicit bound) before converting to int",
						ev.name),
				})
			}
		}
	}
	return findings
}
