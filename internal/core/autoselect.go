package core

// This file implements the paper's future-work item 3 (§7): an
// auto-selection mechanism that picks a compressor archetype and lossless
// pipeline to fit the data characteristics. A representative sample slab
// is compressed with each candidate assembly and the best ratio wins —
// the same sampling philosophy as the predictor auto-tuner (§5.1.3),
// lifted to whole-assembly granularity. SelectShardCodec applies the same
// scoring per shard, which is what makes heterogeneous (format v5)
// containers adaptive: a field whose character changes along the slow
// dimension gets a different codec where a different codec wins.

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/gpusim"
)

// Selection is the outcome of AutoSelect.
type Selection struct {
	Codec Codec // the winning registered codec
	// Options is the winner's assembly configuration; it is the zero value
	// when a backend chunk codec (fzgpu/szp/szx) wins, since those expose
	// no Options — compress through Codec instead.
	Options Options
	// SampleCR is each candidate's compression ratio on the sample slab,
	// keyed by display name (Options.Name for assemblies, the wire name
	// for backend codecs), for reporting.
	SampleCR map[string]float64
}

// autoSelectCandidates returns the registered codecs AutoSelect evaluates:
// the three canonical assemblies plus the backend chunk codecs (fzgpu,
// szp, szx). The backends are error-bound-compatible here even though they
// take absolute bounds only, because every selection path scores under a
// resolved absolute bound: one-shot callers convert relative bounds before
// selecting, and relative-EB streams derive each shard's absolute bound
// from the shard's value range before scoring (stream.Writer.submitShard).
func autoSelectCandidates() []Codec {
	names := []string{"hi-cr", "hi-tp", "cusz-l", "fzgpu", "szp", "szx"}
	out := make([]Codec, 0, len(names))
	for _, name := range names {
		c, ok := CodecByName(name)
		if !ok {
			panic("core: auto-select candidate " + name + " not registered")
		}
		out = append(out, c)
	}
	return out
}

// sampleSlab extracts a contiguous central slab of roughly frac of the
// data (at least one full block row of the Hi predictor) along the slowest
// dimension, returning the slab and its dims. The slab keeps the field's
// original rank — collapsing a rank-4 field to 3-D slab dims would score
// the candidates on a different-shaped field than they will compress.
func sampleSlab(data []float32, dims []int, frac float64) ([]float32, []int) {
	ps := planeSize(dims)
	planes := int(frac * float64(dims[0]))
	minPlanes := 17 // one Hi block extent
	if planes < minPlanes {
		planes = minPlanes
	}
	if planes >= dims[0] {
		return data, dims
	}
	z0 := (dims[0] - planes) / 2
	slab := data[z0*ps : (z0+planes)*ps]
	slabDims := append([]int{planes}, dims[1:]...)
	return slab, slabDims
}

// AutoSelect compresses a sample of data with every candidate assembly
// under the absolute bound eb and returns the winner.
func AutoSelect(dev *gpusim.Device, data []float32, dims []int, eb float64) (*Selection, error) {
	return AutoSelectCtx(nil, dev, data, dims, eb)
}

// scoreCandidates compresses a central sample (frac of data along the
// slow dimension) with every candidate codec through ctx, returning the
// smallest-output winner. sampleCR, when non-nil, collects each
// candidate's compression ratio on the sample, keyed by display name.
// The context is Reset between candidates and before returning, so any
// scratch the caller obtained from it earlier is invalidated.
func scoreCandidates(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb, frac float64, sampleCR map[string]float64) (Codec, error) {
	slab, slabDims := sampleSlab(data, dims, frac)
	var best Codec
	bestSize := -1
	for _, cand := range autoSelectCandidates() {
		ctx.Reset()
		blob, err := cand.Compress(ctx, dev, slab, slabDims, eb)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %s: %w", codecDisplayName(cand), err)
		}
		if sampleCR != nil {
			sampleCR[codecDisplayName(cand)] = float64(4*len(slab)) / float64(len(blob))
		}
		if bestSize < 0 || len(blob) < bestSize {
			bestSize = len(blob)
			best = cand
		}
	}
	ctx.Reset()
	return best, nil
}

// AutoSelectCtx is AutoSelect drawing candidate scratch from a reusable
// codec context, so repeated selections stop allocating working sets. The
// context is Reset between candidates (and left reset on return): any
// scratch the caller obtained from it earlier is invalidated.
func AutoSelectCtx(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) (*Selection, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: cannot auto-select on empty data")
	}
	sel := &Selection{SampleCR: make(map[string]float64, 6)}
	best, err := scoreCandidates(ctx, dev, data, dims, eb, 0.1, sel.SampleCR)
	if err != nil {
		return nil, fmt.Errorf("core: auto-select: %w", err)
	}
	sel.Codec = best
	if oc, ok := best.(optioned); ok {
		sel.Options = oc.Options()
	}
	return sel, nil
}

// SelectShardCodec scores the auto-select candidates on a central sample
// of one shard (through ctx, which it Resets between candidates and
// before returning) and returns the winner — the per-chunk selector the
// v5 streaming writer and CompressChunkedAuto run inside their pipeline
// workers. eb is the shard's absolute bound.
func SelectShardCodec(ctx *arena.Ctx, dev *gpusim.Device, shard []float32, dims []int, eb float64) (Codec, error) {
	if len(shard) == 0 {
		return nil, fmt.Errorf("core: cannot select a codec for an empty shard")
	}
	return scoreCandidates(ctx, dev, shard, dims, eb, 0.25, nil)
}

// codecDisplayName reports a codec's assembly display name (Options.Name)
// when it has one, falling back to the wire name.
func codecDisplayName(c Codec) string {
	if oc, ok := c.(optioned); ok {
		return oc.Options().Name
	}
	return c.Name()
}
