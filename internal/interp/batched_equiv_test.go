package interp

import (
	"math"
	"slices"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// f32BitsEqual compares float32 slices bitwise, so NaN-bearing fields
// (datagen produces some for degenerate shapes) still compare meaningfully.
func f32BitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBatchedMatchesScalar is the equivalence property for the fused
// stride-row interpolation fast path: over every datagen field, both
// schemes and a dim set with non-multiple-of-8 extents and rank-1/2
// grids, the row kernels must produce byte-identical quant codes,
// anchors, outliers and reconstructions to the per-point reference.
func TestBatchedMatchesScalar(t *testing.T) {
	defer func() { Batched = true }()
	dev := gpusim.New(4)
	dimsList := [][]int{
		{20, 20, 20},
		{33, 17, 9}, // no extent a multiple of 8
		{7, 5, 3},
		{37, 53}, // rank 2
		{1009},   // rank 1, prime length
	}
	cfgs := []Config{HiConfig(), CuszIConfig()}
	for _, name := range datagen.Names() {
		for _, dims := range dimsList {
			f, err := datagen.Generate(name, dims, 13)
			if err != nil {
				t.Fatalf("%s %v: %v", name, dims, err)
			}
			eb := metrics.AbsEB(f.Data, 1e-2)
			g := NewGrid(dims)
			for ci, cfg := range cfgs {
				Batched = false
				want, err := Compress(dev, f.Data, g, cfg, eb)
				if err != nil {
					t.Fatalf("%s %v cfg%d scalar: %v", name, dims, ci, err)
				}
				wantRecon, err := Decompress(dev, want, g, cfg, eb)
				if err != nil {
					t.Fatalf("%s %v cfg%d scalar decompress: %v", name, dims, ci, err)
				}

				Batched = true
				got, err := Compress(dev, f.Data, g, cfg, eb)
				if err != nil {
					t.Fatalf("%s %v cfg%d batched: %v", name, dims, ci, err)
				}
				if !slices.Equal(got.Codes, want.Codes) {
					t.Fatalf("%s %v cfg%d: codes diverge", name, dims, ci)
				}
				if !f32BitsEqual(got.Anchors, want.Anchors) {
					t.Fatalf("%s %v cfg%d: anchors diverge", name, dims, ci)
				}
				if !slices.Equal(got.Outliers.Pos, want.Outliers.Pos) ||
					!f32BitsEqual(got.Outliers.Val, want.Outliers.Val) {
					t.Fatalf("%s %v cfg%d: outliers diverge", name, dims, ci)
				}
				if !slices.Equal(got.Freq, want.Freq) {
					t.Fatalf("%s %v cfg%d: histogram diverges", name, dims, ci)
				}
				gotRecon, err := Decompress(dev, got, g, cfg, eb)
				if err != nil {
					t.Fatalf("%s %v cfg%d batched decompress: %v", name, dims, ci, err)
				}
				if !f32BitsEqual(gotRecon, wantRecon) {
					t.Fatalf("%s %v cfg%d: reconstruction diverges", name, dims, ci)
				}
			}
		}
	}
}
