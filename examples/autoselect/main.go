// Autoselect: demonstrates the two extension mechanisms built on top of
// the paper (its §7 future-work list): per-input compressor auto-selection
// (cuszhi.ModeAuto) and LC-pipeline search over a data sample. A mixed
// workload — a smooth hydrodynamics field and a rough turbulence field —
// shows auto-selection adapting per input.
package main

import (
	"fmt"
	"log"

	"repro/cuszhi"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/lccodec"
	"repro/internal/metrics"
)

func main() {
	dev := gpusim.New(0)
	auto, err := cuszhi.New(cuszhi.ModeAuto)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== per-input auto-selection (ModeAuto) ==")
	fmt.Printf("%-10s %10s %10s\n", "field", "ratio", "PSNR")
	for _, name := range []string{"miranda", "jhtdb", "nyx"} {
		f, err := datagen.Generate(name, []int{48, 64, 64}, 1)
		if err != nil {
			log.Fatal(err)
		}
		blob, err := auto.Compress(f.Data, f.Dims, 1e-2)
		if err != nil {
			log.Fatal(err)
		}
		recon, _, err := auto.Decompress(blob)
		if err != nil {
			log.Fatal(err)
		}
		st := cuszhi.Evaluate(f.Data, blob, recon, metrics.AbsEB(f.Data, 1e-2))
		if !st.WithinEB {
			log.Fatalf("%s: bound violated", name)
		}
		fmt.Printf("%-10s %10.1f %10.1f\n", name, st.Ratio, st.PSNR)
	}

	fmt.Println("\n== LC pipeline search on a quant-code sample (<=2 stages) ==")
	f, err := datagen.Generate("nyx", []int{48, 64, 64}, 1)
	if err != nil {
		log.Fatal(err)
	}
	codes, err := experiments.HiQuantCodes(dev, f, 1e-3, true)
	if err != nil {
		log.Fatal(err)
	}
	results, err := lccodec.Search(dev, codes[:1<<16], []string{"HF", "RRE1", "RZE1", "TCMS1", "BIT1"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %8s %8s\n", "pipeline", "CR", "Pareto")
	for i, r := range results {
		if i >= 8 {
			break
		}
		fmt.Printf("%-20s %8.2f %8v\n", r.Spec, r.Ratio, r.Pareto)
	}
}
