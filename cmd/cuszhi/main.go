// Command cuszhi is the command-line front end of the cuSZ-Hi
// reproduction: it compresses and decompresses raw little-endian float32
// files, and can synthesize the benchmark datasets.
//
//	cuszhi compress   -i data.f32 -o data.cszh -dims 256x384x384 -eb 1e-3 [-mode hi-cr] [-abs] [-chunk 32] [-stream] [-auto-policy P]
//	cuszhi decompress -i data.cszh -o recon.f32 [-stream] [-planes lo:hi]
//	cuszhi gen        -dataset miranda -o data.f32 [-dims 64x96x96] [-seed 1]
//	cuszhi info       -i data.cszh
//
// Modes: hi-cr (default), hi-tp, cusz-i, cusz-ib, cusz-l, fzgpu, szp,
// szx, auto. The backend modes (fzgpu, szp, szx) dispatch through the
// codec registry and always emit format-v5 containers — single-chunk
// unless -chunk/-stream shards the field.
//
// -chunk N shards the field into slabs of N planes compressed in parallel
// (a chunked container); -stream additionally pipes the file through the
// streaming writer/reader so memory stays bounded by the chunk size rather
// than the field size, emitting a seekable (format v4) container whose
// chunk-index footer lets `decompress -planes lo:hi` extract a plane range
// while reading only the covering shards. With -mode auto and chunking (or
// -stream), every shard is compressed by whichever codec the estimator
// cascade scores best on a sample of it — the candidates span the
// assemblies and the backend codecs — a heterogeneous format-v5 container;
// -auto-policy picks the ranking rule (best-ratio, throughput, or
// ratio-floor:F), and `info` prints the resulting per-chunk codec
// histogram and per-chunk compression ratios.
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/cuszhi"
	"repro/cuszhi/stream"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "append":
		err = cmdAppend(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "scrub":
		// scrub has three-way exit semantics (0 clean / 1 damaged / 2
		// unreadable), so it reports and exits on its own.
		os.Exit(cmdScrub(os.Args[2:]))
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuszhi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cuszhi compress   -i data.f32 -o data.cszh -dims ZxYxX -eb 1e-3 [-mode hi-cr] [-abs] [-chunk N] [-stream] [-auto-policy P]
  cuszhi decompress -i data.cszh -o recon.f32 [-stream] [-planes lo:hi]
  cuszhi gen        -dataset NAME -o data.f32 [-dims ZxYxX] [-seed N] [-full]
  cuszhi info       -i data.cszh
  cuszhi append     -store data.cszh -i more.f32 [-mode hi-cr]
  cuszhi repair     -i data.cszh [-dry-run]
  cuszhi scrub      -i data.cszh [-json] [-retry N]`)
	os.Exit(2)
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -dims")
	}
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == 'x' || r == 'X' || r == ',' })
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dims %q", s)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("bad dims %q", s)
	}
	return dims, nil
}

func readF32(path string) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 4", path, len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// writeFileAtomic writes path via a temp file in the same directory,
// renaming into place only when fn succeeds, so a failed run never
// destroys an existing output.
func writeFileAtomic(path string, fn func(io.Writer) error) error {
	of, err := os.CreateTemp(filepath.Dir(path), ".cuszhi-*")
	if err != nil {
		return err
	}
	tmp := of.Name()
	err = fn(of)
	if cerr := of.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func writeF32(path string, data []float32) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return writeFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("i", "", "input raw float32 file")
	out := fs.String("o", "", "output compressed file")
	dimsStr := fs.String("dims", "", "dims, slowest first, e.g. 256x384x384")
	eb := fs.Float64("eb", 1e-3, "error bound")
	abs := fs.Bool("abs", false, "treat -eb as absolute instead of value-range-relative")
	mode := fs.String("mode", string(cuszhi.ModeCR), "compressor mode")
	chunk := fs.Int("chunk", 0, "planes per chunk; >0 writes a chunked (v2) container compressed in parallel")
	streaming := fs.Bool("stream", false, "pipe the file through the streaming writer (bounded memory; implies -chunk)")
	policy := fs.String("auto-policy", "", "auto-mode selection policy: best-ratio, throughput, or ratio-floor:F (requires -mode auto)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("compress: -i and -o are required")
	}
	if *policy != "" && cuszhi.Mode(*mode) != cuszhi.ModeAuto {
		return fmt.Errorf("compress: -auto-policy requires -mode auto (got -mode %s)", *mode)
	}
	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	if *streaming {
		return compressStream(*in, *out, dims, *eb, *abs, cuszhi.Mode(*mode), *chunk, *policy)
	}
	data, err := readF32(*in)
	if err != nil {
		return err
	}
	copts := []cuszhi.Option{}
	if *chunk > 0 {
		copts = append(copts, cuszhi.WithChunkPlanes(*chunk))
	}
	if *policy != "" {
		copts = append(copts, cuszhi.WithAutoPolicy(*policy))
	}
	c, err := cuszhi.New(cuszhi.Mode(*mode), copts...)
	if err != nil {
		return err
	}
	var blob []byte
	if *abs {
		blob, err = c.CompressAbs(data, dims, *eb)
	} else {
		blob, err = c.Compress(data, dims, *eb)
	}
	if err != nil {
		return err
	}
	if err := writeFileAtomic(*out, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (CR %.2f, %.3f bits/val, mode %s)\n",
		*in, 4*len(data), len(blob), metrics.CR(4*len(data), len(blob)),
		metrics.BitRate(len(data), len(blob)), *mode)
	return nil
}

func compressStream(in, out string, dims []int, eb float64, abs bool, mode cuszhi.Mode, chunk int, policy string) error {
	// Reject a bad mode or policy before the output file is truncated.
	// -mode auto streams as a format-v5 container: the estimator cascade
	// scores each shard's candidates inside its worker, -auto-policy ranks
	// them, and the winner alone compresses the shard.
	if _, err := cuszhi.New(mode); err != nil {
		return err
	}
	if !(eb > 0) || math.IsInf(eb, 0) {
		return fmt.Errorf("compress: invalid error bound %v", eb)
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var n int64
	opts := []stream.Option{stream.WithMode(mode)}
	if chunk > 0 {
		opts = append(opts, stream.WithChunkPlanes(chunk))
	}
	if policy != "" {
		opts = append(opts, stream.WithAutoPolicy(policy))
	}
	if !abs {
		// Relative bounds stream as a format-v3 container: each shard's
		// absolute bound derives from its own value range, so no pre-pass
		// over the file is needed.
		opts = append(opts, stream.WithRelativeEB())
	}
	err = writeFileAtomic(out, func(of io.Writer) error {
		w, err := stream.NewWriter(of, dims, eb, opts...)
		if err != nil {
			return err
		}
		n, err = io.Copy(w, f)
		if cerr := w.Close(); err == nil { // always Close: releases the worker pool
			err = cerr
		}
		return err
	})
	if err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (CR %.2f, %.3f bits/val, mode %s, streamed)\n",
		in, n, st.Size(), metrics.CR(int(n), int(st.Size())),
		metrics.BitRate(int(n)/4, int(st.Size())), mode)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("i", "", "input compressed file")
	out := fs.String("o", "", "output raw float32 file")
	streaming := fs.Bool("stream", false, "decode chunk-by-chunk through the streaming reader (bounded memory)")
	planes := fs.String("planes", "", "decode only planes lo:hi along the slowest dim (random access via the chunk index)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress: -i and -o are required")
	}
	if *planes != "" {
		if *streaming {
			return fmt.Errorf("decompress: -planes is random access; drop -stream")
		}
		return decompressPlanes(*in, *out, *planes)
	}
	if *streaming {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := stream.NewReader(bufio.NewReaderSize(f, 1<<16))
		if err != nil {
			return err
		}
		defer r.Close()
		var n int64
		if err := writeFileAtomic(*out, func(of io.Writer) error {
			var err error
			n, err = io.Copy(of, r)
			return err
		}); err != nil {
			return err
		}
		fmt.Printf("%s: %d values, dims %v (streamed)\n", *out, n/4, r.Dims())
		return nil
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	data, dims, err := cuszhi.Decompress(blob)
	if err != nil {
		return err
	}
	if err := writeF32(*out, data); err != nil {
		return err
	}
	fmt.Printf("%s: %d values, dims %v\n", *out, len(data), dims)
	return nil
}

// parsePlaneRange parses a "lo:hi" plane range (half-open, lo < hi).
func parsePlaneRange(s string) (lo, hi int, err error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("bad plane range %q (want lo:hi)", s)
	}
	lo, err = strconv.Atoi(s[:i])
	if err == nil {
		hi, err = strconv.Atoi(s[i+1:])
	}
	if err != nil || lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("bad plane range %q (want lo:hi with 0 <= lo < hi)", s)
	}
	return lo, hi, nil
}

// decompressPlanes extracts planes [lo, hi) through the random-access
// reader: on a seekable (v4) container only the covering shards are read
// and decoded; older formats fall back to a scan-built index.
func decompressPlanes(in, out, spec string) error {
	lo, hi, err := parsePlaneRange(spec)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	r, err := stream.OpenReaderAt(f, st.Size())
	if err != nil {
		return err
	}
	vals, err := r.ReadPlanes(nil, lo, hi)
	if err != nil {
		return err
	}
	if err := writeF32(out, vals); err != nil {
		return err
	}
	fmt.Printf("%s: planes %d:%d of dims %v (%d values, %d of %d chunks read)\n",
		out, lo, hi, r.Dims(), len(vals), r.CoveringChunks(lo, hi), r.NumChunks())
	return nil
}

// cmdAppend grows an existing chunked store with more planes of raw
// float32 data. Opening repairs first (any torn tail from a crashed
// writer is truncated at the last CRC-valid frame boundary), and Close
// reseals the store — header and chunk-index footer rewritten and
// fsynced — around the old and new chunks together.
func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	store := fs.String("store", "", "existing chunked container to grow")
	in := fs.String("i", "", "raw float32 file of whole planes to append")
	mode := fs.String("mode", "", "compressor mode for the new chunks (default: continue the store's)")
	fs.Parse(args)
	if *store == "" || *in == "" {
		return fmt.Errorf("append: -store and -i are required")
	}
	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	f, err := os.OpenFile(*store, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var opts []stream.Option
	if *mode != "" {
		opts = append(opts, stream.WithMode(cuszhi.Mode(*mode)))
	}
	w, err := stream.OpenAppend(f, opts...)
	if err != nil {
		return err
	}
	before := w.Planes()
	n, err := io.Copy(w, bufio.NewReaderSize(src, 1<<16))
	if cerr := w.Close(); err == nil { // always Close: releases the worker pool
		err = cerr
	}
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("%s: +%d bytes, planes %d -> %d (%d bytes total)\n",
		*store, n, before, w.Planes(), st.Size())
	return nil
}

// cmdRepair reseals a store a crashed writer left torn: everything past
// the last CRC-valid frame boundary is truncated and the header/footer are
// rewritten to cover exactly the recovered chunks. -dry-run only reports.
func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	in := fs.String("i", "", "chunked container to repair")
	dry := fs.Bool("dry-run", false, "report what repair would do without modifying the file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("repair: -i is required")
	}
	flags := os.O_RDWR
	if *dry {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(*in, flags, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var rec *core.RecoveryInfo
	if *dry {
		rec, err = stream.CheckStore(f)
	} else {
		rec, err = stream.Repair(f)
	}
	if rec != nil {
		action := "repaired:"
		if *dry {
			action = "would repair:"
		}
		if rec.Sealed() {
			action = "sealed:"
		}
		fmt.Printf("%s: %s %d chunks, %d planes valid; %d trailing bytes dropped\n",
			*in, action, len(rec.Entries), rec.Planes, rec.TailBytes())
	}
	return err
}

// scrubJSON is the -json rendering of a stream.ScrubReport: errors become
// strings so the report round-trips through any JSON consumer.
type scrubJSON struct {
	File      string           `json:"file"`
	Clean     bool             `json:"clean"`
	Version   int              `json:"version"`
	SizeBytes int64            `json:"size_bytes"`
	Chunks    int              `json:"chunks"`
	Verified  int              `json:"verified"`
	Damaged   []scrubChunkJSON `json:"damaged,omitempty"`
	FooterErr string           `json:"footer_error,omitempty"`
	HeaderErr string           `json:"header_error,omitempty"`
}

type scrubChunkJSON struct {
	Chunk    int    `json:"chunk"`
	Offset   int64  `json:"offset"`
	PlaneOff int    `json:"plane_off"`
	Planes   int    `json:"planes"`
	Error    string `json:"error"`
}

// cmdScrub deep-verifies a sealed store without decoding it to floats:
// every frame CRC, the footer CRC, frame-vs-footer cross-checks, and
// header consistency. Exit code 0 = clean, 1 = damage found (localized per
// chunk in the output), 2 = the file is not a scrubbable container.
func cmdScrub(args []string) int {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	in := fs.String("i", "", "sealed chunked container to verify")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	retry := fs.Int("retry", 0, "retry transient I/O up to N attempts per read")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "cuszhi: scrub: -i is required")
		return 2
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuszhi: scrub:", err)
		return 2
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuszhi: scrub:", err)
		return 2
	}
	var opts []stream.Option
	if *retry > 1 {
		opts = append(opts, stream.WithRetry(*retry, 10*time.Millisecond))
	}
	rep, err := stream.Scrub(f, st.Size(), opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuszhi: scrub: %s: %v\n", *in, err)
		return 2
	}
	if *jsonOut {
		out := scrubJSON{
			File: *in, Clean: rep.Clean(), Version: rep.Version,
			SizeBytes: rep.SizeBytes, Chunks: rep.Chunks, Verified: rep.Verified,
		}
		for _, d := range rep.Damaged {
			out.Damaged = append(out.Damaged, scrubChunkJSON{
				Chunk: d.Chunk, Offset: d.Offset, PlaneOff: d.PlaneOff,
				Planes: d.Planes, Error: d.Err.Error()})
		}
		if rep.FooterErr != nil {
			out.FooterErr = rep.FooterErr.Error()
		}
		if rep.HeaderErr != nil {
			out.HeaderErr = rep.HeaderErr.Error()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		fmt.Printf("%s: %s\n", *in, rep.Summary())
	}
	if rep.Clean() {
		return 0
	}
	return 1
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("dataset", "", "dataset name: "+strings.Join(datagen.Names(), ", "))
	out := fs.String("o", "", "output raw float32 file")
	dimsStr := fs.String("dims", "", "override dims (optional)")
	seed := fs.Int64("seed", 1, "realization seed")
	full := fs.Bool("full", false, "paper-sized dims")
	fs.Parse(args)
	if *name == "" || *out == "" {
		return fmt.Errorf("gen: -dataset and -o are required")
	}
	var dims []int
	var err error
	if *dimsStr != "" {
		dims, err = parseDims(*dimsStr)
		if err != nil {
			return err
		}
	} else {
		dims, err = datagen.DefaultDims(*name, *full)
		if err != nil {
			return err
		}
	}
	f, err := datagen.Generate(*name, dims, *seed)
	if err != nil {
		return err
	}
	if err := writeF32(*out, f.Data); err != nil {
		return err
	}
	fmt.Printf("%s: %s %v (%d values, %.1f MiB)\n", *out, *name, f.Dims, f.Len(), float64(f.SizeBytes())/(1<<20))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "compressed file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info: -i is required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	hdr, err := cuszhi.Inspect(blob)
	if err != nil {
		return err
	}
	data, dims, err := cuszhi.Decompress(blob)
	if err != nil {
		return err
	}
	lo, hi, rng := metrics.Range(data)
	fmt.Printf("file:   %s (%d bytes, format v%d)\n", *in, len(blob), hdr.Version)
	if hdr.NumChunks > 0 {
		fmt.Printf("chunks: %d (%d planes each)\n", hdr.NumChunks, hdr.ChunkPlanes)
	}
	if len(hdr.ChunkCodecs) > 0 {
		// Heterogeneous (v5) container: per-chunk codec histogram, read
		// from the chunk-index footer without touching any payload.
		names := make([]string, 0, len(hdr.ChunkCodecs))
		for name := range hdr.ChunkCodecs {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s×%d", name, hdr.ChunkCodecs[name]))
		}
		kind := "per-chunk"
		if len(names) > 1 {
			kind = "per-chunk adaptive"
		}
		fmt.Printf("codecs: %s (%s)\n", strings.Join(parts, " "), kind)
	}
	if hdr.HasIndex {
		fmt.Printf("index:  chunk-index footer (seekable; decompress -planes lo:hi)\n")
	}
	if len(hdr.ChunkCRs) > 0 {
		// Per-chunk achieved ratios, from the index footer's frame extents:
		// on adaptive containers this is where the selection's wins and
		// losses show up chunk by chunk.
		parts := make([]string, len(hdr.ChunkCRs))
		for i, cr := range hdr.ChunkCRs {
			parts[i] = fmt.Sprintf("%.1f", cr)
		}
		fmt.Printf("chunk CRs: %s\n", strings.Join(parts, " "))
	}
	fmt.Printf("dims:   %v (%d values)\n", dims, len(data))
	ebKind := "absolute"
	if hdr.RelativeEB {
		ebKind = "value-range relative, per shard"
	}
	fmt.Printf("eb:     %g (%s)\n", hdr.AbsErrorEB, ebKind)
	fmt.Printf("ratio:  %.2f (%.3f bits/val)\n", metrics.CR(4*len(data), len(blob)), metrics.BitRate(len(data), len(blob)))
	fmt.Printf("range:  [%g, %g] (span %g)\n", lo, hi, rng)
	return nil
}
