package zfp

import (
	"testing"
)

func BenchmarkCompressRate8(b *testing.B) {
	data := smoothField(96, 96, 96)
	dims := []int{96, 96, 96}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(dev, data, dims, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressRate8(b *testing.B) {
	data := smoothField(96, 96, 96)
	blob, err := Compress(dev, data, []int{96, 96, 96}, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(dev, blob); err != nil {
			b.Fatal(err)
		}
	}
}
