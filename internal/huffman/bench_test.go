package huffman

import (
	"math/rand"
	"testing"
)

func quantLike(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(128 + rng.NormFloat64()*3)
	}
	return out
}

func BenchmarkEncodeBytes(b *testing.B) {
	data := quantLike(1<<22, 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBytes(dev, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBytes(b *testing.B) {
	data := quantLike(1<<22, 2)
	enc, err := EncodeBytes(dev, data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBytes(dev, enc); err != nil {
			b.Fatal(err)
		}
	}
}
