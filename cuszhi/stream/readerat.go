// Random access into compressed containers: OpenReaderAt builds (or
// loads) a chunk index over an io.ReaderAt and ReadPlanes decodes an
// arbitrary plane range while reading only the shards that cover it.
//
// Seekable (v4/v5) containers carry the index as a footer, so opening one
// touches the header, the fixed 12-byte tail and the index body — no
// payload bytes (for heterogeneous v5 containers the footer also names
// each chunk's codec, so dispatch needs no payload access either). Older
// chunked containers (v2/v3) have no footer; the
// open walks their frame headers once, skipping every payload by offset
// arithmetic, and serves the same API from the scan-built index. One-shot
// v1 blobs have a single monolithic payload, so the first ReadPlanes
// decodes the whole field once and later calls slice the cached
// reconstruction.
package stream

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/pipeline"
)

// maxFrameHeaderLen bounds a chunk frame header (offset + up to 8 dim
// uvarints + codec-mode byte + codec-ID byte (v5) + 8-byte range +
// payload-length uvarint + CRC), so the index scan can fetch one header
// with a single small ReadAt.
const maxFrameHeaderLen = 96

// ReaderAt serves random-access plane reads from a compressed container.
// It is safe for concurrent use: the index is immutable after Open and
// every ReadPlanes call works on its own buffers.
type ReaderAt struct {
	src     io.ReaderAt
	size    int64
	dev     *gpusim.Device
	version int
	dims    []int
	ps      int // elements per plane
	eb      float64
	relEB   bool

	// Chunked containers (v2–v5).
	h        *core.ChunkedInfo
	index    []core.IndexEntry
	frameEnd []int64 // frame i spans [index[i].FrameOff, frameEnd[i])

	// One-shot (v1) blobs: the whole field, decoded once on demand.
	v1once  sync.Once
	v1field []float32
	v1err   error

	// Degraded mode (WithDegraded): damaged chunks are filled, not fatal.
	degraded bool
	fill     float32
}

// countReader counts the bytes an io.Reader delivers, so the open can
// learn the variable-length header's size.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// OpenReaderAt indexes the container held by src (size bytes long) for
// random access. v4 containers are opened from their chunk-index footer
// without touching any chunk payload; v2/v3 containers get an equivalent
// index from one scan of their frame headers; v1 blobs fall back to a
// whole-field decode on first use. WithWorkers, WithRetry (transient-I/O
// retry on every read, index loads included), WithDegraded and
// WithFillValue affect a ReaderAt; the writer-side options are ignored.
func OpenReaderAt(src io.ReaderAt, size int64, opt ...Option) (*ReaderAt, error) {
	cfg := newConfig(opt)
	src = cfg.retry.WrapReaderAt(src)
	var pre [5]byte
	if size < int64(len(pre)) {
		return nil, core.ErrCorrupt
	}
	if err := core.ReadFullAt(src, pre[:], 0); err != nil {
		return nil, core.ErrCorrupt
	}
	version, ok := core.SniffVersion(pre[:])
	if !ok {
		return nil, core.ErrCorrupt
	}
	r := &ReaderAt{src: src, size: size, dev: cfg.dev, version: version,
		degraded: cfg.degraded, fill: cfg.fill}
	if version == 1 {
		// Parse dims/eb from the prefix; the payload stays untouched until
		// the first ReadPlanes.
		head := make([]byte, min(size, 4096))
		if err := core.ReadFullAt(src, head, 0); err != nil {
			return nil, core.ErrCorrupt
		}
		info, err := core.Inspect(head)
		if err != nil {
			return nil, err
		}
		r.dims, r.eb = info.Dims, info.EB
		r.ps = planeElems(r.dims)
		return r, nil
	}
	cr := &countReader{r: io.NewSectionReader(src, 0, size)}
	h, err := core.ReadChunkedHeader(cr)
	if err != nil {
		return nil, err
	}
	r.h, r.dims, r.eb, r.relEB = h, h.Dims, h.EB, h.RelEB
	r.ps = planeElems(r.dims)
	headerLen := cr.n
	if h.Version >= 4 {
		err = r.loadIndex(headerLen)
	} else {
		err = r.scanIndex(headerLen)
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

// loadIndex reads a v4 container's chunk index from its footer: the fixed
// tail at EOF yields the backpointer, the index body yields the entries.
// No chunk payload bytes are read.
func (r *ReaderAt) loadIndex(headerLen int64) error {
	if r.size < headerLen+core.IndexTailLen {
		return core.ErrCorrupt
	}
	var tail [core.IndexTailLen]byte
	if err := core.ReadFullAt(r.src, tail[:], r.size-core.IndexTailLen); err != nil {
		return core.ErrCorrupt
	}
	footerOff, err := core.ParseChunkIndexTail(tail[:])
	if err != nil {
		return err
	}
	if footerOff < headerLen || footerOff > r.size-core.IndexTailLen {
		return core.ErrCorrupt
	}
	regionLen := r.size - core.IndexTailLen - footerOff
	// Three uvarints per entry plus the count and CRC: a region wildly
	// larger than that is hostile, not an index.
	if regionLen > int64(r.h.NumChunks)*30+64 {
		return core.ErrCorrupt
	}
	region := make([]byte, regionLen)
	if err := core.ReadFullAt(r.src, region, footerOff); err != nil {
		return core.ErrCorrupt
	}
	entries, err := core.ParseChunkIndex(region, r.h, footerOff)
	if err != nil {
		return err
	}
	if entries[0].FrameOff != headerLen {
		return core.ErrCorrupt
	}
	return r.setIndex(entries, footerOff)
}

// scanIndex builds the index for a v2/v3 container by walking its frame
// headers, skipping every payload by offset arithmetic.
func (r *ReaderAt) scanIndex(headerLen int64) error {
	entries := make([]core.IndexEntry, 0, r.h.NumChunks)
	off := headerLen
	nextPlane := 0
	var buf [maxFrameHeaderLen]byte
	for i := 0; i < r.h.NumChunks; i++ {
		want := min(int64(len(buf)), r.size-off)
		if want <= 0 {
			return core.ErrCorrupt
		}
		if err := core.ReadFullAt(r.src, buf[:want], off); err != nil {
			return core.ErrCorrupt
		}
		c, payStart, plen, err := core.ScanFrameHeader(buf[:want], r.h)
		if err != nil {
			return err
		}
		if c.Offset != nextPlane {
			return core.ErrCorrupt
		}
		entries = append(entries, core.IndexEntry{FrameOff: off, PlaneOff: c.Offset, Planes: c.Dims[0]})
		off += int64(payStart) + int64(plen)
		if off > r.size {
			return core.ErrCorrupt
		}
		nextPlane += c.Dims[0]
	}
	if nextPlane != r.h.Dims[0] || off != r.size {
		return core.ErrCorrupt
	}
	return r.setIndex(entries, off)
}

// setIndex installs the entries and derives each frame's end offset (the
// next frame's start; the last frame ends where the frames end).
func (r *ReaderAt) setIndex(entries []core.IndexEntry, framesEnd int64) error {
	r.index = entries
	r.frameEnd = make([]int64, len(entries))
	for i := range entries {
		if i+1 < len(entries) {
			r.frameEnd[i] = entries[i+1].FrameOff
		} else {
			r.frameEnd[i] = framesEnd
		}
		if r.frameEnd[i] <= entries[i].FrameOff {
			return core.ErrCorrupt
		}
	}
	return nil
}

// Dims returns the field's dims, slowest first.
func (r *ReaderAt) Dims() []int { return append([]int(nil), r.dims...) }

// EB returns the container's error bound: absolute, or value-range-
// relative when RelativeEB reports true.
func (r *ReaderAt) EB() float64 { return r.eb }

// RelativeEB reports whether the container's bound is value-range-relative,
// resolved per shard from each shard's own range.
func (r *ReaderAt) RelativeEB() bool { return r.relEB }

// Version reports the container's format version.
func (r *ReaderAt) Version() int { return r.version }

// NumChunks reports how many independently decodable shards the container
// holds (0 for a one-shot v1 blob).
func (r *ReaderAt) NumChunks() int { return len(r.index) }

// CodecHistogram counts the container's chunks per codec name. For
// heterogeneous (v5) containers the counts come straight from the chunk
// index — no payload bytes are read; other versions return nil (their
// chunks share the container-level mode).
func (r *ReaderAt) CodecHistogram() map[string]int {
	if r.version < 5 {
		return nil
	}
	hist := make(map[string]int)
	for _, e := range r.index {
		if cd, ok := core.CodecByID(e.Codec); ok {
			hist[cd.Name()]++
		}
	}
	return hist
}

// coveringRange returns the run [a, b) of index entries whose shards
// overlap planes [lo, hi). The index tiles [0, dims[0]) contiguously, so
// the covering shards are always one run.
func (r *ReaderAt) coveringRange(lo, hi int) (a, b int) {
	a = sort.Search(len(r.index), func(i int) bool { return r.index[i].PlaneOff+r.index[i].Planes > lo })
	b = sort.Search(len(r.index), func(i int) bool { return r.index[i].PlaneOff >= hi })
	return a, b
}

// CoveringChunks reports how many shards a ReadPlanes(lo, hi) call would
// decode (0 for a one-shot v1 blob, which decodes whole).
func (r *ReaderAt) CoveringChunks(lo, hi int) int {
	a, b := r.coveringRange(lo, hi)
	return b - a
}

// ReadPlanes decodes planes [lo, hi) of the field into dst (grown if its
// capacity is short) and returns it. Only the ⌈(hi−lo+skew)/chunkPlanes⌉
// shards covering the range are read and decoded, concurrently, each
// through a pooled codec context; the result is trimmed to exactly the
// requested planes. Calls may run concurrently as long as their dst
// buffers are distinct.
func (r *ReaderAt) ReadPlanes(dst []float32, lo, hi int) ([]float32, error) {
	if lo < 0 || hi > r.dims[0] || lo >= hi {
		return nil, fmt.Errorf("stream: plane range %d:%d outside field with %d planes", lo, hi, r.dims[0])
	}
	need := (hi - lo) * r.ps
	if cap(dst) < need {
		dst = make([]float32, need)
	} else {
		dst = dst[:need]
	}
	if r.version == 1 {
		field, err := r.v1Field()
		if err != nil {
			return nil, err
		}
		copy(dst, field[lo*r.ps:hi*r.ps])
		return dst, nil
	}
	a, b := r.coveringRange(lo, hi)
	if r.degraded {
		return r.readPlanesDegraded(dst, a, b, lo, hi)
	}
	_, err := pipeline.MapWorker(r.dev.Workers(), b-a, func(_, j int) (struct{}, error) {
		return struct{}{}, r.decodeChunkInto(dst, a+j, lo, hi)
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// readPlanesDegraded decodes the covering chunks [a, b) like ReadPlanes
// but survives damage: a chunk that fails to read, verify or decode has
// its planes filled with the sentinel and is recorded instead of aborting
// the call. When anything was filled the error is a *DamageReport, so the
// data is never returned unflagged.
func (r *ReaderAt) readPlanesDegraded(dst []float32, a, b, lo, hi int) ([]float32, error) {
	var mu sync.Mutex
	var dmg []ChunkDamage
	_, _ = pipeline.MapWorker(r.dev.Workers(), b-a, func(_, j int) (struct{}, error) {
		i := a + j
		// Record the bare cause: ChunkDamage carries the chunk index and
		// offset itself, so the locator wrap would only double the prefix.
		if err := r.decodeChunk(dst, i, lo, hi); err != nil {
			e := r.index[i]
			s0, s1 := clampSpan(e.PlaneOff, e.PlaneOff+e.Planes, lo, hi)
			for k := (s0 - lo) * r.ps; k < (s1-lo)*r.ps; k++ {
				dst[k] = r.fill
			}
			mu.Lock()
			dmg = append(dmg, ChunkDamage{
				Chunk: i, Offset: e.FrameOff, PlaneOff: s0, Planes: s1 - s0, Err: err})
			mu.Unlock()
		}
		return struct{}{}, nil
	})
	if len(dmg) > 0 {
		sort.Slice(dmg, func(x, y int) bool { return dmg[x].Chunk < dmg[y].Chunk })
		return dst, &DamageReport{Chunks: dmg}
	}
	return dst, nil
}

// decodeChunkInto reads, verifies and decodes chunk i, copying the planes
// it contributes to [lo, hi) into their place in dst. Failures carry the
// chunk's index and byte offset, so damage is localizable from the error
// text alone.
func (r *ReaderAt) decodeChunkInto(dst []float32, i, lo, hi int) error {
	if err := r.decodeChunk(dst, i, lo, hi); err != nil {
		return fmt.Errorf("stream: chunk %d @0x%x: %w", i, r.index[i].FrameOff, err)
	}
	return nil
}

func (r *ReaderAt) decodeChunk(dst []float32, i, lo, hi int) error {
	e := r.index[i]
	buf := make([]byte, r.frameEnd[i]-e.FrameOff)
	if err := core.ReadFullAt(r.src, buf, e.FrameOff); err != nil {
		if core.IsTransient(err) {
			// The storage failed, not the format: surface the I/O error (the
			// retry budget, if any, is already spent) so callers can tell a
			// flaky device from a rotten store.
			return err
		}
		return core.ErrCorrupt // truncation: the frame cannot be complete
	}
	br := bytes.NewReader(buf)
	c, payload, err := core.ReadChunkFrame(br, r.h)
	if err != nil {
		return err
	}
	if c.CodecID != e.Codec {
		return fmt.Errorf("chunk index codec %s disagrees with frame codec %s at plane %d: %w",
			core.CodecLabel(e.Codec), core.CodecLabel(c.CodecID), e.PlaneOff, core.ErrCorrupt)
	}
	if br.Len() != 0 || c.Offset != e.PlaneOff || c.Dims[0] != e.Planes {
		return fmt.Errorf("chunk index disagrees with frame at plane %d: %w", e.PlaneOff, core.ErrCorrupt)
	}
	ctx := arena.Get()
	defer arena.Put(ctx)
	recon, err := core.DecompressShardCtx(ctx, r.dev, c, payload)
	if err != nil {
		return err
	}
	s0, s1 := clampSpan(e.PlaneOff, e.PlaneOff+e.Planes, lo, hi)
	copy(dst[(s0-lo)*r.ps:(s1-lo)*r.ps], recon[(s0-e.PlaneOff)*r.ps:(s1-e.PlaneOff)*r.ps])
	return nil
}

// clampSpan intersects the plane span [s0, s1) with the request [lo, hi).
func clampSpan(s0, s1, lo, hi int) (int, int) {
	return max(s0, lo), min(s1, hi)
}

// v1Field decodes a one-shot blob's whole field once, caching it for later
// ReadPlanes calls.
func (r *ReaderAt) v1Field() ([]float32, error) {
	r.v1once.Do(func() {
		blob := make([]byte, r.size)
		if err := core.ReadFullAt(r.src, blob, 0); err != nil {
			r.v1err = core.ErrCorrupt
			return
		}
		field, dims, err := core.Decompress(r.dev, blob)
		if err != nil {
			r.v1err = err
			return
		}
		if len(dims) != len(r.dims) || dims[0] != r.dims[0] {
			r.v1err = core.ErrCorrupt
			return
		}
		r.v1field = field
	})
	return r.v1field, r.v1err
}

// planeElems returns the element count of one plane along dims[0].
func planeElems(dims []int) int {
	ps := 1
	for _, d := range dims[1:] {
		ps *= d
	}
	return ps
}

// ReadPlanesAt is a one-shot convenience: it opens src and reads planes
// [lo, hi) in a single call. Callers issuing repeated reads should keep
// the ReaderAt instead, amortizing the index load.
func ReadPlanesAt(src io.ReaderAt, size int64, lo, hi int, opt ...Option) ([]float32, []int, error) {
	r, err := OpenReaderAt(src, size, opt...)
	if err != nil {
		return nil, nil, err
	}
	vals, err := r.ReadPlanes(nil, lo, hi)
	if err != nil {
		return nil, nil, err
	}
	return vals, r.Dims(), nil
}
