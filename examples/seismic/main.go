// Seismic: an RTM-like streaming pipeline. Reverse-time migration writes a
// wavefield snapshot every few timesteps and must compress in-line, so the
// throughput-preferred mode (hi-tp) is the natural fit; this example
// streams a sequence of evolving snapshots, compresses each, and reports
// aggregate ratio and sustained throughput.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/cuszhi"
)

const (
	snapshots = 6
	relEB     = 1e-2
)

func main() {
	c, err := cuszhi.New(cuszhi.ModeTP)
	if err != nil {
		log.Fatal(err)
	}
	dims := []int{112, 112, 64}

	var inBytes, outBytes int
	var compTime time.Duration
	fmt.Printf("streaming %d RTM-like snapshots %v at rel eb %g (mode %s)\n\n", snapshots, dims, relEB, c.Mode())
	fmt.Printf("%-10s %10s %10s %10s\n", "snapshot", "ratio", "PSNR", "ms")
	for ts := 0; ts < snapshots; ts++ {
		// Each timestep is a different realization of the wavefield (the
		// fronts move); in production this would come from the solver.
		data, fdims, err := cuszhi.GenerateDataset("rtm", dims, int64(100+ts))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		blob, err := c.Compress(data, fdims, relEB)
		dt := time.Since(t0)
		if err != nil {
			log.Fatal(err)
		}
		recon, _, err := c.Decompress(blob)
		if err != nil {
			log.Fatal(err)
		}
		st := cuszhi.Evaluate(data, blob, recon, cuszhi.AbsEB(data, relEB))
		if !st.WithinEB {
			log.Fatalf("snapshot %d: bound violated", ts)
		}
		inBytes += st.OrigBytes
		outBytes += st.CompBytes
		compTime += dt
		fmt.Printf("t=%-8d %10.1f %10.1f %10.1f\n", ts, st.Ratio, st.PSNR, dt.Seconds()*1e3)
	}
	fmt.Printf("\naggregate: %.1f MiB -> %.1f MiB (ratio %.1f), %.1f MiB/s sustained compression\n",
		float64(inBytes)/(1<<20), float64(outBytes)/(1<<20),
		float64(inBytes)/float64(outBytes),
		float64(inBytes)/(1<<20)/compTime.Seconds())
}
