package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// estimatorCases are the (field, bound) pairs the estimator tests sweep:
// the four benchmark stand-in datasets at two relative bounds, plus the
// smooth/noisy shard halves of the auto-mode benchmark field, a linear
// ramp, and a tiny input that falls back to whole-data sampling.
type estimatorCase struct {
	name string
	data []float32
	dims []int
	eb   float64
}

func estimatorCases(t testing.TB) []estimatorCase {
	var cases []estimatorCase
	for _, ds := range []string{"miranda", "jhtdb", "nyx", "cesm"} {
		dims := []int{48, 64, 64}
		if ds == "cesm" {
			dims = []int{128, 256}
		}
		f, err := datagen.Generate(ds, dims, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range []float64{1e-2, 1e-3} {
			cases = append(cases, estimatorCase{
				fmt.Sprintf("%s/%g", ds, rel), f.Data, f.Dims, metrics.AbsEB(f.Data, rel)})
		}
	}
	dims := []int{32, 32, 32}
	n := 32 * 32 * 32
	smooth := make([]float32, n)
	noise := make([]float32, n)
	rng := rand.New(rand.NewSource(7))
	for z := 0; z < 32; z++ {
		for i := 0; i < 1024; i++ {
			smooth[z*1024+i] = float32(z)*0.5 + float32(i%32)*0.125 + float32(i/32)*0.25
			noise[z*1024+i] = float32(rng.NormFloat64() * 10)
		}
	}
	tiny := make([]float32, 64)
	for i := range tiny {
		tiny[i] = float32(i)
	}
	return append(cases,
		estimatorCase{"smooth-shard", smooth, dims, 2.56e-1},
		estimatorCase{"noise-shard", noise, dims, 8e-1},
		estimatorCase{"ramp", rampField(32 * 24 * 24), []int{32, 24, 24}, 0.02},
		estimatorCase{"tiny4", tiny, []int{4, 4, 4}, 1e-3},
	)
}

// TestEstimatorPickNearTrialPick is the estimator-fidelity property: on
// every case, compressing the full input with the estimator's pick must
// cost at most 10% more bytes than compressing it with the exhaustive
// trial pick (every candidate compressed for real, smallest wins). The
// estimator does not have to agree with the trial ranking — close seconds
// are fine — it must not pick a materially worse codec.
func TestEstimatorPickNearTrialPick(t *testing.T) {
	ctx := arena.NewCtx()
	for _, c := range estimatorCases(t) {
		sel, err := AutoSelect(dev, c.data, c.dims, c.eb)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		pickBytes := -1
		trialBest := -1
		for _, cand := range autoSelectCandidates() {
			ctx.Reset()
			blob, err := cand.Compress(ctx, dev, c.data, c.dims, c.eb)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, cand.Name(), err)
			}
			if trialBest < 0 || len(blob) < trialBest {
				trialBest = len(blob)
			}
			if cand.ID() == sel.Codec.ID() {
				pickBytes = len(blob)
			}
		}
		ctx.Reset()
		if pickBytes < 0 {
			t.Fatalf("%s: estimator pick %s not among candidates", c.name, sel.Codec.Name())
		}
		if float64(pickBytes) > 1.10*float64(trialBest) {
			t.Errorf("%s: estimator pick %s compresses to %d bytes, trial best is %d (+%.1f%%, want <= +10%%)",
				c.name, sel.Codec.Name(), pickBytes, trialBest,
				100*(float64(pickBytes)/float64(trialBest)-1))
		}
	}
}

// TestEstimatorPerformsNoTrialCompressions guards the whole point of the
// estimator cascade: selection — one-shot and per-shard, under every
// policy — must never fall back to trial-compressing candidates. Only
// trialScoreSlab (the test-side reference scorer) increments the counter.
func TestEstimatorPerformsNoTrialCompressions(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{48, 64, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	ctx := arena.NewCtx()
	before := trialCompressions.Load()
	if _, err := AutoSelect(dev, f.Data, f.Dims, eb); err != nil {
		t.Fatal(err)
	}
	for _, pol := range []SelectionPolicy{BestRatioPolicy(), ThroughputPolicy(), RatioFloorPolicy(10)} {
		if _, _, err := SelectShardCodecPolicy(ctx, dev, f.Data, f.Dims, eb, pol); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
	if got := trialCompressions.Load(); got != before {
		t.Fatalf("selection performed %d trial compressions, want 0", got-before)
	}

	// The reference scorer still works — and is what increments the counter.
	slab, slabDims := sampleSlab(f.Data, f.Dims, 0.1)
	sizes, err := trialScoreSlab(ctx, dev, slab, slabDims, eb)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 6 {
		t.Fatalf("trial sizes: %v", sizes)
	}
	if got := trialCompressions.Load() - before; got != 6 {
		t.Fatalf("trialScoreSlab counted %d trials, want 6", got)
	}
}

// TestEstimatorAgainstTrialRankingOnSlab cross-checks the two scorers on
// the shared slab: the estimator's best assembly-or-backend must be the
// trial scorer's best or within 10% of it in trial bytes. This pins the
// satellite requirement that both scorers consume one pre-sampled slab
// (trialScoreSlab takes the slab, not the field, so there is no
// per-candidate re-sampling anywhere).
func TestEstimatorAgainstTrialRankingOnSlab(t *testing.T) {
	ctx := arena.NewCtx()
	for _, c := range estimatorCases(t) {
		ests, err := estimateCandidates(ctx, dev, c.data, c.dims, c.eb, 0.1, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		best := 0
		for i, e := range ests {
			if e.Bytes < ests[best].Bytes {
				best = i
			}
		}
		slab, slabDims := sampleSlab(c.data, c.dims, 0.1)
		sizes, err := trialScoreSlab(ctx, dev, slab, slabDims, c.eb)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		trialBest := 0
		for i, s := range sizes {
			if s < sizes[trialBest] {
				trialBest = i
			}
		}
		if float64(sizes[best]) > 1.10*float64(sizes[trialBest]) {
			t.Errorf("%s: estimator best %s costs %d trial bytes, trial best %s costs %d",
				c.name, ests[best].Codec.Name(), sizes[best],
				ests[trialBest].Codec.Name(), sizes[trialBest])
		}
	}
}

// TestEstimateCandidatesShape pins the estimate records themselves: six
// candidates in fixed order, positive sizes, ratios consistent with Bytes,
// and Probed set exactly on the backend candidates.
func TestEstimateCandidatesShape(t *testing.T) {
	data := rampField(32 * 24 * 24)
	ctx := arena.NewCtx()
	ests, err := estimateCandidates(ctx, dev, data, []int{32, 24, 24}, 0.02, 0.25, len(data)/16)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"hi-cr", "hi-tp", "cusz-l", "fzgpu", "szp", "szx"}
	if len(ests) != len(wantNames) {
		t.Fatalf("got %d estimates", len(ests))
	}
	raw := float64(4 * len(data))
	for i, e := range ests {
		if e.Codec.Name() != wantNames[i] {
			t.Fatalf("estimate %d is %s, want %s", i, e.Codec.Name(), wantNames[i])
		}
		if e.Bytes <= 0 {
			t.Fatalf("%s: estimated %d bytes", e.Codec.Name(), e.Bytes)
		}
		if want := raw / float64(e.Bytes); e.Ratio != want {
			t.Fatalf("%s: ratio %v, want %v", e.Codec.Name(), e.Ratio, want)
		}
		if backend := i >= 3; e.Probed != backend {
			t.Fatalf("%s: Probed = %v", e.Codec.Name(), e.Probed)
		}
	}
}

// TestCropSlab pins the estimator's analysis budget: oversized slabs are
// center-cropped in their trailing dims only (full z extent, original
// rank), tiny budgets clamp at one Hi block extent, and within-budget or
// rank-1 slabs pass through untouched.
func TestCropSlab(t *testing.T) {
	ctx := arena.NewCtx()
	dims := []int{17, 64, 64}
	slab := make([]float32, 17*64*64)
	for i := range slab {
		slab[i] = float32(i)
	}
	crop, cdims := cropSlab(ctx, slab, dims, len(slab)/4)
	if cdims[0] != 17 || len(cdims) != 3 {
		t.Fatalf("crop dims = %v", cdims)
	}
	if cdims[1] >= 64 || cdims[2] >= 64 || cdims[1] < 17 || cdims[2] < 17 {
		t.Fatalf("crop extents = %v", cdims)
	}
	if len(crop) != cdims[0]*cdims[1]*cdims[2] {
		t.Fatalf("crop len %d for dims %v", len(crop), cdims)
	}
	// The crop is the center window: element (z, y, x) of the crop equals
	// element (z, y0+y, x0+x) of the slab.
	y0, x0 := (64-cdims[1])/2, (64-cdims[2])/2
	for z := 0; z < cdims[0]; z += 5 {
		for y := 0; y < cdims[1]; y += 7 {
			for x := 0; x < cdims[2]; x += 7 {
				want := slab[(z*64+y0+y)*64+x0+x]
				got := crop[(z*cdims[1]+y)*cdims[2]+x]
				if got != want {
					t.Fatalf("crop[%d,%d,%d] = %v, want %v", z, y, x, got, want)
				}
			}
		}
	}
	// Within budget: untouched.
	same, sdims := cropSlab(ctx, slab, dims, len(slab))
	if &same[0] != &slab[0] || sdims[1] != 64 {
		t.Fatal("within-budget slab must pass through")
	}
	// Tiny budget clamps at one block extent per axis.
	tiny, tdims := cropSlab(ctx, slab, dims, 1)
	if tdims[1] != 17 || tdims[2] != 17 || len(tiny) != 17*17*17 {
		t.Fatalf("tiny crop = %v (%d)", tdims, len(tiny))
	}
	// Rank-1 passes through.
	line := make([]float32, 500)
	l, ldims := cropSlab(ctx, line, []int{500}, 10)
	if len(l) != 500 || ldims[0] != 500 {
		t.Fatal("rank-1 slab must pass through")
	}
}

// TestEstimatorCalibrationReport prints estimator-vs-actual sizes for
// every case and candidate — the table the calibration constants in
// estimate.go were fitted against. It only fails if an estimate is absurd
// (off by more than 8x): the ranking tests above are the real guard; this
// keeps the table one `-run TestEstimatorCalibrationReport -v` away.
func TestEstimatorCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration table")
	}
	ctx := arena.NewCtx()
	for _, c := range estimatorCases(t) {
		ests, err := estimateCandidates(ctx, dev, c.data, c.dims, c.eb, 0.25, len(c.data)/10)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		t.Logf("== %s (n=%d)", c.name, len(c.data))
		for _, e := range ests {
			ctx.Reset()
			blob, err := e.Codec.Compress(ctx, dev, c.data, c.dims, c.eb)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, e.Codec.Name(), err)
			}
			delta := 100 * (float64(e.Bytes) - float64(len(blob))) / float64(len(blob))
			t.Logf("  %-8s est=%8d actual=%8d  delta=%+6.1f%%", e.Codec.Name(), e.Bytes, len(blob), delta)
			if float64(e.Bytes) > 8*float64(len(blob)) || float64(e.Bytes) < float64(len(blob))/8 {
				t.Errorf("%s/%s: estimate %d absurdly far from actual %d", c.name, e.Codec.Name(), e.Bytes, len(blob))
			}
			ctx.Reset()
		}
	}
}

// BenchmarkSelectShardCodec measures the per-shard selection cost alone —
// the overhead auto mode pays over a fixed mode before the winner
// compresses the shard.
func BenchmarkSelectShardCodec(b *testing.B) {
	dims := []int{32, 256, 256}
	data := make([]float32, 32*256*256)
	for i := range data {
		data[i] = float32(i % 97)
	}
	dev1 := gpusim.New(1)
	ctx := arena.NewCtx()
	if _, err := SelectShardCodec(ctx, dev1, data, dims, 0.05); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectShardCodec(ctx, dev1, data, dims, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
