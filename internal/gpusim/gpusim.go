// Package gpusim simulates the GPU execution model that cuSZ-Hi targets.
//
// CUDA organizes work as a grid of thread blocks; each block owns a chunk of
// data (held in shared memory) and blocks execute independently. This package
// reproduces that decomposition with a fixed worker pool: a "kernel launch"
// enumerates block indices and runs the block body on the pool. Algorithms
// written against Device.Launch keep the exact parallel structure of the
// paper's kernels — per-block independence, sequential kernel phases — with
// goroutines standing in for streaming multiprocessors.
package gpusim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Device is a simulated accelerator with a fixed degree of parallelism.
type Device struct {
	workers int
}

// Default is the process-wide device sized to the available CPUs.
var Default = New(0)

// New returns a Device with the given worker count; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{workers: workers}
}

// Workers reports the device's parallel width.
func (d *Device) Workers() int { return d.workers }

// Launch runs body(block) for every block index in [0, blocks), distributing
// blocks across the worker pool. It corresponds to a CUDA kernel launch with
// a 1-D grid and returns when all blocks have completed (implicit device
// synchronization).
func (d *Device) Launch(blocks int, body func(block int)) {
	if blocks <= 0 {
		return
	}
	nw := d.workers
	if nw > blocks {
		nw = blocks
	}
	if nw <= 1 {
		for b := 0; b < blocks; b++ {
			body(b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				body(b)
			}
		}()
	}
	wg.Wait()
}

// Launch3D runs body over a 3-D grid of blocks, mirroring dim3 grids.
// bz is the slowest dimension, bx the fastest.
func (d *Device) Launch3D(bz, by, bx int, body func(z, y, x int)) {
	if bz <= 0 || by <= 0 || bx <= 0 {
		return
	}
	total := bz * by * bx
	d.Launch(total, func(b int) {
		x := b % bx
		y := (b / bx) % by
		z := b / (bx * by)
		body(z, y, x)
	})
}

// LaunchChunks splits n items into contiguous chunks of at most chunk items
// and runs body(lo, hi) per chunk in parallel. It is the 1-D "grid-stride"
// pattern used by the encoding kernels.
func (d *Device) LaunchChunks(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = (n + d.workers - 1) / d.workers
		if chunk == 0 {
			chunk = 1
		}
	}
	blocks := (n + chunk - 1) / chunk
	d.Launch(blocks, func(b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

// Reduce computes a parallel reduction of per-block partial results.
// body(block) returns a partial value; combine folds partials together.
// Partials are combined in block order, so non-commutative combines are safe.
func Reduce[T any](d *Device, blocks int, body func(block int) T, combine func(a, b T) T) T {
	var zero T
	if blocks <= 0 {
		return zero
	}
	partial := make([]T, blocks)
	d.Launch(blocks, func(b int) { partial[b] = body(b) })
	acc := partial[0]
	for _, p := range partial[1:] {
		acc = combine(acc, p)
	}
	return acc
}
