package bitcomp

import (
	"errors"
	"testing"

	"repro/internal/bitio"
)

// TestDecompressHostileDeclaredLength pins the wire-length cap on the
// header: lengths past the shared ceiling must fail as corrupt before any
// conversion, and a huge varint that consumes the whole container must not
// be mistaken for the empty stream.
func TestDecompressHostileDeclaredLength(t *testing.T) {
	for _, declared := range []uint64{1 << 63, uint64(bitio.MaxWireLen) + 1} {
		blob := bitio.AppendUvarint(nil, declared)
		blob = append(blob, modeRaw)
		out, err := Decompress(dev, blob)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("declared=%d: got (%d bytes, %v), want ErrCorrupt", declared, len(out), err)
		}
		// Header-only container (no mode byte): the huge declared length
		// must not take the "empty stream" success path.
		hdrOnly := bitio.AppendUvarint(nil, declared)
		if out, err := Decompress(dev, hdrOnly); err == nil {
			t.Fatalf("header-only declared=%d: got (%d bytes, nil), want error", declared, len(out))
		}
	}
}
