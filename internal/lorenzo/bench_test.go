package lorenzo

import (
	"testing"
)

func BenchmarkCompress(b *testing.B) {
	dims := []int{96, 96, 96}
	data := smoothField(dims, 42)
	g := NewGrid(dims)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(dev, data, g, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	dims := []int{96, 96, 96}
	data := smoothField(dims, 42)
	g := NewGrid(dims)
	res, err := Compress(dev, data, g, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(dev, res, g, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
