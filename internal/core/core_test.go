package core

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func allModes() []Options {
	return []Options{HiCR(), HiTP(), CuszI(), CuszIB(), CuszL()}
}

func roundTrip(t *testing.T, data []float32, dims []int, eb float64, opts Options) []byte {
	t.Helper()
	blob, err := Compress(dev, data, dims, eb, opts)
	if err != nil {
		t.Fatalf("%s: Compress: %v", opts.Name, err)
	}
	recon, gotDims, err := Decompress(dev, blob)
	if err != nil {
		t.Fatalf("%s: Decompress: %v", opts.Name, err)
	}
	if len(gotDims) != len(dims) {
		t.Fatalf("%s: dims %v != %v", opts.Name, gotDims, dims)
	}
	for i := range dims {
		if gotDims[i] != dims[i] {
			t.Fatalf("%s: dims %v != %v", opts.Name, gotDims, dims)
		}
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("%s: bound violated at %d: %v vs %v (eb=%v)", opts.Name, i, data[i], recon[i], eb)
	}
	return blob
}

func TestRoundTripAllModesAllDatasets(t *testing.T) {
	for _, name := range []string{"miranda", "nyx", "cesm"} {
		f, err := datagen.Generate(name, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Shrink for test speed.
		dims := make([]int, len(f.Dims))
		for i, d := range f.Dims {
			dims[i] = d / 2
		}
		small, err := datagen.Generate(name, dims, 1)
		if err != nil {
			t.Fatal(err)
		}
		eb := metrics.AbsEB(small.Data, 1e-3)
		for _, opts := range allModes() {
			roundTrip(t, small.Data, small.Dims, eb, opts)
		}
	}
}

func TestHiCRBeatsBaselinesOnSmoothData(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{48, 64, 64}, 2)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	sizes := map[string]int{}
	for _, opts := range allModes() {
		blob := roundTrip(t, f.Data, f.Dims, eb, opts)
		sizes[opts.Name] = len(blob)
	}
	// The headline claim of the paper, in miniature: Hi-CR must beat the
	// open-source baselines (cuSZ-I, cuSZ-L).
	if sizes["cuSZ-Hi-CR"] >= sizes["cuSZ-I"] {
		t.Fatalf("Hi-CR (%d) should beat cuSZ-I (%d)", sizes["cuSZ-Hi-CR"], sizes["cuSZ-I"])
	}
	if sizes["cuSZ-Hi-CR"] >= sizes["cuSZ-L"] {
		t.Fatalf("Hi-CR (%d) should beat cuSZ-L (%d)", sizes["cuSZ-Hi-CR"], sizes["cuSZ-L"])
	}
}

func TestAblationVariantsRoundTrip(t *testing.T) {
	f, err := datagen.Generate("nyx", []int{48, 48, 48}, 3)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	variants := AblationVariants()
	if len(variants) != 5 {
		t.Fatalf("expected 5 ablation variants, got %d", len(variants))
	}
	prevSize := 1 << 62
	improved := 0
	for _, v := range variants {
		blob := roundTrip(t, f.Data, f.Dims, eb, v)
		if len(blob) < prevSize {
			improved++
		}
		prevSize = len(blob)
	}
	// The stack should be broadly monotone: most increments help.
	if improved < 3 {
		t.Fatalf("only %d/4 ablation increments improved size", improved)
	}
}

func TestRoundTrip2D(t *testing.T) {
	f, err := datagen.Generate("cesm", []int{128, 256}, 4)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-3)
	for _, opts := range allModes() {
		roundTrip(t, f.Data, f.Dims, eb, opts)
	}
}

func TestCompressValidation(t *testing.T) {
	data := make([]float32, 8)
	if _, err := Compress(dev, data, []int{2, 2, 2}, 0, HiCR()); err == nil {
		t.Fatal("want eb error")
	}
	if _, err := Compress(dev, data, []int{3, 3}, 1e-3, HiCR()); err == nil {
		t.Fatal("want dims error")
	}
	if _, err := Compress(dev, data, []int{2, -4}, 1e-3, HiCR()); err == nil {
		t.Fatal("want negative dim error")
	}
	bad := CuszL()
	bad.Pipeline = PipeHiCR // unsupported combination
	if _, err := Compress(dev, data, []int{2, 2, 2}, 1e-3, bad); err == nil {
		t.Fatal("want pipeline error for Lorenzo+HiCR")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{32, 32, 32}, 5)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-3)
	rng := rand.New(rand.NewSource(6))
	for _, opts := range []Options{HiCR(), CuszL()} {
		blob, err := Compress(dev, f.Data, f.Dims, eb, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Decompress(dev, nil); err == nil {
			t.Fatal("want error for empty blob")
		}
		for _, cut := range []int{0, 3, 5, 20, len(blob) / 2, len(blob) - 1} {
			if _, _, err := Decompress(dev, blob[:cut]); err == nil {
				t.Fatalf("%s truncated to %d: want error", opts.Name, cut)
			}
		}
		for trial := 0; trial < 40; trial++ {
			bad := append([]byte(nil), blob...)
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
			Decompress(dev, bad) // must not panic
		}
	}
}

func TestPipelineStrings(t *testing.T) {
	if PipeHiCR.String() != "HF-RRE4-TCMS8-RZE1" || PipeHiTP.String() != "TCMS1-BIT1-RRE1" {
		t.Fatal("pipeline names")
	}
}

func TestReorderImprovesTPMode(t *testing.T) {
	// §5.1.4: reordering groups large codes together, which the
	// de-redundancy pipelines exploit.
	f, err := datagen.Generate("miranda", []int{48, 48, 48}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-3)
	with := HiTP()
	without := HiTP()
	without.Reorder = false
	a, err := Compress(dev, f.Data, f.Dims, eb, with)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(dev, f.Data, f.Dims, eb, without)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) > len(b)*103/100 {
		t.Fatalf("reorder hurt: %d vs %d", len(a), len(b))
	}
}

func TestSZ3LikeGlobalInterp(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{48, 64, 64}, 11)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	sz3 := roundTrip(t, f.Data, f.Dims, eb, SZ3Like())
	hi := roundTrip(t, f.Data, f.Dims, eb, HiCR())
	// Global blocks remove boundary fallbacks, so the CPU-style config
	// should compress at least about as well as the blocked GPU config —
	// the SZ3-vs-GPU gap the paper's introduction describes.
	if len(sz3) > len(hi)*105/100 {
		t.Fatalf("global interp (%d) worse than blocked (%d)", len(sz3), len(hi))
	}
}
