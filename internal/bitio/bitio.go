// Package bitio provides bit-granular writers and readers plus small
// variable-length integer codecs used by the compression pipelines.
//
// The writer packs bits LSB-first into a growing byte slice; the reader
// mirrors it. Both are deliberately allocation-light: the hot paths
// (WriteBits/ReadBits) operate on a 64-bit accumulator.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortStream reports a read past the end of the underlying buffer.
var ErrShortStream = errors.New("bitio: unexpected end of stream")

// ErrPackedWidth reports a fixed width outside the packed readers' range.
var ErrPackedWidth = errors.New("bitio: packed width out of range")

// Writer accumulates bits LSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, LSB-first
	nacc uint   // number of valid bits in acc (< 8 after flushAcc)
}

// NewWriter returns a Writer whose internal buffer has the given capacity
// hint in bytes.
func NewWriter(capHint int) *Writer {
	if capHint < 0 {
		capHint = 0
	}
	return &Writer{buf: make([]byte, 0, capHint)}
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.acc |= uint64(b&1) << w.nacc
	w.nacc++
	if w.nacc == 64 {
		w.spill()
	}
}

// WriteBits appends the n low bits of v, LSB-first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.acc |= v << w.nacc
	if w.nacc+n >= 64 {
		free := 64 - w.nacc
		w.spillFull()
		if free < n {
			w.acc = v >> free
		}
		w.nacc = n - free
		return
	}
	w.nacc += n
}

// spillFull writes the full 64-bit accumulator to the buffer.
func (w *Writer) spillFull() {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], w.acc)
	w.buf = append(w.buf, tmp[:]...)
	w.acc = 0
}

// spill writes 8 bytes when nacc hit exactly 64 via WriteBit.
func (w *Writer) spill() {
	w.spillFull()
	w.nacc = 0
}

// WriteBytes appends whole bytes. If the writer is not currently
// byte-aligned the bytes are shifted into the bit stream, eight input
// bytes at a time through the 64-bit accumulator.
func (w *Writer) WriteBytes(p []byte) {
	if w.nacc%8 == 0 {
		// Fast path: flush accumulator fully, then bulk-append.
		for w.nacc > 0 {
			w.buf = append(w.buf, byte(w.acc))
			w.acc >>= 8
			w.nacc -= 8
		}
		w.buf = append(w.buf, p...)
		return
	}
	// Unaligned: spill whole pending bytes so nacc < 8, then merge each
	// 64-bit input word with the sub-byte remainder in one shift pair.
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
	var tmp [8]byte
	for len(p) >= 8 {
		v := binary.LittleEndian.Uint64(p)
		binary.LittleEndian.PutUint64(tmp[:], w.acc|v<<w.nacc)
		w.buf = append(w.buf, tmp[:]...)
		w.acc = v >> (64 - w.nacc)
		p = p[8:]
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// WritePackedBytes appends every value of vals at the fixed width (in
// [1, 8]), LSB-first — bit-identical to calling WriteBits(v, width) per
// value, but packing eight values per accumulator push so the batched
// fixed-width kernels (CLOG1, the szp/szx block bodies) pay one WriteBits
// branch per group instead of per symbol.
//
//cuszhi:hotpath
func (w *Writer) WritePackedBytes(vals []byte, width uint) {
	if width == 0 || width > 8 {
		return
	}
	mask := uint64(1)<<width - 1
	i := 0
	for ; i+8 <= len(vals); i += 8 {
		g := vals[i : i+8 : i+8]
		combined := uint64(g[0])&mask |
			(uint64(g[1])&mask)<<width |
			(uint64(g[2])&mask)<<(2*width) |
			(uint64(g[3])&mask)<<(3*width) |
			(uint64(g[4])&mask)<<(4*width) |
			(uint64(g[5])&mask)<<(5*width) |
			(uint64(g[6])&mask)<<(6*width) |
			(uint64(g[7])&mask)<<(7*width)
		w.WriteBits(combined, 8*width)
	}
	for ; i < len(vals); i++ {
		w.WriteBits(uint64(vals[i]), width)
	}
}

// WritePacked64 appends every value of vals at the fixed width (in
// [1, 64]), LSB-first — bit-identical to calling WriteBits(v, width) per
// value, but combining as many values as fit in 64 bits per accumulator
// push.
//
//cuszhi:hotpath
func (w *Writer) WritePacked64(vals []uint64, width uint) {
	if width == 0 || width > 64 {
		return
	}
	group := int(64 / width)
	if group <= 1 {
		for _, v := range vals {
			w.WriteBits(v, width)
		}
		return
	}
	mask := uint64(1)<<width - 1 // width == 64 handled by group <= 1 above
	i := 0
	for ; i+group <= len(vals); i += group {
		var combined uint64
		for k, v := range vals[i : i+group : i+group] {
			combined |= (v & mask) << (uint(k) * width)
		}
		w.WriteBits(combined, uint(group)*width)
	}
	for ; i < len(vals); i++ {
		w.WriteBits(vals[i], width)
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	if r := w.nacc % 8; r != 0 {
		w.WriteBits(0, 8-r)
	}
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nacc)
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The Writer remains usable; subsequent writes continue byte-aligned.
func (w *Writer) Bytes() []byte {
	w.Align()
	for w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
	return w.buf
}

// Reset truncates the writer to empty, retaining the buffer capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
}

// ResetWithBuf truncates the writer to empty and adopts buf's capacity as
// its backing store, so pooled buffers can be reused across writers without
// reallocating. The previous buffer is released.
func (w *Writer) ResetWithBuf(buf []byte) {
	w.buf = buf[:0]
	w.acc = 0
	w.nacc = 0
}

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index to load
	acc  uint64 // loaded bits
	nacc uint   // valid bits in acc
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// ResetBytes rebinds the reader to p, discarding any pending bits. It lets
// stack- or arena-resident Reader values be reused across payloads without
// reallocating (the zero value plus ResetBytes is equivalent to NewReader).
func (r *Reader) ResetBytes(p []byte) {
	r.buf = p
	r.pos = 0
	r.acc = 0
	r.nacc = 0
}

func (r *Reader) fill() {
	// Bulk path: one unaligned 64-bit load tops the accumulator up with as
	// many whole bytes as fit. The mask keeps only those bytes, so bits the
	// load brought in beyond the counted ones never linger in acc.
	if r.nacc <= 56 && r.pos+8 <= len(r.buf) {
		n := (64 - r.nacc) >> 3
		v := binary.LittleEndian.Uint64(r.buf[r.pos:])
		v &= uint64(1)<<(8*n) - 1 // 8*n == 64 shifts to 0, wrapping to ^0
		r.acc |= v << r.nacc
		r.pos += int(n)
		r.nacc += 8 * n
		return
	}
	for r.nacc <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nacc == 0 {
		r.fill()
		if r.nacc == 0 {
			return 0, ErrShortStream
		}
	}
	b := uint(r.acc & 1)
	r.acc >>= 1
	r.nacc--
	return b, nil
}

// ReadBits reads n bits (n in [0,64]) LSB-first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits(%d) out of range", n)
	}
	if r.nacc < n {
		r.fill()
	}
	if r.nacc >= n {
		var v uint64
		if n == 64 {
			v = r.acc
		} else {
			v = r.acc & ((1 << n) - 1)
		}
		r.acc >>= n % 64
		if n == 64 {
			r.acc = 0
		}
		r.nacc -= n
		return v, nil
	}
	// Straddles the accumulator: take what we have, then refill.
	got := r.nacc
	v := r.acc
	r.acc, r.nacc = 0, 0
	r.fill()
	rest := n - got
	if r.nacc < rest {
		return 0, ErrShortStream
	}
	hi := r.acc & ((1 << rest) - 1)
	r.acc >>= rest
	r.nacc -= rest
	return v | hi<<got, nil
}

// ReadBytes reads n whole bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitio: ReadBytes(%d) negative", n)
	}
	if r.nacc%8 == 0 && r.nacc == 0 && r.pos+n <= len(r.buf) {
		out := r.buf[r.pos : r.pos+n]
		r.pos += n
		return out, nil
	}
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// ReadPackedBytes fills dst with len(dst) values of the fixed width (in
// [1, 8]) — the inverse of WritePackedBytes. The accumulator is refilled
// once per batch of extractions rather than per value.
//
//cuszhi:hotpath
func (r *Reader) ReadPackedBytes(dst []byte, width uint) error {
	if width == 0 || width > 8 {
		return ErrPackedWidth
	}
	mask := uint64(1)<<width - 1
	i := 0
	// Whole groups of 8 resolve from the accumulator without refill. The
	// group loop runs out only near the end of the stream (fill no longer
	// supplies 8*width bits) or of dst; the scalar loop finishes both tails.
	for i+8 <= len(dst) {
		if r.nacc < 8*width {
			r.fill()
			if r.nacc < 8*width {
				break
			}
		}
		acc := r.acc
		g := dst[i : i+8 : i+8]
		g[0] = byte(acc & mask)
		g[1] = byte(acc >> width & mask)
		g[2] = byte(acc >> (2 * width) & mask)
		g[3] = byte(acc >> (3 * width) & mask)
		g[4] = byte(acc >> (4 * width) & mask)
		g[5] = byte(acc >> (5 * width) & mask)
		g[6] = byte(acc >> (6 * width) & mask)
		g[7] = byte(acc >> (7 * width) & mask)
		r.acc = acc >> (8 * width)
		r.nacc -= 8 * width
		i += 8
	}
	for ; i < len(dst); i++ {
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		dst[i] = byte(v)
	}
	return nil
}

// ReadPacked64 fills dst with len(dst) values of the fixed width (in
// [1, 64]) — the inverse of WritePacked64.
//
//cuszhi:hotpath
func (r *Reader) ReadPacked64(dst []uint64, width uint) error {
	if width == 0 || width > 64 {
		return ErrPackedWidth
	}
	mask := uint64(1)<<width - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	for i := range dst {
		if r.nacc < width {
			r.fill()
			if r.nacc < width {
				v, err := r.ReadBits(width) // straddling tail path
				if err != nil {
					return err
				}
				dst[i] = v
				continue
			}
		}
		dst[i] = r.acc & mask
		r.acc >>= width % 64
		if width == 64 {
			r.acc = 0
		}
		r.nacc -= width
	}
	return nil
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	if rem := r.nacc % 8; rem != 0 {
		r.acc >>= rem
		r.nacc -= rem
	}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nacc)
}

// AppendUvarint appends v in LEB128 form to dst and returns the result.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes a LEB128 value from p, returning the value and the number
// of bytes consumed (0 if p is truncated).
func Uvarint(p []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range p {
		if i == 10 {
			return 0, 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// MaxWireLen is the ceiling every length-like wire value must stay under
// before conversion to int: it fits a 32-bit int, so the conversion can
// never wrap negative and slip past a bounds check into a panicking slice
// or a hostile make. It is comfortably above any legitimate shard, payload
// or element count this repository's containers carry.
const MaxWireLen = 1<<31 - 1

// IntLen converts a 64-bit length-like wire value to int, reporting
// ok=false when it exceeds MaxWireLen. It is the shared capping helper the
// decode paths (and the wirelen analyzer in internal/lint) standardize on —
// use it instead of repeating inline `v > 1<<31` guards:
//
//	n, ok := bitio.IntLen(n64)
//	if !ok { return ErrCorrupt }
func IntLen(v uint64) (int, bool) {
	if v > MaxWireLen {
		return 0, false
	}
	return int(v), true
}

// AppendUint32 appends v little-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(dst, tmp[:]...)
}

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

// ZigZag maps a signed integer to an unsigned one so that small-magnitude
// values (of either sign) become small unsigned values.
func ZigZag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
