package lorenzo

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/gpusim"
)

// TestAllocsWarmCtx guards the arena batch slots of the batched kernels: a
// warm context must run the whole decomposition — prequant, the wide delta
// kernel with its per-chunk escape collectors (persistent arena.Slots),
// and the scan-based reconstruction — with a near-constant handful of
// allocations, independent of field size.
func TestAllocsWarmCtx(t *testing.T) {
	dims := []int{64, 48, 40}
	data := make([]float32, 64*48*40)
	for i := range data {
		data[i] = float32(i%23) + 0.5*float32(i%7)
	}
	g := NewGrid(dims)
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ctx := arena.NewCtx()
	res, err := CompressCtx(ctx, dev1, data, g, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressCtx(ctx, dev1, res, g, 0.02); err != nil {
		t.Fatal(err)
	}
	comp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := CompressCtx(ctx, dev1, data, g, 0.02); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm compress: %v allocs/op", comp)
	if comp > 2 {
		t.Fatalf("steady-state compress allocates %v/op, want <= 2", comp)
	}
	// The Result is context scratch; copy it out so the decompress loop can
	// Reset the context without clobbering its own input.
	ctx.Reset()
	res, err = CompressCtx(ctx, dev1, data, g, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	owned := &Result{
		Codes:   append([]uint16(nil), res.Codes...),
		Escapes: append([]int64(nil), res.Escapes...),
		Freq:    append([]int64(nil), res.Freq...),
	}
	owned.ValOutliers.Pos = append([]int(nil), res.ValOutliers.Pos...)
	owned.ValOutliers.Val = append([]float32(nil), res.ValOutliers.Val...)
	decomp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := DecompressCtx(ctx, dev1, owned, g, 0.02); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm decompress: %v allocs/op", decomp)
	if decomp > 1 {
		t.Fatalf("steady-state decompress allocates %v/op, want <= 1", decomp)
	}
}
