package cuszhi

import (
	"fmt"
	"math"
)

// Float64 support. Several SDRBench datasets (Miranda, QMCPack) ship as
// doubles; the compressor core operates on float32 (as cuSZ-Hi does on
// GPUs), so the facade converts and accounts for the conversion error
// inside the user's bound: the float32 stage runs with the bound tightened
// by the worst-case conversion error, keeping the end-to-end guarantee
// max|x - x'| <= eb valid for the original doubles.

// f32ConversionErr bounds |float64(float32(v)) - v| over |v| <= maxAbs.
func f32ConversionErr(maxAbs float64) float64 {
	// Half ULP at the magnitude ceiling, plus denormal slack.
	return maxAbs*0x1p-24 + 0x1p-140
}

// CompressF64 encodes double-precision data under a value-range-relative
// error bound. The bound must exceed the float32 conversion error of the
// data's magnitude range.
func (c *Compressor) CompressF64(data []float64, dims []int, relEB float64) ([]byte, error) {
	if relEB <= 0 {
		return nil, fmt.Errorf("cuszhi: relative error bound %v must be positive", relEB)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("cuszhi: empty input")
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if rng == 0 {
		rng = 1
	}
	return c.CompressF64Abs(data, dims, relEB*rng)
}

// CompressF64Abs encodes double-precision data under an absolute bound.
func (c *Compressor) CompressF64Abs(data []float64, dims []int, absEB float64) ([]byte, error) {
	if absEB <= 0 {
		return nil, fmt.Errorf("cuszhi: absolute error bound %v must be positive", absEB)
	}
	maxAbs := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	conv := f32ConversionErr(maxAbs)
	if conv >= absEB/2 {
		return nil, fmt.Errorf("cuszhi: bound %g is below float32 precision (conversion error %g); compress the doubles losslessly instead", absEB, conv)
	}
	f32 := make([]float32, len(data))
	for i, v := range data {
		f32[i] = float32(v)
	}
	// The float32 stage absorbs the remaining budget.
	return c.CompressAbs(f32, dims, absEB-conv)
}

// DecompressF64 decodes a container produced by CompressF64(Abs) back to
// doubles.
func (c *Compressor) DecompressF64(blob []byte) ([]float64, []int, error) {
	f32, dims, err := c.Decompress(blob)
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, len(f32))
	for i, v := range f32 {
		out[i] = float64(v)
	}
	return out, dims, nil
}
