package arena

import "testing"

func TestTakeAndReuse(t *testing.T) {
	c := NewCtx()
	a := c.Bytes(100)
	b := c.Bytes(200)
	if len(a) != 100 || len(b) != 200 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	a[0], b[0] = 1, 2
	c.Reset()
	a2 := c.Bytes(100)
	b2 := c.Bytes(200)
	if &a2[0] != &a[0] || &b2[0] != &b[0] {
		t.Fatal("slots not reused after Reset")
	}
}

func TestSlotGrowth(t *testing.T) {
	c := NewCtx()
	_ = c.I64(16)
	c.Reset()
	g := c.I64(1000) // larger than slot: must grow, not panic
	if len(g) != 1000 {
		t.Fatalf("len %d", len(g))
	}
	c.Reset()
	g2 := c.I64(900) // fits the grown slot
	if &g2[0] != &g[0] {
		t.Fatal("grown slot not reused")
	}
}

func TestNilCtxFallsBackToMake(t *testing.T) {
	var c *Ctx
	if got := c.F32(8); len(got) != 8 {
		t.Fatalf("nil ctx F32 len %d", len(got))
	}
	if got := c.U16(3); len(got) != 3 {
		t.Fatalf("nil ctx U16 len %d", len(got))
	}
	c.Reset()              // must not panic
	c.SetAux(AuxKey(0), 1) // must not panic
	if c.Aux(AuxKey(0)) != nil {
		t.Fatal("nil ctx aux should read nil")
	}
}

func TestAuxSurvivesReset(t *testing.T) {
	k := NewAuxKey()
	c := NewCtx()
	if c.Aux(k) != nil {
		t.Fatal("fresh aux not nil")
	}
	c.SetAux(k, "memo")
	c.Reset()
	if c.Aux(k) != "memo" {
		t.Fatal("aux lost across Reset")
	}
}

func TestAllocsSteadyState(t *testing.T) {
	c := NewCtx()
	run := func() {
		c.Reset()
		_ = c.Bytes(4096)
		_ = c.F32(1 << 12)
		_ = c.I64(100)
		_ = c.U16(1 << 10)
	}
	run() // warm the slots
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("steady state allocs = %v, want 0", n)
	}
}
