// Fixture for the wirelen analyzer: known-bad wire-length handling. This
// file is parsed, never compiled.
package wirelen

import (
	"encoding/binary"

	"repro/internal/bitio"
)

// decodeRLEPr3 reproduces the PR-3 lccodec bug verbatim: the declared
// original length is converted with int() and sizes a make with no bound
// check anywhere — a 2^63-scale varint wraps negative and panics.
func decodeRLEPr3(p []byte) ([]byte, error) {
	origLen, n := bitio.Uvarint(p)
	if n == 0 {
		return nil, ErrCorrupt
	}
	out := make([]byte, int(origLen))
	return out, nil
}

// decodeRawMake skips the conversion entirely: make accepts any integer
// type, so the raw uint64 is an alloc bomb with no int() in sight.
func decodeRawMake(p []byte) []byte {
	n64, _ := binary.Uvarint(p)
	return make([]byte, n64)
}

// decodeRawSlice slices with the unchecked wire value.
func decodeRawSlice(p []byte) []byte {
	ln := binary.LittleEndian.Uint64(p)
	return p[:ln]
}

// decodeBounded is the good shape: an explicit bound dominates the use.
func decodeBounded(p []byte) ([]byte, error) {
	n64, n := bitio.Uvarint(p)
	if n == 0 || n64 > uint64(len(p)) {
		return nil, ErrCorrupt
	}
	return make([]byte, int(n64)), nil
}

// decodeCapped goes through the shared helper, which is also sanctioned.
func decodeCapped(p []byte) ([]byte, error) {
	n64, n := bitio.Uvarint(p)
	if n == 0 {
		return nil, ErrCorrupt
	}
	ln, ok := bitio.IntLen(n64)
	if !ok {
		return nil, ErrCorrupt
	}
	return make([]byte, ln), nil
}

// decodeReassigned unpoisons by overwriting the variable before use.
func decodeReassigned(p []byte) []byte {
	v, _ := binary.Uvarint(p)
	v = 16
	return make([]byte, int(v))
}
