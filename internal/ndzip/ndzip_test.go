package ndzip

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	enc, err := Encode(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(dev, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("round trip mismatch (%d vs %d bytes)", len(dec), len(data))
	}
	return enc
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []byte{1, 2, 3}) // tail only
	roundTrip(t, []byte{1, 2, 3, 4})
	roundTrip(t, []byte{1, 2, 3, 4, 5}) // words + tail
	roundTrip(t, make([]byte, 4096))
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{7, 128, 129, 4097, 100_000} {
		data := make([]byte, n)
		rng.Read(data)
		roundTrip(t, data)
	}
}

func TestCompressesSmoothFloats(t *testing.T) {
	// Slowly varying float32 values share exponent/mantissa-high bits, so
	// XOR-delta residuals have few active bit planes.
	data := make([]byte, 64*1024)
	for i := 0; i < len(data)/4; i++ {
		v := float32(1000 + math.Sin(float64(i)*0.001))
		binary.LittleEndian.PutUint32(data[i*4:], math.Float32bits(v))
	}
	enc := roundTrip(t, data)
	if len(enc) > len(data)*3/4 {
		t.Fatalf("smooth floats compressed to %d/%d", len(enc), len(data))
	}
}

func TestConstantDataTiny(t *testing.T) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = 0x3F
	}
	enc := roundTrip(t, data)
	// Only the first word has a non-zero residual; the floor is the 4-byte
	// presence mask per 32-word chunk, i.e. ratio 32.
	if len(enc) > len(data)/25 {
		t.Fatalf("constant words compressed to %d bytes", len(enc))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(2)).Read(data)
	enc, err := Encode(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(dev, enc[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc, err := Encode(dev, data)
		if err != nil {
			return false
		}
		dec, err := Decode(dev, enc)
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
