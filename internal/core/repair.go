// Crash recovery for chunked containers. A writer that dies mid-stream
// leaves a file with a trailing partial frame and a torn (or absent)
// chunk-index footer. ScanRecovery walks such a file from the front,
// verifying every frame's CRC, and reports the longest valid prefix — the
// index entries, the byte offset of the last CRC-valid frame boundary,
// and whether a footer seals the frames. Repair tooling truncates at that
// boundary; appendable writers resume from it.
//
// The scan deliberately does not trust the global header's plane count:
// after a crash the header is stale (it reflects the last sealed state,
// or the dims the writer declared up front), so frames may cover fewer
// planes than it claims — or more, when the writer appended past the last
// seal before dying. Only dims[1:] (the plane shape), the error bound and
// the chunk thickness are taken from the header; the plane count is
// whatever the CRC-valid frames prove.
package core

import (
	"io"
)

// maxFrameHeaderBytes bounds a chunk frame header (offset + up to 8 dim
// uvarints + codec-mode byte + codec-ID byte (v5) + 8-byte range +
// payload-length uvarint + CRC), so the recovery scan can fetch one
// header with a single small read.
const maxFrameHeaderBytes = 96

// FooterState classifies what follows the last CRC-valid frame of a
// scanned container.
type FooterState int

const (
	// FooterMissing: the frames end at EOF — the writer died before (or
	// while) writing the footer, leaving nothing behind the frames.
	FooterMissing FooterState = iota
	// FooterTorn: trailing bytes follow the frames but do not form a
	// valid footer that matches them — a partial frame, a half-written
	// footer, or garbage. Repair drops them.
	FooterTorn
	// FooterValid: a chunk-index footer seals exactly the scanned frames.
	FooterValid
)

// RecoveryInfo reports what ScanRecovery proved about a container.
type RecoveryInfo struct {
	Header    *ChunkedInfo // global header as stored (Dims[0] may be stale)
	HeaderLen int64        // byte length of the global header
	Entries   []IndexEntry // the CRC-valid prefix frames, in order
	Modes     []byte       // each frame's packed codec-mode byte
	FramesEnd int64        // last CRC-valid frame boundary
	Planes    int          // contiguous planes the valid frames cover
	Footer    FooterState
	Size      int64 // the scanned file size
}

// TailBytes returns how many bytes past the last CRC-valid frame boundary
// a repair would drop (0 when a valid footer seals the frames — the
// footer is rewritten, not dropped).
func (r *RecoveryInfo) TailBytes() int64 {
	if r.Footer == FooterValid {
		return 0
	}
	return r.Size - r.FramesEnd
}

// Sealed reports whether the container needs no repair: the global header
// agrees with what the scan proved, and the frames are sealed — by a valid
// footer (v4/v5), or by simply ending at EOF (v2/v3, which have none).
func (r *RecoveryInfo) Sealed() bool {
	if r.Header.Dims[0] != r.Planes || r.Header.NumChunks != len(r.Entries) {
		return false
	}
	if r.Header.Version < version4 {
		return r.Size == r.FramesEnd
	}
	return r.Footer == FooterValid
}

// byteCounter counts the bytes an io.Reader delivers, so the scan learns
// the variable-length global header's size.
type byteCounter struct {
	r io.Reader
	n int64
}

func (c *byteCounter) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ScanRecovery walks the chunked (v2–v5) container held by src (size
// bytes long) from the front, verifying every frame header and payload
// CRC, and reports the longest contiguous valid prefix. It never writes;
// repair and append tooling act on its report. Corrupt or non-chunked
// prefixes fail with ErrCorrupt; a well-formed header with zero valid
// frames is a successful scan of an empty prefix.
func ScanRecovery(src io.ReaderAt, size int64) (*RecoveryInfo, error) {
	cr := &byteCounter{r: io.NewSectionReader(src, 0, size)}
	h, err := ReadChunkedHeader(cr)
	if err != nil {
		return nil, err
	}
	rec := &RecoveryInfo{Header: h, HeaderLen: cr.n, FramesEnd: cr.n, Size: size}
	// The header's plane count is stale after a crash: scan against a
	// relaxed copy so frames appended past the last seal still validate.
	// dims[1:], the chunk thickness and the frame layout stay binding.
	hScan := *h
	hScan.Dims = append([]int(nil), h.Dims...)
	hScan.Dims[0] = 1 << 31
	var buf [maxFrameHeaderBytes]byte
	off := rec.HeaderLen
	for len(rec.Entries) < maxChunks && off < size {
		want := min(int64(len(buf)), size-off)
		if err := ReadFullAt(src, buf[:want], off); err != nil {
			break
		}
		c, payStart, plen, err := ScanFrameHeader(buf[:want], &hScan)
		if err != nil || c.Offset != rec.Planes || plen == 0 {
			break // no codec emits an empty payload: junk, not a frame
		}
		payOff := off + int64(payStart)
		if payOff+int64(plen) > size {
			break // the frame's payload runs past EOF: a torn tail
		}
		crc, err := CRC32At(src, payOff, int64(plen))
		if err != nil || crc != c.Checksum {
			break
		}
		rec.Entries = append(rec.Entries, IndexEntry{
			FrameOff: off, PlaneOff: c.Offset, Planes: c.Dims[0], Codec: c.CodecID})
		rec.Modes = append(rec.Modes, c.CodecMode)
		rec.Planes += c.Dims[0]
		off = payOff + int64(plen)
		rec.FramesEnd = off
	}
	if h.Version >= version4 {
		rec.Footer = footerState(src, rec)
	}
	return rec, nil
}

// footerState checks whether a valid chunk-index footer seals exactly the
// scanned frames: the fixed tail's backpointer must land on the frame
// boundary, the index body must CRC and parse against the scanned plane
// coverage, and every entry must match the scan.
func footerState(src io.ReaderAt, rec *RecoveryInfo) FooterState {
	if rec.Size == rec.FramesEnd {
		return FooterMissing
	}
	// Minimal footer: a 1-byte count, 3 bytes of entry, CRC and tail.
	if len(rec.Entries) == 0 || rec.Size-rec.FramesEnd < IndexTailLen+5 {
		return FooterTorn
	}
	regionLen := rec.Size - IndexTailLen - rec.FramesEnd
	if regionLen > int64(len(rec.Entries))*30+64 {
		return FooterTorn // wildly oversized for an index: a torn tail
	}
	var tail [IndexTailLen]byte
	if ReadFullAt(src, tail[:], rec.Size-IndexTailLen) != nil {
		return FooterTorn
	}
	footerOff, err := ParseChunkIndexTail(tail[:])
	if err != nil || footerOff != rec.FramesEnd {
		return FooterTorn
	}
	region := make([]byte, regionLen)
	if ReadFullAt(src, region, footerOff) != nil {
		return FooterTorn
	}
	// Parse against what the scan proved, not the (possibly stale) header.
	hEff := *rec.Header
	hEff.Dims = append([]int(nil), rec.Header.Dims...)
	hEff.Dims[0] = rec.Planes
	hEff.NumChunks = len(rec.Entries)
	entries, err := ParseChunkIndex(region, &hEff, footerOff)
	if err != nil {
		return FooterTorn
	}
	for i, e := range entries {
		if e != rec.Entries[i] {
			return FooterTorn
		}
	}
	return FooterValid
}

// RecoveredCodec reports the codec set the scanned frames prove, for
// re-deriving a crashed writer's state. For a v5 container it returns the
// single registered codec every frame shares, or uniform=false when the
// frames mix codecs (the store continues in per-shard adaptive mode). For
// v2–v4 it maps the last frame's codec-mode byte back to the registered
// assembly's Options. Zero scanned frames report ok=false: the caller
// picks a default.
func (r *RecoveryInfo) RecoveredCodec() (cd Codec, opts Options, uniform, ok bool) {
	if len(r.Entries) == 0 {
		return nil, Options{}, false, false
	}
	if r.Header.Version >= version5 {
		id := r.Entries[0].Codec
		for _, e := range r.Entries[1:] {
			if e.Codec != id {
				return nil, Options{}, false, true
			}
		}
		cd, reg := CodecByID(id)
		if !reg {
			return nil, Options{}, false, false
		}
		return cd, Options{}, true, true
	}
	opts, found := OptionsForFrameMode(r.Modes[len(r.Modes)-1])
	if !found {
		return nil, Options{}, false, false
	}
	return nil, opts, true, true
}
