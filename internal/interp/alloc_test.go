package interp

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/gpusim"
	"repro/internal/quant"
)

// TestAllocsWarmCtx guards the arena batch slots of the interpolation
// compressor: a warm context must run the predictor — including the
// per-block outlier collectors (persistent arena.Slots) and the fused
// stride-row kernels — with a near-constant handful of allocations
// (Result header, outlier merge, pooled block buffers), independent of
// field size.
func TestAllocsWarmCtx(t *testing.T) {
	dims := []int{48, 40, 40}
	data := synthField(dims, 21)
	g := NewGrid(dims)
	cfg := HiConfig()
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ctx := arena.NewCtx()
	res, err := CompressCtx(ctx, dev1, data, g, cfg, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressCtx(ctx, dev1, res, g, cfg, 1e-3); err != nil {
		t.Fatal(err)
	}
	comp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := CompressCtx(ctx, dev1, data, g, cfg, 1e-3); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm compress: %v allocs/op", comp)
	if comp > 8 {
		t.Fatalf("steady-state compress allocates %v/op, want <= 8", comp)
	}
	// The Result is context scratch; copy it out so the decompress loop can
	// Reset the context without clobbering its own input.
	ctx.Reset()
	res, err = CompressCtx(ctx, dev1, data, g, cfg, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	owned := &Result{
		Codes:   append([]uint8(nil), res.Codes...),
		Anchors: append([]float32(nil), res.Anchors...),
		Freq:    append([]int64(nil), res.Freq...),
		Outliers: &quant.Outliers{
			Pos: append([]int(nil), res.Outliers.Pos...),
			Val: append([]float32(nil), res.Outliers.Val...),
		},
	}
	decomp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := DecompressCtx(ctx, dev1, owned, g, cfg, 1e-3); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm decompress: %v allocs/op", decomp)
	if decomp > 2 {
		t.Fatalf("steady-state decompress allocates %v/op, want <= 2", decomp)
	}
}
