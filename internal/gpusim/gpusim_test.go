package gpusim

import (
	"sync/atomic"
	"testing"
)

func TestLaunchCoversAllBlocks(t *testing.T) {
	d := New(4)
	seen := make([]atomic.Int32, 1000)
	d.Launch(len(seen), func(b int) { seen[b].Add(1) })
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("block %d executed %d times", i, got)
		}
	}
}

func TestLaunchZeroAndNegative(t *testing.T) {
	d := New(2)
	ran := false
	d.Launch(0, func(int) { ran = true })
	d.Launch(-5, func(int) { ran = true })
	if ran {
		t.Fatal("body ran for empty launch")
	}
}

func TestLaunchSingleWorkerSequential(t *testing.T) {
	d := New(1)
	var order []int
	d.Launch(10, func(b int) { order = append(order, b) })
	for i, b := range order {
		if i != b {
			t.Fatalf("single-worker launch out of order: %v", order)
		}
	}
}

func TestLaunch3D(t *testing.T) {
	d := New(3)
	var count atomic.Int32
	var xs, ys, zs [4]atomic.Int32
	d.Launch3D(2, 3, 4, func(z, y, x int) {
		count.Add(1)
		zs[z].Add(1)
		ys[y].Add(1)
		xs[x].Add(1)
	})
	if count.Load() != 24 {
		t.Fatalf("ran %d blocks, want 24", count.Load())
	}
	for x := 0; x < 4; x++ {
		if xs[x].Load() != 6 {
			t.Fatalf("x=%d ran %d, want 6", x, xs[x].Load())
		}
	}
	for z := 0; z < 2; z++ {
		if zs[z].Load() != 12 {
			t.Fatalf("z=%d ran %d, want 12", z, zs[z].Load())
		}
	}
}

func TestLaunchChunks(t *testing.T) {
	d := New(4)
	n := 1003
	mark := make([]atomic.Int32, n)
	d.LaunchChunks(n, 17, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			mark[i].Add(1)
		}
	})
	for i := range mark {
		if mark[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, mark[i].Load())
		}
	}
}

func TestLaunchChunksAutoChunk(t *testing.T) {
	d := New(8)
	var total atomic.Int64
	d.LaunchChunks(100, 0, func(lo, hi int) { total.Add(int64(hi - lo)) })
	if total.Load() != 100 {
		t.Fatalf("covered %d, want 100", total.Load())
	}
}

func TestReduceOrdered(t *testing.T) {
	d := New(4)
	// Non-commutative combine (string concat) must respect block order.
	got := Reduce(d, 5, func(b int) string { return string(rune('a' + b)) },
		func(a, b string) string { return a + b })
	if got != "abcde" {
		t.Fatalf("Reduce = %q, want abcde", got)
	}
}

func TestReduceSum(t *testing.T) {
	d := New(7)
	got := Reduce(d, 1000, func(b int) int { return b }, func(a, b int) int { return a + b })
	if got != 999*1000/2 {
		t.Fatalf("Reduce sum = %d", got)
	}
}

func TestDefaultDevice(t *testing.T) {
	if Default.Workers() < 1 {
		t.Fatal("default device has no workers")
	}
}
