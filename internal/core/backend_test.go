package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// backendNames are the registered backend chunk codecs under test.
var backendNames = []string{"fzgpu", "szp", "szx"}

// TestBackendCodecRoundTrip: every backend codec compresses through the
// registry into a self-contained payload that decodes with no outer-header
// help — correct dims, bound honored, with and without a context.
func TestBackendCodecRoundTrip(t *testing.T) {
	dims := []int{10, 12, 12}
	data := make([]float32, 10*12*12)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 5)
	}
	for _, name := range backendNames {
		cd, ok := CodecByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if _, hasOpts := cd.(optioned); hasOpts {
			t.Fatalf("%s should not expose an Options assembly", name)
		}
		payload, err := cd.Compress(nil, dev, data, dims, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recon, rdims, err := cd.Decompress(nil, dev, payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rdims) != 3 || rdims[0] != 10 || rdims[1] != 12 || rdims[2] != 12 {
			t.Fatalf("%s: dims = %v", name, rdims)
		}
		if i := metrics.FirstViolation(data, recon, 0.01); i >= 0 {
			t.Fatalf("%s: bound violated at %d", name, i)
		}
		// Context path produces the identical payload.
		ctx := arena.NewCtx()
		got, err := cd.Compress(ctx, dev, data, dims, 0.01)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("%s: ctx payload diverges (%v)", name, err)
		}
	}
}

// TestBackendCodecHostilePayloads: truncations and bit flips of every
// backend payload must decode to ErrCorrupt (or a plain error), never
// panic — the contract the v5 chunk dispatcher relies on.
func TestBackendCodecHostilePayloads(t *testing.T) {
	dims := []int{6, 8, 8}
	data := make([]float32, 6*8*8)
	for i := range data {
		data[i] = float32(i%13) * 0.5
	}
	rng := rand.New(rand.NewSource(5))
	for _, name := range backendNames {
		cd, _ := CodecByName(name)
		payload, err := cd.Compress(nil, dev, data, dims, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{0, 1, 2, 5, len(payload) / 2, len(payload) - 1} {
			// The adapter wraps every backend diagnosis in core.ErrCorrupt.
			if _, _, err := cd.Decompress(nil, dev, payload[:cut]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: truncation to %d: err = %v", name, cut, err)
			}
		}
		for trial := 0; trial < 40; trial++ {
			bad := append([]byte(nil), payload...)
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
			cd.Decompress(nil, dev, bad) // must not panic
		}
	}
}

// TestCompressChunkedCodec: the fixed-backend chunked compressor emits a
// decodable v5 container whose histogram is entirely the one codec, for
// both multi-chunk and single-chunk ("one-shot") layouts.
func TestCompressChunkedCodec(t *testing.T) {
	dims := []int{12, 10, 10}
	data := rampField(12 * 10 * 10)
	for _, name := range backendNames {
		cd, _ := CodecByName(name)
		for _, cp := range []int{4, 12} {
			blob, err := CompressChunkedCodec(dev, data, dims, 0.02, cd, cp)
			if err != nil {
				t.Fatalf("%s/cp=%d: %v", name, cp, err)
			}
			if blob[4] != 5 {
				t.Fatalf("%s/cp=%d: version %d", name, cp, blob[4])
			}
			recon, rdims, err := Decompress(dev, blob)
			if err != nil || rdims[0] != 12 {
				t.Fatalf("%s/cp=%d: decode: %v", name, cp, err)
			}
			if i := metrics.FirstViolation(data, recon, 0.02); i >= 0 {
				t.Fatalf("%s/cp=%d: bound violated at %d", name, cp, i)
			}
			info, err := Inspect(blob)
			if err != nil {
				t.Fatal(err)
			}
			wantChunks := (12 + cp - 1) / cp
			if info.ChunkCodecs[name] != wantChunks || len(info.ChunkCodecs) != 1 {
				t.Fatalf("%s/cp=%d: histogram %v", name, cp, info.ChunkCodecs)
			}
		}
	}
}

// TestV5BackendGolden locks the mixed cusz-l + fzgpu + szx container
// layout: backend frames carry a zero codec-mode byte and their registered
// wire ID, the footer entries agree, the histogram names all three codecs,
// and sequential and random-access decodes agree byte-exactly.
func TestV5BackendGolden(t *testing.T) {
	dims := []int{6, 4, 4}
	data := rampField(6 * 4 * 4)
	blob, entries := makeV5(t, data, dims, 0.1, 2, []string{"cusz-l", "fzgpu", "szx"})

	if blob[4] != 5 {
		t.Fatalf("version = %d", blob[4])
	}
	// Frame 0 (cusz-l, an assembly): codec mode 0x12, ID 5.
	f0 := int(entries[0].FrameOff)
	if blob[f0+4] != 0x12 || CodecID(blob[f0+5]) != CodecCuszL {
		t.Fatalf("chunk0 mode/id = %#x %d", blob[f0+4], blob[f0+5])
	}
	// Frame 1 (fzgpu, a backend): codec mode 0 (advisory, no assembly),
	// ID 6 — the ID byte sits between the mode byte and the value range.
	f1 := int(entries[1].FrameOff)
	if blob[f1+4] != 0 || CodecID(blob[f1+5]) != CodecFzGPU {
		t.Fatalf("chunk1 mode/id = %#x %d", blob[f1+4], blob[f1+5])
	}
	// Frame 2 (szx): codec mode 0, ID 8.
	f2 := int(entries[2].FrameOff)
	if blob[f2+4] != 0 || CodecID(blob[f2+5]) != CodecSZx {
		t.Fatalf("chunk2 mode/id = %#x %d", blob[f2+4], blob[f2+5])
	}
	if entries[0].Codec != CodecCuszL || entries[1].Codec != CodecFzGPU || entries[2].Codec != CodecSZx {
		t.Fatalf("footer codecs = %v", entries)
	}

	info, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.ChunkCodecs["cusz-l"] != 1 || info.ChunkCodecs["fzgpu"] != 1 || info.ChunkCodecs["szx"] != 1 {
		t.Fatalf("histogram = %v", info.ChunkCodecs)
	}

	recon, rdims, err := Decompress(dev, blob)
	if err != nil || rdims[0] != 6 {
		t.Fatalf("decode: %v", err)
	}
	if i := metrics.FirstViolation(data, recon, 0.1); i >= 0 {
		t.Fatalf("bound violated at %d", i)
	}

	// The wire IDs are frozen: renumbering a shipped backend breaks every
	// v5 container holding its chunks.
	if CodecFzGPU != 6 || CodecSZp != 7 || CodecSZx != 8 {
		t.Fatalf("backend wire IDs renumbered: %d %d %d", CodecFzGPU, CodecSZp, CodecSZx)
	}
}

// TestBackendChunkHostileIDs: swapping a backend chunk's frame ID for
// another registered codec must fail the decode (the payload no longer
// parses under the claimed codec, or the footer cross-check trips), and
// the footer/frame codec mismatch error names both codecs.
func TestBackendChunkHostileIDs(t *testing.T) {
	dims := []int{4, 4, 4}
	data := rampField(64)
	blob, entries := makeV5(t, data, dims, 0.1, 2, []string{"fzgpu", "szx"})
	if _, _, err := Decompress(dev, blob); err != nil {
		t.Fatal(err)
	}
	// Flip frame 0's ID from fzgpu to szp: both are backends with mode
	// byte 0, so the mode cross-check cannot catch it — the footer must.
	bad := append([]byte(nil), blob...)
	bad[int(entries[0].FrameOff)+5] = byte(CodecSZp)
	_, _, err := Decompress(dev, bad)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped backend ID: err = %v", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("fzgpu")) ||
		!bytes.Contains([]byte(err.Error()), []byte("szp")) {
		t.Fatalf("mismatch error does not name both codecs: %v", err)
	}
}

// TestBackendModesViaAutoCandidates: the widened candidate set includes
// the backends and SelectShardCodec still returns a working codec on data
// engineered so a backend wins (near-constant values: szp's zero-block
// bitmap or szx's constant blocks beat the assemblies' per-shard
// overheads at tiny shard sizes).
func TestBackendCandidatesSelectable(t *testing.T) {
	if len(autoSelectCandidates()) != 6 {
		t.Fatalf("candidates = %d, want 6", len(autoSelectCandidates()))
	}
	shard := make([]float32, 64*8*8) // constant: the degenerate best case
	ctx := arena.NewCtx()
	cd, err := SelectShardCodec(ctx, gpusim.New(1), shard, []int{64, 8, 8}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := cd.Compress(nil, dev, shard, []int{64, 8, 8}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := cd.Decompress(nil, dev, payload)
	if err != nil || len(recon) != len(shard) {
		t.Fatalf("winner %s failed its own shard: %v", cd.Name(), err)
	}
	if i := metrics.FirstViolation(shard, recon, 0.01); i >= 0 {
		t.Fatalf("bound violated at %d", i)
	}
	t.Logf("constant shard winner: %s", cd.Name())
}
