// Package interp implements the block-wise multilevel spline-interpolation
// predictor at the heart of cuSZ-Hi (§3.2, §5.1), in a form general enough
// to also express the cuSZ-I baseline:
//
//   - data is partitioned into blocks that share boundary faces, each block
//     predicted independently from its losslessly stored anchor points
//     (17³ blocks / stride-16 anchors for cuSZ-Hi, 33×9×9 / stride-8 for
//     cuSZ-I — Fig. 3);
//   - levels run coarse-to-fine; per level the scheme is either the classic
//     dimension-sequence 1-D interpolation (Fig. 4a) or the
//     multi-dimensional edge→face→body-center scheme with highest-order
//     averaging (Fig. 4b);
//   - prediction errors are quantized to one-byte codes against
//     reconstructed values so decompression replays the identical
//     recurrence.
package interp

import (
	"fmt"
)

// Spline selects the interpolation polynomial family for a level.
type Spline uint8

// Spline kinds.
const (
	Linear Spline = iota
	Cubic
)

func (s Spline) String() string {
	switch s {
	case Linear:
		return "linear"
	case Cubic:
		return "cubic"
	}
	return fmt.Sprintf("Spline(%d)", uint8(s))
}

// Scheme selects the per-level interpolation structure.
type Scheme uint8

// Scheme kinds.
const (
	// Seq1DXYZ is dimension-by-dimension interpolation in X, Y, Z order
	// (Fig. 4a).
	Seq1DXYZ Scheme = iota
	// Seq1DZYX is the reverse dimension order.
	Seq1DZYX
	// MD is the multi-dimensional edge→face→body-center scheme (Fig. 4b).
	MD
)

func (s Scheme) String() string {
	switch s {
	case Seq1DXYZ:
		return "seq-xyz"
	case Seq1DZYX:
		return "seq-zyx"
	case MD:
		return "md"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// LevelConfig is the tuned (scheme, spline) choice for one interpolation
// level.
type LevelConfig struct {
	Scheme Scheme
	Spline Spline
}

// Config describes a predictor instance.
type Config struct {
	// AnchorStride is the losslessly stored anchor lattice stride; must be
	// a power of two >= 2 (16 for cuSZ-Hi, 8 for cuSZ-I).
	AnchorStride int
	// BlockZ/Y/X are the block interior extents (the block spans extent+1
	// points including both shared faces); must be multiples of
	// AnchorStride.
	BlockZ, BlockY, BlockX int
	// PerLevel holds the per-level configuration, index 0 = coarsest
	// level. Length must equal Levels().
	PerLevel []LevelConfig
}

// Levels returns log2(AnchorStride), the number of interpolation levels.
func (c Config) Levels() int {
	l := 0
	for v := c.AnchorStride; v > 1; v >>= 1 {
		l++
	}
	return l
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.AnchorStride < 2 || c.AnchorStride&(c.AnchorStride-1) != 0 {
		return fmt.Errorf("interp: anchor stride %d must be a power of two >= 2", c.AnchorStride)
	}
	for _, b := range []int{c.BlockZ, c.BlockY, c.BlockX} {
		if b <= 0 || b%c.AnchorStride != 0 {
			return fmt.Errorf("interp: block extent %d must be a positive multiple of the anchor stride %d", b, c.AnchorStride)
		}
	}
	if len(c.PerLevel) != c.Levels() {
		return fmt.Errorf("interp: PerLevel has %d entries, want %d", len(c.PerLevel), c.Levels())
	}
	return nil
}

// uniformLevels returns n copies of lc.
func uniformLevels(n int, lc LevelConfig) []LevelConfig {
	out := make([]LevelConfig, n)
	for i := range out {
		out[i] = lc
	}
	return out
}

// HiConfig returns the cuSZ-Hi predictor: isotropic 17³ blocks, stride-16
// anchors, 4 levels defaulting to MD+cubic (normally overridden by
// AutoTune).
func HiConfig() Config {
	c := Config{AnchorStride: 16, BlockZ: 16, BlockY: 16, BlockX: 16}
	c.PerLevel = uniformLevels(c.Levels(), LevelConfig{Scheme: MD, Spline: Cubic})
	return c
}

// CuszIConfig returns the cuSZ-I baseline predictor: 33×9×9 blocks (x
// interior 32), stride-8 anchors, 3 levels of 1-D sequence interpolation
// with cubic splines.
func CuszIConfig() Config {
	c := Config{AnchorStride: 8, BlockZ: 8, BlockY: 8, BlockX: 32}
	c.PerLevel = uniformLevels(c.Levels(), LevelConfig{Scheme: Seq1DXYZ, Spline: Cubic})
	return c
}

// Grid is the normalized (nz, ny, nx) shape of the input; higher-dim inputs
// collapse leading dims into z, lower-dim inputs set leading sizes to 1.
type Grid struct {
	Nz, Ny, Nx int
}

// NewGrid normalizes dims (slowest first).
func NewGrid(dims []int) Grid {
	switch len(dims) {
	case 0:
		return Grid{1, 1, 0}
	case 1:
		return Grid{1, 1, dims[0]}
	case 2:
		return Grid{1, dims[0], dims[1]}
	case 3:
		return Grid{dims[0], dims[1], dims[2]}
	default:
		nz := 1
		for _, d := range dims[:len(dims)-2] {
			nz *= d
		}
		return Grid{nz, dims[len(dims)-2], dims[len(dims)-1]}
	}
}

// Len returns the total number of points.
func (g Grid) Len() int { return g.Nz * g.Ny * g.Nx }

// flat returns the row-major index of (z,y,x).
func (g Grid) flat(z, y, x int) int { return (z*g.Ny+y)*g.Nx + x }

// AnchorDims returns the anchor-lattice shape for stride a.
func (g Grid) AnchorDims(a int) (az, ay, ax int) {
	return (g.Nz-1)/a + 1, (g.Ny-1)/a + 1, (g.Nx-1)/a + 1
}

// AnchorCount returns the number of anchor points for stride a.
func (g Grid) AnchorCount(a int) int {
	az, ay, ax := g.AnchorDims(a)
	return az * ay * ax
}
