package lccodec

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arena"
)

func quantCodeLike(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		if rng.Intn(15) == 0 {
			out[i] = byte(128 + rng.NormFloat64()*6)
		} else {
			out[i] = 128
		}
	}
	return out
}

func TestSearchFindsFrontier(t *testing.T) {
	sample := quantCodeLike(1<<15, 1)
	results, err := Search(dev, sample, []string{"HF", "RRE1", "TCMS1", "BIT1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 4 single-stage + (4 first * 3 second, minus HF-not-first rule):
	// HF can start but not follow; immediate repeats excluded.
	if len(results) < 10 {
		t.Fatalf("only %d pipelines evaluated", len(results))
	}
	// Sorted by ratio.
	for i := 1; i < len(results); i++ {
		if results[i].Ratio > results[i-1].Ratio {
			t.Fatal("results not sorted by ratio")
		}
	}
	// The top pipeline must be Pareto by construction.
	if !results[0].Pareto {
		t.Fatal("best-ratio pipeline not marked Pareto")
	}
	// At least one pipeline beats HF alone on run-heavy codes.
	var hfRatio float64
	for _, r := range results {
		if r.Spec == "HF" {
			hfRatio = r.Ratio
		}
	}
	if results[0].Ratio <= hfRatio {
		t.Fatalf("search found nothing better than HF (%.2f)", hfRatio)
	}
	// No HF in a non-leading position.
	for _, r := range results {
		if i := strings.Index(r.Spec, "-HF"); i >= 0 {
			t.Fatalf("pipeline %s has HF in a later stage", r.Spec)
		}
	}
}

func TestSearchValidatesComponents(t *testing.T) {
	if _, err := Search(dev, []byte{1, 2, 3}, []string{"NOPE"}, 1); err == nil {
		t.Fatal("want error for unknown component")
	}
}

func TestSearchStageClamp(t *testing.T) {
	sample := quantCodeLike(1<<10, 2)
	results, err := Search(dev, sample, []string{"RRE1", "RZE1"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if strings.Count(r.Spec, "-") > 2 {
			t.Fatalf("pipeline %s exceeds 3 stages", r.Spec)
		}
	}
}

// TestSearchCtxMatchesSearch: the context-threaded search must produce the
// same rankings and ratios as the allocating one, and a warm context must
// cut steady-state allocations dramatically (trial buffers come from the
// arena slots instead of per-candidate make calls).
func TestSearchCtxMatchesSearch(t *testing.T) {
	sample := quantCodeLike(1<<14, 4)
	comps := []string{"HF", "RRE1", "TCMS1", "BIT1"}
	want, err := Search(dev, sample, comps, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := arena.NewCtx()
	got, err := SearchCtx(ctx, dev, sample, comps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Spec != want[i].Spec || got[i].Ratio != want[i].Ratio {
			t.Fatalf("result %d: %s %.3f, want %s %.3f",
				i, got[i].Spec, got[i].Ratio, want[i].Spec, want[i].Ratio)
		}
	}

	// Steady state: the warm context serves every candidate's trial
	// buffers; what remains is spec parsing and kernel-launch latches
	// (~150/op for these 14 pipelines). The ceiling catches any return to
	// per-candidate working-set allocation, which costs thousands.
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := SearchCtx(ctx, dev, sample, comps, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 250 {
		t.Fatalf("steady-state SearchCtx allocates %v/op, want <= 250", allocs)
	}
}

func TestSearchDefaultComponents(t *testing.T) {
	sample := quantCodeLike(1<<12, 3)
	results, err := Search(dev, sample, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultSearchComponents) {
		t.Fatalf("%d single-stage results, want %d", len(results), len(DefaultSearchComponents))
	}
}
