// Package zfp implements the fixed-rate ZFP compression algorithm
// (Lindstrom, TVCG 2014) for float32 fields in 1/2/3 dimensions — the
// algorithm behind the cuZFP baseline of the cuSZ-Hi evaluation.
//
// Each 4^d block is converted to a block-floating-point integer
// representation, decorrelated with the ZFP lifting transform along every
// dimension, reordered by total sequency, mapped to negabinary, and encoded
// as bit planes MSB-first with embedded group testing. Fixed-rate mode
// gives every block exactly rate·4^d bits, so compressed offsets are
// random-accessible, mirroring cuZFP's design.
//
// Note: like real ZFP, the lifting transform drops low-order bits (it is
// range-contracting), so reconstruction error is bounded by the encoding
// precision rather than a user error bound; cuZFP therefore only appears in
// the rate-distortion and throughput experiments of the paper, not in the
// fixed-eb tables.
package zfp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("zfp: corrupt stream")

const intprec = 32

// perms[d] is the sequency ordering of the 4^d coefficients.
var perms = buildPerms()

func buildPerms() [4][]int {
	var out [4][]int
	for d := 1; d <= 3; d++ {
		n := 1 << (2 * d) // 4^d
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		coord := func(v int) (x, y, z int) {
			x = v & 3
			if d > 1 {
				y = (v >> 2) & 3
			}
			if d > 2 {
				z = (v >> 4) & 3
			}
			return
		}
		sort.SliceStable(idx, func(a, b int) bool {
			xa, ya, za := coord(idx[a])
			xb, yb, zb := coord(idx[b])
			sa, sb := xa+ya+za, xb+yb+zb
			if sa != sb {
				return sa < sb
			}
			qa, qb := xa*xa+ya*ya+za*za, xb*xb+yb*yb+zb*zb
			if qa != qb {
				return qa < qb
			}
			return idx[a] < idx[b]
		})
		out[d] = idx
	}
	return out
}

// fwdLift applies the ZFP forward lifting step to 4 values at stride s.
func fwdLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// invLift inverts fwdLift (up to ZFP's documented LSB contraction).
func invLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// transform applies the lifting along every dimension of a 4^d block.
func transform(coeff []int32, d int, inverse bool) {
	lift := fwdLift
	if inverse {
		lift = invLift
	}
	switch d {
	case 1:
		lift(coeff, 0, 1)
	case 2:
		if !inverse {
			for y := 0; y < 4; y++ {
				lift(coeff, 4*y, 1) // along x
			}
			for x := 0; x < 4; x++ {
				lift(coeff, x, 4) // along y
			}
		} else {
			for x := 0; x < 4; x++ {
				lift(coeff, x, 4)
			}
			for y := 0; y < 4; y++ {
				lift(coeff, 4*y, 1)
			}
		}
	case 3:
		if !inverse {
			for z := 0; z < 4; z++ {
				for y := 0; y < 4; y++ {
					lift(coeff, 16*z+4*y, 1) // x
				}
			}
			for z := 0; z < 4; z++ {
				for x := 0; x < 4; x++ {
					lift(coeff, 16*z+x, 4) // y
				}
			}
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					lift(coeff, 4*y+x, 16) // z
				}
			}
		} else {
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					lift(coeff, 4*y+x, 16)
				}
			}
			for z := 0; z < 4; z++ {
				for x := 0; x < 4; x++ {
					lift(coeff, 16*z+x, 4)
				}
			}
			for z := 0; z < 4; z++ {
				for y := 0; y < 4; y++ {
					lift(coeff, 16*z+4*y, 1)
				}
			}
		}
	}
}

const negabinaryMask = 0xAAAAAAAA

func toNegabinary(i int32) uint32 {
	return (uint32(i) + negabinaryMask) ^ negabinaryMask
}

func fromNegabinary(u uint32) int32 {
	return int32((u ^ negabinaryMask) - negabinaryMask)
}

// encodeBlock writes one block's payload: zero flag, biased exponent, and
// group-tested bit planes, using exactly maxBits bits (zero padded).
func encodeBlock(vals []int32, emax int, empty bool, d, maxBits int, w *bitio.Writer) {
	n4 := 1 << (2 * d)
	budget := maxBits
	put := func(v uint64, nb int) {
		if nb > budget {
			nb = budget
		}
		if nb > 0 {
			w.WriteBits(v, uint(nb))
			budget -= nb
		}
	}
	if empty {
		put(0, 1)
		put(0, budget)
		return
	}
	put(1, 1)
	put(uint64(emax+300), 10)
	// Gather negabinary coefficients in perm order.
	var u [64]uint32
	perm := perms[d]
	for i := 0; i < n4; i++ {
		u[i] = toNegabinary(vals[perm[i]])
	}
	n := 0
	for k := intprec - 1; k >= 0 && budget > 0; k-- {
		// Gather plane k.
		var x uint64
		for i := 0; i < n4; i++ {
			x |= uint64(u[i]>>uint(k)&1) << uint(i)
		}
		// First n bits raw.
		put(x&((1<<uint(n))-1), n)
		x >>= uint(n)
		m := n
		for m < n4 && budget > 0 {
			if x != 0 {
				put(1, 1)
			} else {
				put(0, 1)
				break
			}
			for budget > 0 {
				bit := x & 1
				put(bit, 1)
				x >>= 1
				m++
				if bit == 1 || m == n4 {
					break
				}
			}
		}
		if m > n {
			n = m
		}
	}
	put(0, budget)
}

// decodeBlock reads one block payload of exactly maxBits bits.
func decodeBlock(r *bitio.Reader, d, maxBits int) (vals [64]int32, emax int, empty bool, err error) {
	n4 := 1 << (2 * d)
	budget := maxBits
	get := func(nb int) uint64 {
		if nb > budget {
			nb = budget
		}
		if nb <= 0 {
			return 0
		}
		v, e := r.ReadBits(uint(nb))
		if e != nil {
			err = ErrCorrupt
			budget = 0
			return 0
		}
		budget -= nb
		return v
	}
	skip := func() {
		for budget > 0 {
			step := budget
			if step > 64 {
				step = 64
			}
			get(step)
		}
	}
	flag := get(1)
	if err != nil {
		return
	}
	if flag == 0 {
		empty = true
		skip()
		return
	}
	emax = int(get(10)) - 300
	var u [64]uint32
	n := 0
	for k := intprec - 1; k >= 0 && budget > 0; k-- {
		x := get(n)
		m := n
		for m < n4 && budget > 0 {
			if get(1) == 0 {
				break
			}
			for budget > 0 {
				bit := get(1)
				if bit == 1 {
					x |= 1 << uint(m)
					m++
					break
				}
				m++
				if m == n4 {
					break
				}
			}
		}
		if m > n {
			n = m
		}
		for i := 0; i < n4; i++ {
			if x>>uint(i)&1 != 0 {
				u[i] |= 1 << uint(k)
			}
		}
	}
	skip()
	perm := perms[d]
	for i := 0; i < n4; i++ {
		vals[perm[i]] = fromNegabinary(u[i])
	}
	return
}

// norm3 normalizes dims to (nz, ny, nx) and the effective dimensionality.
func norm3(dims []int) (nz, ny, nx, d int, err error) {
	switch len(dims) {
	case 1:
		nz, ny, nx, d = 1, 1, dims[0], 1
	case 2:
		nz, ny, nx, d = 1, dims[0], dims[1], 2
	case 3:
		nz, ny, nx, d = dims[0], dims[1], dims[2], 3
	default:
		return 0, 0, 0, 0, fmt.Errorf("zfp: %d dims unsupported", len(dims))
	}
	if nz <= 0 || ny <= 0 || nx <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("zfp: invalid dims %v", dims)
	}
	return
}

// minBlockBits is the smallest per-block budget (flag + exponent + one
// plane bit).
const minBlockBits = 16

// blockBitsFor converts a bits-per-value rate to the fixed per-block bit
// budget.
func blockBitsFor(rate float64, d int) int {
	bits := int(math.Round(rate * float64(int(1)<<(2*d))))
	if bits < minBlockBits {
		bits = minBlockBits
	}
	return bits
}

// Compress encodes data at the given rate in bits per value (integer
// rates match cuZFP's common configurations).
func Compress(dev *gpusim.Device, data []float32, dims []int, rate int) ([]byte, error) {
	return CompressRate(dev, data, dims, float64(rate))
}

// CompressRate encodes data at a possibly fractional rate in bits per
// value (cuZFP supports sub-1-bit rates, which Fig. 9 of the paper uses to
// reach ratios above 32).
func CompressRate(dev *gpusim.Device, data []float32, dims []int, rate float64) ([]byte, error) {
	nz, ny, nx, d, err := norm3(dims)
	if err != nil {
		return nil, err
	}
	if nz*ny*nx != len(data) {
		return nil, fmt.Errorf("zfp: dims %v do not match %d values", dims, len(data))
	}
	if !(rate > 0) || rate > 30 {
		return nil, fmt.Errorf("zfp: rate %v out of range (0,30]", rate)
	}
	nbz, nby, nbx := (nz+3)/4, (ny+3)/4, (nx+3)/4
	nBlocks := nbz * nby * nbx
	bits := blockBitsFor(rate, d)
	blockBytes := (bits + 7) / 8
	payload := make([]byte, nBlocks*blockBytes)
	dev.Launch(nBlocks, func(b int) {
		bx := b % nbx
		by := (b / nbx) % nby
		bz := b / (nbx * nby)
		var vals [64]float32
		n4 := 1 << (2 * d)
		maxAbs := float64(0)
		for i := 0; i < n4; i++ {
			x := bx*4 + i&3
			y := by*4 + (i>>2)&3
			z := bz*4 + (i>>4)&3
			// Edge-replicate partial blocks.
			if x > nx-1 {
				x = nx - 1
			}
			if y > ny-1 {
				y = ny - 1
			}
			if z > nz-1 {
				z = nz - 1
			}
			v := data[(z*ny+y)*nx+x]
			vals[i] = v
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		w := bitio.NewWriter(blockBytes)
		if maxAbs == 0 || math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) {
			encodeBlock(nil, 0, true, d, bits, w)
		} else {
			_, e := math.Frexp(maxAbs)
			var coeff [64]int32
			scale := math.Ldexp(1, 30-e)
			for i := 0; i < n4; i++ {
				coeff[i] = int32(float64(vals[i]) * scale)
			}
			transform(coeff[:], d, false)
			encodeBlock(coeff[:], e, false, d, bits, w)
		}
		copy(payload[b*blockBytes:], w.Bytes())
	})
	out := bitio.AppendUvarint(nil, uint64(len(dims)))
	for _, dd := range dims {
		out = bitio.AppendUvarint(out, uint64(dd))
	}
	out = bitio.AppendUvarint(out, uint64(bits))
	return append(out, payload...), nil
}

// Decompress decodes a container, returning the field and its dims.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, []int, error) {
	nd64, n := bitio.Uvarint(blob)
	if n == 0 || nd64 < 1 || nd64 > 3 {
		return nil, nil, ErrCorrupt
	}
	off := n
	dims := make([]int, nd64)
	// Cap the running element-count product as dims are parsed: each dim is
	// individually <= 2^30, but three together reach 2^90, which wraps the
	// int64 product — possibly to a small value that slips past the total
	// check below.
	total64 := int64(1)
	for i := range dims {
		v, n := bitio.Uvarint(blob[off:])
		if n == 0 || v == 0 || v > 1<<30 {
			return nil, nil, ErrCorrupt
		}
		off += n
		dims[i] = int(v)
		total64 *= int64(v)
		if total64 > 1<<31 {
			return nil, nil, ErrCorrupt
		}
	}
	bits64, n := bitio.Uvarint(blob[off:])
	if n == 0 || bits64 < minBlockBits || bits64 > 30<<6 {
		return nil, nil, ErrCorrupt
	}
	off += n
	bits := int(bits64)
	nz, ny, nx, d, err := norm3(dims)
	if err != nil {
		return nil, nil, ErrCorrupt
	}
	total := nz * ny * nx
	if total > 1<<31 {
		return nil, nil, ErrCorrupt
	}
	nbz, nby, nbx := (nz+3)/4, (ny+3)/4, (nx+3)/4
	nBlocks := nbz * nby * nbx
	blockBytes := (bits + 7) / 8
	if off+nBlocks*blockBytes > len(blob) {
		return nil, nil, ErrCorrupt
	}
	out := make([]float32, total)
	var failed atomic.Bool
	dev.Launch(nBlocks, func(b int) {
		r := bitio.NewReader(blob[off+b*blockBytes : off+(b+1)*blockBytes])
		vals, emax, empty, err := decodeBlock(r, d, bits)
		if err != nil {
			failed.Store(true)
		}
		if !empty {
			transform(vals[:], d, true)
		}
		bx := b % nbx
		by := (b / nbx) % nby
		bz := b / (nbx * nby)
		n4 := 1 << (2 * d)
		scale := math.Ldexp(1, emax-30)
		for i := 0; i < n4; i++ {
			x := bx*4 + i&3
			y := by*4 + (i>>2)&3
			z := bz*4 + (i>>4)&3
			if x > nx-1 || y > ny-1 || z > nz-1 {
				continue
			}
			var v float32
			if !empty {
				v = float32(float64(vals[i]) * scale)
			}
			out[(z*ny+y)*nx+x] = v
		}
	})
	if failed.Load() {
		return nil, nil, ErrCorrupt
	}
	return out, dims, nil
}
