// The wireid analyzer: codec wire IDs and container format versions are
// append-only and can never be renumbered.
//
// The analyzer pins internal/core's CodecID constants and version bytes to
// the embedded golden table below. Scope: any package named "core" that
// declares `type CodecID` (the real registry, and the analyzer's own
// fixtures). Enforced: every shipped name is present with exactly its
// shipped literal value; no new CodecID constant reuses a shipped number or
// collides with another; values are explicit integer literals (an iota
// chain would silently renumber when a line is inserted).
//
// Growing the format is still one-line easy — a new codec takes the next
// free ID, a new version the next byte — but those additions land here too,
// in the golden table, making the append-only contract part of the diff.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
)

func wireIDAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wireid",
		Doc:  "codec wire IDs 1-8 and format versions v1-v5 are append-only, never renumbered",
		Run:  runWireID,
	}
}

// goldenWireIDs pins every shipped CodecID constant (ROADMAP standing
// invariant: 1-5 assemblies; 6 fzgpu, 7 szp, 8 szx backends). Appending a
// NEW codec means adding it both to internal/core and to this table.
var goldenWireIDs = map[string]int{
	"codecInvalid": 0,
	"CodecHiCR":    1,
	"CodecHiTP":    2,
	"CodecCuszI":   3,
	"CodecCuszIB":  4,
	"CodecCuszL":   5,
	"CodecFzGPU":   6,
	"CodecSZp":     7,
	"CodecSZx":     8,
}

// maxShippedWireID is the ceiling below which no new CodecID may land.
const maxShippedWireID = 8

// goldenVersions pins the container version bytes (byte 4 of every
// container): v1 one-shot through v5 per-chunk codec IDs.
var goldenVersions = map[string]int{
	"version":  1,
	"version2": 2,
	"version3": 3,
	"version4": 4,
	"version5": 5,
}

func runWireID(pkg *Package) []Finding {
	codecIDDecl := findTypeDecl(pkg, "CodecID")
	if pkg.Name != "core" || codecIDDecl == nil {
		return nil
	}
	var findings []Finding
	report := func(pos token.Pos, msg string) {
		findings = append(findings, Finding{Check: "wireid", Pos: pkg.Fset.Position(pos), Message: msg})
	}

	seenIDs := map[string]int{}    // CodecID const name -> value
	seenValues := map[int]string{} // CodecID value -> first const name
	seenVersions := map[string]int{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				isCodecID := false
				if id, ok := vs.Type.(*ast.Ident); ok && id.Name == "CodecID" {
					isCodecID = true
				}
				for i, name := range vs.Names {
					_, isVersion := goldenVersions[name.Name]
					if !isCodecID && !isVersion {
						continue
					}
					v, ok := literalInt(vs, i)
					if !ok {
						report(name.Pos(), fmt.Sprintf(
							"%s must be an explicit integer literal (an iota chain renumbers when a line is inserted)",
							name.Name))
						continue
					}
					if isCodecID {
						seenIDs[name.Name] = v
						if prev, dup := seenValues[v]; dup {
							report(name.Pos(), fmt.Sprintf("CodecID %d assigned to both %s and %s", v, prev, name.Name))
						} else {
							seenValues[v] = name.Name
						}
						if want, shipped := goldenWireIDs[name.Name]; shipped {
							if v != want {
								report(name.Pos(), fmt.Sprintf(
									"wire ID %s = %d renumbers the shipped value %d: IDs are append-only",
									name.Name, v, want))
							}
						} else if v <= maxShippedWireID {
							report(name.Pos(), fmt.Sprintf(
								"new codec %s reuses wire ID %d (shipped range 0-%d): take the next free ID",
								name.Name, v, maxShippedWireID))
						}
					}
					if isVersion {
						seenVersions[name.Name] = v
						if want := goldenVersions[name.Name]; v != want {
							report(name.Pos(), fmt.Sprintf(
								"format %s = %d renumbers the shipped version byte %d", name.Name, v, want))
						}
					}
				}
			}
		}
	}
	for name, want := range goldenWireIDs {
		if _, ok := seenIDs[name]; !ok {
			report(codecIDDecl.Pos(), fmt.Sprintf(
				"shipped wire ID %s (= %d) is missing: containers already on disk carry it forever", name, want))
		}
	}
	for name, want := range goldenVersions {
		if _, ok := seenVersions[name]; !ok {
			report(codecIDDecl.Pos(), fmt.Sprintf(
				"shipped format version const %s (= %d) is missing: old containers must keep decoding", name, want))
		}
	}
	return findings
}

// findTypeDecl returns the TypeSpec declaring the named type, or nil.
func findTypeDecl(pkg *Package, name string) *ast.TypeSpec {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts
				}
			}
		}
	}
	return nil
}

// literalInt evaluates value i of a const spec when it is a plain integer
// literal (the only form the wire tables allow).
func literalInt(vs *ast.ValueSpec, i int) (int, bool) {
	if i >= len(vs.Values) {
		return 0, false
	}
	lit, ok := vs.Values[i].(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return v, true
}
