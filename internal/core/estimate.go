package core

// Estimator cascade for auto-mode codec selection.
//
// The original selector trial-compressed every candidate on a sample slab
// and kept the smallest output — correct, but a ~3× tax on the adaptive
// streaming path (six candidates, five results discarded). This file
// replaces the trials with size *estimates* computed from data the
// predictors already produce in one pass:
//
//   - One interpolation-predictor pass over a shared sample slab — tuned
//     with the §5.1.3 auto-tuner, whose 0.2% block sampling costs almost
//     nothing, so the histogram matches what the real compressor would
//     produce — yields the fused quant-code histogram (interp.Result.Freq).
//     Both Hi assemblies share that predictor, so the histogram prices
//     their pipelines without running either: the CR pipeline is priced at
//     the histogram's Shannon entropy (its lossless tail reclaims
//     Huffman's one-bit floor), the TP pipeline per bitplane from the same
//     bins (bitplaneBitsPerSym).
//   - One Lorenzo pass over the same slab yields the uint16 histogram that
//     prices cuSZ-L's Huffman stage, plus exact escape/outlier side-channel
//     rates.
//   - The self-contained backends (fzgpu/szp/szx) have no shared analysis
//     pass, so they are ranked by really compressing a strided probe — a
//     few planes gathered from across the slab — and scaling. The probe is
//     a small fraction of the slab and the backends are the fastest codecs
//     in the registry, so this costs far less than one assembly trial.
//
// Only the winning candidate ever compresses the full input. The slab is
// sampled once and shared by every estimate (and by the trial-based
// reference scorer, kept for tests), never re-sampled per candidate.

import (
	"fmt"
	"math"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/huffman"
	"repro/internal/interp"
	"repro/internal/lorenzo"
	"repro/internal/quant"
)

// Estimator calibration. The histogram prices only the entropy stage;
// these constants account for what it cannot see. They are calibrated
// against actual compressed sizes on the repository's datagen fields (the
// estimator-fidelity property test keeps them honest).
const (
	// hiCRPipeFactor scales the Shannon entropy of the tuned quant-code
	// histogram to the HF-RRE4-TCMS8-RZE1 output. Shannon — not the
	// Huffman code lengths — because the tail stages reclaim most of
	// Huffman's one-bit-per-symbol floor on skewed histograms (runs of
	// the dominant code's bit collapse under RRE4/RZE1); the factor
	// covers what they cannot reclaim at mid entropy.
	hiCRPipeFactor = 1.06
	// hiTPPipeFactor and tpConstBits scale the summed per-bitplane binary
	// entropies to the TCMS1-BIT1-RRE1 output: RRE1 is a run eliminator,
	// not an entropy coder, so it pays a little over the per-plane
	// entropy, plus the (recursively eliminated) keep/drop bitmaps.
	hiTPPipeFactor = 1.16
	tpConstBits    = 0.04
	// hfOverheadBytes covers the Huffman container bookkeeping of the CR
	// pipeline (RLE code-length table, chunk directory) that the entropy
	// term does not include.
	hfOverheadBytes = 64
	// interpHeaderBytes / lorenzoHeaderBytes cover the v1 container +
	// predictor headers (magic, dims, eb, interp config, section lengths).
	interpHeaderBytes  = 40
	lorenzoHeaderBytes = 24
	// backendHeaderBytes is the fixed part of a backend payload (magic,
	// dims, eb) that must not be scaled up with the probe.
	backendHeaderBytes = 24
	// probeMaxPlanes bounds the strided backend probe: enough planes to
	// see the slab's character, few enough that three backend probes cost
	// a fraction of one assembly trial.
	probeMaxPlanes = 4
)

// CandidateEstimate is one auto-select candidate's predicted compressed
// size for the full input, produced without compressing it.
type CandidateEstimate struct {
	Codec Codec
	// Bytes is the predicted compressed size of the full input.
	Bytes int
	// Ratio is the predicted compression ratio (4·n / Bytes).
	Ratio float64
	// Probed marks backend candidates, whose estimate comes from really
	// compressing a strided probe rather than from a histogram model.
	Probed bool
}

// binEntropy returns the binary entropy of p in bits.
//
//cuszhi:hotpath
func binEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// bitplaneBitsPerSym prices the TCMS1-BIT1-RRE1 pipeline from the quant
// code histogram: TCMS1 zigzag-maps each code byte (the exact transform
// the pipeline applies), BIT1 transposes the stream into eight bitplanes,
// and RRE1 eliminates repeated plane bytes — which a histogram can only
// see as the per-plane bit bias, so each plane is priced at its binary
// entropy plus the shared bitmap overhead. Planes that are almost always
// 0 or almost always 1 (the common case: well-predicted codes map to a
// handful of zigzag values) cost almost nothing, exactly as RRE1 behaves.
//
//cuszhi:hotpath
func bitplaneBitsPerSym(freq []int64) float64 {
	var total int64
	var ones [8]int64
	for sym, f := range freq {
		if f == 0 {
			continue
		}
		total += f
		b := byte(sym)
		m := (b << 1) ^ byte(int8(b)>>7) // TCMS1 zigzag
		for bit := 0; bit < 8; bit++ {
			if m&(1<<bit) != 0 {
				ones[bit] += f
			}
		}
	}
	if total == 0 {
		return 0
	}
	var bits float64
	for _, c := range ones {
		bits += binEntropy(float64(c) / float64(total))
	}
	return bits
}

// outlierBytes returns the exact serialized size of an outlier section.
func outlierBytes(o *quant.Outliers) int {
	n := uvarintLen(uint64(o.Len()))
	prev := 0
	for _, p := range o.Pos {
		n += uvarintLen(uint64(p - prev))
		prev = p
	}
	return n + 4*len(o.Val)
}

// estimateCandidates scores every auto-select candidate for the full input
// from one shared sample slab, in candidate order. budget > 0 caps the
// analysis volume in elements: sampleSlab's one-block-extent floor can make
// the slab a large fraction of a small shard, so perf-critical callers
// (per-shard selection) crop the slab's trailing dims down to the budget.
// ctx is Reset once, on return — the cropped slab and probe live in its
// arena, so any scratch the caller obtained earlier is invalidated.
func estimateCandidates(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb, frac float64, budget int) ([]CandidateEstimate, error) {
	slab, slabDims := sampleSlab(data, dims, frac)
	if budget > 0 {
		slab, slabDims = cropSlab(ctx, slab, slabDims, budget)
	}
	n, m := len(data), len(slab)
	scale := float64(n) / float64(m)
	rawBytes := float64(4 * n)

	// One tuned interpolation pass serves both Hi assemblies: AutoTune's
	// sampled dry runs cost a fraction of the pass itself, and without it
	// the histogram is measurably wider than the real (tuned) compressor's
	// on fields where the default MD+cubic schemes lose.
	cfg := interp.HiConfig()
	gSlab := interp.NewGrid(slabDims)
	cfg.PerLevel = interp.AutoTune(dev, slab, gSlab, cfg, interp.DefaultSampleFraction)
	resI, err := interp.CompressCtx(ctx, dev, slab, gSlab, cfg, eb)
	if err != nil {
		return nil, fmt.Errorf("estimate hi predictor: %w", err)
	}
	anchorBytes := 4 * interp.NewGrid(dims).AnchorCount(cfg.AnchorStride)
	outRate := float64(outlierBytes(resI.Outliers)) * scale
	sideBytes := float64(anchorBytes) + outRate + interpHeaderBytes
	hBits := quant.HistEntropyBits(resI.Freq)
	hiCRBytes := int(hBits*hiCRPipeFactor*float64(n)/8 + hfOverheadBytes + sideBytes)
	tpBits := bitplaneBitsPerSym(resI.Freq)
	hiTPBytes := int((tpBits*hiTPPipeFactor+tpConstBits)*float64(n)/8 + sideBytes)

	// One Lorenzo pass prices cuSZ-L: Huffman over the uint16 alphabet
	// plus the exact (scaled) escape and value-outlier side channels.
	resL, err := lorenzo.CompressCtx(ctx, dev, slab, lorenzo.NewGrid(slabDims), eb)
	if err != nil {
		return nil, fmt.Errorf("estimate lorenzo predictor: %w", err)
	}
	hfL, err := huffman.EstimateEncodedBytes(ctx, resL.Freq, n)
	if err != nil {
		return nil, fmt.Errorf("estimate cusz-l entropy stage: %w", err)
	}
	escBytes := 0
	for _, e := range resL.Escapes {
		escBytes += uvarintLen(bitio.ZigZag(e))
	}
	cuszLBytes := int(float64(hfL) + (float64(escBytes)+float64(outlierBytes(&resL.ValOutliers)))*scale + lorenzoHeaderBytes)

	// Strided backend probe: a few planes gathered from across the slab,
	// compressed for real by each backend and scaled to the full input.
	probe, probeDims := strideProbe(ctx, slab, slabDims)
	probeScale := float64(n) / float64(len(probe))

	out := make([]CandidateEstimate, 0, 6)
	for _, cand := range autoSelectCandidates() {
		est := CandidateEstimate{Codec: cand}
		switch cand.ID() {
		case CodecHiCR:
			est.Bytes = hiCRBytes
		case CodecHiTP:
			est.Bytes = hiTPBytes
		case CodecCuszL:
			est.Bytes = cuszLBytes
		default:
			blob, err := cand.Compress(ctx, dev, probe, probeDims, eb)
			if err != nil {
				return nil, fmt.Errorf("probe %s: %w", cand.Name(), err)
			}
			body := len(blob) - backendHeaderBytes
			if body < 0 {
				body = 0
			}
			est.Bytes = int(float64(body)*probeScale) + backendHeaderBytes
			est.Probed = true
		}
		if est.Bytes < 1 {
			est.Bytes = 1
		}
		est.Ratio = rawBytes / float64(est.Bytes)
		out = append(out, est)
	}
	ctx.Reset()
	return out, nil
}

// strideProbe gathers up to probeMaxPlanes planes, evenly strided across
// the slab, into contiguous ctx scratch — the miniature field the backend
// candidates compress for real. A slab at or under the budget is returned
// as is.
func strideProbe(ctx *arena.Ctx, slab []float32, slabDims []int) ([]float32, []int) {
	planes := slabDims[0]
	if planes <= probeMaxPlanes {
		return slab, slabDims
	}
	ps := planeSize(slabDims)
	probe := ctx.F32(probeMaxPlanes * ps)
	for i := 0; i < probeMaxPlanes; i++ {
		z := i * (planes - 1) / (probeMaxPlanes - 1)
		copy(probe[i*ps:(i+1)*ps], slab[z*ps:(z+1)*ps])
	}
	probeDims := append([]int{probeMaxPlanes}, slabDims[1:]...)
	return probe, probeDims
}

// cropSlab bounds the estimator's analysis volume: sampleSlab is
// plane-granular with a one-block-extent floor, so on a small shard the
// slab can be half the shard — too much data to analyze at near-fixed-mode
// speed. The trailing two dims are center-cropped toward budget elements
// (each kept at one Hi block extent or more, preserving the field's rank
// and the slab's full z extent) and gathered into ctx scratch. Rank-1
// slabs pass through: they cannot be cropped without losing their only
// interpolation axis.
func cropSlab(ctx *arena.Ctx, slab []float32, dims []int, budget int) ([]float32, []int) {
	if len(slab) <= budget || len(dims) < 2 {
		return slab, dims
	}
	ny, nx := dims[len(dims)-2], dims[len(dims)-1]
	f := math.Sqrt(float64(budget) / float64(len(slab)))
	cy, cx := cropExtent(ny, f), cropExtent(nx, f)
	if cy == ny && cx == nx {
		return slab, dims
	}
	lead := len(slab) / (ny * nx)
	out := ctx.F32(lead * cy * cx)
	y0, x0 := (ny-cy)/2, (nx-cx)/2
	for l := 0; l < lead; l++ {
		for y := 0; y < cy; y++ {
			src := (l*ny+y0+y)*nx + x0
			copy(out[(l*cy+y)*cx:(l*cy+y+1)*cx], slab[src:src+cx])
		}
	}
	cdims := append([]int(nil), dims...)
	cdims[len(dims)-2], cdims[len(dims)-1] = cy, cx
	return out, cdims
}

// cropExtent scales one extent by f, clamped to a full Hi block extent so
// the interpolation predictor still sees whole blocks along that axis.
func cropExtent(extent int, f float64) int {
	c := int(f * float64(extent))
	if c < 17 {
		c = 17
	}
	if c > extent {
		c = extent
	}
	return c
}
