// Crash-safe appendable stores: OpenAppend re-opens a chunked container —
// including one a dead writer left without a footer — and continues
// appending planes to it; Repair truncates a torn tail and reseals without
// appending; CheckStore reports what either would do, read-only.
//
// The commit story. A store is *sealed* when its global header matches the
// frames and (v4/v5) a chunk-index footer covers them; only Close seals.
// Between OpenAppend and Close the store is deliberately unsealed: the old
// footer is truncated away up front, so at any crash point the file is
// header + CRC-framed chunks + at most one torn tail. Sealing is ordered
// for recovery, not speed: frames and the rewritten header are fsynced
// before any footer byte, the footer body is fsynced before the fixed
// 12-byte tail, and the tail's `cSZi` backpointer — the only thing that
// makes readers trust the footer — is written last and fsynced. A crash
// anywhere in that ladder leaves either no tail (footer ignored) or a tail
// whose backpointer/CRC disagrees with the frames (footer rejected), and
// core.ScanRecovery reconstructs the index from the frames themselves.
//
// Because appends grow dims[0], the header must be rewritten in place on
// every seal. Its two growing uvarints (dims[0], chunk count) are padded —
// non-minimal LEB128 — to keep the header length fixed. If a grown value
// outruns the padding, seal relocates the frames once to a header wide
// enough for every legal value (a crash inside that one-time move can cost
// trailing chunks, never the prefix at the original offsets).
package stream

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/cuszhi"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// File is the sink an appendable store lives on: positioned reads and
// writes, truncation, and a durability barrier. *os.File satisfies it.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
}

// offsetWriter adapts a File to the sequential io.Writer the frame flusher
// expects, appending at a moving offset.
type offsetWriter struct {
	f   io.WriterAt
	off int64
}

func (o *offsetWriter) Write(p []byte) (int, error) {
	n, err := o.f.WriteAt(p, o.off)
	o.off += int64(n)
	return n, err
}

// storeSize learns f's current size from Stat (an *os.File) or a seek to
// the end.
func storeSize(f File) (int64, error) {
	if st, ok := f.(interface{ Stat() (os.FileInfo, error) }); ok {
		fi, err := st.Stat()
		if err != nil {
			return 0, err
		}
		return fi.Size(), nil
	}
	if sk, ok := f.(io.Seeker); ok {
		return sk.Seek(0, io.SeekEnd)
	}
	return 0, errors.New("stream: store size unknown (sink has neither Stat nor Seek)")
}

// CheckStore scans the container on f read-only and reports its recovered
// state: the CRC-valid chunk prefix, how many trailing bytes a Repair
// would drop (TailBytes), and whether the store is already Sealed. It is
// the dry-run behind the CLI's repair -dry-run.
func CheckStore(f File) (*core.RecoveryInfo, error) {
	size, err := storeSize(f)
	if err != nil {
		return nil, err
	}
	return core.ScanRecovery(f, size)
}

// Repair makes the container on f sealed and decodable again after a
// crash: it truncates everything past the last CRC-valid frame boundary,
// rewrites the global header to cover exactly the recovered chunks, and
// (v4/v5) writes a fresh chunk-index footer, fsync-ordered as described in
// the package comment. The returned RecoveryInfo describes the store as
// found, before repair. A store that is already sealed is left untouched.
// A store with no complete chunks cannot be made decodable and is
// reported as an error, unmodified.
func Repair(f File) (*core.RecoveryInfo, error) {
	rec, err := CheckStore(f)
	if err != nil {
		return nil, err
	}
	if rec.Sealed() {
		return rec, nil
	}
	if rec.Planes == 0 {
		return rec, errors.New("stream: no complete chunks to recover")
	}
	h := rec.Header
	dims := append([]int(nil), h.Dims...)
	dims[0] = rec.Planes
	st := &sealSpec{
		ver: h.Version, dims: dims, eb: h.EB, rel: h.RelEB, cp: h.ChunkPlanes,
		headerLen: rec.HeaderLen, framesEnd: rec.FramesEnd,
		entries: append([]core.IndexEntry(nil), rec.Entries...),
	}
	if err := sealStore(f, st); err != nil {
		return rec, err
	}
	return rec, nil
}

// OpenAppend re-opens the container on f — sealed, or torn by a crash —
// and returns a Writer that appends whole planes to it. Opening first
// repairs: anything past the last CRC-valid frame boundary (a partial
// frame, a torn footer, or the previous seal's footer) is truncated away,
// so the store is unsealed until Close, which reseals it around the old
// and new chunks together. Unlike NewWriter, the Writer has no declared
// total: feed any number of whole planes (none is fine) and Close.
//
// The store fixes the plane shape, error bound and chunk thickness; shape
// options on opt are ignored. The codec is re-derived from the frames on
// disk — a v5 store continues with its uniform codec, or adaptively when
// its chunks mix codecs or it has none yet; a v2–v4 store continues with
// the assembly its last frame names — and WithMode/WithAutoMode override
// that, within what the store's format can carry (codec-ID modes and auto
// need a v5 store).
func OpenAppend(f File, opt ...Option) (*Writer, error) {
	size, err := storeSize(f)
	if err != nil {
		return nil, err
	}
	rec, err := core.ScanRecovery(f, size)
	if err != nil {
		return nil, err
	}
	cfg := newConfig(opt)
	opts, cd, auto, err := appendMode(rec, cfg)
	if err != nil {
		return nil, err
	}
	// The writer buffers one whole shard; a hostile header with huge dims
	// or chunk thickness must not turn that into an absurd (or int-
	// overflowed) allocation. Any store a Writer actually produced buffered
	// the same shard when it was written, so real stores pass easily.
	const maxShardElems = 1 << 28
	shardElems := int64(rec.Header.ChunkPlanes)
	for _, d := range rec.Header.Dims[1:] {
		shardElems *= int64(d)
		if shardElems > maxShardElems {
			return nil, fmt.Errorf("stream: store shard footprint %v × %d planes is too large to append to", rec.Header.Dims[1:], rec.Header.ChunkPlanes)
		}
	}
	// Unseal: drop the torn tail (or the previous footer) before the first
	// new frame lands, so no crash point can leave a stale footer that
	// still parses over bytes new frames half-overwrote.
	if err := f.Truncate(rec.FramesEnd); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	h := rec.Header
	ps := planeElems(h.Dims)
	w := &Writer{
		w:         &offsetWriter{f: f, off: rec.FramesEnd},
		f:         f,
		grow:      true,
		ver:       h.Version,
		headerLen: rec.HeaderLen,
		dev:       cfg.dev,
		opts:      opts,
		cd:        cd,
		auto:      auto,
		dims:      append([]int(nil), h.Dims...),
		eb:        h.EB,
		rel:       h.RelEB,
		index:     h.Version >= 4,
		rangeHdr:  h.Version >= 3,
		ps:        ps,
		cp:        h.ChunkPlanes,
		plane:     rec.Planes,
		idx:       append([]core.IndexEntry(nil), rec.Entries...),
		wOff:      rec.FramesEnd,
		slabs:     make(chan []float32, 2*cfg.dev.Workers()+2),
		pool:      pipeline.New[wframe](cfg.dev.Workers(), 0),
		flushed:   make(chan struct{}),
	}
	// Capacity is a hint, not a commitment: a store can legally declare a
	// shard footprint far larger than what this session will feed, so start
	// modest and let append growth find the real working set.
	w.vals = make([]float32, 0, min(w.cp*ps, 1<<20))
	go w.flusher()
	return w, nil
}

// appendMode resolves the codec state a re-opened store continues with:
// the explicit WithMode/WithAutoMode when one was passed (validated
// against what the store's format can carry), else whatever the frames on
// disk prove.
func appendMode(rec *core.RecoveryInfo, cfg config) (opts core.Options, cd core.Codec, auto bool, err error) {
	ver := rec.Header.Version
	if cfg.modeSet {
		if cfg.mode == cuszhi.ModeAuto {
			if ver < 5 {
				return opts, nil, false, fmt.Errorf("stream: store is format v%d; auto mode needs the v5 per-chunk codec IDs", ver)
			}
			return opts, nil, true, nil
		}
		if ver >= 5 {
			c, ok := core.CodecByName(string(cfg.mode))
			if !ok {
				return opts, nil, false, fmt.Errorf("stream: unknown mode %q", cfg.mode)
			}
			return opts, c, false, nil
		}
		opts, oerr := core.ModeOptions(string(cfg.mode))
		if oerr != nil {
			if _, backend := core.CodecByName(string(cfg.mode)); backend {
				return opts, nil, false, fmt.Errorf("stream: mode %q frames carry a codec ID; store is format v%d, not v5", cfg.mode, ver)
			}
			return opts, nil, false, fmt.Errorf("stream: unknown mode %q", cfg.mode)
		}
		return opts, nil, false, nil
	}
	c, o, uniform, ok := rec.RecoveredCodec()
	switch {
	case ver >= 5 && ok && uniform:
		return opts, c, false, nil
	case ver >= 5 && ok: // chunks mix codecs: keep dispatching per shard
		return opts, nil, true, nil
	case ver >= 5:
		if len(rec.Entries) > 0 {
			return opts, nil, false, errors.New("stream: store chunks use an unregistered codec; cannot continue it")
		}
		return opts, nil, true, nil // empty v5 store: adaptive covers any mix
	case ok:
		return o, nil, false, nil
	default:
		if len(rec.Entries) > 0 {
			return opts, nil, false, errors.New("stream: store codec mode matches no registered assembly; pass WithMode")
		}
		o, _ = core.ModeOptions(string(cuszhi.ModeCR))
		return o, nil, false, nil // empty pre-v5 store: default assembly
	}
}

// sealSpec is everything sealStore needs to make a store self-describing
// again: the header fields to rewrite and the frames the footer must cover.
type sealSpec struct {
	ver       int
	dims      []int // dims[0] = planes the entries cover
	eb        float64
	rel       bool
	cp        int
	headerLen int64
	entries   []core.IndexEntry
	framesEnd int64
}

// sealStore commits the store: header rewritten in place (relocating the
// frames once if it outgrew its padding), stale tail truncated, and — for
// v4/v5 — the index footer written with its backpointer tail last, each
// step fsynced before the next depends on it.
func sealStore(f File, st *sealSpec) error {
	hdr, err := core.AppendChunkedHeaderSized(nil, st.ver, st.dims, st.eb, st.rel, st.cp, len(st.entries), int(st.headerLen))
	if err != nil {
		if hdr, err = widenHeader(f, st); err != nil {
			return err
		}
	}
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err := f.Truncate(st.framesEnd); err != nil {
		return err
	}
	// Barrier: header and frames are durable before any footer byte claims
	// to describe them.
	if err := f.Sync(); err != nil {
		return err
	}
	if st.ver < 4 {
		return nil // v2/v3 stores have no footer; the header seals them
	}
	var footer []byte
	if st.ver >= 5 {
		footer = core.AppendChunkIndexFooterV5(nil, st.framesEnd, st.entries)
	} else {
		footer = core.AppendChunkIndexFooter(nil, st.framesEnd, st.entries)
	}
	body, tail := footer[:len(footer)-core.IndexTailLen], footer[len(footer)-core.IndexTailLen:]
	if _, err := f.WriteAt(body, st.framesEnd); err != nil {
		return err
	}
	// Barrier: the body is durable before the tail's backpointer makes
	// readers trust it. Until the tail lands, the footer is invisible.
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := f.WriteAt(tail, st.framesEnd+int64(len(body))); err != nil {
		return err
	}
	return f.Sync()
}

// widenHeader handles the once-per-store case where a grown dims[0] or
// chunk count no longer fits the header's padding: it rebuilds the header
// with both growing uvarints at width 5 — enough for every value the
// format permits, so no store ever relocates twice — and moves the frames
// up to make room, updating st in place.
func widenHeader(f File, st *sealSpec) ([]byte, error) {
	minimal, err := core.AppendChunkedHeaderSized(nil, st.ver, st.dims, st.eb, st.rel, st.cp, len(st.entries), 0)
	if err != nil {
		return nil, err
	}
	padTo := len(minimal) - uvLen(uint64(st.dims[0])) - uvLen(uint64(len(st.entries))) + 10
	if padTo <= int(st.headerLen) {
		// The minimal header fits after all: AppendChunkedHeaderSized must
		// have rejected the spec itself, not the padding.
		return nil, fmt.Errorf("stream: cannot reseal store header: %d planes in %d chunks", st.dims[0], len(st.entries))
	}
	delta := int64(padTo) - st.headerLen
	if err := shiftFrames(f, st.headerLen, st.framesEnd, delta); err != nil {
		return nil, err
	}
	for i := range st.entries {
		st.entries[i].FrameOff += delta
	}
	st.headerLen += delta
	st.framesEnd += delta
	return core.AppendChunkedHeaderSized(nil, st.ver, st.dims, st.eb, st.rel, st.cp, len(st.entries), padTo)
}

// shiftFrames moves the byte range [start, end) of f up by delta,
// copying backward in bounded blocks so the source is never overwritten
// before it is read.
func shiftFrames(f File, start, end, delta int64) error {
	buf := make([]byte, 1<<20)
	for pos := end; pos > start; {
		n := int64(len(buf))
		if pos-start < n {
			n = pos - start
		}
		pos -= n
		if err := core.ReadFullAt(f, buf[:n], pos); err != nil {
			return err
		}
		if _, err := f.WriteAt(buf[:n], pos+delta); err != nil {
			return err
		}
	}
	return nil
}

// uvLen returns the minimal LEB128 encoding length of v.
func uvLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
