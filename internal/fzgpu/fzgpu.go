// Package fzgpu reimplements the FZ-GPU baseline (Zhang et al., 2023):
// cuSZ's dual-quantization Lorenzo decomposition with the Huffman stage
// replaced by a throughput-oriented bit-shuffle plus zero-word elimination,
// trading compression ratio for speed (Fig. 2 of the cuSZ-Hi paper).
package fzgpu

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/bitio"
	"repro/internal/gpusim"
	"repro/internal/lccodec"
	"repro/internal/lorenzo"
	"repro/internal/quant"
)

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("fzgpu: corrupt stream")

var pipeline = lccodec.MustParse("BIT1-RZE4")

// Compress encodes data (any dims, slowest first) under absolute bound eb.
func Compress(dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error) {
	g := lorenzo.NewGrid(dims)
	res, err := lorenzo.Compress(dev, data, g, eb)
	if err != nil {
		return nil, err
	}
	// Re-center codes around zero (zigzag) so the bit shuffle concentrates
	// ones into few planes, then serialize little-endian and de-redundate.
	center := int64(lorenzo.Radius + 1)
	codeBytes := make([]byte, 2*len(res.Codes))
	dev.LaunchChunks(len(res.Codes), 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zz := bitio.ZigZag(int64(res.Codes[i]) - center)
			binary.LittleEndian.PutUint16(codeBytes[2*i:], uint16(zz))
		}
	})
	payload, err := pipeline.Encode(dev, codeBytes)
	if err != nil {
		return nil, err
	}
	out := bitio.AppendUvarint(nil, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = bitio.AppendUint64(out, math.Float64bits(eb))
	out = bitio.AppendUvarint(out, uint64(len(res.Escapes)))
	for _, e := range res.Escapes {
		out = bitio.AppendUvarint(out, bitio.ZigZag(e))
	}
	out = res.ValOutliers.Serialize(out)
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, error) {
	nd64, n := bitio.Uvarint(blob)
	if n == 0 || nd64 == 0 || nd64 > 8 {
		return nil, ErrCorrupt
	}
	off := n
	dims := make([]int, nd64)
	total := 1
	for i := range dims {
		v, n := bitio.Uvarint(blob[off:])
		if n == 0 || v == 0 || v > 1<<31 {
			return nil, ErrCorrupt
		}
		off += n
		dims[i] = int(v)
		total *= int(v)
		if total <= 0 || total > 1<<33 {
			return nil, ErrCorrupt
		}
	}
	if off+8 > len(blob) {
		return nil, ErrCorrupt
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[off:]))
	off += 8
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, ErrCorrupt
	}
	nEsc64, n := bitio.Uvarint(blob[off:])
	if n == 0 || int(nEsc64) < 0 || int(nEsc64) > total {
		return nil, ErrCorrupt
	}
	off += n
	escapes := make([]int64, nEsc64)
	for i := range escapes {
		z, n := bitio.Uvarint(blob[off:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		off += n
		escapes[i] = bitio.UnZigZag(z)
	}
	outliers, used, err := quant.ParseOutliers(blob[off:])
	if err != nil {
		return nil, err
	}
	off += used
	payLen64, n := bitio.Uvarint(blob[off:])
	if n == 0 || off+n+int(payLen64) > len(blob) {
		return nil, ErrCorrupt
	}
	off += n
	codeBytes, err := pipeline.Decode(dev, blob[off:off+int(payLen64)])
	if err != nil {
		return nil, err
	}
	if len(codeBytes) != 2*total {
		return nil, ErrCorrupt
	}
	codes := make([]uint16, total)
	center := int64(lorenzo.Radius + 1)
	dev.LaunchChunks(total, 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zz := uint64(binary.LittleEndian.Uint16(codeBytes[2*i:]))
			codes[i] = uint16(bitio.UnZigZag(zz) + center)
		}
	})
	res := &lorenzo.Result{Codes: codes, Escapes: escapes, ValOutliers: *outliers}
	return lorenzo.Decompress(dev, res, lorenzo.NewGrid(dims), eb)
}
