// Package ndzip is an open reimplementation of the core coding scheme of
// ndzip (Knorr et al., SC'21), used as a Fig. 6 baseline: XOR-delta
// prediction over 32-bit words followed by vertical bit packing — each
// chunk of 32 residual words is bit-transposed and only the non-zero
// 32-bit "rows" of the transpose are emitted, with a 32-bit presence mask.
package ndzip

import (
	"encoding/binary"
	"errors"

	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("ndzip: corrupt stream")

const chunkWords = 32

// Encode compresses arbitrary bytes (interpreted as little-endian uint32
// words; a short tail is stored raw).
func Encode(dev *gpusim.Device, src []byte) ([]byte, error) {
	nWords := len(src) / 4
	tail := src[nWords*4:]
	nChunks := (nWords + chunkWords - 1) / chunkWords
	chunkBufs := make([][]byte, nChunks)
	dev.Launch(nChunks, func(c int) {
		lo := c * chunkWords
		hi := lo + chunkWords
		if hi > nWords {
			hi = nWords
		}
		var words [chunkWords]uint32
		var prev uint32
		if lo > 0 {
			prev = binary.LittleEndian.Uint32(src[(lo-1)*4:])
		}
		for i := lo; i < hi; i++ {
			w := binary.LittleEndian.Uint32(src[i*4:])
			words[i-lo] = w ^ prev
			prev = w
		}
		n := hi - lo
		// Transpose: row b collects bit b of every residual word.
		var rows [32]uint32
		for i := 0; i < n; i++ {
			w := words[i]
			for w != 0 {
				b := trailingZeros32(w)
				rows[b] |= 1 << uint(i)
				w &= w - 1
			}
		}
		var mask uint32
		buf := make([]byte, 4, 4+32*4)
		for b := 0; b < 32; b++ {
			if rows[b] != 0 {
				mask |= 1 << uint(b)
				var tmp [4]byte
				binary.LittleEndian.PutUint32(tmp[:], rows[b])
				buf = append(buf, tmp[:]...)
			}
		}
		binary.LittleEndian.PutUint32(buf[:4], mask)
		chunkBufs[c] = buf
	})
	out := bitio.AppendUvarint(nil, uint64(len(src)))
	for _, cb := range chunkBufs {
		out = append(out, cb...)
	}
	return append(out, tail...), nil
}

// Decode reverses Encode.
func Decode(dev *gpusim.Device, data []byte) ([]byte, error) {
	origLen64, n := bitio.Uvarint(data)
	if n == 0 {
		return nil, ErrCorrupt
	}
	// Cap before the int conversion and the make below: a 2^63-scale
	// declared length wraps the int negative and panics the allocation; a
	// smaller hostile one must still fail against the container size (every
	// chunk costs >= 4 mask bytes) instead of forcing a huge make.
	origLen, ok := bitio.IntLen(origLen64)
	if !ok || origLen/(chunkWords*4)*4 > len(data) {
		return nil, ErrCorrupt
	}
	off := n
	nWords := origLen / 4
	nChunks := (nWords + chunkWords - 1) / chunkWords
	out := make([]byte, origLen)
	// Chunk payloads are variable length, so this pass is sequential; XOR
	// reconstruction is a running prefix anyway.
	var prev uint32
	for c := 0; c < nChunks; c++ {
		lo := c * chunkWords
		hi := lo + chunkWords
		if hi > nWords {
			hi = nWords
		}
		nw := hi - lo
		if off+4 > len(data) {
			return nil, ErrCorrupt
		}
		mask := binary.LittleEndian.Uint32(data[off:])
		off += 4
		var rows [32]uint32
		for b := 0; b < 32; b++ {
			if mask>>uint(b)&1 != 0 {
				if off+4 > len(data) {
					return nil, ErrCorrupt
				}
				rows[b] = binary.LittleEndian.Uint32(data[off:])
				off += 4
			}
		}
		for i := 0; i < nw; i++ {
			var res uint32
			for b := 0; b < 32; b++ {
				if rows[b]>>uint(i)&1 != 0 {
					res |= 1 << uint(b)
				}
			}
			prev ^= res
			binary.LittleEndian.PutUint32(out[(lo+i)*4:], prev)
		}
	}
	tailLen := origLen - nWords*4
	if off+tailLen != len(data) {
		return nil, ErrCorrupt
	}
	copy(out[nWords*4:], data[off:])
	return out, nil
}

func trailingZeros32(v uint32) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}
