package pipeline

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](4, 0, func(int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(4, 100, func(i int) (int, error) {
		if i == 17 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapStopsAfterError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := Map(2, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Workers stop claiming new jobs once an error lands; with 2 workers
	// at most a handful of jobs were already in flight.
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("ran all %d jobs despite early error", n)
	}
}

func TestPoolOrderedDelivery(t *testing.T) {
	p := New[string](4, 3)
	done := make(chan error, 1)
	const n = 64
	go func() {
		for i := 0; i < n; i++ {
			v, err, ok := p.Next()
			if !ok || err != nil {
				done <- fmt.Errorf("next %d: ok=%v err=%v", i, ok, err)
				return
			}
			if want := fmt.Sprintf("job-%d", i); v != want {
				done <- fmt.Errorf("out of order: got %q want %q", v, want)
				return
			}
		}
		if _, _, ok := p.Next(); ok {
			done <- errors.New("Next ok after drain")
			return
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		i := i
		p.Submit(func() (string, error) { return fmt.Sprintf("job-%d", i), nil })
	}
	p.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	p.Wait()
}

func TestPoolErrorPassthrough(t *testing.T) {
	p := New[int](2, 0)
	boom := errors.New("boom")
	p.Submit(func() (int, error) { return 1, nil })
	p.Submit(func() (int, error) { return 0, boom })
	p.Close()
	v, err, ok := p.Next()
	if !ok || err != nil || v != 1 {
		t.Fatalf("first: %v %v %v", v, err, ok)
	}
	if _, err, ok := p.Next(); !ok || !errors.Is(err, boom) {
		t.Fatalf("second: err=%v ok=%v", err, ok)
	}
	p.Wait()
}
