package szp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, data []float32, eb float64) []byte {
	t.Helper()
	blob, err := Compress(dev, data, eb)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(data) {
		t.Fatalf("len %d != %d", len(recon), len(data))
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("bound violated at %d: %v vs %v", i, data[i], recon[i])
	}
	return blob
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil, 1e-3)
	roundTrip(t, []float32{1}, 1e-3)
	roundTrip(t, []float32{1, 2, 3, 4, 5}, 1e-3)
	roundTrip(t, make([]float32, 1000), 1e-3)
}

func TestRoundTripSmooth(t *testing.T) {
	data := make([]float32, 100_000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.001))
	}
	for _, eb := range []float64{1e-2, 1e-3, 1e-5} {
		blob := roundTrip(t, data, eb)
		if eb == 1e-2 && len(blob) > len(data) {
			t.Fatalf("smooth data did not compress: %d bytes", len(blob))
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 10_000)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 50)
	}
	roundTrip(t, data, 1e-3)
}

func TestRoundTripExtreme(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float32, 5000)
	for i := range data {
		data[i] = float32(rng.NormFloat64()) * 1e32
	}
	roundTrip(t, data, 1e-3)
}

func TestZeroBlocksSparsified(t *testing.T) {
	// Constant field: every delta block after the first is all-zero.
	data := make([]float32, 1_000_000)
	blob := roundTrip(t, data, 1e-3)
	// Floor: 1 bitmap bit per 32 floats = ratio 1024.
	if len(blob) > 4*len(data)/500 {
		t.Fatalf("constant field compressed to %d bytes", len(blob))
	}
}

func TestDataset(t *testing.T) {
	f, err := datagen.Generate("nyx", []int{32, 48, 48}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	blob := roundTrip(t, f.Data, eb)
	cr := metrics.CR(f.SizeBytes(), len(blob))
	if cr < 2 {
		t.Fatalf("nyx CR = %.2f, want > 2", cr)
	}
}

func TestCompressErrors(t *testing.T) {
	if _, err := Compress(dev, []float32{1}, 0); err == nil {
		t.Fatal("want eb error")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := make([]float32, 5000)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	blob, err := Compress(dev, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := Decompress(dev, blob[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
	for trial := 0; trial < 30; trial++ {
		bad := append([]byte(nil), blob...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		Decompress(dev, bad) // must not panic
	}
}

// TestCtxMatchesContextFree: the arena-context entry points must produce
// byte-identical containers to the context-free wrappers.
func TestCtxMatchesContextFree(t *testing.T) {
	data := make([]float32, 40_000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.002))
	}
	want, err := Compress(dev, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := arena.NewCtx()
	got, err := CompressCtx(ctx, dev, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("context compression diverges from context-free compression")
	}
	ctx.Reset()
	recon, err := DecompressCtx(ctx, dev, got)
	if err != nil {
		t.Fatal(err)
	}
	if i := metrics.FirstViolation(data, recon, 1e-3); i >= 0 {
		t.Fatalf("bound violated at %d", i)
	}
}

// TestAllocsWarmCtx is the arena-refactor guard: warm contexts must run
// the round trip with a near-constant handful of allocations (output
// container, kernel closure), independent of the stream length.
func TestAllocsWarmCtx(t *testing.T) {
	data := make([]float32, 60_000)
	for i := range data {
		data[i] = float32(i%23) * 0.5
	}
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ctx := arena.NewCtx()
	blob, err := CompressCtx(ctx, dev1, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if _, err := DecompressCtx(ctx, dev1, blob); err != nil {
		t.Fatal(err)
	}
	comp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := CompressCtx(ctx, dev1, data, 1e-3); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm compress: %v allocs/op", comp)
	if comp > 6 {
		t.Fatalf("steady-state compress allocates %v/op, want <= 6", comp)
	}
	decomp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := DecompressCtx(ctx, dev1, blob); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm decompress: %v allocs/op", decomp)
	if decomp > 4 {
		t.Fatalf("steady-state decompress allocates %v/op, want <= 4", decomp)
	}
}
