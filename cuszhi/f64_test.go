package cuszhi

import (
	"math"
	"testing"

	"repro/internal/datagen"
)

func TestF64RoundTripWithinBound(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{32, 48, 48}, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, f.Len())
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range f.Data {
		// Perturb beyond float32 precision to make the input genuinely
		// double-precision.
		data[i] = float64(v) + 1e-12*float64(i%7)
		if data[i] < lo {
			lo = data[i]
		}
		if data[i] > hi {
			hi = data[i]
		}
	}
	relEB := 1e-3
	absEB := relEB * (hi - lo)
	c, err := New(ModeCR, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.CompressF64(data, f.Dims, relEB)
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := c.DecompressF64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 3 || len(recon) != len(data) {
		t.Fatalf("shape: dims %v len %d", dims, len(recon))
	}
	for i := range data {
		if math.Abs(data[i]-recon[i]) > absEB*(1+1e-9) {
			t.Fatalf("bound violated at %d: %v vs %v (eb %v)", i, data[i], recon[i], absEB)
		}
	}
}

func TestF64BoundBelowPrecisionRejected(t *testing.T) {
	data := []float64{1e30, 2e30, 3e30, 4e30, 1e30, 2e30, 3e30, 4e30}
	c, _ := New(ModeCR)
	// eb far below the f32 ULP at 1e30 must be rejected, not silently
	// violated.
	if _, err := c.CompressF64Abs(data, []int{2, 2, 2}, 1.0); err == nil {
		t.Fatal("want precision error")
	}
}

func TestF64Validation(t *testing.T) {
	c, _ := New(ModeCR)
	if _, err := c.CompressF64(nil, nil, 1e-3); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := c.CompressF64([]float64{1}, []int{1}, 0); err == nil {
		t.Fatal("want eb error")
	}
	if _, err := c.CompressF64Abs([]float64{1}, []int{1}, -1); err == nil {
		t.Fatal("want abs eb error")
	}
}

func TestF64ConstantField(t *testing.T) {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 3.14159
	}
	c, _ := New(ModeTP)
	blob, err := c.CompressF64(data, []int{10, 10, 10}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := c.DecompressF64(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recon {
		if math.Abs(recon[i]-3.14159) > 1e-4 {
			t.Fatalf("constant field drifted: %v", recon[i])
		}
	}
}
