package lccodec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

var allComponents = []string{
	"HF", "BIT1", "DIFFMS1", "CLOG1",
	"RRE1", "RRE2", "RRE4", "RRE8",
	"RZE1", "RZE2", "RZE4",
	"TCMS1", "TCMS2", "TCMS4", "TCMS8",
	"TUPLQ1", "TUPLD1", "TUPLD2", "TUPLQ2",
}

func testVectors(rng *rand.Rand) [][]byte {
	runs := make([]byte, 10_000)
	for i := range runs {
		runs[i] = byte(i / 500)
	}
	sparse := make([]byte, 10_000)
	for i := 0; i < len(sparse); i += 97 {
		sparse[i] = byte(rng.Intn(255) + 1)
	}
	random := make([]byte, 4097)
	rng.Read(random)
	skewed := make([]byte, 20_000)
	for i := range skewed {
		if rng.Intn(20) == 0 {
			skewed[i] = byte(rng.Intn(256))
		} else {
			skewed[i] = 128
		}
	}
	return [][]byte{
		nil,
		{0},
		{1, 2, 3},
		make([]byte, 1000), // all zeros
		runs, sparse, random, skewed,
		bytes.Repeat([]byte{0xAA, 0xAA, 0xAA, 0xAA}, 2000),
		random[:7], // not a multiple of any width
	}
}

func TestComponentsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := testVectors(rng)
	for _, name := range allComponents {
		c, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("Name() = %q, want %q", c.Name(), name)
		}
		for vi, v := range vecs {
			enc, err := c.Encode(nil, dev, v)
			if err != nil {
				t.Fatalf("%s vec %d encode: %v", name, vi, err)
			}
			dec, err := c.Decode(nil, dev, enc)
			if err != nil {
				t.Fatalf("%s vec %d decode: %v", name, vi, err)
			}
			if !bytes.Equal(dec, v) {
				t.Fatalf("%s vec %d: round trip mismatch (len %d vs %d)", name, vi, len(dec), len(v))
			}
		}
	}
}

func TestUnknownComponent(t *testing.T) {
	if _, err := New("WAT9"); err == nil {
		t.Fatal("want error for unknown component")
	}
}

func TestRRECompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte{42}, 100_000)
	c, _ := New("RRE1")
	enc, err := c.Encode(nil, dev, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(data)/50 {
		t.Fatalf("constant run compressed to only %d bytes", len(enc))
	}
}

func TestRZECompressesZeros(t *testing.T) {
	data := make([]byte, 100_000)
	for i := 0; i < len(data); i += 1000 {
		data[i] = 7
	}
	c, _ := New("RZE1")
	enc, err := c.Encode(nil, dev, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(data)/20 {
		t.Fatalf("sparse data compressed to only %d bytes", len(enc))
	}
}

func TestTCMSCentersSmallMagnitudes(t *testing.T) {
	// Bytes near 128 (the quant-code zero point after offset... here: values
	// near 0 in two's complement, i.e. 0, 255, 1, 254) must map to small
	// values with mostly-zero high bits.
	c, _ := New("TCMS1")
	enc, err := c.Encode(nil, dev, []byte{0, 255, 1, 254, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 2, 3, 4}
	if !bytes.Equal(enc, want) {
		t.Fatalf("TCMS1 = %v, want %v", enc, want)
	}
}

func TestTCMS8MatchesPaperFormula(t *testing.T) {
	// §5.2.3: (word << 1) ^ (word >> 63) on 8-byte words.
	src := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF} // -1
	c, _ := New("TCMS8")
	enc, _ := c.Encode(nil, dev, src)
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0} // zigzag(-1) = 1
	if !bytes.Equal(enc, want) {
		t.Fatalf("TCMS8(-1) = %v, want %v", enc, want)
	}
}

func TestBitShuffleGroupsPlanes(t *testing.T) {
	// All inputs with only bit 0 set: after shuffling, plane 0 is all ones
	// (first n/8 bytes 0xFF), everything else zero.
	n := 4096
	src := bytes.Repeat([]byte{1}, n)
	c, _ := New("BIT1")
	enc, _ := c.Encode(nil, dev, src)
	for i := 0; i < n/8; i++ {
		if enc[i] != 0xFF {
			t.Fatalf("plane 0 byte %d = %#x", i, enc[i])
		}
	}
	for i := n / 8; i < n; i++ {
		if enc[i] != 0 {
			t.Fatalf("plane >0 byte %d = %#x", i, enc[i])
		}
	}
}

func TestCLOGPacksSmallValues(t *testing.T) {
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i % 4) // needs 2 bits
	}
	c, _ := New("CLOG1")
	enc, err := c.Encode(nil, dev, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(data)/3 {
		t.Fatalf("2-bit data packed to %d bytes", len(enc))
	}
}

func TestPipelineParse(t *testing.T) {
	p, err := Parse("HF-RRE4-TCMS8-RZE1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 4 {
		t.Fatalf("stages = %d", len(p.Stages))
	}
	// '+' separator as in the paper's figure labels.
	p2, err := Parse("HF+RRE1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Stages) != 2 {
		t.Fatalf("stages = %d", len(p2.Stages))
	}
	if _, err := Parse("HF-XXX"); err == nil {
		t.Fatal("want error")
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("want error for empty pipeline")
	}
}

func TestHiPipelinesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Quant-code-like stream: mostly 128 with small deviations.
	data := make([]byte, 123_457)
	for i := range data {
		data[i] = byte(128 + rng.NormFloat64()*2)
	}
	for _, p := range []*Pipeline{HiCR(), HiTP()} {
		enc, err := p.Encode(dev, data)
		if err != nil {
			t.Fatalf("%s: %v", p.Spec, err)
		}
		dec, err := p.Decode(dev, enc)
		if err != nil {
			t.Fatalf("%s: %v", p.Spec, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("%s: round trip mismatch", p.Spec)
		}
		if len(enc) >= len(data)/2 {
			t.Fatalf("%s: quant codes compressed to %d/%d", p.Spec, len(enc), len(data))
		}
	}
}

func TestHiCRBeatsHuffmanAloneOnRuns(t *testing.T) {
	// The motivation of §5.2: Huffman floors at 1 bit/symbol; the reducing
	// stages go below it on run-heavy data.
	data := make([]byte, 200_000)
	for i := range data {
		data[i] = 128
	}
	for i := 0; i < len(data); i += 1009 {
		data[i] = byte(120 + i%16)
	}
	hfOnly := MustParse("HF")
	encHF, err := hfOnly.Encode(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	encCR, err := HiCR().Encode(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(encCR) >= len(encHF) {
		t.Fatalf("HiCR (%d) should beat HF alone (%d) on run-heavy data", len(encCR), len(encHF))
	}
}

func TestDecodeCorruptNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := make([]byte, 5000)
	rng.Read(data)
	for _, spec := range []string{"RRE1", "RZE1", "CLOG1", "HF-RRE4-TCMS8-RZE1", "TCMS1-BIT1-RRE1"} {
		p := MustParse(spec)
		enc, err := p.Encode(dev, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
			p.Decode(dev, enc[:cut]) // must not panic
		}
		for trial := 0; trial < 30; trial++ {
			bad := append([]byte(nil), enc...)
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
			p.Decode(dev, bad) // must not panic
		}
	}
}

// TestDecodeHostileLengthsNoPanic locks the wire-length caps: a stream
// declaring a near-2^64 original length used to overflow int conversion
// into a negative slice bound and panic (found by FuzzDecompress; the
// crasher lives on as cuszhi/testdata/fuzz corpus entry ed65e944…).
func TestDecodeHostileLengthsNoPanic(t *testing.T) {
	huge := bitio.AppendUvarint(nil, 1<<63+1<<40+5) // origLen far past any cap
	huge = bitio.AppendUvarint(huge, 4)             // bmLen
	huge = append(huge, 0, 1, 2, 3, 4, 5, 6, 7)
	for _, spec := range []string{"RRE1", "RRE4", "RZE1", "CLOG1"} {
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decode(nil, dev, huge); err == nil {
			t.Fatalf("%s: hostile origLen decoded without error", spec)
		}
	}
	// And a bitmap length that overflows int must be refused, not sliced.
	badBM := bitio.AppendUvarint(nil, 64)       // plausible origLen
	badBM = bitio.AppendUvarint(badBM, 1<<63+9) // bmLen overflows int
	badBM = append(badBM, make([]byte, 32)...)
	for _, spec := range []string{"RRE1", "RZE1"} {
		c, _ := New(spec)
		if _, err := c.Decode(nil, dev, badBM); err == nil {
			t.Fatalf("%s: hostile bmLen decoded without error", spec)
		}
	}
}

func TestComponentsRoundTripProperty(t *testing.T) {
	for _, name := range []string{"RRE1", "RZE1", "TCMS1", "BIT1", "DIFFMS1", "CLOG1", "TUPLQ1"} {
		c, _ := New(name)
		f := func(data []byte) bool {
			enc, err := c.Encode(nil, dev, data)
			if err != nil {
				return false
			}
			dec, err := c.Decode(nil, dev, enc)
			return err == nil && bytes.Equal(dec, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRecursiveBitmapActuallyRecurses(t *testing.T) {
	// A long constant region produces an all-zero bitmap that should be
	// recursively squeezed: output must be far below bitmap size (n/8).
	data := bytes.Repeat([]byte{9}, 1<<20)
	c, _ := New("RRE1")
	enc, err := c.Encode(nil, dev, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > (1<<20)/64 {
		t.Fatalf("bitmap not recursively compressed: %d bytes", len(enc))
	}
}
