// Autoselect: demonstrates the extension mechanisms built on top of the
// paper (its §7 future-work list): per-input compressor auto-selection
// (cuszhi.ModeAuto), per-chunk adaptive selection (stream.WithAutoMode,
// format v5), and LC-pipeline search over a data sample. A mixed workload
// — a smooth hydrodynamics field and a rough turbulence field — shows
// auto-selection adapting per input; a field whose character changes
// mid-volume shows it adapting per chunk.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/cuszhi"
	"repro/cuszhi/stream"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/lccodec"
	"repro/internal/metrics"
)

func main() {
	dev := gpusim.New(0)
	auto, err := cuszhi.New(cuszhi.ModeAuto)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== per-input auto-selection (ModeAuto) ==")
	fmt.Printf("%-10s %10s %10s\n", "field", "ratio", "PSNR")
	for _, name := range []string{"miranda", "jhtdb", "nyx"} {
		f, err := datagen.Generate(name, []int{48, 64, 64}, 1)
		if err != nil {
			log.Fatal(err)
		}
		blob, err := auto.Compress(f.Data, f.Dims, 1e-2)
		if err != nil {
			log.Fatal(err)
		}
		recon, _, err := auto.Decompress(blob)
		if err != nil {
			log.Fatal(err)
		}
		st := cuszhi.Evaluate(f.Data, blob, recon, metrics.AbsEB(f.Data, 1e-2))
		if !st.WithinEB {
			log.Fatalf("%s: bound violated", name)
		}
		fmt.Printf("%-10s %10.1f %10.1f\n", name, st.Ratio, st.PSNR)
	}

	fmt.Println("\n== per-chunk adaptive selection (stream.WithAutoMode, format v5) ==")
	// A field whose character flips mid-volume: smooth ramp planes, then
	// small-scale noise. One global mode must compromise; per-chunk
	// selection switches codecs where the data changes.
	dims := []int{64, 32, 32}
	ps := dims[1] * dims[2]
	mixed := make([]float32, dims[0]*ps)
	rng := rand.New(rand.NewSource(3))
	for z := 0; z < dims[0]; z++ {
		for i := 0; i < ps; i++ {
			if z < dims[0]/2 {
				mixed[z*ps+i] = float32(z)*0.5 + float32(i%dims[2])*0.125
			} else {
				mixed[z*ps+i] = float32(rng.NormFloat64() * 10)
			}
		}
	}
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, dims, cuszhi.AbsEB(mixed, 1e-3), stream.WithAutoMode(), stream.WithChunkPlanes(16))
	if err != nil {
		log.Fatal(err)
	}
	if err := w.WriteValues(mixed); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := cuszhi.Inspect(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(info.ChunkCodecs))
	for name := range info.ChunkCodecs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("format v%d, %d chunks, per-chunk codecs:\n", info.Version, info.NumChunks)
	for _, name := range names {
		fmt.Printf("  %-8s ×%d\n", name, info.ChunkCodecs[name])
	}

	fmt.Println("\n== LC pipeline search on a quant-code sample (<=2 stages) ==")
	f, err := datagen.Generate("nyx", []int{48, 64, 64}, 1)
	if err != nil {
		log.Fatal(err)
	}
	codes, err := experiments.HiQuantCodes(dev, f, 1e-3, true)
	if err != nil {
		log.Fatal(err)
	}
	results, err := lccodec.Search(dev, codes[:1<<16], []string{"HF", "RRE1", "RZE1", "TCMS1", "BIT1"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %8s %8s\n", "pipeline", "CR", "Pareto")
	for i, r := range results {
		if i >= 8 {
			break
		}
		fmt.Printf("%-20s %8.2f %8v\n", r.Spec, r.Ratio, r.Pareto)
	}
}
