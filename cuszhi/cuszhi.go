// Package cuszhi is the public API of this repository's Go reproduction of
// cuSZ-Hi, the high-ratio error-bounded lossy compressor for scientific
// floating-point data (Wu, Pan, Liu, Tian, et al., SC 2025).
//
// Quickstart:
//
//	c, _ := cuszhi.New(cuszhi.ModeCR)
//	blob, _ := c.Compress(data, []int{nz, ny, nx}, 1e-3) // relative eb
//	recon, dims, _ := c.Decompress(blob)
//
// Error bounds are value-range-relative by default, matching the paper's
// evaluation methodology (§6.1.4); CompressAbs takes an absolute bound.
// Mode selects between the two cuSZ-Hi lossless pipelines (§5.2.3) and the
// paper's baselines, which this repository also implements in full.
package cuszhi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

// Mode identifies a compressor assembly.
type Mode string

// Available modes.
const (
	// ModeCR is cuSZ-Hi-CR: the compression-ratio-preferred mode
	// (auto-tuned multi-dimensional interpolation, level-order code
	// reordering, HF-RRE4-TCMS8-RZE1 lossless pipeline).
	ModeCR Mode = "hi-cr"
	// ModeTP is cuSZ-Hi-TP: the throughput-preferred mode
	// (TCMS1-BIT1-RRE1 lossless pipeline, no Huffman stage).
	ModeTP Mode = "hi-tp"
	// ModeCuszI is the cuSZ-I baseline (interpolation + Huffman).
	ModeCuszI Mode = "cusz-i"
	// ModeCuszIB is the cuSZ-IB baseline (cuSZ-I + Bitcomp surrogate).
	ModeCuszIB Mode = "cusz-ib"
	// ModeCuszL is the cuSZ-L baseline (Lorenzo + Huffman).
	ModeCuszL Mode = "cusz-l"
	// ModeFzGPU is the FZ-GPU baseline (Lorenzo dual-quant + bit-shuffle
	// de-redundancy), a throughput-oriented backend chunk codec. Backend
	// modes always write heterogeneous-capable (format v5) containers —
	// single-chunk unless WithChunkPlanes shards the field.
	ModeFzGPU Mode = "fzgpu"
	// ModeSZp is the cuSZp2 surrogate (1-D delta prediction + per-block
	// fixed-length packing), a backend chunk codec.
	ModeSZp Mode = "szp"
	// ModeSZx is the cuSZx/SZx surrogate (constant/truncated-mantissa
	// blocks), a backend chunk codec.
	ModeSZx Mode = "szx"
	// ModeAuto selects an assembly per input by sample compression — the
	// auto-selection mechanism sketched as future work in §7 of the paper.
	ModeAuto Mode = "auto"
)

// Modes lists every fixed-assembly mode (ModeAuto composes these together
// with the backend modes).
func Modes() []Mode {
	return []Mode{ModeCR, ModeTP, ModeCuszI, ModeCuszIB, ModeCuszL}
}

// BackendModes lists the alternate-backend chunk codecs: registry-
// dispatched compressors without a predictor/pipeline assembly, whose
// containers are always format v5 (the codec wire ID lives in the chunk
// frames and the index footer).
func BackendModes() []Mode {
	return []Mode{ModeFzGPU, ModeSZp, ModeSZx}
}

func options(m Mode) (core.Options, error) {
	o, err := core.ModeOptions(string(m))
	if err != nil {
		return core.Options{}, fmt.Errorf("cuszhi: unknown mode %q", m)
	}
	return o, nil
}

// Option customizes a Compressor.
type Option func(*Compressor)

// WithWorkers sets the simulated device's parallel width (default:
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *Compressor) { c.dev = gpusim.New(n) }
}

// WithChunkPlanes switches Compress to the chunked (format v2) path: the
// field is sharded into slabs of n planes along the slowest dimension and
// the shards are compressed concurrently into a multi-chunk container.
// n <= 0 keeps the single-shot v1 path. Decompress handles both formats
// transparently.
func WithChunkPlanes(n int) Option {
	return func(c *Compressor) { c.chunkPlanes = n }
}

// WithAutoPolicy sets how ModeAuto ranks the candidates' size estimates:
// "best-ratio" (default) takes the smallest estimate, "throughput" the
// fastest codec within 15% of it, and "ratio-floor:F" the fastest codec
// whose estimated compression ratio is at least F. New rejects unknown
// spellings, and rejects the option entirely for non-auto modes.
func WithAutoPolicy(name string) Option {
	return func(c *Compressor) { c.policyName = name }
}

// Compressor is a reusable, goroutine-safe compressor instance.
type Compressor struct {
	mode        Mode
	auto        bool
	opts        core.Options
	codec       core.Codec // backend chunk codec (fzgpu/szp/szx) modes
	dev         *gpusim.Device
	chunkPlanes int
	policyName  string               // WithAutoPolicy spelling, "" = default
	pol         core.SelectionPolicy // resolved auto-mode ranking policy
}

// New returns a Compressor for the given mode.
func New(mode Mode, opts ...Option) (*Compressor, error) {
	c := &Compressor{mode: mode, dev: gpusim.Default}
	switch {
	case mode == ModeAuto:
		c.auto = true
	default:
		co, err := options(mode)
		if err != nil {
			// Not an assembly: backend chunk codecs (fzgpu/szp/szx) resolve
			// through the registry and compress via format-v5 containers.
			if cd, ok := core.CodecByName(string(mode)); ok {
				c.codec = cd
				break
			}
			return nil, err
		}
		c.opts = co
	}
	for _, o := range opts {
		o(c)
	}
	if c.policyName != "" && !c.auto {
		return nil, fmt.Errorf("cuszhi: WithAutoPolicy(%q) needs ModeAuto; mode is %q", c.policyName, mode)
	}
	if c.auto {
		pol, err := core.PolicyByName(c.policyName)
		if err != nil {
			return nil, fmt.Errorf("cuszhi: %w", err)
		}
		c.pol = pol
	}
	return c, nil
}

// Mode reports the compressor's mode.
func (c *Compressor) Mode() Mode { return c.mode }

// Compress encodes data with the given shape (slowest dim first) under a
// value-range-relative error bound relEB, as in the paper's experiments.
func (c *Compressor) Compress(data []float32, dims []int, relEB float64) ([]byte, error) {
	if relEB <= 0 {
		return nil, fmt.Errorf("cuszhi: relative error bound %v must be positive", relEB)
	}
	return c.CompressAbs(data, dims, metrics.AbsEB(data, relEB))
}

// CompressAbs encodes data under an absolute error bound.
func (c *Compressor) CompressAbs(data []float32, dims []int, absEB float64) ([]byte, error) {
	if c.auto {
		if c.chunkPlanes > 0 {
			// Chunked auto mode goes per-shard: every shard gets whichever
			// registered codec the estimator cascade scores best on a sample
			// of it (ranked by the selection policy), producing a
			// heterogeneous (format v5) container.
			return core.CompressChunkedAutoPolicy(c.dev, data, dims, absEB, c.chunkPlanes, c.pol)
		}
		sel, err := core.AutoSelectPolicy(nil, c.dev, data, dims, absEB, c.pol)
		if err != nil {
			return nil, err
		}
		if sel.Options.Name == "" {
			// A backend codec won: its payload only lives inside v5 chunk
			// frames, so wrap the field as a single-chunk v5 container.
			return core.CompressChunkedCodec(c.dev, data, dims, absEB, sel.Codec, dims[0])
		}
		// Compress through the selection's registered codec — the same
		// dispatch surface the per-chunk paths use.
		return sel.Codec.Compress(nil, c.dev, data, dims, absEB)
	}
	if c.codec != nil {
		// Backend chunk codecs always emit format v5 — a single chunk
		// unless WithChunkPlanes shards the field.
		cp := c.chunkPlanes
		if cp <= 0 {
			if len(dims) == 0 {
				return nil, fmt.Errorf("cuszhi: empty dims")
			}
			cp = dims[0]
		}
		return core.CompressChunkedCodec(c.dev, data, dims, absEB, c.codec, cp)
	}
	if c.chunkPlanes > 0 {
		return core.CompressChunked(c.dev, data, dims, absEB, c.opts, c.chunkPlanes)
	}
	return core.Compress(c.dev, data, dims, absEB, c.opts)
}

// Decompress decodes a container produced by any mode, returning the
// reconstruction and its dims.
func (c *Compressor) Decompress(blob []byte) ([]float32, []int, error) {
	return core.Decompress(c.dev, blob)
}

// Compress is a convenience one-shot using ModeCR.
func Compress(data []float32, dims []int, relEB float64) ([]byte, error) {
	c, err := New(ModeCR)
	if err != nil {
		return nil, err
	}
	return c.Compress(data, dims, relEB)
}

// Decompress is a convenience one-shot decoder.
func Decompress(blob []byte) ([]float32, []int, error) {
	return core.Decompress(gpusim.Default, blob)
}

// Stats summarizes a compression run.
type Stats struct {
	OrigBytes  int
	CompBytes  int
	Ratio      float64 // |X| / |Z|
	BitRate    float64 // bits per element
	PSNR       float64 // dB, value-range based
	MaxErr     float64 // L-infinity error
	WithinEB   bool    // max error within the given absolute bound
	AbsErrorEB float64
}

// Evaluate computes Stats for an (orig, blob, recon) triple under absolute
// bound absEB.
func Evaluate(orig []float32, blob []byte, recon []float32, absEB float64) Stats {
	d := metrics.Compare(orig, recon)
	return Stats{
		OrigBytes:  4 * len(orig),
		CompBytes:  len(blob),
		Ratio:      metrics.CR(4*len(orig), len(blob)),
		BitRate:    metrics.BitRate(len(orig), len(blob)),
		PSNR:       d.PSNR,
		MaxErr:     d.MaxErr,
		WithinEB:   metrics.WithinBound(orig, recon, absEB),
		AbsErrorEB: absEB,
	}
}

// ContainerInfo summarizes a compressed container's header without
// decoding any payloads.
type ContainerInfo struct {
	Version     int
	Dims        []int
	AbsErrorEB  float64 // the container's bound; relative when RelativeEB
	RelativeEB  bool    // v3+ streams: bound is value-range-relative
	NumChunks   int     // 0 for one-shot (v1) containers
	ChunkPlanes int     // 0 for one-shot (v1) containers
	HasIndex    bool    // v4/v5: a chunk-index footer makes the container seekable
	// ChunkCodecs counts chunks per codec mode name for heterogeneous (v5)
	// containers, read from the chunk-index footer alone; nil otherwise.
	ChunkCodecs map[string]int
	// ChunkCRs holds each chunk's achieved compression ratio in plane
	// order, derived from the index footer's frame extents (v4/v5
	// containers with an index); nil otherwise. Next to auto mode's
	// estimated ratios it shows how the selection actually landed,
	// per chunk.
	ChunkCRs []float64
}

// Inspect reads a container's header (any format version).
func Inspect(blob []byte) (*ContainerInfo, error) {
	info, err := core.Inspect(blob)
	if err != nil {
		return nil, err
	}
	return &ContainerInfo{Version: info.Version, Dims: info.Dims, AbsErrorEB: info.EB,
		RelativeEB: info.RelEB, NumChunks: info.NumChunks, ChunkPlanes: info.ChunkPlanes,
		HasIndex: info.HasIndex, ChunkCodecs: info.ChunkCodecs, ChunkCRs: info.ChunkCRs}, nil
}

// AbsEB converts a value-range-relative error bound to the absolute bound
// used by Eq. 1 of the paper (relEB times the data's value range).
func AbsEB(data []float32, relEB float64) float64 {
	return metrics.AbsEB(data, relEB)
}

// GenerateDataset synthesizes one of the repository's benchmark stand-in
// fields (cesm, jhtdb, miranda, nyx, qmcpack, rtm, hurricane, scale) at the
// given dims (nil = default small dims), returning the data and its dims.
// Fields are deterministic per (name, dims, seed).
func GenerateDataset(name string, dims []int, seed int64) ([]float32, []int, error) {
	f, err := datagen.Generate(name, dims, seed)
	if err != nil {
		return nil, nil, err
	}
	return f.Data, f.Dims, nil
}
