package core

import (
	"errors"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
)

// TestUnsupportedVersionIsCorrupt pins the standing invariant that an
// unknown version byte surfaces as ErrCorrupt through errors.Is on both
// the decode and inspect paths — callers distinguish corruption from API
// misuse by unwrapping, so a bare fmt.Errorf here is a silent contract
// break.
func TestUnsupportedVersionIsCorrupt(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{16, 16, 16}, 3)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Compress(dev, f.Data, f.Dims, metrics.AbsEB(f.Data, 1e-3), HiCR())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[4] = 0xEE
	if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decompress: got %v, want ErrCorrupt", err)
	}
	if _, err := Inspect(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Inspect: got %v, want ErrCorrupt", err)
	}
}
