package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/gpusim"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, syms []uint16, alphabet int) {
	t.Helper()
	enc, err := Encode(dev, syms, alphabet)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(dev, enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != len(syms) {
		t.Fatalf("len %d != %d", len(dec), len(syms))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("mismatch at %d: %d != %d", i, dec[i], syms[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil, 256) }

func TestRoundTripSingleSymbol(t *testing.T) {
	syms := make([]uint16, 1000)
	roundTrip(t, syms, 256)
}

func TestRoundTripTwoSymbols(t *testing.T) {
	syms := make([]uint16, 500)
	for i := range syms {
		syms[i] = uint16(i % 2)
	}
	roundTrip(t, syms, 2)
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint16, 200_000)
	for i := range syms {
		// Geometric-ish distribution centered at 128, like quant codes.
		v := 128
		for rng.Intn(2) == 0 && v < 255 {
			v++
		}
		syms[i] = uint16(v)
	}
	roundTrip(t, syms, 256)
}

func TestRoundTripUniform16Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	syms := make([]uint16, 50_000)
	for i := range syms {
		syms[i] = uint16(rng.Intn(1024))
	}
	roundTrip(t, syms, 1024)
}

func TestRoundTripCrossesChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]uint16, DefaultChunk*2+777)
	for i := range syms {
		syms[i] = uint16(rng.Intn(8))
	}
	roundTrip(t, syms, 256)
}

func TestCompressionBeatsRaw(t *testing.T) {
	// Highly skewed data must compress well below 1 byte/symbol.
	syms := make([]uint16, 100_000)
	rng := rand.New(rand.NewSource(4))
	for i := range syms {
		if rng.Intn(100) == 0 {
			syms[i] = uint16(rng.Intn(256))
		} else {
			syms[i] = 128
		}
	}
	enc, err := Encode(dev, syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(syms)/4 {
		t.Fatalf("skewed data compressed to %d bytes (%.2f bits/sym)", len(enc), float64(len(enc))*8/float64(len(syms)))
	}
}

func TestEncodeBytesRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly: ")
	data = bytes.Repeat(data, 100)
	enc, err := EncodeBytes(dev, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(dev, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("byte round trip mismatch")
	}
	if len(enc) >= len(data) {
		t.Fatalf("text did not compress: %d >= %d", len(enc), len(data))
	}
}

func TestSymbolOutsideAlphabet(t *testing.T) {
	if _, err := Encode(dev, []uint16{300}, 256); err == nil {
		t.Fatal("want error for out-of-alphabet symbol")
	}
}

func TestBadAlphabet(t *testing.T) {
	if _, err := Encode(dev, nil, 0); err == nil {
		t.Fatal("want error for alphabet 0")
	}
	if _, err := Encode(dev, nil, 1<<17); err == nil {
		t.Fatal("want error for oversized alphabet")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	syms := make([]uint16, 10_000)
	rng := rand.New(rand.NewSource(5))
	for i := range syms {
		syms[i] = uint16(rng.Intn(200))
	}
	enc, err := Encode(dev, syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at various points must error, never panic.
	for _, cut := range []int{0, 1, 2, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(dev, enc[:cut]); err == nil {
			t.Fatalf("truncated to %d bytes: want error", cut)
		}
	}
	// Bit flips in the header region must error or decode to something,
	// never panic.
	for i := 0; i < 20 && i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		Decode(dev, bad) // must not panic
	}
}

func TestLengthLimiting(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; lengths must be capped.
	freq := make([]int64, 64)
	a, b := int64(1), int64(1)
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
		if a > 1<<40 {
			a = 1 << 40
		}
	}
	lens, err := (&scratch{}).buildLengths(freq)
	if err != nil {
		t.Fatal(err)
	}
	kraft := 0.0
	for _, l := range lens {
		if l > MaxCodeLen {
			t.Fatalf("length %d exceeds cap", l)
		}
		if l > 0 {
			kraft += 1 / float64(int(1)<<l)
		}
	}
	if kraft > 1.0000001 {
		t.Fatalf("Kraft sum %v > 1", kraft)
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	freq := []int64{10, 3, 1, 1, 7, 0, 2, 40}
	s := &scratch{}
	lens, err := s.buildLengths(freq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.buildDecodeTable(lens); err != nil {
		t.Fatalf("codes overlap: %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc, err := EncodeBytes(dev, data)
		if err != nil {
			return false
		}
		dec, err := DecodeBytes(dev, enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripDeepCodes drives symbols whose Fibonacci-like skew forces
// code lengths past tableBits, exercising the multi-symbol decoder's
// sub-table fallback alongside its one- and two-symbol primary probes.
func TestRoundTripDeepCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := make([]int, 40)
	a, b := 1, 1
	for i := range weights {
		weights[i] = a
		if a < 1<<28 {
			a, b = b, a+b
		}
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	syms := make([]uint16, 120_000)
	for i := range syms {
		r := rng.Intn(total)
		for s, w := range weights {
			if r < w {
				syms[i] = uint16(s)
				break
			}
			r -= w
		}
	}
	roundTrip(t, syms, 64)

	// The length set really must exceed the primary probe width, or this
	// test is not covering the sub-table path.
	s := &scratch{}
	freq := make([]int64, 64)
	for _, sym := range syms {
		freq[sym]++
	}
	lens, err := s.buildLengths(freq)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := uint8(0)
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
	}
	if int(maxLen) <= tableBits {
		t.Fatalf("max code length %d does not exceed tableBits %d; deep-code path untested", maxLen, tableBits)
	}
}

// TestMultiSymbolMatchesReference cross-checks the table-driven decoder
// against a naive bit-by-bit canonical decoder on random skews.
func TestMultiSymbolMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		alphabet := 2 + rng.Intn(300)
		syms := make([]uint16, 3000)
		for i := range syms {
			v := rng.Intn(alphabet)
			if rng.Intn(4) > 0 {
				v = v % (1 + alphabet/8) // skew toward a small subset
			}
			syms[i] = uint16(v)
		}
		enc, err := Encode(dev, syms, alphabet)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dec, err := Decode(dev, enc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reference decode: walk the canonical codes bit by bit.
		s := &scratch{}
		freq := make([]int64, alphabet)
		for _, sym := range syms {
			freq[sym]++
		}
		lens, err := s.buildLengths(freq)
		if err != nil {
			t.Fatal(err)
		}
		codes := s.canonicalCodes(lens)
		for i, want := range syms {
			if dec[i] != want {
				t.Fatalf("trial %d: symbol %d decoded as %d, want %d (len %d code %b)",
					trial, i, dec[i], want, codes[want].len, codes[want].bits)
			}
		}
	}
}

// TestDecodeCtxSteadyStateAllocs: a warm context decodes with at most one
// allocation per op (the launch bookkeeping), proving tables, outputs and
// chunk metadata all come from the reusable scratch.
func TestDecodeCtxSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	syms := make([]uint16, 100_000)
	for i := range syms {
		syms[i] = uint16(128 + int(rng.NormFloat64()*4))
	}
	enc, err := Encode(dev, syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	dev1 := gpusim.New(1)
	ctx := arena.NewCtx()
	if _, err := DecodeCtx(ctx, dev1, enc); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := DecodeCtx(ctx, dev1, enc); err != nil {
			t.Fatal(err)
		}
	})
	if n > 1 {
		t.Fatalf("warm DecodeCtx allocates %v/op, want <= 1", n)
	}
}

// TestDecodeHostileChunkLen: a container declaring a 2^63-scale chunk
// length must fail cleanly instead of overflowing int and panicking on a
// negative slice bound (found by review; the overflow predates the
// multi-symbol decoder but the guards now catch it).
func TestDecodeHostileChunkLen(t *testing.T) {
	syms := make([]uint16, 100)
	enc, err := Encode(dev, syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the chunk-length varint: header is alphabet, lens RLE,
	// nSyms, chunk, nChunks, then one chunk length. Rebuild the prefix to
	// find its offset.
	s := &scratch{}
	freq := make([]int64, 256)
	freq[0] = 100
	lens, err := s.buildLengths(freq)
	if err != nil {
		t.Fatal(err)
	}
	prefix := bitio.AppendUvarint(nil, 256)
	prefix = appendLengthsRLE(prefix, lens)
	prefix = bitio.AppendUvarint(prefix, 100)               // nSyms
	prefix = bitio.AppendUvarint(prefix, DefaultChunk)      // chunk
	prefix = bitio.AppendUvarint(prefix, 1)                 // nChunks
	hostile := bitio.AppendUvarint(prefix, uint64(1)<<63+1) // chunkLen
	hostile = append(hostile, enc[len(hostile):]...)
	if _, err := Decode(dev, hostile); err == nil {
		t.Fatal("hostile chunk length decoded without error")
	}
}

// TestEncodeCtxRejectsMismatchedHistogram: a caller-supplied histogram
// that disagrees with the symbol stream must be rejected, not trusted.
func TestEncodeCtxRejectsMismatchedHistogram(t *testing.T) {
	syms := []uint16{1, 2, 3}
	short := make([]int64, 256)
	short[1] = 1 // sums to 1, stream has 3
	if _, err := EncodeCtx(nil, dev, syms, 256, short); err == nil {
		t.Fatal("mismatched histogram accepted")
	}
	neg := make([]int64, 256)
	neg[1], neg[2] = 5, -2
	if _, err := EncodeCtx(nil, dev, syms, 256, neg); err == nil {
		t.Fatal("negative histogram accepted")
	}
	if _, err := EncodeCtx(nil, dev, syms, 256, make([]int64, 7)); err == nil {
		t.Fatal("wrong-length histogram accepted")
	}
	// Sum matches but the per-symbol counts disagree with the stream:
	// symbol 3 would get a zero-length code and vanish from the payload.
	skewed := make([]int64, 256)
	skewed[1], skewed[2] = 2, 1
	if _, err := EncodeCtx(nil, dev, syms, 256, skewed); err == nil {
		t.Fatal("per-symbol-mismatched histogram accepted")
	}
	// Sum matches but a symbol lies outside the alphabet: must error, not
	// panic indexing the code table inside a launch worker.
	oob := make([]int64, 256)
	oob[0] = 2
	if _, err := EncodeCtx(nil, dev, []uint16{700, 700}, 256, oob); err == nil {
		t.Fatal("out-of-alphabet symbol with matching histogram sum accepted")
	}
}
