package quant

import (
	"errors"
	"testing"

	"repro/internal/bitio"
)

// TestParseOutliersHostileCounts pins the wire caps on the outlier section:
// a 2^63-scale count must fail before sizing the backing arrays, and a
// 2^63-scale position delta must fail before the int conversion folds it
// into the running position as a negative number.
func TestParseOutliersHostileCounts(t *testing.T) {
	// Hostile count.
	blob := bitio.AppendUvarint(nil, 1<<63)
	if _, _, err := ParseOutliers(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("count 2^63: got %v, want ErrCorrupt", err)
	}
	// Valid count, hostile delta.
	blob = bitio.AppendUvarint(nil, 1)
	blob = bitio.AppendUvarint(blob, 1<<63)
	blob = append(blob, 0, 0, 0, 0) // value bytes
	if _, _, err := ParseOutliers(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("delta 2^63: got %v, want ErrCorrupt", err)
	}
}
