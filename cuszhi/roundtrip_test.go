package cuszhi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// roundTripDatasets is the field subset the cross-mode harness sweeps.
// Tiny dims keep modes × fields × bounds × paths affordable while still
// covering the qualitative regimes: smooth (miranda), clumpy heavy-tailed
// (nyx), turbulent (jhtdb).
var roundTripDatasets = []struct {
	name string
	dims []int
}{
	{"miranda", []int{16, 20, 20}},
	{"nyx", []int{16, 16, 16}},
	{"jhtdb", []int{12, 18, 18}},
}

// TestRoundTripEveryMode is the cross-cutting property harness: every
// fixed-assembly mode × every dataset × several error bounds must round
// trip within the absolute bound with exact dims — through the one-shot
// v1 path and the chunked v2 path, in both mixed directions (v2 blobs are
// decoded by the same Decompress that reads v1).
func TestRoundTripEveryMode(t *testing.T) {
	for _, ds := range roundTripDatasets {
		data, dims, err := GenerateDataset(ds.name, ds.dims, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range Modes() {
			for _, relEB := range []float64{1e-1, 1e-2, 1e-3} {
				t.Run(fmt.Sprintf("%s/%s/eb=%g", ds.name, mode, relEB), func(t *testing.T) {
					absEB := AbsEB(data, relEB)
					oneShot, err := New(mode, WithWorkers(3))
					if err != nil {
						t.Fatal(err)
					}
					chunked, err := New(mode, WithWorkers(3), WithChunkPlanes(5))
					if err != nil {
						t.Fatal(err)
					}
					v1, err := oneShot.CompressAbs(data, dims, absEB)
					if err != nil {
						t.Fatalf("v1 compress: %v", err)
					}
					v2, err := chunked.CompressAbs(data, dims, absEB)
					if err != nil {
						t.Fatalf("v2 compress: %v", err)
					}
					if len(v2) < 6 || v2[4] != 2 {
						t.Fatalf("chunked path produced version %d", v2[4])
					}
					// Either container decodes through either Compressor:
					// the format is self-describing.
					for tag, blob := range map[string][]byte{"v1": v1, "v2": v2} {
						for dtag, dec := range map[string]*Compressor{"one-shot": oneShot, "chunked": chunked} {
							recon, gotDims, err := dec.Decompress(blob)
							if err != nil {
								t.Fatalf("%s via %s: %v", tag, dtag, err)
							}
							if len(gotDims) != len(dims) {
								t.Fatalf("%s via %s: dims %v != %v", tag, dtag, gotDims, dims)
							}
							for i := range dims {
								if gotDims[i] != dims[i] {
									t.Fatalf("%s via %s: dims %v != %v", tag, dtag, gotDims, dims)
								}
							}
							st := Evaluate(data, blob, recon, absEB)
							if !st.WithinEB {
								t.Fatalf("%s via %s: max err %g exceeds bound %g",
									tag, dtag, st.MaxErr, absEB)
							}
						}
					}
				})
			}
		}
	}
}

// TestRoundTripRandomShapes quick-checks the chunked path on randomized
// dims, chunk thicknesses and bounds: reconstruction must stay within
// bound for arbitrary (small) shapes, including those where the last
// shard is short or the field is thinner than one chunk.
func TestRoundTripRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		total := 1
		for i := range dims {
			dims[i] = 3 + rng.Intn(14)
			total *= dims[i]
		}
		data := make([]float32, total)
		for i := range data {
			data[i] = float32(rng.NormFloat64()) + float32(i%13)
		}
		absEB := 0.001 + rng.Float64()*0.2
		chunk := 1 + rng.Intn(dims[0]+2) // may exceed dims[0]: single shard
		mode := Modes()[rng.Intn(len(Modes()))]
		c, err := New(mode, WithChunkPlanes(chunk))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := c.CompressAbs(data, dims, absEB)
		if err != nil {
			t.Fatalf("trial %d (%v, mode %s, chunk %d): %v", trial, dims, mode, chunk, err)
		}
		recon, gotDims, err := Decompress(blob)
		if err != nil {
			t.Fatalf("trial %d (%v, mode %s, chunk %d): %v", trial, dims, mode, chunk, err)
		}
		if len(recon) != total || len(gotDims) != nd {
			t.Fatalf("trial %d: got %d values, dims %v", trial, len(recon), gotDims)
		}
		if !metrics.WithinBound(data, recon, absEB) {
			t.Fatalf("trial %d (%v, mode %s, chunk %d, eb %g): bound violated",
				trial, dims, mode, chunk, absEB)
		}
	}
}

// TestAutoModeChunked covers ModeAuto on the chunked path: auto-selection
// runs on the whole field, then shards are compressed with the winner.
func TestAutoModeChunked(t *testing.T) {
	data, dims, err := GenerateDataset("nyx", []int{12, 12, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ModeAuto, WithChunkPlanes(4))
	if err != nil {
		t.Fatal(err)
	}
	absEB := AbsEB(data, 1e-2)
	blob, err := c.CompressAbs(data, dims, absEB)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.WithinBound(data, recon, absEB) {
		t.Fatal("auto chunked round trip out of bound")
	}
}

// TestV1GoldenBlobStillDecodes locks backward compatibility: a serialized
// v1 container checked in as a golden vector must keep decoding bit-for-
// bit as the format evolves.
func TestV1GoldenBlobStillDecodes(t *testing.T) {
	c, err := New(ModeTP)
	if err != nil {
		t.Fatal(err)
	}
	data := []float32{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75}
	blob, err := c.CompressAbs(data, []int{2, 2, 2}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob[:6], []byte{'c', 'S', 'Z', 'h', 1, 0}) {
		t.Fatalf("v1 prefix = % x", blob[:6])
	}
	recon, dims, err := Decompress(blob)
	if err != nil || len(recon) != 8 || dims[0] != 2 {
		t.Fatalf("v1 decode: %v (dims %v)", err, dims)
	}
	for i := range data {
		d := float64(data[i]) - float64(recon[i])
		if d > 0.01 || d < -0.01 {
			t.Fatalf("value %d drifted: %v vs %v", i, data[i], recon[i])
		}
	}
}
