// Package szx reimplements the cuSZx/SZx design (Yu et al., 2022), the
// ultra-fast "monolithic" compressor archetype that the cuSZ-Hi paper
// discusses in §2.2 and excludes from its main evaluation for its low
// ratio/quality. It is included here to complete the compressor-archetype
// spectrum (offset-quantization vs Lorenzo vs interpolation vs transform
// vs constant-block).
//
// SZx splits the stream into small blocks and classifies each as
// "constant" (every value within eb of the block mean — stored as one
// float) or "non-constant" (values stored with truncated mantissas:
// leading sign/exponent bits plus only the mantissa bits needed to meet
// eb). Both paths are a single cheap pass, which is the entire point.
package szx

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// ErrCorrupt reports a malformed container.
var ErrCorrupt = errors.New("szx: corrupt stream")

const blockVals = 128

// mantissaBitsFor returns how many of the 23 mantissa bits must be kept so
// that truncation error stays below eb for values up to maxAbs.
func mantissaBitsFor(maxAbs float32, eb float64) int {
	if maxAbs == 0 {
		return 0
	}
	// Truncating k low mantissa bits of a value with exponent e introduces
	// at most 2^(e-23+k); require that <= eb for the block's max exponent.
	_, e := math.Frexp(float64(maxAbs))
	for keep := 0; keep <= 23; keep++ {
		errBound := math.Ldexp(1, e-keep)
		if errBound <= eb {
			return keep
		}
	}
	return 23
}

// Compress encodes data under absolute error bound eb.
func Compress(dev *gpusim.Device, data []float32, eb float64) ([]byte, error) {
	if eb <= 0 {
		return nil, errors.New("szx: error bound must be positive")
	}
	n := len(data)
	nBlocks := (n + blockVals - 1) / blockVals
	blockBufs := make([][]byte, nBlocks)
	dev.Launch(nBlocks, func(b int) {
		lo := b * blockVals
		hi := lo + blockVals
		if hi > n {
			hi = n
		}
		vals := data[lo:hi]
		// Mean and range test for the constant path.
		var sum float64
		finite := true
		for _, v := range vals {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				finite = false
				break
			}
			sum += f
		}
		if finite {
			mean := float32(sum / float64(len(vals)))
			constant := true
			for _, v := range vals {
				if math.Abs(float64(v)-float64(mean)) > eb {
					constant = false
					break
				}
			}
			if constant {
				buf := make([]byte, 5)
				buf[0] = 0x01 // constant block
				binary.LittleEndian.PutUint32(buf[1:], math.Float32bits(mean))
				blockBufs[b] = buf
				return
			}
		}
		// Non-constant: keep sign+exponent (9 bits) plus enough mantissa.
		var maxAbs float32
		for _, v := range vals {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		keep := mantissaBitsFor(maxAbs, eb)
		if !finite {
			keep = 23 // store losslessly when non-finite values are present
		}
		w := bitio.NewWriter(len(vals) * (9 + keep) / 8)
		w.WriteBits(uint64(keep), 5)
		for _, v := range vals {
			bits := math.Float32bits(v)
			// sign+exponent then the kept high mantissa bits.
			w.WriteBits(uint64(bits>>23), 9)
			if keep > 0 {
				w.WriteBits(uint64(bits>>(23-uint(keep)))&((1<<uint(keep))-1), uint(keep))
			}
		}
		payload := w.Bytes()
		buf := make([]byte, 1, 1+len(payload))
		buf[0] = 0x00
		blockBufs[b] = append(buf, payload...)
	})
	out := bitio.AppendUvarint(nil, uint64(n))
	out = bitio.AppendUint64(out, math.Float64bits(eb))
	out = bitio.AppendUvarint(out, uint64(nBlocks))
	for _, bb := range blockBufs {
		out = bitio.AppendUvarint(out, uint64(len(bb)))
	}
	for _, bb := range blockBufs {
		out = append(out, bb...)
	}
	return out, nil
}

// Decompress reverses Compress.
func Decompress(dev *gpusim.Device, blob []byte) ([]float32, error) {
	n64, nn := bitio.Uvarint(blob)
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off := nn
	n := int(n64)
	if n < 0 {
		return nil, ErrCorrupt
	}
	if off+8 > len(blob) {
		return nil, ErrCorrupt
	}
	off += 8 // eb is informational on decode
	nBlocks64, nn := bitio.Uvarint(blob[off:])
	if nn == 0 {
		return nil, ErrCorrupt
	}
	off += nn
	want := (n + blockVals - 1) / blockVals
	if int(nBlocks64) != want {
		return nil, ErrCorrupt
	}
	lens := make([]int, want)
	total := 0
	for i := range lens {
		l, nn := bitio.Uvarint(blob[off:])
		if nn == 0 {
			return nil, ErrCorrupt
		}
		off += nn
		lens[i] = int(l)
		total += int(l)
	}
	if off+total > len(blob) {
		return nil, ErrCorrupt
	}
	starts := make([]int, want)
	pos := off
	for i, l := range lens {
		starts[i] = pos
		pos += l
	}
	out := make([]float32, n)
	ok := make([]bool, want)
	dev.Launch(want, func(b int) {
		lo := b * blockVals
		hi := lo + blockVals
		if hi > n {
			hi = n
		}
		body := blob[starts[b] : starts[b]+lens[b]]
		if len(body) == 0 {
			return
		}
		switch body[0] {
		case 0x01:
			if len(body) != 5 {
				return
			}
			mean := math.Float32frombits(binary.LittleEndian.Uint32(body[1:]))
			for i := lo; i < hi; i++ {
				out[i] = mean
			}
			ok[b] = true
		case 0x00:
			r := bitio.NewReader(body[1:])
			keep64, err := r.ReadBits(5)
			if err != nil || keep64 > 23 {
				return
			}
			keep := uint(keep64)
			for i := lo; i < hi; i++ {
				se, err := r.ReadBits(9)
				if err != nil {
					return
				}
				bits := uint32(se) << 23
				if keep > 0 {
					m, err := r.ReadBits(keep)
					if err != nil {
						return
					}
					bits |= uint32(m) << (23 - keep)
				}
				out[i] = math.Float32frombits(bits)
			}
			ok[b] = true
		}
	})
	for _, o := range ok {
		if !o {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}
