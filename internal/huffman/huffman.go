// Package huffman implements the canonical Huffman codec used as the
// entropy stage of cuSZ-Hi's CR-preferred lossless pipeline (Fig. 7) and of
// the cuSZ-L / cuSZ-I(B) baselines.
//
// Mirroring the GPU design, encoding is chunk-parallel: the symbol stream is
// split into fixed-size chunks, each chunk is encoded independently on the
// simulated device, and chunk byte offsets are recorded so decoding is also
// chunk-parallel (cf. Tian et al., cuSZ; Rivera et al., IPDPS'22 for the
// GPU Huffman decoder this emulates).
//
// Codes are canonical and length-limited to 15 bits (frequencies are
// smoothed and the tree rebuilt if the natural tree is deeper), and are
// stored bit-reversed so the LSB-first bit stream can be decoded with a
// single lookup table, as in DEFLATE.
package huffman

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/bitio"
	"repro/internal/gpusim"
)

const (
	// MaxCodeLen is the length cap for canonical codes.
	MaxCodeLen = 15
	// DefaultChunk is the number of symbols encoded per parallel chunk.
	DefaultChunk = 1 << 16
)

var (
	// ErrCorrupt reports a malformed Huffman container.
	ErrCorrupt = errors.New("huffman: corrupt stream")
	// ErrTooManySymbols reports an alphabet whose used-symbol count cannot
	// satisfy the 15-bit length cap.
	ErrTooManySymbols = errors.New("huffman: too many distinct symbols for 15-bit codes")
)

// code is a canonical, bit-reversed Huffman code.
type code struct {
	bits uint16
	len  uint8
}

// buildLengths computes Huffman code lengths from frequencies, capped at
// MaxCodeLen. Zero-frequency symbols get length 0.
func buildLengths(freq []int64) ([]uint8, error) {
	n := len(freq)
	lens := make([]uint8, n)
	used := 0
	last := -1
	for s, f := range freq {
		if f > 0 {
			used++
			last = s
		}
	}
	switch used {
	case 0:
		return lens, nil
	case 1:
		lens[last] = 1
		return lens, nil
	}
	if used > 1<<MaxCodeLen {
		return nil, ErrTooManySymbols
	}
	f := make([]int64, n)
	copy(f, freq)
	for {
		depth := huffmanDepths(f, lens)
		if depth <= MaxCodeLen {
			return lens, nil
		}
		// Smooth the distribution and retry; converges to uniform lengths.
		for i := range f {
			if f[i] > 0 {
				f[i] = (f[i] >> 1) | 1
			}
		}
	}
}

// huffmanDepths runs the classic two-queue Huffman construction over the
// non-zero frequencies, writing depths into lens and returning the max depth.
func huffmanDepths(freq []int64, lens []uint8) int {
	type node struct {
		w           int64
		sym         int // >= 0 for leaves
		left, right int // node indices for internal nodes
	}
	nodes := make([]node, 0, 2*len(freq))
	leaves := make([]int, 0, len(freq))
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, node{w: f, sym: s, left: -1, right: -1})
			leaves = append(leaves, len(nodes)-1)
		}
	}
	sort.Slice(leaves, func(i, j int) bool {
		a, b := nodes[leaves[i]], nodes[leaves[j]]
		if a.w != b.w {
			return a.w < b.w
		}
		return a.sym < b.sym
	})
	// Two-queue merge: sorted leaves queue + FIFO internal queue.
	internal := make([]int, 0, len(leaves))
	li, ii := 0, 0
	pop := func() int {
		if li < len(leaves) && (ii >= len(internal) || nodes[leaves[li]].w <= nodes[internal[ii]].w) {
			li++
			return leaves[li-1]
		}
		ii++
		return internal[ii-1]
	}
	remaining := len(leaves)
	root := leaves[0]
	for remaining > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, node{w: nodes[a].w + nodes[b].w, sym: -1, left: a, right: b})
		internal = append(internal, len(nodes)-1)
		root = len(nodes) - 1
		remaining--
	}
	// Iterative depth assignment.
	maxDepth := 0
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[fr.idx]
		if nd.sym >= 0 {
			lens[nd.sym] = uint8(fr.depth)
			if fr.depth > maxDepth {
				maxDepth = fr.depth
			}
			continue
		}
		stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
	}
	return maxDepth
}

// canonicalCodes assigns canonical codes (bit-reversed for LSB-first I/O)
// from lengths.
func canonicalCodes(lens []uint8) []code {
	codes := make([]code, len(lens))
	var lenCount [MaxCodeLen + 1]int
	for _, l := range lens {
		lenCount[l]++
	}
	var next [MaxCodeLen + 2]uint32
	c := uint32(0)
	for l := 1; l <= MaxCodeLen; l++ {
		c = (c + uint32(lenCount[l-1])) << 1
		next[l] = c
	}
	for s, l := range lens {
		if l == 0 {
			continue
		}
		v := next[l]
		next[l]++
		codes[s] = code{bits: uint16(bits.Reverse16(uint16(v)) >> (16 - l)), len: l}
	}
	return codes
}

// decodeTable is a full LUT over MaxCodeLen peeked bits.
type decodeTable struct {
	sym []uint16
	ln  []uint8
}

func buildDecodeTable(lens []uint8) (*decodeTable, error) {
	codes := canonicalCodes(lens)
	t := &decodeTable{
		sym: make([]uint16, 1<<MaxCodeLen),
		ln:  make([]uint8, 1<<MaxCodeLen),
	}
	for s, cd := range codes {
		if cd.len == 0 {
			continue
		}
		step := 1 << cd.len
		for v := int(cd.bits); v < 1<<MaxCodeLen; v += step {
			if t.ln[v] != 0 {
				return nil, fmt.Errorf("huffman: overlapping codes (corrupt lengths)")
			}
			t.sym[v] = uint16(s)
			t.ln[v] = cd.len
		}
	}
	return t, nil
}

// appendLengthsRLE serializes code lengths as (run, len) pairs.
func appendLengthsRLE(dst []byte, lens []uint8) []byte {
	var pairs [][2]uint64
	i := 0
	for i < len(lens) {
		j := i
		for j < len(lens) && lens[j] == lens[i] {
			j++
		}
		pairs = append(pairs, [2]uint64{uint64(j - i), uint64(lens[i])})
		i = j
	}
	dst = bitio.AppendUvarint(dst, uint64(len(pairs)))
	for _, p := range pairs {
		dst = bitio.AppendUvarint(dst, p[0])
		dst = append(dst, byte(p[1]))
	}
	return dst
}

func parseLengthsRLE(p []byte, alphabet int) ([]uint8, int, error) {
	nPairs, n := bitio.Uvarint(p)
	if n == 0 {
		return nil, 0, ErrCorrupt
	}
	off := n
	lens := make([]uint8, 0, alphabet)
	for i := uint64(0); i < nPairs; i++ {
		run, n := bitio.Uvarint(p[off:])
		if n == 0 {
			return nil, 0, ErrCorrupt
		}
		off += n
		if off >= len(p) {
			return nil, 0, ErrCorrupt
		}
		l := p[off]
		off++
		if l > MaxCodeLen {
			return nil, 0, ErrCorrupt
		}
		if uint64(len(lens))+run > uint64(alphabet) {
			return nil, 0, ErrCorrupt
		}
		for r := uint64(0); r < run; r++ {
			lens = append(lens, l)
		}
	}
	if len(lens) != alphabet {
		return nil, 0, ErrCorrupt
	}
	return lens, off, nil
}

// Encode compresses symbols drawn from [0, alphabet) into a self-contained
// container. Chunks are encoded in parallel on dev.
func Encode(dev *gpusim.Device, symbols []uint16, alphabet int) ([]byte, error) {
	if alphabet <= 0 || alphabet > 1<<16 {
		return nil, fmt.Errorf("huffman: bad alphabet %d", alphabet)
	}
	freq := make([]int64, alphabet)
	for _, s := range symbols {
		if int(s) >= alphabet {
			return nil, fmt.Errorf("huffman: symbol %d outside alphabet %d", s, alphabet)
		}
		freq[s]++
	}
	lens, err := buildLengths(freq)
	if err != nil {
		return nil, err
	}
	codes := canonicalCodes(lens)

	chunk := DefaultChunk
	nChunks := (len(symbols) + chunk - 1) / chunk
	if nChunks == 0 {
		nChunks = 0
	}
	chunkBufs := make([][]byte, nChunks)
	dev.Launch(nChunks, func(b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > len(symbols) {
			hi = len(symbols)
		}
		w := bitio.NewWriter((hi - lo) / 2)
		for _, s := range symbols[lo:hi] {
			cd := codes[s]
			w.WriteBits(uint64(cd.bits), uint(cd.len))
		}
		chunkBufs[b] = w.Bytes()
	})

	out := make([]byte, 0, len(symbols)/2+64)
	out = bitio.AppendUvarint(out, uint64(alphabet))
	out = appendLengthsRLE(out, lens)
	out = bitio.AppendUvarint(out, uint64(len(symbols)))
	out = bitio.AppendUvarint(out, uint64(chunk))
	out = bitio.AppendUvarint(out, uint64(nChunks))
	for _, cb := range chunkBufs {
		out = bitio.AppendUvarint(out, uint64(len(cb)))
	}
	for _, cb := range chunkBufs {
		out = append(out, cb...)
	}
	return out, nil
}

// Decode reverses Encode.
func Decode(dev *gpusim.Device, data []byte) ([]uint16, error) {
	alphabet64, n := bitio.Uvarint(data)
	if n == 0 || alphabet64 == 0 || alphabet64 > 1<<16 {
		return nil, ErrCorrupt
	}
	off := n
	lens, used, err := parseLengthsRLE(data[off:], int(alphabet64))
	if err != nil {
		return nil, err
	}
	off += used
	nSyms, n := bitio.Uvarint(data[off:])
	if n == 0 {
		return nil, ErrCorrupt
	}
	off += n
	chunk64, n := bitio.Uvarint(data[off:])
	if n == 0 || chunk64 == 0 {
		return nil, ErrCorrupt
	}
	off += n
	nChunks64, n := bitio.Uvarint(data[off:])
	if n == 0 {
		return nil, ErrCorrupt
	}
	off += n
	chunk := int(chunk64)
	nChunks := int(nChunks64)
	if nChunks < 0 || nChunks > len(data) {
		return nil, ErrCorrupt
	}
	want := (int(nSyms) + chunk - 1) / chunk
	if int(nSyms) == 0 {
		want = 0
	}
	if nChunks != want {
		return nil, ErrCorrupt
	}
	chunkLens := make([]int, nChunks)
	total := 0
	for i := range chunkLens {
		l, n := bitio.Uvarint(data[off:])
		if n == 0 {
			return nil, ErrCorrupt
		}
		off += n
		chunkLens[i] = int(l)
		total += int(l)
	}
	if off+total > len(data) {
		return nil, ErrCorrupt
	}
	starts := make([]int, nChunks)
	pos := off
	for i, l := range chunkLens {
		starts[i] = pos
		pos += l
	}
	table, err := buildDecodeTable(lens)
	if err != nil {
		return nil, err
	}
	out := make([]uint16, nSyms)
	var failed atomic.Bool
	dev.Launch(nChunks, func(b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > len(out) {
			hi = len(out)
		}
		if err := decodeChunk(data[starts[b]:starts[b]+chunkLens[b]], table, out[lo:hi]); err != nil {
			failed.Store(true)
		}
	})
	if failed.Load() {
		return nil, ErrCorrupt
	}
	return out, nil
}

// decodeChunk decodes exactly len(dst) symbols from src using a local
// bit accumulator for speed.
func decodeChunk(src []byte, table *decodeTable, dst []uint16) error {
	var acc uint64
	var nacc uint
	pos := 0
	for i := range dst {
		for nacc < MaxCodeLen && pos < len(src) {
			acc |= uint64(src[pos]) << nacc
			pos++
			nacc += 8
		}
		v := acc & (1<<MaxCodeLen - 1)
		l := table.ln[v]
		if l == 0 || uint(l) > nacc {
			return ErrCorrupt
		}
		dst[i] = table.sym[v]
		acc >>= l
		nacc -= uint(l)
	}
	return nil
}

// EncodeBytes compresses a byte stream (alphabet 256).
func EncodeBytes(dev *gpusim.Device, p []byte) ([]byte, error) {
	syms := make([]uint16, len(p))
	for i, b := range p {
		syms[i] = uint16(b)
	}
	return Encode(dev, syms, 256)
}

// DecodeBytes reverses EncodeBytes.
func DecodeBytes(dev *gpusim.Device, data []byte) ([]byte, error) {
	syms, err := Decode(dev, data)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(syms))
	for i, s := range syms {
		if s > 255 {
			return nil, ErrCorrupt
		}
		out[i] = byte(s)
	}
	return out, nil
}
