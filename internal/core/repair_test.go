package core

import (
	"bytes"
	"errors"
	"testing"
)

func scan(t *testing.T, blob []byte) *RecoveryInfo {
	t.Helper()
	rec, err := ScanRecovery(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatalf("ScanRecovery: %v", err)
	}
	return rec
}

// TestScanRecoverySealed proves the scan reconstructs exactly the index a
// healthy container's footer holds, and classifies it as sealed.
func TestScanRecoverySealed(t *testing.T) {
	dims := []int{6, 4, 4}
	data := rampField(6 * 16)

	v4, v4idx := makeV4(t, data, dims, 0.05, 2)
	v5, v5idx := makeV5(t, data, dims, 0.05, 2, []string{"cusz-l", "hi-tp"})
	for _, tc := range []struct {
		name    string
		blob    []byte
		entries []IndexEntry
	}{
		{"v4", v4, v4idx},
		{"v5", v5, v5idx},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := scan(t, tc.blob)
			if !rec.Sealed() || rec.Footer != FooterValid {
				t.Fatalf("healthy store not sealed: footer=%v sealed=%v", rec.Footer, rec.Sealed())
			}
			if rec.Planes != dims[0] || rec.TailBytes() != 0 {
				t.Fatalf("planes=%d tail=%d, want %d and 0", rec.Planes, rec.TailBytes(), dims[0])
			}
			if len(rec.Entries) != len(tc.entries) {
				t.Fatalf("scanned %d entries, footer holds %d", len(rec.Entries), len(tc.entries))
			}
			for i, e := range rec.Entries {
				if e != tc.entries[i] {
					t.Fatalf("entry %d: scan %+v vs footer %+v", i, e, tc.entries[i])
				}
			}
		})
	}
}

// TestScanRecoveryV2V3Sealed: footerless formats are sealed exactly when
// the frames end at EOF, and any trailing byte breaks that.
func TestScanRecoveryV2V3Sealed(t *testing.T) {
	dims := []int{4, 3, 3}
	data := rampField(4 * 9)
	v2, err := CompressChunked(dev, data, dims, 0.03, CuszL(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := scan(t, v2)
	if rec.Header.Version != 2 || !rec.Sealed() || rec.Footer != FooterMissing {
		t.Fatalf("sealed v2 misclassified: ver=%d sealed=%v", rec.Header.Version, rec.Sealed())
	}
	rec = scan(t, append(append([]byte(nil), v2...), 0xCC))
	if rec.Sealed() || rec.TailBytes() != 1 {
		t.Fatalf("v2 with a trailing byte must be unsealed with tail 1, got sealed=%v tail=%d",
			rec.Sealed(), rec.TailBytes())
	}
}

// TestScanRecoveryTruncated cuts a v5 container mid-frame and checks the
// scan reports the CRC-valid prefix only.
func TestScanRecoveryTruncated(t *testing.T) {
	dims := []int{6, 4, 4}
	data := rampField(6 * 16)
	blob, idx := makeV5(t, data, dims, 0.05, 2, []string{"szx"})
	if len(idx) != 3 {
		t.Fatalf("want 3 chunks, got %d", len(idx))
	}
	// Cut inside the final frame: two frames survive.
	cut := idx[2].FrameOff + 5
	rec := scan(t, blob[:cut])
	if rec.Sealed() || rec.Planes != 4 || len(rec.Entries) != 2 {
		t.Fatalf("got sealed=%v planes=%d entries=%d, want unsealed, 4 planes, 2 entries",
			rec.Sealed(), rec.Planes, len(rec.Entries))
	}
	if rec.FramesEnd != idx[2].FrameOff {
		t.Fatalf("FramesEnd=%d, want last valid boundary %d", rec.FramesEnd, idx[2].FrameOff)
	}
	if rec.Footer != FooterTorn || rec.TailBytes() != cut-idx[2].FrameOff {
		t.Fatalf("footer=%v tail=%d, want torn with %d trailing bytes",
			rec.Footer, rec.TailBytes(), cut-idx[2].FrameOff)
	}
	// Cut inside the header itself: not a scannable container at all.
	if _, err := ScanRecovery(bytes.NewReader(blob[:7]), 7); err == nil {
		t.Fatal("truncated header must fail the scan")
	}
}

// TestScanRecoveryFooterStates drives the footer classifier through its
// torn shapes: a half-written footer, trailing garbage after a valid one,
// and a backpointer that no longer lands on the frame boundary.
func TestScanRecoveryFooterStates(t *testing.T) {
	dims := []int{4, 4, 4}
	data := rampField(4 * 16)
	blob, idx := makeV4(t, data, dims, 0.05, 2)
	framesEnd := idx[len(idx)-1].FrameOff
	// Find the true frames end: last frame offset is known, footer begins
	// at the backpointer in the tail.
	fo, err := ParseChunkIndexTail(blob[len(blob)-IndexTailLen:])
	if err != nil {
		t.Fatal(err)
	}
	if fo <= framesEnd {
		t.Fatalf("backpointer %d not past last frame %d", fo, framesEnd)
	}

	t.Run("half-written", func(t *testing.T) {
		rec := scan(t, blob[:len(blob)-7])
		if rec.Footer != FooterTorn || rec.Sealed() {
			t.Fatalf("footer=%v sealed=%v, want torn/unsealed", rec.Footer, rec.Sealed())
		}
		if rec.FramesEnd != fo || rec.Planes != dims[0] {
			t.Fatalf("frames must survive a torn footer: end=%d planes=%d", rec.FramesEnd, rec.Planes)
		}
	})
	t.Run("garbage-after-footer", func(t *testing.T) {
		mut := append(append([]byte(nil), blob...), 1, 2, 3)
		rec := scan(t, mut)
		if rec.Footer != FooterTorn || rec.TailBytes() != int64(len(mut))-fo {
			t.Fatalf("footer=%v tail=%d", rec.Footer, rec.TailBytes())
		}
	})
	t.Run("misdirected-backpointer", func(t *testing.T) {
		mut := append([]byte(nil), blob...)
		tail := AppendChunkIndexFooter(nil, fo-1, nil)[len(AppendChunkIndexFooter(nil, fo-1, nil))-IndexTailLen:]
		copy(mut[len(mut)-IndexTailLen:], tail)
		rec := scan(t, mut)
		if rec.Footer != FooterTorn {
			t.Fatalf("footer=%v, want torn when the backpointer misses the boundary", rec.Footer)
		}
	})
	t.Run("only-footer-missing", func(t *testing.T) {
		rec := scan(t, blob[:fo])
		if rec.Footer != FooterMissing || rec.Sealed() {
			t.Fatalf("footer=%v sealed=%v, want missing/unsealed", rec.Footer, rec.Sealed())
		}
	})
}

// TestRecoveredCodec checks the writer-state re-derivation for every store
// flavor: uniform v5, mixed v5, moded v4, and an empty prefix.
func TestRecoveredCodec(t *testing.T) {
	dims := []int{4, 4, 4}
	data := rampField(4 * 16)

	uni, _ := makeV5(t, data, dims, 0.05, 2, []string{"szp"})
	rec := scan(t, uni)
	cd, _, uniform, ok := rec.RecoveredCodec()
	if !ok || !uniform || cd == nil || cd.Name() != "szp" {
		t.Fatalf("uniform v5: cd=%v uniform=%v ok=%v", cd, uniform, ok)
	}

	mixed, _ := makeV5(t, data, dims, 0.05, 2, []string{"cusz-l", "szx"})
	rec = scan(t, mixed)
	if _, _, uniform, ok := rec.RecoveredCodec(); !ok || uniform {
		t.Fatalf("mixed v5 must report uniform=false ok=true, got %v %v", uniform, ok)
	}

	v4, _ := makeV4(t, data, dims, 0.05, 2)
	rec = scan(t, v4)
	cd, opts, uniform, ok := rec.RecoveredCodec()
	if !ok || !uniform || cd != nil {
		t.Fatalf("v4: cd=%v uniform=%v ok=%v", cd, uniform, ok)
	}
	if want := CuszL(); CodecMode(opts) != CodecMode(want) {
		t.Fatalf("v4 recovered mode %#x, want %#x (cusz-l)", CodecMode(opts), CodecMode(want))
	}

	// A store with zero valid frames recovers no codec.
	hdr, err := AppendChunkedHeaderV5(nil, dims, 0.05, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec = scan(t, hdr)
	if _, _, _, ok := rec.RecoveredCodec(); ok {
		t.Fatal("empty prefix must report ok=false")
	}
}

// TestOptionsForFrameMode proves every registered assembly's packed mode
// byte maps back to its own Options — the round trip a crashed v4 writer's
// recovery depends on.
func TestOptionsForFrameMode(t *testing.T) {
	hits := 0
	for _, cd := range Codecs() {
		oc, ok := cd.(interface{ Options() Options })
		if !ok {
			continue
		}
		hits++
		mode := CodecMode(oc.Options())
		got, found := OptionsForFrameMode(mode)
		if !found {
			t.Fatalf("%s: mode %#x not found", cd.Name(), mode)
		}
		if CodecMode(got) != mode || got.Name != oc.Options().Name {
			t.Fatalf("%s: mode %#x recovered as %q (mode %#x)", cd.Name(), mode, got.Name, CodecMode(got))
		}
	}
	if hits < 5 {
		t.Fatalf("only %d assembly codecs seen, want the five cuSZ assemblies", hits)
	}
	if _, found := OptionsForFrameMode(0xFF); found {
		t.Fatal("unused mode byte must not resolve")
	}
}

// TestAppendChunkedHeaderSized exercises the padded-header writer: exact
// target lengths round-trip through ReadChunkedHeader with identical
// fields, and impossible pads fail instead of corrupting.
func TestAppendChunkedHeaderSized(t *testing.T) {
	dims := []int{7, 5, 3}
	minimal, err := AppendChunkedHeaderSized(nil, 5, dims, 0.01, true, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// dims[0] and nchunks are one byte each minimally; together they can
	// widen to 10 bytes apiece — 18 bytes of pad headroom.
	for pad := 0; pad <= 18; pad++ {
		padTo := len(minimal) + pad
		hdr, err := AppendChunkedHeaderSized(nil, 5, dims, 0.01, true, 2, 4, padTo)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		if len(hdr) != padTo {
			t.Fatalf("pad %d: wrote %d bytes, want %d", pad, len(hdr), padTo)
		}
		cr := bytes.NewReader(hdr)
		h, err := ReadChunkedHeader(cr)
		if err != nil {
			t.Fatalf("pad %d: reread: %v", pad, err)
		}
		if h.Version != 5 || !h.RelEB || h.EB != 0.01 || h.ChunkPlanes != 2 || h.NumChunks != 4 {
			t.Fatalf("pad %d: fields corrupted: %+v", pad, h)
		}
		for i, d := range dims {
			if h.Dims[i] != d {
				t.Fatalf("pad %d: dims %v != %v", pad, h.Dims, dims)
			}
		}
		if cr.Len() != 0 {
			t.Fatalf("pad %d: reader consumed %d of %d bytes", pad, padTo-cr.Len(), padTo)
		}
	}
	if _, err := AppendChunkedHeaderSized(nil, 5, dims, 0.01, true, 2, 4, len(minimal)+19); err == nil {
		t.Fatal("pad past both fields' headroom must fail")
	}
	if _, err := AppendChunkedHeaderSized(nil, 5, dims, 0.01, true, 2, 4, len(minimal)-1); err == nil {
		t.Fatal("padTo below the minimal length must fail")
	}
	// Short interior chunks: nchunks above the ceiling division is legal
	// up to one chunk per plane; beyond that it is not.
	if _, err := AppendChunkedHeaderSized(nil, 5, dims, 0.01, true, 2, 7, 0); err != nil {
		t.Fatalf("nchunks=dims[0] must be accepted: %v", err)
	}
	if _, err := AppendChunkedHeaderSized(nil, 5, dims, 0.01, true, 2, 8, 0); err == nil {
		t.Fatal("nchunks beyond one per plane must fail")
	}
	if _, err := AppendChunkedHeaderSized(nil, 5, dims, 0.01, true, 2, 3, 0); err == nil {
		t.Fatal("nchunks below the ceiling division must fail")
	}
	if _, err := AppendChunkedHeaderSized(nil, 1, dims, 0.01, false, 2, 4, 0); err == nil {
		t.Fatal("v1 is not a chunked header")
	}
}

// TestParseChunkIndexTailHostile: anything but a well-formed 12-byte tail
// is ErrCorrupt — short slices, bad magic, absurd backpointers.
func TestParseChunkIndexTailHostile(t *testing.T) {
	good := AppendChunkIndexFooter(nil, 16, nil)
	tail := good[len(good)-IndexTailLen:]
	if off, err := ParseChunkIndexTail(tail); err != nil || off != 16 {
		t.Fatalf("valid tail: off=%d err=%v", off, err)
	}
	for n := 0; n < IndexTailLen; n++ {
		if _, err := ParseChunkIndexTail(tail[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("len %d: got %v, want ErrCorrupt", n, err)
		}
	}
	if _, err := ParseChunkIndexTail(append(tail, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("overlong tail must be ErrCorrupt")
	}
	mut := append([]byte(nil), tail...)
	mut[8] ^= 0x20 // break the magic
	if _, err := ParseChunkIndexTail(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bad magic must be ErrCorrupt")
	}
	huge := append([]byte(nil), tail...)
	for i := 0; i < 8; i++ {
		huge[i] = 0xFF // backpointer far past any representable file
	}
	if _, err := ParseChunkIndexTail(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatal("absurd backpointer must be ErrCorrupt")
	}
}
