// Package ans implements a static byte-oriented rANS (range asymmetric
// numeral system) coder. It is the open surrogate for the proprietary
// nvCOMP::ANS encoder benchmarked in Fig. 6 of the cuSZ-Hi paper, and the
// entropy stage of the zstd-lite surrogate in internal/lz.
package ans

import (
	"errors"

	"repro/internal/bitio"
)

// ErrCorrupt reports a malformed rANS stream.
var ErrCorrupt = errors.New("ans: corrupt stream")

const (
	probBits  = 12
	probScale = 1 << probBits
	ransL     = 1 << 23 // lower bound of the normalized state interval
)

// normalizeFreqs scales a histogram to sum exactly probScale, keeping every
// non-zero frequency >= 1.
func normalizeFreqs(hist [256]int) (freqs [256]uint16, used int) {
	total := 0
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return freqs, 0
	}
	remaining := probScale
	// First pass: proportional share, minimum 1 for present symbols.
	var maxSym int
	maxCount := -1
	for s, c := range hist {
		if c == 0 {
			continue
		}
		used++
		f := c * probScale / total
		if f == 0 {
			f = 1
		}
		freqs[s] = uint16(f)
		remaining -= f
		if c > maxCount {
			maxCount = c
			maxSym = s
		}
	}
	// Dump the rounding remainder on the most frequent symbol; if we
	// overshot, steal from the largest frequencies.
	for remaining < 0 {
		for s := range freqs {
			if freqs[s] > 1 && remaining < 0 {
				freqs[s]--
				remaining++
			}
		}
	}
	freqs[maxSym] += uint16(remaining)
	return freqs, used
}

// Encode compresses p with a static order-0 model.
func Encode(p []byte) []byte {
	var hist [256]int
	for _, b := range p {
		hist[b]++
	}
	freqs, used := normalizeFreqs(hist)
	out := bitio.AppendUvarint(nil, uint64(len(p)))
	if len(p) == 0 {
		return out
	}
	if used == 1 {
		// Degenerate single-symbol stream: store the symbol only.
		for s, f := range freqs {
			if f != 0 {
				out = append(out, 0x01, byte(s))
				return out
			}
		}
	}
	out = append(out, 0x00)
	// Serialize the frequency table as varints (RLE of zeros).
	for s := 0; s < 256; {
		if freqs[s] == 0 {
			run := 0
			for s < 256 && freqs[s] == 0 {
				run++
				s++
			}
			out = bitio.AppendUvarint(out, 0)
			out = bitio.AppendUvarint(out, uint64(run))
			continue
		}
		out = bitio.AppendUvarint(out, uint64(freqs[s]))
		s++
	}
	var cum [257]uint32
	for s := 0; s < 256; s++ {
		cum[s+1] = cum[s] + uint32(freqs[s])
	}
	// rANS encodes in reverse; emitted bytes are collected and reversed so
	// the decoder streams forward.
	var tail []byte
	x := uint32(ransL)
	for i := len(p) - 1; i >= 0; i-- {
		s := p[i]
		f := uint32(freqs[s])
		xMax := ((ransL >> probBits) << 8) * f
		for x >= xMax {
			tail = append(tail, byte(x))
			x >>= 8
		}
		x = (x/f)<<probBits + x%f + cum[s]
	}
	out = bitio.AppendUint32(out, x)
	// Reverse tail in place.
	for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
		tail[i], tail[j] = tail[j], tail[i]
	}
	out = bitio.AppendUvarint(out, uint64(len(tail)))
	return append(out, tail...)
}

// Decode reverses Encode.
func Decode(data []byte) ([]byte, error) {
	n64, n := bitio.Uvarint(data)
	if n == 0 {
		return nil, ErrCorrupt
	}
	off := n
	if n64 == 0 {
		return nil, nil
	}
	// Cap the declared output length before the makes below are sized by
	// it: rANS ratios are legitimately unbounded (a single-symbol stream
	// decodes from a few bytes), so the cap is the shared absolute ceiling,
	// not a multiple of the input size.
	outLen, ok := bitio.IntLen(n64)
	if !ok {
		return nil, ErrCorrupt
	}
	if off >= len(data) {
		return nil, ErrCorrupt
	}
	mode := data[off]
	off++
	if mode == 0x01 {
		if off >= len(data) {
			return nil, ErrCorrupt
		}
		out := make([]byte, outLen)
		for i := range out {
			out[i] = data[off]
		}
		return out, nil
	}
	if mode != 0x00 {
		return nil, ErrCorrupt
	}
	var freqs [256]uint16
	total := 0
	for s := 0; s < 256; {
		v, vn := bitio.Uvarint(data[off:])
		if vn == 0 {
			return nil, ErrCorrupt
		}
		off += vn
		if v == 0 {
			run, rn := bitio.Uvarint(data[off:])
			if rn == 0 || run == 0 || uint64(s)+run > 256 {
				return nil, ErrCorrupt
			}
			off += rn
			s += int(run)
			continue
		}
		if v > probScale {
			return nil, ErrCorrupt
		}
		freqs[s] = uint16(v)
		total += int(v)
		s++
	}
	if total != probScale {
		return nil, ErrCorrupt
	}
	var cum [257]uint32
	for s := 0; s < 256; s++ {
		cum[s+1] = cum[s] + uint32(freqs[s])
	}
	// Slot-to-symbol lookup.
	slot2sym := make([]byte, probScale)
	for s := 0; s < 256; s++ {
		for i := cum[s]; i < cum[s+1]; i++ {
			slot2sym[i] = byte(s)
		}
	}
	if off+4 > len(data) {
		return nil, ErrCorrupt
	}
	x := uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
	off += 4
	tailLen64, tn := bitio.Uvarint(data[off:])
	if tn == 0 {
		return nil, ErrCorrupt
	}
	off += tn
	// Cap before converting: a 2^63-scale tail length wraps the int
	// negative, slips past the upper-bound check as a sum, and panics the
	// slice below.
	tailLen, ok := bitio.IntLen(tailLen64)
	if !ok || off+tailLen > len(data) {
		return nil, ErrCorrupt
	}
	tail := data[off : off+tailLen]
	pos := 0
	out := make([]byte, outLen)
	for i := range out {
		slot := x & (probScale - 1)
		s := slot2sym[slot]
		f := uint32(freqs[s])
		if f == 0 {
			return nil, ErrCorrupt
		}
		out[i] = s
		x = f*(x>>probBits) + slot - cum[s]
		for x < ransL {
			if pos >= len(tail) {
				return nil, ErrCorrupt
			}
			x = x<<8 | uint32(tail[pos])
			pos++
		}
	}
	return out, nil
}
