package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/cuszhi"
	"repro/internal/core"
	"repro/internal/gpusim"
)

// countingReaderAt records every ReadAt region, so tests can prove which
// byte ranges of a container a random-access read actually touched.
type countingReaderAt struct {
	r  io.ReaderAt
	mu sync.Mutex
	// regions is a list of [off, end) pairs, in call order.
	regions [][2]int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.mu.Lock()
	c.regions = append(c.regions, [2]int64{off, off + int64(len(p))})
	c.mu.Unlock()
	return c.r.ReadAt(p, off)
}

func (c *countingReaderAt) reset() {
	c.mu.Lock()
	c.regions = nil
	c.mu.Unlock()
}

// writeV4 streams data into a fresh v4 container.
func writeV4(t testing.TB, data []float32, dims []int, eb float64, cp int, opt ...Option) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts := append([]Option{WithChunkPlanes(cp)}, opt...)
	w, err := NewWriter(&buf, dims, eb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriterEmitsV4ByDefault(t *testing.T) {
	dims := []int{12, 8, 8}
	data, _ := genField(t, "nyx", dims)
	blob := writeV4(t, data, dims, 0.1, 4, WithMode(cuszhi.ModeTP))
	info, err := cuszhi.Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 4 || !info.HasIndex || info.NumChunks != 3 {
		t.Fatalf("info = %+v", info)
	}
	// All three consumers read it: the one-shot decoder, the sequential
	// Reader, and the random-access ReaderAt.
	full, gotDims, err := cuszhi.Decompress(blob)
	if err != nil || gotDims[0] != 12 {
		t.Fatalf("one-shot decode: %v (dims %v)", err, gotDims)
	}
	r, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seq, err := r.ReadAllValues()
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if seq[i] != full[i] {
			t.Fatalf("sequential decode diverges at %d", i)
		}
	}
	ra, err := OpenReaderAt(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ra.ReadPlanes(nil, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("random-access decode diverges at %d", i)
		}
	}
	// WithIndex(false) + relative bound still yields plain v3.
	blob3 := writeV4(t, data, dims, 1e-2, 4, WithMode(cuszhi.ModeTP), WithRelativeEB(), WithIndex(false))
	info3, err := cuszhi.Inspect(blob3)
	if err != nil || info3.Version != 3 || info3.HasIndex {
		t.Fatalf("v3 info = %+v (err %v)", info3, err)
	}
}

func TestReadPlanesMatchesFullDecode(t *testing.T) {
	dims := []int{30, 12, 12}
	data, _ := genField(t, "miranda", dims)
	absEB := cuszhi.AbsEB(data, 1e-3)
	blob := writeV4(t, data, dims, absEB, 7, WithMode(cuszhi.ModeTP))
	full, _, err := cuszhi.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := OpenReaderAt(bytes.NewReader(blob), int64(len(blob)), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if d := ra.Dims(); d[0] != 30 || ra.EB() != absEB || ra.Version() != 4 || ra.NumChunks() != 5 {
		t.Fatalf("ra = dims %v eb %v v%d chunks %d", d, ra.EB(), ra.Version(), ra.NumChunks())
	}
	ps := 12 * 12
	var dst []float32
	for _, rng := range [][2]int{{0, 1}, {0, 30}, {6, 8}, {7, 7 + 1}, {13, 22}, {29, 30}, {5, 14}} {
		lo, hi := rng[0], rng[1]
		dst, err = ra.ReadPlanes(dst, lo, hi)
		if err != nil {
			t.Fatalf("ReadPlanes(%d,%d): %v", lo, hi, err)
		}
		want := full[lo*ps : hi*ps]
		if len(dst) != len(want) {
			t.Fatalf("ReadPlanes(%d,%d): %d values, want %d", lo, hi, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("ReadPlanes(%d,%d) diverges from full decode at %d", lo, hi, i)
			}
		}
	}
	// Invalid ranges are refused.
	for _, rng := range [][2]int{{-1, 5}, {0, 31}, {5, 5}, {8, 3}} {
		if _, err := ra.ReadPlanes(nil, rng[0], rng[1]); err == nil {
			t.Fatalf("range %v accepted", rng)
		}
	}
}

// TestReadPlanesTouchesOnlyCoveringShards is the acceptance proof: a
// random-access read of planes [lo, hi) must read payload bytes only from
// the ⌈…⌉ shards covering the range, never the rest of the container.
func TestReadPlanesTouchesOnlyCoveringShards(t *testing.T) {
	dims := []int{32, 10, 10}
	data, _ := genField(t, "jhtdb", dims)
	blob := writeV4(t, data, dims, 0.05, 4, WithMode(cuszhi.ModeTP)) // 8 shards
	src := &countingReaderAt{r: bytes.NewReader(blob)}
	ra, err := OpenReaderAt(src, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	// Opening a v4 container must not touch any chunk payload: everything
	// it reads lies in the header or the footer region.
	framesEnd := int64(binary.LittleEndian.Uint64(blob[len(blob)-core.IndexTailLen:]))
	for _, reg := range src.regions {
		if reg[0] < framesEnd && reg[1] > 64 { // generous header bound
			t.Fatalf("open read frame bytes [%d,%d)", reg[0], reg[1])
		}
	}

	// Planes 13..19 with chunkPlanes 4 cover shards 3 and 4 → frames
	// [12..16) and [16..20) only.
	src.reset()
	got, err := ra.ReadPlanes(nil, 13, 19)
	if err != nil {
		t.Fatal(err)
	}
	lo64, hi64 := int64(len(blob)), int64(0)
	var readBytes int64
	for _, reg := range src.regions {
		if reg[0] < lo64 {
			lo64 = reg[0]
		}
		if reg[1] > hi64 {
			hi64 = reg[1]
		}
		readBytes += reg[1] - reg[0]
	}
	// The two covering frames span a contiguous byte range; everything
	// read must fall inside it, and in particular the 6 non-covering
	// frames and the footer must stay untouched.
	if hi64 > framesEnd {
		t.Fatalf("ReadPlanes read into the footer: [%d,%d)", lo64, hi64)
	}
	frameSpan := hi64 - lo64
	if frameSpan <= 0 || frameSpan > framesEnd*2/8+256 {
		t.Fatalf("ReadPlanes read %d bytes of %d frame bytes — more than ~2 of 8 shards", frameSpan, framesEnd)
	}
	if readBytes > frameSpan {
		t.Fatalf("overlapping reads: %d bytes read over a %d-byte span", readBytes, frameSpan)
	}
	// And the trimmed output matches the full decode.
	full, _, err := cuszhi.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	ps := 10 * 10
	for i, v := range got {
		if v != full[13*ps+i] {
			t.Fatalf("trimmed output diverges at %d", i)
		}
	}
}

// TestOpenReaderAtFallbacks proves v1/v2/v3 containers gain random access
// through the scan-built (or whole-decode) fallback index.
func TestOpenReaderAtFallbacks(t *testing.T) {
	dims := []int{20, 8, 8}
	data, _ := genField(t, "hurricane", dims)
	ps := 8 * 8

	v2 := writeV4(t, data, dims, 0.05, 6, WithMode(cuszhi.ModeTP), WithIndex(false))
	v3 := writeV4(t, data, dims, 1e-2, 6, WithMode(cuszhi.ModeTP), WithIndex(false), WithRelativeEB())
	v1, err := cuszhi.Compress(data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		blob []byte
		ver  int
	}{{"v1", v1, 1}, {"v2", v2, 2}, {"v3", v3, 3}} {
		t.Run(tc.name, func(t *testing.T) {
			full, _, err := cuszhi.Decompress(tc.blob)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := OpenReaderAt(bytes.NewReader(tc.blob), int64(len(tc.blob)))
			if err != nil {
				t.Fatal(err)
			}
			if ra.Version() != tc.ver {
				t.Fatalf("version = %d", ra.Version())
			}
			got, err := ra.ReadPlanes(nil, 9, 14)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != full[9*ps+i] {
					t.Fatalf("plane window diverges at %d", i)
				}
			}
		})
	}
	// The one-shot convenience agrees.
	vals, gotDims, err := ReadPlanesAt(bytes.NewReader(v2), int64(len(v2)), 0, 2)
	if err != nil || gotDims[0] != 20 || len(vals) != 2*ps {
		t.Fatalf("ReadPlanesAt: %v (dims %v, %d vals)", err, gotDims, len(vals))
	}
}

// makeMixedV5 assembles a v5 container whose shards alternate between two
// codecs, using the core building blocks directly (the way the writer
// does), so the mixture is deterministic.
func makeMixedV5(t testing.TB, data []float32, dims []int, eb float64, cp int) ([]byte, []core.IndexEntry) {
	t.Helper()
	blob, err := core.AppendChunkedHeaderV5(nil, dims, eb, false, cp)
	if err != nil {
		t.Fatal(err)
	}
	ps := planeElems(dims)
	names := []string{"cusz-l", "hi-tp"}
	var entries []core.IndexEntry
	for i, off := 0, 0; off < dims[0]; i, off = i+1, off+cp {
		planes := cp
		if off+planes > dims[0] {
			planes = dims[0] - off
		}
		cd, ok := core.CodecByName(names[i%2])
		if !ok {
			t.Fatal(names[i%2])
		}
		shard := data[off*ps : (off+planes)*ps]
		shardDims := append([]int{planes}, dims[1:]...)
		minV, maxV, _ := core.ShardRange(shard)
		payload, err := cd.Compress(nil, gpusim.Default, shard, shardDims, eb)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, core.IndexEntry{
			FrameOff: int64(len(blob)), PlaneOff: off, Planes: planes, Codec: cd.ID()})
		blob = core.AppendChunkFrameV5(blob, cd, off, shardDims, minV, maxV, payload)
	}
	return core.AppendChunkIndexFooterV5(blob, int64(len(blob)), entries), entries
}

// TestReadPlanesMixedCodecV5 is the random-access half of the acceptance
// case: a v5 container whose chunks use two different codecs serves
// ReadPlanes windows identical to a full sequential decode, dispatching
// each covering shard through the registry, and reports its codec
// histogram from the index alone.
func TestReadPlanesMixedCodecV5(t *testing.T) {
	dims := []int{20, 8, 8}
	data, _ := genField(t, "hurricane", dims)
	blob, _ := makeMixedV5(t, data, dims, 0.05, 4) // 5 shards: l,tp,l,tp,l
	full, _, err := cuszhi.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := OpenReaderAt(bytes.NewReader(blob), int64(len(blob)), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Version() != 5 || ra.NumChunks() != 5 {
		t.Fatalf("ra = v%d chunks %d", ra.Version(), ra.NumChunks())
	}
	hist := ra.CodecHistogram()
	if hist["cusz-l"] != 3 || hist["hi-tp"] != 2 {
		t.Fatalf("codec histogram = %v", hist)
	}
	ps := 8 * 8
	var dst []float32
	for _, rng := range [][2]int{{0, 20}, {3, 9}, {7, 8}, {12, 20}} {
		lo, hi := rng[0], rng[1]
		dst, err = ra.ReadPlanes(dst, lo, hi)
		if err != nil {
			t.Fatalf("ReadPlanes(%d,%d): %v", lo, hi, err)
		}
		for i := range dst {
			if dst[i] != full[lo*ps+i] {
				t.Fatalf("ReadPlanes(%d,%d) diverges at %d", lo, hi, i)
			}
		}
	}
	// The sequential streaming Reader agrees too (the other acceptance
	// consumer for mixed-codec containers).
	r, err := NewReader(bytes.NewReader(blob), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seq, err := r.ReadAllValues()
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if seq[i] != full[i] {
			t.Fatalf("stream.Reader diverges at %d", i)
		}
	}
}

// TestOpenReaderAtV5Hostile: v5-specific corruptions at the random-access
// layer — unknown codec IDs in the footer refuse to open; a lying (but
// self-consistent) footer codec is caught when the frame is read.
func TestOpenReaderAtV5Hostile(t *testing.T) {
	dims := []int{16, 6, 6}
	data, _ := genField(t, "nyx", dims)
	blob, entries := makeMixedV5(t, data, dims, 0.1, 4)
	framesEnd := int64(binary.LittleEndian.Uint64(blob[len(blob)-core.IndexTailLen:]))
	open := func(b []byte) (*ReaderAt, error) {
		return OpenReaderAt(bytes.NewReader(b), int64(len(b)))
	}
	if _, err := open(blob); err != nil {
		t.Fatal(err) // the uncorrupted container must open
	}

	t.Run("unknown codec id in footer", func(t *testing.T) {
		lie := append([]core.IndexEntry(nil), entries...)
		lie[2].Codec = 0x7f
		bad := core.AppendChunkIndexFooterV5(append([]byte(nil), blob[:framesEnd]...), framesEnd, lie)
		if _, err := open(bad); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("footer codec disagrees with frame", func(t *testing.T) {
		lie := append([]core.IndexEntry(nil), entries...)
		lie[0].Codec = core.CodecHiTP // valid ID, wrong chunk
		bad := core.AppendChunkIndexFooterV5(append([]byte(nil), blob[:framesEnd]...), framesEnd, lie)
		ra, err := open(bad)
		if err != nil {
			t.Fatalf("open refused a self-consistent (if lying) index: %v", err)
		}
		if _, err := ra.ReadPlanes(nil, 0, 4); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown codec id in frame", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[entries[0].FrameOff+5] = 0x7f // offset + 3 dims + mode byte
		ra, err := open(bad)
		if err != nil {
			t.Fatalf("open reads no frames, must succeed: %v", err)
		}
		if _, err := ra.ReadPlanes(nil, 0, 4); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
}

// eofReaderAt follows the strict io.ReaderAt contract: a full read ending
// exactly at EOF returns io.EOF alongside the data (as an HTTP-range or
// object-store adapter legitimately might).
type eofReaderAt struct {
	data []byte
}

func (e *eofReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(e.data)) {
		return 0, io.EOF
	}
	n := copy(p, e.data[off:])
	if off+int64(n) == int64(len(e.data)) {
		return n, io.EOF
	}
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// TestReaderAtToleratesEOFOnExactReads: reads that end exactly at EOF (the
// v4 tail, a v2 last frame, a whole v1 blob) may come back with io.EOF per
// the io.ReaderAt contract and must not be mistaken for corruption.
func TestReaderAtToleratesEOFOnExactReads(t *testing.T) {
	dims := []int{10, 6, 6}
	data, _ := genField(t, "nyx", dims)
	v4 := writeV4(t, data, dims, 0.1, 4, WithMode(cuszhi.ModeTP))
	v2 := writeV4(t, data, dims, 0.1, 4, WithMode(cuszhi.ModeTP), WithIndex(false))
	v1, err := cuszhi.Compress(data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		blob []byte
	}{{"v4", v4}, {"v2", v2}, {"v1", v1}} {
		t.Run(tc.name, func(t *testing.T) {
			ra, err := OpenReaderAt(&eofReaderAt{data: tc.blob}, int64(len(tc.blob)))
			if err != nil {
				t.Fatal(err)
			}
			// The last planes force the final frame (or the whole blob)
			// to be read right up to EOF.
			if _, err := ra.ReadPlanes(nil, 8, 10); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenReaderAtHostileInputs drives the footer loader and ReadPlanes
// through corrupted v4 containers.
func TestOpenReaderAtHostileInputs(t *testing.T) {
	dims := []int{16, 6, 6}
	data, _ := genField(t, "nyx", dims)
	blob := writeV4(t, data, dims, 0.1, 4, WithMode(cuszhi.ModeTP))
	framesEnd := int64(binary.LittleEndian.Uint64(blob[len(blob)-core.IndexTailLen:]))
	open := func(b []byte) (*ReaderAt, error) {
		return OpenReaderAt(bytes.NewReader(b), int64(len(b)))
	}

	t.Run("truncated footer", func(t *testing.T) {
		for cut := 1; cut <= core.IndexTailLen+2; cut++ {
			if _, err := open(blob[:len(blob)-cut]); err == nil {
				t.Fatalf("footer truncated by %d opened without error", cut)
			}
		}
	})
	t.Run("index crc mismatch", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[framesEnd] ^= 0x01
		if _, err := open(bad); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("backpointer past EOF", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint64(bad[len(bad)-core.IndexTailLen:], uint64(len(bad)+100))
		if _, err := open(bad); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("frame offset past EOF", func(t *testing.T) {
		// Rebuild the footer (valid CRC) pointing a frame past the end of
		// the file: the open must refuse it, not ReadAt out of bounds.
		h, err := core.ReadChunkedHeader(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		region := blob[framesEnd : len(blob)-core.IndexTailLen]
		entries, err := core.ParseChunkIndex(region, h, framesEnd)
		if err != nil {
			t.Fatal(err)
		}
		lie := append([]core.IndexEntry(nil), entries...)
		lie[len(lie)-1].FrameOff = int64(len(blob)) + 50
		bad := core.AppendChunkIndexFooter(append([]byte(nil), blob[:framesEnd]...), framesEnd, lie)
		if _, err := open(bad); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("index disagrees with frame", func(t *testing.T) {
		// A self-consistent index (valid CRC, valid tiling, increasing
		// offsets) whose byte offsets lie by one: the open succeeds, and
		// the read must catch the disagreement rather than decode from
		// the wrong place.
		h, err := core.ReadChunkedHeader(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		region := blob[framesEnd : len(blob)-core.IndexTailLen]
		entries, err := core.ParseChunkIndex(region, h, framesEnd)
		if err != nil {
			t.Fatal(err)
		}
		lie := append([]core.IndexEntry(nil), entries...)
		lie[1].FrameOff++
		bad := core.AppendChunkIndexFooter(append([]byte(nil), blob[:framesEnd]...), framesEnd, lie)
		ra, err := OpenReaderAt(bytes.NewReader(bad), int64(len(bad)))
		if err != nil {
			t.Fatalf("open refused a self-consistent (if lying) index: %v", err)
		}
		if _, err := ra.ReadPlanes(nil, 4, 12); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		for _, b := range [][]byte{nil, []byte("xx"), []byte("cSZh"), bytes.Repeat([]byte{7}, 64)} {
			if _, err := open(b); err == nil {
				t.Fatalf("garbage %q opened", b)
			}
		}
	})
}
