// Seek: random access into a compressed container. A seekable (format v4)
// container ends with a chunk-index footer, so a consumer can decode an
// arbitrary window of planes — a localized region of a large field —
// while reading only the shards that cover it, never the rest of the
// file. This is the access pattern of windowed scientific analyses
// (domain structure, feature tracking) over fields too large to decode
// whole.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync/atomic"

	"repro/cuszhi"
	"repro/cuszhi/stream"
)

// meteredReaderAt counts the bytes actually fetched from the "file", so
// the example can show how little of the container a windowed read touches.
type meteredReaderAt struct {
	r     io.ReaderAt
	bytes atomic.Int64
}

func (m *meteredReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := m.r.ReadAt(p, off)
	m.bytes.Add(int64(n))
	return n, err
}

func main() {
	dims := []int{96, 64, 64}
	data, _, err := cuszhi.GenerateDataset("miranda", dims, 1)
	if err != nil {
		log.Fatal(err)
	}
	absEB := cuszhi.AbsEB(data, 1e-3)

	// The streaming writer emits seekable v4 containers by default.
	var sink bytes.Buffer
	w, err := stream.NewWriter(&sink, dims, absEB,
		stream.WithMode(cuszhi.ModeTP), stream.WithChunkPlanes(8))
	if err != nil {
		log.Fatal(err)
	}
	if err := w.WriteValues(data); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := cuszhi.Inspect(sink.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container: format v%d, %d chunks, %d bytes, seekable=%v\n",
		info.Version, info.NumChunks, sink.Len(), info.HasIndex)

	// Open for random access: only the header and the index footer are
	// read — no shard payloads.
	src := &meteredReaderAt{r: bytes.NewReader(sink.Bytes())}
	ra, err := stream.OpenReaderAt(src, int64(sink.Len()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open cost: %d of %d bytes (header + chunk index)\n",
		src.bytes.Load(), sink.Len())

	// Decode a small window from the middle of the field.
	lo, hi := 42, 54
	src.bytes.Store(0)
	window, err := ra.ReadPlanes(nil, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planes %d:%d — decoded %d of %d chunks, read %d of %d bytes\n",
		lo, hi, ra.CoveringChunks(lo, hi), ra.NumChunks(), src.bytes.Load(), sink.Len())

	// The window matches the corresponding slice of a full decode.
	full, _, err := cuszhi.Decompress(sink.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	ps := dims[1] * dims[2]
	for i, v := range window {
		if v != full[lo*ps+i] {
			log.Fatalf("window diverges from full decode at %d", i)
		}
	}
	fmt.Printf("window of %d values matches the full decode exactly\n", len(window))
}
