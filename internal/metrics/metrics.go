// Package metrics implements the quality and size metrics used in the
// cuSZ-Hi evaluation (§6.1.4): compression ratio, bit rate, PSNR,
// maximum point-wise error, plus entropy helpers used by the lossless
// benchmarking.
package metrics

import (
	"math"
)

// Range returns the min, max and value range of data. An empty slice has
// zero range.
func Range(data []float32) (lo, hi, rng float64) {
	if len(data) == 0 {
		return 0, 0, 0
	}
	lo, hi = float64(data[0]), float64(data[0])
	for _, v := range data[1:] {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi, hi - lo
}

// AbsEB converts a value-range-based relative error bound into the uniform
// absolute error bound used by Eq. 1 of the paper.
func AbsEB(data []float32, relEB float64) float64 {
	_, _, rng := Range(data)
	if rng == 0 {
		rng = 1
	}
	return relEB * rng
}

// Distortion summarizes the difference between an original field and its
// decompressed reconstruction.
type Distortion struct {
	MSE    float64
	PSNR   float64 // value-range based, dB
	MaxErr float64 // L-infinity error
	NRMSE  float64
	Range  float64
}

// Compare computes Distortion between orig and recon (same length).
func Compare(orig, recon []float32) Distortion {
	var d Distortion
	if len(orig) == 0 || len(orig) != len(recon) {
		return d
	}
	_, _, rng := Range(orig)
	d.Range = rng
	var sum float64
	for i := range orig {
		e := float64(orig[i]) - float64(recon[i])
		if a := math.Abs(e); a > d.MaxErr {
			d.MaxErr = a
		}
		sum += e * e
	}
	d.MSE = sum / float64(len(orig))
	if d.MSE == 0 {
		d.PSNR = math.Inf(1)
	} else {
		r := rng
		if r == 0 {
			r = 1
		}
		d.PSNR = 20*math.Log10(r) - 10*math.Log10(d.MSE)
		d.NRMSE = math.Sqrt(d.MSE) / r
	}
	return d
}

// CR returns the compression ratio |X| / |Z| for an original payload of
// origBytes compressed to compBytes.
func CR(origBytes, compBytes int) float64 {
	if compBytes == 0 {
		return math.Inf(1)
	}
	return float64(origBytes) / float64(compBytes)
}

// BitRate returns the average number of compressed bits per float32 element,
// i.e. 32 / CR.
func BitRate(nElems, compBytes int) float64 {
	if nElems == 0 {
		return 0
	}
	return float64(compBytes) * 8 / float64(nElems)
}

// WithinBound reports whether every |orig[i]-recon[i]| <= eb (+ a tiny
// float32 rounding slack proportional to eb).
func WithinBound(orig, recon []float32, eb float64) bool {
	return FirstViolation(orig, recon, eb) < 0
}

// FirstViolation returns the first index violating the error bound, or -1.
// A relative slack of 1e-4*eb absorbs float32 rounding of the reconstruction.
func FirstViolation(orig, recon []float32, eb float64) int {
	if len(orig) != len(recon) {
		return 0
	}
	limit := eb * (1 + 1e-4)
	for i := range orig {
		if math.Abs(float64(orig[i])-float64(recon[i])) > limit {
			return i
		}
	}
	return -1
}

// ByteEntropy returns the order-0 Shannon entropy of p in bits per byte.
func ByteEntropy(p []byte) float64 {
	if len(p) == 0 {
		return 0
	}
	var hist [256]int
	for _, b := range p {
		hist[b]++
	}
	n := float64(len(p))
	var h float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		f := float64(c) / n
		h -= f * math.Log2(f)
	}
	return h
}

// GiBps converts a processed byte count and elapsed seconds into GiB/s,
// the throughput unit used in Fig. 10.
func GiBps(bytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 30) / seconds
}
