package cuszhi

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
)

func TestAllModesRoundTrip(t *testing.T) {
	f, err := datagen.Generate("nyx", []int{32, 48, 48}, 1)
	if err != nil {
		t.Fatal(err)
	}
	relEB := 1e-3
	absEB := metrics.AbsEB(f.Data, relEB)
	for _, m := range Modes() {
		c, err := New(m, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if c.Mode() != m {
			t.Fatalf("Mode() = %q", c.Mode())
		}
		blob, err := c.Compress(f.Data, f.Dims, relEB)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		recon, dims, err := c.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(dims) != 3 || dims[0] != 32 {
			t.Fatalf("%s: dims %v", m, dims)
		}
		st := Evaluate(f.Data, blob, recon, absEB)
		if !st.WithinEB {
			t.Fatalf("%s: bound violated, max err %v > %v", m, st.MaxErr, absEB)
		}
		if st.Ratio <= 1 {
			t.Fatalf("%s: no compression (ratio %.2f)", m, st.Ratio)
		}
		if math.Abs(st.BitRate-32/st.Ratio) > 1e-9 {
			t.Fatalf("%s: inconsistent bitrate", m)
		}
	}
}

func TestOneShotHelpers(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{24, 32, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Compress(f.Data, f.Dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != f.Len() || dims[2] != 32 {
		t.Fatal("one-shot round trip shape mismatch")
	}
	if !metrics.WithinBound(f.Data, recon, metrics.AbsEB(f.Data, 1e-3)) {
		t.Fatal("one-shot bound violated")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("want unknown mode error")
	}
	c, _ := New(ModeCR)
	if _, err := c.Compress([]float32{1, 2}, []int{2}, 0); err == nil {
		t.Fatal("want relEB error")
	}
	if _, err := c.Compress([]float32{1, 2}, []int{3}, 1e-3); err == nil {
		t.Fatal("want dims error")
	}
	if _, _, err := c.Decompress([]byte("garbage")); err == nil {
		t.Fatal("want corrupt error")
	}
}

func TestCRModeHighestRatioOnSmoothField(t *testing.T) {
	f, err := datagen.Generate("rtm", []int{56, 56, 32}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ratios := map[Mode]float64{}
	for _, m := range Modes() {
		c, _ := New(m, WithWorkers(4))
		blob, err := c.Compress(f.Data, f.Dims, 1e-2)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		ratios[m] = metrics.CR(f.SizeBytes(), len(blob))
	}
	// Table 4's qualitative result: the Hi modes beat the open baselines.
	best := ratios[ModeCR]
	if ratios[ModeTP] > best {
		best = ratios[ModeTP]
	}
	if best <= ratios[ModeCuszI] || best <= ratios[ModeCuszL] {
		t.Fatalf("Hi modes should lead: %v", ratios)
	}
}

func TestModeAuto(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{48, 64, 64}, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ModeAuto, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	relEB := 1e-2
	blob, err := c.Compress(f.Data, f.Dims, relEB)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	absEB := metrics.AbsEB(f.Data, relEB)
	st := Evaluate(f.Data, blob, recon, absEB)
	if !st.WithinEB {
		t.Fatal("auto mode violated the bound")
	}
	// Auto must do at least as well as the worst fixed mode; on smooth
	// data it should land at or near hi-cr's ratio.
	cr, _ := New(ModeCR, WithWorkers(4))
	crBlob, err := cr.Compress(f.Data, f.Dims, relEB)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(blob)) > float64(len(crBlob))*1.05 {
		t.Fatalf("auto (%d) much worse than hi-cr (%d)", len(blob), len(crBlob))
	}
}

func TestConcurrentUse(t *testing.T) {
	// A single Compressor must be safe for concurrent use.
	f, err := datagen.Generate("nyx", []int{24, 32, 32}, 9)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(ModeTP, WithWorkers(2))
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			blob, err := c.Compress(f.Data, f.Dims, 1e-3)
			if err != nil {
				errs <- err
				return
			}
			recon, _, err := c.Decompress(blob)
			if err != nil {
				errs <- err
				return
			}
			if !metrics.WithinBound(f.Data, recon, metrics.AbsEB(f.Data, 1e-3)) {
				errs <- errBound
				return
			}
			errs <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errBound = fmt.Errorf("bound violated")

func Test4DInput(t *testing.T) {
	// QMCPack-style 4-D dims collapse internally but round-trip with the
	// original shape.
	f, err := datagen.Generate("qmcpack", []int{6, 8, 20, 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(ModeCR, WithWorkers(4))
	blob, err := c.Compress(f.Data, f.Dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 4 || dims[0] != 6 || dims[3] != 20 {
		t.Fatalf("dims = %v", dims)
	}
	if !metrics.WithinBound(f.Data, recon, metrics.AbsEB(f.Data, 1e-3)) {
		t.Fatal("4D bound violated")
	}
}

func TestNaNValuesPreserved(t *testing.T) {
	// Non-finite values become outliers and survive losslessly.
	f, err := datagen.Generate("miranda", []int{20, 20, 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := append([]float32(nil), f.Data...)
	data[123] = float32(math.NaN())
	data[4567] = float32(math.Inf(1))
	c, _ := New(ModeCR, WithWorkers(4))
	blob, err := c.CompressAbs(data, f.Dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(recon[123])) {
		t.Fatalf("NaN not preserved: %v", recon[123])
	}
	if !math.IsInf(float64(recon[4567]), 1) {
		t.Fatalf("+Inf not preserved: %v", recon[4567])
	}
	for i, v := range recon {
		if i == 123 || i == 4567 {
			continue
		}
		if math.Abs(float64(data[i])-float64(v)) > 1e-3*(1+1e-6) {
			t.Fatalf("bound violated at %d near non-finite values", i)
		}
	}
}

func TestPublicHelpers(t *testing.T) {
	data, dims, err := GenerateDataset("nyx", []int{8, 8, 8}, 1)
	if err != nil || len(data) != 512 || dims[0] != 8 {
		t.Fatalf("GenerateDataset: %v %v", err, dims)
	}
	if _, _, err := GenerateDataset("nope", nil, 1); err == nil {
		t.Fatal("want unknown dataset error")
	}
	if eb := AbsEB([]float32{0, 10}, 1e-2); eb != 0.1 {
		t.Fatalf("AbsEB = %v", eb)
	}
}
